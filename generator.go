package mctsui

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mcts"
	"repro/internal/sqlparser"
)

// Default search parameters, re-exported from the engine's single source of
// truth (internal/core) so documentation and behavior cannot drift.
const (
	DefaultIterations    = core.DefaultIterations
	DefaultRolloutDepth  = core.DefaultRolloutDepth
	DefaultRewardSamples = core.DefaultRewardSamples
	DefaultSeed          = core.DefaultSeed
	DefaultExplorationC  = core.DefaultExplorationC
)

// Strategy is a pluggable search procedure; obtain instances from
// StrategyMCTS, StrategyBeam, StrategyGreedy, StrategyRandom,
// StrategyExhaustive, or StrategyByName and install one with WithStrategy.
type Strategy = core.Strategy

// Progress is an anytime snapshot of a running search, delivered to the
// WithProgress callback: within one worker, BestCost is monotone
// non-increasing and the counters monotone non-decreasing.
type Progress = core.Progress

// Stats summarizes a finished search, including the best-so-far cost
// trajectory; see Interface.Stats.
type Stats = core.Stats

// TrajectoryPoint is one best-so-far improvement in Stats.Trajectory.
type TrajectoryPoint = core.TrajectoryPoint

// StrategyMCTS returns the paper's Monte Carlo Tree Search (the default).
func StrategyMCTS() Strategy { return core.StrategyMCTS() }

// StrategyBeam returns beam search with the given frontier width (a default
// width when <= 0); iterations bound the generations. Cheaper than MCTS on
// large logs.
func StrategyBeam(width int) Strategy { return core.StrategyBeam(width) }

// StrategyGreedy returns greedy hill-climbing to a local optimum.
func StrategyGreedy() Strategy { return core.StrategyGreedy() }

// StrategyRandom returns independent uniform random walks (a default count
// when walks <= 0); rollout depth bounds each walk.
func StrategyRandom(walks int) Strategy { return core.StrategyRandom(walks) }

// StrategyExhaustive returns breadth-first enumeration capped at maxStates
// (a default cap when <= 0) — the exact optimum on tiny logs.
func StrategyExhaustive(maxStates int) Strategy { return core.StrategyExhaustive(maxStates) }

// StrategyByName resolves "mcts", "beam[:width]", "greedy",
// "random[:walks]", or "exhaustive[:maxStates]" — the form accepted by
// command-line flags.
func StrategyByName(spec string) (Strategy, error) { return core.StrategyByName(spec) }

// Cache is a concurrency-safe transposition cache over search states: it
// memoizes state costs, legality verdicts, and legal move sets keyed by the
// difftree's structural hash. Every Generator uses one internally (shared
// across its workers); construct one with NewCache and install it with
// WithCache to additionally share evaluations across Generate calls — or
// across Generators — that search the same log under the same settings.
// Because state evaluation is deterministic per state, caching never changes
// a result: for a fixed seed, cached and uncached runs return the same best
// interface.
type Cache struct {
	c *eval.Cache
}

// CacheStats reports cumulative cache effectiveness; see Cache.Stats.
type CacheStats = eval.Stats

// NewCache returns a cache bounded at maxEntries memoized states (a default
// of about a million when <= 0). A full cache admits new states by evicting
// cold ones — per-shard CLOCK (second-chance) with hit tracking, so a
// scan-heavy workload evicts its own one-shot states before the hot set —
// which makes one bounded cache safe to share for the whole lifetime of a
// long-running service under an unbounded stream of workloads. Eviction
// never changes a result: state evaluation is deterministic per state, so a
// dropped entry is recomputed bit-identically on its next visit. Reset
// remains available as a hard rotation point.
func NewCache(maxEntries int) *Cache {
	return &Cache{c: eval.NewCache(maxEntries)}
}

// Stats snapshots the cache's hit/miss/occupancy counters.
func (c *Cache) Stats() CacheStats { return c.c.Stats() }

// Reset drops every memoized state and zeroes the counters. Safe during
// concurrent searches: evaluation is deterministic per state, so in-flight
// lookups just recompute the identical values.
func (c *Cache) Reset() { c.c.Reset() }

// Generator generates interfaces from query logs. The zero-argument New()
// is ready to use with the paper's defaults; functional options tune it.
// A Generator is immutable after New and safe for concurrent use.
type Generator struct {
	opt     core.Options
	workers int
}

// Option configures a Generator.
type Option func(*Generator)

// New returns a Generator configured by opts.
func New(opts ...Option) *Generator {
	g := &Generator{workers: 1}
	for _, o := range opts {
		o(g)
	}
	return g
}

// WithScreen sets the output screen constraint; interfaces that do not fit
// are discarded as invalid. Default WideScreen.
func WithScreen(s Screen) Option { return func(g *Generator) { g.opt.Screen = s } }

// WithIterations bounds the search iteration budget (default
// DefaultIterations; ignored when only WithTimeBudget is set).
func WithIterations(n int) Option { return func(g *Generator) { g.opt.Iterations = n } }

// WithTimeBudget bounds wall-clock search time (the paper runs ~1 minute
// per interface). The search may also be ended early at any moment by the
// context passed to Generate.
func WithTimeBudget(d time.Duration) Option { return func(g *Generator) { g.opt.TimeBudget = d } }

// WithSeed makes generation deterministic (default DefaultSeed).
func WithSeed(seed int64) Option { return func(g *Generator) { g.opt.Seed = seed } }

// WithRolloutDepth bounds random walks during search (default
// DefaultRolloutDepth; the paper allows up to 200).
func WithRolloutDepth(n int) Option { return func(g *Generator) { g.opt.RolloutDepth = n } }

// WithRewardSamples sets k, the random widget assignments scored per state
// (default DefaultRewardSamples).
func WithRewardSamples(k int) Option { return func(g *Generator) { g.opt.RewardSamples = k } }

// WithExplorationC sets the UCT exploration constant (default
// DefaultExplorationC, the paper's √2).
func WithExplorationC(c float64) Option { return func(g *Generator) { g.opt.ExplorationC = c } }

// WithWorkers runs n independent searches in parallel with distinct seeds
// and keeps the best interface (root parallelization, the paper's suggested
// optimization for interactive run-times). Values below 1 mean 1.
func WithWorkers(n int) Option {
	return func(g *Generator) {
		if n < 1 {
			n = 1
		}
		g.workers = n
	}
}

// WithTreeWorkers runs the MCTS search tree-parallel: n goroutines share
// one search tree, with a virtual-loss penalty steering concurrent workers
// onto different paths and all leaf evaluations draining through the shared
// transposition cache. This multiplies iterations/sec within one search —
// the lever that matters under the paper's 1-minute wall-clock budget —
// where WithWorkers instead runs n independent searches (root
// parallelization) and keeps the best. The two compose: WithWorkers(2) and
// WithTreeWorkers(4) runs two trees with four goroutines each.
//
// Determinism contract: n <= 1 (the default) is the sequential search,
// bit-identical per seed. n > 1 gives up run-to-run reproducibility (worker
// interleaving decides which states are visited) in exchange for speed;
// only the quality envelope is pinned. Non-MCTS strategies ignore this
// option. Values below 1 mean 1.
func WithTreeWorkers(n int) Option {
	return func(g *Generator) {
		if n < 1 {
			n = 1
		}
		g.opt.TreeWorkers = n
	}
}

// WithStrategy selects the search strategy (default StrategyMCTS()).
func WithStrategy(s Strategy) Option { return func(g *Generator) { g.opt.Strategy = s } }

// WithCache installs a shared transposition cache (see NewCache), reusing
// memoized state evaluations across every Generate call — and every
// Generator — it is passed to. Without this option each Generate call uses
// a fresh private cache (still shared across that call's workers). A nil
// cache is ignored. Like every option, the last of WithCache/WithoutCache
// wins.
func WithCache(c *Cache) Option {
	return func(g *Generator) {
		if c != nil {
			g.opt.Cache = c.c
			g.opt.DisableMemo = false
		}
	}
}

// WithoutCache disables the evaluation engine's memoization entirely: every
// state is re-scored, re-validated, and re-enumerated on each visit. For a
// fixed seed the result is identical to the cached run — this exists as the
// reference baseline for the bench harness (`make bench-json`) and for
// memory-constrained environments. The last of WithCache/WithoutCache wins.
func WithoutCache() Option {
	return func(g *Generator) {
		g.opt.DisableMemo = true
		g.opt.Cache = nil
	}
}

// WithWarmStart seeds the search from a previously generated interface
// instead of the query log's initial state — the incremental hook for
// long-lived sessions: after appending queries to a log, pass the previous
// interface and the search resumes from it rather than rediscovering the
// same structure from scratch. The warm state is used only when it is still
// legal for the new log (it expresses every query, including appended ones,
// and fits the size cap); otherwise the search silently runs cold —
// Stats().WarmStarted reports which happened. A nil interface is ignored.
func WithWarmStart(f *Interface) Option {
	return func(g *Generator) {
		if f != nil {
			g.opt.WarmStart = f.res.DiffTree
		}
	}
}

// SearchTree is an opaque persisted MCTS search tree, obtained from
// Interface.SearchTree after a sequential (TreeWorkers <= 1) MCTS search and
// fed back through WithSearchTree on the next Generate over an appended log.
// It retains every state the search materialized, so holders should keep
// only the latest tree per session rather than accumulate generations.
type SearchTree struct {
	t *mcts.Tree
}

// WithSearchTree seeds the MCTS search with a tree persisted by a previous
// generation — the second half of the incremental hook for long-lived
// sessions, alongside WithWarmStart: WithWarmStart reuses the previous
// *interface* as the starting state, WithSearchTree reuses the previous
// *search statistics* around it. When the search's starting state occurs
// anywhere in the reused tree, the search re-roots on that subtree — visit
// counts and expanded children included — instead of rediscovering it;
// children that already carry visits skip their simulation pass, which is
// where the evaluation savings come from. Stats().ReRooted reports whether
// re-rooting happened. Reused nodes are reconciled against the current
// (appended) log before being descended through, so a stale tree can never
// smuggle in states that are no longer legal — results remain bit-identical
// to what a search over the current log could produce. Only the sequential
// MCTS search persists and accepts trees: with WithTreeWorkers(n > 1) or a
// non-MCTS strategy the option is ignored and SearchTree() returns nil. A
// nil tree is ignored.
func WithSearchTree(t *SearchTree) Option {
	return func(g *Generator) {
		if t != nil && t.t != nil {
			g.opt.SearchTree = t.t
		}
	}
}

// WithoutInitialCost skips computing the initial-state quality reference:
// Interface.InitialCost() then reports zero and Stats().InitialFan stays
// unset. The reference exists only for reporting (the gap to Cost()
// measures what the search bought); serving hot paths that never read it —
// especially warm-started regenerations, whose searches skip the initial
// state entirely — save a full extraction pass per request by dropping it.
func WithoutInitialCost() Option {
	return func(g *Generator) { g.opt.SkipInitialRef = true }
}

// WithProgress installs an anytime observability callback, invoked with
// best-so-far snapshots while the search runs. With WithWorkers the
// callback is serialized across workers and each snapshot carries its
// worker index. The callback runs on the search goroutine and must be fast.
func WithProgress(fn func(Progress)) Option { return func(g *Generator) { g.opt.Progress = fn } }

// Generate parses the query log (one SQL string per entry) and runs the
// full pipeline under ctx.
//
// Generate is anytime: cancelling ctx — or passing a deadline — stops the
// search promptly and returns the best interface found so far rather than
// an error (Stats().Interrupted reports the early stop). Errors are
// reserved for empty logs and unparsable queries.
func (g *Generator) Generate(ctx context.Context, queries []string) (*Interface, error) {
	if len(queries) == 0 {
		return nil, errors.New("mctsui: empty query log")
	}
	log := make([]*ast.Node, len(queries))
	for i, q := range queries {
		n, err := sqlparser.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("mctsui: query %d: %w", i+1, err)
		}
		log[i] = n
	}
	return g.GenerateFromASTs(ctx, log)
}

// GenerateFromASTs runs the pipeline on pre-parsed queries (see the
// internal/sqlparser and internal/workload packages) with the same anytime
// semantics as Generate.
func (g *Generator) GenerateFromASTs(ctx context.Context, log []*ast.Node) (*Interface, error) {
	if len(log) == 0 {
		return nil, errors.New("mctsui: empty query log")
	}
	var res *core.Result
	var err error
	if g.workers > 1 {
		res, err = core.GenerateParallel(ctx, log, g.opt, g.workers)
	} else {
		res, err = core.Generate(ctx, log, g.opt)
	}
	if err != nil {
		return nil, err
	}
	return &Interface{res: res}, nil
}
