package mctsui

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/workload"
)

// updateGolden rewrites the fixtures instead of comparing against them:
//
//	make golden   (= go test -run TestGoldenFixtures . -args -update-golden)
//
// Regenerate only after an intentional change to search, cost, or widget
// assignment semantics, and review the fixture diff like code.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden fixtures")

// goldenCases are the end-to-end fixtures: the paper's Figure 1 log and the
// SDSS examples, generated with a small fixed budget and seed. Each fixture
// freezes the chosen difftree, the rendered interface, and the full cost
// breakdown — any unintentional drift in parsing, search, assignment,
// layout, or cost shows up as a fixture diff.
func goldenCases() map[string][]*ast.Node {
	return map[string][]*ast.Node{
		"figure1":         workload.PaperFigure1Log(),
		"sdss_full":       workload.SDSSLog(),
		"sdss_subset_6_8": workload.SDSSSubset(6, 8),
		"sdss_join":       workload.SDSSJoinLog(),
		"sdss_join_block": workload.SDSSJoinSubset(1, 6),
	}
}

// renderFixture produces the canonical fixture text for one generated
// interface. Everything in it is deterministic under a fixed seed.
func renderFixture(name string, queries int, iface *Interface) string {
	var b strings.Builder
	m, u := iface.CostBreakdown()
	w, h := iface.Bounds()
	fmt.Fprintf(&b, "workload: %s (%d queries)\n", name, queries)
	fmt.Fprintf(&b, "difftree: %s\n", iface.DiffTree())
	fmt.Fprintf(&b, "cost: total=%.4f M=%.4f U=%.4f widgets=%d bounds=%dx%d valid=%v\n",
		iface.Cost(), m, u, iface.NumWidgets(), w, h, iface.Valid())
	fmt.Fprintf(&b, "initial-cost: %.4f\n", iface.InitialCost())
	fmt.Fprintf(&b, "interface:\n%s", iface.ASCII())
	return b.String()
}

func TestGoldenFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	for name, log := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			gen := New(WithIterations(15), WithRolloutDepth(8), WithSeed(1))
			iface, err := gen.GenerateFromASTs(context.Background(), log)
			if err != nil {
				t.Fatal(err)
			}
			got := renderFixture(name, len(log), iface)
			path := filepath.Join("testdata", "golden", name+".golden")

			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (run `make golden` to create it): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("fixture %s drifted.\n--- got ---\n%s\n--- want ---\n%s\n"+
					"If the change is intentional, regenerate with `make golden` and review the diff.",
					path, got, want)
			}
		})
	}
}

// TestGoldenFixturesCacheInvariance: the fixtures must not depend on the
// memoization mode — the same fixture text is produced with the cache
// disabled. (Figure 1 only: it is the cheapest case and the equivalence is
// already covered per-strategy in internal/core.)
func TestGoldenFixturesCacheInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	cached, err := New(WithIterations(15), WithRolloutDepth(8), WithSeed(1)).
		GenerateFromASTs(context.Background(), log)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(WithIterations(15), WithRolloutDepth(8), WithSeed(1), WithoutCache()).
		GenerateFromASTs(context.Background(), log)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderFixture("x", len(log), cached), renderFixture("x", len(log), uncached); a != b {
		t.Errorf("cache changed the end-to-end result:\n--- cached ---\n%s\n--- uncached ---\n%s", a, b)
	}
}
