package mctsui

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func TestValidateSemanticsSDSS(t *testing.T) {
	iface, err := Generate(workload.SDSSLogSQL(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	db := engine.SDSSDB(100, 1)
	rep := iface.ValidateSemantics(db, 50)
	if rep.Checked == 0 {
		t.Fatal("nothing checked")
	}
	// The SDSS interface factors simple clauses; everything it expresses
	// should execute against the catalog.
	if rep.Fraction() < 0.9 {
		t.Errorf("semantic fraction %.2f (%d/%d); errors: %v",
			rep.Fraction(), rep.Executable, rep.Checked, rep.Errors)
	}
}

func TestValidateSemanticsCatchesUnknownTable(t *testing.T) {
	iface, err := Generate([]string{
		"select a from known",
		"select a from unknown",
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	if err := db.Add(&engine.Table{Name: "known", Cols: []*engine.Column{
		{Name: "a", Type: engine.Int, Ints: []int64{1}},
	}}); err != nil {
		t.Fatal(err)
	}
	rep := iface.ValidateSemantics(db, 10)
	if rep.Executable >= rep.Checked {
		t.Errorf("expected some queries to fail on the missing table: %+v", rep)
	}
	if len(rep.Errors) == 0 {
		t.Error("errors should be reported")
	}
	if rep.Fraction() >= 1 {
		t.Error("fraction must drop below 1")
	}
}

func TestSemanticReportEmptyFraction(t *testing.T) {
	if (SemanticReport{}).Fraction() != 1 {
		t.Error("empty report fraction should be 1")
	}
}

func TestPlausibility(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	sess := iface.NewSession()
	// Every log query has plausibility 1 (all its pairs were observed).
	for _, src := range paperLog {
		if err := sess.LoadQuery(src); err != nil {
			t.Fatal(err)
		}
		if p := sess.Plausibility(); p != 1.0 {
			t.Errorf("log query %q plausibility = %f, want 1", src, p)
		}
	}
	// Find a widget combination the log never used and check it scores
	// lower: Sales+EUR is not in the Figure 1 log.
	if err := sess.LoadQuery("SELECT Sales FROM sales WHERE cty = USA"); err != nil {
		t.Fatal(err)
	}
	before := sess.Plausibility()
	changedToUnseen := false
	ws := sess.Widgets()
	for i := range ws {
		for v := 0; v < 4; v++ {
			if sess.Set(i, v) != nil {
				continue
			}
			sql, err := sess.SQL()
			if err != nil {
				continue
			}
			inLog := false
			for _, src := range paperLog {
				if c := canonical(t, src); c == sql {
					inLog = true
				}
			}
			if !inLog {
				if p := sess.Plausibility(); p < 1.0 {
					changedToUnseen = true
				}
			}
		}
	}
	_ = before
	if !changedToUnseen {
		t.Error("no unseen combination scored below 1 (co-occurrence index inert)")
	}
}

func TestPlausibilitySingleWidget(t *testing.T) {
	// An interface with fewer than 2 choice nodes has no pairs: always 1.
	iface, err := Generate([]string{
		"select a from t",
		"select b from t",
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	sess := iface.NewSession()
	if p := sess.Plausibility(); p != 1.0 {
		t.Errorf("pairless plausibility = %f", p)
	}
}
