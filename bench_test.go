package mctsui

// One benchmark per experiment in DESIGN.md's index. Benchmarks report the
// achieved interface cost via b.ReportMetric (metric "cost") next to the
// usual time/allocation numbers, so `go test -bench` regenerates both the
// performance and the quality numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/layout"
	"repro/internal/rules"
	"repro/internal/search"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// benchOpts is the standard search budget used across benches: big enough
// to reproduce the paper's shapes, small enough to keep bench runs fast.
func benchOpts(screen layout.Screen) core.Options {
	return core.Options{
		Screen:       screen,
		Iterations:   15,
		RolloutDepth: 8,
		Seed:         1,
	}
}

func reportCost(b *testing.B, c float64) {
	if math.IsInf(c, 1) {
		c = -1
	}
	b.ReportMetric(c, "cost")
}

// BenchmarkFig6aAllQueriesWide regenerates Figure 6(a): all SDSS queries on
// the wide screen.
func BenchmarkFig6aAllQueriesWide(b *testing.B) {
	log := workload.SDSSLog()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := core.Generate(context.Background(), log, benchOpts(layout.Wide))
		if err != nil {
			b.Fatal(err)
		}
		last = res.Cost.Total()
	}
	reportCost(b, last)
}

// BenchmarkFig6bAllQueriesNarrow regenerates Figure 6(b): the narrow screen
// flips wide enumerations to compact widgets.
func BenchmarkFig6bAllQueriesNarrow(b *testing.B) {
	log := workload.SDSSLog()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := core.Generate(context.Background(), log, benchOpts(layout.Narrow))
		if err != nil {
			b.Fatal(err)
		}
		last = res.Cost.Total()
	}
	reportCost(b, last)
}

// BenchmarkFig6cSubset regenerates Figure 6(c): queries 6-8 produce a much
// simpler interface.
func BenchmarkFig6cSubset(b *testing.B) {
	log := workload.SDSSSubset(6, 8)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := core.Generate(context.Background(), log, benchOpts(layout.Wide))
		if err != nil {
			b.Fatal(err)
		}
		last = res.Cost.Total()
	}
	reportCost(b, last)
}

// BenchmarkFig6dLowReward regenerates Figure 6(d): the cost of an
// unsearched random-walk state (contrast with Fig6a's searched cost).
func BenchmarkFig6dLowReward(b *testing.B) {
	log := workload.SDSSLog()
	model := cost.Default(layout.Wide)
	var last float64
	for i := 0; i < b.N; i++ {
		d, err := core.RandomWalk(log, 5, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		_, bd, _ := core.BestInterface(d, log, model, 2000, 1)
		last = bd.Total()
	}
	reportCost(b, last)
}

// BenchmarkFig6eReferenceForm scores the hand-coded SDSS-form-style
// interface (flat textboxes/radios) for Figure 6(e).
func BenchmarkFig6eReferenceForm(b *testing.B) {
	log := workload.SDSSLog()
	model := cost.Default(layout.Wide)
	var last float64
	for i := 0; i < b.N; i++ {
		iface, err := baseline.Build(log, model)
		if err != nil {
			b.Fatal(err)
		}
		last = iface.Cost.Total()
	}
	reportCost(b, last)
}

// BenchmarkSearchFanout measures the move-enumeration cost and reports the
// initial fanout (paper: "as high as 50").
func BenchmarkSearchFanout(b *testing.B) {
	log := workload.SDSSLog()
	init, err := difftree.Initial(log)
	if err != nil {
		b.Fatal(err)
	}
	fan := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fan = core.Fanout(init, log, rules.All())
	}
	b.ReportMetric(float64(fan), "fanout")
}

// BenchmarkMCTSBudgetSweep traces cost against the iteration budget
// (paper: ~1 minute of search suffices).
func BenchmarkMCTSBudgetSweep(b *testing.B) {
	log := workload.SDSSLog()
	for _, iters := range []int{1, 5, 15, 40} {
		b.Run(itoa(iters)+"iters", func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(layout.Wide)
				o.Iterations = iters
				res, err := core.Generate(context.Background(), log, o)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost.Total()
			}
			reportCost(b, last)
		})
	}
}

// BenchmarkBaselineVsMCTS compares the 2017 bottom-up baseline with MCTS on
// the SDSS log (experiment C1).
func BenchmarkBaselineVsMCTS(b *testing.B) {
	log := workload.SDSSLog()
	model := cost.Default(layout.Wide)
	b.Run("baseline2017", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			iface, err := baseline.Build(log, model)
			if err != nil {
				b.Fatal(err)
			}
			last = iface.Cost.Total()
		}
		reportCost(b, last)
	})
	b.Run("mcts", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := core.Generate(context.Background(), log, benchOpts(layout.Wide))
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost.Total()
		}
		reportCost(b, last)
	})
}

// benchSpace is the shared comparator state space with the engine's prune.
func benchSpace(init *difftree.Node, log []*ast.Node) search.Space {
	return search.SpaceFor(init, log, rules.All())
}

// BenchmarkSearchStrategies compares MCTS against random, greedy, and beam
// search (experiment C2).
func BenchmarkSearchStrategies(b *testing.B) {
	log := workload.SDSSLog()
	init, err := difftree.Initial(log)
	if err != nil {
		b.Fatal(err)
	}
	model := cost.Default(layout.Wide)
	obj := func(rng *rand.Rand) search.Objective {
		return func(d *difftree.Node) float64 {
			return core.StateCost(d, log, model, 3, rng)
		}
	}
	b.Run("random", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			r := search.Random(context.Background(), init, benchSpace(init, log), obj(rand.New(rand.NewSource(1))), 4, 8, 1)
			last = r.BestCost
		}
		reportCost(b, last)
	})
	b.Run("greedy", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			r := search.Greedy(context.Background(), init, benchSpace(init, log), obj(rand.New(rand.NewSource(1))), 12)
			last = r.BestCost
		}
		reportCost(b, last)
	})
	b.Run("beam3", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			r := search.Beam(context.Background(), init, benchSpace(init, log), obj(rand.New(rand.NewSource(1))), 3, 8)
			last = r.BestCost
		}
		reportCost(b, last)
	})
	b.Run("mcts", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := core.Generate(context.Background(), log, benchOpts(layout.Wide))
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost.Total()
		}
		reportCost(b, last)
	})
}

// BenchmarkExplorationConstant sweeps UCT's c (ablation A1).
func BenchmarkExplorationConstant(b *testing.B) {
	log := workload.SDSSLog()
	for _, c := range []float64{0.2, 1.4, 5} {
		b.Run("c="+ftoa(c), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(layout.Wide)
				o.ExplorationC = c
				res, err := core.Generate(context.Background(), log, o)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost.Total()
			}
			reportCost(b, last)
		})
	}
}

// BenchmarkRolloutDepth sweeps the rollout cap (ablation A2a).
func BenchmarkRolloutDepth(b *testing.B) {
	log := workload.SDSSLog()
	for _, depth := range []int{2, 8, 25} {
		b.Run("depth="+itoa(depth), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(layout.Wide)
				o.RolloutDepth = depth
				res, err := core.Generate(context.Background(), log, o)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost.Total()
			}
			reportCost(b, last)
		})
	}
}

// BenchmarkRewardSamples sweeps k, the widget assignments per reward
// (ablation A2b).
func BenchmarkRewardSamples(b *testing.B) {
	log := workload.SDSSLog()
	for _, k := range []int{1, 5, 10} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(layout.Wide)
				o.RewardSamples = k
				res, err := core.Generate(context.Background(), log, o)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost.Total()
			}
			reportCost(b, last)
		})
	}
}

// BenchmarkScalingLogSize sweeps the synthetic log size (experiment S1).
func BenchmarkScalingLogSize(b *testing.B) {
	for _, n := range []int{5, 10, 20} {
		log := workload.Generate(workload.GenConfig{
			Queries: n, Tables: 3, Projections: 3, TopValues: 3,
			Predicates: 3, PredColumns: 3, LiteralVars: 2, OptWhere: true, Seed: 11})
		b.Run(itoa(n)+"queries", func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := core.Generate(context.Background(), log, benchOpts(layout.Wide))
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost.Total()
			}
			reportCost(b, last)
		})
	}
}

// BenchmarkGenerate is the canonical allocation benchmark for the search hot
// path: one sequential MCTS Generate over the full SDSS log, in the three
// cache modes the searchbench harness times. CI runs it with -benchmem and
// records allocs/op; the uncached mode is the no-memoization reference, cold
// pays first-search cache fills, warm is the steady state an interactive
// session lives in.
func BenchmarkGenerate(b *testing.B) {
	log := workload.SDSSLog()
	run := func(b *testing.B, opt core.Options) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := core.Generate(context.Background(), log, opt)
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost.Total()
		}
		reportCost(b, last)
	}
	b.Run("uncached", func(b *testing.B) {
		opt := benchOpts(layout.Wide)
		opt.DisableMemo = true
		run(b, opt)
	})
	b.Run("cold", func(b *testing.B) {
		// A fresh cache every op: every measured run pays the full
		// first-search miss/insert path.
		for i := 0; i < b.N; i++ {
			opt := benchOpts(layout.Wide)
			opt.Cache = eval.NewCache(0)
			res, err := core.Generate(context.Background(), log, opt)
			if err != nil {
				b.Fatal(err)
			}
			reportCost(b, res.Cost.Total())
		}
	})
	b.Run("warm", func(b *testing.B) {
		opt := benchOpts(layout.Wide)
		opt.Cache = eval.NewCache(0)
		// Prime outside the timed region.
		if _, err := core.Generate(context.Background(), log, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, opt)
	})
}

// BenchmarkGenerateWorkers measures root-parallelization scaling: the same
// search budget per worker, 1 to 8 workers (experiment P1). Wall-clock per
// op should stay near-flat while total iterations scale with the worker
// count — regressions here mean the workers serialized somewhere.
func BenchmarkGenerateWorkers(b *testing.B) {
	log := workload.SDSSLog()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(itoa(workers)+"workers", func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := core.GenerateParallel(context.Background(), log, benchOpts(layout.Wide), workers)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost.Total()
			}
			reportCost(b, last)
		})
	}
}

// Micro-benchmarks for the hot paths.

func BenchmarkParseSDSSQuery(b *testing.B) {
	src := workload.SDSSLogSQL()[0]
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpressSDSS(b *testing.B) {
	log := workload.SDSSLog()
	init, err := difftree.Initial(log)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !difftree.Expressible(init, log[i%len(log)]) {
			b.Fatal("inexpressible")
		}
	}
}

func BenchmarkMovesSDSS(b *testing.B) {
	log := workload.SDSSLog()
	init, err := difftree.Initial(log)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rules.Moves(init, log, rules.All())) == 0 {
			b.Fatal("no moves")
		}
	}
}

func BenchmarkStateCost(b *testing.B) {
	log := workload.SDSSLog()
	init, err := difftree.Initial(log)
	if err != nil {
		b.Fatal(err)
	}
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.StateCost(init, log, model, 5, rng)
	}
}

func BenchmarkEngineExec(b *testing.B) {
	db := engineDB()
	q := sqlparser.MustParse(workload.SDSSLogSQL()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := execBench(db, q); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	p := len(buf)
	for n > 0 {
		p--
		buf[p] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

func ftoa(f float64) string {
	i := int(f * 10)
	return itoa(i/10) + "." + itoa(i%10)
}
