package mctsui

import (
	"io"

	"repro/internal/eval"
)

// Snapshot portability. Because state evaluation is a pure function of
// (configuration, state) — the determinism contract every search strategy
// is built on — a warm cache is not process-local state: its cost and
// legality entries are bit-identical to what any other process running the
// same build would compute. WriteTo/ReadFrom make that portability
// concrete: export a daemon's cache before a restart or ship it to a fresh
// replica, and the importer answers from the first request at warm speed
// without the snapshot ever being able to change a result.
//
// What travels: state costs and legality verdicts, keyed by the mixed
// configuration-fingerprint key, plus the fingerprint inventory (which
// configurations the warm set covers). What doesn't: memoized move sets and
// path pools — they hold process-local pointers and are recomputed cheaply
// on first visit, against already-warm legality verdicts.
//
// The format is versioned and self-checking: a checksum trailer plus an
// embedded grammar-numbering table mean a truncated, corrupt, or
// stale-schema snapshot is rejected with a clean error before a single
// entry is imported — never silently, never partially.

// Sentinel error classes returned by ReadFrom; test with errors.Is.
var (
	// ErrSnapshotFormat reports bytes that are not a well-formed snapshot:
	// wrong magic, truncation, checksum mismatch, or corrupt structure.
	ErrSnapshotFormat = eval.ErrSnapshotFormat
	// ErrSnapshotSchema reports a well-formed snapshot this build cannot
	// honor because its grammar numbering differs (written by a newer or
	// incompatible build), so its keys would not mean what they meant when
	// it was written.
	ErrSnapshotSchema = eval.ErrSnapshotSchema
)

// WriteTo exports the cache's portable entries to w and returns the number
// of entries written. Safe to call concurrently with searches: the snapshot
// is a consistent-per-entry view of a moving cache, which is all
// determinism requires.
func (c *Cache) WriteTo(w io.Writer) (int64, error) { return c.c.Snapshot(w) }

// ReadFrom imports a snapshot from r, returning the number of entries
// merged. Import is idempotent and first-write-wins per entry aspect: it
// never clobbers entries a live search has already computed, and importing
// the same snapshot twice is a no-op. A snapshot larger than the cache's
// capacity imports through the normal eviction path. Malformed or
// incompatible input is fully rejected — the stream is parsed and
// checksum-verified before anything is inserted — with an error matching
// ErrSnapshotFormat or ErrSnapshotSchema.
func (c *Cache) ReadFrom(r io.Reader) (int64, error) { return c.c.LoadSnapshot(r) }

// SaveSnapshot writes the cache snapshot to path crash-safely: bytes land
// in a temporary sibling file, fsynced, then renamed over path — a crash
// mid-write leaves the previous snapshot intact.
func (c *Cache) SaveSnapshot(path string) (int64, error) {
	return eval.SaveSnapshotFile(c.c, path)
}

// LoadSnapshot merges the snapshot file at path into the cache; see
// ReadFrom for the validation and merge semantics.
func (c *Cache) LoadSnapshot(path string) (int64, error) {
	return eval.LoadSnapshotFile(c.c, path)
}
