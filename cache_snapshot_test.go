package mctsui

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// TestCacheSnapshotRestartWarmStart is the restart story end to end through
// the public API: generate with cache A, save A to disk, load into a fresh
// cache B (a "restarted process"), and regenerate. The second run must
// return the byte-identical interface and be warm from the first request.
func TestCacheSnapshotRestartWarmStart(t *testing.T) {
	warm := NewCache(0)
	ifaceA, err := fastGen(WithCache(warm)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cache.snap")
	saved, err := warm.SaveSnapshot(path)
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if saved <= 0 {
		t.Fatalf("saved %d entries", saved)
	}

	restored := NewCache(0)
	loaded, err := restored.LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d entries, saved %d", loaded, saved)
	}

	ifaceB, err := fastGen(WithCache(restored)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if ifaceA.Cost() != ifaceB.Cost() {
		t.Errorf("restart changed best cost: %v != %v", ifaceA.Cost(), ifaceB.Cost())
	}
	if ifaceA.DiffTree() != ifaceB.DiffTree() {
		t.Error("restart changed the best difftree")
	}

	// Warm from the first request: every cost/legality lookup the restored
	// run made must have hit (moves/pools rebuild against warm verdicts, so
	// misses there are expected — but the hit rate must be clearly warm, not
	// the near-zero of a cold start).
	st := restored.Stats()
	if st.Hits == 0 {
		t.Fatal("restored cache saw no hits")
	}
	if rate := st.HitRate(); rate < 0.5 {
		t.Errorf("restored hit rate %.2f, want warm (>= 0.5); stats %+v", rate, st)
	}
}

// TestCacheWriteToReadFrom exercises the streaming pair directly.
func TestCacheWriteToReadFrom(t *testing.T) {
	warm := NewCache(0)
	if _, err := fastGen(WithCache(warm)).Generate(context.Background(), paperLog); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := warm.WriteTo(&buf)
	if err != nil || n <= 0 {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
	fresh := NewCache(0)
	m, err := fresh.ReadFrom(&buf)
	if err != nil || m != n {
		t.Fatalf("ReadFrom: m=%d (want %d) err=%v", m, n, err)
	}
	// Garbage through the public surface maps to the exported sentinel.
	if _, err := fresh.ReadFrom(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("garbage import: got %v, want ErrSnapshotFormat", err)
	}
}
