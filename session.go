package mctsui

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/sqlparser"
	"repro/internal/viz"
)

// Session drives a generated interface interactively: each widget holds a
// current value; changing a value changes the current query (the paper's
// w(q, u) → q' semantics), which can then be executed against a database
// and visualized.
type Session struct {
	iface   *Interface
	widgets []*layout.Node // interaction widgets in pre-order
	// Selections per choice node. Any: child index; Opt: 0/1; Multi: count.
	sel map[*difftree.Node]int
	// Per-instance overrides for choice nodes under a MULTI: key includes
	// the instance path; absent keys fall back to sel.
	instSel map[instKey]int
}

type instKey struct {
	node *difftree.Node
	inst string // "/" separated instance indexes of enclosing MULTIs
}

// NewSession creates a session with every widget at its first option
// (toggles on, adders at one instance).
func (f *Interface) NewSession() *Session {
	s := &Session{
		iface:   f,
		sel:     make(map[*difftree.Node]int),
		instSel: make(map[instKey]int),
	}
	if f.res.UI != nil {
		s.widgets = f.res.UI.Widgets()
	}
	root := f.res.DiffTree
	difftree.WalkPath(root, func(n *difftree.Node, _ difftree.Path) bool {
		switch n.Kind {
		case difftree.Any:
			s.sel[n] = 0
		case difftree.Opt:
			s.sel[n] = 1
		case difftree.Multi:
			s.sel[n] = 1
		}
		return true
	})
	return s
}

// Interface returns the interface this session drives.
func (s *Session) Interface() *Interface { return s.iface }

// WidgetInfo describes one interactive widget for display.
type WidgetInfo struct {
	Index   int
	Type    string
	Title   string
	Options []string
	Value   string
}

// Widgets lists the session's widgets with their current values.
func (s *Session) Widgets() []WidgetInfo {
	out := make([]WidgetInfo, len(s.widgets))
	for i, w := range s.widgets {
		info := WidgetInfo{
			Index:   i,
			Type:    w.Type.String(),
			Title:   w.Title,
			Options: w.Domain.Options,
		}
		switch w.Choice.Kind {
		case difftree.Any:
			idx := s.sel[w.Choice]
			if idx >= 0 && idx < len(w.Domain.Options) {
				info.Value = w.Domain.Options[idx]
			}
		case difftree.Opt:
			if s.sel[w.Choice] != 0 {
				info.Value = "on"
			} else {
				info.Value = "off"
			}
		case difftree.Multi:
			info.Value = fmt.Sprintf("%d instance(s)", s.sel[w.Choice])
		}
		out[i] = info
	}
	return out
}

// Set changes widget i's value: the option index for choice widgets, 0/1
// for toggles, and the instance count for adders.
func (s *Session) Set(widget, value int) error {
	if widget < 0 || widget >= len(s.widgets) {
		return fmt.Errorf("mctsui: widget %d out of range [0,%d)", widget, len(s.widgets))
	}
	w := s.widgets[widget]
	switch w.Choice.Kind {
	case difftree.Any:
		if value < 0 || value >= len(w.Choice.Children) {
			return fmt.Errorf("mctsui: option %d out of range for %q", value, w.Title)
		}
	case difftree.Opt:
		if value != 0 && value != 1 {
			return fmt.Errorf("mctsui: toggle %q takes 0 or 1", w.Title)
		}
	case difftree.Multi:
		if value < 0 || value > 16 {
			return fmt.Errorf("mctsui: adder %q takes 0..16 instances", w.Title)
		}
	}
	s.sel[w.Choice] = value
	return nil
}

// SetInstance overrides a choice widget's value inside one adder instance
// (instance indexes of the enclosing MULTIs, outermost first).
func (s *Session) SetInstance(widget, value int, instance ...int) error {
	if widget < 0 || widget >= len(s.widgets) {
		return fmt.Errorf("mctsui: widget %d out of range", widget)
	}
	w := s.widgets[widget]
	if w.Choice.Kind == difftree.Any && (value < 0 || value >= len(w.Choice.Children)) {
		return fmt.Errorf("mctsui: option %d out of range for %q", value, w.Title)
	}
	s.instSel[instKey{node: w.Choice, inst: instString(instance)}] = value
	return nil
}

func instString(inst []int) string {
	var b strings.Builder
	for _, i := range inst {
		fmt.Fprintf(&b, "/%d", i)
	}
	return b.String()
}

// SQL returns the current query.
func (s *Session) SQL() (string, error) {
	q, err := s.Query()
	if err != nil {
		return "", err
	}
	return sqlparser.Render(q), nil
}

// Query materializes the current query AST from the widget values.
func (s *Session) Query() (*ast.Node, error) {
	g := &generator{s: s}
	seq, err := g.gen(s.iface.res.DiffTree)
	if err != nil {
		return nil, err
	}
	if len(seq) != 1 {
		return nil, fmt.Errorf("mctsui: widget values generate %d root nodes", len(seq))
	}
	return seq[0], nil
}

// Execute runs the current query against a database and recommends a
// visualization for the result.
func (s *Session) Execute(db *engine.DB) (*engine.Result, viz.Spec, error) {
	q, err := s.Query()
	if err != nil {
		return nil, viz.Spec{}, err
	}
	res, err := engine.Exec(db, q)
	if err != nil {
		return nil, viz.Spec{}, err
	}
	return res, viz.Recommend(res), nil
}

// generator materializes an AST from the difftree under the session's
// selections, tracking MULTI instance paths for per-instance overrides.
type generator struct {
	s    *Session
	inst []int
}

func (g *generator) lookup(n *difftree.Node) int {
	if len(g.inst) > 0 {
		if v, ok := g.s.instSel[instKey{node: n, inst: instString(g.inst)}]; ok {
			return v
		}
	}
	return g.s.sel[n]
}

func (g *generator) gen(n *difftree.Node) ([]*ast.Node, error) {
	switch n.Kind {
	case difftree.All:
		if n.IsEmpty() {
			return nil, nil
		}
		var kids []*ast.Node
		for _, c := range n.Children {
			sub, err := g.gen(c)
			if err != nil {
				return nil, err
			}
			kids = append(kids, sub...)
		}
		if n.IsSeq() {
			return kids, nil
		}
		return []*ast.Node{{Kind: n.Label, Value: n.Value, Children: kids}}, nil

	case difftree.Any:
		idx := g.lookup(n)
		if idx < 0 || idx >= len(n.Children) {
			return nil, fmt.Errorf("mctsui: selection %d out of range", idx)
		}
		return g.gen(n.Children[idx])

	case difftree.Opt:
		if g.lookup(n) == 0 {
			return nil, nil
		}
		return g.gen(n.Children[0])

	case difftree.Multi:
		count := g.lookup(n)
		var out []*ast.Node
		for i := 0; i < count; i++ {
			g.inst = append(g.inst, i)
			sub, err := g.gen(n.Children[0])
			g.inst = g.inst[:len(g.inst)-1]
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("mctsui: unknown difftree node kind")
}

// LoadQuery sets every widget so the session's current query equals q (the
// paper's "clicking on the q2 button loads the corresponding query"). It
// fails if the interface cannot express q. Per-instance overrides are reset.
func (s *Session) LoadQuery(query string) error {
	q, err := sqlparser.Parse(query)
	if err != nil {
		return err
	}
	asg, ok := difftree.Express(s.iface.res.DiffTree, q)
	if !ok {
		return fmt.Errorf("mctsui: interface cannot express %q", query)
	}
	s.instSel = make(map[instKey]int)
	for node, choice := range asg {
		switch node.Kind {
		case difftree.Any:
			parts := strings.Split(choice, "|")
			idx := 0
			fmt.Sscanf(parts[0], "%d", &idx)
			s.sel[node] = idx
			// Per-instance picks for choices under a MULTI.
			if len(parts) > 1 {
				for i, p := range parts {
					v := 0
					fmt.Sscanf(p, "%d", &v)
					s.instSel[instKey{node: node, inst: instString([]int{i})}] = v
				}
			}
		case difftree.Opt:
			parts := strings.Split(choice, "|")
			if parts[0] == "on" {
				s.sel[node] = 1
			} else {
				s.sel[node] = 0
			}
			if len(parts) > 1 { // per-instance toggles under a MULTI
				for i, p := range parts {
					v := 0
					if p == "on" {
						v = 1
					}
					s.instSel[instKey{node: node, inst: instString([]int{i})}] = v
				}
			}
		case difftree.Multi:
			s.sel[node] = strings.Count(choice, "+")
		}
	}
	return nil
}
