package mctsui

import (
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/difftree"
	"repro/internal/sqlparser"
)

// multiInterface hand-builds an interface whose difftree contains a MULTI
// node (the adder widget): WHERE is a repetition of BETWEEN predicates over
// a choice of columns, as produced by the MultiMerge rule on the SDSS log.
func multiInterface(t *testing.T) (*Interface, []string) {
	t.Helper()
	// All logs keep >= 2 conjuncts so the parser produces an And node (a
	// single predicate parses as a bare BETWEEN without the wrapper).
	logSQL := []string{
		"select a from t where u between 0 and 30 and g between 0 and 30",
		"select a from t where g between 0 and 30 and r between 0 and 30",
		"select a from t where u between 0 and 30 and g between 0 and 30 and r between 0 and 30",
	}
	log := make([]*ast.Node, len(logSQL))
	for i, s := range logSQL {
		log[i] = sqlparser.MustParse(s)
	}

	between := func(col string) *difftree.Node {
		return difftree.NewAll(ast.KindBetween, "",
			difftree.NewAll(ast.KindColExpr, col),
			difftree.NewAll(ast.KindNumExpr, "0"),
			difftree.NewAll(ast.KindNumExpr, "30"))
	}
	d := difftree.NewAll(ast.KindSelect, "",
		difftree.NewAll(ast.KindProject, "", difftree.NewAll(ast.KindColExpr, "a")),
		difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "t")),
		difftree.NewAll(ast.KindWhere, "",
			difftree.NewAll(ast.KindAnd, "",
				difftree.NewMulti(difftree.NewAny(between("u"), between("g"), between("r"))))))
	if err := difftree.Validate(d); err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Fatal("hand-built tree must express the log")
	}
	plan, err := assign.BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	return &Interface{res: &core.Result{DiffTree: d, UI: plan.First(), Log: log}}, logSQL
}

func TestSessionAdderLoadQuery(t *testing.T) {
	iface, logSQL := multiInterface(t)
	sess := iface.NewSession()
	for _, src := range logSQL {
		if err := sess.LoadQuery(src); err != nil {
			t.Fatalf("LoadQuery(%q): %v", src, err)
		}
		got, err := sess.SQL()
		if err != nil {
			t.Fatalf("SQL after %q: %v", src, err)
		}
		want := sqlparser.Render(sqlparser.MustParse(src))
		if got != want {
			t.Errorf("adder round trip: got %q want %q", got, want)
		}
	}
}

func TestSessionAdderSetCountAndInstances(t *testing.T) {
	iface, _ := multiInterface(t)
	sess := iface.NewSession()

	// Find the adder and the inner column choice.
	ws := sess.Widgets()
	adderIdx, choiceIdx := -1, -1
	for _, w := range ws {
		switch w.Type {
		case "adder":
			adderIdx = w.Index
		case "radio", "buttons", "dropdown":
			choiceIdx = w.Index
		}
	}
	if adderIdx < 0 || choiceIdx < 0 {
		t.Fatalf("widgets: %+v", ws)
	}

	// Two instances: u and r.
	if err := sess.Set(adderIdx, 2); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetInstance(choiceIdx, 0, 0); err != nil { // instance 0 -> u
		t.Fatal(err)
	}
	if err := sess.SetInstance(choiceIdx, 2, 1); err != nil { // instance 1 -> r
		t.Fatal(err)
	}
	sql, err := sess.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "u BETWEEN") || !strings.Contains(sql, "r BETWEEN") {
		t.Errorf("instances not honored: %q", sql)
	}

	// Count 0: empty conjunction (renders as bare WHERE; it is still a
	// well-formed tree even if semantically odd — the engine will reject it,
	// which is exactly what ValidateSemantics is for).
	if err := sess.Set(adderIdx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(); err != nil {
		t.Fatalf("zero instances: %v", err)
	}

	// Out-of-range counts rejected.
	if err := sess.Set(adderIdx, 99); err == nil {
		t.Error("count 99 should be rejected")
	}
	// SetInstance bounds checks.
	if err := sess.SetInstance(choiceIdx, 99, 0); err == nil {
		t.Error("option 99 should be rejected")
	}
	if err := sess.SetInstance(-1, 0, 0); err == nil {
		t.Error("widget -1 should be rejected")
	}
}

func TestSessionAdderWidgetValue(t *testing.T) {
	iface, _ := multiInterface(t)
	sess := iface.NewSession()
	for _, w := range sess.Widgets() {
		if w.Type == "adder" && !strings.Contains(w.Value, "instance") {
			t.Errorf("adder value = %q", w.Value)
		}
	}
}
