package mctsui

import (
	"strings"
	"testing"
)

func TestMarshalLoadRoundTrip(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := iface.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadInterface(data, WideScreen)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cost() != iface.Cost() {
		t.Errorf("cost drift: %f vs %f", loaded.Cost(), iface.Cost())
	}
	if loaded.NumWidgets() != iface.NumWidgets() {
		t.Error("widget count drift")
	}
	if loaded.ASCII() != iface.ASCII() {
		t.Errorf("render drift:\n%s\nvs\n%s", loaded.ASCII(), iface.ASCII())
	}
	// Loaded interfaces are fully functional sessions.
	sess := loaded.NewSession()
	if err := sess.LoadQuery(paperLog[0]); err != nil {
		t.Fatal(err)
	}
	sql, err := sess.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "Sales") {
		t.Errorf("loaded session SQL: %q", sql)
	}
	// Default screen is wide.
	if _, err := LoadInterface(data, Screen{}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadInterfaceErrors(t *testing.T) {
	if _, err := LoadInterface([]byte("not json"), WideScreen); err == nil {
		t.Error("bad json must fail")
	}
	if _, err := LoadInterface([]byte(`{"version":1,"queries":["???"],"difftree":{"kind":"ALL","label":"Table","value":"t"}}`), WideScreen); err == nil {
		t.Error("unparsable stored query must fail")
	}
}

func TestGenerateMultiSplitsTasks(t *testing.T) {
	mixed := []string{
		"select top 10 objid from stars where u between 0 and 30",
		"select region, sum(revenue) from sales where year = 2019 group by region",
		"select top 100 objid from stars where u between 5 and 25",
		"select region, sum(revenue) from sales where year = 2020 group by region",
	}
	ifaces, err := GenerateMulti(mixed, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ifaces) != 2 {
		t.Fatalf("interfaces = %d, want 2 (one per task)", len(ifaces))
	}
	// Cluster order follows the log: SDSS-style first.
	ok, err := ifaces[0].CanExpress(mixed[0])
	if err != nil || !ok {
		t.Error("cluster 0 should express the first query")
	}
	ok, err = ifaces[1].CanExpress(mixed[1])
	if err != nil || !ok {
		t.Error("cluster 1 should express the aggregate query")
	}
	// Cross-cluster queries are not expressible.
	if ok, _ := ifaces[0].CanExpress(mixed[1]); ok {
		t.Error("cluster 0 must not express the other task")
	}
}

func TestGenerateMultiErrors(t *testing.T) {
	if _, err := GenerateMulti(nil, Config{}); err == nil {
		t.Error("empty log")
	}
	if _, err := GenerateMulti([]string{"nope"}, Config{}); err == nil {
		t.Error("parse error")
	}
}

func TestGenerateMultiCoherentLogStaysWhole(t *testing.T) {
	ifaces, err := GenerateMulti(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ifaces) != 1 {
		t.Fatalf("coherent log split into %d interfaces", len(ifaces))
	}
}

func TestInterfacePage(t *testing.T) {
	iface, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	page, err := iface.Page("Sales dashboard")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "Sales dashboard", "const DIFFTREE", "data-choice"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}
