package mctsui

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// fastGen mirrors fastCfg for the Generator API.
func fastGen(extra ...Option) *Generator {
	opts := []Option{
		WithIterations(10),
		WithRolloutDepth(6),
		WithRewardSamples(3),
		WithSeed(1),
	}
	return New(append(opts, extra...)...)
}

func TestGeneratorMatchesDeprecatedShim(t *testing.T) {
	iface, err := fastGen().Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	shim, err := Generate(paperLog, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if iface.Cost() != shim.Cost() {
		t.Errorf("Generator cost %.4f != deprecated shim cost %.4f for identical settings",
			iface.Cost(), shim.Cost())
	}
	if !iface.Valid() {
		t.Error("invalid interface")
	}
}

func TestGenerateNilContext(t *testing.T) {
	iface, err := fastGen().Generate(nil, paperLog) //nolint:staticcheck // nil ctx is documented as Background
	if err != nil {
		t.Fatal(err)
	}
	if !iface.Valid() {
		t.Error("nil ctx must behave like context.Background()")
	}
}

func TestGenerateCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	iface, err := New(
		WithIterations(1<<30),
		WithSeed(1),
	).Generate(ctx, workload.SDSSLogSQL())
	if err != nil {
		t.Fatalf("cancellation must yield best-so-far, not an error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled generate took %v", elapsed)
	}
	st := iface.Stats()
	if !st.Interrupted {
		t.Error("Stats().Interrupted must be set after cancellation")
	}
	if st.Iterations != 0 {
		t.Errorf("pre-cancelled context still ran %d iterations", st.Iterations)
	}
	// Even with zero search the pipeline extracts the initial state's best
	// interface, which must express the whole log.
	if math.IsInf(iface.Cost(), 1) {
		t.Error("best-so-far interface has no finite cost")
	}
	for _, q := range workload.SDSSLogSQL() {
		ok, err := iface.CanExpress(q)
		if err != nil || !ok {
			t.Fatalf("best-so-far interface cannot express log query %q", q)
		}
	}
}

func TestGenerateDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	iface, err := New(
		WithIterations(1<<30), // far beyond what 150ms allows
		WithSeed(1),
	).Generate(ctx, workload.SDSSLogSQL())
	if err != nil {
		t.Fatal(err)
	}
	// Generous bound: the search must stop at the deadline; only final
	// extraction work may follow.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("deadline ignored: generate took %v", elapsed)
	}
	if !iface.Stats().Interrupted {
		t.Error("deadline must set Interrupted")
	}
	if math.IsInf(iface.Cost(), 1) {
		t.Error("no finite best-so-far interface at deadline")
	}
}

func TestProgressSnapshots(t *testing.T) {
	var snaps []Progress
	iface, err := fastGen(
		WithIterations(12),
		WithProgress(func(p Progress) { snaps = append(snaps, p) }),
	).Generate(context.Background(), workload.SDSSLogSQL())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	for i, p := range snaps {
		if p.Strategy != "mcts" {
			t.Fatalf("snapshot %d: strategy %q", i, p.Strategy)
		}
		if p.Worker != 0 {
			t.Fatalf("snapshot %d: worker %d without WithWorkers", i, p.Worker)
		}
		if i == 0 {
			continue
		}
		if p.BestCost > snaps[i-1].BestCost {
			t.Errorf("best cost increased between snapshots: %.3f -> %.3f",
				snaps[i-1].BestCost, p.BestCost)
		}
		if p.Iterations < snaps[i-1].Iterations || p.Evals < snaps[i-1].Evals {
			t.Error("iteration/eval counters must be monotone non-decreasing")
		}
	}
	last := snaps[len(snaps)-1]
	if last.Iterations != 12 {
		t.Errorf("final snapshot at iteration %d, want 12", last.Iterations)
	}
	// The delivered interface can only improve on the search-time estimate.
	if iface.Cost() > last.BestCost+1e-9 {
		t.Errorf("final cost %.3f worse than last snapshot's best %.3f", iface.Cost(), last.BestCost)
	}
}

func TestStatsTrajectory(t *testing.T) {
	iface, err := fastGen().Generate(context.Background(), workload.SDSSLogSQL())
	if err != nil {
		t.Fatal(err)
	}
	traj := iface.Stats().Trajectory
	if len(traj) == 0 {
		t.Fatal("empty best-cost trajectory")
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].Cost >= traj[i-1].Cost {
			t.Error("trajectory costs must be strictly decreasing")
		}
		if traj[i].Evals < traj[i-1].Evals {
			t.Error("trajectory evals must be non-decreasing")
		}
	}
	final := traj[len(traj)-1].Cost
	if math.Abs(final-iface.Cost()) > 1e-9 {
		t.Errorf("trajectory ends at %.4f but interface cost is %.4f", final, iface.Cost())
	}
}

func TestWithStrategySelection(t *testing.T) {
	queries := workload.SDSSLogSQL()
	for _, tc := range []struct {
		name string
		s    Strategy
	}{
		{"mcts", StrategyMCTS()},
		{"beam", StrategyBeam(3)},
		{"greedy", StrategyGreedy()},
		{"random", StrategyRandom(4)},
	} {
		iface, err := fastGen(WithStrategy(tc.s)).Generate(context.Background(), queries)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := iface.Stats().Strategy; got != tc.name {
			t.Errorf("%s: Stats().Strategy = %q", tc.name, got)
		}
		if !iface.Valid() {
			t.Errorf("%s: invalid interface", tc.name)
		}
		for _, q := range queries {
			if ok, _ := iface.CanExpress(q); !ok {
				t.Fatalf("%s: interface cannot express log query %q", tc.name, q)
			}
		}
	}
}

func TestExhaustiveStrategy(t *testing.T) {
	tiny := paperLog[:2]
	exact, err := New(
		WithStrategy(StrategyExhaustive(3000)),
		WithRewardSamples(1),
		WithSeed(1),
	).Generate(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	st := exact.Stats()
	if st.Strategy != "exhaustive" {
		t.Errorf("Stats().Strategy = %q", st.Strategy)
	}
	// Even this 2-query space exceeds the cap (expansion rules keep
	// producing fresh trees up to the size bound), so the sweep must stop
	// exactly at maxStates and report incompleteness honestly.
	if st.Expanded != 3000 {
		t.Errorf("exhaustive visited %d states, want exactly the 3000 cap", st.Expanded)
	}
	if st.SpaceExhausted {
		t.Error("capped sweep must not claim the space was exhausted")
	}
	if !exact.Valid() {
		t.Error("invalid interface")
	}
	// A 3000-state BFS around the initial state can only improve on it.
	if exact.Cost() > exact.InitialCost()+1e-9 {
		t.Errorf("exhaustive cost %.3f worse than the initial state %.3f",
			exact.Cost(), exact.InitialCost())
	}
}

func TestTimeBudgetIsNotInterruption(t *testing.T) {
	// Exhausting one's own WithTimeBudget is a normal completion for every
	// strategy (MCTS checks it natively; the others via a derived
	// deadline) — only the caller's context ending counts as interrupted.
	var snaps []Progress
	iface, err := New(
		WithStrategy(StrategyBeam(4)),
		WithTimeBudget(200*time.Millisecond),
		WithSeed(1),
		WithProgress(func(p Progress) { snaps = append(snaps, p) }),
	).Generate(context.Background(), workload.SDSSLogSQL())
	if err != nil {
		t.Fatal(err)
	}
	if iface.Stats().Interrupted {
		t.Error("finishing the configured TimeBudget must not report Interrupted")
	}
	for _, p := range snaps {
		if p.Iterations != p.Evals {
			t.Fatalf("non-MCTS snapshot: Iterations=%d != Evals=%d", p.Iterations, p.Evals)
		}
	}
	// A genuinely cancelled caller context, by contrast, must report it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	iface2, err := New(
		WithStrategy(StrategyBeam(4)),
		WithIterations(1000),
		WithSeed(1),
	).Generate(ctx, workload.SDSSLogSQL())
	if err != nil {
		t.Fatal(err)
	}
	if !iface2.Stats().Interrupted {
		t.Error("cancelled caller context must report Interrupted for non-MCTS strategies")
	}
}

func TestGenerateFromASTsEmptyLog(t *testing.T) {
	for name, err := range map[string]error{
		"generator": func() error { _, e := New().GenerateFromASTs(context.Background(), nil); return e }(),
		"shim":      func() error { _, e := GenerateFromASTs(nil, Config{}); return e }(),
	} {
		if err == nil || !strings.Contains(err.Error(), "mctsui: empty query log") {
			t.Errorf("%s: want the documented mctsui error, got %v", name, err)
		}
	}
}

func TestStrategyByName(t *testing.T) {
	for spec, want := range map[string]string{
		"mcts":             "mcts",
		"beam":             "beam",
		"beam:12":          "beam",
		"greedy":           "greedy",
		"random:9":         "random",
		"exhaustive:10000": "exhaustive",
	} {
		s, err := StrategyByName(spec)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", spec, err)
		}
		if s.Name() != want {
			t.Errorf("StrategyByName(%q).Name() = %q, want %q", spec, s.Name(), want)
		}
	}
	for _, bad := range []string{"", "dfs", "beam:zero", "beam:-3", "mcts:5"} {
		if _, err := StrategyByName(bad); err == nil {
			t.Errorf("StrategyByName(%q) should fail", bad)
		}
	}
}

func TestWithWorkers(t *testing.T) {
	single, err := fastGen().Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	par, err := fastGen(
		WithWorkers(3),
		WithProgress(func(p Progress) { snaps = append(snaps, p) }),
	).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost() > single.Cost() {
		t.Errorf("3 workers (%.3f) worse than their own seed-1 member (%.3f)", par.Cost(), single.Cost())
	}
	if got := par.Stats().Workers; got != 3 {
		t.Errorf("Stats().Workers = %d, want 3", got)
	}
	workersSeen := map[int]bool{}
	for _, p := range snaps {
		workersSeen[p.Worker] = true
	}
	if len(workersSeen) != 3 {
		t.Errorf("progress snapshots from %d distinct workers, want 3", len(workersSeen))
	}
}

// TestWithCacheSharesAcrossCalls: a caller-provided cache carries memoized
// state evaluations across Generate calls — the second call hits what the
// first computed, with an identical result; WithoutCache records nothing.
// TestWithTreeWorkers covers the public tree-parallel option: one worker is
// bit-identical to the default sequential search, several workers still
// return a valid interface (never worse than the unsearched initial state)
// and report their count in Stats.
func TestWithTreeWorkers(t *testing.T) {
	seq, err := fastGen().Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	one, err := fastGen(WithTreeWorkers(1)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if one.Cost() != seq.Cost() || one.DiffTree() != seq.DiffTree() {
		t.Errorf("WithTreeWorkers(1) diverged from the sequential default: cost %v vs %v",
			one.Cost(), seq.Cost())
	}
	if one.Stats().TreeWorkers != 1 {
		t.Errorf("TreeWorkers stat = %d, want 1", one.Stats().TreeWorkers)
	}

	par, err := fastGen(WithTreeWorkers(4)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Valid() {
		t.Error("tree-parallel interface invalid")
	}
	if par.Cost() > par.InitialCost() {
		t.Errorf("tree-parallel search worse than the initial state: %v vs %v", par.Cost(), par.InitialCost())
	}
	if par.Stats().TreeWorkers != 4 {
		t.Errorf("TreeWorkers stat = %d, want 4", par.Stats().TreeWorkers)
	}
}

func TestWithCacheSharesAcrossCalls(t *testing.T) {
	cache := NewCache(0)
	gen := fastGen(WithCache(cache))

	first, err := gen.Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := cache.Stats()
	if afterFirst.Entries == 0 {
		t.Fatal("shared cache stayed empty")
	}

	second, err := gen.Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cost() != second.Cost() {
		t.Errorf("shared cache changed the result: %v vs %v", first.Cost(), second.Cost())
	}
	afterSecond := cache.Stats()
	if afterSecond.Entries != afterFirst.Entries {
		t.Errorf("identical rerun grew the cache: %d -> %d entries", afterFirst.Entries, afterSecond.Entries)
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Error("second run recorded no additional cache hits")
	}
	if second.Stats().CacheHitRate <= first.Stats().CacheHitRate {
		t.Errorf("cumulative hit rate did not rise: %.3f -> %.3f",
			first.Stats().CacheHitRate, second.Stats().CacheHitRate)
	}

	plain, err := fastGen(WithoutCache()).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost() != first.Cost() {
		t.Errorf("WithoutCache changed the result: %v vs %v", plain.Cost(), first.Cost())
	}
	if s := plain.Stats(); s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("WithoutCache recorded cache traffic: %+v", s)
	}
}

func TestWithWarmStart(t *testing.T) {
	prefix := paperLog[:len(paperLog)-1]
	prev, err := fastGen().Generate(context.Background(), prefix)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCache(0)
	warm, err := fastGen(WithCache(cache), WithWarmStart(prev)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range paperLog {
		ok, err := warm.CanExpress(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("incremental interface cannot express %q", q)
		}
	}
	// The same warm-started regeneration is deterministic.
	again, err := fastGen(WithCache(cache), WithWarmStart(prev)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cost() != again.Cost() {
		t.Errorf("warm-started regeneration not deterministic: %v vs %v", warm.Cost(), again.Cost())
	}
	if warm.Stats().WarmStarted != again.Stats().WarmStarted {
		t.Error("WarmStarted flapped across identical runs")
	}
	// A nil warm start is ignored and a self warm start is always legal.
	self, err := fastGen(WithWarmStart(nil), WithWarmStart(warm)).Generate(context.Background(), paperLog)
	if err != nil {
		t.Fatal(err)
	}
	if !self.Stats().WarmStarted {
		t.Error("self warm start was rejected")
	}
	if self.Cost() > warm.Cost() {
		t.Errorf("self warm start regressed: %v > %v", self.Cost(), warm.Cost())
	}
}
