// Command mctsvet is the project's multichecker: it runs the standard `go
// vet` passes and the custom internal/analysis suite that machine-checks
// this repository's determinism and concurrency contracts (detmap,
// wallclock, slicealias, cachewrite, directive — see `mctsvet -list` and
// the README's "Static analysis" section).
//
// Usage:
//
//	go run ./cmd/mctsvet ./...         # vet + custom analyzers (CI mode)
//	go run ./cmd/mctsvet -novet ./...  # custom analyzers only
//	go run ./cmd/mctsvet -list         # describe the suite
//
// Exit status: 0 clean, 1 findings, 2 operational failure. Suppressions use
// in-source directives the suite itself validates:
//
//	//mctsvet:allow <analyzer>[,<analyzer>...] -- <reason>
//
// on the offending line or the line directly above. Unused suppressions are
// reported too, so annotations track the code they excuse.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		novet = flag.Bool("novet", false, "skip the standard `go vet` passes")
		list  = flag.Bool("list", false, "list the custom analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = fmt.Sprintf("%d packages", len(a.Packages))
			}
			fmt.Printf("%-12s (%s)\n    %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings := 0

	// The standard vet passes run first, on the same patterns: mctsvet is
	// the one gate, not a second one next to vet.
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintf(os.Stderr, "mctsvet: running go vet: %v\n", err)
				return 2
			}
			findings++
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mctsvet: %v\n", err)
		return 2
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analysis.All(), analysis.RunOptions{
			Scoped:       true,
			ReportUnused: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mctsvet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Println(d)
			findings++
		}
	}

	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mctsvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
