// Command mctsuid is the long-lived serving daemon: it keeps the evicting
// transposition cache and user sessions resident so repeat and incremental
// generation requests run against warm state instead of from scratch.
//
// Usage:
//
//	mctsuid [-addr :8080] [-replica-id ID] [-cache-entries 1048576]
//	        [-max-concurrent N] [-max-workers N] [-queue-depth N]
//	        [-queue-wait 10s] [-max-budget 1m] [-default-budget 0]
//	        [-max-sessions 1024] [-max-queries 500] [-shutdown-grace 10s]
//	        [-cache-snapshot PATH] [-snapshot-interval 5m]
//
// Endpoints (all JSON; see internal/server):
//
//	POST /v1/generate               anytime generation (SSE with "stream":true)
//	POST /v1/sessions/{id}/queries  append queries, warm-started regeneration
//	POST /v1/sessions/{id}/interact drive the session's widgets
//	POST /v1/sessions/{id}/import   load a persisted interface as a session
//	GET  /v1/sessions/{id}/export   persisted JSON or interactive HTML
//	GET  /v1/cache/export           warm-cache snapshot (binary)
//	POST /v1/cache/import           merge a snapshot into the cache
//	POST /v1/drain                  begin graceful drain (fleet handoff hook)
//	GET  /v1/stats                  observability
//	GET  /healthz, GET /readyz      liveness vs readiness
//
// With -cache-snapshot PATH the daemon loads the snapshot at boot (a
// missing or stale file logs a warning and starts cold — never fails the
// boot), rewrites it every -snapshot-interval (atomic temp-file+rename, so
// a crash mid-write keeps the previous snapshot), and persists a final
// snapshot on graceful shutdown. Restarts therefore serve warm from the
// first request. The listener comes up immediately and the snapshot loads
// in the background: /readyz answers 503 until the load finishes, so a
// fleet router (cmd/mctsrouter) keeps traffic off the replica while it is
// still cold without mistaking it for dead.
//
// -replica-id names the daemon in a fleet: the id appears in the /v1/stats
// replica section and as an X-Replica header on every response.
//
// SIGINT/SIGTERM drain gracefully: in-flight searches are cancelled and
// return their best-so-far interfaces (the daemon analogue of cmd/mctsui's
// Ctrl-C), then the listener shuts down within -shutdown-grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	replicaID := flag.String("replica-id", "", "fleet identity reported on /v1/stats and as an X-Replica header (empty = single node)")
	cacheEntries := flag.Int("cache-entries", 0, "transposition cache bound in states (0 = ~1M default); the cache CLOCK-evicts once full")
	maxConcurrent := flag.Int("max-concurrent", 0, "max simultaneous searches (0 = GOMAXPROCS)")
	maxWorkers := flag.Int("max-workers", 0, "per-request parallelism budget: workers x tree_workers is capped here (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max requests waiting for a search slot (0 = 4x max-concurrent); overflow gets 429")
	queueWait := flag.Duration("queue-wait", 10*time.Second, "max time a request waits for a slot before 503")
	maxBudget := flag.Duration("max-budget", time.Minute, "cap on per-request wall-clock search budgets")
	defaultBudget := flag.Duration("default-budget", 0, "budget when a request sets neither budget_ms nor iterations (0 = engine iteration default)")
	maxSessions := flag.Int("max-sessions", 0, "max resident sessions before LRU eviction (0 = 1024)")
	maxQueries := flag.Int("max-queries", 0, "max queries per session/request log (0 = 500)")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	snapshotPath := flag.String("cache-snapshot", "", "cache snapshot file: loaded at boot, rewritten periodically and on graceful shutdown (empty = no persistence)")
	snapshotInterval := flag.Duration("snapshot-interval", 5*time.Minute, "how often to persist the cache snapshot (with -cache-snapshot)")
	flag.Parse()

	srv := server.New(server.Config{
		ReplicaID:     *replicaID,
		StartUnready:  *snapshotPath != "", // /readyz gates on the warm-boot load below
		CacheEntries:  *cacheEntries,
		MaxConcurrent: *maxConcurrent,
		MaxWorkers:    *maxWorkers,
		QueueDepth:    *queueDepth,
		QueueWait:     *queueWait,
		MaxBudget:     *maxBudget,
		DefaultBudget: *defaultBudget,
		MaxSessions:   *maxSessions,
		MaxQueries:    *maxQueries,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *snapshotPath != "" {
		// Warm boot runs behind the readiness gate: the listener comes up
		// immediately (health checks and eager clients are served), /readyz
		// answers 503 until the snapshot load finishes, and MarkReady flips
		// it — so a router never places traffic on a still-cold replica. A
		// missing, stale, or corrupt file is a cold start, never a failed
		// one — the snapshot codec fully verifies before merging, so a bad
		// file cannot poison the cache.
		go func() {
			defer srv.MarkReady()
			if n, err := srv.Cache().LoadSnapshot(*snapshotPath); err != nil {
				if !errors.Is(err, os.ErrNotExist) {
					fmt.Fprintf(os.Stderr, "mctsuid: starting cold, cache snapshot unusable: %v\n", err)
				}
			} else {
				fmt.Fprintf(os.Stderr, "mctsuid: warm start, %d cache entries from %s\n", n, *snapshotPath)
			}
		}()
		go persistLoop(ctx, srv, *snapshotPath, *snapshotInterval)
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "mctsuid: draining; in-flight searches return best-so-far")
		// Drain first so every admitted search is cancelled and finishes
		// writing its anytime response within the grace window; the HTTP
		// shutdown then waits for all remaining handlers (exports,
		// interactions) to complete.
		srv.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		_ = httpSrv.Shutdown(shutCtx)
		if *snapshotPath != "" {
			// Final persist after the drain: the warm set the next boot (or a
			// replacement replica) starts from.
			persist(srv, *snapshotPath)
		}
	}()

	fmt.Fprintf(os.Stderr, "mctsuid: serving on %s\n", *addr)
	err := httpSrv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mctsuid:", err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as the listener closes; wait for the
	// shutdown goroutine so handlers still writing are not killed mid-
	// response. stop() unblocks it when the listener failed on its own.
	stop()
	<-shutdownDone
}

// persistLoop rewrites the cache snapshot every interval until ctx is done;
// the shutdown goroutine writes the final one after the drain.
func persistLoop(ctx context.Context, srv *server.Server, path string, interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			persist(srv, path)
		}
	}
}

// persist writes one crash-safe snapshot (temp file + rename); failures are
// logged and retried at the next tick — the previous snapshot stays intact.
func persist(srv *server.Server, path string) {
	n, err := srv.Cache().SaveSnapshot(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mctsuid: cache snapshot failed: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "mctsuid: cache snapshot: %d entries -> %s\n", n, path)
}
