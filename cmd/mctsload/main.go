// Command mctsload is the open-loop serving load harness: it drives a live
// mctsuid daemon with ServeGen-style multi-class traffic and emits a
// machine-readable BENCH_serving.json for the serving-performance
// trajectory, with the same gate and -compare conventions as searchbench.
//
// By default it starts an in-process daemon on 127.0.0.1:0 (the CI mode —
// no external process to manage); -addr points it at an already-running
// daemon (or a running mctsrouter) instead, and -fleet N starts N in-process
// replicas behind an in-process fleet router (policy per -fleet-policy) and
// drives the traffic through the router — the fleet-serving benchmark mode.
// Traffic comes from a workload spec (-spec file, or the built-in smoke
// spec), expanded deterministically by seed into a trace — or from a
// previously recorded trace (-trace), replayed byte-for-byte. -record
// captures the dispatched trace for later replay; recording a generated run
// and replaying the recording issues the identical request sequence.
//
// The run has a warmup phase (replayed, not reported) and a measured
// window; the report carries per-class and per-op p50/p95/p99 latency,
// throughput, goodput, 429/503 rates, SSE time-to-first-event, and the
// daemon's own cache/admission curves scraped from /v1/stats.
//
// Gates: -max-p99-ms bounds total p99 latency and -min-goodput floors
// overall goodput. Both are recorded always but enforced only when the
// machine has at least -gate-cpus CPUs (gate_enforced in the report), so
// an under-provisioned CI runner records its numbers without failing the
// build. -compare old.json prints per-metric deltas before any gate fires:
//
//	go run ./cmd/mctsload -out BENCH_serving.json -compare prev/BENCH_serving.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api/client"
	"repro/internal/benchutil"
	"repro/internal/load"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	out := flag.String("out", "BENCH_serving.json", "output file ('-' for stdout)")
	addr := flag.String("addr", "", "base URL of a running daemon (empty: start one in-process on 127.0.0.1:0)")
	specPath := flag.String("spec", "", "workload spec JSON (empty: built-in smoke spec)")
	tracePath := flag.String("trace", "", "recorded trace JSONL to replay instead of generating from a spec")
	record := flag.String("record", "", "record the dispatched trace to this JSONL file")
	seed := flag.Int64("seed", 0, "override the spec seed (0: keep the spec's)")
	duration := flag.Int64("duration-ms", 0, "override the measured window (0: keep the spec's)")
	warmup := flag.Int64("warmup-ms", -1, "override the warmup phase (-1: keep the spec's)")
	rateScale := flag.Float64("rate-scale", 1, "multiply every class arrival rate (load knob for sweeps)")
	statsEvery := flag.Duration("stats-every", 500*time.Millisecond, "/v1/stats scrape cadence (0 disables the curve)")
	comparePath := flag.String("compare", "", "previous BENCH_serving.json to diff against (per-metric deltas printed before gates)")
	maxP99 := flag.Float64("max-p99-ms", 2000, "fail if total p99 latency exceeds this many ms (0 disables)")
	minGoodput := flag.Float64("min-goodput", 1, "fail if overall goodput falls below this many req/s (0 disables)")
	gateCPUs := flag.Int("gate-cpus", 4, "enforce gates only when NumCPU >= this (numbers are recorded regardless)")
	cacheEntries := flag.Int("cache-entries", 0, "in-process daemon: eval cache capacity (0: engine default)")
	maxConcurrent := flag.Int("max-concurrent", 0, "in-process daemon: concurrent search slots (0: GOMAXPROCS)")
	maxWorkers := flag.Int("max-workers", 1, "in-process daemon: per-request worker cap (1 keeps replays deterministic)")
	fleet := flag.Int("fleet", 0, "start this many in-process replicas behind an in-process fleet router and drive traffic through it (0: single daemon; ignored with -addr)")
	fleetPolicy := flag.String("fleet-policy", "affinity", "routing policy for -fleet: affinity, round-robin, or least-loaded")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec, events, err := buildTrace(*specPath, *tracePath, *seed, *duration, *warmup, *rateScale)
	if err != nil {
		fatalf("%v", err)
	}

	base := *addr
	if base == "" {
		cfg := server.Config{
			CacheEntries:  *cacheEntries,
			MaxConcurrent: *maxConcurrent,
			MaxWorkers:    *maxWorkers,
		}
		var shutdown func()
		if *fleet > 0 {
			base, shutdown, err = startFleet(*fleet, *fleetPolicy, cfg)
		} else {
			base, shutdown, err = startDaemon(cfg)
		}
		if err != nil {
			fatalf("%v", err)
		}
		defer shutdown()
	} else if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if err := waitReady(ctx, base); err != nil {
		fatalf("daemon not ready: %v", err)
	}

	opt := load.Options{
		BaseURL: base,
		// One response can legitimately take the daemon's whole queue wait
		// plus a search; the client timeout exists only to bound a hung
		// connection, not to shed load (the daemon does that).
		Client:     &http.Client{Timeout: 2 * time.Minute},
		StatsEvery: *statsEvery,
	}
	var recFile *os.File
	if *record != "" {
		recFile, err = os.Create(*record)
		if err != nil {
			fatalf("%v", err)
		}
		opt.Record = recFile
	}

	fmt.Printf("mctsload: %s — %d events over %v (warmup %v) against %s\n",
		spec.Name, len(events), time.Duration(spec.DurationMS)*time.Millisecond,
		time.Duration(spec.WarmupMS)*time.Millisecond, base)
	res, err := load.Replay(ctx, events, opt)
	if err != nil {
		fatalf("replay: %v", err)
	}
	if recFile != nil {
		if err := recFile.Close(); err != nil {
			fatalf("closing recording: %v", err)
		}
	}
	if res.Dispatched < len(events) {
		fmt.Printf("mctsload: interrupted after %d of %d events\n", res.Dispatched, len(events))
	}

	rep := load.BuildReport(spec, res)
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	failed := rep.ApplyGates(load.GateSpec{MaxP99MS: *maxP99, MinGoodputRPS: *minGoodput}, *gateCPUs)

	if err := benchutil.WriteJSON(*out, rep); err != nil {
		fatalf("%v", err)
	}
	printSummary(rep)

	// The readable diff comes before any gate, so a gate failure arrives
	// with the per-metric context of what regressed.
	if *comparePath != "" {
		printComparison(*comparePath, rep)
	}

	for _, g := range failed {
		if !rep.GateEnforced {
			fmt.Printf("gate %s: %.2f vs budget %.2f — FAILED but not enforced (cpus=%d < %d)\n",
				g.Name, g.Value, g.Budget, rep.CPUs, *gateCPUs)
			continue
		}
		fatalf("gate %s: %.2f vs budget %.2f", g.Name, g.Value, g.Budget)
	}
}

// buildTrace resolves the run's spec and events from the flag combination:
// a recorded trace replays verbatim (the spec then only frames the
// reporting window), everything else generates from the spec plus
// overrides.
func buildTrace(specPath, tracePath string, seed, duration, warmup int64, rateScale float64) (*load.Spec, []load.Event, error) {
	var spec load.Spec
	if specPath != "" {
		s, err := load.LoadSpec(specPath)
		if err != nil {
			return nil, nil, err
		}
		spec = *s
	} else {
		spec = load.SmokeSpec()
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if duration > 0 {
		spec.DurationMS = duration
	}
	if warmup >= 0 {
		spec.WarmupMS = warmup
	}
	if rateScale <= 0 {
		return nil, nil, fmt.Errorf("rate-scale must be positive")
	}
	for i := range spec.Classes {
		spec.Classes[i].RatePerSec *= rateScale
	}

	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		events, err := load.ReadTrace(f)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", tracePath, err)
		}
		// The trace *is* the traffic; the spec only frames reporting. Size
		// the window to cover the whole trace unless flags pinned it.
		spec.Name = "trace:" + tracePath
		if warmup < 0 {
			spec.WarmupMS = 0
		}
		if duration <= 0 {
			lastMS := events[len(events)-1].AtUS/1000 + 1
			spec.DurationMS = lastMS - spec.WarmupMS
			if spec.DurationMS <= 0 {
				return nil, nil, fmt.Errorf("warmup %dms swallows the whole %dms trace", spec.WarmupMS, lastMS)
			}
		}
		return &spec, events, nil
	}

	events, err := load.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	return &spec, events, nil
}

// startDaemon brings up an in-process daemon on a loopback port and returns
// its base URL plus an ordered shutdown (drain searches, then close).
func startDaemon(cfg server.Config) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "mctsload: daemon: %v\n", err)
		}
	}()
	shutdown := func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain()
		_ = srv.Shutdown(shutCtx)
		_ = httpSrv.Shutdown(shutCtx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// startFleet brings up n in-process replicas behind an in-process fleet
// router and returns the router's base URL plus an ordered shutdown (drain
// every replica, then close the router). The whole fleet lives in one
// process — the CI-friendly way to measure routing overhead and policy
// behavior without orchestrating N daemons.
func startFleet(n int, policy string, cfg server.Config) (string, func(), error) {
	var shutdowns []func()
	shutdownAll := func() {
		for i := len(shutdowns) - 1; i >= 0; i-- {
			shutdowns[i]()
		}
	}
	urls := make([]string, n)
	for i := range urls {
		repCfg := cfg
		repCfg.ReplicaID = fmt.Sprintf("replica-%d", i)
		base, shutdown, err := startDaemon(repCfg)
		if err != nil {
			shutdownAll()
			return "", nil, err
		}
		urls[i] = base
		shutdowns = append(shutdowns, shutdown)
	}
	rt, err := router.New(router.Config{Replicas: urls, Policy: policy})
	if err != nil {
		shutdownAll()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		shutdownAll()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "mctsload: router: %v\n", err)
		}
	}()
	shutdowns = append(shutdowns, func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
		rt.Close()
	})
	// Routers shut down before replicas: reverse order drains the front first.
	return "http://" + ln.Addr().String(), shutdownAll, nil
}

// waitReady polls /readyz through the typed client until the target (daemon
// or router) reports ready — not merely alive: a warm-booting replica or a
// router with no ready replicas answers /healthz 200 long before it should
// take measured traffic.
func waitReady(ctx context.Context, base string) error {
	cl := client.New(base)
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, err := cl.Ready(ctx)
		if ok {
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("readyz: not ready")
		}
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}

func printSummary(rep *load.Report) {
	fmt.Printf("total: %d requests (%d ok, %d err, %d 429, %d 503) — %.1f req/s, goodput %.1f req/s\n",
		rep.Total.Count, rep.Total.OK, rep.Total.Errors, rep.Total.Status429, rep.Total.Status503,
		rep.Total.ThroughputRPS, rep.Total.GoodputRPS)
	fmt.Printf("total latency: p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		rep.Total.Latency.P50, rep.Total.Latency.P95, rep.Total.Latency.P99, rep.Total.Latency.Max)
	for _, c := range rep.Classes {
		line := fmt.Sprintf("  %-10s %5d reqs, goodput %6.1f req/s, p50 %7.1fms p99 %7.1fms",
			c.Class, c.Total.Count, c.Total.GoodputRPS, c.Total.Latency.P50, c.Total.Latency.P99)
		if c.Total.TTFE != nil {
			line += fmt.Sprintf(", ttfe p50 %.1fms", c.Total.TTFE.P50)
		}
		fmt.Println(line)
	}
	if s := rep.Server; s != nil {
		fmt.Printf("server: served %d (429:%d, 503-queue:%d, 503-drain:%d, gone:%d), queue wait mean %.2fms, cache hit rate %.1f%% (evictions %d, occupancy %.1f%%)\n",
			s.Served, s.Overflow429, s.QueueTimeouts, s.Draining503, s.ClientGone,
			s.QueueWaitMeanMS, s.CacheHitRate*100, s.CacheEvictions, s.CacheOccupancy*100)
	}
}

// printComparison diffs the fresh report against a previous BENCH_serving
// file, one line per metric present on both sides.
func printComparison(path string, fresh *load.Report) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("compare: cannot read %s (%v); skipping diff\n", path, err)
		return
	}
	var old load.Report
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Printf("compare: cannot parse %s (%v); skipping diff\n", path, err)
		return
	}
	if old.Schema != "" && old.Schema != fresh.Schema {
		fmt.Printf("compare: %s has schema %q, this run %q; skipping diff\n", path, old.Schema, fresh.Schema)
		return
	}
	fmt.Printf("compare vs %s:\n", path)
	delta := benchutil.DeltaPrinter(os.Stdout)
	delta("throughput req/s", old.Total.ThroughputRPS, fresh.Total.ThroughputRPS, "")
	delta("goodput req/s", old.Total.GoodputRPS, fresh.Total.GoodputRPS, "")
	delta("p50 ms", old.Total.Latency.P50, fresh.Total.Latency.P50, "")
	delta("p95 ms", old.Total.Latency.P95, fresh.Total.Latency.P95, "")
	delta("p99 ms", old.Total.Latency.P99, fresh.Total.Latency.P99, "")
	delta("429 rate", old.Total.Rate429*100, fresh.Total.Rate429*100, "%")
	delta("503 rate", old.Total.Rate503*100, fresh.Total.Rate503*100, "%")
	if old.Server != nil && fresh.Server != nil {
		delta("cache hit rate", old.Server.CacheHitRate*100, fresh.Server.CacheHitRate*100, "%")
		delta("queue wait mean ms", old.Server.QueueWaitMeanMS, fresh.Server.QueueWaitMeanMS, "")
	}
	oldClasses := make(map[string]load.ClassReport, len(old.Classes))
	for _, c := range old.Classes {
		oldClasses[c.Class] = c
	}
	for _, c := range fresh.Classes {
		was, ok := oldClasses[c.Class]
		if !ok {
			fmt.Printf("  %s: new class (no previous data)\n", c.Class)
			continue
		}
		delta(c.Class+" p99 ms", was.Total.Latency.P99, c.Total.Latency.P99, "")
		delta(c.Class+" goodput", was.Total.GoodputRPS, c.Total.GoodputRPS, "")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mctsload: "+format+"\n", args...)
	os.Exit(1)
}
