// Command mctsui generates an interactive data-analysis interface from a
// SQL query log file (one query per line; -- and # comment lines ignored).
//
// Usage:
//
//	mctsui -log queries.sql [-width 1200 -height 800] [-iters 60 | -budget 60s]
//	       [-seed 1] [-format ascii|html|both] [-show-queries N]
//
// With no -log flag it runs on the paper's SDSS log (Listing 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	mctsui "repro"
	"repro/internal/workload"
)

func main() {
	logPath := flag.String("log", "", "query log file (default: the paper's SDSS log)")
	width := flag.Int("width", 1200, "screen width in layout units")
	height := flag.Int("height", 800, "screen height in layout units")
	iters := flag.Int("iters", 60, "MCTS iterations (ignored when -budget is set)")
	budget := flag.Duration("budget", 0, "wall-clock search budget, e.g. 60s (the paper's setting)")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "ascii", "output format: ascii, html, page (interactive HTML), json, or both")
	showQueries := flag.Int("show-queries", 0, "also print up to N expressible queries")
	stats := flag.Bool("stats", false, "print search statistics")
	flag.Parse()

	var queries []string
	if *logPath == "" {
		queries = workload.SDSSLogSQL()
		fmt.Fprintln(os.Stderr, "mctsui: no -log given; using the paper's SDSS log (Listing 1)")
	} else {
		data, err := os.ReadFile(*logPath)
		if err != nil {
			fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
				continue
			}
			queries = append(queries, line)
		}
		if len(queries) == 0 {
			fatal(fmt.Errorf("no queries in %s", *logPath))
		}
	}

	cfg := mctsui.Config{
		Screen:     mctsui.Screen{W: *width, H: *height},
		Iterations: *iters,
		Seed:       *seed,
	}
	if *budget > 0 {
		cfg.TimeBudget = *budget
		cfg.Iterations = 0
	}

	start := time.Now()
	iface, err := mctsui.Generate(queries, cfg)
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "html":
		fmt.Print(iface.HTML())
	case "page":
		page, err := iface.Page("Generated interface")
		if err != nil {
			fatal(err)
		}
		fmt.Print(page)
	case "json":
		data, err := iface.MarshalJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "both":
		fmt.Print(iface.ASCII())
		fmt.Println()
		fmt.Print(iface.HTML())
	default:
		fmt.Print(iface.ASCII())
	}
	if *format == "page" || *format == "json" {
		return
	}

	w, h := iface.Bounds()
	fmt.Printf("\ncost=%.2f widgets=%d bounds=%dx%d screen=%dx%d elapsed=%v\n",
		iface.Cost(), iface.NumWidgets(), w, h, *width, *height, time.Since(start).Round(time.Millisecond))

	if *stats {
		s := iface.SearchStats()
		fmt.Printf("search: iterations=%d expanded=%d rollouts=%d evals=%d best-reward=%.3f initial-fanout=%d initial-cost=%.2f\n",
			s.Iterations, s.Expanded, s.Rollouts, s.Evals, s.BestReward, s.InitialFan, iface.InitialCost())
	}
	if *showQueries > 0 {
		fmt.Printf("\nexpressible queries (up to %d):\n", *showQueries)
		for _, q := range iface.Queries(*showQueries) {
			fmt.Printf("  %s\n", q)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mctsui:", err)
	os.Exit(1)
}
