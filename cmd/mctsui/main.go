// Command mctsui generates an interactive data-analysis interface from a
// SQL query log file (one query per line; -- and # comment lines ignored).
//
// Usage:
//
//	mctsui [-log queries.sql | -workload sdss|sdss-join|sdss-join-block|figure1]
//	       [-width 1200 -height 800] [-iters 60 | -budget 60s]
//	       [-seed 1] [-strategy mcts|beam[:W]|greedy|random[:N]|exhaustive[:M]]
//	       [-workers N] [-tree-workers N] [-progress]
//	       [-format ascii|html|both] [-show-queries N]
//
// With no -log flag it runs on the paper's SDSS log (Listing 1). The search
// is anytime: interrupt with Ctrl-C and the best interface found so far is
// printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	mctsui "repro"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func main() {
	logPath := flag.String("log", "", "query log file (default: the -workload log)")
	workloadName := flag.String("workload", "sdss", "built-in log when no -log is given: sdss | sdss-join | sdss-join-block | figure1")
	width := flag.Int("width", 1200, "screen width in layout units")
	height := flag.Int("height", 800, "screen height in layout units")
	iters := flag.Int("iters", mctsui.DefaultIterations, "search iterations (ignored when -budget is set)")
	budget := flag.Duration("budget", 0, "wall-clock search budget, e.g. 60s (the paper's setting)")
	seed := flag.Int64("seed", mctsui.DefaultSeed, "random seed")
	strategy := flag.String("strategy", "mcts", "search strategy: mcts, beam[:width], greedy, random[:walks], or exhaustive[:states]")
	workers := flag.Int("workers", 1, "parallel root searches (keeps the best result)")
	treeWorkers := flag.Int("tree-workers", 1, "goroutines sharing each MCTS search tree (>1 trades determinism for speed)")
	progress := flag.Bool("progress", false, "stream best-so-far snapshots to stderr while searching")
	format := flag.String("format", "ascii", "output format: ascii, html, page (interactive HTML), json, or both")
	showQueries := flag.Int("show-queries", 0, "also print up to N expressible queries")
	stats := flag.Bool("stats", false, "print search statistics")
	flag.Parse()

	var queries []string
	if *logPath == "" {
		switch *workloadName {
		case "sdss":
			queries = workload.SDSSLogSQL()
		case "sdss-join":
			queries = workload.SDSSJoinLogSQL()
		case "sdss-join-block":
			queries = workload.SDSSJoinLogSQL()[:6]
		case "figure1":
			for _, q := range workload.PaperFigure1Log() {
				queries = append(queries, sqlparser.Render(q))
			}
		default:
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
		fmt.Fprintf(os.Stderr, "mctsui: no -log given; using the built-in %s log\n", *workloadName)
	} else {
		data, err := os.ReadFile(*logPath)
		if err != nil {
			fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
				continue
			}
			queries = append(queries, line)
		}
		if len(queries) == 0 {
			fatal(fmt.Errorf("no queries in %s", *logPath))
		}
	}

	strat, err := mctsui.StrategyByName(*strategy)
	if err != nil {
		fatal(err)
	}
	opts := []mctsui.Option{
		mctsui.WithScreen(mctsui.Screen{W: *width, H: *height}),
		mctsui.WithSeed(*seed),
		mctsui.WithStrategy(strat),
		mctsui.WithWorkers(*workers),
		mctsui.WithTreeWorkers(*treeWorkers),
	}
	if *budget > 0 {
		opts = append(opts, mctsui.WithTimeBudget(*budget))
	} else {
		opts = append(opts, mctsui.WithIterations(*iters))
	}
	if *progress {
		opts = append(opts, mctsui.WithProgress(func(p mctsui.Progress) {
			fmt.Fprintf(os.Stderr, "\r%s w%d iter=%d evals=%d best=%.2f elapsed=%v   ",
				p.Strategy, p.Worker, p.Iterations, p.Evals, p.BestCost, p.Elapsed.Round(time.Millisecond))
		}))
	}

	// Ctrl-C cancels the search; the best-so-far interface is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	iface, err := mctsui.New(opts...).Generate(ctx, queries)
	if err != nil {
		fatal(err)
	}
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if iface.Stats().Interrupted {
		fmt.Fprintln(os.Stderr, "mctsui: search interrupted; showing the best interface found so far")
	}

	switch *format {
	case "html":
		fmt.Print(iface.HTML())
	case "page":
		page, err := iface.Page("Generated interface")
		if err != nil {
			fatal(err)
		}
		fmt.Print(page)
	case "json":
		data, err := iface.MarshalJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "both":
		fmt.Print(iface.ASCII())
		fmt.Println()
		fmt.Print(iface.HTML())
	default:
		fmt.Print(iface.ASCII())
	}
	if *format == "page" || *format == "json" {
		return
	}

	w, h := iface.Bounds()
	fmt.Printf("\ncost=%.2f widgets=%d bounds=%dx%d screen=%dx%d elapsed=%v\n",
		iface.Cost(), iface.NumWidgets(), w, h, *width, *height, time.Since(start).Round(time.Millisecond))

	if *stats {
		s := iface.Stats()
		fmt.Printf("search: strategy=%s workers=%d tree-workers=%d iterations=%d expanded=%d rollouts=%d evals=%d best-reward=%.3f initial-fanout=%d initial-cost=%.2f interrupted=%v\n",
			s.Strategy, s.Workers, s.TreeWorkers, s.Iterations, s.Expanded, s.Rollouts, s.Evals, s.BestReward, s.InitialFan, iface.InitialCost(), s.Interrupted)
		if n := len(s.Trajectory); n > 0 {
			last := s.Trajectory[n-1]
			fmt.Printf("trajectory: %d improvements, final best %.2f after %d evals (%v)\n",
				n, last.Cost, last.Evals, last.Elapsed.Round(time.Millisecond))
		}
	}
	if *showQueries > 0 {
		fmt.Printf("\nexpressible queries (up to %d):\n", *showQueries)
		for _, q := range iface.Queries(*showQueries) {
			fmt.Printf("  %s\n", q)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mctsui:", err)
	os.Exit(1)
}
