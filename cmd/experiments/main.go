// Command experiments regenerates the paper's figures and claims (see the
// experiment index in DESIGN.md) and prints plain-text reports, which
// EXPERIMENTS.md records next to the paper's expectations.
//
// Usage:
//
//	experiments [-run all|fig6a|fig6b|fig6c|fig6d|fig6e|space|budget|
//	             baseline|strategies|ablation-c|ablation-rollout|scaling]
//	            [-iters 40] [-rollout 12] [-seed 1] [-timeout 0]
//
// Experiments honor Ctrl-C (and -timeout): the run stops promptly and the
// reports produced so far are kept.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (see DESIGN.md) or comma-separated list")
	iters := flag.Int("iters", 40, "search iterations per generated interface")
	rollout := flag.Int("rollout", 12, "rollout depth during search")
	seed := flag.Int64("seed", 1, "base seed")
	timeout := flag.Duration("timeout", 0, "overall wall-clock cap for the run (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Iterations: *iters, RolloutDepth: *rollout, Seed: *seed}
	start := time.Now()
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(name)
		f, ok := experiments.Named(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Print(f(ctx, cfg))
		fmt.Println()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: run cancelled; partial reports above")
			break
		}
	}
	fmt.Printf("total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}
