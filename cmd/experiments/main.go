// Command experiments regenerates the paper's figures and claims (see the
// experiment index in DESIGN.md) and prints plain-text reports, which
// EXPERIMENTS.md records next to the paper's expectations.
//
// Usage:
//
//	experiments [-run all|fig6a|fig6b|fig6c|fig6d|fig6e|space|budget|
//	             baseline|strategies|ablation-c|ablation-rollout|scaling]
//	            [-iters 40] [-rollout 12] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (see DESIGN.md) or comma-separated list")
	iters := flag.Int("iters", 40, "MCTS iterations per generated interface")
	rollout := flag.Int("rollout", 12, "rollout depth during search")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	cfg := experiments.Config{Iterations: *iters, RolloutDepth: *rollout, Seed: *seed}
	start := time.Now()
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(name)
		f, ok := experiments.Named(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Print(f(cfg))
		fmt.Println()
	}
	fmt.Printf("total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}
