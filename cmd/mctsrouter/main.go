// Command mctsrouter is the fleet router: a thin HTTP layer in front of N
// mctsuid replicas that makes the fleet look like one daemon — consistent-
// hash session placement, pluggable routing policies, health/drain-aware
// failover, and warm replica bring-up/handoff via the cache snapshot
// endpoints (see internal/router).
//
// Usage:
//
//	mctsrouter -replicas http://h1:8080,http://h2:8080 [-addr :8090]
//	           [-policy affinity|round-robin|least-loaded]
//	           [-probe-interval 2s] [-probe-timeout 1s] [-fail-after 2]
//	           [-vnodes 64] [-max-sessions 4096]
//
// The router serves the full v1 API (forwarded to replicas) plus its own
// fleet surface:
//
//	GET  /v1/fleet        fleet membership and per-replica state
//	POST /v1/fleet/join   add a replica, warm-primed from a donor's cache
//	POST /v1/fleet/leave  planned removal: drain + ship the cache to survivors
//	GET  /healthz         router liveness (always 200)
//	GET  /readyz          200 iff at least one replica is ready
//
// Every proxied response carries X-Fleet-Replica naming the replica that
// answered.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (e.g. http://h1:8080,http://h2:8080)")
	policy := flag.String("policy", "affinity", "routing policy: affinity (consistent-hash, default), round-robin, or least-loaded")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "replica health/stats probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe round-trip bound")
	failAfter := flag.Int("fail-after", 2, "consecutive probe failures that eject a replica from the ring")
	vnodes := flag.Int("vnodes", 64, "consistent-hash virtual nodes per replica")
	maxSessions := flag.Int("max-sessions", 4096, "sticky session placements kept before LRU forgetting")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "mctsrouter: -replicas is required (comma-separated base URLs)")
		os.Exit(2)
	}

	rt, err := router.New(router.Config{
		Replicas:      urls,
		Policy:        *policy,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		VNodes:        *vnodes,
		MaxSessions:   *maxSessions,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctsrouter:", err)
		os.Exit(2)
	}
	defer rt.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "mctsrouter: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "mctsrouter: %s policy over %d replicas, serving on %s\n", rt.Policy(), len(urls), *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mctsrouter:", err)
		os.Exit(1)
	}
	stop()
	<-shutdownDone
}
