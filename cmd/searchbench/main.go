// Command searchbench measures the memoized evaluation engine against the
// memoization-off baseline and emits a machine-readable BENCH_search.json
// for the performance trajectory. Since the multi-table expansion the report
// carries one section per workload (default: sdss and sdss-join).
//
// Three modes are timed per workload, all with the same seed and budget:
//
//   - uncached:    memoization disabled (every state re-scored per visit)
//   - cached_cold: a fresh shared cache, first search
//   - cached_warm: the same shared cache, subsequent searches (steady
//     state — the serving scenario WithCache exists for)
//
// State evaluation is deterministic per state, so all three modes must
// return the identical best cost; searchbench fails if they do not. The
// -min-speedup gate (default 3) applies to the warm/uncached ratio of every
// workload and makes `make bench-json` fail loudly if the cache stops
// paying for itself.
//
// A fourth mode measures tree-parallel MCTS (-tree-workers goroutines on
// one shared tree, virtual-loss diversified) against the sequential
// cold-cache reference; it runs on the first listed workload only (it is
// the wall-clock-dominant section). The -min-tree-speedup gate (default 2)
// and its equal-or-better best-cost companion are enforced only when the
// machine has at least -tree-workers CPUs — a 1-CPU container records its
// numbers without failing the build.
//
// -compare old.json prints per-metric deltas against a previous report
// (either format generation) before any gate is enforced, so a CI failure
// arrives with a readable diff of what moved:
//
//	go run ./cmd/searchbench -out BENCH_search.json -compare prev/BENCH_search.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/workload"
)

type modeResult struct {
	ElapsedMS    float64 `json:"elapsed_ms"`
	ItersPerSec  float64 `json:"iters_per_sec"`
	Iterations   int     `json:"iterations"`
	Evals        int     `json:"evals"`
	BestCost     float64 `json:"best_cost"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// AllocsPerIter/BytesPerIter are heap allocations (count and bytes) per
	// search iteration, from the monotonic runtime counters around the run —
	// exact, GC-independent. The per-mode numbers are the allocation half of
	// the cold-cache story: cache-mode overhead shows up here before it
	// shows up in wall clock.
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
}

// treeSection reports tree-parallel MCTS against the sequential reference:
// same workload, same iteration budget, both cold (fresh cache per
// repetition — see the comment at the measurement site), N goroutines on
// one tree. Speedup is parallel/sequential iters-per-sec; cost_no_worse is
// the quality half of the gate — best cost across the repetitions, each an
// independent sample of the non-deterministic parallel search, no worse
// than the (deterministic) sequential best. The >= 2x gate is enforced only
// where the hardware can express it (gate_enforced: cpus >= workers); a
// 1-CPU container records its numbers without failing.
type treeSection struct {
	Workers      int        `json:"workers"`
	Sequential   modeResult `json:"sequential"`
	Parallel     modeResult `json:"parallel"`
	Speedup      float64    `json:"speedup"`
	CostNoWorse  bool       `json:"cost_no_worse"`
	CPUs         int        `json:"cpus"`
	GateEnforced bool       `json:"gate_enforced"`
}

// snapshotSection reports the restart-from-snapshot story: the warm cache
// left by the cached runs is exported to a byte buffer, and each "restored"
// repetition imports it into a fresh cache before searching — a faithful
// model of a daemon restart (cost/legality entries warm, moves/pools cold,
// codec round trip included). Speedup is restored/cold iters-per-sec and is
// gated unconditionally: the measurement is single-threaded, so it holds on
// a 1-CPU container as well as a big box. EqualBestCost re-checks the
// portability contract end to end — a snapshot can change only speed.
type snapshotSection struct {
	Entries       int64      `json:"entries"`
	Bytes         int        `json:"bytes"`
	Restored      modeResult `json:"restored"`
	Speedup       float64    `json:"speedup"` // restored vs cached_cold
	EqualBestCost bool       `json:"equal_best_cost"`
}

// workloadReport is one workload's section of the file.
type workloadReport struct {
	Workload      string           `json:"workload"`
	Strategy      string           `json:"strategy"`
	Iterations    int              `json:"iterations"`
	RolloutDepth  int              `json:"rollout_depth"`
	Seed          int64            `json:"seed"`
	Repeats       int              `json:"repeats"`
	Uncached      modeResult       `json:"uncached"`
	CachedCold    modeResult       `json:"cached_cold"`
	CachedWarm    modeResult       `json:"cached_warm"`
	SpeedupCold   float64          `json:"speedup_cold"`
	SpeedupWarm   float64          `json:"speedup_warm"`
	EqualBestCost bool             `json:"equal_best_cost"`
	TreeParallel  *treeSection     `json:"tree_parallel,omitempty"`
	Snapshot      *snapshotSection `json:"snapshot,omitempty"`
}

// fileReport is the on-disk shape: one section per workload.
type fileReport struct {
	Workloads   map[string]workloadReport `json:"workloads"`
	GeneratedAt string                    `json:"generated_at"`
}

// legacyReport is the pre-multi-workload single-section file shape, still
// accepted by -compare.
type legacyReport struct {
	Workload  string                    `json:"workload"`
	Workloads map[string]workloadReport `json:"workloads"`
}

func logFor(name string) ([]*ast.Node, error) {
	switch name {
	case "sdss":
		return workload.SDSSLog(), nil
	case "sdss-subset":
		return workload.SDSSSubset(6, 8), nil
	case "sdss-join":
		return workload.SDSSJoinLog(), nil
	case "sdss-join-block":
		return workload.SDSSJoinSubset(1, 6), nil
	case "figure1":
		return workload.PaperFigure1Log(), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func main() {
	out := flag.String("out", "BENCH_search.json", "output file ('-' for stdout)")
	workloads := flag.String("workload", "sdss,sdss-join", "comma-separated query logs: sdss | sdss-subset | sdss-join | sdss-join-block | figure1")
	strategySpec := flag.String("strategy", "mcts", "search strategy (see -h of cmd/mctsui)")
	iterations := flag.Int("iterations", 15, "search iteration budget per run")
	rollout := flag.Int("rollout", 8, "rollout depth")
	seed := flag.Int64("seed", 1, "deterministic seed")
	repeats := flag.Int("repeats", 3, "timed repetitions per mode (fastest wins)")
	minSpeedup := flag.Float64("min-speedup", 3, "fail unless warm-cache/uncached iters-per-sec reaches this on every workload (0 disables)")
	minColdSpeedup := flag.Float64("min-cold-speedup", 1.0, "fail unless cold-cache/uncached iters-per-sec reaches this on every workload (0 disables) — the cache must never slow a first search down")
	maxAllocsPerIter := flag.Float64("max-allocs-per-iter", 0, "fail if any warm-cache run allocates more than this per iteration (0 disables)")
	treeWorkers := flag.Int("tree-workers", 4, "tree-parallel worker count for the first workload's tree_parallel section (0 disables the section)")
	minTreeSpeedup := flag.Float64("min-tree-speedup", 2, "fail unless tree-parallel/sequential iters-per-sec reaches this — enforced only when NumCPU >= tree-workers (0 disables)")
	minSnapshotSpeedup := flag.Float64("min-snapshot-speedup", 3, "fail unless restart-from-snapshot/cold iters-per-sec reaches this on every workload (0 disables)")
	comparePath := flag.String("compare", "", "previous BENCH_search.json to diff against (per-metric deltas printed before gates)")
	flag.Parse()

	strategy, err := core.StrategyByName(*strategySpec)
	if err != nil {
		fatalf("%v", err)
	}

	names := strings.Split(*workloads, ",")
	file := fileReport{Workloads: make(map[string]workloadReport, len(names))}
	var order []string
	for i, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		log, err := logFor(name)
		if err != nil {
			fatalf("%v", err)
		}
		rep := benchWorkload(name, log, strategy, *strategySpec, *iterations, *rollout, *seed, *repeats,
			i == 0, *treeWorkers, *minTreeSpeedup)
		file.Workloads[name] = rep
		order = append(order, name)
	}
	file.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	if err := benchutil.WriteJSON(*out, file); err != nil {
		fatalf("%v", err)
	}

	for _, name := range order {
		rep := file.Workloads[name]
		fmt.Printf("%s/%s: %.1f iters/sec warm-cached vs %.1f uncached (%.1fx warm, %.1fx cold, hit rate %.1f%%), best cost %.2f\n",
			rep.Workload, rep.Strategy, rep.CachedWarm.ItersPerSec, rep.Uncached.ItersPerSec,
			rep.SpeedupWarm, rep.SpeedupCold, rep.CachedWarm.CacheHitRate*100, rep.CachedWarm.BestCost)
		fmt.Printf("%s allocs/iter: %.0f warm / %.0f cold / %.0f uncached (%.0f KiB/iter warm)\n",
			rep.Workload, rep.CachedWarm.AllocsPerIter, rep.CachedCold.AllocsPerIter,
			rep.Uncached.AllocsPerIter, rep.CachedWarm.BytesPerIter/1024)
		if snap := rep.Snapshot; snap != nil {
			fmt.Printf("%s restart-from-snapshot: %.1f iters/sec vs %.1f cold (%.1fx), %d entries in %d bytes, hit rate %.1f%%\n",
				rep.Workload, snap.Restored.ItersPerSec, rep.CachedCold.ItersPerSec, snap.Speedup,
				snap.Entries, snap.Bytes, snap.Restored.CacheHitRate*100)
		}
		if tree := rep.TreeParallel; tree != nil {
			fmt.Printf("%s tree-parallel x%d: %.1f iters/sec vs %.1f sequential (%.2fx, cpus=%d, gate %s), best cost %.2f vs %.2f\n",
				rep.Workload, tree.Workers, tree.Parallel.ItersPerSec, tree.Sequential.ItersPerSec, tree.Speedup,
				tree.CPUs, map[bool]string{true: "enforced", false: "skipped"}[tree.GateEnforced],
				tree.Parallel.BestCost, tree.Sequential.BestCost)
		}
	}

	// The readable diff comes before any gate, so a gate failure arrives
	// with the per-metric context of what regressed.
	if *comparePath != "" {
		printComparison(*comparePath, file)
	}

	for _, name := range order {
		rep := file.Workloads[name]
		if !rep.EqualBestCost {
			fatalf("%s: best costs diverged (uncached %v, cold %v, warm %v) — the cache changed a result",
				name, rep.Uncached.BestCost, rep.CachedCold.BestCost, rep.CachedWarm.BestCost)
		}
		if *minSpeedup > 0 && rep.SpeedupWarm < *minSpeedup {
			fatalf("%s: warm speedup %.2fx below the %.1fx gate", name, rep.SpeedupWarm, *minSpeedup)
		}
		if *minColdSpeedup > 0 && rep.SpeedupCold < *minColdSpeedup {
			fatalf("%s: cold speedup %.2fx below the %.1fx gate — the cache slows a first search down",
				name, rep.SpeedupCold, *minColdSpeedup)
		}
		if *maxAllocsPerIter > 0 && rep.CachedWarm.AllocsPerIter > *maxAllocsPerIter {
			fatalf("%s: %.0f allocs per iteration warm-cached, above the %.0f gate",
				name, rep.CachedWarm.AllocsPerIter, *maxAllocsPerIter)
		}
		if snap := rep.Snapshot; snap != nil {
			if !snap.EqualBestCost {
				fatalf("%s: restart-from-snapshot best cost %v != cold %v — a snapshot changed a result",
					name, snap.Restored.BestCost, rep.CachedCold.BestCost)
			}
			if *minSnapshotSpeedup > 0 && snap.Speedup < *minSnapshotSpeedup {
				fatalf("%s: restart-from-snapshot speedup %.2fx below the %.1fx gate",
					name, snap.Speedup, *minSnapshotSpeedup)
			}
		}
		if tree := rep.TreeParallel; tree != nil && tree.GateEnforced {
			if !tree.CostNoWorse {
				fatalf("%s: tree-parallel best cost %v worse than sequential %v", name, tree.Parallel.BestCost, tree.Sequential.BestCost)
			}
			if tree.Speedup < *minTreeSpeedup {
				fatalf("%s: tree-parallel speedup %.2fx at %d workers below the %.1fx gate",
					name, tree.Speedup, tree.Workers, *minTreeSpeedup)
			}
		}
	}
}

// benchWorkload times the three cache modes (and, for the first workload,
// the tree-parallel section) on one query log.
func benchWorkload(name string, log []*ast.Node, strategy core.Strategy, strategySpec string,
	iterations, rollout int, seed int64, repeats int,
	withTree bool, treeWorkers int, minTreeSpeedup float64) workloadReport {

	base := core.Options{
		Iterations:   iterations,
		RolloutDepth: rollout,
		Seed:         seed,
		Strategy:     strategy,
	}

	once := func(opt core.Options) modeResult {
		// Shared-cache counters are cumulative for the cache's lifetime;
		// report this run's delta, not the running total.
		var before eval.Stats
		if opt.Cache != nil {
			before = opt.Cache.Stats()
		}
		var mem0, mem1 runtime.MemStats
		runtime.ReadMemStats(&mem0)
		start := time.Now()
		res, err := core.Generate(context.Background(), log, opt)
		if err != nil {
			fatalf("generate: %v", err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&mem1)
		m := modeResult{
			ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
			ItersPerSec: float64(res.Stats.Iterations) / elapsed.Seconds(),
			Iterations:  res.Stats.Iterations,
			Evals:       res.Stats.Evals,
			BestCost:    res.Cost.Total(),
		}
		if res.Stats.Iterations > 0 {
			m.AllocsPerIter = float64(mem1.Mallocs-mem0.Mallocs) / float64(res.Stats.Iterations)
			m.BytesPerIter = float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(res.Stats.Iterations)
		}
		if opt.Cache != nil {
			after := opt.Cache.Stats()
			m.CacheHits = after.Hits - before.Hits
			m.CacheMisses = after.Misses - before.Misses
			if total := m.CacheHits + m.CacheMisses; total > 0 {
				m.CacheHitRate = float64(m.CacheHits) / float64(total)
			}
		}
		return m
	}
	fastest := func(opt core.Options, n int) modeResult {
		best := modeResult{ElapsedMS: -1}
		for r := 0; r < n; r++ {
			if m := once(opt); best.ElapsedMS < 0 || m.ElapsedMS < best.ElapsedMS {
				best = m
			}
		}
		return best
	}

	uncachedOpt := base
	uncachedOpt.DisableMemo = true
	uncached := fastest(uncachedOpt, repeats)

	// Cold gets the same fastest-of-N treatment as the other modes — a fresh
	// cache per repetition, so every sample pays the full first-search
	// miss/insert path. A single cold sample racing a best-of-N uncached
	// baseline would bias the speedup_cold gate below 1.0 on scheduler noise
	// alone. Warm then reuses the cache the last cold repetition filled.
	sharedOpt := base
	cold := modeResult{ElapsedMS: -1}
	for r := 0; r < repeats; r++ {
		sharedOpt.Cache = eval.NewCache(0)
		if m := once(sharedOpt); cold.ElapsedMS < 0 || m.ElapsedMS < cold.ElapsedMS {
			cold = m
		}
	}
	warm := fastest(sharedOpt, repeats)

	// Restart-from-snapshot: export the warm cache through the codec, then
	// time searches that import it into a fresh cache first — the cost and
	// legality entries arrive warm, moves/pools rebuild, exactly what a
	// restarted daemon pays.
	var snapBuf bytes.Buffer
	snapEntries, err := sharedOpt.Cache.Snapshot(&snapBuf)
	if err != nil {
		fatalf("cache snapshot: %v", err)
	}
	snap := &snapshotSection{Entries: snapEntries, Bytes: snapBuf.Len()}
	restoredOpt := base
	restored := modeResult{ElapsedMS: -1}
	for r := 0; r < repeats; r++ {
		restoredOpt.Cache = eval.NewCache(0)
		if _, err := restoredOpt.Cache.LoadSnapshot(bytes.NewReader(snapBuf.Bytes())); err != nil {
			fatalf("cache snapshot import: %v", err)
		}
		if m := once(restoredOpt); restored.ElapsedMS < 0 || m.ElapsedMS < restored.ElapsedMS {
			restored = m
		}
	}
	snap.Restored = restored
	snap.Speedup = restored.ItersPerSec / cold.ItersPerSec
	snap.EqualBestCost = restored.BestCost == cold.BestCost

	rep := workloadReport{
		Workload:      name,
		Strategy:      strategySpec,
		Iterations:    iterations,
		RolloutDepth:  rollout,
		Seed:          seed,
		Repeats:       repeats,
		Uncached:      uncached,
		CachedCold:    cold,
		CachedWarm:    warm,
		SpeedupCold:   cold.ItersPerSec / uncached.ItersPerSec,
		SpeedupWarm:   warm.ItersPerSec / uncached.ItersPerSec,
		EqualBestCost: cold.BestCost == uncached.BestCost && warm.BestCost == uncached.BestCost,
		Snapshot:      snap,
	}

	// Tree-parallel section: N goroutines on one tree vs the sequential
	// search, both *cold* (a fresh cache per repetition). Cold-vs-cold is
	// the fair comparison: a warm sequential rerun is 100% cache hits on its
	// own deterministic trajectory, while virtual loss steers tree-parallel
	// workers into fresh states on purpose — so a warm baseline would
	// measure cache residency, not parallelism. What the workers actually
	// parallelize is the per-state evaluation work of one search, which is
	// exactly what a first-contact request (the paper's 1-minute budget
	// scenario) pays.
	// Each repetition is an independent sample of the (for TreeWorkers > 1,
	// non-deterministic) search: the fastest elapsed time measures speed and
	// the best cost across repetitions measures quality, mirroring how a
	// caller under a wall-clock budget would actually use the knob.
	if withTree && treeWorkers > 1 {
		coldFastest := func(opt core.Options, n int) modeResult {
			best := modeResult{ElapsedMS: -1}
			minCost := math.Inf(1)
			for r := 0; r < n; r++ {
				opt.Cache = eval.NewCache(0)
				m := once(opt)
				minCost = math.Min(minCost, m.BestCost)
				if best.ElapsedMS < 0 || m.ElapsedMS < best.ElapsedMS {
					best = m
				}
			}
			best.BestCost = minCost
			return best
		}
		treeOpt := base
		treeOpt.TreeWorkers = treeWorkers
		// The parallel search is non-deterministic, so this section is gated
		// on samples, not a single run: take at least 5 repetitions per mode
		// so one unlucky interleaving (or one noisy-CI hiccup) cannot flip
		// the speedup or best-cost verdict.
		treeRepeats := max(repeats, 5)
		cpus, qualified := benchutil.GateEnforced(treeWorkers)
		tree := &treeSection{
			Workers:      treeWorkers,
			Sequential:   coldFastest(base, treeRepeats),
			Parallel:     coldFastest(treeOpt, treeRepeats),
			CPUs:         cpus,
			GateEnforced: minTreeSpeedup > 0 && qualified,
		}
		tree.Speedup = tree.Parallel.ItersPerSec / tree.Sequential.ItersPerSec
		tree.CostNoWorse = tree.Parallel.BestCost <= tree.Sequential.BestCost+1e-9
		rep.TreeParallel = tree
	}
	return rep
}

// printComparison diffs the fresh report against a previous file, printing
// one line per workload metric that is present on both sides. Both the
// multi-workload format and the legacy single-section format are accepted.
func printComparison(path string, fresh fileReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("compare: cannot read %s (%v); skipping diff\n", path, err)
		return
	}
	var old legacyReport
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Printf("compare: cannot parse %s (%v); skipping diff\n", path, err)
		return
	}
	prev := old.Workloads
	if prev == nil {
		// Legacy single-section file: the whole object is one workload.
		var single workloadReport
		if err := json.Unmarshal(data, &single); err != nil || single.Workload == "" {
			fmt.Printf("compare: %s has no workloads section; skipping diff\n", path)
			return
		}
		prev = map[string]workloadReport{single.Workload: single}
	}

	names := make([]string, 0, len(fresh.Workloads))
	for name := range fresh.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("compare vs %s:\n", path)
	for _, name := range names {
		now := fresh.Workloads[name]
		was, ok := prev[name]
		if !ok {
			fmt.Printf("  %s: new workload (no previous data)\n", name)
			continue
		}
		fmt.Printf("  %s:\n", name)
		delta := benchutil.DeltaPrinter(os.Stdout)
		delta("uncached iters/sec", was.Uncached.ItersPerSec, now.Uncached.ItersPerSec, "")
		delta("warm iters/sec", was.CachedWarm.ItersPerSec, now.CachedWarm.ItersPerSec, "")
		delta("warm speedup", was.SpeedupWarm, now.SpeedupWarm, "x")
		delta("cold speedup", was.SpeedupCold, now.SpeedupCold, "x")
		delta("warm hit rate", was.CachedWarm.CacheHitRate*100, now.CachedWarm.CacheHitRate*100, "%")
		delta("best cost", was.CachedWarm.BestCost, now.CachedWarm.BestCost, "")
		// Older reports predate the alloc columns; zero means "not recorded",
		// and a delta against it would read as an infinite regression.
		if was.CachedWarm.AllocsPerIter > 0 {
			delta("warm allocs/iter", was.CachedWarm.AllocsPerIter, now.CachedWarm.AllocsPerIter, "")
			delta("cold allocs/iter", was.CachedCold.AllocsPerIter, now.CachedCold.AllocsPerIter, "")
		}
		if was.TreeParallel != nil && now.TreeParallel != nil {
			delta("tree speedup", was.TreeParallel.Speedup, now.TreeParallel.Speedup, "x")
		}
		if was.Snapshot != nil && now.Snapshot != nil {
			delta("snapshot speedup", was.Snapshot.Speedup, now.Snapshot.Speedup, "x")
			delta("snapshot entries", float64(was.Snapshot.Entries), float64(now.Snapshot.Entries), "")
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "searchbench: "+format+"\n", args...)
	os.Exit(1)
}
