// Command searchbench measures the memoized evaluation engine against the
// memoization-off baseline on one workload and emits a machine-readable
// BENCH_search.json for the performance trajectory.
//
// Three modes are timed, all with the same seed and budget:
//
//   - uncached:    memoization disabled (every state re-scored per visit)
//   - cached_cold: a fresh shared cache, first search
//   - cached_warm: the same shared cache, subsequent searches (steady
//     state — the serving scenario WithCache exists for)
//
// State evaluation is deterministic per state, so all three modes must
// return the identical best cost; searchbench fails if they do not. The
// -min-speedup gate (default 3) applies to the warm/uncached ratio and
// makes `make bench-json` fail loudly if the cache stops paying for itself.
//
//	go run ./cmd/searchbench -out BENCH_search.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/workload"
)

type modeResult struct {
	ElapsedMS    float64 `json:"elapsed_ms"`
	ItersPerSec  float64 `json:"iters_per_sec"`
	Iterations   int     `json:"iterations"`
	Evals        int     `json:"evals"`
	BestCost     float64 `json:"best_cost"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type report struct {
	Workload      string     `json:"workload"`
	Strategy      string     `json:"strategy"`
	Iterations    int        `json:"iterations"`
	RolloutDepth  int        `json:"rollout_depth"`
	Seed          int64      `json:"seed"`
	Repeats       int        `json:"repeats"`
	Uncached      modeResult `json:"uncached"`
	CachedCold    modeResult `json:"cached_cold"`
	CachedWarm    modeResult `json:"cached_warm"`
	SpeedupCold   float64    `json:"speedup_cold"`
	SpeedupWarm   float64    `json:"speedup_warm"`
	EqualBestCost bool       `json:"equal_best_cost"`
	GeneratedAt   string     `json:"generated_at"`
}

func main() {
	out := flag.String("out", "BENCH_search.json", "output file ('-' for stdout)")
	workloadName := flag.String("workload", "sdss", "query log: sdss | sdss-subset | figure1")
	strategySpec := flag.String("strategy", "mcts", "search strategy (see -h of cmd/mctsui)")
	iterations := flag.Int("iterations", 15, "search iteration budget per run")
	rollout := flag.Int("rollout", 8, "rollout depth")
	seed := flag.Int64("seed", 1, "deterministic seed")
	repeats := flag.Int("repeats", 3, "timed repetitions per mode (fastest wins)")
	minSpeedup := flag.Float64("min-speedup", 3, "fail unless warm-cache/uncached iters-per-sec reaches this (0 disables)")
	flag.Parse()

	var log []*ast.Node
	switch *workloadName {
	case "sdss":
		log = workload.SDSSLog()
	case "sdss-subset":
		log = workload.SDSSSubset(6, 8)
	case "figure1":
		log = workload.PaperFigure1Log()
	default:
		fatalf("unknown workload %q", *workloadName)
	}
	strategy, err := core.StrategyByName(*strategySpec)
	if err != nil {
		fatalf("%v", err)
	}

	base := core.Options{
		Iterations:   *iterations,
		RolloutDepth: *rollout,
		Seed:         *seed,
		Strategy:     strategy,
	}

	once := func(opt core.Options) modeResult {
		// Shared-cache counters are cumulative for the cache's lifetime;
		// report this run's delta, not the running total.
		var before eval.Stats
		if opt.Cache != nil {
			before = opt.Cache.Stats()
		}
		start := time.Now()
		res, err := core.Generate(context.Background(), log, opt)
		if err != nil {
			fatalf("generate: %v", err)
		}
		elapsed := time.Since(start)
		m := modeResult{
			ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
			ItersPerSec: float64(res.Stats.Iterations) / elapsed.Seconds(),
			Iterations:  res.Stats.Iterations,
			Evals:       res.Stats.Evals,
			BestCost:    res.Cost.Total(),
		}
		if opt.Cache != nil {
			after := opt.Cache.Stats()
			m.CacheHits = after.Hits - before.Hits
			m.CacheMisses = after.Misses - before.Misses
			if total := m.CacheHits + m.CacheMisses; total > 0 {
				m.CacheHitRate = float64(m.CacheHits) / float64(total)
			}
		}
		return m
	}
	fastest := func(opt core.Options, n int) modeResult {
		best := modeResult{ElapsedMS: -1}
		for r := 0; r < n; r++ {
			if m := once(opt); best.ElapsedMS < 0 || m.ElapsedMS < best.ElapsedMS {
				best = m
			}
		}
		return best
	}

	uncachedOpt := base
	uncachedOpt.DisableMemo = true
	uncached := fastest(uncachedOpt, *repeats)

	sharedOpt := base
	sharedOpt.Cache = eval.NewCache(0)
	cold := once(sharedOpt)
	warm := fastest(sharedOpt, *repeats)

	rep := report{
		Workload:      *workloadName,
		Strategy:      *strategySpec,
		Iterations:    *iterations,
		RolloutDepth:  *rollout,
		Seed:          *seed,
		Repeats:       *repeats,
		Uncached:      uncached,
		CachedCold:    cold,
		CachedWarm:    warm,
		SpeedupCold:   cold.ItersPerSec / uncached.ItersPerSec,
		SpeedupWarm:   warm.ItersPerSec / uncached.ItersPerSec,
		EqualBestCost: cold.BestCost == uncached.BestCost && warm.BestCost == uncached.BestCost,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	fmt.Printf("%s/%s: %.1f iters/sec warm-cached vs %.1f uncached (%.1fx warm, %.1fx cold, hit rate %.1f%%), best cost %.2f\n",
		rep.Workload, rep.Strategy, warm.ItersPerSec, uncached.ItersPerSec,
		rep.SpeedupWarm, rep.SpeedupCold, warm.CacheHitRate*100, warm.BestCost)

	if !rep.EqualBestCost {
		fatalf("best costs diverged (uncached %v, cold %v, warm %v) — the cache changed a result",
			uncached.BestCost, cold.BestCost, warm.BestCost)
	}
	if *minSpeedup > 0 && rep.SpeedupWarm < *minSpeedup {
		fatalf("warm speedup %.2fx below the %.1fx gate", rep.SpeedupWarm, *minSpeedup)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "searchbench: "+format+"\n", args...)
	os.Exit(1)
}
