package mctsui

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// TestGoldenFigure6c locks the headline reproduction: SDSS queries 6-8 must
// produce the paper's simple interface — a TOP row-count picker (10, 100,
// 1000) plus the table picker — deterministically under the fixed seed.
func TestGoldenFigure6c(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	sub := workload.SDSSSubset(6, 8)
	srcs := make([]string, len(sub))
	for i, q := range sub {
		srcs[i] = sqlparser.Render(q)
	}
	iface, err := Generate(srcs, Config{Iterations: 15, RolloutDepth: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := iface.ASCII()
	for _, want := range []string{
		"TOP 10", "TOP 100", "TOP 1000", // the paper's row-count picker
		"quasars", "stars", "galaxies", // the table variation in queries 6-8
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6(c) interface missing %q:\n%s", want, out)
		}
	}
	if iface.NumWidgets() > 3 {
		t.Errorf("Figure 6(c) interface should be simple, got %d widgets:\n%s",
			iface.NumWidgets(), out)
	}
	// The WHERE clause is shared by all three queries: no widget for it.
	if strings.Contains(out, "BETWEEN") || strings.Contains(out, "Where") {
		t.Errorf("shared WHERE clause must not produce widgets:\n%s", out)
	}
	// Strictly simpler than the full-log interface (paper's point).
	full, err := Generate(workload.SDSSLogSQL(), Config{Iterations: 15, RolloutDepth: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if iface.NumWidgets() >= full.NumWidgets() {
		t.Errorf("subset interface (%d widgets) should be simpler than full (%d)",
			iface.NumWidgets(), full.NumWidgets())
	}
	if iface.Cost() >= full.Cost() {
		t.Errorf("subset cost %.2f should undercut full cost %.2f", iface.Cost(), full.Cost())
	}
}

// TestGoldenWideScreenEnumerates locks Figure 6(a)'s shape: the wide screen
// prefers enumerating widgets (buttons/radio) over dropdowns for the
// projection and TOP variations.
func TestGoldenWideScreenEnumerates(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	iface, err := Generate(workload.SDSSLogSQL(), Config{Iterations: 15, RolloutDepth: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := iface.ASCII()
	if !strings.Contains(out, "buttons") && !strings.Contains(out, "radio") {
		t.Errorf("wide screen should enumerate options:\n%s", out)
	}
	for _, want := range []string{"objid", "count(*)", "TOP 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
