package mctsui

import (
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/sqlparser"
	"repro/internal/widgets"
)

// tabsInterface hand-builds an interface with a nested choice: the query
// either filters by country (with an inner literal choice) or sorts by b —
// structurally different clauses that the assign layer must host in tabs.
func tabsInterface(t *testing.T) (*Interface, []string) {
	t.Helper()
	logSQL := []string{
		"select a from t where cty = USA",
		"select a from t where cty = EUR",
		"select a from t order by b desc",
	}
	log := make([]*ast.Node, len(logSQL))
	for i, s := range logSQL {
		log[i] = sqlparser.MustParse(s)
	}

	whereAlt := difftree.NewAll(ast.KindWhere, "",
		difftree.NewAll(ast.KindBiExpr, "=",
			difftree.NewAll(ast.KindColExpr, "cty"),
			difftree.NewAny(
				difftree.NewAll(ast.KindStrExpr, "USA"),
				difftree.NewAll(ast.KindStrExpr, "EUR"))))
	orderAlt := difftree.NewAll(ast.KindOrderBy, "",
		difftree.NewAll(ast.KindSortKey, "desc", difftree.NewAll(ast.KindColExpr, "b")))
	d := difftree.NewAll(ast.KindSelect, "",
		difftree.NewAll(ast.KindProject, "", difftree.NewAll(ast.KindColExpr, "a")),
		difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "t")),
		difftree.NewAny(whereAlt, orderAlt))
	if err := difftree.Validate(d); err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Fatal("hand-built tree must express the log")
	}
	plan, err := assign.BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	return &Interface{res: &core.Result{DiffTree: d, UI: plan.First(), Log: log}}, logSQL
}

func TestSessionTabsRoundTrip(t *testing.T) {
	iface, logSQL := tabsInterface(t)

	// The UI must contain a tabs widget hosting the nested choice.
	sawTabs := false
	iface.res.UI.Walk(func(n *layout.Node) bool {
		if n.Type == widgets.Tabs {
			sawTabs = true
		}
		return true
	})
	if !sawTabs {
		t.Fatalf("expected tabs in:\n%s", layout.RenderASCII(iface.res.UI))
	}

	sess := iface.NewSession()
	for _, src := range logSQL {
		if err := sess.LoadQuery(src); err != nil {
			t.Fatalf("LoadQuery(%q): %v", src, err)
		}
		got, err := sess.SQL()
		if err != nil {
			t.Fatal(err)
		}
		want := sqlparser.Render(sqlparser.MustParse(src))
		if got != want {
			t.Errorf("tabs round trip: got %q want %q", got, want)
		}
	}
}

func TestSessionTabsSwitching(t *testing.T) {
	iface, _ := tabsInterface(t)
	sess := iface.NewSession()
	// Widget 0 is the tabs (pre-order); switching tabs flips the clause.
	ws := sess.Widgets()
	if len(ws) < 2 {
		t.Fatalf("widgets: %+v", ws)
	}
	tabsIdx := -1
	for _, w := range ws {
		if w.Type == "tabs" {
			tabsIdx = w.Index
		}
	}
	if tabsIdx < 0 {
		t.Fatal("no tabs widget in session")
	}
	if err := sess.Set(tabsIdx, 1); err != nil {
		t.Fatal(err)
	}
	sql, err := sess.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ORDER BY") {
		t.Errorf("tab 1 should produce the ORDER BY variant: %q", sql)
	}
	if err := sess.Set(tabsIdx, 0); err != nil {
		t.Fatal(err)
	}
	sql, err = sess.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "WHERE") {
		t.Errorf("tab 0 should produce the WHERE variant: %q", sql)
	}
}
