// Command sdss reproduces the paper's headline demonstration: generating
// interfaces for the Sloan Digital Sky Survey query log (Listing 1) under a
// wide and a narrow screen (Figure 6(a) and 6(b)), then executing the
// interface's current query live against a synthetic SDSS catalog and
// rendering the recommended visualization.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mctsui "repro"
	"repro/internal/engine"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	iters := flag.Int("iters", 15, "MCTS iterations per screen")
	rows := flag.Int("rows", 2000, "rows per synthetic SDSS table")
	seed := flag.Int64("seed", 1, "search seed")
	workers := flag.Int("workers", 1, "parallel root searches per screen")
	flag.Parse()
	ctx := context.Background()

	queries := workload.SDSSLogSQL()
	fmt.Println("SDSS query log (paper Listing 1):")
	for i, q := range queries {
		fmt.Printf("  %2d  %s\n", i+1, q)
	}

	for _, sc := range []struct {
		name   string
		screen mctsui.Screen
	}{
		{"wide screen (Figure 6a)", mctsui.WideScreen},
		{"narrow screen (Figure 6b)", mctsui.NarrowScreen},
	} {
		fmt.Printf("\n=== %s %v ===\n", sc.name, sc.screen)
		iface, err := mctsui.New(
			mctsui.WithScreen(sc.screen),
			mctsui.WithIterations(*iters),
			mctsui.WithSeed(*seed),
			mctsui.WithWorkers(*workers),
		).Generate(ctx, queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(iface.ASCII())
		w, h := iface.Bounds()
		fmt.Printf("cost=%.2f widgets=%d bounds=%dx%d (screen %v)\n",
			iface.Cost(), iface.NumWidgets(), w, h, sc.screen)
	}

	// Live execution against the synthetic catalog.
	fmt.Println("\n=== live session (wide screen interface) ===")
	iface, err := mctsui.New(
		mctsui.WithIterations(*iters),
		mctsui.WithSeed(*seed),
	).Generate(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	db := engine.SDSSDB(*rows, 42)
	sess := iface.NewSession()

	for _, qi := range []int{0, 3} { // q1 (top-10 scan) and q4 (count)
		if err := sess.LoadQuery(queries[qi]); err != nil {
			log.Fatalf("load q%d: %v", qi+1, err)
		}
		sql, _ := sess.SQL()
		fmt.Printf("\ncurrent query: %s\n", sql)
		res, spec, err := sess.Execute(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recommended visualization: %s\n", spec.Type)
		fmt.Print(viz.Render(res, spec, 8))
	}
}
