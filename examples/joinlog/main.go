// Command joinlog is the multi-table quickstart: it generates interfaces
// for the SDSS-style join session (photometric tables joined against the
// spectroscopic specobj/photoz tables, IN-subquery variants, and UNION
// queries), shows the factored join block's linked widgets — the
// join-partner picker next to the table and TOP choices — and drives the
// result live: LoadQuery round trips, widget interaction, and execution
// against the synthetic catalog.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mctsui "repro"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	iters := flag.Int("iters", 15, "MCTS iterations per log")
	rows := flag.Int("rows", 2000, "rows per synthetic SDSS table")
	seed := flag.Int64("seed", 1, "search seed")
	flag.Parse()
	ctx := context.Background()

	queries := workload.SDSSJoinLogSQL()
	fmt.Println("SDSS multi-table session:")
	for i, q := range queries {
		fmt.Printf("  %2d  %s\n", i+1, q)
	}

	for _, c := range []struct {
		name    string
		queries []string
	}{
		{"join block (queries 1-6)", queries[:6]},
		{"full session (joins + subqueries + unions)", queries},
	} {
		fmt.Printf("\n=== %s ===\n", c.name)
		iface, err := mctsui.New(
			mctsui.WithIterations(*iters),
			mctsui.WithSeed(*seed),
		).Generate(ctx, c.queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(iface.ASCII())
		fmt.Printf("cost=%.2f (initial %.2f), widgets=%d\n",
			iface.Cost(), iface.InitialCost(), iface.NumWidgets())
	}

	// Drive the join block's interface: load a query, flip widgets, execute.
	iface, err := mctsui.New(mctsui.WithIterations(*iters), mctsui.WithSeed(*seed)).
		Generate(ctx, queries[:6])
	if err != nil {
		log.Fatal(err)
	}
	sess := iface.NewSession()
	if err := sess.LoadQuery(queries[3]); err != nil {
		log.Fatal(err)
	}
	sql, err := sess.SQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded query 4 into the widgets:\n  %s\n", sql)

	db := engine.SDSSDB(*rows, 42)
	res, spec, err := sess.Execute(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed against the catalog: %d rows, recommended viz: %v\n",
		len(res.Rows), spec.Type)

	rep := iface.ValidateSemantics(db, 15)
	fmt.Printf("semantic check: %d/%d expressible queries execute (%.0f%%)\n",
		rep.Executable, rep.Checked, rep.Fraction()*100)
}
