// Command repl is an interactive terminal driver for a generated interface:
// it generates the SDSS interface (or one from -log), then accepts commands
// to flip widgets, run the current query against the synthetic catalog, and
// inspect plausibility — a terminal rendition of using the paper's output.
//
// Commands:
//
//	show                 render the widget tree and current values
//	set <widget> <val>   change a widget (option index / 0|1 / count)
//	load <n>             load the n-th log query into the widgets
//	sql                  print the current query
//	run                  execute the current query and draw the chart
//	why                  plausibility of the current combination vs the log
//	save <file>          write the interface bundle as JSON
//	page <file>          write the interactive HTML page
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	mctsui "repro"
	"repro/internal/engine"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	logPath := flag.String("log", "", "query log file (default: the paper's SDSS log)")
	iters := flag.Int("iters", 15, "MCTS iterations")
	flag.Parse()

	queries := workload.SDSSLogSQL()
	if *logPath != "" {
		data, err := os.ReadFile(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		queries = nil
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "--") && !strings.HasPrefix(line, "#") {
				queries = append(queries, line)
			}
		}
	}

	fmt.Println("generating interface...")
	iface, err := mctsui.New(
		mctsui.WithIterations(*iters),
		mctsui.WithSeed(1),
		mctsui.WithProgress(func(p mctsui.Progress) {
			fmt.Printf("\r  iter=%d best=%.2f ", p.Iterations, p.BestCost)
		}),
	).Generate(context.Background(), queries)
	fmt.Println()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess := iface.NewSession()
	db := engine.SDSSDB(2000, 42)
	fmt.Print(iface.ASCII())
	fmt.Println(`type "help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("show | set <widget> <val> | load <n> | sql | run | why | save <file> | page <file> | quit")
		case "show":
			fmt.Print(iface.ASCII())
			for _, w := range sess.Widgets() {
				fmt.Printf("  [%d] %-10s %-12q = %q\n", w.Index, w.Type, w.Title, w.Value)
			}
		case "set":
			if len(fields) != 3 {
				fmt.Println("usage: set <widget> <value>")
				continue
			}
			w, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("set takes two integers")
				continue
			}
			if err := sess.Set(w, v); err != nil {
				fmt.Println(err)
				continue
			}
			printSQL(sess)
		case "load":
			if len(fields) != 2 {
				fmt.Println("usage: load <query-number>")
				continue
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > len(queries) {
				fmt.Printf("query number 1..%d\n", len(queries))
				continue
			}
			if err := sess.LoadQuery(queries[n-1]); err != nil {
				fmt.Println(err)
				continue
			}
			printSQL(sess)
		case "sql":
			printSQL(sess)
		case "run":
			res, spec, err := sess.Execute(db)
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("visualization: %s\n", spec.Type)
			fmt.Print(viz.Render(res, spec, 10))
		case "why":
			fmt.Printf("plausibility vs log: %.2f\n", sess.Plausibility())
		case "save", "page":
			if len(fields) != 2 {
				fmt.Printf("usage: %s <file>\n", fields[0])
				continue
			}
			var data []byte
			var err error
			if fields[0] == "save" {
				data, err = iface.MarshalJSON()
			} else {
				var page string
				page, err = iface.Page("Generated interface")
				data = []byte(page)
			}
			if err == nil {
				err = os.WriteFile(fields[1], data, 0o644)
			}
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Println("wrote", fields[1])
		default:
			fmt.Println("unknown command; try help")
		}
	}
}

func printSQL(sess *mctsui.Session) {
	sql, err := sess.SQL()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sql)
}
