// Command flights demonstrates the library on a second analysis domain: a
// flight-delay dashboard mined from an ad-hoc analysis session (the kind of
// Jupyter-notebook workflow the paper's introduction motivates). The log
// mixes aggregates, GROUP BY, predicates and LIMIT clauses; the generated
// interface exposes exactly the variations the analyst explored.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mctsui "repro"
	"repro/internal/engine"
	"repro/internal/viz"
)

// analysisLog is an ad-hoc session: the analyst slices average delay by
// carrier, switches metrics and airports, and tweaks thresholds.
var analysisLog = []string{
	"select carrier, avg(dep_delay) from flights where origin = 'JFK' group by carrier",
	"select carrier, avg(arr_delay) from flights where origin = 'JFK' group by carrier",
	"select carrier, avg(arr_delay) from flights where origin = 'LAX' group by carrier",
	"select carrier, avg(arr_delay) from flights where origin = 'ORD' group by carrier",
	"select carrier, max(arr_delay) from flights where origin = 'ORD' group by carrier",
	"select carrier, count(*) from flights where origin = 'ORD' group by carrier",
}

func flightsDB(rows int) *engine.DB {
	db := engine.NewDB()
	carriers := []string{"AA", "DL", "UA", "WN"}
	origins := []string{"JFK", "LAX", "ORD"}
	carrierCol := make([]string, rows)
	originCol := make([]string, rows)
	depDelay := make([]float64, rows)
	arrDelay := make([]float64, rows)
	for i := 0; i < rows; i++ {
		carrierCol[i] = carriers[i%len(carriers)]
		originCol[i] = origins[(i/3)%len(origins)]
		// Deterministic pseudo-delays with per-carrier bias.
		depDelay[i] = float64((i*37)%60) + float64(i%len(carriers))*5
		arrDelay[i] = depDelay[i] + float64((i*13)%20) - 5
	}
	err := db.Add(&engine.Table{Name: "flights", Cols: []*engine.Column{
		{Name: "carrier", Type: engine.String, Strs: carrierCol},
		{Name: "origin", Type: engine.String, Strs: originCol},
		{Name: "dep_delay", Type: engine.Float, Flts: depDelay},
		{Name: "arr_delay", Type: engine.Float, Flts: arrDelay},
	}})
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func main() {
	iters := flag.Int("iters", 15, "MCTS iterations")
	flag.Parse()

	fmt.Println("Analysis session log:")
	for i, q := range analysisLog {
		fmt.Printf("  %d  %s\n", i+1, q)
	}

	iface, err := mctsui.New(
		mctsui.WithIterations(*iters),
		mctsui.WithSeed(3),
	).Generate(context.Background(), analysisLog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenerated dashboard controls:")
	fmt.Print(iface.ASCII())
	fmt.Printf("cost=%.2f widgets=%d\n\n", iface.Cost(), iface.NumWidgets())

	db := flightsDB(600)
	sess := iface.NewSession()
	if err := sess.LoadQuery(analysisLog[1]); err != nil {
		log.Fatal(err)
	}
	sql, _ := sess.SQL()
	fmt.Printf("current query: %s\n", sql)
	res, spec, err := sess.Execute(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visualization: %s\n", spec.Type)
	fmt.Print(viz.Render(res, spec, 10))

	// The interface generalizes: queries the analyst never typed.
	fmt.Println("\nSome queries this dashboard can express that are NOT in the log:")
	seen := map[string]bool{}
	for _, q := range analysisLog {
		if s, err := canonicalize(q); err == nil {
			seen[s] = true
		}
	}
	shown := 0
	for _, q := range iface.Queries(50) {
		if !seen[q] && shown < 5 {
			fmt.Printf("  %s\n", q)
			shown++
		}
	}
}

func canonicalize(q string) (string, error) {
	one, err := mctsui.New(mctsui.WithIterations(1)).Generate(context.Background(), []string{q})
	if err != nil {
		return "", err
	}
	qs := one.Queries(1)
	if len(qs) == 0 {
		return "", fmt.Errorf("no canonical form")
	}
	return qs[0], nil
}
