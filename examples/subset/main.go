// Command subset reproduces the paper's Figure 6(c): when only queries 6–8
// of the SDSS log are used as input, the generated interface is much
// simpler — those queries share their WHERE clauses, so the user is mostly
// asked to pick the number of rows to return (10, 100, 1000). It also shows
// Figure 6(d)'s counterpoint: an unsearched random difftree scores far
// worse than the searched one.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	mctsui "repro"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func main() {
	iters := flag.Int("iters", 15, "MCTS iterations")
	flag.Parse()

	sub := workload.SDSSSubset(6, 8)
	fmt.Println("Input: SDSS queries 6-8 (identical WHERE clauses):")
	srcs := make([]string, len(sub))
	for i, q := range sub {
		srcs[i] = sqlparser.Render(q)
		fmt.Printf("  %s\n", srcs[i])
	}

	ctx := context.Background()
	iface, err := mctsui.New(
		mctsui.WithIterations(*iters),
		mctsui.WithSeed(1),
	).Generate(ctx, srcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenerated interface (Figure 6(c) analogue):")
	fmt.Print(iface.ASCII())
	fmt.Printf("cost=%.2f widgets=%d\n", iface.Cost(), iface.NumWidgets())

	// The subset log is tiny, so a breadth-first sweep is affordable:
	// WithStrategy swaps MCTS for capped exhaustive enumeration, a second
	// opinion on how close the sampled search got (the space itself is
	// unbounded, so the sweep reports complete=false honestly).
	exact, err := mctsui.New(
		mctsui.WithStrategy(mctsui.StrategyExhaustive(5000)),
		mctsui.WithRewardSamples(1),
		mctsui.WithSeed(1),
	).Generate(ctx, srcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive search over %d states: cost=%.2f (complete=%v) vs mcts %.2f\n",
		exact.Stats().Expanded, exact.Cost(), exact.Stats().SpaceExhausted, iface.Cost())

	fullIface, err := mctsui.New(
		mctsui.WithIterations(*iters),
		mctsui.WithSeed(1),
	).Generate(ctx, workload.SDSSLogSQL())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor reference, the all-queries interface needs %d widgets (cost %.2f);\n",
		fullIface.NumWidgets(), fullIface.Cost())
	fmt.Printf("the subset interface needs %d (cost %.2f) - simpler inputs, simpler interface.\n",
		iface.NumWidgets(), iface.Cost())

	// Figure 6(d): a low-reward interface from an unsearched random state.
	fmt.Println("\nLow-reward interface (Figure 6(d) analogue): random walk, no search:")
	logAll := workload.SDSSLog()
	randTree, err := core.RandomWalk(logAll, 8, 99)
	if err != nil {
		log.Fatal(err)
	}
	model := cost.Default(layout.Wide)
	ui, bd, _ := core.BestInterface(randTree, logAll, model, 2000, 1)
	if ui != nil {
		fmt.Print(layout.RenderASCII(ui))
	}
	fmt.Printf("random-state cost=%.2f vs searched cost=%.2f\n", bd.Total(), fullIface.Cost())
}
