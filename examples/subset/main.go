// Command subset reproduces the paper's Figure 6(c): when only queries 6–8
// of the SDSS log are used as input, the generated interface is much
// simpler — those queries share their WHERE clauses, so the user is mostly
// asked to pick the number of rows to return (10, 100, 1000). It also shows
// Figure 6(d)'s counterpoint: an unsearched random difftree scores far
// worse than the searched one.
package main

import (
	"flag"
	"fmt"
	"log"

	mctsui "repro"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func main() {
	iters := flag.Int("iters", 15, "MCTS iterations")
	flag.Parse()

	sub := workload.SDSSSubset(6, 8)
	fmt.Println("Input: SDSS queries 6-8 (identical WHERE clauses):")
	srcs := make([]string, len(sub))
	for i, q := range sub {
		srcs[i] = sqlparser.Render(q)
		fmt.Printf("  %s\n", srcs[i])
	}

	iface, err := mctsui.Generate(srcs, mctsui.Config{Iterations: *iters, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenerated interface (Figure 6(c) analogue):")
	fmt.Print(iface.ASCII())
	fmt.Printf("cost=%.2f widgets=%d\n", iface.Cost(), iface.NumWidgets())

	fullIface, err := mctsui.Generate(workload.SDSSLogSQL(), mctsui.Config{Iterations: *iters, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor reference, the all-queries interface needs %d widgets (cost %.2f);\n",
		fullIface.NumWidgets(), fullIface.Cost())
	fmt.Printf("the subset interface needs %d (cost %.2f) - simpler inputs, simpler interface.\n",
		iface.NumWidgets(), iface.Cost())

	// Figure 6(d): a low-reward interface from an unsearched random state.
	fmt.Println("\nLow-reward interface (Figure 6(d) analogue): random walk, no search:")
	logAll := workload.SDSSLog()
	randTree, err := core.RandomWalk(logAll, 8, 99)
	if err != nil {
		log.Fatal(err)
	}
	model := cost.Default(layout.Wide)
	ui, bd, _ := core.BestInterface(randTree, logAll, model, 2000, 1)
	if ui != nil {
		fmt.Print(layout.RenderASCII(ui))
	}
	fmt.Printf("random-state cost=%.2f vs searched cost=%.2f\n", bd.Total(), fullIface.Cost())
}
