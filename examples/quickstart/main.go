// Command quickstart generates an interface for the paper's Figure 1
// example — three queries over a sales table — and walks through the public
// API: a context-aware Generator with progress snapshots, rendering,
// expressible-query enumeration, and an interactive session.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mctsui "repro"
)

func main() {
	queries := []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales WHERE cty = EUR",
		"SELECT Costs FROM sales",
	}

	fmt.Println("Input query log (paper Figure 1):")
	for i, q := range queries {
		fmt.Printf("  q%d: %s\n", i+1, q)
	}

	// The Generator is anytime: the context bounds the search (cancel it
	// and the best interface found so far is returned), and the progress
	// callback watches the best-so-far cost fall while it runs.
	gen := mctsui.New(
		mctsui.WithIterations(40),
		mctsui.WithSeed(1),
		mctsui.WithProgress(func(p mctsui.Progress) {
			if p.Iterations%10 == 0 && p.Iterations > 0 {
				fmt.Printf("  ... iteration %d: best cost %.2f (%d evals)\n",
					p.Iterations, p.BestCost, p.Evals)
			}
		}),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	iface, err := gen.Generate(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nGenerated interface (widget tree with bounding boxes):")
	fmt.Print(iface.ASCII())
	fmt.Printf("\nCost C(W,Q) = %.2f (initial state cost was %.2f)\n",
		iface.Cost(), iface.InitialCost())
	fmt.Printf("difftree: %s\n", iface.DiffTree())
	st := iface.Stats()
	fmt.Printf("search: strategy=%s iterations=%d evals=%d improvements=%d interrupted=%v\n",
		st.Strategy, st.Iterations, st.Evals, len(st.Trajectory), st.Interrupted)

	fmt.Println("\nQueries this interface can express (beyond the log):")
	for _, q := range iface.Queries(10) {
		fmt.Printf("  %s\n", q)
	}

	// Drive the interface: load q1, then flip widgets.
	sess := iface.NewSession()
	if err := sess.LoadQuery(queries[0]); err != nil {
		log.Fatal(err)
	}
	sql, err := sess.SQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSession loaded q1: %s\n", sql)

	fmt.Println("Widgets:")
	for _, w := range sess.Widgets() {
		fmt.Printf("  [%d] %-10s %-10q options=%v value=%q\n",
			w.Index, w.Type, w.Title, w.Options, w.Value)
	}

	// Change the first widget through its options, printing the query each
	// interaction produces (the paper's w(q, u) -> q' semantics).
	ws := sess.Widgets()
	if len(ws) > 0 {
		n := len(ws[0].Options)
		if n == 0 {
			n = 2
		}
		fmt.Println("\nInteracting with widget 0:")
		for v := 0; v < n; v++ {
			if err := sess.Set(0, v); err != nil {
				continue
			}
			if sql, err := sess.SQL(); err == nil {
				fmt.Printf("  value %d -> %s\n", v, sql)
			}
		}
	}
}
