package mctsui

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// joinStrategies are the two searchers the join-scenarios acceptance gate
// runs end-to-end (mirroring the CI step).
func joinStrategies() map[string]Strategy {
	return map[string]Strategy{
		"mcts": StrategyMCTS(),
		"beam": StrategyBeam(3),
	}
}

func generateJoinInterface(t *testing.T, s Strategy) *Interface {
	t.Helper()
	iface, err := New(
		WithStrategy(s),
		WithIterations(10),
		WithRolloutDepth(6),
		WithRewardSamples(3),
		WithSeed(1),
	).Generate(context.Background(), workload.SDSSJoinLogSQL())
	if err != nil {
		t.Fatal(err)
	}
	return iface
}

// TestJoinScenarioEndToEnd is the multi-table acceptance test: an SDSS-style
// join/union/subquery log goes parse → search (mcts and beam) → widgets →
// interact → export/import, and every step round-trips.
func TestJoinScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	for name, strat := range joinStrategies() {
		t.Run(name, func(t *testing.T) {
			iface := generateJoinInterface(t, strat)
			if !iface.Valid() {
				t.Fatal("join interface invalid")
			}
			if iface.NumWidgets() == 0 {
				t.Fatal("join interface has no widgets")
			}

			// Every input query stays expressible through the chosen tree.
			for _, src := range workload.SDSSJoinLogSQL() {
				ok, err := iface.CanExpress(src)
				if err != nil || !ok {
					t.Fatalf("cannot express %q (err %v)", src, err)
				}
			}

			// Interact: load every log query into the live session and check
			// the widgets reproduce it canonically (the paper's linked-widget
			// behavior over join partners and union branches).
			sess := iface.NewSession()
			for _, src := range workload.SDSSJoinLogSQL() {
				if err := sess.LoadQuery(src); err != nil {
					t.Fatalf("LoadQuery(%q): %v", src, err)
				}
				got, err := sess.SQL()
				if err != nil {
					t.Fatal(err)
				}
				want := sqlparser.Render(sqlparser.MustParse(src))
				if got != want {
					t.Errorf("LoadQuery round trip: got %q, want %q", got, want)
				}
			}

			// Flip every widget through its first two options; the session
			// must keep materializing a query (widget combinations may be
			// semantically odd — the paper accepts that — but never wedge
			// the session).
			for i, w := range sess.Widgets() {
				if len(w.Options) > 1 {
					if err := sess.Set(i, 1); err != nil {
						t.Fatalf("Set(%d, 1): %v", i, err)
					}
				}
				if _, err := sess.Query(); err != nil {
					t.Fatalf("widget %d (%s) wedged the session: %v", i, w.Title, err)
				}
			}

			// Export/import: the persisted interface reloads with the same
			// difftree and still expresses the whole log.
			data, err := iface.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := LoadInterface(data, WideScreen)
			if err != nil {
				t.Fatal(err)
			}
			if back.DiffTree() != iface.DiffTree() {
				t.Errorf("import changed the difftree:\n got %s\nwant %s", back.DiffTree(), iface.DiffTree())
			}
			for _, src := range workload.SDSSJoinLogSQL() {
				ok, err := back.CanExpress(src)
				if err != nil || !ok {
					t.Fatalf("imported interface cannot express %q (err %v)", src, err)
				}
			}
		})
	}
}

// TestJoinScenarioSemantics: the generated join interface's expressible
// queries actually execute against the catalog — the engine integration
// covers the multi-table grammar.
func TestJoinScenarioSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	iface := generateJoinInterface(t, StrategyMCTS())
	db := engine.SDSSDB(60, 7)
	rep := iface.ValidateSemantics(db, 20)
	if rep.Checked == 0 {
		t.Fatal("no queries enumerated")
	}
	if rep.Executable == 0 {
		t.Fatalf("no expressible join query executes: %v", rep.Errors)
	}

	// The log's own queries run against the engine directly.
	for _, src := range workload.SDSSJoinLogSQL() {
		if _, err := engine.Exec(db, sqlparser.MustParse(src)); err != nil {
			t.Errorf("log query does not execute: %q: %v", src, err)
		}
	}
}
