package engine

import (
	"strconv"
	"testing"

	"repro/internal/sqlparser"
)

// testDB builds a small deterministic catalog for exact assertions.
func testDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	err := db.Add(&Table{Name: "stars", Cols: []*Column{
		{Name: "objid", Type: Int, Ints: []int64{1, 2, 3, 4, 5}},
		{Name: "u", Type: Float, Flts: []float64{5, 15, 25, 35, 10}},
		{Name: "g", Type: Float, Flts: []float64{1, 2, 3, 4, 5}},
		{Name: "class", Type: String, Strs: []string{"A", "B", "A", "C", "B"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func exec(t testing.TB, db *DB, q string) *Result {
	t.Helper()
	res, err := Exec(db, sqlparser.MustParse(q))
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "select * from stars")
	if len(res.Cols) != 4 || len(res.Rows) != 5 {
		t.Fatalf("star: %v rows=%d", res.Cols, len(res.Rows))
	}
	if res.Rows[0][0] != "1" || res.Rows[4][3] != "B" {
		t.Errorf("cells wrong: %v", res.Rows)
	}
}

func TestProjection(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "select objid, class from stars")
	if len(res.Cols) != 2 || res.Cols[0] != "objid" || res.Cols[1] != "class" {
		t.Fatalf("cols: %v", res.Cols)
	}
	if res.ColTypes[0] != Int || res.ColTypes[1] != String {
		t.Error("types wrong")
	}
	// Alias.
	res2 := exec(t, db, "select objid as id from stars")
	if res2.Cols[0] != "id" {
		t.Errorf("alias ignored: %v", res2.Cols)
	}
}

func TestWhereComparisons(t *testing.T) {
	db := testDB(t)
	cases := map[string]int{
		"select objid from stars where u > 10":                      3,
		"select objid from stars where u >= 10":                     4,
		"select objid from stars where u < 10":                      1,
		"select objid from stars where u <= 10":                     2,
		"select objid from stars where u = 15":                      1,
		"select objid from stars where u != 15":                     4,
		"select objid from stars where class = 'A'":                 2,
		"select objid from stars where class != 'A'":                3,
		"select objid from stars where class = A":                   2, // bare identifier literal
		"select objid from stars where u between 10 and 30":         3,
		"select objid from stars where objid in (1, 3, 9)":          2,
		"select objid from stars where class in ('A', 'C')":         3,
		"select objid from stars where class like 'A'":              2,
		"select objid from stars where not u > 10":                  2,
		"select objid from stars where u > 10 and class = 'A'":      1,
		"select objid from stars where u > 30 or class = 'B'":       3,
		"select objid from stars where (u > 30 or u < 6) and g < 2": 1,
	}
	for q, want := range cases {
		if got := len(exec(t, db, q).Rows); got != want {
			t.Errorf("%s: %d rows, want %d", q, got, want)
		}
	}
}

func TestTopAndLimit(t *testing.T) {
	db := testDB(t)
	if got := len(exec(t, db, "select top 2 objid from stars").Rows); got != 2 {
		t.Errorf("TOP 2 = %d rows", got)
	}
	if got := len(exec(t, db, "select objid from stars limit 3").Rows); got != 3 {
		t.Errorf("LIMIT 3 = %d rows", got)
	}
	if got := len(exec(t, db, "select top 100 objid from stars").Rows); got != 5 {
		t.Errorf("TOP over-count = %d rows", got)
	}
}

func TestOrderBy(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "select objid from stars order by u")
	want := []string{"1", "5", "2", "3", "4"}
	for i, w := range want {
		if res.Rows[i][0] != w {
			t.Fatalf("asc order: %v", res.Rows)
		}
	}
	res = exec(t, db, "select objid from stars order by u desc")
	if res.Rows[0][0] != "4" {
		t.Errorf("desc order: %v", res.Rows)
	}
	res = exec(t, db, "select objid from stars order by class, u desc")
	if res.Rows[0][0] != "3" || res.Rows[1][0] != "1" {
		t.Errorf("two-key order: %v", res.Rows)
	}
	// ORDER BY before TOP (SQL semantics).
	res = exec(t, db, "select top 1 objid from stars order by u desc")
	if len(res.Rows) != 1 || res.Rows[0][0] != "4" {
		t.Errorf("top-after-order: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "select count(*) from stars where u > 10")
	if !res.Aggregate || res.Rows[0][0] != "3" {
		t.Errorf("count: %v", res.Rows)
	}
	if res.Cols[0] != "count(*)" {
		t.Errorf("agg name: %v", res.Cols)
	}
	cases := map[string]string{
		"select sum(g) from stars":   "15",
		"select avg(g) from stars":   "3",
		"select min(u) from stars":   "5",
		"select max(u) from stars":   "35",
		"select count(u) from stars": "5",
	}
	for q, want := range cases {
		if got := exec(t, db, q).Rows[0][0]; got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
	// Aggregate over empty selection.
	res = exec(t, db, "select count(*), avg(u) from stars where u > 1000")
	if res.Rows[0][0] != "0" || res.Rows[0][1] != "0" {
		t.Errorf("empty agg: %v", res.Rows)
	}
	// Alias on aggregate.
	if got := exec(t, db, "select count(*) as n from stars").Cols[0]; got != "n" {
		t.Errorf("agg alias: %s", got)
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "select class, count(*) from stars group by class")
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %v", res.Rows)
	}
	counts := map[string]string{}
	for _, r := range res.Rows {
		counts[r[0]] = r[1]
	}
	if counts["A"] != "2" || counts["B"] != "2" || counts["C"] != "1" {
		t.Errorf("group counts: %v", counts)
	}
	// Grouped aggregate of another column.
	res = exec(t, db, "select class, sum(g) from stars group by class")
	sums := map[string]string{}
	for _, r := range res.Rows {
		sums[r[0]] = r[1]
	}
	if sums["A"] != "4" || sums["B"] != "7" {
		t.Errorf("group sums: %v", sums)
	}
	// Non-grouped column is an error.
	if _, err := Exec(db, sqlparser.MustParse("select u, count(*) from stars group by class")); err == nil {
		t.Error("non-grouped column must fail")
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "select distinct class from stars")
	if len(res.Rows) != 3 {
		t.Errorf("distinct: %v", res.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"select objid from nope",
		"select missing from stars",
		"select objid from stars where missing = 1",
		"select objid from stars where class between 1 and 2",
		"select objid from stars where u = 'abc'",
		"select objid from stars order by missing",
		"select objid from stars where missing in (1)",
		"select objid from stars where missing like 'x'",
		"select median(u) from stars",
		"select sum(*) from stars",
		"select u, count(*) from stars",
	}
	for _, q := range bad {
		if _, err := Exec(db, sqlparser.MustParse(q)); err == nil {
			t.Errorf("%s should fail", q)
		}
	}
	if _, err := Exec(db, nil); err == nil {
		t.Error("nil query must fail")
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"M%", "M31", true},
		{"M%", "NGC", false},
		{"%31", "M31", true},
		{"M_1", "M31", true},
		{"M_1", "M321", false},
		{"%", "", true},
		{"", "", true},
		{"_", "", false},
		{"a%b%c", "aXXbYYc", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("like(%q,%q) = %v", c.pat, c.s, got)
		}
	}
}

func TestDBCatalog(t *testing.T) {
	db := testDB(t)
	if _, ok := db.Table("stars"); !ok {
		t.Error("stars missing")
	}
	if _, ok := db.Table("nope"); ok {
		t.Error("phantom table")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "stars" {
		t.Errorf("tables: %v", got)
	}
	// Duplicate and ragged tables rejected.
	if err := db.Add(&Table{Name: "stars"}); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := db.Add(&Table{Name: "ragged", Cols: []*Column{
		{Name: "a", Type: Int, Ints: []int64{1, 2}},
		{Name: "b", Type: Int, Ints: []int64{1}},
	}}); err == nil {
		t.Error("ragged table must fail")
	}
}

func TestSDSSDB(t *testing.T) {
	db := SDSSDB(100, 42)
	for _, name := range []string{"stars", "galaxies", "quasars"} {
		tbl, ok := db.Table(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if tbl.NumRows() != 100 {
			t.Errorf("%s rows = %d", name, tbl.NumRows())
		}
		for _, col := range []string{"objid", "u", "g", "r", "i", "z"} {
			if tbl.Col(col) == nil {
				t.Errorf("%s.%s missing", name, col)
			}
		}
	}
	// Deterministic across constructions.
	db2 := SDSSDB(100, 42)
	a, _ := db.Table("stars")
	b, _ := db2.Table("stars")
	for i := 0; i < 100; i++ {
		if a.Col("u").Flts[i] != b.Col("u").Flts[i] {
			t.Fatal("SDSSDB not deterministic")
		}
	}
	// Listing 1 queries run against it.
	for _, src := range []string{
		"select top 10 objid from stars where u between 0 and 30 and g between 0 and 30 and r between 0 and 30 and i between 0 and 30",
		"select count(*) from quasars where u between 0 and 30",
	} {
		res := exec(t, db, src)
		if len(res.Rows) == 0 {
			t.Errorf("%s returned no rows", src)
		}
	}
}

func TestColTypeString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" || String.String() != "string" {
		t.Error("type names")
	}
	if ColType(9).String() != "coltype?" {
		t.Error("unknown type")
	}
}

func TestValueNum(t *testing.T) {
	if (Value{I: 7}).num(Int) != 7 || (Value{F: 2.5}).num(Float) != 2.5 {
		t.Error("num conversions")
	}
}

func TestCellString(t *testing.T) {
	c := &Column{Name: "f", Type: Float, Flts: []float64{1.25}}
	if cellString(c, 0) != "1.25" {
		t.Errorf("float cell: %s", cellString(c, 0))
	}
	i := &Column{Name: "i", Type: Int, Ints: []int64{42}}
	if cellString(i, 0) != strconv.Itoa(42) {
		t.Error("int cell")
	}
}
