// Package engine is a small in-memory query engine executing the SQL subset
// of internal/sqlparser against column-typed tables. It powers the live
// examples (a generated interface's current query runs against synthetic
// SDSS-style data) and the semantic-validation extension the paper lists as
// ongoing work ("integrate with a query engine").
package engine

import (
	"fmt"
	"math/rand"
	"sort"
)

// ColType is a column's value type.
type ColType uint8

// Supported column types.
const (
	Int ColType = iota
	Float
	String
)

func (t ColType) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	}
	return "coltype?"
}

// Value is one cell; exactly one field is meaningful per column type.
type Value struct {
	I int64
	F float64
	S string
}

// num returns the cell as float64 for numeric comparison.
func (v Value) num(t ColType) float64 {
	if t == Int {
		return float64(v.I)
	}
	return v.F
}

// Column is a named, typed value vector.
type Column struct {
	Name string
	Type ColType
	Ints []int64
	Flts []float64
	Strs []string
}

// Len returns the column length.
func (c *Column) Len() int {
	switch c.Type {
	case Int:
		return len(c.Ints)
	case Float:
		return len(c.Flts)
	default:
		return len(c.Strs)
	}
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Col returns the named column or nil.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// DB is a catalog of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Add registers a table; it errors on duplicate names or ragged columns.
func (db *DB) Add(t *Table) error {
	if _, ok := db.tables[t.Name]; ok {
		return fmt.Errorf("engine: table %q already exists", t.Name)
	}
	n := -1
	for _, c := range t.Cols {
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("engine: table %q has ragged columns", t.Name)
		}
	}
	db.tables[t.Name] = t
	return nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Tables lists table names sorted.
func (db *DB) Tables() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SDSSDB builds the deterministic synthetic Sloan Digital Sky Survey catalog
// used throughout the evaluation: stars, galaxies, and quasars tables with
// objid and the u,g,r,i,z photometric magnitudes. This substitutes for the
// real survey data the paper queries (the generation problem itself never
// reads the data; only the live examples do).
func SDSSDB(rowsPerTable int, seed int64) *DB {
	db := NewDB()
	rng := rand.New(rand.NewSource(seed))
	for ti, name := range []string{"stars", "galaxies", "quasars"} {
		objid := make([]int64, rowsPerTable)
		mags := make([][]float64, 5)
		for i := range mags {
			mags[i] = make([]float64, rowsPerTable)
		}
		for r := 0; r < rowsPerTable; r++ {
			objid[r] = int64(ti+1)*1_000_000 + int64(r)
			for m := range mags {
				// Magnitudes roughly in [0, 32), clustered by table.
				mags[m][r] = float64(ti)*1.5 + rng.Float64()*28.5
			}
		}
		t := &Table{Name: name, Cols: []*Column{
			{Name: "objid", Type: Int, Ints: objid},
			{Name: "u", Type: Float, Flts: mags[0]},
			{Name: "g", Type: Float, Flts: mags[1]},
			{Name: "r", Type: Float, Flts: mags[2]},
			{Name: "i", Type: Float, Flts: mags[3]},
			{Name: "z", Type: Float, Flts: mags[4]},
		}}
		if err := db.Add(t); err != nil {
			panic(err) // fresh DB, fixed names: cannot happen
		}
	}

	// Join partners for the multi-table workloads, generated after the
	// photometric tables so their cell values are unchanged from earlier
	// versions of the catalog.
	//
	// photoz has one row per star and per galaxy (photometric redshift
	// estimate); specobj covers every third of those objects (only a
	// fraction of photometric objects get a spectrum), so a LEFT JOIN on
	// specobj keeps rows an INNER JOIN drops.
	var photoIDs []int64
	for _, name := range []string{"stars", "galaxies"} {
		t, _ := db.Table(name)
		photoIDs = append(photoIDs, t.Col("objid").Ints...)
	}
	zphot := make([]float64, len(photoIDs))
	zerr := make([]float64, len(photoIDs))
	for i := range photoIDs {
		zphot[i] = rng.Float64() * 4
		zerr[i] = rng.Float64() * 0.2
	}
	mustAdd(db, &Table{Name: "photoz", Cols: []*Column{
		{Name: "objid", Type: Int, Ints: photoIDs},
		{Name: "zphot", Type: Float, Flts: zphot},
		{Name: "zerr", Type: Float, Flts: zerr},
	}})

	classes := []string{"STAR", "GALAXY", "QSO"}
	var specIDs, specObjIDs []int64
	var specClass []string
	var redshift []float64
	for i := 0; i < len(photoIDs); i += 3 {
		specIDs = append(specIDs, 9_000_000+int64(i))
		specObjIDs = append(specObjIDs, photoIDs[i])
		specClass = append(specClass, classes[rng.Intn(len(classes))])
		redshift = append(redshift, rng.Float64()*6)
	}
	mustAdd(db, &Table{Name: "specobj", Cols: []*Column{
		{Name: "specobjid", Type: Int, Ints: specIDs},
		{Name: "objid", Type: Int, Ints: specObjIDs},
		{Name: "class", Type: String, Strs: specClass},
		{Name: "redshift", Type: Float, Flts: redshift},
	}})
	return db
}

func mustAdd(db *DB, t *Table) {
	if err := db.Add(t); err != nil {
		panic(err) // fresh DB, fixed names: cannot happen
	}
}
