package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
)

// Result is a query result: column headers and row-major string cells plus
// typed metadata for the visualization recommender.
type Result struct {
	Cols     []string
	ColTypes []ColType
	Rows     [][]string
	// Aggregate marks a single-row aggregate result (e.g. count(*)).
	Aggregate bool
}

// Exec runs a parsed query against the database. Supported: projection of
// columns / count,min,max,avg,sum aggregates / *, FROM one table extended by
// INNER/LEFT JOIN chains with ON equi-predicates, WHERE trees of AND/OR/NOT
// over comparisons, BETWEEN, IN (literal list or one-column subquery), LIKE,
// EXISTS subqueries, plus TOP/LIMIT, ORDER BY, GROUP BY with aggregates,
// DISTINCT, and top-level UNION / UNION ALL.
func Exec(db *DB, q *ast.Node) (*Result, error) {
	if q != nil && q.Kind == ast.KindUnion {
		return execUnion(db, q)
	}
	if q == nil || q.Kind != ast.KindSelect {
		return nil, fmt.Errorf("engine: not a SELECT")
	}
	from := q.ChildOfKind(ast.KindFrom)
	if from == nil || len(from.Children) == 0 {
		return nil, fmt.Errorf("engine: missing FROM")
	}
	tbl, err := resolveFrom(db, from)
	if err != nil {
		return nil, err
	}

	// Filter. Subqueries are uncorrelated in the supported fragment, so each
	// is executed once up front and its result shared across rows.
	rows := make([]int, 0, tbl.NumRows())
	var pred *ast.Node
	if w := q.ChildOfKind(ast.KindWhere); w != nil {
		pred = w.Children[0]
	}
	subs, err := execSubqueries(db, pred)
	if err != nil {
		return nil, err
	}
	for r := 0; r < tbl.NumRows(); r++ {
		ok, err := evalPred(tbl, pred, r, subs)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, r)
		}
	}

	// Order (before TOP, as in SQL semantics for TOP n ... ORDER BY).
	if ob := q.ChildOfKind(ast.KindOrderBy); ob != nil {
		if err := orderRows(tbl, ob, rows); err != nil {
			return nil, err
		}
	}

	proj := q.ChildOfKind(ast.KindProject)
	if proj == nil {
		return nil, fmt.Errorf("engine: missing projection")
	}

	var res *Result
	if gb := q.ChildOfKind(ast.KindGroupBy); gb != nil {
		res, err = execGrouped(tbl, proj, gb, rows)
	} else if isAggregate(proj) {
		res, err = execAggregate(tbl, proj, rows)
	} else {
		res, err = execScan(tbl, proj, rows)
	}
	if err != nil {
		return nil, err
	}

	if q.ChildOfKind(ast.KindDistinct) != nil {
		res.Rows = dedupRows(res.Rows)
	}
	limit := -1
	if top := q.ChildOfKind(ast.KindTop); top != nil {
		limit = atoiDefault(top.Value, -1)
	}
	if lim := q.ChildOfKind(ast.KindLimit); lim != nil {
		l := atoiDefault(lim.Value, -1)
		if limit < 0 || (l >= 0 && l < limit) {
			limit = l
		}
	}
	if limit >= 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
	return res, nil
}

// execUnion executes each branch of a UNION chain and concatenates the rows;
// plain UNION deduplicates, UNION ALL keeps duplicates. Branches must agree
// on column count; headers come from the first branch.
func execUnion(db *DB, q *ast.Node) (*Result, error) {
	if len(q.Children) == 0 {
		return nil, fmt.Errorf("engine: empty UNION")
	}
	var out *Result
	for i, branch := range q.Children {
		r, err := Exec(db, branch)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out = &Result{Cols: r.Cols, ColTypes: r.ColTypes, Rows: r.Rows, Aggregate: r.Aggregate}
			continue
		}
		if len(r.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("engine: UNION branches project %d vs %d columns", len(out.Cols), len(r.Cols))
		}
		out.Rows = append(out.Rows, r.Rows...)
		out.Aggregate = out.Aggregate && r.Aggregate
	}
	if q.Value != "all" {
		out.Rows = dedupRows(out.Rows)
	}
	return out, nil
}

// resolveFrom materializes the FROM clause: the base table as-is, or — when
// the clause carries Join steps — a joined table built by hash equi-join
// over the ON columns. Column names are unioned left-to-right;
// a right column whose name already exists on the left is dropped (for
// matched equi-join rows the values agree anyway). LEFT JOIN keeps
// unmatched left rows and fills the right columns with zero values (the
// engine's tables have no NULL).
func resolveFrom(db *DB, from *ast.Node) (*Table, error) {
	base, ok := db.Table(from.Children[0].Value)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", from.Children[0].Value)
	}
	cur := base
	for _, step := range from.Children[1:] {
		if step.Kind != ast.KindJoin {
			return nil, fmt.Errorf("engine: unsupported FROM element %s", step.Kind)
		}
		if len(step.Children) != 2 || step.Children[0].Kind != ast.KindTable || step.Children[1].Kind != ast.KindOn {
			return nil, fmt.Errorf("engine: malformed join step")
		}
		right, ok := db.Table(step.Children[0].Value)
		if !ok {
			return nil, fmt.Errorf("engine: unknown table %q", step.Children[0].Value)
		}
		next, err := joinTables(cur, right, step.Children[1], step.Value == "left")
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// onCols resolves one ON equi-predicate against the two sides; either
// operand order (left-col = right-col or the reverse) is accepted.
func onCols(left, right *Table, eq *ast.Node) (*Column, *Column, error) {
	if eq.Kind != ast.KindBiExpr || eq.Value != "=" || len(eq.Children) != 2 {
		return nil, nil, fmt.Errorf("engine: ON supports only equi-predicates")
	}
	a, b := eq.Children[0].Value, eq.Children[1].Value
	if lc, rc := left.Col(a), right.Col(b); lc != nil && rc != nil {
		return lc, rc, nil
	}
	if lc, rc := left.Col(b), right.Col(a); lc != nil && rc != nil {
		return lc, rc, nil
	}
	return nil, nil, fmt.Errorf("engine: ON columns %q = %q not found across the join", a, b)
}

// joinTables hash-joins two tables on the conjunction of ON equi-predicates:
// an O(R)-space composite-key index over the right side, probed once per
// left row.
func joinTables(left, right *Table, on *ast.Node, leftOuter bool) (*Table, error) {
	type pair struct{ lc, rc *Column }
	var keys []pair
	for _, eq := range on.Children {
		lc, rc, err := onCols(left, right, eq)
		if err != nil {
			return nil, err
		}
		keys = append(keys, pair{lc, rc})
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("engine: join without ON predicates")
	}

	// Index right rows by their composite key for a hash-join probe.
	idx := make(map[string][]int, right.NumRows())
	for r := 0; r < right.NumRows(); r++ {
		k := ""
		for _, p := range keys {
			k += cellString(p.rc, r) + "\x00"
		}
		idx[k] = append(idx[k], r)
	}

	var lrows, rrows []int // rrow -1 marks an unmatched LEFT JOIN row
	for l := 0; l < left.NumRows(); l++ {
		k := ""
		for _, p := range keys {
			k += cellString(p.lc, l) + "\x00"
		}
		matches := idx[k]
		if len(matches) == 0 {
			if leftOuter {
				lrows = append(lrows, l)
				rrows = append(rrows, -1)
			}
			continue
		}
		for _, r := range matches {
			lrows = append(lrows, l)
			rrows = append(rrows, r)
		}
	}

	out := &Table{Name: left.Name + "+" + right.Name}
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, projectColumn(c, lrows))
	}
	for _, c := range right.Cols {
		if left.Col(c.Name) != nil {
			continue // name collision: the left column wins
		}
		out.Cols = append(out.Cols, projectColumn(c, rrows))
	}
	return out, nil
}

// projectColumn materializes a column for the given source rows; row -1
// yields the column type's zero value (unmatched LEFT JOIN fill).
func projectColumn(c *Column, rows []int) *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case Int:
		out.Ints = make([]int64, len(rows))
		for i, r := range rows {
			if r >= 0 {
				out.Ints[i] = c.Ints[r]
			}
		}
	case Float:
		out.Flts = make([]float64, len(rows))
		for i, r := range rows {
			if r >= 0 {
				out.Flts[i] = c.Flts[r]
			}
		}
	default:
		out.Strs = make([]string, len(rows))
		for i, r := range rows {
			if r >= 0 {
				out.Strs[i] = c.Strs[r]
			}
		}
	}
	return out
}

func atoiDefault(s string, def int) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}

// cell reads a table cell.
func cell(t *Table, c *Column, row int) Value {
	switch c.Type {
	case Int:
		return Value{I: c.Ints[row]}
	case Float:
		return Value{F: c.Flts[row]}
	default:
		return Value{S: c.Strs[row]}
	}
}

func cellString(c *Column, row int) string {
	switch c.Type {
	case Int:
		return strconv.FormatInt(c.Ints[row], 10)
	case Float:
		return strconv.FormatFloat(c.Flts[row], 'g', 6, 64)
	default:
		return c.Strs[row]
	}
}

// subResult is one pre-executed subquery: its first-column values (the IN
// membership set, pre-parsed into string and numeric lookup sets so the
// per-row probe is O(1)) and whether it returned any row (EXISTS verdict).
type subResult struct {
	strSet map[string]bool
	numSet map[float64]bool
	rows   int
	cols   int
}

// execSubqueries walks a predicate tree, executes every (uncorrelated)
// subquery once against db, and returns their results keyed by node.
func execSubqueries(db *DB, pred *ast.Node) (map[*ast.Node]*subResult, error) {
	if pred == nil {
		return nil, nil
	}
	var subs map[*ast.Node]*subResult
	var err error
	ast.Walk(pred, func(n *ast.Node) bool {
		if err != nil || n.Kind != ast.KindSubquery {
			return err == nil
		}
		if len(n.Children) != 1 {
			err = fmt.Errorf("engine: malformed subquery")
			return false
		}
		res, e := Exec(db, n.Children[0])
		if e != nil {
			err = e
			return false
		}
		sr := &subResult{
			rows:   len(res.Rows),
			cols:   len(res.Cols),
			strSet: make(map[string]bool, len(res.Rows)),
			numSet: make(map[float64]bool, len(res.Rows)),
		}
		for _, r := range res.Rows {
			if len(r) > 0 {
				sr.strSet[r[0]] = true
				if v, perr := strconv.ParseFloat(r[0], 64); perr == nil {
					sr.numSet[v] = true
				}
			}
		}
		if subs == nil {
			subs = make(map[*ast.Node]*subResult)
		}
		subs[n] = sr
		return false // one nesting level: don't descend into the subquery
	})
	return subs, err
}

// evalPred evaluates a predicate subtree on one row; nil predicates accept.
func evalPred(t *Table, p *ast.Node, row int, subs map[*ast.Node]*subResult) (bool, error) {
	if p == nil {
		return true, nil
	}
	switch p.Kind {
	case ast.KindAnd:
		for _, c := range p.Children {
			ok, err := evalPred(t, c, row, subs)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case ast.KindOr:
		for _, c := range p.Children {
			ok, err := evalPred(t, c, row, subs)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case ast.KindNot:
		ok, err := evalPred(t, p.Children[0], row, subs)
		return !ok, err
	case ast.KindSubquery:
		if p.Value != "exists" {
			return false, fmt.Errorf("engine: bare subquery used as a predicate")
		}
		sr := subs[p]
		if sr == nil {
			return false, fmt.Errorf("engine: subquery was not pre-executed")
		}
		return sr.rows > 0, nil
	case ast.KindBetween:
		col := t.Col(p.Children[0].Value)
		if col == nil {
			return false, fmt.Errorf("engine: unknown column %q", p.Children[0].Value)
		}
		if col.Type == String {
			return false, fmt.Errorf("engine: BETWEEN on string column %q", col.Name)
		}
		lo, err1 := strconv.ParseFloat(p.Children[1].Value, 64)
		hi, err2 := strconv.ParseFloat(p.Children[2].Value, 64)
		if err1 != nil || err2 != nil {
			return false, fmt.Errorf("engine: non-numeric BETWEEN bounds")
		}
		v := cell(t, col, row).num(col.Type)
		return v >= lo && v <= hi, nil
	case ast.KindBiExpr:
		return evalCompare(t, p, row)
	case ast.KindIn:
		col := t.Col(p.Children[0].Value)
		if col == nil {
			return false, fmt.Errorf("engine: unknown column %q", p.Children[0].Value)
		}
		got := cellString(col, row)
		if len(p.Children) == 2 && p.Children[1].Kind == ast.KindSubquery {
			sr := subs[p.Children[1]]
			if sr == nil {
				return false, fmt.Errorf("engine: subquery was not pre-executed")
			}
			if sr.cols != 1 {
				return false, fmt.Errorf("engine: IN subquery must project exactly one column, got %d", sr.cols)
			}
			if col.Type != String {
				return sr.numSet[cell(t, col, row).num(col.Type)], nil
			}
			return sr.strSet[got], nil
		}
		for _, lit := range p.Children[1:] {
			if col.Type != String {
				want, err := strconv.ParseFloat(lit.Value, 64)
				if err == nil && cell(t, col, row).num(col.Type) == want {
					return true, nil
				}
			} else if got == lit.Value {
				return true, nil
			}
		}
		return false, nil
	case ast.KindLike:
		col := t.Col(p.Children[0].Value)
		if col == nil {
			return false, fmt.Errorf("engine: unknown column %q", p.Children[0].Value)
		}
		return likeMatch(p.Children[1].Value, cellString(col, row)), nil
	}
	return false, fmt.Errorf("engine: unsupported predicate %s", p.Kind)
}

func evalCompare(t *Table, p *ast.Node, row int) (bool, error) {
	col := t.Col(p.Children[0].Value)
	if col == nil {
		return false, fmt.Errorf("engine: unknown column %q", p.Children[0].Value)
	}
	rhs := p.Children[1]
	if col.Type == String {
		a, b := cellString(col, row), rhs.Value
		switch p.Value {
		case "=":
			return a == b, nil
		case "!=":
			return a != b, nil
		case "<":
			return a < b, nil
		case ">":
			return a > b, nil
		case "<=":
			return a <= b, nil
		case ">=":
			return a >= b, nil
		}
		return false, fmt.Errorf("engine: bad operator %q", p.Value)
	}
	want, err := strconv.ParseFloat(rhs.Value, 64)
	if err != nil {
		return false, fmt.Errorf("engine: comparing numeric column %q with %q", col.Name, rhs.Value)
	}
	v := cell(t, col, row).num(col.Type)
	switch p.Value {
	case "=":
		return v == want, nil
	case "!=":
		return v != want, nil
	case "<":
		return v < want, nil
	case ">":
		return v > want, nil
	case "<=":
		return v <= want, nil
	case ">=":
		return v >= want, nil
	}
	return false, fmt.Errorf("engine: bad operator %q", p.Value)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char).
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(p[1:], s[i:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(p[1:], s[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(p[1:], s[1:])
	}
}

func orderRows(t *Table, ob *ast.Node, rows []int) error {
	type key struct {
		col  *Column
		desc bool
	}
	var keys []key
	for _, sk := range ob.Children {
		col := t.Col(sk.Children[0].Value)
		if col == nil {
			return fmt.Errorf("engine: unknown sort column %q", sk.Children[0].Value)
		}
		keys = append(keys, key{col: col, desc: sk.Value == "desc"})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			var less, eq bool
			if k.col.Type == String {
				a, b := k.col.Strs[rows[i]], k.col.Strs[rows[j]]
				less, eq = a < b, a == b
			} else {
				a := cell(t, k.col, rows[i]).num(k.col.Type)
				b := cell(t, k.col, rows[j]).num(k.col.Type)
				less, eq = a < b, a == b
			}
			if eq {
				continue
			}
			if k.desc {
				return !less
			}
			return less
		}
		return false
	})
	return nil
}

func isAggregate(proj *ast.Node) bool {
	for _, item := range proj.Children {
		if item.Kind == ast.KindFuncExpr {
			return true
		}
	}
	return false
}

func execScan(t *Table, proj *ast.Node, rows []int) (*Result, error) {
	var cols []*Column
	var names []string
	var types []ColType
	for _, item := range proj.Children {
		switch item.Kind {
		case ast.KindStar:
			for _, c := range t.Cols {
				cols = append(cols, c)
				names = append(names, c.Name)
				types = append(types, c.Type)
			}
		case ast.KindColExpr:
			c := t.Col(item.Value)
			if c == nil {
				return nil, fmt.Errorf("engine: unknown column %q", item.Value)
			}
			cols = append(cols, c)
			name := item.Value
			if a := item.ChildOfKind(ast.KindAlias); a != nil {
				name = a.Value
			}
			names = append(names, name)
			types = append(types, c.Type)
		default:
			return nil, fmt.Errorf("engine: unsupported projection %s", item.Kind)
		}
	}
	res := &Result{Cols: names, ColTypes: types}
	for _, r := range rows {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = cellString(c, r)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// aggState accumulates one aggregate.
type aggState struct {
	fn    string
	col   *Column // nil for count(*)
	n     int
	sum   float64
	min   float64
	max   float64
	first bool
}

func newAggState(fn string, col *Column) *aggState {
	return &aggState{fn: fn, col: col, first: true}
}

func (a *aggState) add(t *Table, row int) {
	a.n++
	if a.col == nil || a.col.Type == String {
		return
	}
	v := cell(t, a.col, row).num(a.col.Type)
	a.sum += v
	if a.first || v < a.min {
		a.min = v
	}
	if a.first || v > a.max {
		a.max = v
	}
	a.first = false
}

func (a *aggState) value() string {
	switch a.fn {
	case "count":
		return strconv.Itoa(a.n)
	case "sum":
		return strconv.FormatFloat(a.sum, 'g', 6, 64)
	case "avg":
		if a.n == 0 {
			return "0"
		}
		return strconv.FormatFloat(a.sum/float64(a.n), 'g', 6, 64)
	case "min":
		if a.first {
			return "0"
		}
		return strconv.FormatFloat(a.min, 'g', 6, 64)
	case "max":
		if a.first {
			return "0"
		}
		return strconv.FormatFloat(a.max, 'g', 6, 64)
	}
	return "?"
}

func aggName(item *ast.Node) string {
	if a := item.ChildOfKind(ast.KindAlias); a != nil {
		return a.Value
	}
	arg := "*"
	for _, c := range item.Children {
		if c.Kind == ast.KindColExpr {
			arg = c.Value
		}
	}
	return item.Value + "(" + arg + ")"
}

var supportedAggs = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func buildAgg(t *Table, item *ast.Node) (*aggState, error) {
	if !supportedAggs[item.Value] {
		return nil, fmt.Errorf("engine: unsupported aggregate %q", item.Value)
	}
	var col *Column
	for _, c := range item.Children {
		if c.Kind == ast.KindColExpr {
			col = t.Col(c.Value)
			if col == nil {
				return nil, fmt.Errorf("engine: unknown column %q", c.Value)
			}
		}
	}
	if col == nil && item.Value != "count" {
		return nil, fmt.Errorf("engine: %s(*) is not supported", item.Value)
	}
	return newAggState(item.Value, col), nil
}

func execAggregate(t *Table, proj *ast.Node, rows []int) (*Result, error) {
	res := &Result{Aggregate: true}
	var states []*aggState
	for _, item := range proj.Children {
		if item.Kind != ast.KindFuncExpr {
			return nil, fmt.Errorf("engine: mixing aggregates and columns requires GROUP BY")
		}
		st, err := buildAgg(t, item)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
		res.Cols = append(res.Cols, aggName(item))
		res.ColTypes = append(res.ColTypes, Float)
	}
	for _, r := range rows {
		for _, st := range states {
			st.add(t, r)
		}
	}
	row := make([]string, len(states))
	for i, st := range states {
		row[i] = st.value()
	}
	res.Rows = [][]string{row}
	return res, nil
}

func execGrouped(t *Table, proj, gb *ast.Node, rows []int) (*Result, error) {
	var groupCols []*Column
	for _, g := range gb.Children {
		c := t.Col(g.Value)
		if c == nil {
			return nil, fmt.Errorf("engine: unknown group column %q", g.Value)
		}
		groupCols = append(groupCols, c)
	}

	type group struct {
		key    []string
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string

	mkStates := func() ([]*aggState, error) {
		var out []*aggState
		for _, item := range proj.Children {
			if item.Kind == ast.KindFuncExpr {
				st, err := buildAgg(t, item)
				if err != nil {
					return nil, err
				}
				out = append(out, st)
			}
		}
		return out, nil
	}

	for _, r := range rows {
		key := make([]string, len(groupCols))
		for i, c := range groupCols {
			key[i] = cellString(c, r)
		}
		k := strings.Join(key, "\x00")
		g, ok := groups[k]
		if !ok {
			states, err := mkStates()
			if err != nil {
				return nil, err
			}
			g = &group{key: key, states: states}
			groups[k] = g
			order = append(order, k)
		}
		for _, st := range g.states {
			st.add(t, r)
		}
	}

	res := &Result{Aggregate: true}
	for _, item := range proj.Children {
		switch item.Kind {
		case ast.KindColExpr:
			inGroup := false
			for _, g := range gb.Children {
				if g.Value == item.Value {
					inGroup = true
				}
			}
			if !inGroup {
				return nil, fmt.Errorf("engine: column %q not in GROUP BY", item.Value)
			}
			res.Cols = append(res.Cols, item.Value)
			res.ColTypes = append(res.ColTypes, colTypeOf(t, item.Value))
		case ast.KindFuncExpr:
			res.Cols = append(res.Cols, aggName(item))
			res.ColTypes = append(res.ColTypes, Float)
		default:
			return nil, fmt.Errorf("engine: unsupported grouped projection %s", item.Kind)
		}
	}

	for _, k := range order {
		g := groups[k]
		var row []string
		si := 0
		for _, item := range proj.Children {
			if item.Kind == ast.KindColExpr {
				// Find the key position of this group column.
				for gi, gc := range gb.Children {
					if gc.Value == item.Value {
						row = append(row, g.key[gi])
						break
					}
				}
			} else {
				row = append(row, g.states[si].value())
				si++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func colTypeOf(t *Table, name string) ColType {
	if c := t.Col(name); c != nil {
		return c.Type
	}
	return String
}

func dedupRows(rows [][]string) [][]string {
	seen := map[string]bool{}
	out := rows[:0:0]
	for _, r := range rows {
		k := strings.Join(r, "\x00")
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
