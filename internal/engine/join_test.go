package engine

import (
	"testing"

	"repro/internal/sqlparser"
)

// joinDB extends testDB's stars with a spectra table covering objids 1, 3,
// and 5, so INNER and LEFT joins differ.
func joinDB(t testing.TB) *DB {
	t.Helper()
	db := testDB(t)
	if err := db.Add(&Table{Name: "spectra", Cols: []*Column{
		{Name: "specid", Type: Int, Ints: []int64{101, 103, 105}},
		{Name: "objid", Type: Int, Ints: []int64{1, 3, 5}},
		{Name: "redshift", Type: Float, Flts: []float64{0.5, 2.5, 4.0}},
	}}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInnerJoin(t *testing.T) {
	db := joinDB(t)
	res := exec(t, db, "select objid from stars inner join spectra on objid = objid")
	if len(res.Rows) != 3 {
		t.Fatalf("inner join rows = %d, want 3", len(res.Rows))
	}
	// Join columns merge: the right side's colliding objid is dropped, its
	// other columns are reachable.
	res = exec(t, db, "select objid, redshift from stars inner join spectra on objid = objid where redshift > 1")
	if len(res.Rows) != 2 {
		t.Fatalf("filtered join rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0] != "3" || res.Rows[0][1] != "2.5" {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
}

func TestInnerJoinCrossNamedKeys(t *testing.T) {
	db := joinDB(t)
	// ON with differently named sides resolves columns across the two
	// tables in either operand order.
	res := exec(t, db, "select specid from stars inner join spectra on g = objid")
	// stars.g values 1..5 match spectra.objid 1,3,5.
	if len(res.Rows) != 3 {
		t.Fatalf("cross-named join rows = %d, want 3", len(res.Rows))
	}
}

func TestLeftJoin(t *testing.T) {
	db := joinDB(t)
	res := exec(t, db, "select objid, redshift from stars left join spectra on objid = objid order by objid")
	if len(res.Rows) != 5 {
		t.Fatalf("left join rows = %d, want 5", len(res.Rows))
	}
	// objid 2 has no spectrum: right columns are zero-filled.
	if res.Rows[1][0] != "2" || res.Rows[1][1] != "0" {
		t.Fatalf("unmatched left row = %v", res.Rows[1])
	}
	if res.Rows[2][0] != "3" || res.Rows[2][1] != "2.5" {
		t.Fatalf("matched left row = %v", res.Rows[2])
	}
}

func TestJoinChainAndAggregates(t *testing.T) {
	db := joinDB(t)
	res := exec(t, db, "select count(*) from stars inner join spectra on objid = objid where u between 0 and 30")
	if res.Rows[0][0] != "3" {
		t.Fatalf("count over join = %v", res.Rows[0])
	}
	res = exec(t, db, "select class, count(*) from stars left join spectra on objid = objid group by class")
	if len(res.Rows) != 3 {
		t.Fatalf("grouped join rows = %v", res.Rows)
	}
}

func TestUnion(t *testing.T) {
	db := joinDB(t)
	// Plain UNION deduplicates; stars with u<20 are objids 1,2,5 and
	// class-B stars are 2,5.
	res := exec(t, db, "select objid from stars where u < 20 union select objid from stars where class = 'B'")
	if len(res.Rows) != 3 {
		t.Fatalf("union rows = %v", res.Rows)
	}
	res = exec(t, db, "select objid from stars where u < 20 union all select objid from stars where class = 'B'")
	if len(res.Rows) != 5 {
		t.Fatalf("union all rows = %v", res.Rows)
	}
}

func TestUnionColumnMismatch(t *testing.T) {
	db := joinDB(t)
	q := sqlparser.MustParse("select objid from stars union select objid, u from stars")
	if _, err := Exec(db, q); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
}

func TestInSubquery(t *testing.T) {
	db := joinDB(t)
	res := exec(t, db, "select objid from stars where objid in (select objid from spectra where redshift > 1)")
	if len(res.Rows) != 2 {
		t.Fatalf("IN subquery rows = %v", res.Rows)
	}
	// IN subqueries must project exactly one column.
	q := sqlparser.MustParse("select objid from stars where objid in (select objid, redshift from spectra)")
	if _, err := Exec(db, q); err == nil {
		t.Fatal("two-column IN subquery accepted")
	}
}

func TestExistsSubquery(t *testing.T) {
	db := joinDB(t)
	res := exec(t, db, "select objid from stars where exists (select specid from spectra where redshift > 3)")
	if len(res.Rows) != 5 {
		t.Fatalf("EXISTS true should keep all rows, got %v", res.Rows)
	}
	res = exec(t, db, "select objid from stars where exists (select specid from spectra where redshift > 100)")
	if len(res.Rows) != 0 {
		t.Fatalf("EXISTS false should drop all rows, got %v", res.Rows)
	}
}

func TestSDSSJoinTables(t *testing.T) {
	db := SDSSDB(90, 42)
	// photoz covers every star; specobj every third.
	res := exec(t, db, "select count(*) from stars inner join photoz on objid = objid")
	if res.Rows[0][0] != "90" {
		t.Fatalf("stars x photoz count = %v", res.Rows[0])
	}
	res = exec(t, db, "select count(*) from stars inner join specobj on objid = objid")
	if res.Rows[0][0] != "30" {
		t.Fatalf("stars x specobj count = %v", res.Rows[0])
	}
	left := exec(t, db, "select count(*) from stars left join specobj on objid = objid")
	if left.Rows[0][0] != "90" {
		t.Fatalf("left join count = %v", left.Rows[0])
	}
	// Determinism across constructions extends to the new tables.
	db2 := SDSSDB(90, 42)
	a, _ := db.Table("specobj")
	b, _ := db2.Table("specobj")
	for i := range a.Col("class").Strs {
		if a.Col("class").Strs[i] != b.Col("class").Strs[i] {
			t.Fatal("specobj not deterministic")
		}
	}
}
