package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/workload"
)

// equivalenceStrategies is every strategy the engine ships; the memoized
// evaluation engine must be invisible to all of them.
func equivalenceStrategies() map[string]Strategy {
	return map[string]Strategy{
		"mcts":       StrategyMCTS(),
		"beam":       StrategyBeam(3),
		"greedy":     StrategyGreedy(),
		"random":     StrategyRandom(6),
		"exhaustive": StrategyExhaustive(400),
	}
}

// TestCachedUncachedEquivalence is the acceptance gate for the transposition
// cache: for a fixed seed, every strategy must return the identical best
// cost — and the identical best difftree — with memoization on (private
// cache), with memoization off, and with a pre-warmed shared cache.
func TestCachedUncachedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	for name, strat := range equivalenceStrategies() {
		t.Run(name, func(t *testing.T) {
			base := Options{
				Iterations:   8,
				RolloutDepth: 6,
				Seed:         7,
				Strategy:     strat,
			}

			cached, err := Generate(context.Background(), log, base)
			if err != nil {
				t.Fatal(err)
			}

			uncachedOpt := base
			uncachedOpt.DisableMemo = true
			uncached, err := Generate(context.Background(), log, uncachedOpt)
			if err != nil {
				t.Fatal(err)
			}

			shared := eval.NewCache(0)
			sharedOpt := base
			sharedOpt.Cache = shared
			warm, err := Generate(context.Background(), log, sharedOpt)
			if err != nil {
				t.Fatal(err)
			}
			// Second run against the now-hot cache: everything is a hit.
			hot, err := Generate(context.Background(), log, sharedOpt)
			if err != nil {
				t.Fatal(err)
			}

			// A deliberately tiny cache keeps every lookup on the
			// eviction-heavy path: entries are constantly recycled, so most
			// hits become recomputes — which by construction are
			// bit-identical, making eviction invisible to the search.
			tinyOpt := base
			tinyOpt.Cache = eval.NewCache(96)
			tiny, err := Generate(context.Background(), log, tinyOpt)
			if err != nil {
				t.Fatal(err)
			}
			if ts := tinyOpt.Cache.Stats(); ts.Entries > ts.Capacity {
				t.Errorf("tiny cache occupancy %d exceeds capacity %d", ts.Entries, ts.Capacity)
			}

			want := cached.Cost.Total()
			if math.IsInf(want, 1) {
				t.Fatalf("no valid interface found: %+v", cached.Cost)
			}
			for label, r := range map[string]*Result{
				"uncached": uncached, "shared-cold": warm, "shared-hot": hot, "tiny-evicting": tiny,
			} {
				if got := r.Cost.Total(); got != want {
					t.Errorf("%s best cost %v, want %v", label, got, want)
				}
				if difftree.Hash(r.DiffTree) != difftree.Hash(cached.DiffTree) {
					t.Errorf("%s best difftree diverged:\n got %s\nwant %s",
						label, r.DiffTree, cached.DiffTree)
				}
			}

			if cached.Stats.CacheMisses == 0 {
				t.Error("cached run recorded no cache traffic")
			}
			if uncached.Stats.CacheHits != 0 || uncached.Stats.CacheMisses != 0 {
				t.Errorf("uncached run recorded cache traffic: %+v", uncached.Stats)
			}
			if hot.Stats.CacheHitRate <= warm.Stats.CacheHitRate {
				t.Errorf("hot run hit rate %.3f not above cold %.3f",
					hot.Stats.CacheHitRate, warm.Stats.CacheHitRate)
			}
		})
	}
}

// TestReRootedDeltaEvalEquivalence extends the equivalence gate over the two
// incremental-search features: delta cost evaluation (enabled whenever a
// cache is present — the engine then shares widget M/U terms across states)
// and MCTS tree re-rooting (Options.SearchTree). A warm-started, re-rooted
// regeneration with memoization on must be bit-identical — best cost and
// best difftree — to the same regeneration with memoization off, whose
// engine recomputes everything from scratch. A reused tree is mutated by the
// search that consumes it, so each follow-up gets its own tree, produced by
// deterministic (and themselves equivalent) previous runs.
func TestReRootedDeltaEvalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	base := Options{Iterations: 8, RolloutDepth: 6, Seed: 7}

	prevCached, err := Generate(context.Background(), log, base)
	if err != nil {
		t.Fatal(err)
	}
	uncachedOpt := base
	uncachedOpt.DisableMemo = true
	prevUncached, err := Generate(context.Background(), log, uncachedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if difftree.Hash(prevCached.DiffTree) != difftree.Hash(prevUncached.DiffTree) {
		t.Fatal("previous runs diverged; re-rooted comparison is meaningless")
	}

	reCached := base
	reCached.WarmStart = prevCached.DiffTree
	reCached.SearchTree = prevCached.SearchTree
	cached, err := Generate(context.Background(), log, reCached)
	if err != nil {
		t.Fatal(err)
	}
	reUncached := uncachedOpt
	reUncached.WarmStart = prevUncached.DiffTree
	reUncached.SearchTree = prevUncached.SearchTree
	uncached, err := Generate(context.Background(), log, reUncached)
	if err != nil {
		t.Fatal(err)
	}

	if !cached.Stats.ReRooted || !uncached.Stats.ReRooted {
		t.Fatalf("re-rooting did not engage: cached=%v uncached=%v",
			cached.Stats.ReRooted, uncached.Stats.ReRooted)
	}
	if got, want := cached.Cost.Total(), uncached.Cost.Total(); got != want {
		t.Errorf("delta-evaluated re-rooted cost %v != full-recompute cost %v", got, want)
	}
	if difftree.Hash(cached.DiffTree) != difftree.Hash(uncached.DiffTree) {
		t.Errorf("re-rooted best difftree diverged:\n got %s\nwant %s",
			cached.DiffTree, uncached.DiffTree)
	}
	// Note: Stats.Evals is not compared — the memoized run counts unique
	// cost evaluations (the run-local reward memo dedupes the counter),
	// the uncached reference counts every Reward call.
}

// TestParallelSharedCacheDeterministic: 8 root-parallel workers hammer one
// shared transposition cache; the result must be deterministic across runs
// and identical to the memoization-off run. Under `go test -race` (CI) this
// is the concurrency exercise for the engine/cache stack on the real search
// path.
func TestParallelSharedCacheDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	base := Options{Iterations: 6, RolloutDepth: 6, Seed: 3}

	run := func(opt Options) *Result {
		t.Helper()
		res, err := GenerateParallel(context.Background(), log, opt, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run(base)
	b := run(base)
	if a.Cost.Total() != b.Cost.Total() {
		t.Errorf("parallel search not deterministic: %v vs %v", a.Cost.Total(), b.Cost.Total())
	}
	if difftree.Hash(a.DiffTree) != difftree.Hash(b.DiffTree) {
		t.Error("parallel best difftree not deterministic")
	}
	if a.Stats.Workers != 8 {
		t.Errorf("workers = %d, want 8", a.Stats.Workers)
	}
	if a.Stats.CacheHits == 0 {
		t.Error("8 workers sharing one cache recorded no hits")
	}

	off := base
	off.DisableMemo = true
	c := run(off)
	if c.Cost.Total() != a.Cost.Total() {
		t.Errorf("memoization changed the parallel result: %v vs %v", c.Cost.Total(), a.Cost.Total())
	}
}

// TestParallelTinyCacheDeterministic: 8 workers share one deliberately tiny
// cache, so insert/evict races on the CLOCK rings happen on every search
// path; under `go test -race` (CI) this is the eviction concurrency
// exercise. The result must match the unbounded-cache run exactly —
// eviction may cost recomputes, never correctness.
func TestParallelTinyCacheDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	base := Options{Iterations: 6, RolloutDepth: 6, Seed: 3}

	big := base
	big.Cache = eval.NewCache(0)
	ref, err := GenerateParallel(context.Background(), log, big, 8)
	if err != nil {
		t.Fatal(err)
	}

	tiny := base
	tiny.Cache = eval.NewCache(96)
	got, err := GenerateParallel(context.Background(), log, tiny, 8)
	if err != nil {
		t.Fatal(err)
	}

	if got.Cost.Total() != ref.Cost.Total() {
		t.Errorf("tiny evicting cache changed the result: %v vs %v", got.Cost.Total(), ref.Cost.Total())
	}
	if difftree.Hash(got.DiffTree) != difftree.Hash(ref.DiffTree) {
		t.Error("tiny evicting cache changed the best difftree")
	}
	st := tiny.Cache.Stats()
	if st.Evictions == 0 {
		t.Error("tiny cache under 8 workers recorded no evictions")
	}
	if st.Entries > st.Capacity {
		t.Errorf("occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}
}
