package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/workload"
)

// TestTreeWorkersOneBitIdentical pins the determinism contract at the
// pipeline level: TreeWorkers 0 and 1 must produce the identical interface,
// cost, and search counters as each other — the sequential search is not
// allowed to drift when the tree-parallel machinery is present.
func TestTreeWorkersOneBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	base := Options{Iterations: 8, RolloutDepth: 6, Seed: 7}

	seq, err := Generate(context.Background(), log, base)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.TreeWorkers = 1
	got, err := Generate(context.Background(), log, one)
	if err != nil {
		t.Fatal(err)
	}

	if got.Cost.Total() != seq.Cost.Total() {
		t.Errorf("TreeWorkers=1 best cost %v, want %v", got.Cost.Total(), seq.Cost.Total())
	}
	if difftree.Hash(got.DiffTree) != difftree.Hash(seq.DiffTree) {
		t.Error("TreeWorkers=1 changed the best difftree")
	}
	if got.Stats.Iterations != seq.Stats.Iterations || got.Stats.Rollouts != seq.Stats.Rollouts ||
		got.Stats.Evals != seq.Stats.Evals || got.Stats.Expanded != seq.Stats.Expanded {
		t.Errorf("TreeWorkers=1 search counters diverged: %+v vs %+v", got.Stats, seq.Stats)
	}
	if got.Stats.TreeWorkers != 1 || seq.Stats.TreeWorkers != 1 {
		t.Errorf("sequential searches must report TreeWorkers=1, got %d and %d",
			got.Stats.TreeWorkers, seq.Stats.TreeWorkers)
	}
}

// TestTreeParallelTinyCacheStress: 8 tree workers share one search tree AND
// one deliberately tiny evicting transposition cache, so node expansion,
// leaf evaluation, and CLOCK eviction all race on every path. Under `go
// test -race` (CI) this is the shared-tree concurrency exercise on the real
// difftree domain. Whatever interleaving wins, the result must be a valid
// interface no worse than the unsearched initial state.
func TestTreeParallelTinyCacheStress(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	opt := Options{
		Iterations:   10,
		RolloutDepth: 6,
		Seed:         3,
		TreeWorkers:  8,
		Cache:        eval.NewCache(96),
	}
	res, err := Generate(context.Background(), log, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Cost.Total(), 1) {
		t.Fatalf("no valid interface found: %+v", res.Cost)
	}
	if res.Cost.Total() > res.Initial.Total() {
		t.Errorf("tree-parallel search worse than the initial state: %v vs %v",
			res.Cost.Total(), res.Initial.Total())
	}
	if res.Stats.TreeWorkers != 8 {
		t.Errorf("TreeWorkers stat = %d, want 8", res.Stats.TreeWorkers)
	}
	if res.Stats.Iterations != 10 {
		t.Errorf("completed iterations = %d, want the shared budget of 10", res.Stats.Iterations)
	}
	if st := opt.Cache.Stats(); st.Entries > st.Capacity {
		t.Errorf("cache occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}
}

// TestTreeParallelComposesWithRootParallel: WithWorkers × WithTreeWorkers —
// each root worker runs its own tree-parallel search against the one shared
// cache. A race exercise plus a sanity check on the aggregated stats.
func TestTreeParallelComposesWithRootParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	opt := Options{Iterations: 6, RolloutDepth: 6, Seed: 3, TreeWorkers: 2}
	res, err := GenerateParallel(context.Background(), log, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Cost.Total(), 1) {
		t.Fatalf("no valid interface found: %+v", res.Cost)
	}
	if res.Stats.Workers != 2 {
		t.Errorf("workers = %d, want 2", res.Stats.Workers)
	}
	if res.Stats.TreeWorkers != 2 {
		t.Errorf("tree workers = %d, want 2", res.Stats.TreeWorkers)
	}
}

// TestTreeParallelCancellation: tree-parallel generation keeps the anytime
// contract — a pre-cancelled context still yields an interface (the initial
// state) with Interrupted set.
func TestTreeParallelCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Generate(ctx, log, Options{Iterations: 1000, RolloutDepth: 6, Seed: 1, TreeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Interrupted {
		t.Error("cancelled tree-parallel generation must report Interrupted")
	}
	if res.DiffTree == nil {
		t.Error("cancelled generation must still return the best-so-far difftree")
	}
}
