package core

import (
	"context"
	"testing"

	"repro/internal/layout"
	"repro/internal/workload"
)

func TestGenerateParallelBeatsOrMatchesSingle(t *testing.T) {
	log := workload.PaperFigure1Log()
	opt := fastOpts(layout.Wide)
	single, err := Generate(context.Background(), log, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := GenerateParallel(context.Background(), log, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost.Total() > single.Cost.Total() {
		t.Errorf("parallel (%f) worse than its own single-seed member (%f)",
			par.Cost.Total(), single.Cost.Total())
	}
	// Stats aggregate across workers.
	if par.Stats.Iterations != 3*single.Stats.Iterations {
		t.Errorf("aggregated iterations = %d, want %d", par.Stats.Iterations, 3*single.Stats.Iterations)
	}
}

func TestGenerateParallelDeterministic(t *testing.T) {
	log := workload.PaperFigure1Log()
	opt := fastOpts(layout.Wide)
	a, err := GenerateParallel(context.Background(), log, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateParallel(context.Background(), log, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost.Total() != b.Cost.Total() {
		t.Error("parallel generation not deterministic per (seed, workers)")
	}
}

func TestGenerateParallelSingleWorkerDelegates(t *testing.T) {
	log := workload.PaperFigure1Log()
	opt := fastOpts(layout.Wide)
	a, err := GenerateParallel(context.Background(), log, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), log, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost.Total() != b.Cost.Total() {
		t.Error("workers=1 must match Generate")
	}
}

func TestGenerateParallelErrors(t *testing.T) {
	if _, err := GenerateParallel(context.Background(), nil, Options{}, 2); err == nil {
		t.Error("empty log must error")
	}
	// workers <= 0 defaults to GOMAXPROCS and still works.
	log := workload.PaperFigure1Log()
	opt := fastOpts(layout.Wide)
	opt.Iterations = 2
	if _, err := GenerateParallel(context.Background(), log, opt, 0); err != nil {
		t.Fatal(err)
	}
}
