package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/rules"
	"repro/internal/workload"
)

func fastOpts(screen layout.Screen) Options {
	return Options{
		Screen:        screen,
		Iterations:    12,
		RolloutDepth:  8,
		RewardSamples: 3,
		EnumLimit:     3000,
		Seed:          1,
	}
}

func TestGenerateFigure1(t *testing.T) {
	log := workload.PaperFigure1Log()
	res, err := Generate(context.Background(), log, fastOpts(layout.Wide))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cost.Valid {
		t.Fatalf("generated interface invalid: %s", res.Cost.Reason)
	}
	if res.UI == nil {
		t.Fatal("no UI")
	}
	if !difftree.ExpressibleAll(res.DiffTree, log) {
		t.Fatal("result difftree lost input queries")
	}
	// Search must not end worse than the initial state.
	if res.Cost.Total() > res.Initial.Total() {
		t.Errorf("search regressed: %f > %f", res.Cost.Total(), res.Initial.Total())
	}
	if res.Stats.Iterations != 12 || res.Stats.Evals == 0 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
	if res.Describe() == "" {
		t.Error("Describe empty")
	}
}

func TestGenerateImprovesOnInitialSDSS(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.SDSSLog()
	opt := fastOpts(layout.Wide)
	opt.Iterations = 15
	res, err := Generate(context.Background(), log, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cost.Valid {
		t.Fatalf("invalid: %s", res.Cost.Reason)
	}
	// The factored interface should beat the initial one-dropdown-of-queries
	// interface, whose U cost is huge (every transition re-picks a query).
	if res.Cost.Total() >= res.Initial.Total() {
		t.Errorf("no improvement: best=%f initial=%f", res.Cost.Total(), res.Initial.Total())
	}
	if !difftree.ExpressibleAll(res.DiffTree, log) {
		t.Fatal("result lost queries")
	}
}

func TestGenerateEmptyLog(t *testing.T) {
	if _, err := Generate(context.Background(), nil, Options{}); err == nil {
		t.Fatal("empty log must error")
	}
}

func TestGenerateSingleQuery(t *testing.T) {
	log := workload.SDSSSubset(1, 1)
	res, err := Generate(context.Background(), log, fastOpts(layout.Wide))
	if err != nil {
		t.Fatal(err)
	}
	// One distinct query: a static interface with no widgets and zero cost.
	if res.UI != nil {
		t.Error("single query should need no widgets")
	}
	if res.Cost.Total() != 0 {
		t.Errorf("static cost = %f", res.Cost.Total())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Screen != layout.Wide || o.RolloutDepth != 16 || o.RewardSamples != 5 ||
		o.ExplorationC != math.Sqrt2 || o.EnumLimit != 20000 || o.Seed != 1 ||
		o.NavUnit != 0.3 || len(o.Rules) == 0 || o.Iterations != 60 {
		t.Errorf("defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Iterations: 3, RolloutDepth: 7, Seed: 42}.withDefaults()
	if o2.Iterations != 3 || o2.RolloutDepth != 7 || o2.Seed != 42 {
		t.Error("explicit options clobbered")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	log := workload.PaperFigure1Log()
	a, err := Generate(context.Background(), log, fastOpts(layout.Wide))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), log, fastOpts(layout.Wide))
	if err != nil {
		t.Fatal(err)
	}
	if !difftree.Equal(a.DiffTree, b.DiffTree) {
		t.Error("same seed produced different difftrees")
	}
	if a.Cost.Total() != b.Cost.Total() {
		t.Error("same seed produced different costs")
	}
	opt := fastOpts(layout.Wide)
	opt.Seed = 777
	c, err := Generate(context.Background(), log, opt)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seeds may or may not differ; just must not crash
}

func TestStateCost(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(1))
	c := StateCost(init, log, model, 3, rng)
	if math.IsInf(c, 1) || c <= 0 {
		t.Errorf("initial state cost = %f", c)
	}
	// More samples never increase the best-of-k cost in expectation; at
	// minimum the function stays finite and deterministic under one rng.
	rng2 := rand.New(rand.NewSource(1))
	c2 := StateCost(init, log, model, 3, rng2)
	if c != c2 {
		t.Error("StateCost not deterministic under fixed rng")
	}
}

func TestBestInterfaceExhaustiveVsSampled(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	_, bdFull, complete := BestInterface(init, log, model, 100000, 1)
	if !complete {
		t.Fatal("small space should enumerate exhaustively")
	}
	_, bdCapped, capped := BestInterface(init, log, model, 2, 1)
	if capped {
		t.Fatal("cap of 2 cannot be exhaustive for a multi-decision plan")
	}
	if bdFull.Total() > bdCapped.Total() {
		t.Error("exhaustive enumeration cannot be worse than sampling")
	}
}

func TestFanoutSDSS(t *testing.T) {
	log := workload.SDSSLog()
	init, _ := difftree.Initial(log)
	fan := Fanout(init, log, rules.All())
	if fan < 10 {
		t.Errorf("SDSS initial fanout = %d, expected >= 10", fan)
	}
	if fan > 200 {
		t.Errorf("SDSS initial fanout = %d, out of the paper's regime", fan)
	}
}

func TestRandomWalkProducesValidState(t *testing.T) {
	log := workload.PaperFigure1Log()
	d, err := RandomWalk(log, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := difftree.Validate(d); err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Fatal("random walk lost queries")
	}
	if _, err := RandomWalk(nil, 3, 1); err == nil {
		t.Error("empty log must error")
	}
	// Zero steps returns the initial state.
	d0, _ := RandomWalk(log, 0, 1)
	init, _ := difftree.Initial(log)
	if !difftree.Equal(d0, init) {
		t.Error("zero-step walk should be the initial state")
	}
}

// TestNarrowScreenChangesInterface is the Figure 6(a)-vs-(b) mechanism: the
// same log under a narrow screen must still produce a valid interface, and
// the wide screen's interface is not required to fit the narrow screen.
func TestNarrowScreenChangesInterface(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.SDSSLog()
	wide, err := Generate(context.Background(), log, fastOpts(layout.Wide))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Generate(context.Background(), log, fastOpts(layout.Narrow))
	if err != nil {
		t.Fatal(err)
	}
	if !wide.Cost.Valid || !narrow.Cost.Valid {
		t.Fatalf("wide valid=%v narrow valid=%v (%s / %s)",
			wide.Cost.Valid, narrow.Cost.Valid, wide.Cost.Reason, narrow.Cost.Reason)
	}
	nb := narrow.Cost.Bounds
	if nb.W > layout.Narrow.W {
		t.Errorf("narrow interface too wide: %v", nb)
	}
	// The narrow screen is a strictly harder constraint: its best cost is at
	// least the wide screen's best cost for the same difftree... which we
	// can't assert directly across different search runs, so assert the
	// weaker invariant that both searches found finite-cost interfaces.
	if math.IsInf(wide.Cost.Total(), 1) || math.IsInf(narrow.Cost.Total(), 1) {
		t.Error("finite costs expected")
	}
}

func TestRewardMonotoneInCost(t *testing.T) {
	log := workload.PaperFigure1Log()
	model := cost.Default(layout.Wide)
	opt := Options{}.withDefaults()
	init, _ := difftree.Initial(log)
	d := newDomain(log, opt, newEngine(log, init, model, opt))
	s := state{d: init, h: difftree.Hash(init)}
	r1 := d.Reward(s)
	if r1 <= 0 || r1 > 1 {
		t.Errorf("reward out of range: %f", r1)
	}
	// Cached: same value on repeat call.
	if d.Reward(s) != r1 {
		t.Error("reward cache broken")
	}
}
