package core

import (
	"context"
	"testing"

	"repro/internal/difftree"
	"repro/internal/workload"
)

// TestWarmStartSeedsSearch: re-running a search warm-started from its own
// best state must report WarmStarted and never regress past the warm
// state's quality (the warm root is always a candidate incumbent).
func TestWarmStartSeedsSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	base := Options{Iterations: 8, RolloutDepth: 6, Seed: 7}

	cold, err := Generate(context.Background(), log, base)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.WarmStarted {
		t.Error("cold run reported WarmStarted")
	}

	warmOpt := base
	warmOpt.WarmStart = cold.DiffTree
	warm, err := Generate(context.Background(), log, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.WarmStarted {
		t.Fatal("legal warm state was not used")
	}
	if warm.Cost.Total() > cold.Cost.Total() {
		t.Errorf("warm start regressed: %v > %v", warm.Cost.Total(), cold.Cost.Total())
	}
}

// TestWarmStartIllegalFallsBack: a warm state that cannot express the log
// must be ignored — the run is bit-identical to a cold one.
func TestWarmStartIllegalFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	base := Options{Iterations: 6, RolloutDepth: 6, Seed: 5}

	cold, err := Generate(context.Background(), log, base)
	if err != nil {
		t.Fatal(err)
	}

	// An interface generated for a different log does not express this one.
	other, err := difftree.Initial(workload.PaperFigure1Log()[:1])
	if err != nil {
		t.Fatal(err)
	}
	warmOpt := base
	warmOpt.WarmStart = other
	got, err := Generate(context.Background(), log, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.WarmStarted {
		t.Error("illegal warm state was used")
	}
	if got.Cost.Total() != cold.Cost.Total() {
		t.Errorf("fallback run diverged from cold: %v vs %v", got.Cost.Total(), cold.Cost.Total())
	}
	if difftree.Hash(got.DiffTree) != difftree.Hash(cold.DiffTree) {
		t.Error("fallback best difftree diverged from cold run")
	}
}

// TestWarmStartIncrementalAppend models the serving workload: generate over
// a log prefix, append queries, and regenerate warm-started from the
// previous best. The warm tree is accepted whenever it still expresses the
// extended log; either way the result must express every query.
func TestWarmStartIncrementalAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	if len(log) < 3 {
		t.Skip("log too small to split")
	}
	base := Options{Iterations: 8, RolloutDepth: 6, Seed: 7}

	prev, err := Generate(context.Background(), log[:len(log)-1], base)
	if err != nil {
		t.Fatal(err)
	}

	warmOpt := base
	warmOpt.WarmStart = prev.DiffTree
	full, err := Generate(context.Background(), log, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range log {
		if !difftree.Expressible(full.DiffTree, q) {
			t.Errorf("query %d not expressible after incremental regeneration", i)
		}
	}
	// Determinism: the same warm-started regeneration twice is identical.
	again, err := Generate(context.Background(), log, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if difftree.Hash(again.DiffTree) != difftree.Hash(full.DiffTree) {
		t.Error("warm-started regeneration is not deterministic")
	}
	if again.Stats.WarmStarted != full.Stats.WarmStarted {
		t.Error("WarmStarted flapped across identical runs")
	}
}

// TestSearchTreeReRootOnAppend is the serving-path regression test for tree
// re-use: a warm-started append that also passes the previous search's tree
// (Options.SearchTree) must re-root on it and spend fewer cost evaluations
// than the identical append without the tree, at an equal final cost.
func TestSearchTreeReRootOnAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.PaperFigure1Log()
	if len(log) < 3 {
		t.Skip("log too small to split")
	}
	base := Options{Iterations: 8, RolloutDepth: 6, Seed: 7}

	// A pure re-generation (the session path's empty append) keeps the warm
	// state legal by construction, so the runs differ only in tree reuse.
	prev, err := Generate(context.Background(), log, base)
	if err != nil {
		t.Fatal(err)
	}
	if prev.SearchTree == nil {
		t.Fatal("sequential MCTS generation persisted no search tree")
	}

	warmOpt := base
	warmOpt.WarmStart = prev.DiffTree
	scratch, err := Generate(context.Background(), log, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if scratch.Stats.ReRooted {
		t.Fatal("append without Options.SearchTree claims re-rooting")
	}

	reOpt := warmOpt
	reOpt.SearchTree = prev.SearchTree
	rerooted, err := Generate(context.Background(), log, reOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !rerooted.Stats.WarmStarted {
		t.Fatal("warm state not reused — the re-root premise is gone")
	}
	if !rerooted.Stats.ReRooted {
		t.Fatal("previous tree contains the warm root but the append did not re-root")
	}
	if rerooted.Stats.Evals >= scratch.Stats.Evals {
		t.Errorf("re-rooted append used %d evals, from-scratch append %d; tree reuse must be cheaper",
			rerooted.Stats.Evals, scratch.Stats.Evals)
	}
	if rerooted.Cost.Total() != scratch.Cost.Total() {
		t.Errorf("re-rooted append cost %v != from-scratch append cost %v",
			rerooted.Cost.Total(), scratch.Cost.Total())
	}
	for i, q := range log {
		if !difftree.Expressible(rerooted.DiffTree, q) {
			t.Errorf("query %d not expressible after re-rooted regeneration", i)
		}
	}
	// The re-rooted run persists a tree of its own for the next append.
	if rerooted.SearchTree == nil {
		t.Error("re-rooted generation persisted no tree for the next append")
	}
}
