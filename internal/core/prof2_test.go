package core

import (
	"context"
	"testing"

	"repro/internal/layout"
	"repro/internal/workload"
)

// BenchmarkProf2 is the end-to-end profiling benchmark used while optimizing
// the search (see the cached-legality / kind-directed-sampling notes in
// core.go): one 5-iteration generation over the full SDSS log.
func BenchmarkProf2(b *testing.B) {
	log := workload.SDSSLog()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(context.Background(), log, Options{Screen: layout.Wide, Iterations: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
