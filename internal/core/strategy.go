package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/mcts"
	"repro/internal/search"
)

// Strategy is a pluggable search procedure over the difftree space. MCTS
// (the paper's algorithm) and the comparator searchers from internal/search
// (beam, greedy, random, exhaustive) all implement it, so callers pick the
// exploration policy per workload — cheap strategies for huge logs,
// exhaustive enumeration for tiny ones — without leaving the one pipeline.
//
// The interface is sealed (the search method is unexported): new strategies
// are added here, next to the engine they drive.
type Strategy interface {
	// Name identifies the strategy in stats and progress snapshots.
	Name() string
	search(ctx context.Context, p *problem) searchOutcome
}

// searchOutcome is what a strategy hands back to Generate: the best
// difftree plus the search-phase half of the final Stats, and — for
// sequential MCTS — the search tree for warm reuse.
type searchOutcome struct {
	best  *difftree.Node
	stats Stats
	tree  *mcts.Tree
}

// Progress is an anytime snapshot of a running search, delivered through
// Options.Progress. BestCost is monotone non-increasing and the counters
// monotone non-decreasing within one worker.
type Progress struct {
	Strategy   string        // strategy name ("mcts", "beam", ...)
	Worker     int           // 0-based worker index under root parallelization
	Iterations int           // MCTS iterations; objective evaluations otherwise
	States     int           // states explored
	Evals      int           // cost evaluations
	BestCost   float64       // best interface cost seen so far (+Inf if none)
	Elapsed    time.Duration // since the search started
}

// TrajectoryPoint records one best-so-far improvement: after Evals cost
// evaluations and Elapsed wall clock, the best known cost dropped to Cost.
type TrajectoryPoint struct {
	Evals   int
	Elapsed time.Duration
	Cost    float64
}

// progressStride throttles heartbeat snapshots from non-MCTS strategies
// (improvements always emit immediately).
const progressStride = 25

// problem carries everything a Strategy needs: the parsed log, the initial
// state, the cost model, resolved options, and the progress/trajectory
// plumbing. One problem serves exactly one strategy run on one goroutine.
type problem struct {
	log    []*ast.Node
	init   *difftree.Node
	root   *difftree.Node // search start state: init, or a legal WarmStart
	model  cost.Model
	opt    Options
	eng    *eval.Engine
	worker int
	start  time.Time

	iterations int
	states     int
	evals      int
	bestCost   float64
	traj       []TrajectoryPoint
}

func newProblem(log []*ast.Node, init *difftree.Node, model cost.Model, opt Options, eng *eval.Engine, worker int) *problem {
	return &problem{
		log: log, init: init, root: init, model: model, opt: opt, eng: eng, worker: worker,
		//mctsvet:allow wallclock -- start anchors Elapsed observability in Stats/Progress; it never influences the search result
		start:    time.Now(),
		bestCost: math.Inf(1),
	}
}

// noteCost records one cost evaluation; improvements extend the trajectory
// and emit a progress snapshot immediately.
func (p *problem) noteCost(c float64) {
	p.evals++
	if c < p.bestCost {
		p.bestCost = c
		//mctsvet:allow wallclock -- trajectory Elapsed is observability; cost and move choices never read it
		p.traj = append(p.traj, TrajectoryPoint{Evals: p.evals, Elapsed: time.Since(p.start), Cost: c})
		p.emit()
	}
}

// emit delivers a snapshot to Options.Progress, if set.
func (p *problem) emit() {
	if p.opt.Progress == nil {
		return
	}
	p.opt.Progress(Progress{
		Strategy:   p.opt.Strategy.Name(),
		Worker:     p.worker,
		Iterations: p.iterations,
		States:     p.states,
		Evals:      p.evals,
		BestCost:   p.bestCost,
		//mctsvet:allow wallclock -- progress-snapshot Elapsed is observability; it never influences the search result
		Elapsed: time.Since(p.start),
	})
}

// objective adapts the evaluation engine into a counted search.Objective
// wired into the progress plumbing; shared by every non-MCTS strategy. The
// run-local memo dedupes the counter bookkeeping (and, with memoization
// off, disappears so every visit re-scores — the reference baseline).
func (p *problem) objective() search.Objective {
	var memo map[uint64]float64
	if p.eng.Enabled() {
		memo = make(map[uint64]float64)
	}
	return func(d *difftree.Node) float64 {
		var h uint64
		if memo != nil {
			h = difftree.Hash(d)
			if c, ok := memo[h]; ok {
				return c
			}
		}
		c := p.eng.StateCost(d)
		if memo != nil {
			memo[h] = c
		}
		p.states++
		p.iterations = p.evals + 1 // noteCost emits; keep Iterations == Evals
		p.noteCost(c)
		if p.evals%progressStride == 0 {
			p.emit()
		}
		return c
	}
}

// space is the shared comparator-searcher state space, with the same size
// cap the MCTS domain prunes with and the same memoized move sets. The cap
// always derives from the initial state, not the search root: a warm start
// must not inflate the reachable space.
func (p *problem) space() search.Space {
	sp := search.SpaceFor(p.init, p.log, p.opt.Rules)
	sp.Eng = p.eng
	return sp
}

// steps resolves the per-strategy step budget: Options.Iterations, or
// effectively unbounded when only a wall-clock budget was given (the
// context deadline then ends the search).
func (p *problem) steps() int {
	if p.opt.Iterations > 0 {
		return p.opt.Iterations
	}
	return math.MaxInt32
}

// searchCtx applies Options.TimeBudget as a context deadline for the
// strategies that have no native wall-clock budget.
func searchCtx(ctx context.Context, opt Options) (context.Context, context.CancelFunc) {
	if opt.TimeBudget > 0 {
		return context.WithTimeout(ctx, opt.TimeBudget)
	}
	return ctx, func() {}
}

// outcomeFromSearch converts a comparator-searcher result into the common
// outcome shape. The counters come from the problem's objective wrapper —
// unique (cache-miss) evaluations, the same numbers Progress snapshots and
// Trajectory points report — not from search.Result, whose Evals also
// counts cache-hit objective calls. Iterations mirrors Evals for these
// strategies. caller is the context handed to the strategy *before*
// searchCtx layered the TimeBudget deadline on: stopping at one's own
// wall-clock budget is a normal completion (matching MCTS, which checks
// TimeBudget natively), so Interrupted is reported only when the caller's
// context itself ended.
func outcomeFromSearch(name string, r search.Result, p *problem, caller context.Context) searchOutcome {
	return searchOutcome{
		best: r.Best,
		stats: Stats{
			Strategy:    name,
			Iterations:  p.evals,
			Expanded:    p.states,
			Evals:       p.evals,
			Interrupted: r.Interrupted && caller.Err() != nil,
		},
	}
}

// --- MCTS (the paper's search) ----------------------------------------------

type mctsStrategy struct{}

// StrategyMCTS returns the paper's Monte Carlo Tree Search, the default.
func StrategyMCTS() Strategy { return mctsStrategy{} }

func (mctsStrategy) Name() string { return "mcts" }

func (mctsStrategy) search(ctx context.Context, p *problem) searchOutcome {
	dom := newDomain(p.log, p.opt, p.eng)
	dom.onCost = p.noteCost
	progress := func(r mcts.Result) {
		p.iterations = r.Iterations
		p.states = r.Expanded
		p.emit()
	}
	tw := p.opt.TreeWorkers
	if tw < 1 {
		tw = 1
	}
	if tw > 1 {
		// Tree-parallel workers call the domain — and through it the
		// problem's trajectory bookkeeping — concurrently: switch the domain
		// memos into their guarded mode and serialize every touch of the
		// problem's mutable state behind one mutex. (The evaluation engine
		// underneath is already concurrency-safe.)
		dom.concurrent = true
		var mu sync.Mutex
		dom.onCost = func(c float64) {
			mu.Lock()
			defer mu.Unlock()
			p.noteCost(c)
		}
		inner := progress
		progress = func(r mcts.Result) {
			mu.Lock()
			defer mu.Unlock()
			inner(r)
		}
	}
	var reuse *mcts.Tree
	if tw == 1 {
		reuse = p.opt.SearchTree // re-rooting is a sequential-search feature
	}
	res := mcts.Search(ctx, dom, state{d: p.root, h: difftree.Hash(p.root)}, mcts.Config{
		C:                p.opt.ExplorationC,
		MaxRolloutDepth:  p.opt.RolloutDepth,
		Iterations:       p.opt.Iterations,
		TimeBudget:       p.opt.TimeBudget,
		Seed:             p.opt.Seed,
		TreeWorkers:      tw,
		EvaluateChildren: true,
		Reuse:            reuse,
		Progress:         progress,
	})
	return searchOutcome{
		best: res.Best.(state).d,
		tree: res.Tree,
		stats: Stats{
			Strategy:    "mcts",
			Iterations:  res.Iterations,
			Expanded:    res.Expanded,
			Rollouts:    res.Rollouts,
			Evals:       p.evals, // unique cost evaluations, the scale Progress/Trajectory use
			BestReward:  res.BestReward,
			Interrupted: res.Interrupted,
			ReRooted:    res.ReRooted,
			TreeWorkers: tw,
		},
	}
}

// --- Comparator searchers ---------------------------------------------------

type beamStrategy struct{ width int }

// StrategyBeam returns beam search with the given frontier width
// (DefaultBeamWidth when width <= 0). Options.Iterations bounds the
// generations.
func StrategyBeam(width int) Strategy {
	if width <= 0 {
		width = DefaultBeamWidth
	}
	return beamStrategy{width}
}

func (beamStrategy) Name() string { return "beam" }

func (s beamStrategy) search(ctx context.Context, p *problem) searchOutcome {
	bctx, cancel := searchCtx(ctx, p.opt)
	defer cancel()
	return outcomeFromSearch("beam", search.Beam(bctx, p.root, p.space(), p.objective(), s.width, p.steps()), p, ctx)
}

type greedyStrategy struct{}

// StrategyGreedy returns greedy hill-climbing: the cheapest neighbor is
// taken until a local optimum (or the step/time budget).
func StrategyGreedy() Strategy { return greedyStrategy{} }

func (greedyStrategy) Name() string { return "greedy" }

func (greedyStrategy) search(ctx context.Context, p *problem) searchOutcome {
	gctx, cancel := searchCtx(ctx, p.opt)
	defer cancel()
	return outcomeFromSearch("greedy", search.Greedy(gctx, p.root, p.space(), p.objective(), p.steps()), p, ctx)
}

type randomStrategy struct{ walks int }

// StrategyRandom returns independent uniform random walks
// (DefaultRandomWalks when walks <= 0); Options.RolloutDepth bounds each
// walk's length.
func StrategyRandom(walks int) Strategy {
	if walks <= 0 {
		walks = DefaultRandomWalks
	}
	return randomStrategy{walks}
}

func (randomStrategy) Name() string { return "random" }

func (s randomStrategy) search(ctx context.Context, p *problem) searchOutcome {
	rctx, cancel := searchCtx(ctx, p.opt)
	defer cancel()
	return outcomeFromSearch("random",
		search.Random(rctx, p.root, p.space(), p.objective(), s.walks, p.opt.RolloutDepth, p.opt.Seed), p, ctx)
}

type exhaustiveStrategy struct{ maxStates int }

// StrategyExhaustive returns breadth-first enumeration of the whole space,
// capped at maxStates (DefaultExhaustiveCap when <= 0); feasible only for
// tiny logs, where it calibrates the optimum.
func StrategyExhaustive(maxStates int) Strategy {
	if maxStates <= 0 {
		maxStates = DefaultExhaustiveCap
	}
	return exhaustiveStrategy{maxStates}
}

func (exhaustiveStrategy) Name() string { return "exhaustive" }

func (s exhaustiveStrategy) search(ctx context.Context, p *problem) searchOutcome {
	ectx, cancel := searchCtx(ctx, p.opt)
	defer cancel()
	res, complete := search.Exhaustive(ectx, p.root, p.space(), p.objective(), s.maxStates)
	out := outcomeFromSearch("exhaustive", res, p, ctx)
	// A warm-started sweep covers only states reachable from the warm root
	// (moves are not invertible), so it must not claim the whole-space
	// optimality a cold sweep calibrates.
	out.stats.SpaceExhausted = complete && p.root == p.init
	return out
}

// StrategyByName resolves a strategy spec of the form "name" or
// "name:param" — "mcts", "beam[:width]", "greedy", "random[:walks]",
// "exhaustive[:maxStates]" — as used by command-line flags.
func StrategyByName(spec string) (Strategy, error) {
	name, param := spec, 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		v, err := strconv.Atoi(spec[i+1:])
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("core: bad strategy parameter in %q", spec)
		}
		param = v
	}
	switch name {
	case "mcts":
		if param != 0 {
			return nil, fmt.Errorf("core: strategy %q takes no parameter", name)
		}
		return StrategyMCTS(), nil
	case "beam":
		return StrategyBeam(param), nil
	case "greedy":
		if param != 0 {
			return nil, fmt.Errorf("core: strategy %q takes no parameter", name)
		}
		return StrategyGreedy(), nil
	case "random":
		return StrategyRandom(param), nil
	case "exhaustive":
		return StrategyExhaustive(param), nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q (want mcts, beam, greedy, random, or exhaustive)", name)
	}
}
