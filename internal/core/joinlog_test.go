package core

import (
	"context"
	"testing"

	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/workload"
)

// TestJoinLogTinyCacheDeterministic: the evicting-cache determinism contract
// extends to the multi-table grammar. A deliberately tiny shared cache over
// a join/union/subquery log must return exactly the unbounded-cache result —
// eviction may cost recomputes, never correctness — and the new node kinds
// must flow through the memoized legality/cost aspects unchanged.
func TestJoinLogTinyCacheDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("search test")
	}
	log := workload.SDSSJoinLog()[:5] // joins with varying partner/kind
	base := Options{Iterations: 5, RolloutDepth: 5, Seed: 3}

	big := base
	big.Cache = eval.NewCache(0)
	ref, err := Generate(context.Background(), log, big)
	if err != nil {
		t.Fatal(err)
	}

	tiny := base
	tiny.Cache = eval.NewCache(128)
	got, err := Generate(context.Background(), log, tiny)
	if err != nil {
		t.Fatal(err)
	}

	if got.Cost.Total() != ref.Cost.Total() {
		t.Errorf("tiny evicting cache changed the join-log result: %v vs %v",
			got.Cost.Total(), ref.Cost.Total())
	}
	if difftree.Hash(got.DiffTree) != difftree.Hash(ref.DiffTree) {
		t.Error("tiny evicting cache changed the best join-log difftree")
	}
	st := tiny.Cache.Stats()
	if st.Entries > st.Capacity {
		t.Errorf("occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}

	off := base
	off.DisableMemo = true
	unmemo, err := Generate(context.Background(), log, off)
	if err != nil {
		t.Fatal(err)
	}
	if unmemo.Cost.Total() != ref.Cost.Total() {
		t.Errorf("memoization changed the join-log result: %v vs %v",
			unmemo.Cost.Total(), ref.Cost.Total())
	}
}
