// Package core orchestrates the paper's end-to-end pipeline: parse the query
// log into ASTs, build the initial difftree, search the space of difftrees
// with MCTS (transformation rules as moves, best-of-k random widget
// assignments as the reward), and finally enumerate widget trees for the
// best difftree to extract the lowest-cost interface.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/mcts"
	"repro/internal/rules"
)

// Options tunes interface generation; the zero value is filled with the
// paper's defaults.
type Options struct {
	// Screen is the output screen constraint (default layout.Wide).
	Screen layout.Screen
	// Iterations bounds MCTS iterations (default 60; ignored when
	// TimeBudget is set and Iterations == 0).
	Iterations int
	// TimeBudget bounds wall-clock search time (the paper runs ~1 minute).
	TimeBudget time.Duration
	// RolloutDepth bounds random walks. The paper allows up to 200 steps;
	// the default here is 16, which the rollout-depth ablation (EXPERIMENTS
	// A2) shows already saturates quality on the paper's logs at a fraction
	// of the cost. Set 200 to mirror the paper exactly.
	RolloutDepth int
	// RewardSamples is k, the number of random widget assignments scored per
	// state during search (default 5).
	RewardSamples int
	// ExplorationC is the UCT exploration constant (default √2).
	ExplorationC float64
	// EnumLimit caps the final widget-tree enumeration (default 20000).
	EnumLimit int
	// Seed makes generation deterministic (default 1).
	Seed int64
	// NavUnit is the Steiner-edge navigation cost (default 0.3).
	NavUnit float64
	// Rules is the transformation rule set (default rules.All()).
	Rules []rules.Rule
}

func (o Options) withDefaults() Options {
	if o.Screen == (layout.Screen{}) {
		o.Screen = layout.Wide
	}
	if o.Iterations <= 0 && o.TimeBudget <= 0 {
		o.Iterations = 60
	}
	if o.RolloutDepth <= 0 {
		o.RolloutDepth = 16
	}
	if o.RewardSamples <= 0 {
		o.RewardSamples = 5
	}
	if o.ExplorationC == 0 {
		o.ExplorationC = math.Sqrt2
	}
	if o.EnumLimit <= 0 {
		o.EnumLimit = 20000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.NavUnit == 0 {
		o.NavUnit = 0.3
	}
	if o.Rules == nil {
		o.Rules = rules.All()
	}
	return o
}

// Result is a generated interface plus search diagnostics.
type Result struct {
	DiffTree *difftree.Node // best difftree found
	UI       *layout.Node   // lowest-cost widget tree for it
	Cost     cost.Breakdown // its cost breakdown
	Initial  cost.Breakdown // cost of the initial state's best interface
	Stats    Stats          // search statistics
	Log      []*ast.Node    // the input log (parsed)
}

// Stats summarizes the search.
type Stats struct {
	Iterations   int
	Expanded     int
	Rollouts     int
	Evals        int
	BestReward   float64
	InitialFan   int // fanout (legal moves) of the initial state
	EnumComplete bool
	Elapsed      time.Duration
}

// Generate runs the full pipeline on parsed query ASTs.
func Generate(log []*ast.Node, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(log) == 0 {
		return nil, errors.New("core: empty query log")
	}
	init, err := difftree.Initial(log)
	if err != nil {
		return nil, err
	}

	model := cost.Model{NavUnit: opt.NavUnit, Screen: opt.Screen}
	dom := newDomain(log, model, opt)
	start := time.Now()

	res := mcts.Search(dom, state{d: init, h: difftree.Hash(init)}, mcts.Config{
		C:                opt.ExplorationC,
		MaxRolloutDepth:  opt.RolloutDepth,
		Iterations:       opt.Iterations,
		TimeBudget:       opt.TimeBudget,
		Seed:             opt.Seed,
		EvaluateChildren: true,
	})
	best := res.Best.(state).d

	// Final extraction: enumerate all widget trees for the best difftree
	// (sampling beyond the cap) and keep the argmin.
	ui, bd, complete := BestInterface(best, log, model, opt.EnumLimit, opt.Seed)

	initUI, initBD, _ := BestInterface(init, log, model, opt.EnumLimit, opt.Seed)
	_ = initUI

	out := &Result{
		DiffTree: best,
		UI:       ui,
		Cost:     bd,
		Initial:  initBD,
		Log:      log,
		Stats: Stats{
			Iterations:   res.Iterations,
			Expanded:     res.Expanded,
			Rollouts:     res.Rollouts,
			Evals:        res.Evals,
			BestReward:   res.BestReward,
			InitialFan:   len(rules.Moves(init, log, opt.Rules)),
			EnumComplete: complete,
			Elapsed:      time.Since(start),
		},
	}
	return out, nil
}

// BestInterface enumerates (or samples past the cap) the widget trees of a
// difftree and returns the cheapest, with its breakdown and whether the
// enumeration was exhaustive.
func BestInterface(d *difftree.Node, log []*ast.Node, model cost.Model, enumLimit int, seed int64) (*layout.Node, cost.Breakdown, bool) {
	plan, err := assign.BuildPlan(d)
	if err != nil {
		return nil, cost.Breakdown{Valid: false, Reason: err.Error()}, true
	}
	ev := model.NewEvaluator(d, log)
	if !d.HasChoice() {
		return nil, ev.Evaluate(nil), true
	}

	var bestUI *layout.Node
	bestBD := cost.Breakdown{Valid: false, Reason: "no assignment evaluated"}
	bestC := math.Inf(1)
	consider := func(ui *layout.Node) {
		bd := ev.Evaluate(ui)
		if c := bd.Total(); c < bestC {
			bestC, bestBD, bestUI = c, bd, ui
		}
	}

	complete := plan.Enumerate(enumLimit, func(ui *layout.Node) bool {
		consider(ui)
		return true
	})
	if !complete {
		// The space exceeds the cap: top up with random samples.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < enumLimit/2; i++ {
			consider(plan.Random(rng))
		}
	}
	if bestUI == nil {
		return nil, cost.Breakdown{Valid: false, Reason: "no widget tree found"}, complete
	}
	return bestUI, bestBD, complete
}

// StateCost is the paper's reward primitive: the best cost among k random
// widget assignments (plus the cost-greedy first assignment) for a difftree.
func StateCost(d *difftree.Node, log []*ast.Node, model cost.Model, k int, rng *rand.Rand) float64 {
	plan, err := assign.BuildPlan(d)
	if err != nil {
		return math.Inf(1)
	}
	ev := model.NewEvaluator(d, log)
	if !d.HasChoice() {
		return ev.Evaluate(nil).Total()
	}
	best := ev.Evaluate(plan.First()).Total()
	for i := 0; i < k; i++ {
		if c := ev.Evaluate(plan.Random(rng)).Total(); c < best {
			best = c
		}
	}
	return best
}

// state adapts a difftree to mcts.State.
type state struct {
	d *difftree.Node
	h uint64
}

// Hash implements mcts.State.
func (s state) Hash() uint64 { return s.h }

// domain adapts the difftree space to mcts.Domain + mcts.Sampler.
type domain struct {
	log     []*ast.Node
	model   cost.Model
	k       int
	ruleSet []rules.Rule
	rng     *rand.Rand // reward sampling; separate stream from the search's
	scale   float64    // reward normalization: the initial state's cost
	cache   map[uint64]float64
	legal   map[uint64]bool // candidate-state legality, keyed by tree hash
	sizeCap int             // prune states larger than this (search pruning,
	// listed by the paper as a needed optimization: expansion rules can
	// otherwise balloon trees during long rollouts)
	neighbors map[uint64][]mcts.State // full neighbor lists, keyed by state hash
}

// ruleKinds maps each rule to the difftree node kinds its pattern can match;
// the rollout sampler only draws (rule, node) pairs from this table, which
// raises its hit rate enough to avoid falling back to full enumeration.
var ruleKinds = map[string]map[difftree.Kind]bool{
	"Any2All":    {difftree.Any: true},
	"All2Any":    {difftree.All: true},
	"Lift":       {difftree.Any: true},
	"Unlift":     {difftree.All: true},
	"MultiMerge": {difftree.Any: true, difftree.All: true},
	"Optional":   {difftree.Any: true},
	"Unoptional": {difftree.Opt: true},
	"Unwrap":     {difftree.Any: true},
	"Flatten":    {difftree.Any: true},
	"DedupAny":   {difftree.Any: true},
	"Wrap":       {difftree.All: true},
}

func newDomain(log []*ast.Node, model cost.Model, opt Options) *domain {
	d := &domain{
		log:       log,
		model:     model,
		k:         opt.RewardSamples,
		ruleSet:   opt.Rules,
		rng:       rand.New(rand.NewSource(opt.Seed + 0x9e37)),
		cache:     make(map[uint64]float64),
		legal:     make(map[uint64]bool),
		neighbors: make(map[uint64][]mcts.State),
	}
	init, err := difftree.Initial(log)
	if err == nil {
		c := StateCost(init, log, model, opt.RewardSamples, d.rng)
		if !math.IsInf(c, 1) && c > 0 {
			d.scale = c
		}
		d.sizeCap = 4 * init.Size()
	}
	if d.scale <= 0 {
		d.scale = 10
	}
	if d.sizeCap < 64 {
		d.sizeCap = 64
	}
	return d
}

// isLegal checks (with caching) whether a candidate rewrite preserves the
// invariant that every input query stays expressible. States recur heavily
// across rollouts, so the cache pays for itself quickly.
func (d *domain) isLegal(next *difftree.Node, h uint64) bool {
	if v, ok := d.legal[h]; ok {
		return v
	}
	v := next.Size() <= d.sizeCap && rules.LegalState(next, d.log)
	d.legal[h] = v
	return v
}

// Neighbors implements mcts.Domain. Results are cached per state hash:
// rollouts and expansion revisit popular states constantly.
func (d *domain) Neighbors(s mcts.State) []mcts.State {
	st := s.(state)
	if ns, ok := d.neighbors[st.h]; ok {
		return ns
	}
	cur := st.d
	var out []mcts.State
	difftree.WalkPath(cur, func(n *difftree.Node, p difftree.Path) bool {
		for _, r := range d.ruleSet {
			if kinds, ok := ruleKinds[r.Name()]; ok && !kinds[n.Kind] {
				continue
			}
			next, ok := rules.Candidate(cur, p, r)
			if !ok {
				continue
			}
			h := difftree.Hash(next)
			if !d.isLegal(next, h) {
				continue
			}
			out = append(out, state{d: next, h: h})
		}
		return true
	})
	if len(d.neighbors) < 1<<14 {
		d.neighbors[st.h] = out
	}
	return out
}

// RandomNeighbor implements mcts.Sampler: it draws random (rule, node)
// candidates — restricted to node kinds the rule can match — and returns the
// first legal rewrite, falling back to the (cached) full move set when
// unlucky. This keeps rollouts cheap relative to full neighbor enumeration.
func (d *domain) RandomNeighbor(s mcts.State, rng *rand.Rand) (mcts.State, bool) {
	st := s.(state)
	if ns, ok := d.neighbors[st.h]; ok {
		// Already enumerated: sample the exact legal move set.
		if len(ns) == 0 {
			return nil, false
		}
		return ns[rng.Intn(len(ns))], true
	}
	cur := st.d
	byKind := make(map[difftree.Kind][]difftree.Path)
	difftree.WalkPath(cur, func(n *difftree.Node, p difftree.Path) bool {
		byKind[n.Kind] = append(byKind[n.Kind], p.Clone())
		return true
	})
	const tries = 48
	for i := 0; i < tries; i++ {
		r := d.ruleSet[rng.Intn(len(d.ruleSet))]
		kinds := ruleKinds[r.Name()]
		// Collect the paths this rule could match.
		var pool []difftree.Path
		for k, ps := range byKind {
			if kinds == nil || kinds[k] {
				pool = append(pool, ps...)
			}
		}
		if len(pool) == 0 {
			continue
		}
		p := pool[rng.Intn(len(pool))]
		next, ok := rules.Candidate(cur, p, r)
		if !ok {
			continue
		}
		h := difftree.Hash(next)
		if !d.isLegal(next, h) {
			continue
		}
		return state{d: next, h: h}, true
	}
	ns := d.Neighbors(s)
	if len(ns) == 0 {
		return nil, false
	}
	return ns[rng.Intn(len(ns))], true
}

// Reward implements mcts.Domain: 1/(1 + cost/scale), so the initial state
// scores 0.5 and better interfaces approach 1. Rewards are cached per state
// hash (cost sampling is stochastic; caching also keeps it stable).
func (d *domain) Reward(s mcts.State) float64 {
	st := s.(state)
	if r, ok := d.cache[st.h]; ok {
		return r
	}
	c := StateCost(st.d, d.log, d.model, d.k, d.rng)
	r := 0.0
	if !math.IsInf(c, 1) {
		r = 1.0 / (1.0 + c/d.scale)
	}
	d.cache[st.h] = r
	return r
}

// Fanout counts the legal moves of a difftree (the paper reports fanouts up
// to ~50 on the SDSS log).
func Fanout(d *difftree.Node, log []*ast.Node, set []rules.Rule) int {
	return len(rules.Moves(d, log, set))
}

// RandomWalk performs n random legal moves from the initial state and
// returns the resulting difftree; used to produce the paper's Figure 6(d)
// "low reward interface" without search.
func RandomWalk(log []*ast.Node, steps int, seed int64) (*difftree.Node, error) {
	init, err := difftree.Initial(log)
	if err != nil {
		return nil, err
	}
	d := &domain{
		log:       log,
		ruleSet:   rules.All(),
		cache:     map[uint64]float64{},
		legal:     map[uint64]bool{},
		neighbors: map[uint64][]mcts.State{},
		sizeCap:   4*init.Size() + 64,
	}
	rng := rand.New(rand.NewSource(seed))
	cur := state{d: init, h: difftree.Hash(init)}
	for i := 0; i < steps; i++ {
		next, ok := d.RandomNeighbor(cur, rng)
		if !ok {
			break
		}
		cur = next.(state)
	}
	return cur.d, nil
}

// Describe renders a one-line summary of a result for logs and examples.
func (r *Result) Describe() string {
	return fmt.Sprintf("cost=%.2f (M=%.2f U=%.2f) widgets=%d bounds=%dx%d iters=%d evals=%d",
		r.Cost.Total(), r.Cost.M, r.Cost.U, r.Cost.Widgets,
		r.Cost.Bounds.W, r.Cost.Bounds.H, r.Stats.Iterations, r.Stats.Evals)
}
