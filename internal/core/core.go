// Package core orchestrates the paper's end-to-end pipeline: parse the query
// log into ASTs, build the initial difftree, search the space of difftrees
// (transformation rules as moves, best-of-k random widget assignments as
// the reward), and finally enumerate widget trees for the best difftree to
// extract the lowest-cost interface.
//
// The search is anytime and pluggable: Generate takes a context.Context
// (cancellation and deadlines end the search promptly with the best
// interface found so far), Options.Strategy selects the exploration policy
// (MCTS by default; beam, greedy, random, and exhaustive via the Strategy
// constructors), and Options.Progress streams best-so-far snapshots while
// the search runs.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/layout"
	"repro/internal/mcts"
	"repro/internal/rules"
	"repro/internal/search"
)

// Options tunes interface generation; the zero value is filled with the
// paper's defaults.
type Options struct {
	// Screen is the output screen constraint (default layout.Wide).
	Screen layout.Screen
	// Iterations bounds MCTS iterations (default 60; ignored when
	// TimeBudget is set and Iterations == 0).
	Iterations int
	// TimeBudget bounds wall-clock search time (the paper runs ~1 minute).
	TimeBudget time.Duration
	// RolloutDepth bounds random walks. The paper allows up to 200 steps;
	// the default here is 16, which the rollout-depth ablation (EXPERIMENTS
	// A2) shows already saturates quality on the paper's logs at a fraction
	// of the cost. Set 200 to mirror the paper exactly.
	RolloutDepth int
	// RewardSamples is k, the number of random widget assignments scored per
	// state during search (default 5).
	RewardSamples int
	// ExplorationC is the UCT exploration constant (default √2).
	ExplorationC float64
	// EnumLimit caps the final widget-tree enumeration (default 20000).
	EnumLimit int
	// Seed makes generation deterministic (default 1).
	Seed int64
	// EvalSeed seeds per-state reward sampling in the evaluation engine
	// (default: Seed). State costs are pure functions of (state, EvalSeed),
	// so GenerateParallel keeps EvalSeed at the base seed across workers —
	// letting them share one transposition cache — while perturbing Seed to
	// diversify their search policies.
	EvalSeed int64
	// Cache is the shared transposition cache backing the memoized
	// evaluation engine. Nil means a private cache per Generate call
	// (GenerateParallel shares one across its workers). Pass the same cache
	// to successive calls to reuse state evaluations across searches with
	// the same log, screen, and seeds.
	Cache *eval.Cache
	// WarmStart, when non-nil, seeds the search at this difftree instead of
	// the log's initial state — the incremental-serving hook: a session that
	// appends queries to its log restarts the search from its previous best
	// interface rather than from scratch. The warm tree is used only if it
	// is a legal state for the *current* log (it still expresses every
	// query, including the appended ones, and fits the size cap derived from
	// the fresh initial state); otherwise it is ignored and the search runs
	// cold. Stats.WarmStarted reports which happened. The initial state
	// keeps its other roles either way (size cap, Stats.InitialFan, the
	// Initial cost reference).
	WarmStart *difftree.Node
	// SearchTree, when non-nil, seeds the MCTS strategy with the search tree
	// persisted by a previous sequential run (Result.SearchTree), typically
	// alongside WarmStart on a session append: if the warm root occurs in
	// the reused tree, the search re-roots there and keeps the subtree's
	// visit statistics instead of rebuilding the tree from scratch
	// (Stats.ReRooted reports it; reconciliation semantics in mcts.Config).
	// Only the sequential MCTS strategy consults it — tree-parallel and
	// non-MCTS strategies ignore it and persist nothing.
	SearchTree *mcts.Tree
	// SkipInitialRef leaves Result.Initial zero and Stats.InitialFan
	// unset, skipping the extraction pass and move enumeration that exist
	// only to report the unsearched initial state's quality. Serving hot
	// paths set this: with a warm start the search never visits the
	// initial state, so the reference would be recomputed from scratch on
	// every request just to be discarded.
	SkipInitialRef bool
	// DisableMemo turns the evaluation engine's memoization off entirely:
	// every state is re-scored, re-validated, and re-enumerated on every
	// visit. Results are identical for a fixed seed — only slower; the
	// bench harness uses this as its reference baseline.
	DisableMemo bool
	// NavUnit is the Steiner-edge navigation cost (default 0.3).
	NavUnit float64
	// Rules is the transformation rule set (default rules.All()).
	Rules []rules.Rule
	// Strategy selects the search procedure (default StrategyMCTS()).
	Strategy Strategy
	// TreeWorkers > 1 runs the MCTS search tree-parallel: that many
	// goroutines share one search tree, diversified by virtual loss, all
	// draining their leaf evaluations through the shared transposition
	// cache. <= 1 (the default) keeps the sequential search, bit-identical
	// per seed; > 1 trades that reproducibility for iterations/sec (only
	// the quality envelope is pinned). Orthogonal to GenerateParallel's
	// root parallelization: each root worker runs TreeWorkers goroutines.
	// Non-MCTS strategies ignore it.
	TreeWorkers int
	// Progress, when non-nil, receives anytime snapshots while the search
	// runs. Under GenerateParallel the callback is serialized across
	// workers; each snapshot carries its worker index.
	Progress func(Progress)
}

// Result is a generated interface plus search diagnostics.
type Result struct {
	DiffTree *difftree.Node // best difftree found
	UI       *layout.Node   // lowest-cost widget tree for it
	Cost     cost.Breakdown // its cost breakdown
	Initial  cost.Breakdown // cost of the initial state's best interface
	Stats    Stats          // search statistics
	Log      []*ast.Node    // the input log (parsed)
	// SearchTree is the MCTS tree this search built (sequential MCTS only,
	// nil otherwise). Feed it back through Options.SearchTree on the next
	// warm-started call over the same session to re-root instead of
	// rebuilding. It retains every state the search materialized; keep only
	// the latest.
	SearchTree *mcts.Tree
}

// Stats summarizes the search.
type Stats struct {
	Strategy       string // strategy that produced the result
	Iterations     int    // MCTS iterations; objective evaluations otherwise
	Expanded       int    // expanded nodes (states visited for non-MCTS)
	Rollouts       int    // random walks (MCTS only)
	Evals          int    // cost evaluations
	BestReward     float64
	InitialFan     int  // fanout (legal moves) of the initial state
	EnumComplete   bool // final widget-tree enumeration was exhaustive
	SpaceExhausted bool // StrategyExhaustive swept the entire space
	Interrupted    bool // the context ended the search before its budget
	WarmStarted    bool // the search was seeded from Options.WarmStart
	ReRooted       bool // the MCTS tree was reused via Options.SearchTree
	Workers        int  // root-parallel workers that contributed
	TreeWorkers    int  // goroutines sharing each search tree (1 = sequential)
	Elapsed        time.Duration
	// CacheHits/CacheMisses/CacheEntries snapshot the evaluation engine's
	// transposition cache at the end of the search (all zero with
	// DisableMemo). With a caller-provided shared cache the counters are
	// cumulative across every search the cache served.
	CacheHits    int64
	CacheMisses  int64
	CacheEntries int64
	// CacheHitRate is CacheHits/(CacheHits+CacheMisses), 0 when unused.
	CacheHitRate float64
	// Trajectory is the best-so-far cost curve: one point per improvement,
	// costs monotone non-increasing. Under GenerateParallel it is the
	// winning worker's curve.
	Trajectory []TrajectoryPoint
}

// Generate runs the full pipeline on parsed query ASTs. It is an anytime
// call: when ctx is cancelled or its deadline passes mid-search, the best
// interface found so far is extracted and returned (with Stats.Interrupted
// set) rather than an error. A nil ctx is treated as context.Background().
func Generate(ctx context.Context, log []*ast.Node, opt Options) (*Result, error) {
	return generate(ctx, log, opt, 0)
}

// generate is Generate plus the worker index used by GenerateParallel's
// progress snapshots.
func generate(ctx context.Context, log []*ast.Node, opt Options, worker int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	if len(log) == 0 {
		return nil, errors.New("core: empty query log")
	}
	init, err := difftree.Initial(log)
	if err != nil {
		return nil, err
	}

	model := cost.Model{NavUnit: opt.NavUnit, Screen: opt.Screen}
	eng := newEngine(log, init, model, opt)
	p := newProblem(log, init, model, opt, eng, worker)
	if opt.WarmStart != nil && eng.LegalState(opt.WarmStart) {
		// Warm start: the previous best interface is still a legal state for
		// this (possibly extended) log, so the search resumes from it.
		p.root = opt.WarmStart
	}

	res := opt.Strategy.search(ctx, p)
	best := res.best

	// Final extraction: enumerate all widget trees for the best difftree
	// (sampling beyond the cap) and keep the argmin. When the search ended
	// on the initial state — e.g. a context cancelled before the first
	// iteration — one extraction serves as both the result and the
	// initial-state reference, halving the post-cancellation work.
	ui, bd, complete := BestInterface(best, log, model, opt.EnumLimit, opt.Seed)

	initBD := bd
	if opt.SkipInitialRef {
		initBD = cost.Breakdown{}
	} else if difftree.Hash(best) != difftree.Hash(init) {
		_, initBD, _ = BestInterface(init, log, model, opt.EnumLimit, opt.Seed)
	}

	stats := res.stats
	if !opt.SkipInitialRef {
		// For cold searches the engine already enumerated (and memoized)
		// the initial state's legal move set during the search, so this is
		// a cache hit; a warm-started search may compute it here. Either
		// way InitialFan stays consistent with the size-capped moves every
		// strategy actually sees.
		stats.InitialFan = len(eng.Moves(init))
	}
	stats.EnumComplete = complete
	stats.WarmStarted = p.root != p.init
	stats.Workers = 1
	if stats.TreeWorkers == 0 {
		stats.TreeWorkers = 1 // non-MCTS strategies always run sequentially
	}
	//mctsvet:allow wallclock -- Elapsed is observability reported in Stats; it never influences the search result
	stats.Elapsed = time.Since(p.start)
	cs := eng.CacheStats()
	stats.CacheHits, stats.CacheMisses, stats.CacheEntries = cs.Hits, cs.Misses, cs.Entries
	stats.CacheHitRate = cs.HitRate()
	// Close the trajectory with the extraction result, which can undercut
	// the search-time estimate (it enumerates far more assignments).
	if c := bd.Total(); c < p.bestCost && !math.IsInf(c, 1) {
		p.traj = append(p.traj, TrajectoryPoint{Evals: p.evals, Elapsed: stats.Elapsed, Cost: c})
	}
	stats.Trajectory = p.traj

	out := &Result{
		DiffTree:   best,
		UI:         ui,
		Cost:       bd,
		Initial:    initBD,
		Log:        log,
		Stats:      stats,
		SearchTree: res.tree,
	}
	return out, nil
}

// BestInterface enumerates (or samples past the cap) the widget trees of a
// difftree and returns the cheapest, with its breakdown and whether the
// enumeration was exhaustive.
func BestInterface(d *difftree.Node, log []*ast.Node, model cost.Model, enumLimit int, seed int64) (*layout.Node, cost.Breakdown, bool) {
	plan, err := assign.BuildPlan(d)
	if err != nil {
		return nil, cost.Breakdown{Valid: false, Reason: err.Error()}, true
	}
	ev := model.NewEvaluator(d, log)
	if !d.HasChoice() {
		return nil, ev.Evaluate(nil), true
	}

	var bestUI *layout.Node
	bestBD := cost.Breakdown{Valid: false, Reason: "no assignment evaluated"}
	bestC := math.Inf(1)
	consider := func(ui *layout.Node) {
		bd := ev.Evaluate(ui)
		if c := bd.Total(); c < bestC {
			bestC, bestBD, bestUI = c, bd, ui
		}
	}

	complete := plan.Enumerate(enumLimit, func(ui *layout.Node) bool {
		consider(ui)
		return true
	})
	if !complete {
		// The space exceeds the cap: top up with random samples.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < enumLimit/2; i++ {
			consider(plan.Random(rng))
		}
	}
	if bestUI == nil {
		return nil, cost.Breakdown{Valid: false, Reason: "no widget tree found"}, complete
	}
	return bestUI, bestBD, complete
}

// StateCost is the paper's reward primitive: the best cost among k random
// widget assignments (plus the cost-greedy first assignment) for a difftree.
func StateCost(d *difftree.Node, log []*ast.Node, model cost.Model, k int, rng *rand.Rand) float64 {
	return eval.SampledCost(d, log, model, k, rng)
}

// newEngine builds the evaluation engine for one generate call: the
// memoized (or, with DisableMemo, recomputing) source of state costs,
// legality verdicts, and move sets that every strategy shares. Costs are
// seeded per state from EvalSeed, so two engines with equal configs agree
// on every value — the basis for sharing Options.Cache across workers and
// successive calls.
func newEngine(log []*ast.Node, init *difftree.Node, model cost.Model, opt Options) *eval.Engine {
	cache := opt.Cache
	if cache == nil && !opt.DisableMemo {
		cache = eval.NewCache(0)
	}
	if opt.DisableMemo {
		cache = nil
	}
	return eval.New(eval.Config{
		Log:     log,
		Model:   model,
		Samples: opt.RewardSamples,
		Rules:   opt.Rules,
		SizeCap: search.SizeCap(init),
		Seed:    opt.EvalSeed,
	}, cache)
}

// state adapts a difftree to mcts.State.
type state struct {
	d *difftree.Node
	h uint64
}

// Hash implements mcts.State.
func (s state) Hash() uint64 { return s.h }

// domain adapts the difftree space to mcts.Domain + mcts.Sampler, backed by
// the shared evaluation engine. Beyond the engine's transposition cache it
// keeps one run-local layer: the reward memo, which dedupes the onCost
// bookkeeping. Neighbor *states* are deliberately not memoized: the engine
// caches the move sets (the expensive part), and rebuilding the successor
// trees on demand is cheap — a previous per-run neighbor-state memo retained
// tens of thousands of materialized trees, and the GC mark cost of that
// pointer-dense heap was a large share of the cold-cache slowdown.
//
// With concurrent set (tree-parallel MCTS), the run-local map is guarded
// by mu; the engine underneath is already concurrency-safe. The sequential
// path never touches the lock.
type domain struct {
	eng        *eval.Engine
	ruleSet    []rules.Rule
	scale      float64 // reward normalization: the initial state's cost
	concurrent bool    // guard the run-local memo for tree-parallel workers
	mu         sync.RWMutex
	rewards    map[uint64]float64 // run-local reward memo (nil when memoization is off)
	onCost     func(float64)      // observes each newly computed state cost
}

// cachedReward reads the run-local reward memo.
func (d *domain) cachedReward(h uint64) (float64, bool) {
	if d.rewards == nil {
		return 0, false
	}
	if d.concurrent {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	r, ok := d.rewards[h]
	return r, ok
}

// storeReward writes the run-local reward memo and reports whether this
// call was the state's first (it always is with the memo disabled — every
// visit then recomputes and counts). Concurrent tree workers can race past
// cachedReward and both compute the same state; the insert-under-lock
// verdict decides which one gets to report the evaluation, keeping the
// onCost bookkeeping at one call per unique state.
func (d *domain) storeReward(h uint64, r float64) bool {
	if d.rewards == nil {
		return true
	}
	if d.concurrent {
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	if _, ok := d.rewards[h]; ok {
		return false
	}
	d.rewards[h] = r
	return true
}

func newDomain(log []*ast.Node, opt Options, eng *eval.Engine) *domain {
	d := &domain{eng: eng, ruleSet: opt.Rules}
	if eng.Enabled() {
		d.rewards = make(map[uint64]float64)
	}
	init, err := difftree.Initial(log)
	if err == nil {
		c := eng.StateCost(init)
		if !math.IsInf(c, 1) && c > 0 {
			d.scale = c
		}
	}
	if d.scale <= 0 {
		d.scale = 10
	}
	return d
}

// Neighbors implements mcts.Domain: the engine's (memoized) legal move set,
// applied. Successor trees are rebuilt on demand — content-identical each
// time (states are keyed by structural hash everywhere), so not retaining
// them trades a little rebuild work for a much smaller retained heap.
func (d *domain) Neighbors(s mcts.State) []mcts.State {
	st := s.(state)
	ts := d.eng.Neighbors(st.d)
	out := make([]mcts.State, 0, len(ts))
	for _, t := range ts {
		out = append(out, state{d: t, h: difftree.Hash(t)})
	}
	return out
}

// spinePool recycles copy-on-write spine arenas for rollout candidates,
// almost all of which fail the legality probe and are discarded.
var spinePool = sync.Pool{New: func() any { return new(difftree.SpineArena) }}

// RandomNeighbor implements mcts.Sampler: it draws random (rule, node)
// candidates — restricted to node kinds the rule can match — and returns the
// first legal rewrite, falling back to the full move set when unlucky. This
// keeps rollouts cheap relative to full neighbor enumeration. Candidate
// pools are assembled in fixed Kind order, and the draw sequence never
// consults the memoization state, so the sampled walk is a pure function of
// (state, rng stream): cached and uncached runs take identical
// trajectories, the cache only answers the legality probes faster.
// Candidates are built on a pooled spine arena; the accepted one is rebuilt
// on the heap (consuming no rng draws), since arena trees must not become
// retained search states.
func (d *domain) RandomNeighbor(s mcts.State, rng *rand.Rand) (mcts.State, bool) {
	st := s.(state)
	cur := st.d
	byKind := d.eng.PathPools(cur)
	arena := spinePool.Get().(*difftree.SpineArena)
	defer func() {
		arena.Reset()
		spinePool.Put(arena)
	}()
	const tries = 48
	for i := 0; i < tries; i++ {
		r := d.ruleSet[rng.Intn(len(d.ruleSet))]
		kinds := rules.MatchKinds[r.Name()]
		// The candidate pool is the concatenation, in fixed Kind order, of
		// the per-kind path pools this rule can match; index into the
		// segments instead of materializing it.
		total := 0
		for k := difftree.All; k <= difftree.Multi; k++ {
			if kinds == nil || kinds[k] {
				total += len(byKind[k])
			}
		}
		if total == 0 {
			continue
		}
		idx := rng.Intn(total)
		var p difftree.Path
		for k := difftree.All; k <= difftree.Multi; k++ {
			if kinds != nil && !kinds[k] {
				continue
			}
			if idx < len(byKind[k]) {
				p = byKind[k][idx]
				break
			}
			idx -= len(byKind[k])
		}
		arena.Reset()
		next, ok := rules.CandidateArena(cur, p, r, arena)
		if !ok {
			continue
		}
		if !d.eng.LegalState(next) {
			continue
		}
		kept, ok := rules.Candidate(cur, p, r)
		if !ok {
			continue
		}
		return state{d: kept, h: difftree.Hash(kept)}, true
	}
	ns := d.Neighbors(s)
	if len(ns) == 0 {
		return nil, false
	}
	return ns[rng.Intn(len(ns))], true
}

// Reward implements mcts.Domain: 1/(1 + cost/scale), so the initial state
// scores 0.5 and better interfaces approach 1. Costs come from the engine
// (deterministic per state); the run-local memo only dedupes the onCost
// bookkeeping and skips the cache round trip for hot states.
func (d *domain) Reward(s mcts.State) float64 {
	st := s.(state)
	if r, ok := d.cachedReward(st.h); ok {
		return r
	}
	c := d.eng.StateCost(st.d)
	r := 0.0
	if !math.IsInf(c, 1) {
		r = 1.0 / (1.0 + c/d.scale)
	}
	if d.storeReward(st.h, r) && d.onCost != nil {
		d.onCost(c)
	}
	return r
}

// Fanout counts the legal moves of a difftree (the paper reports fanouts up
// to ~50 on the SDSS log).
func Fanout(d *difftree.Node, log []*ast.Node, set []rules.Rule) int {
	return len(rules.Moves(d, log, set))
}

// RandomWalk performs n random legal moves from the initial state and
// returns the resulting difftree; used to produce the paper's Figure 6(d)
// "low reward interface" without search.
func RandomWalk(log []*ast.Node, steps int, seed int64) (*difftree.Node, error) {
	init, err := difftree.Initial(log)
	if err != nil {
		return nil, err
	}
	eng := eval.New(eval.Config{
		Log:     log,
		Rules:   rules.All(),
		SizeCap: 4*init.Size() + 64,
	}, eval.NewCache(0))
	d := &domain{
		eng:     eng,
		ruleSet: rules.All(),
		rewards: map[uint64]float64{},
	}
	rng := rand.New(rand.NewSource(seed))
	cur := state{d: init, h: difftree.Hash(init)}
	for i := 0; i < steps; i++ {
		next, ok := d.RandomNeighbor(cur, rng)
		if !ok {
			break
		}
		cur = next.(state)
	}
	return cur.d, nil
}

// Describe renders a one-line summary of a result for logs and examples.
func (r *Result) Describe() string {
	return fmt.Sprintf("cost=%.2f (M=%.2f U=%.2f) widgets=%d bounds=%dx%d iters=%d evals=%d",
		r.Cost.Total(), r.Cost.M, r.Cost.U, r.Cost.Widgets,
		r.Cost.Bounds.W, r.Cost.Bounds.H, r.Stats.Iterations, r.Stats.Evals)
}
