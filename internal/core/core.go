// Package core orchestrates the paper's end-to-end pipeline: parse the query
// log into ASTs, build the initial difftree, search the space of difftrees
// (transformation rules as moves, best-of-k random widget assignments as
// the reward), and finally enumerate widget trees for the best difftree to
// extract the lowest-cost interface.
//
// The search is anytime and pluggable: Generate takes a context.Context
// (cancellation and deadlines end the search promptly with the best
// interface found so far), Options.Strategy selects the exploration policy
// (MCTS by default; beam, greedy, random, and exhaustive via the Strategy
// constructors), and Options.Progress streams best-so-far snapshots while
// the search runs.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/mcts"
	"repro/internal/rules"
	"repro/internal/search"
)

// Options tunes interface generation; the zero value is filled with the
// paper's defaults.
type Options struct {
	// Screen is the output screen constraint (default layout.Wide).
	Screen layout.Screen
	// Iterations bounds MCTS iterations (default 60; ignored when
	// TimeBudget is set and Iterations == 0).
	Iterations int
	// TimeBudget bounds wall-clock search time (the paper runs ~1 minute).
	TimeBudget time.Duration
	// RolloutDepth bounds random walks. The paper allows up to 200 steps;
	// the default here is 16, which the rollout-depth ablation (EXPERIMENTS
	// A2) shows already saturates quality on the paper's logs at a fraction
	// of the cost. Set 200 to mirror the paper exactly.
	RolloutDepth int
	// RewardSamples is k, the number of random widget assignments scored per
	// state during search (default 5).
	RewardSamples int
	// ExplorationC is the UCT exploration constant (default √2).
	ExplorationC float64
	// EnumLimit caps the final widget-tree enumeration (default 20000).
	EnumLimit int
	// Seed makes generation deterministic (default 1).
	Seed int64
	// NavUnit is the Steiner-edge navigation cost (default 0.3).
	NavUnit float64
	// Rules is the transformation rule set (default rules.All()).
	Rules []rules.Rule
	// Strategy selects the search procedure (default StrategyMCTS()).
	Strategy Strategy
	// Progress, when non-nil, receives anytime snapshots while the search
	// runs. Under GenerateParallel the callback is serialized across
	// workers; each snapshot carries its worker index.
	Progress func(Progress)
}

// Result is a generated interface plus search diagnostics.
type Result struct {
	DiffTree *difftree.Node // best difftree found
	UI       *layout.Node   // lowest-cost widget tree for it
	Cost     cost.Breakdown // its cost breakdown
	Initial  cost.Breakdown // cost of the initial state's best interface
	Stats    Stats          // search statistics
	Log      []*ast.Node    // the input log (parsed)
}

// Stats summarizes the search.
type Stats struct {
	Strategy       string // strategy that produced the result
	Iterations     int    // MCTS iterations; objective evaluations otherwise
	Expanded       int    // expanded nodes (states visited for non-MCTS)
	Rollouts       int    // random walks (MCTS only)
	Evals          int    // cost evaluations
	BestReward     float64
	InitialFan     int  // fanout (legal moves) of the initial state
	EnumComplete   bool // final widget-tree enumeration was exhaustive
	SpaceExhausted bool // StrategyExhaustive swept the entire space
	Interrupted    bool // the context ended the search before its budget
	Workers        int  // parallel workers that contributed
	Elapsed        time.Duration
	// Trajectory is the best-so-far cost curve: one point per improvement,
	// costs monotone non-increasing. Under GenerateParallel it is the
	// winning worker's curve.
	Trajectory []TrajectoryPoint
}

// Generate runs the full pipeline on parsed query ASTs. It is an anytime
// call: when ctx is cancelled or its deadline passes mid-search, the best
// interface found so far is extracted and returned (with Stats.Interrupted
// set) rather than an error. A nil ctx is treated as context.Background().
func Generate(ctx context.Context, log []*ast.Node, opt Options) (*Result, error) {
	return generate(ctx, log, opt, 0)
}

// generate is Generate plus the worker index used by GenerateParallel's
// progress snapshots.
func generate(ctx context.Context, log []*ast.Node, opt Options, worker int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	if len(log) == 0 {
		return nil, errors.New("core: empty query log")
	}
	init, err := difftree.Initial(log)
	if err != nil {
		return nil, err
	}

	model := cost.Model{NavUnit: opt.NavUnit, Screen: opt.Screen}
	p := newProblem(log, init, model, opt, worker)

	res := opt.Strategy.search(ctx, p)
	best := res.best

	// Final extraction: enumerate all widget trees for the best difftree
	// (sampling beyond the cap) and keep the argmin. When the search ended
	// on the initial state — e.g. a context cancelled before the first
	// iteration — one extraction serves as both the result and the
	// initial-state reference, halving the post-cancellation work.
	ui, bd, complete := BestInterface(best, log, model, opt.EnumLimit, opt.Seed)

	initBD := bd
	if difftree.Hash(best) != difftree.Hash(init) {
		_, initBD, _ = BestInterface(init, log, model, opt.EnumLimit, opt.Seed)
	}

	stats := res.stats
	stats.InitialFan = len(rules.Moves(init, log, opt.Rules))
	stats.EnumComplete = complete
	stats.Workers = 1
	stats.Elapsed = time.Since(p.start)
	// Close the trajectory with the extraction result, which can undercut
	// the search-time estimate (it enumerates far more assignments).
	if c := bd.Total(); c < p.bestCost && !math.IsInf(c, 1) {
		p.traj = append(p.traj, TrajectoryPoint{Evals: p.evals, Elapsed: stats.Elapsed, Cost: c})
	}
	stats.Trajectory = p.traj

	out := &Result{
		DiffTree: best,
		UI:       ui,
		Cost:     bd,
		Initial:  initBD,
		Log:      log,
		Stats:    stats,
	}
	return out, nil
}

// BestInterface enumerates (or samples past the cap) the widget trees of a
// difftree and returns the cheapest, with its breakdown and whether the
// enumeration was exhaustive.
func BestInterface(d *difftree.Node, log []*ast.Node, model cost.Model, enumLimit int, seed int64) (*layout.Node, cost.Breakdown, bool) {
	plan, err := assign.BuildPlan(d)
	if err != nil {
		return nil, cost.Breakdown{Valid: false, Reason: err.Error()}, true
	}
	ev := model.NewEvaluator(d, log)
	if !d.HasChoice() {
		return nil, ev.Evaluate(nil), true
	}

	var bestUI *layout.Node
	bestBD := cost.Breakdown{Valid: false, Reason: "no assignment evaluated"}
	bestC := math.Inf(1)
	consider := func(ui *layout.Node) {
		bd := ev.Evaluate(ui)
		if c := bd.Total(); c < bestC {
			bestC, bestBD, bestUI = c, bd, ui
		}
	}

	complete := plan.Enumerate(enumLimit, func(ui *layout.Node) bool {
		consider(ui)
		return true
	})
	if !complete {
		// The space exceeds the cap: top up with random samples.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < enumLimit/2; i++ {
			consider(plan.Random(rng))
		}
	}
	if bestUI == nil {
		return nil, cost.Breakdown{Valid: false, Reason: "no widget tree found"}, complete
	}
	return bestUI, bestBD, complete
}

// StateCost is the paper's reward primitive: the best cost among k random
// widget assignments (plus the cost-greedy first assignment) for a difftree.
func StateCost(d *difftree.Node, log []*ast.Node, model cost.Model, k int, rng *rand.Rand) float64 {
	plan, err := assign.BuildPlan(d)
	if err != nil {
		return math.Inf(1)
	}
	ev := model.NewEvaluator(d, log)
	if !d.HasChoice() {
		return ev.Evaluate(nil).Total()
	}
	best := ev.Evaluate(plan.First()).Total()
	for i := 0; i < k; i++ {
		if c := ev.Evaluate(plan.Random(rng)).Total(); c < best {
			best = c
		}
	}
	return best
}

// state adapts a difftree to mcts.State.
type state struct {
	d *difftree.Node
	h uint64
}

// Hash implements mcts.State.
func (s state) Hash() uint64 { return s.h }

// domain adapts the difftree space to mcts.Domain + mcts.Sampler.
type domain struct {
	log     []*ast.Node
	model   cost.Model
	k       int
	ruleSet []rules.Rule
	rng     *rand.Rand // reward sampling; separate stream from the search's
	scale   float64    // reward normalization: the initial state's cost
	cache   map[uint64]float64
	legal   map[uint64]bool // candidate-state legality, keyed by tree hash
	sizeCap int             // prune states larger than this (search pruning,
	// listed by the paper as a needed optimization: expansion rules can
	// otherwise balloon trees during long rollouts)
	neighbors map[uint64][]mcts.State // full neighbor lists, keyed by state hash
	onCost    func(float64)           // observes each newly computed state cost
}

// ruleKinds maps each rule to the difftree node kinds its pattern can match;
// the rollout sampler only draws (rule, node) pairs from this table, which
// raises its hit rate enough to avoid falling back to full enumeration.
var ruleKinds = map[string]map[difftree.Kind]bool{
	"Any2All":    {difftree.Any: true},
	"All2Any":    {difftree.All: true},
	"Lift":       {difftree.Any: true},
	"Unlift":     {difftree.All: true},
	"MultiMerge": {difftree.Any: true, difftree.All: true},
	"Optional":   {difftree.Any: true},
	"Unoptional": {difftree.Opt: true},
	"Unwrap":     {difftree.Any: true},
	"Flatten":    {difftree.Any: true},
	"DedupAny":   {difftree.Any: true},
	"Wrap":       {difftree.All: true},
}

func newDomain(log []*ast.Node, model cost.Model, opt Options) *domain {
	d := &domain{
		log:       log,
		model:     model,
		k:         opt.RewardSamples,
		ruleSet:   opt.Rules,
		rng:       rand.New(rand.NewSource(opt.Seed + 0x9e37)),
		cache:     make(map[uint64]float64),
		legal:     make(map[uint64]bool),
		neighbors: make(map[uint64][]mcts.State),
	}
	init, err := difftree.Initial(log)
	if err == nil {
		c := StateCost(init, log, model, opt.RewardSamples, d.rng)
		if !math.IsInf(c, 1) && c > 0 {
			d.scale = c
		}
		d.sizeCap = search.SizeCap(init)
	}
	if d.scale <= 0 {
		d.scale = 10
	}
	if d.sizeCap < 64 {
		d.sizeCap = 64
	}
	return d
}

// isLegal checks (with caching) whether a candidate rewrite preserves the
// invariant that every input query stays expressible. States recur heavily
// across rollouts, so the cache pays for itself quickly.
func (d *domain) isLegal(next *difftree.Node, h uint64) bool {
	if v, ok := d.legal[h]; ok {
		return v
	}
	v := next.Size() <= d.sizeCap && rules.LegalState(next, d.log)
	d.legal[h] = v
	return v
}

// Neighbors implements mcts.Domain. Results are cached per state hash:
// rollouts and expansion revisit popular states constantly.
func (d *domain) Neighbors(s mcts.State) []mcts.State {
	st := s.(state)
	if ns, ok := d.neighbors[st.h]; ok {
		return ns
	}
	cur := st.d
	var out []mcts.State
	difftree.WalkPath(cur, func(n *difftree.Node, p difftree.Path) bool {
		for _, r := range d.ruleSet {
			if kinds, ok := ruleKinds[r.Name()]; ok && !kinds[n.Kind] {
				continue
			}
			next, ok := rules.Candidate(cur, p, r)
			if !ok {
				continue
			}
			h := difftree.Hash(next)
			if !d.isLegal(next, h) {
				continue
			}
			out = append(out, state{d: next, h: h})
		}
		return true
	})
	if len(d.neighbors) < 1<<14 {
		d.neighbors[st.h] = out
	}
	return out
}

// RandomNeighbor implements mcts.Sampler: it draws random (rule, node)
// candidates — restricted to node kinds the rule can match — and returns the
// first legal rewrite, falling back to the (cached) full move set when
// unlucky. This keeps rollouts cheap relative to full neighbor enumeration.
func (d *domain) RandomNeighbor(s mcts.State, rng *rand.Rand) (mcts.State, bool) {
	st := s.(state)
	if ns, ok := d.neighbors[st.h]; ok {
		// Already enumerated: sample the exact legal move set.
		if len(ns) == 0 {
			return nil, false
		}
		return ns[rng.Intn(len(ns))], true
	}
	cur := st.d
	byKind := make(map[difftree.Kind][]difftree.Path)
	difftree.WalkPath(cur, func(n *difftree.Node, p difftree.Path) bool {
		byKind[n.Kind] = append(byKind[n.Kind], p.Clone())
		return true
	})
	const tries = 48
	for i := 0; i < tries; i++ {
		r := d.ruleSet[rng.Intn(len(d.ruleSet))]
		kinds := ruleKinds[r.Name()]
		// Collect the paths this rule could match.
		var pool []difftree.Path
		for k, ps := range byKind {
			if kinds == nil || kinds[k] {
				pool = append(pool, ps...)
			}
		}
		if len(pool) == 0 {
			continue
		}
		p := pool[rng.Intn(len(pool))]
		next, ok := rules.Candidate(cur, p, r)
		if !ok {
			continue
		}
		h := difftree.Hash(next)
		if !d.isLegal(next, h) {
			continue
		}
		return state{d: next, h: h}, true
	}
	ns := d.Neighbors(s)
	if len(ns) == 0 {
		return nil, false
	}
	return ns[rng.Intn(len(ns))], true
}

// Reward implements mcts.Domain: 1/(1 + cost/scale), so the initial state
// scores 0.5 and better interfaces approach 1. Rewards are cached per state
// hash (cost sampling is stochastic; caching also keeps it stable).
func (d *domain) Reward(s mcts.State) float64 {
	st := s.(state)
	if r, ok := d.cache[st.h]; ok {
		return r
	}
	c := StateCost(st.d, d.log, d.model, d.k, d.rng)
	if d.onCost != nil {
		d.onCost(c)
	}
	r := 0.0
	if !math.IsInf(c, 1) {
		r = 1.0 / (1.0 + c/d.scale)
	}
	d.cache[st.h] = r
	return r
}

// Fanout counts the legal moves of a difftree (the paper reports fanouts up
// to ~50 on the SDSS log).
func Fanout(d *difftree.Node, log []*ast.Node, set []rules.Rule) int {
	return len(rules.Moves(d, log, set))
}

// RandomWalk performs n random legal moves from the initial state and
// returns the resulting difftree; used to produce the paper's Figure 6(d)
// "low reward interface" without search.
func RandomWalk(log []*ast.Node, steps int, seed int64) (*difftree.Node, error) {
	init, err := difftree.Initial(log)
	if err != nil {
		return nil, err
	}
	d := &domain{
		log:       log,
		ruleSet:   rules.All(),
		cache:     map[uint64]float64{},
		legal:     map[uint64]bool{},
		neighbors: map[uint64][]mcts.State{},
		sizeCap:   4*init.Size() + 64,
	}
	rng := rand.New(rand.NewSource(seed))
	cur := state{d: init, h: difftree.Hash(init)}
	for i := 0; i < steps; i++ {
		next, ok := d.RandomNeighbor(cur, rng)
		if !ok {
			break
		}
		cur = next.(state)
	}
	return cur.d, nil
}

// Describe renders a one-line summary of a result for logs and examples.
func (r *Result) Describe() string {
	return fmt.Sprintf("cost=%.2f (M=%.2f U=%.2f) widgets=%d bounds=%dx%d iters=%d evals=%d",
		r.Cost.Total(), r.Cost.M, r.Cost.U, r.Cost.Widgets,
		r.Cost.Bounds.W, r.Cost.Bounds.H, r.Stats.Iterations, r.Stats.Evals)
}
