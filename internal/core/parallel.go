package core

import (
	"runtime"
	"sync"

	"repro/internal/ast"
)

// GenerateParallel runs `workers` independent MCTS searches with distinct
// seeds and returns the best interface found — root parallelization, the
// simplest of the parallel MCTS schemes and the paper's suggested
// "parallelization" optimization for interactive run-times. workers <= 0
// uses GOMAXPROCS. Results are deterministic for a fixed (seed, workers)
// pair: the winner is the lowest cost with the lowest worker index breaking
// ties.
func GenerateParallel(log []*ast.Node, opt Options, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Generate(log, opt)
	}
	opt = opt.withDefaults()

	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := opt
			o.Seed = opt.Seed + int64(w)*0x9e3779b9
			results[w], errs[w] = Generate(log, o)
		}(w)
	}
	wg.Wait()

	var best *Result
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		r := results[w]
		if best == nil || r.Cost.Total() < best.Cost.Total() {
			best = r
		}
	}
	// Aggregate search statistics across workers.
	agg := best.Stats
	agg.Iterations, agg.Expanded, agg.Rollouts, agg.Evals = 0, 0, 0, 0
	for _, r := range results {
		agg.Iterations += r.Stats.Iterations
		agg.Expanded += r.Stats.Expanded
		agg.Rollouts += r.Stats.Rollouts
		agg.Evals += r.Stats.Evals
	}
	best.Stats = agg
	return best, nil
}
