package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/ast"
	"repro/internal/eval"
)

// GenerateParallel runs `workers` independent searches with distinct seeds
// and returns the best interface found — root parallelization, the simplest
// of the parallel MCTS schemes and the paper's suggested "parallelization"
// optimization for interactive run-times. workers <= 0 uses GOMAXPROCS.
// Results are deterministic for a fixed (seed, workers) pair: the winner is
// the lowest cost with the lowest worker index breaking ties.
//
// Cancelling ctx stops every worker promptly; the best interface found
// across workers so far is still assembled and returned. Progress callbacks
// are serialized across workers and tagged with the worker index.
func GenerateParallel(ctx context.Context, log []*ast.Node, opt Options, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Generate(ctx, log, opt)
	}
	opt = opt.withDefaults()
	// One transposition cache serves every worker: state costs are pure
	// functions of (state, EvalSeed) — withDefaults pinned EvalSeed to the
	// base seed above, and only the policy seed is perturbed per worker —
	// so a state scored by one worker is a guaranteed-identical cache hit
	// for all the others.
	if opt.Cache == nil && !opt.DisableMemo {
		opt.Cache = eval.NewCache(0)
	}
	if opt.Progress != nil {
		var mu sync.Mutex
		user := opt.Progress
		opt.Progress = func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			user(p)
		}
	}

	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := opt
			o.Seed = opt.Seed + int64(w)*0x9e3779b9
			results[w], errs[w] = generate(ctx, log, o, w)
		}(w)
	}
	wg.Wait()

	var best *Result
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		r := results[w]
		if best == nil || r.Cost.Total() < best.Cost.Total() {
			best = r
		}
	}
	// Aggregate search statistics across workers; the winner keeps its own
	// best-cost trajectory.
	agg := best.Stats
	agg.Iterations, agg.Expanded, agg.Rollouts, agg.Evals = 0, 0, 0, 0
	agg.Workers = workers
	for _, r := range results {
		agg.Iterations += r.Stats.Iterations
		agg.Expanded += r.Stats.Expanded
		agg.Rollouts += r.Stats.Rollouts
		agg.Evals += r.Stats.Evals
		agg.Interrupted = agg.Interrupted || r.Stats.Interrupted
	}
	if opt.Cache != nil {
		// Final snapshot of the shared cache (per-worker snapshots raced
		// with still-running workers).
		cs := opt.Cache.Stats()
		agg.CacheHits, agg.CacheMisses, agg.CacheEntries = cs.Hits, cs.Misses, cs.Entries
		agg.CacheHitRate = cs.HitRate()
	}
	best.Stats = agg
	return best, nil
}
