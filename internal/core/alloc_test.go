package core

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/workload"
)

// TestMCTSIterationAllocsBounded pins the search hot path's allocation
// behavior: a cache-warm sequential MCTS run must stay under a fixed
// allocations-per-iteration budget. The budget is ~2x the measured steady
// state (~1.8k/iter on the Figure 1 log), so it tolerates noise but fails
// loudly if an allocation regression lands on the hot path — a per-rehash
// hasher, an unpooled matcher, or per-candidate COW spines would each
// multiply the number by 10x or more.
func TestMCTSIterationAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const iters = 30
	log := workload.PaperFigure1Log()
	cache := eval.NewCache(0)
	opt := Options{Iterations: iters, RolloutDepth: 6, Seed: 7, Cache: cache, SkipInitialRef: true}
	// Warm the shared cache so the measured runs are the steady state.
	if _, err := Generate(context.Background(), log, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Generate(context.Background(), log, opt); err != nil {
			t.Error(err)
		}
	})
	perIter := allocs / iters
	t.Logf("allocs/run=%.0f allocs/iteration=%.1f", allocs, perIter)
	if perIter > 4000 {
		t.Errorf("allocations per MCTS iteration = %.1f, budget 4000; an allocation regression landed on the search hot path", perIter)
	}
}
