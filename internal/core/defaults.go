package core

import (
	"math"

	"repro/internal/layout"
	"repro/internal/rules"
)

// Single source of truth for every search default. The public mctsui
// package re-exports these constants, and Options.withDefaults below is the
// only place they are applied — config docs, the engine, and cmd flags all
// resolve through here, so the values cannot silently drift.
const (
	// DefaultIterations is the MCTS iteration budget (the paper's ~1-minute
	// wall clock resolves to roughly this many iterations on its logs).
	DefaultIterations = 60
	// DefaultRolloutDepth bounds random walks. The paper allows up to 200
	// steps; 16 already saturates quality on the paper's logs (EXPERIMENTS
	// A2) at a fraction of the cost.
	DefaultRolloutDepth = 16
	// DefaultRewardSamples is k, the random widget assignments scored per
	// state during search.
	DefaultRewardSamples = 5
	// DefaultSeed makes generation deterministic out of the box.
	DefaultSeed = 1
	// DefaultEnumLimit caps the final widget-tree enumeration.
	DefaultEnumLimit = 20000
	// DefaultNavUnit is the Steiner-edge navigation cost.
	DefaultNavUnit = 0.3
	// DefaultBeamWidth is the frontier width of StrategyBeam.
	DefaultBeamWidth = 8
	// DefaultRandomWalks is the walk count of StrategyRandom.
	DefaultRandomWalks = 30
	// DefaultExhaustiveCap bounds StrategyExhaustive's state sweep.
	DefaultExhaustiveCap = 50000
	// DefaultExplorationC is the UCT exploration constant c = √2.
	DefaultExplorationC = math.Sqrt2
)

// withDefaults fills every zero field with the package defaults above.
func (o Options) withDefaults() Options {
	if o.Screen == (layout.Screen{}) {
		o.Screen = layout.Wide
	}
	if o.Iterations <= 0 && o.TimeBudget <= 0 {
		o.Iterations = DefaultIterations
	}
	if o.RolloutDepth <= 0 {
		o.RolloutDepth = DefaultRolloutDepth
	}
	if o.RewardSamples <= 0 {
		o.RewardSamples = DefaultRewardSamples
	}
	if o.ExplorationC == 0 {
		o.ExplorationC = DefaultExplorationC
	}
	if o.EnumLimit <= 0 {
		o.EnumLimit = DefaultEnumLimit
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.EvalSeed == 0 {
		o.EvalSeed = o.Seed
	}
	if o.NavUnit == 0 {
		o.NavUnit = DefaultNavUnit
	}
	if o.Rules == nil {
		o.Rules = rules.All()
	}
	if o.Strategy == nil {
		o.Strategy = StrategyMCTS()
	}
	return o
}
