package widgets

// Size is a widget footprint in abstract layout units (≈ pixels).
type Size struct {
	W, H int
}

// Layout constants shared with the layout engine.
const (
	CharW   = 8  // monospace character width
	RowH    = 24 // text row height
	Pad     = 8  // container padding
	Spacing = 6  // gap between siblings
)

// SizeClass discretizes widget widths; the paper fixes widget sizes by
// predefining small/medium/large templates per widget instead of computing
// continuous sizes.
type SizeClass uint8

// The three discrete templates.
const (
	Small SizeClass = iota
	Medium
	Large
)

func (c SizeClass) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "sizeclass?"
}

// classWidths maps a size class to the discretized control width.
var classWidths = [...]int{Small: 56, Medium: 96, Large: 160}

// ClassOf picks the discrete template for a label length.
func ClassOf(labelLen int) SizeClass {
	switch {
	case labelLen <= 7:
		return Small
	case labelLen <= 14:
		return Medium
	default:
		return Large
	}
}

// ClassWidth returns the control width of a size class.
func ClassWidth(c SizeClass) int { return classWidths[c] }

// Measure returns the fixed footprint of an interaction widget on the given
// domain. Each widget has a fixed size that depends only on its domain
// (paper: "Each widget has a fixed size only depending on the domain").
// Layout widgets are measured by the layout engine from their children.
func Measure(t Type, d Domain) Size {
	n := d.Cardinality()
	labelW := ClassWidth(ClassOf(d.MaxLabelLen()))
	titleW := ClassWidth(ClassOf(len(d.Title)))
	switch t {
	case Label:
		return Size{W: titleW, H: RowH}
	case Textbox:
		return Size{W: labelW + 2*Pad, H: RowH + 6}
	case Dropdown:
		return Size{W: labelW + 32, H: RowH + 6}
	case Slider:
		return Size{W: 180, H: RowH + 10}
	case RangeSlider:
		return Size{W: 200, H: RowH + 14}
	case Checkbox:
		return Size{W: titleW + 28, H: RowH}
	case Radio:
		// Vertical stack of n labeled circles.
		return Size{W: labelW + 28, H: n*RowH + Pad}
	case Buttons:
		// Horizontal row of n buttons.
		return Size{W: n*(labelW+2*Pad) + (n-1)*Spacing, H: RowH + 8}
	case Toggle:
		return Size{W: titleW + 52, H: RowH}
	case Tabs:
		// The tab bar; panel bodies are measured by the layout engine.
		return Size{W: n*(labelW+2*Pad) + (n-1)*2, H: RowH + 8}
	}
	return Size{}
}
