// Package widgets models the paper's widget template library: interaction
// widgets (label, textbox, dropdown, slider, range slider, checkbox, radio
// buttons, buttons, toggle, tabs) and layout widgets (horizontal, vertical,
// tabs, adder). Each interaction widget is a function w(q, u) -> q' that
// replaces a subtree at a fixed path of the current query's AST; here we
// model the pieces the cost function needs: the domain a widget exposes, its
// fixed (discretized) size, its appropriateness cost M(w), and its
// per-interaction cost used by U.
package widgets

import "fmt"

// Type enumerates the widget templates.
type Type uint8

// Interaction widget types (chosen for difftree choice nodes) and layout
// widget types (structure only).
const (
	Invalid Type = iota

	// Interaction widgets.
	Label
	Textbox
	Dropdown
	Slider
	RangeSlider
	Checkbox
	Radio
	Buttons
	Toggle
	Tabs

	// Layout widgets.
	VBox
	HBox
	Adder

	typeMax
)

var typeNames = [...]string{
	Invalid:     "invalid",
	Label:       "label",
	Textbox:     "textbox",
	Dropdown:    "dropdown",
	Slider:      "slider",
	RangeSlider: "rangeslider",
	Checkbox:    "checkbox",
	Radio:       "radio",
	Buttons:     "buttons",
	Toggle:      "toggle",
	Tabs:        "tabs",
	VBox:        "vbox",
	HBox:        "hbox",
	Adder:       "adder",
}

// String returns the widget template name.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// IsLayout reports whether the type organizes children rather than exposing
// a choice (the paper's layout widgets: horizontal, vertical, tabs, adder;
// Tabs is both — it exposes a choice and hosts per-alternative children).
func (t Type) IsLayout() bool { return t == VBox || t == HBox || t == Adder }

// IsInteraction reports whether the type exposes a user choice.
func (t Type) IsInteraction() bool { return t >= Label && t <= Tabs }

// DomainKind distinguishes what a choice node asks of the user.
type DomainKind uint8

// The three choice shapes a difftree produces.
const (
	ChoiceDomain DomainKind = iota // ANY: pick one of n alternatives
	ToggleDomain                   // OPT: on/off
	RepeatDomain                   // MULTI: zero or more instances
)

func (k DomainKind) String() string {
	switch k {
	case ChoiceDomain:
		return "choice"
	case ToggleDomain:
		return "toggle"
	case RepeatDomain:
		return "repeat"
	}
	return "unknown"
}

// Domain describes the value set a widget must expose.
type Domain struct {
	Kind    DomainKind
	Title   string   // caption, e.g. the grammar rule the choices share
	Options []string // labels for ChoiceDomain alternatives
	Scalar  bool     // every alternative is a single leaf value
	Numeric bool     // every alternative is a numeric literal
	Bounds  bool     // alternatives are BETWEEN bounds (range-slider friendly)
	Nested  bool     // some alternative contains further choice nodes
	// Complexity is the average subtree size (excess nodes beyond a leaf) of
	// the alternatives: 0 for scalar values, large for whole-query options.
	// Widgets expressing complex subtrees are ill-suited (higher M) and
	// slower to use (higher interaction cost) — this is what pushes the
	// search to factor structure out instead of enumerating whole queries.
	Complexity float64
}

// Cardinality is the number of alternatives (2 for toggles).
func (d Domain) Cardinality() int {
	if d.Kind == ToggleDomain {
		return 2
	}
	return len(d.Options)
}

// MaxLabelLen returns the longest option label length (≥ title length floor
// of 0); sizes derive from it.
func (d Domain) MaxLabelLen() int {
	m := 0
	for _, o := range d.Options {
		if len(o) > m {
			m = len(o)
		}
	}
	return m
}

// Candidates returns the interaction widget types applicable to the domain,
// i.e. those with finite appropriateness cost, in canonical order.
func Candidates(d Domain) []Type {
	var out []Type
	for t := Label; t <= Tabs; t++ {
		if !IsInf(Appropriateness(t, d)) {
			out = append(out, t)
		}
	}
	return out
}
