package widgets

import "math"

// Inf is the infinite cost marking an inapplicable widget (the paper assigns
// infinite cost to invalid interfaces).
var Inf = math.Inf(1)

// IsInf reports whether a cost is infinite.
func IsInf(c float64) bool { return math.IsInf(c, 1) }

// Cost weights of the option-complexity terms: widgets whose options denote
// large subtrees (e.g. whole queries) are penalized in appropriateness
// (ComplexityM per excess node) and in per-use effort (ComplexityU per
// excess node — scanning/reading long option labels).
const (
	ComplexityM = 0.3
	ComplexityU = 0.15
)

// Appropriateness is the paper's M(w): how well a widget template suits the
// set of subtrees it must express. The shape of the table follows Zhang,
// Sellam & Wu (2017): sliders fit numeric ranges, radio buttons fit small
// discrete domains and degrade linearly, dropdowns scale logarithmically-ish
// with a scroll penalty, textboxes accept any scalar at a high flat cost,
// and every choice widget degrades with the complexity of the subtrees its
// options denote.
func Appropriateness(t Type, d Domain) float64 {
	n := float64(d.Cardinality())
	switch d.Kind {
	case ToggleDomain:
		switch t {
		case Toggle:
			return 0.4
		case Checkbox:
			return 0.5
		}
		return Inf

	case RepeatDomain:
		// Only the adder layout widget expresses repetition; it is scored
		// here so the cost function can treat it uniformly.
		if t == Adder {
			return 2.0
		}
		return Inf

	case ChoiceDomain:
		if n < 2 {
			return Inf // nothing to choose
		}
		pen := ComplexityM * d.Complexity
		switch t {
		case Slider:
			if d.Numeric && d.Scalar && !d.Nested {
				return 1.0 + 0.02*n + pen
			}
			return Inf
		case RangeSlider:
			if d.Numeric && d.Scalar && d.Bounds && !d.Nested {
				return 0.8 + 0.02*n + pen
			}
			return Inf
		case Dropdown:
			if d.Nested {
				return Inf // alternatives with inner widgets need tabs
			}
			if n > 60 {
				return Inf
			}
			return 2.0 + 0.08*n + pen
		case Radio:
			if d.Nested || n > 8 {
				return Inf
			}
			return 0.3 + 0.35*n + pen
		case Buttons:
			if d.Nested || n > 10 {
				return Inf
			}
			return 0.3 + 0.3*n + pen
		case Textbox:
			if d.Scalar && !d.Nested {
				return 5.0 + pen
			}
			return Inf
		case Tabs:
			if n > 6 {
				return Inf
			}
			return 1.5 + 0.5*n + pen
		}
		return Inf
	}
	return Inf
}

// InteractionCost is the per-use effort of changing a widget's value; the U
// term of the paper's cost function sums it over the widgets that must
// change between consecutive log queries.
func InteractionCost(t Type, d Domain) float64 {
	// Scanning/reading effort grows with the complexity of the options the
	// widget shows (whole-query options are slow to read and compare).
	pen := 0.0
	if d.Kind == ChoiceDomain {
		pen = ComplexityU * d.Complexity
	}
	switch t {
	case Toggle, Checkbox:
		return 0.5
	case Radio, Buttons:
		return 1.0 + pen
	case Slider:
		return 1.2
	case RangeSlider:
		return 1.5
	case Tabs:
		return 1.5 + pen
	case Dropdown:
		return 2.0 + pen
	case Textbox:
		// Typing effort grows with expected value length.
		return 3.0 + 0.2*float64(d.MaxLabelLen()) + pen
	case Adder:
		return 3.0
	case Label:
		return 0
	}
	return 1.0
}
