package widgets

import (
	"strings"
	"testing"
)

func choiceDomain(opts ...string) Domain {
	return Domain{Kind: ChoiceDomain, Title: "t", Options: opts, Scalar: true}
}

func numericDomain(opts ...string) Domain {
	d := choiceDomain(opts...)
	d.Numeric = true
	return d
}

func TestTypeString(t *testing.T) {
	if Dropdown.String() != "dropdown" || Adder.String() != "adder" {
		t.Error("names wrong")
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Error("unknown type name")
	}
}

func TestTypeClasses(t *testing.T) {
	for _, lt := range []Type{VBox, HBox, Adder} {
		if !lt.IsLayout() {
			t.Errorf("%s should be layout", lt)
		}
		if lt.IsInteraction() {
			t.Errorf("%s should not be interaction", lt)
		}
	}
	for _, it := range []Type{Label, Textbox, Dropdown, Slider, RangeSlider, Checkbox, Radio, Buttons, Toggle, Tabs} {
		if !it.IsInteraction() {
			t.Errorf("%s should be interaction", it)
		}
		if it.IsLayout() {
			t.Errorf("%s should not be layout", it)
		}
	}
}

func TestDomainKindString(t *testing.T) {
	if ChoiceDomain.String() != "choice" || ToggleDomain.String() != "toggle" || RepeatDomain.String() != "repeat" {
		t.Error("domain kind names wrong")
	}
	if DomainKind(9).String() != "unknown" {
		t.Error("unknown kind")
	}
}

func TestCardinality(t *testing.T) {
	if (Domain{Kind: ToggleDomain}).Cardinality() != 2 {
		t.Error("toggle cardinality is 2")
	}
	if choiceDomain("a", "b", "c").Cardinality() != 3 {
		t.Error("choice cardinality wrong")
	}
}

func TestSliderNeedsNumeric(t *testing.T) {
	num := numericDomain("10", "100", "1000")
	if IsInf(Appropriateness(Slider, num)) {
		t.Error("slider should accept numeric scalars")
	}
	str := choiceDomain("USA", "EUR")
	if !IsInf(Appropriateness(Slider, str)) {
		t.Error("slider must reject non-numeric domains")
	}
	nested := num
	nested.Nested = true
	if !IsInf(Appropriateness(Slider, nested)) {
		t.Error("slider must reject nested domains")
	}
}

func TestRangeSliderNeedsBounds(t *testing.T) {
	num := numericDomain("0", "30")
	if !IsInf(Appropriateness(RangeSlider, num)) {
		t.Error("range slider needs the bounds flag")
	}
	num.Bounds = true
	if IsInf(Appropriateness(RangeSlider, num)) {
		t.Error("range slider should accept BETWEEN bounds")
	}
}

// TestRadioDegradesWithDomainSize encodes the paper's example: "radio
// buttons are well suited for a small number of subtrees, but ill-suited
// for a large number".
func TestRadioDegradesWithDomainSize(t *testing.T) {
	small := choiceDomain("a", "b", "c")
	big := choiceDomain("a", "b", "c", "d", "e", "f", "g", "h", "i")
	cSmall := Appropriateness(Radio, small)
	if IsInf(cSmall) {
		t.Fatal("radio should accept small domains")
	}
	if !IsInf(Appropriateness(Radio, big)) {
		t.Error("radio must reject domains past the cap")
	}
	mid := choiceDomain("a", "b", "c", "d", "e", "f")
	if Appropriateness(Radio, mid) <= cSmall {
		t.Error("radio cost must grow with domain size")
	}
}

// TestRadioBeatsDropdownSmall / TestDropdownBeatsRadioLarge encode the
// crossover that drives Figure 6(a) vs (b): enumerating widgets win on small
// domains, dropdowns win as domains grow (or screens shrink).
func TestRadioBeatsDropdownSmall(t *testing.T) {
	d := choiceDomain("objid", "count")
	if Appropriateness(Radio, d) >= Appropriateness(Dropdown, d) {
		t.Error("radio should beat dropdown on a 2-option domain")
	}
}

func TestDropdownScales(t *testing.T) {
	opts := make([]string, 40)
	for i := range opts {
		opts[i] = "opt" + string(rune('a'+i%26))
	}
	d := choiceDomain(opts...)
	if IsInf(Appropriateness(Dropdown, d)) {
		t.Error("dropdown should accept 40 options")
	}
	if !IsInf(Appropriateness(Radio, d)) || !IsInf(Appropriateness(Buttons, d)) {
		t.Error("radio/buttons must reject 40 options")
	}
	huge := make([]string, 80)
	copy(huge, opts)
	for i := 40; i < 80; i++ {
		huge[i] = "x" + string(rune('a'+i%26))
	}
	if !IsInf(Appropriateness(Dropdown, choiceDomain(huge...))) {
		t.Error("dropdown must reject 80 options")
	}
}

func TestToggleDomainWidgets(t *testing.T) {
	d := Domain{Kind: ToggleDomain, Title: "Where"}
	if IsInf(Appropriateness(Toggle, d)) || IsInf(Appropriateness(Checkbox, d)) {
		t.Error("toggle/checkbox should accept OPT domains")
	}
	for _, bad := range []Type{Dropdown, Radio, Buttons, Slider, Textbox, Tabs} {
		if !IsInf(Appropriateness(bad, d)) {
			t.Errorf("%s must reject OPT domains", bad)
		}
	}
}

func TestRepeatDomainWidgets(t *testing.T) {
	d := Domain{Kind: RepeatDomain, Title: "Between"}
	if IsInf(Appropriateness(Adder, d)) {
		t.Error("adder should accept MULTI domains")
	}
	for _, bad := range []Type{Dropdown, Radio, Toggle, Textbox} {
		if !IsInf(Appropriateness(bad, d)) {
			t.Errorf("%s must reject MULTI domains", bad)
		}
	}
}

func TestNestedDomainsNeedTabs(t *testing.T) {
	d := Domain{Kind: ChoiceDomain, Options: []string{"a", "b"}, Nested: true}
	if IsInf(Appropriateness(Tabs, d)) {
		t.Error("tabs should accept nested domains")
	}
	for _, bad := range []Type{Dropdown, Radio, Buttons, Textbox, Slider} {
		if !IsInf(Appropriateness(bad, d)) {
			t.Errorf("%s must reject nested domains", bad)
		}
	}
}

func TestTextboxScalarOnly(t *testing.T) {
	scalar := choiceDomain("a", "b")
	if IsInf(Appropriateness(Textbox, scalar)) {
		t.Error("textbox accepts scalars")
	}
	sub := Domain{Kind: ChoiceDomain, Options: []string{"a", "b"}, Scalar: false}
	if !IsInf(Appropriateness(Textbox, sub)) {
		t.Error("textbox must reject subtree domains")
	}
}

func TestSingletonChoiceInvalid(t *testing.T) {
	d := choiceDomain("only")
	for ty := Label; ty <= Tabs; ty++ {
		if !IsInf(Appropriateness(ty, d)) {
			t.Errorf("%s must reject singleton domains", ty)
		}
	}
}

func TestCandidates(t *testing.T) {
	got := Candidates(numericDomain("10", "100", "1000"))
	want := map[Type]bool{Dropdown: true, Slider: true, Radio: true, Buttons: true, Textbox: true, Tabs: true}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for _, ty := range got {
		if !want[ty] {
			t.Errorf("unexpected candidate %s", ty)
		}
	}
	if cs := Candidates(Domain{Kind: ToggleDomain}); len(cs) != 2 {
		t.Errorf("toggle candidates = %v", cs)
	}
}

func TestInteractionCosts(t *testing.T) {
	d := choiceDomain("a", "b")
	if InteractionCost(Radio, d) >= InteractionCost(Dropdown, d) {
		t.Error("radio (1 click) should cost less than dropdown (2 clicks)")
	}
	if InteractionCost(Toggle, d) >= InteractionCost(Radio, d) {
		t.Error("toggle should be cheapest")
	}
	long := choiceDomain("averyveryverylongvalue", "b")
	if InteractionCost(Textbox, long) <= InteractionCost(Textbox, choiceDomain("a", "b")) {
		t.Error("textbox cost should grow with value length")
	}
	if InteractionCost(Label, d) != 0 {
		t.Error("labels are not interactive")
	}
	if InteractionCost(VBox, d) != 1.0 {
		t.Error("default interaction cost")
	}
}

func TestSizeClasses(t *testing.T) {
	if ClassOf(3) != Small || ClassOf(10) != Medium || ClassOf(20) != Large {
		t.Error("class thresholds wrong")
	}
	if !(ClassWidth(Small) < ClassWidth(Medium) && ClassWidth(Medium) < ClassWidth(Large)) {
		t.Error("class widths must increase")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Error("class names wrong")
	}
	if SizeClass(9).String() != "sizeclass?" {
		t.Error("unknown class name")
	}
}

func TestMeasure(t *testing.T) {
	d3 := choiceDomain("aaa", "bbb", "ccc")
	d6 := choiceDomain("aaa", "bbb", "ccc", "ddd", "eee", "fff")

	r3, r6 := Measure(Radio, d3), Measure(Radio, d6)
	if r6.H <= r3.H {
		t.Error("radio height must grow with options")
	}
	b3, b6 := Measure(Buttons, d3), Measure(Buttons, d6)
	if b6.W <= b3.W {
		t.Error("buttons width must grow with options")
	}
	dd := Measure(Dropdown, d6)
	if dd.H != Measure(Dropdown, d3).H {
		t.Error("dropdown height is fixed (closed state)")
	}
	if dd.W <= 0 || dd.H <= 0 {
		t.Error("sizes must be positive")
	}
	// Dropdown is much shorter than radio on big domains — the narrow-screen
	// driver of Figure 6(b).
	if Measure(Dropdown, d6).H >= Measure(Radio, d6).H {
		t.Error("dropdown must be shorter than radio")
	}
	for _, ty := range []Type{Label, Textbox, Slider, RangeSlider, Checkbox, Toggle, Tabs} {
		s := Measure(ty, d3)
		if s.W <= 0 || s.H <= 0 {
			t.Errorf("%s measured %v", ty, s)
		}
	}
	if (Measure(VBox, d3) != Size{}) {
		t.Error("layout widgets are measured by the layout engine")
	}
}
