// Package benchutil holds the report plumbing shared by the benchmark
// commands (cmd/searchbench, cmd/mctsload): writing the machine-readable
// BENCH_*.json files and printing old-vs-new per-metric deltas for the CI
// compare step. Both commands follow the same conventions — a JSON report
// artifact, a readable diff against the previous run printed *before* any
// gate fires, and gates that are recorded but only enforced on machines
// that can express them.
package benchutil

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// WriteJSON marshals v indented with a trailing newline to path, or to
// stdout when path is "-".
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// DeltaPrinter returns a printer for one old -> new metric line with the
// percent change, the shared format of every -compare diff:
//
//	warm iters/sec            1234.00 ->    2345.00  (+90.0%)
func DeltaPrinter(w io.Writer) func(label string, old, new float64, unit string) {
	return func(label string, old, new float64, unit string) {
		pct := ""
		if old != 0 {
			pct = fmt.Sprintf(" (%+.1f%%)", (new-old)/old*100)
		}
		fmt.Fprintf(w, "    %-22s %10.2f -> %10.2f %s%s\n", label, old, new, unit, pct)
	}
}

// GateEnforced implements the shared gate convention: gates are always
// *recorded* in the report, but only *enforced* when the machine qualifies
// (NumCPU >= minCPUs) — an under-provisioned CI runner or a 1-CPU container
// records its numbers without failing the build. A minCPUs of 0 or less
// always qualifies.
func GateEnforced(minCPUs int) (cpus int, enforced bool) {
	cpus = runtime.NumCPU()
	return cpus, minCPUs <= 0 || cpus >= minCPUs
}
