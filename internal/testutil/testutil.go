// Package testutil holds shared test plumbing. Its one job today is seed
// determinism: every randomized test in the repository must reproduce its
// failures from a fixed seed printed in (or implied by) the test source.
package testutil

import (
	"math/rand"
	"testing/quick"
)

// QuickConfig returns a testing/quick configuration drawing from a
// fixed-seed random source. testing/quick's default Config seeds from the
// wall clock, so a property-test failure found in CI would not reproduce
// locally; routing every quick.Check through here (with a per-test seed)
// removes the repository's last time-seeded RNG.
func QuickConfig(seed int64, maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(seed))}
}
