// Package cluster groups a mixed query log into structurally coherent
// sub-logs, one interface per cluster. Real logs interleave unrelated
// analysis tasks; merging structurally unrelated queries into one difftree
// yields giant ANY roots and unusable interfaces (Zhang et al. 2017 face
// the same issue and mine one "template" per structural group). Clustering
// by AST shape similarity restores the paper's setting — each cluster is a
// coherent analysis task.
package cluster

import (
	"sort"

	"repro/internal/ast"
)

// Options tunes clustering.
type Options struct {
	// MinSimilarity in [0,1]: two queries join the same cluster when their
	// shape similarity reaches it (default 0.55).
	MinSimilarity float64
	// MaxClusters caps the number of clusters (0 = unlimited); smallest
	// clusters merge into their nearest neighbor past the cap.
	MaxClusters int
}

func (o Options) withDefaults() Options {
	if o.MinSimilarity <= 0 || o.MinSimilarity > 1 {
		o.MinSimilarity = 0.5
	}
	return o
}

// Cluster is a group of structurally similar queries, in log order.
type Cluster struct {
	Queries []*ast.Node
	Indexes []int // positions in the original log
}

// Split partitions the log into clusters using single-linkage agglomeration
// over shape similarity. The result order is deterministic: clusters sorted
// by their first query's log position.
func Split(log []*ast.Node, opt Options) []Cluster {
	opt = opt.withDefaults()
	n := len(log)
	if n == 0 {
		return nil
	}

	profiles := make([]profile, n)
	for i, q := range log {
		profiles[i] = profileOf(q)
	}

	// Union-find over single-linkage pairs.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Similarity(profiles[i], profiles[j]) >= opt.MinSimilarity {
				union(i, j)
			}
		}
	}

	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	clusters := make([]Cluster, 0, len(roots))
	for _, r := range roots {
		var c Cluster
		for _, i := range groups[r] {
			c.Queries = append(c.Queries, log[i])
			c.Indexes = append(c.Indexes, i)
		}
		clusters = append(clusters, c)
	}

	// Enforce MaxClusters by repeatedly merging the smallest cluster into
	// its most similar peer.
	for opt.MaxClusters > 0 && len(clusters) > opt.MaxClusters {
		smallest := 0
		for i, c := range clusters {
			if len(c.Queries) < len(clusters[smallest].Queries) {
				smallest = i
			}
		}
		bestPeer, bestSim := -1, -1.0
		for i, c := range clusters {
			if i == smallest {
				continue
			}
			s := Similarity(profileOf(c.Queries[0]), profileOf(clusters[smallest].Queries[0]))
			if s > bestSim {
				bestPeer, bestSim = i, s
			}
		}
		merged := clusters[bestPeer]
		merged.Queries = append(merged.Queries, clusters[smallest].Queries...)
		merged.Indexes = append(merged.Indexes, clusters[smallest].Indexes...)
		clusters[bestPeer] = merged
		clusters = append(clusters[:smallest], clusters[smallest+1:]...)
	}

	// Restore intra-cluster log order and deterministic cluster order.
	for i := range clusters {
		c := &clusters[i]
		order := make([]int, len(c.Indexes))
		for k := range order {
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return c.Indexes[order[a]] < c.Indexes[order[b]] })
		qs := make([]*ast.Node, len(order))
		idx := make([]int, len(order))
		for k, o := range order {
			qs[k], idx[k] = c.Queries[o], c.Indexes[o]
		}
		c.Queries, c.Indexes = qs, idx
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].Indexes[0] < clusters[b].Indexes[0] })
	return clusters
}

// profile is a bag of structural features of one query.
type profile map[string]int

// profileOf extracts (kind, interior-value) features with parent context:
// "Select/Where", "BiExpr:=", "FuncExpr:count", column names, table names.
// Literal leaf values are excluded so queries differing only in constants
// profile identically.
func profileOf(q *ast.Node) profile {
	p := make(profile)
	var walk func(n *ast.Node, parentKind ast.Kind)
	walk = func(n *ast.Node, parentKind ast.Kind) {
		key := parentKind.String() + "/" + n.Kind.String()
		p[key]++
		switch n.Kind {
		case ast.KindBiExpr, ast.KindFuncExpr, ast.KindSortKey:
			p[n.Kind.String()+":"+n.Value]++
		case ast.KindColExpr, ast.KindTable:
			p[n.Kind.String()+"="+n.Value]++
		}
		for _, c := range n.Children {
			walk(c, n.Kind)
		}
	}
	walk(q, ast.KindInvalid)
	return p
}

// Similarity is the cosine-free Jaccard-style overlap of two profiles:
// sum(min)/sum(max) over the united feature set, in [0,1].
func Similarity(a, b profile) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	mins, maxs := 0, 0
	seen := map[string]bool{}
	for k, av := range a {
		bv := b[k]
		seen[k] = true
		mins += min(av, bv)
		maxs += max(av, bv)
	}
	for k, bv := range b {
		if !seen[k] {
			maxs += bv
		}
	}
	if maxs == 0 {
		return 1
	}
	return float64(mins) / float64(maxs)
}
