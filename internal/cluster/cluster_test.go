package cluster

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func parseAll(t testing.TB, srcs ...string) []*ast.Node {
	t.Helper()
	out := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

func TestSplitSeparatesUnrelatedTasks(t *testing.T) {
	// Two interleaved tasks: SDSS-style scans and sales aggregates.
	log := parseAll(t,
		"select top 10 objid from stars where u between 0 and 30",
		"select region, sum(revenue) from sales where year = 2019 group by region",
		"select top 100 objid from stars where u between 5 and 25",
		"select region, sum(revenue) from sales where year = 2020 group by region",
		"select top 1000 objid from stars where u between 1 and 29",
	)
	cs := Split(log, Options{})
	if len(cs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cs))
	}
	if len(cs[0].Queries) != 3 || len(cs[1].Queries) != 2 {
		t.Errorf("cluster sizes: %d, %d", len(cs[0].Queries), len(cs[1].Queries))
	}
	// Log order preserved inside clusters.
	if cs[0].Indexes[0] != 0 || cs[0].Indexes[1] != 2 || cs[0].Indexes[2] != 4 {
		t.Errorf("cluster 0 indexes: %v", cs[0].Indexes)
	}
	if cs[1].Indexes[0] != 1 {
		t.Errorf("cluster order: %v", cs[1].Indexes)
	}
}

func TestSplitKeepsLiteralVariantsTogether(t *testing.T) {
	// The SDSS log differs only in tables/literals/aggregates; it should
	// remain one cluster (it is one analysis task).
	log := workload.SDSSLog()
	cs := Split(log, Options{})
	if len(cs) != 1 {
		for i, c := range cs {
			t.Logf("cluster %d: %d queries", i, len(c.Queries))
		}
		t.Fatalf("SDSS log should be a single cluster, got %d", len(cs))
	}
	if len(cs[0].Queries) != 10 {
		t.Errorf("queries = %d", len(cs[0].Queries))
	}
}

func TestSplitMaxClusters(t *testing.T) {
	log := parseAll(t,
		"select a from t1",
		"select region, sum(x) from sales group by region",
		"select top 5 objid from stars where u between 0 and 1",
	)
	cs := Split(log, Options{MaxClusters: 2, MinSimilarity: 0.99})
	if len(cs) != 2 {
		t.Fatalf("MaxClusters ignored: %d clusters", len(cs))
	}
	total := 0
	for _, c := range cs {
		total += len(c.Queries)
	}
	if total != 3 {
		t.Errorf("queries lost in merge: %d", total)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	if Split(nil, Options{}) != nil {
		t.Error("empty log → nil")
	}
	one := parseAll(t, "select a from t")
	cs := Split(one, Options{})
	if len(cs) != 1 || len(cs[0].Queries) != 1 {
		t.Error("single query → single cluster")
	}
}

func TestSimilarityProperties(t *testing.T) {
	q1 := sqlparser.MustParse("select top 10 objid from stars where u between 0 and 30")
	q2 := sqlparser.MustParse("select top 99 objid from stars where u between 5 and 9")
	q3 := sqlparser.MustParse("select region, sum(revenue) from sales group by region")

	p1, p2, p3 := profileOf(q1), profileOf(q2), profileOf(q3)
	if s := Similarity(p1, p1); s != 1 {
		t.Errorf("self similarity = %f", s)
	}
	if Similarity(p1, p2) != Similarity(p2, p1) {
		t.Error("similarity must be symmetric")
	}
	// Literal-only variation scores (near-)identical; unrelated tasks score low.
	if s := Similarity(p1, p2); s < 0.95 {
		t.Errorf("literal variants similarity = %f", s)
	}
	if s := Similarity(p1, p3); s > 0.3 {
		t.Errorf("unrelated queries similarity = %f", s)
	}
	if Similarity(profile{}, profile{}) != 1 {
		t.Error("empty profiles are identical")
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MinSimilarity != 0.5 {
		t.Errorf("default MinSimilarity = %f", o.MinSimilarity)
	}
	o2 := Options{MinSimilarity: 2}.withDefaults()
	if o2.MinSimilarity != 0.5 {
		t.Error("out-of-range similarity must reset")
	}
}
