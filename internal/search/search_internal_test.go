package search

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/difftree"
	"repro/internal/rules"
	"repro/internal/workload"
)

// TestFilterMovesDoesNotMutateInput is the regression test for the
// move-slice aliasing bug: the size-cap filter used to compact in place
// (`out := ms[:0]`), overwriting the slice returned by rules.Moves. Any
// caller retaining that slice — e.g. a memoizing layer — would observe it
// silently rewritten. The filter must leave its input untouched.
func TestFilterMovesDoesNotMutateInput(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	ms := rules.Moves(init, log, rules.All())
	if len(ms) == 0 {
		t.Fatal("no moves to filter")
	}
	snapshot := make([]rules.Move, len(ms))
	copy(snapshot, ms)

	// A cap at the initial size filters aggressively: most rewrites grow the
	// tree, so the kept subset is a strict, reordered-if-in-place subset.
	out := filterMoves(init, ms, init.Size())
	if len(out) >= len(ms) {
		t.Fatalf("cap filtered nothing (kept %d of %d); the regression is not exercised", len(out), len(ms))
	}
	if !reflect.DeepEqual(ms, snapshot) {
		t.Error("filterMoves mutated its input slice")
	}
	if len(out) > 0 && &out[0] == &ms[0] {
		t.Error("filterMoves aliased its input's backing array")
	}
}

// TestMovesTwiceIdentical: enumerating the same state twice must return
// equal move lists — in particular, the first enumeration must not have
// corrupted any state the second depends on.
func TestMovesTwiceIdentical(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	sp := SpaceFor(init, log, rules.All())
	a := sp.moves(init)
	b := sp.moves(init)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("moves not stable across calls: %d vs %d moves", len(a), len(b))
	}
}

// TestSelectBestWidthOrdering covers the beam's partial selection: the
// survivors must be exactly the width lowest-cost candidates, in ascending
// (cost, hash) order, independent of input permutation — including ties.
func TestSelectBestWidthOrdering(t *testing.T) {
	base := []scored{
		{c: 3.0, h: 10}, {c: 1.0, h: 40}, {c: 2.0, h: 20}, {c: 1.0, h: 30},
		{c: 5.0, h: 50}, {c: 2.0, h: 60}, {c: 0.5, h: 70},
	}
	want := []scored{{c: 0.5, h: 70}, {c: 1.0, h: 30}, {c: 1.0, h: 40}, {c: 2.0, h: 20}}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		in := make([]scored, len(base))
		copy(in, base)
		rng.Shuffle(len(in), func(i, j int) { in[i], in[j] = in[j], in[i] })
		got := selectBest(in, 4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: selectBest = %+v, want %+v", trial, got, want)
		}
	}

	if got := selectBest([]scored{{c: 1, h: 1}}, 4); len(got) != 1 {
		t.Errorf("width larger than input must keep everything, got %d", len(got))
	}
	if got := selectBest(nil, 4); len(got) != 0 {
		t.Errorf("empty input must stay empty, got %d", len(got))
	}
}
