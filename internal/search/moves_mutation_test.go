package search

import (
	"context"
	"testing"

	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/rules"
	"repro/internal/workload"
)

// TestStrategiesDoNotMutateCachedMoves is the cache-aliasing regression test
// for the whole consumer surface of Engine.Moves: the engine hands every
// caller the same cache-resident slice, so any strategy that compacts,
// sorts, or rewrites it in place corrupts the memoized answer for every
// later caller. Run all strategies over a shared engine, then verify the
// cached slice — including each move's path ints, which the snapshot
// deep-copies so shared backing arrays cannot mask a write — is untouched.
func TestStrategiesDoNotMutateCachedMoves(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	eng := eval.New(eval.Config{
		Log: log, Rules: rules.All(), SizeCap: SizeCap(init), Samples: 1, Seed: 1,
	}, eval.NewCache(0))
	sp := SpaceFor(init, log, rules.All())
	sp.Eng = eng

	cached := eng.Moves(init)
	if len(cached) == 0 {
		t.Fatal("no moves at the initial state")
	}
	snap := make([]rules.Move, len(cached))
	for i, m := range cached {
		snap[i] = rules.Move{Rule: m.Rule, Path: append(difftree.Path(nil), m.Path...)}
	}

	obj := func(d *difftree.Node) float64 { return float64(d.Size()) }
	ctx := context.Background()
	Random(ctx, init, sp, obj, 4, 6, 3)
	Greedy(ctx, init, sp, obj, 4)
	Beam(ctx, init, sp, obj, 3, 3)
	Exhaustive(ctx, init, sp, obj, 200)
	eng.Neighbors(init)

	if again := eng.Moves(init); !movesEqual(again, snap) {
		t.Errorf("cached move slice rewritten by a consumer:\n got %v\nwant %v", again, snap)
	}
	if !movesEqual(cached, snap) {
		t.Errorf("retained move slice rewritten in place:\n got %v\nwant %v", cached, snap)
	}
}

// movesEqual compares move lists by value, treating nil and empty paths as
// equal (reflect.DeepEqual would not).
func movesEqual(a, b []rules.Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rule != b[i].Rule || len(a[i].Path) != len(b[i].Path) {
			return false
		}
		for j := range a[i].Path {
			if a[i].Path[j] != b[i].Path[j] {
				return false
			}
		}
	}
	return true
}
