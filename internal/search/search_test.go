package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/rules"
	"repro/internal/workload"
)

func TestGreedyImproves(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(1))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 3, rng)
	}
	res := Greedy(init, log, rules.All(), obj, 30)
	if res.BestCost > obj(init) {
		t.Errorf("greedy regressed: %f", res.BestCost)
	}
	if res.Evals == 0 || res.States == 0 {
		t.Error("counters empty")
	}
	if !difftree.ExpressibleAll(res.Best, log) {
		t.Error("greedy lost queries")
	}
}

func TestRandomFindsSomething(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(2))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 2, rng)
	}
	res := Random(init, log, rules.All(), obj, 4, 6, 7)
	if math.IsInf(res.BestCost, 1) {
		t.Error("random found nothing finite")
	}
	if res.States < 2 {
		t.Error("random never moved")
	}
}

func TestBeamAtLeastGreedy(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	// Deterministic objective (k=0: first assignment only) so beam ⊇ greedy
	// comparisons are meaningful.
	rng := rand.New(rand.NewSource(3))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 0, rng)
	}
	g := Greedy(init, log, rules.All(), obj, 10)
	b := Beam(init, log, rules.All(), obj, 3, 10)
	if b.BestCost > g.BestCost+1e-9 {
		t.Errorf("beam(3) worse than greedy: %f vs %f", b.BestCost, g.BestCost)
	}
}

func TestExhaustiveTinySpace(t *testing.T) {
	// Two queries differing in one literal: the space is tiny.
	log := workload.PaperFigure1Log()[:2]
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(4))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 0, rng)
	}
	res, complete := Exhaustive(init, log, rules.All(), obj, 3000)
	if !complete {
		t.Logf("space larger than cap (states=%d)", res.States)
	}
	// Exhaustive (even capped) must beat or match greedy.
	g := Greedy(init, log, rules.All(), obj, 10)
	if complete && res.BestCost > g.BestCost+1e-9 {
		t.Errorf("exhaustive worse than greedy: %f vs %f", res.BestCost, g.BestCost)
	}
	if res.States == 0 {
		t.Error("no states")
	}
}

func TestExhaustiveCap(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	obj := func(d *difftree.Node) float64 { return float64(d.Size()) }
	res, complete := Exhaustive(init, log, rules.All(), obj, 5)
	if complete {
		t.Error("cap of 5 must not complete")
	}
	if res.States != 5 {
		t.Errorf("states = %d, want 5", res.States)
	}
}

func TestRandomDeterministicSeed(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	obj := func(d *difftree.Node) float64 { return float64(d.Size()) }
	a := Random(init, log, rules.All(), obj, 3, 5, 11)
	b := Random(init, log, rules.All(), obj, 3, 5, 11)
	if a.BestCost != b.BestCost || a.States != b.States {
		t.Error("random search must be deterministic per seed")
	}
}
