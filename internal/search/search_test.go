package search_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/rules"
	"repro/internal/search"
	"repro/internal/workload"
)

// spaceFor builds the shared strategy state space used across these tests,
// through the same constructor the engine uses.
func spaceFor(init *difftree.Node, log []*ast.Node) search.Space {
	return search.SpaceFor(init, log, rules.All())
}

func TestGreedyImproves(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(1))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 3, rng)
	}
	res := search.Greedy(context.Background(), init, spaceFor(init, log), obj, 30)
	if res.BestCost > obj(init) {
		t.Errorf("greedy regressed: %f", res.BestCost)
	}
	if res.Evals == 0 || res.States == 0 {
		t.Error("counters empty")
	}
	if !difftree.ExpressibleAll(res.Best, log) {
		t.Error("greedy lost queries")
	}
}

func TestRandomFindsSomething(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(2))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 2, rng)
	}
	res := search.Random(context.Background(), init, spaceFor(init, log), obj, 4, 6, 7)
	if math.IsInf(res.BestCost, 1) {
		t.Error("random found nothing finite")
	}
	if res.States < 2 {
		t.Error("random never moved")
	}
}

func TestBeamAtLeastGreedy(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	// Deterministic objective (k=0: first assignment only) so beam ⊇ greedy
	// comparisons are meaningful.
	rng := rand.New(rand.NewSource(3))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 0, rng)
	}
	g := search.Greedy(context.Background(), init, spaceFor(init, log), obj, 10)
	b := search.Beam(context.Background(), init, spaceFor(init, log), obj, 3, 10)
	if b.BestCost > g.BestCost+1e-9 {
		t.Errorf("beam(3) worse than greedy: %f vs %f", b.BestCost, g.BestCost)
	}
}

func TestExhaustiveTinySpace(t *testing.T) {
	// Two queries differing in one literal: the space is tiny.
	log := workload.PaperFigure1Log()[:2]
	init, _ := difftree.Initial(log)
	model := cost.Default(layout.Wide)
	rng := rand.New(rand.NewSource(4))
	obj := func(d *difftree.Node) float64 {
		return core.StateCost(d, log, model, 0, rng)
	}
	res, complete := search.Exhaustive(context.Background(), init, spaceFor(init, log), obj, 3000)
	if !complete {
		t.Logf("space larger than cap (states=%d)", res.States)
	}
	// Exhaustive (even capped) must beat or match greedy.
	g := search.Greedy(context.Background(), init, spaceFor(init, log), obj, 10)
	if complete && res.BestCost > g.BestCost+1e-9 {
		t.Errorf("exhaustive worse than greedy: %f vs %f", res.BestCost, g.BestCost)
	}
	if res.States == 0 {
		t.Error("no states")
	}
}

func TestExhaustiveCap(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	obj := func(d *difftree.Node) float64 { return float64(d.Size()) }
	res, complete := search.Exhaustive(context.Background(), init, spaceFor(init, log), obj, 5)
	if complete {
		t.Error("cap of 5 must not complete")
	}
	if res.States != 5 {
		t.Errorf("states = %d, want 5", res.States)
	}
}

func TestCancelledContextReturnsBestSoFar(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	obj := func(d *difftree.Node) float64 { return float64(d.Size()) }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() search.Result{
		"random": func() search.Result { return search.Random(ctx, init, spaceFor(init, log), obj, 100, 100, 1) },
		"greedy": func() search.Result { return search.Greedy(ctx, init, spaceFor(init, log), obj, 100) },
		"beam":   func() search.Result { return search.Beam(ctx, init, spaceFor(init, log), obj, 5, 100) },
		"exhaustive": func() search.Result {
			r, complete := search.Exhaustive(ctx, init, spaceFor(init, log), obj, 1<<20)
			if complete {
				t.Errorf("exhaustive: cancelled sweep must not report completeness")
			}
			return r
		},
	} {
		res := run()
		if !res.Interrupted {
			t.Errorf("%s: cancelled search must report Interrupted", name)
		}
		if res.Best == nil {
			t.Errorf("%s: cancelled search must return best-so-far (at least init)", name)
		}
		// Only the pre-cancellation init evaluation may have happened.
		if res.Evals > 1 {
			t.Errorf("%s: cancelled search kept evaluating (%d evals)", name, res.Evals)
		}
	}
}

func TestRandomDeterministicSeed(t *testing.T) {
	log := workload.PaperFigure1Log()
	init, _ := difftree.Initial(log)
	obj := func(d *difftree.Node) float64 { return float64(d.Size()) }
	a := search.Random(context.Background(), init, spaceFor(init, log), obj, 3, 5, 11)
	b := search.Random(context.Background(), init, spaceFor(init, log), obj, 3, 5, 11)
	if a.BestCost != b.BestCost || a.States != b.States {
		t.Error("random search must be deterministic per seed")
	}
}
