// Package search implements the non-MCTS search strategies used as
// comparators in the evaluation: uniform random walks, greedy hill-climbing,
// beam search, and exhaustive breadth-first enumeration (feasible only for
// tiny inputs). All operate on the same difftree state space and legality
// gate as the MCTS search, differing only in exploration policy.
//
// Every searcher is anytime: it takes a context.Context and returns its
// best-so-far result promptly when the context is cancelled or its deadline
// passes (Result.Interrupted reports that the budget was cut short).
package search

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/eval"
	"repro/internal/rules"
)

// Objective scores a difftree; lower is better (interface cost).
type Objective func(d *difftree.Node) float64

// Space is the shared search space: the query log and rule set that gate
// legal moves, plus the same tree-size cap the MCTS search prunes with
// (states larger than SizeCap are never visited; 0 means uncapped).
// Sharing one Space across strategies is what makes their results
// comparable — and keeps exhaustive enumeration finite.
type Space struct {
	Log     []*ast.Node
	Rules   []rules.Rule
	SizeCap int
	// Eng, when non-nil, supplies memoized legality verdicts and legal move
	// sets from the shared evaluation engine (the same transposition cache
	// the MCTS workers use). Move enumeration order — and therefore every
	// search trajectory — is identical with and without it.
	Eng *eval.Engine
}

// SpaceFor returns the canonical Space rooted at init: moves gated by the
// given rule set with the size cap SizeCap(init). Tests and the engine both
// build their spaces through here so the prune bound cannot drift.
func SpaceFor(init *difftree.Node, log []*ast.Node, set []rules.Rule) Space {
	return Space{Log: log, Rules: set, SizeCap: SizeCap(init)}
}

// SizeCap is the shared state-size prune bound (the paper lists pruning as
// a needed optimization): states larger than 4x the initial tree are
// skipped, with a floor for tiny inputs.
func SizeCap(init *difftree.Node) int {
	if cap := 4 * init.Size(); cap > 64 {
		return cap
	}
	return 64
}

// moves enumerates the legal moves from d. Both paths apply the same gates
// — rule pattern, expressibility, and the size cap — so the move list (and
// therefore every rng draw over it) is identical with and without the
// engine; the engine only memoizes the answer.
func (sp Space) moves(d *difftree.Node) []rules.Move {
	if sp.Eng != nil {
		return sp.Eng.Moves(d)
	}
	return filterMoves(d, rules.Moves(d, sp.Log, sp.Rules), sp.SizeCap)
}

// filterMoves returns the moves whose application keeps d within sizeCap.
// The filter writes into a fresh slice — never in place — because ms belongs
// to the enumerator that produced it: an in-place `ms[:0]` compaction would
// silently corrupt any copy of that slice a memoizing layer (or any other
// caller) retains.
func filterMoves(d *difftree.Node, ms []rules.Move, sizeCap int) []rules.Move {
	if sizeCap <= 0 {
		return ms
	}
	out := make([]rules.Move, 0, len(ms))
	for _, m := range ms {
		if next, err := rules.ApplyMove(d, m); err == nil && next.Size() <= sizeCap {
			out = append(out, m)
		}
	}
	return out
}

// apply performs a move, rejecting oversized results.
func (sp Space) apply(d *difftree.Node, m rules.Move) (*difftree.Node, bool) {
	next, err := rules.ApplyMove(d, m)
	if err != nil {
		return nil, false
	}
	if sp.SizeCap > 0 && next.Size() > sp.SizeCap {
		return nil, false
	}
	return next, true
}

// Result reports a search outcome.
type Result struct {
	Best        *difftree.Node
	BestCost    float64
	Evals       int  // objective evaluations
	States      int  // states visited/generated
	Interrupted bool // the context ended the search early
}

// track updates the incumbent.
func (r *Result) track(d *difftree.Node, c float64) {
	if c < r.BestCost {
		r.Best, r.BestCost = d, c
	}
}

// cancelled polls ctx without blocking and records the interruption.
func (r *Result) cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		r.Interrupted = true
		return true
	default:
		return false
	}
}

// Random performs `walks` independent uniform random walks of length ≤ depth
// from init, evaluating every visited state.
func Random(ctx context.Context, init *difftree.Node, sp Space, obj Objective, walks, depth int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	for w := 0; w < walks; w++ {
		cur := init
		for s := 0; s < depth; s++ {
			if res.cancelled(ctx) {
				return res
			}
			ms := sp.moves(cur)
			if len(ms) == 0 {
				break
			}
			next, ok := sp.apply(cur, ms[rng.Intn(len(ms))])
			if !ok {
				break
			}
			cur = next
			res.States++
			c := obj(cur)
			res.Evals++
			res.track(cur, c)
		}
	}
	return res
}

// Greedy hill-climbs: at each step it applies the single move whose
// resulting state has the lowest objective, stopping at a local optimum or
// after maxSteps.
func Greedy(ctx context.Context, init *difftree.Node, sp Space, obj Objective, maxSteps int) Result {
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	cur, curCost := init, res.BestCost
	for s := 0; s < maxSteps; s++ {
		ms := sp.moves(cur)
		var best *difftree.Node
		bestCost := curCost
		for _, m := range ms {
			if res.cancelled(ctx) {
				return res
			}
			next, ok := sp.apply(cur, m)
			if !ok {
				continue
			}
			res.States++
			c := obj(next)
			res.Evals++
			if c < bestCost {
				best, bestCost = next, c
			}
		}
		if best == nil {
			break // local optimum
		}
		cur, curCost = best, bestCost
		res.track(cur, curCost)
	}
	return res
}

// scored is one beam candidate: the state, its cost, and its structural
// hash (unique within a generation thanks to the dedup set, which makes the
// hash a total deterministic tie-break for equal costs).
type scored struct {
	d *difftree.Node
	c float64
	h uint64
}

// selectBest sorts candidates by (cost, hash) and keeps the width best.
// Cost ties are broken on the structural hash rather than slice position, so
// the survivors are a deterministic function of the candidate *set* — and
// sort.Slice replaces the former O(n²) pairwise pass (generations of a few
// thousand candidates made that pass the beam's hot spot).
func selectBest(next []scored, width int) []scored {
	sort.Slice(next, func(i, j int) bool {
		if next[i].c != next[j].c {
			return next[i].c < next[j].c
		}
		return next[i].h < next[j].h
	})
	if len(next) > width {
		next = next[:width]
	}
	return next
}

// Beam keeps the `width` best states per generation for maxSteps
// generations, deduplicating by structural hash.
func Beam(ctx context.Context, init *difftree.Node, sp Space, obj Objective, width, maxSteps int) Result {
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	frontier := []scored{{init, res.BestCost, difftree.Hash(init)}}
	seen := map[uint64]bool{difftree.Hash(init): true}

	for s := 0; s < maxSteps && len(frontier) > 0; s++ {
		var next []scored
		for _, st := range frontier {
			for _, m := range sp.moves(st.d) {
				if res.cancelled(ctx) {
					return res
				}
				nd, ok := sp.apply(st.d, m)
				if !ok {
					continue
				}
				h := difftree.Hash(nd)
				if seen[h] {
					continue
				}
				seen[h] = true
				res.States++
				c := obj(nd)
				res.Evals++
				res.track(nd, c)
				next = append(next, scored{nd, c, h})
			}
		}
		frontier = selectBest(next, width)
	}
	return res
}

// Exhaustive runs breadth-first enumeration with a visited set until the
// space is exhausted or maxStates states have been generated; it returns
// the optimum over everything visited (and reports completeness — false
// when the cap was hit or the context ended the sweep).
func Exhaustive(ctx context.Context, init *difftree.Node, sp Space, obj Objective, maxStates int) (Result, bool) {
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	queue := []*difftree.Node{init}
	seen := map[uint64]bool{difftree.Hash(init): true}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range sp.moves(cur) {
			if res.cancelled(ctx) {
				return res, false
			}
			next, ok := sp.apply(cur, m)
			if !ok {
				continue
			}
			h := difftree.Hash(next)
			if seen[h] {
				continue
			}
			seen[h] = true
			res.States++
			c := obj(next)
			res.Evals++
			res.track(next, c)
			if res.States >= maxStates {
				return res, false
			}
			queue = append(queue, next)
		}
	}
	return res, true
}

// Inf is a convenience for objectives.
var Inf = math.Inf(1)
