// Package search implements the non-MCTS search strategies used as
// comparators in the evaluation: uniform random walks, greedy hill-climbing,
// beam search, and exhaustive breadth-first enumeration (feasible only for
// tiny inputs). All operate on the same difftree state space and legality
// gate as the MCTS search, differing only in exploration policy.
package search

import (
	"math"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/rules"
)

// Objective scores a difftree; lower is better (interface cost).
type Objective func(d *difftree.Node) float64

// Result reports a search outcome.
type Result struct {
	Best     *difftree.Node
	BestCost float64
	Evals    int // objective evaluations
	States   int // states visited/generated
}

// track updates the incumbent.
func (r *Result) track(d *difftree.Node, c float64) {
	if c < r.BestCost {
		r.Best, r.BestCost = d, c
	}
}

// Random performs `walks` independent uniform random walks of length ≤ depth
// from init, evaluating every visited state.
func Random(init *difftree.Node, log []*ast.Node, set []rules.Rule, obj Objective, walks, depth int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	for w := 0; w < walks; w++ {
		cur := init
		for s := 0; s < depth; s++ {
			ms := rules.Moves(cur, log, set)
			if len(ms) == 0 {
				break
			}
			next, err := rules.ApplyMove(cur, ms[rng.Intn(len(ms))])
			if err != nil {
				break
			}
			cur = next
			res.States++
			c := obj(cur)
			res.Evals++
			res.track(cur, c)
		}
	}
	return res
}

// Greedy hill-climbs: at each step it applies the single move whose
// resulting state has the lowest objective, stopping at a local optimum or
// after maxSteps.
func Greedy(init *difftree.Node, log []*ast.Node, set []rules.Rule, obj Objective, maxSteps int) Result {
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	cur, curCost := init, res.BestCost
	for s := 0; s < maxSteps; s++ {
		ms := rules.Moves(cur, log, set)
		var best *difftree.Node
		bestCost := curCost
		for _, m := range ms {
			next, err := rules.ApplyMove(cur, m)
			if err != nil {
				continue
			}
			res.States++
			c := obj(next)
			res.Evals++
			if c < bestCost {
				best, bestCost = next, c
			}
		}
		if best == nil {
			break // local optimum
		}
		cur, curCost = best, bestCost
		res.track(cur, curCost)
	}
	return res
}

// Beam keeps the `width` best states per generation for maxSteps
// generations, deduplicating by structural hash.
func Beam(init *difftree.Node, log []*ast.Node, set []rules.Rule, obj Objective, width, maxSteps int) Result {
	type scored struct {
		d *difftree.Node
		c float64
	}
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	frontier := []scored{{init, res.BestCost}}
	seen := map[uint64]bool{difftree.Hash(init): true}

	for s := 0; s < maxSteps && len(frontier) > 0; s++ {
		var next []scored
		for _, st := range frontier {
			for _, m := range rules.Moves(st.d, log, set) {
				nd, err := rules.ApplyMove(st.d, m)
				if err != nil {
					continue
				}
				h := difftree.Hash(nd)
				if seen[h] {
					continue
				}
				seen[h] = true
				res.States++
				c := obj(nd)
				res.Evals++
				res.track(nd, c)
				next = append(next, scored{nd, c})
			}
		}
		// Partial selection: keep the width best.
		for i := 0; i < len(next); i++ {
			for j := i + 1; j < len(next); j++ {
				if next[j].c < next[i].c {
					next[i], next[j] = next[j], next[i]
				}
			}
		}
		if len(next) > width {
			next = next[:width]
		}
		frontier = next
	}
	return res
}

// Exhaustive runs breadth-first enumeration with a visited set until the
// space is exhausted or maxStates states have been generated; it returns
// the optimum over everything visited (and reports completeness).
func Exhaustive(init *difftree.Node, log []*ast.Node, set []rules.Rule, obj Objective, maxStates int) (Result, bool) {
	res := Result{Best: init, BestCost: obj(init), Evals: 1, States: 1}
	queue := []*difftree.Node{init}
	seen := map[uint64]bool{difftree.Hash(init): true}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range rules.Moves(cur, log, set) {
			next, err := rules.ApplyMove(cur, m)
			if err != nil {
				continue
			}
			h := difftree.Hash(next)
			if seen[h] {
				continue
			}
			seen[h] = true
			res.States++
			c := obj(next)
			res.Evals++
			res.track(next, c)
			if res.States >= maxStates {
				return res, false
			}
			queue = append(queue, next)
		}
	}
	return res, true
}

// Inf is a convenience for objectives.
var Inf = math.Inf(1)
