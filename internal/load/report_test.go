package load

import (
	"runtime"
	"testing"
	"time"
)

// sample builds a completed OK sample dispatched at startUS with the given
// latency.
func sample(class, op string, startUS, latencyUS int64) Sample {
	return Sample{Class: class, Op: op, Status: 200, StartUS: startUS, LatencyUS: latencyUS}
}

// TestReportWarmupBoundaryAttribution pins the dispatch-time attribution
// policy: a sample's window is decided by when it was *dispatched*, never by
// when it completed. The op dispatched one microsecond before the warmup
// boundary — completing long after it — is a warmup sample; the op
// dispatched exactly at the boundary is measured.
func TestReportWarmupBoundaryAttribution(t *testing.T) {
	spec := &Spec{Name: "boundary", WarmupMS: 100, DurationMS: 1000}
	warmupUS := spec.WarmupMS * 1000
	res := &RunResult{
		Samples: []Sample{
			// Dispatched during warmup, completing well inside the measured
			// window (latency crosses the boundary): still warmup.
			sample("a", "gen", warmupUS-1, 500_000),
			// Dispatched exactly at the boundary: measured.
			sample("a", "gen", warmupUS, 10),
			// Plainly warmup and plainly measured, for the arithmetic.
			sample("a", "gen", 0, 5),
			sample("a", "gen", warmupUS+1000, 5),
		},
		Dispatched: 5, // one event still in flight at run end
		Elapsed:    time.Second,
	}
	rep := BuildReport(spec, res)
	if rep.WarmupSamples != 2 {
		t.Errorf("warmup_samples = %d, want 2 (dispatch-before-boundary ops, including the one completing after it)", rep.WarmupSamples)
	}
	if rep.Measured != 2 {
		t.Errorf("measured = %d, want 2 (boundary dispatch is measured)", rep.Measured)
	}
	if rep.Total.Count != rep.Measured {
		t.Errorf("total.count = %d, want %d", rep.Total.Count, rep.Measured)
	}
	// The partition accounts for every completed sample; the remainder
	// against Dispatched is in-flight work, not an attribution gap.
	if got := rep.WarmupSamples + rep.Measured; got != int64(len(res.Samples)) {
		t.Errorf("warmup+measured = %d, want %d", got, len(res.Samples))
	}
	if inflight := int64(rep.Dispatched) - rep.WarmupSamples - rep.Measured; inflight != 1 {
		t.Errorf("in-flight remainder = %d, want 1", inflight)
	}
	// The boundary-crossing warmup sample's half-second latency must not
	// leak into the measured distribution.
	if rep.Total.Latency.Max > 1 {
		t.Errorf("measured max latency %.3fms includes a warmup-dispatched sample", rep.Total.Latency.Max)
	}
}

func TestReportZeroWarmupMeasuresEverything(t *testing.T) {
	spec := &Spec{Name: "nowarmup", WarmupMS: 0, DurationMS: 1000}
	res := &RunResult{
		Samples:    []Sample{sample("a", "gen", 0, 5), sample("a", "gen", 10, 5)},
		Dispatched: 2,
	}
	rep := BuildReport(spec, res)
	if rep.WarmupSamples != 0 || rep.Measured != 2 {
		t.Errorf("warmup=%d measured=%d, want 0/2", rep.WarmupSamples, rep.Measured)
	}
}

func TestApplyGatesVerdicts(t *testing.T) {
	build := func() *Report {
		spec := &Spec{Name: "g", DurationMS: 1000}
		res := &RunResult{
			Samples:    []Sample{sample("a", "gen", 0, 2000), sample("a", "gen", 10, 3000)},
			Dispatched: 2,
		}
		return BuildReport(spec, res)
	}

	// Both gates pass: generous budgets. minCPUs 0 always enforces.
	rep := build()
	if failed := rep.ApplyGates(GateSpec{MaxP99MS: 1000, MinGoodputRPS: 0.5}, 0); len(failed) != 0 {
		t.Fatalf("unexpected failures: %+v", failed)
	}
	if !rep.GateEnforced {
		t.Error("minCPUs 0 must always enforce")
	}
	if len(rep.Gates) != 2 {
		t.Fatalf("recorded %d gates, want 2", len(rep.Gates))
	}

	// p99 over budget: exactly that gate fails, and it is still recorded.
	rep = build()
	failed := rep.ApplyGates(GateSpec{MaxP99MS: 0.001, MinGoodputRPS: 0.5}, 0)
	if len(failed) != 1 || failed[0].Name != "total_p99_ms" {
		t.Fatalf("failed = %+v, want total_p99_ms only", failed)
	}

	// Zero budgets disable their gates entirely.
	rep = build()
	if rep.ApplyGates(GateSpec{}, 0); len(rep.Gates) != 0 {
		t.Fatalf("zero budgets recorded gates: %+v", rep.Gates)
	}
}

func TestApplyGatesCPUThreshold(t *testing.T) {
	cpus := runtime.NumCPU()

	// Threshold above this machine: gates are recorded, failures reported,
	// but enforcement is off — the small-container guard.
	rep := &Report{Total: OpReport{Latency: LatencySummary{P99: 5000}, GoodputRPS: 0.01}}
	failed := rep.ApplyGates(GateSpec{MaxP99MS: 1, MinGoodputRPS: 100}, cpus+1)
	if rep.GateEnforced {
		t.Errorf("gate enforced with %d CPUs against a %d threshold", cpus, cpus+1)
	}
	if rep.GateCPUs != cpus+1 || rep.CPUs != cpus {
		t.Errorf("recorded cpus=%d gate_cpus=%d, want %d/%d", rep.CPUs, rep.GateCPUs, cpus, cpus+1)
	}
	if len(failed) != 2 {
		t.Errorf("failures must be reported even unenforced: %+v", failed)
	}

	// Threshold at or below this machine: enforced.
	rep = &Report{Total: OpReport{Latency: LatencySummary{P99: 1}, GoodputRPS: 100}}
	rep.ApplyGates(GateSpec{MaxP99MS: 10, MinGoodputRPS: 1}, cpus)
	if !rep.GateEnforced {
		t.Errorf("gate not enforced with %d CPUs against a %d threshold", cpus, cpus)
	}
}
