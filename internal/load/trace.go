package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Op kinds of a trace event.
const (
	OpGenerate = "generate" // POST /v1/generate (stateless)
	OpAppend   = "append"   // POST /v1/sessions/{id}/queries
	OpInteract = "interact" // POST /v1/sessions/{id}/interact
	OpExport   = "export"   // GET  /v1/sessions/{id}/export?format=json
)

// Event is one scheduled request of a trace. A trace is the fully resolved
// request sequence — op, target session, payload queries, per-request
// search seed — so replaying a recorded trace re-issues byte-identical
// requests without consulting the spec or any RNG.
type Event struct {
	// Seq is the event's position in the trace (0-based, strictly
	// increasing). It doubles as the tie-break for events scheduled at the
	// same microsecond.
	Seq int `json:"seq"`
	// AtUS is the scheduled dispatch time in microseconds from run start.
	AtUS int64 `json:"at_us"`
	// Class names the client class the event belongs to.
	Class string `json:"class"`
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Session is the target session id (empty for OpGenerate).
	Session string `json:"session,omitempty"`
	// Stream marks an SSE-streamed generate.
	Stream bool `json:"stream,omitempty"`
	// Queries is the payload for generate/append ops.
	Queries []string `json:"queries,omitempty"`
	// Iterations is the per-request search iteration budget.
	Iterations int `json:"iterations,omitempty"`
	// Seed is the per-request search seed (deterministic per trace).
	Seed int64 `json:"seed,omitempty"`
}

func (e *Event) validate() error {
	switch e.Op {
	case OpGenerate:
		if len(e.Queries) == 0 {
			return fmt.Errorf("event %d: generate without queries", e.Seq)
		}
	case OpAppend:
		if e.Session == "" {
			return fmt.Errorf("event %d: append without session", e.Seq)
		}
		if len(e.Queries) == 0 {
			return fmt.Errorf("event %d: append without queries", e.Seq)
		}
	case OpInteract, OpExport:
		if e.Session == "" {
			return fmt.Errorf("event %d: %s without session", e.Seq, e.Op)
		}
	default:
		return fmt.Errorf("event %d: unknown op %q", e.Seq, e.Op)
	}
	if e.AtUS < 0 {
		return fmt.Errorf("event %d: negative dispatch time", e.Seq)
	}
	return nil
}

// WriteTrace serializes events as JSONL, one event per line. Encoding is
// deterministic (fixed struct field order, no map iteration), so the same
// trace always produces the same bytes — the byte-reproducibility the
// recorded-trace format exists for.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace, validating each event and the ordering
// invariants (Seq dense from 0, dispatch times non-decreasing).
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22) // long query lists per line
	line := 0
	var lastAt int64
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		if err := ev.validate(); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		if ev.Seq != len(events) {
			return nil, fmt.Errorf("trace line %d: seq %d, want %d", line, ev.Seq, len(events))
		}
		if ev.AtUS < lastAt {
			return nil, fmt.Errorf("trace line %d: dispatch time goes backwards", line)
		}
		lastAt = ev.AtUS
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return events, nil
}
