package load

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// shortSpec is a sub-second two-class spec used by the generation and
// replay tests; rates are high so even the short horizon yields a
// substantive trace.
func shortSpec(seed int64) Spec {
	return Spec{
		Name:       "test",
		Seed:       seed,
		WarmupMS:   100,
		DurationMS: 400,
		Classes: []ClassSpec{
			{
				Name:       "steady",
				Arrival:    "poisson",
				RatePerSec: 40,
				SessionOps: 3,
				ThinkMS:    20,
				Mix:        OpMix{Generate: 1, Append: 2, Interact: 2, Export: 1},
			},
			{
				Name:        "bursty",
				Arrival:     "gamma",
				RatePerSec:  25,
				CV:          3,
				Mix:         OpMix{Generate: 1},
				InitQueries: 2,
				Stream:      true,
			},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(shortSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(shortSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed generated different traces")
	}
	c, err := Generate(shortSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical traces")
	}
	if len(a) < 10 {
		t.Fatalf("suspiciously small trace: %d events", len(a))
	}
}

func TestGenerateInvariants(t *testing.T) {
	spec := shortSpec(7)
	events, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	horizonUS := spec.Horizon().Microseconds()
	var lastAt int64
	sessionsOpened := make(map[string]bool)
	for i := range events {
		ev := &events[i]
		if ev.Seq != i {
			t.Fatalf("event %d: seq %d", i, ev.Seq)
		}
		if ev.AtUS < lastAt {
			t.Fatalf("event %d: time goes backwards", i)
		}
		lastAt = ev.AtUS
		if ev.AtUS >= horizonUS {
			t.Fatalf("event %d scheduled past the horizon", i)
		}
		if err := ev.validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if ev.Seed <= 0 {
			t.Fatalf("event %d: missing per-request seed", i)
		}
		// Session state must be created (by an append) before any
		// interact/export touches it — the generator's ordering guarantee.
		switch ev.Op {
		case OpAppend:
			sessionsOpened[ev.Session] = true
		case OpInteract, OpExport:
			if !sessionsOpened[ev.Session] {
				t.Fatalf("event %d: %s on session %q before its creating append", i, ev.Op, ev.Session)
			}
		}
	}
	byClass := make(map[string]int)
	for i := range events {
		byClass[events[i].Class]++
	}
	if byClass["steady"] == 0 || byClass["bursty"] == 0 {
		t.Fatalf("class starved: %v", byClass)
	}
}

func TestTraceRoundTripByteIdentical(t *testing.T) {
	events, err := Generate(shortSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := WriteTrace(&buf1, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, parsed) {
		t.Fatal("trace changed across write/read")
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized trace is not byte-identical")
	}
}

func TestReadTraceRejectsBadTraces(t *testing.T) {
	for name, trace := range map[string]string{
		"empty":          "",
		"bad json":       "{",
		"unknown op":     `{"seq":0,"at_us":0,"class":"c","op":"nope"}`,
		"seq gap":        `{"seq":1,"at_us":0,"class":"c","op":"generate","queries":["q"]}`,
		"time backwards": `{"seq":0,"at_us":5,"class":"c","op":"generate","queries":["q"]}` + "\n" + `{"seq":1,"at_us":4,"class":"c","op":"generate","queries":["q"]}`,
		"no session":     `{"seq":0,"at_us":0,"class":"c","op":"interact"}`,
		"no queries":     `{"seq":0,"at_us":0,"class":"c","op":"generate"}`,
	} {
		if _, err := ReadTrace(bytes.NewReader([]byte(trace))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSpecParseRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"duration_ms":100,"classses":[]}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	if _, err := ParseSpec([]byte(`{"duration_ms":100,"classes":[{"name":"a","rate_per_sec":1,"mix":{"generate":1}}]}`)); err != nil {
		t.Fatalf("minimal valid spec rejected: %v", err)
	}
}

func TestSmokeSpecValid(t *testing.T) {
	spec := SmokeSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(spec); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..10000 µs uniformly: quantiles are known exactly, and the
	// log-linear buckets must land within ~1.6% relative error.
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 5000}, {0.95, 9500}, {0.99, 9900}, {1.0, 10000}} {
		got := h.Quantile(tc.q)
		if got < tc.want || float64(got) > float64(tc.want)*1.02 {
			t.Errorf("q%.2f = %d, want [%d, %d]", tc.q, got, tc.want, int64(float64(tc.want)*1.02))
		}
	}
	if h.Max() != 10000 || h.Count() != 10000 {
		t.Fatalf("max %d count %d", h.Max(), h.Count())
	}
	if m := h.Mean(); m < 5000 || m > 5001 {
		t.Fatalf("mean %f", m)
	}
	// Quantiles never exceed the exact max even for a single sample in a
	// wide bucket.
	var single Histogram
	single.Record(1 << 20)
	if got := single.Quantile(0.99); got != 1<<20 {
		t.Fatalf("single-sample q99 %d, want clamped to max", got)
	}
	// Merge equals recording into one histogram.
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merged q%.2f differs", q)
		}
	}
}

// TestReplayOpenLoop pins the defining open-loop property: a slow server
// does not slow down dispatch. Ten arrivals 10ms apart against a handler
// that takes 300ms must all be in flight concurrently — a closed-loop
// client would take ~3s, the open-loop one ~400ms.
func TestReplayOpenLoop(t *testing.T) {
	var inflight, peak atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(300 * time.Millisecond)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	events := make([]Event, 10)
	for i := range events {
		events[i] = Event{
			Seq: i, AtUS: int64(i) * 10_000, Class: "c", Op: OpGenerate,
			Queries: []string{"SELECT Sales FROM sales WHERE cty = USA"},
		}
	}
	start := time.Now()
	res, err := Replay(context.Background(), events, Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.Dispatched != 10 || len(res.Samples) != 10 {
		t.Fatalf("dispatched %d, samples %d", res.Dispatched, len(res.Samples))
	}
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("replay took %v — arrivals were delayed by responses (closed-loop)", elapsed)
	}
	if p := peak.Load(); p < 5 {
		t.Fatalf("peak concurrency %d — open-loop dispatch should overlap slow responses", p)
	}
	for _, s := range res.Samples {
		if !s.ok() {
			t.Fatalf("sample failed: %+v", s)
		}
	}
}

// TestReplayRecordsDispatchedTrace pins record-on-replay determinism: the
// recording written during a replay is byte-identical to WriteTrace of the
// same events, so generate→record and record→replay→re-record agree.
func TestReplayRecordsDispatchedTrace(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	events, err := Generate(shortSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteTrace(&want, events); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	res, err := Replay(context.Background(), events, Options{BaseURL: ts.URL, Record: &got})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != len(events) {
		t.Fatalf("dispatched %d of %d", res.Dispatched, len(events))
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("recording differs from the trace it replayed")
	}
	// And the recording replays again: parse + byte-identical re-record.
	parsed, err := ReadTrace(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatalf("recording does not parse: %v", err)
	}
	if !reflect.DeepEqual(events, parsed) {
		t.Fatal("recording parsed to a different trace")
	}
}

// TestReplayAgainstDaemon is the end-to-end path the CI smoke job runs:
// generate a small trace, replay it against an in-process mctsuid with
// stats scraping, and build the report.
func TestReplayAgainstDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs for ~600ms of wall clock")
	}
	srv := server.New(server.Config{MaxConcurrent: 4, MaxWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := shortSpec(9)
	events, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(context.Background(), events, Options{
		BaseURL:    ts.URL,
		StatsEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != len(events) {
		t.Fatalf("dispatched %d of %d", res.Dispatched, len(events))
	}

	rep := BuildReport(&spec, res)
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.Measured == 0 {
		t.Fatal("no measured samples")
	}
	if rep.Total.OK == 0 {
		t.Fatalf("no successful requests: %+v", rep.Total)
	}
	if rep.Total.GoodputRPS <= 0 {
		t.Fatal("zero goodput")
	}
	if rep.Total.Latency.P99 <= 0 || rep.Total.Latency.P99 < rep.Total.Latency.P50 {
		t.Fatalf("bad latency summary: %+v", rep.Total.Latency)
	}
	names := make([]string, 0, len(rep.Classes))
	for _, c := range rep.Classes {
		names = append(names, c.Class)
		if c.Total.Count == 0 {
			t.Fatalf("class %q empty", c.Class)
		}
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"bursty", "steady"}) {
		t.Fatalf("classes %v", names)
	}
	// The bursty class streams: its generate cell must carry TTFE.
	for _, c := range rep.Classes {
		if c.Class != "bursty" {
			continue
		}
		for _, op := range c.Ops {
			if op.Op == OpGenerate && op.OK > 0 && op.TTFE == nil {
				t.Fatal("streamed generates reported no time-to-first-event")
			}
		}
	}
	if rep.Server == nil {
		t.Fatal("no server report despite stats scraping")
	}
	if rep.Server.ScrapePoints < 2 {
		t.Fatalf("only %d stats scrapes", rep.Server.ScrapePoints)
	}
	if rep.Server.Served == 0 {
		t.Fatal("server admission saw no served requests")
	}
	// The report must survive a JSON round trip (it is the artifact).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total.Count != rep.Total.Count {
		t.Fatal("report changed across JSON round trip")
	}
}

// TestReplayCancel stops dispatch mid-trace and verifies clean shutdown.
func TestReplayCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	events := make([]Event, 100)
	for i := range events {
		events[i] = Event{
			Seq: i, AtUS: int64(i) * 50_000, Class: "c", Op: OpGenerate,
			Queries: []string{"q"},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	res, err := Replay(ctx, events, Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched >= 100 || res.Dispatched == 0 {
		t.Fatalf("dispatched %d, want a strict mid-trace prefix", res.Dispatched)
	}
	if len(res.Samples) != res.Dispatched {
		t.Fatalf("%d samples for %d dispatched", len(res.Samples), res.Dispatched)
	}
}

// TestGammaSampler sanity-checks the Marsaglia–Tsang sampler's first two
// moments for shapes below and above 1.
func TestGammaSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []float64{0.25, 0.5, 1, 2, 4} {
		n := 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := sampleGamma(rng, k)
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		// Gamma(k, 1): mean k, variance k.
		if mean < k*0.97 || mean > k*1.03 {
			t.Errorf("k=%v: mean %v", k, mean)
		}
		if variance < k*0.9 || variance > k*1.1 {
			t.Errorf("k=%v: variance %v", k, variance)
		}
	}
}

func TestQueryLogs(t *testing.T) {
	for _, name := range []string{"figure1", "sdss", "sdss-join"} {
		qs, err := QueryLog(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(qs) == 0 {
			t.Fatalf("%s: empty log", name)
		}
	}
	if _, err := QueryLog("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBuildReportWarmupFilter(t *testing.T) {
	spec := Spec{Name: "w", Seed: 1, WarmupMS: 1000, DurationMS: 1000,
		Classes: []ClassSpec{{Name: "c", RatePerSec: 1, Mix: OpMix{Generate: 1}}}}
	res := &RunResult{
		Samples: []Sample{
			{Class: "c", Op: OpGenerate, Status: 200, StartUS: 500_000, LatencyUS: 1000},   // warmup
			{Class: "c", Op: OpGenerate, Status: 200, StartUS: 1_500_000, LatencyUS: 2000}, // measured
			{Class: "c", Op: OpGenerate, Status: 429, StartUS: 1_600_000, LatencyUS: 100},  // measured
		},
		Elapsed:    2 * time.Second,
		Dispatched: 3,
	}
	rep := BuildReport(&spec, res)
	if rep.Measured != 2 {
		t.Fatalf("measured %d, want 2 (warmup sample must be dropped)", rep.Measured)
	}
	if rep.Total.OK != 1 || rep.Total.Status429 != 1 {
		t.Fatalf("total %+v", rep.Total)
	}
	if rep.Total.Rate429 != 0.5 {
		t.Fatalf("rate_429 %v", rep.Total.Rate429)
	}
	if rep.Total.ThroughputRPS != 2 || rep.Total.GoodputRPS != 1 {
		t.Fatalf("throughput %v goodput %v", rep.Total.ThroughputRPS, rep.Total.GoodputRPS)
	}
}
