package load

import (
	"sort"

	"repro/internal/benchutil"
)

// ReportSchema versions BENCH_serving.json; bump on breaking shape changes
// so -compare can refuse to diff across incompatible runs.
const ReportSchema = "mctsload/v1"

// LatencySummary is a latency distribution in milliseconds. Quantiles come
// from the HDR histogram (bucket upper edges, conservative for gating);
// mean and max are exact.
type LatencySummary struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

func summarize(h *Histogram) LatencySummary {
	us := func(v int64) float64 { return float64(v) / 1000 }
	return LatencySummary{
		P50:  us(h.Quantile(0.50)),
		P95:  us(h.Quantile(0.95)),
		P99:  us(h.Quantile(0.99)),
		Mean: h.Mean() / 1000,
		Max:  us(h.Max()),
	}
}

// OpReport aggregates one (class, op) cell — or a whole class, or the whole
// run — over the measured window.
type OpReport struct {
	Op            string          `json:"op,omitempty"`
	Count         int64           `json:"count"`
	OK            int64           `json:"ok"`
	Errors        int64           `json:"errors"`
	Status429     int64           `json:"status_429"`
	Status503     int64           `json:"status_503"`
	StatusOther   int64           `json:"status_other_non_2xx"`
	ThroughputRPS float64         `json:"throughput_rps"`
	GoodputRPS    float64         `json:"goodput_rps"`
	Rate429       float64         `json:"rate_429"`
	Rate503       float64         `json:"rate_503"`
	Latency       LatencySummary  `json:"latency"`
	TTFE          *LatencySummary `json:"ttfe,omitempty"` // streamed requests only
}

// ClassReport is one client class's measured-window aggregate plus its
// per-op breakdown.
type ClassReport struct {
	Class string     `json:"class"`
	Total OpReport   `json:"total"`
	Ops   []OpReport `json:"ops"`
}

// ServerReport is the daemon's own view of the run, from the /v1/stats
// curve: deltas between the first and last scrape (so a pre-warmed daemon
// does not pollute the run's numbers) plus final-point gauges.
type ServerReport struct {
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheOccupancy float64 `json:"cache_occupancy"`
	Served         int64   `json:"served"`
	Overflow429    int64   `json:"overflow_429"`
	QueueTimeouts  int64   `json:"queue_timeout_503"`
	Draining503    int64   `json:"draining_503"`
	ClientGone     int64   `json:"client_gone"`
	// QueueWaitMeanMS is the mean admission queue wait per served request
	// over the run.
	QueueWaitMeanMS float64 `json:"queue_wait_mean_ms"`
	ScrapePoints    int     `json:"scrape_points"`
}

// Report is the BENCH_serving.json payload. BuildReport leaves GeneratedAt,
// Gates, CPUs, and GateEnforced zero — the CLI stamps them (keeping the
// build itself a pure function of the run).
type Report struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at,omitempty"`
	Spec        string `json:"spec"`
	Seed        int64  `json:"seed"`
	WarmupMS    int64  `json:"warmup_ms"`
	DurationMS  int64  `json:"duration_ms"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	Dispatched  int    `json:"dispatched"`
	// Measured and WarmupSamples partition the completed samples by
	// *dispatch time*: an op dispatched before the warmup window ends is a
	// warmup sample even if its response arrives deep inside the measured
	// window, and an op dispatched exactly at the boundary is measured.
	// Dispatch-time attribution is the policy an open-loop harness needs —
	// the arrival schedule decides a request's window once, independent of
	// how long the daemon takes to answer, so an overload that stretches
	// warmup-era latencies can neither leak into nor hide from the measured
	// numbers. Dispatched − Measured − WarmupSamples is then the run's
	// in-flight remainder (events issued but not completed, e.g. on
	// interrupt), not a silent attribution gap.
	Measured      int64         `json:"measured"`
	WarmupSamples int64         `json:"warmup_samples"`
	Total         OpReport      `json:"total"`
	Classes       []ClassReport `json:"classes"`
	Server        *ServerReport `json:"server,omitempty"`
	Stats         []StatsPoint  `json:"stats_curve,omitempty"`
	Gates         []Gate        `json:"gates,omitempty"`
	CPUs          int           `json:"cpus"`
	// GateEnforced mirrors searchbench's convention: gates are always
	// recorded, but only fail the run on machines with enough parallelism
	// for the numbers to mean anything (see ApplyGates).
	GateEnforced bool `json:"gate_enforced"`
	// GateCPUs is the enforcement threshold GateEnforced was computed
	// against, recorded so a stored report explains its own gating.
	GateCPUs int `json:"gate_cpus,omitempty"`
}

// Gate is one SLO check: recorded always, enforced per Report.GateEnforced.
type Gate struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Budget float64 `json:"budget"`
	Pass   bool    `json:"pass"`
}

// GateSpec is the SLO budget set ApplyGates evaluates; a zero budget
// disables that gate.
type GateSpec struct {
	// MaxP99MS bounds total p99 latency in milliseconds.
	MaxP99MS float64
	// MinGoodputRPS floors overall goodput in requests per second.
	MinGoodputRPS float64
}

// ApplyGates evaluates spec against the report and records the verdicts,
// plus the CPU-aware enforcement decision: gates are always *recorded*, but
// GateEnforced is true only on machines with at least minCPUs CPUs (cpus is
// runtime.NumCPU; minCPUs <= 0 always enforces). Latency SLOs measured on a
// 1-CPU container mostly measure the container — BENCH_serving.json's
// p95 ≈ 400ms-vs-p50 ≈ 0.7ms spread on such a box is scheduler contention
// between the daemon and the load generator, not daemon behavior — so an
// under-provisioned runner records its numbers without failing a build.
// Returns the gates that failed; the caller decides whether GateEnforced
// turns those into a non-zero exit.
func (r *Report) ApplyGates(spec GateSpec, minCPUs int) []Gate {
	cpus, enforced := benchutil.GateEnforced(minCPUs)
	r.CPUs = cpus
	r.GateEnforced = enforced
	r.GateCPUs = minCPUs
	if spec.MaxP99MS > 0 {
		r.Gates = append(r.Gates, Gate{
			Name: "total_p99_ms", Value: r.Total.Latency.P99, Budget: spec.MaxP99MS,
			Pass: r.Total.Latency.P99 <= spec.MaxP99MS,
		})
	}
	if spec.MinGoodputRPS > 0 {
		r.Gates = append(r.Gates, Gate{
			Name: "goodput_rps", Value: r.Total.GoodputRPS, Budget: spec.MinGoodputRPS,
			Pass: r.Total.GoodputRPS >= spec.MinGoodputRPS,
		})
	}
	var failed []Gate
	for _, g := range r.Gates {
		if !g.Pass {
			failed = append(failed, g)
		}
	}
	return failed
}

// opAgg accumulates one (class, op) cell during the build.
type opAgg struct {
	rep  OpReport
	lat  Histogram
	ttfe Histogram
}

func (a *opAgg) add(s *Sample) {
	a.rep.Count++
	switch {
	case s.ok():
		a.rep.OK++
	case s.Err != "":
		a.rep.Errors++
	case s.Status == 429:
		a.rep.Status429++
	case s.Status == 503:
		a.rep.Status503++
	default:
		a.rep.StatusOther++
	}
	a.lat.Record(s.LatencyUS)
	if s.Stream && s.TTFEUS >= 0 {
		a.ttfe.Record(s.TTFEUS)
	}
}

func (a *opAgg) finish(windowSec float64) OpReport {
	r := a.rep
	r.Latency = summarize(&a.lat)
	if a.ttfe.Count() > 0 {
		t := summarize(&a.ttfe)
		r.TTFE = &t
	}
	if windowSec > 0 {
		r.ThroughputRPS = float64(r.Count) / windowSec
		r.GoodputRPS = float64(r.OK) / windowSec
	}
	if r.Count > 0 {
		r.Rate429 = float64(r.Status429) / float64(r.Count)
		r.Rate503 = float64(r.Status503) / float64(r.Count)
	}
	return r
}

// BuildReport reduces a replay run to its report: warmup samples dropped,
// rates normalized to the measured window, classes and ops in sorted order
// so the JSON is deterministic for a given run.
func BuildReport(spec *Spec, res *RunResult) *Report {
	warmupUS := spec.WarmupMS * 1000
	windowSec := float64(spec.DurationMS) / 1000

	total := &opAgg{}
	classes := make(map[string]map[string]*opAgg)
	var measured, warmupSamples int64
	for i := range res.Samples {
		s := &res.Samples[i]
		// Dispatch-time attribution (see the Report field docs): strictly
		// before the boundary is warmup, at or after is measured —
		// completion time never matters.
		if s.StartUS < warmupUS {
			warmupSamples++
			continue
		}
		measured++
		total.add(s)
		byOp := classes[s.Class]
		if byOp == nil {
			byOp = make(map[string]*opAgg)
			classes[s.Class] = byOp
		}
		agg := byOp[s.Op]
		if agg == nil {
			agg = &opAgg{}
			agg.rep.Op = s.Op
			byOp[s.Op] = agg
		}
		agg.add(s)
	}

	rep := &Report{
		Schema:        ReportSchema,
		Spec:          spec.Name,
		Seed:          spec.Seed,
		WarmupMS:      spec.WarmupMS,
		DurationMS:    spec.DurationMS,
		ElapsedMS:     res.Elapsed.Milliseconds(),
		Dispatched:    res.Dispatched,
		Measured:      measured,
		WarmupSamples: warmupSamples,
		Total:         total.finish(windowSec),
		Stats:         res.Stats,
	}

	classNames := make([]string, 0, len(classes))
	for name := range classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		byOp := classes[name]
		cr := ClassReport{Class: name}
		classTotal := &opAgg{}
		opNames := make([]string, 0, len(byOp))
		for op := range byOp {
			opNames = append(opNames, op)
		}
		sort.Strings(opNames)
		for _, op := range opNames {
			agg := byOp[op]
			classTotal.rep.Count += agg.rep.Count
			classTotal.rep.OK += agg.rep.OK
			classTotal.rep.Errors += agg.rep.Errors
			classTotal.rep.Status429 += agg.rep.Status429
			classTotal.rep.Status503 += agg.rep.Status503
			classTotal.rep.StatusOther += agg.rep.StatusOther
			classTotal.lat.Merge(&agg.lat)
			classTotal.ttfe.Merge(&agg.ttfe)
			cr.Ops = append(cr.Ops, agg.finish(windowSec))
		}
		cr.Total = classTotal.finish(windowSec)
		rep.Classes = append(rep.Classes, cr)
	}

	if len(res.Stats) >= 2 {
		first, last := res.Stats[0], res.Stats[len(res.Stats)-1]
		sr := &ServerReport{
			CacheHits:      last.Cache.Hits - first.Cache.Hits,
			CacheMisses:    last.Cache.Misses - first.Cache.Misses,
			CacheEvictions: last.Cache.Evictions - first.Cache.Evictions,
			CacheHitRate:   last.Cache.HitRate,
			CacheOccupancy: last.Cache.Occupancy,
			Served:         last.Admission.Served - first.Admission.Served,
			Overflow429:    last.Admission.Overflow429 - first.Admission.Overflow429,
			QueueTimeouts:  last.Admission.QueueTimeout503 - first.Admission.QueueTimeout503,
			Draining503:    last.Admission.Draining503 - first.Admission.Draining503,
			ClientGone:     last.Admission.ClientGone - first.Admission.ClientGone,
			ScrapePoints:   len(res.Stats),
		}
		if sr.Served > 0 {
			sr.QueueWaitMeanMS = (last.Admission.QueueWaitMS - first.Admission.QueueWaitMS) / float64(sr.Served)
		}
		rep.Server = sr
	}
	return rep
}
