package load

import (
	"math/bits"
	"sync"
)

// Histogram is an HDR-style log-linear latency histogram over non-negative
// int64 values (microseconds here): exact below 2^subBits, then 2^subBits
// sub-buckets per power of two — ≤ ~1.6% relative error at any magnitude,
// constant memory, O(1) record.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

const (
	subBits     = 6
	subCount    = 1 << subBits // 64 sub-buckets per octave
	histBuckets = (64 - subBits) * subCount
)

func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBits // >= 1
	mant := int(u >> uint(exp-1))  // in [subCount, 2*subCount)
	return exp*subCount + mant - subCount
}

// bucketUpper is the inclusive upper edge of a bucket — quantiles report
// it, a conservative (never under-reporting) estimate for SLO gating.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	exp := idx / subCount
	mant := idx%subCount + subCount
	return int64(mant+1)<<uint(exp-1) - 1
}

// Record adds one value; negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
}

// Count is the number of recorded values.
func (h *Histogram) Count() int64 { return h.total }

// Mean is the exact mean of the recorded values (sums are exact; only
// quantiles are bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max is the exact maximum recorded value.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the value at or below which a fraction q of recordings
// fall, as the containing bucket's upper edge clamped to the exact max.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	target := int64(q*float64(h.total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i]
		if seen >= target {
			return min(bucketUpper(i), h.max)
		}
	}
	return h.max
}

// Merge adds other's recordings into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Sample is one completed (or failed) request as observed by the replay
// engine. Times are microsecond offsets from the run start; Status is the
// HTTP status, or 0 for a transport error.
type Sample struct {
	Class   string
	Op      string
	Status  int
	Stream  bool
	StartUS int64 // actual dispatch time
	// LatencyUS is request start to full response read (for SSE: to the
	// final event).
	LatencyUS int64
	// TTFEUS is the time to the first SSE event for streamed requests
	// (-1 when no event arrived).
	TTFEUS int64
	Err    string
}

// ok reports whether the request completed successfully end to end.
func (s *Sample) ok() bool { return s.Err == "" && s.Status >= 200 && s.Status < 300 }

// Collector is the thread-safe sample sink the replay engine's concurrent
// completions report into; the report builder aggregates it afterwards
// (warmup filtering happens there, so the raw run is kept whole).
type Collector struct {
	mu      sync.Mutex
	samples []Sample
}

func NewCollector() *Collector { return &Collector{} }

// Add records one sample.
func (c *Collector) Add(s Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = append(c.samples, s)
}

// Samples returns the recorded samples (the caller owns the snapshot).
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	return out
}
