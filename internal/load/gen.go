package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Generate expands a Spec into its trace: per class, an open-loop arrival
// process spawns sessions across the whole horizon (warmup + measured
// window), and each session unrolls into think-time-spaced ops. Everything
// is drawn from a per-class RNG seeded from (spec seed, class index), so
// the same spec always generates the identical trace — the determinism the
// replay tests pin byte-for-byte.
func Generate(spec Spec) ([]Event, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	horizon := spec.Horizon()
	var events []Event
	for ci := range spec.Classes {
		class := &spec.Classes[ci]
		// Seed mixing: spread class indices across the seed space (the
		// multiplier is the int64 bit pattern of the golden-ratio constant
		// 0x9E3779B97F4A7C15) so neighboring spec seeds do not produce
		// correlated class streams.
		rng := rand.New(rand.NewSource(spec.Seed + int64(ci+1)*-0x61C8864680B583EB))
		events = append(events, classEvents(class, rng, horizon)...)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("spec %q: no arrivals within the %v horizon (rates too low?)", spec.Name, horizon)
	}
	// Merge the per-class streams into one schedule. The sort is stable and
	// the per-class streams are already time-ordered, so equal timestamps
	// keep a deterministic order (class declaration order).
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtUS < events[j].AtUS })
	for i := range events {
		events[i].Seq = i
	}
	return events, nil
}

// classEvents simulates one class's arrivals and sessions to the horizon.
func classEvents(class *ClassSpec, rng *rand.Rand, horizon time.Duration) []Event {
	queries, err := QueryLog(class.workloadName())
	if err != nil {
		return nil // Validate already rejected unknown workloads
	}
	var events []Event
	var at time.Duration
	session := 0
	for {
		at += interarrival(class, rng)
		if at >= horizon {
			return events
		}
		session++
		events = append(events, sessionEvents(class, rng, at, session, queries, horizon)...)
	}
}

// sessionEvents unrolls one session: SessionOps ops starting at the arrival
// time, spaced by exponential think times, truncated at the horizon. The
// first op that needs session state is an append (it creates the session);
// sampled interact/export ops before that degrade to append, and a sampled
// generate stays a stateless one-shot.
func sessionEvents(class *ClassSpec, rng *rand.Rand, at time.Duration, session int, queries []string, horizon time.Duration) []Event {
	var events []Event
	id := fmt.Sprintf("%s-%d", class.Name, session)
	created := false
	next := 0 // next query index for appends
	for op := 0; op < class.sessionOps(); op++ {
		if op > 0 {
			at += thinkTime(class, rng)
			if at >= horizon {
				return events
			}
		}
		ev := Event{
			AtUS:       at.Microseconds(),
			Class:      class.Name,
			Iterations: class.iterations(),
			// Per-request seeds come from the class RNG: deterministic per
			// trace, distinct per request (so the daemon's searches do not
			// trivially share one trajectory). Drawn unconditionally so
			// every op consumes the same RNG stream regardless of kind.
			Seed: 1 + rng.Int63n(math.MaxInt64-1),
		}
		switch kind := sampleOp(class, rng, op, created); kind {
		case OpGenerate:
			ev.Op = OpGenerate
			ev.Stream = class.Stream
			ev.Queries = queries[:min(class.initQueries(), len(queries))]
		case OpAppend:
			ev.Op = OpAppend
			ev.Session = id
			if !created {
				n := min(class.initQueries(), len(queries))
				ev.Queries = queries[:n]
				next = n % len(queries)
				created = true
			} else {
				ev.Queries = queries[next : next+1]
				next = (next + 1) % len(queries)
			}
		case OpInteract:
			ev.Op = OpInteract
			ev.Session = id
		case OpExport:
			ev.Op = OpExport
			ev.Session = id
		}
		events = append(events, ev)
	}
	return events
}

// sampleOp draws an op kind from the class mix. The opening op and any
// session-state op before the session exists are forced to the creating
// kind: a pure-generate mix opens with generate, anything else with append.
func sampleOp(class *ClassSpec, rng *rand.Rand, op int, created bool) string {
	m := class.Mix
	r := rng.Float64() * m.total() // consumed every call: fixed RNG stream
	kind := OpGenerate
	switch {
	case r < m.Generate:
		kind = OpGenerate
	case r < m.Generate+m.Append:
		kind = OpAppend
	case r < m.Generate+m.Append+m.Interact:
		kind = OpInteract
	default:
		kind = OpExport
	}
	if !created && (kind == OpInteract || kind == OpExport) {
		if m.Append > 0 || m.Generate <= 0 {
			return OpAppend
		}
		return OpGenerate
	}
	return kind
}

// interarrival draws the gap to the next session arrival.
func interarrival(class *ClassSpec, rng *rand.Rand) time.Duration {
	mean := 1 / class.RatePerSec // seconds
	var gap float64
	if class.Arrival == "gamma" {
		// Gamma interarrivals with the configured coefficient of variation:
		// shape k = 1/CV^2, scale = mean/k keeps the mean at 1/rate while
		// CV > 1 clusters arrivals into bursts.
		cv := class.cv()
		k := 1 / (cv * cv)
		gap = sampleGamma(rng, k) * mean / k
	} else {
		gap = rng.ExpFloat64() * mean
	}
	return secondsToDuration(gap)
}

// thinkTime draws the exponential gap between a session's consecutive ops.
func thinkTime(class *ClassSpec, rng *rand.Rand) time.Duration {
	if class.ThinkMS <= 0 {
		return 0
	}
	return secondsToDuration(rng.ExpFloat64() * class.ThinkMS / 1000)
}

func secondsToDuration(s float64) time.Duration {
	d := time.Duration(s * float64(time.Second))
	if d < 0 { // overflow or a pathological sample; clamp rather than warp time
		return time.Hour
	}
	return d
}

// sampleGamma draws from Gamma(shape k, scale 1) via Marsaglia–Tsang
// (2000), the standard squeeze method; the k < 1 case boosts a k+1 draw by
// U^(1/k). Purely rng-driven, so samples are deterministic under a seeded
// source.
func sampleGamma(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
