// Package load is the serving load harness: an open-loop, ServeGen-style
// trace generator and replay engine that measures mctsuid (internal/server)
// under realistic multi-user traffic and turns the run into the
// BENCH_serving.json report cmd/mctsload gates CI on.
//
// The model has three layers:
//
//   - A Spec describes traffic as client *classes*, each with an open-loop
//     arrival process (Poisson or Gamma interarrivals), a per-class op mix
//     over generate / session-append / interact / export, a think-time
//     between a session's ops, and a session lifetime in ops.
//   - Generate expands a Spec deterministically (seeded RNG per class) into
//     a trace: a time-ordered sequence of Events, serializable as JSONL for
//     byte-reproducible recording and replay.
//   - Replay issues the trace against a live daemon with open-loop
//     semantics — every request fires at its scheduled time regardless of
//     whether earlier responses have arrived, so an overloaded server sees
//     the backlog a real user population would generate — and collects
//     per-class latency histograms, throughput/goodput, 429/503 rates, SSE
//     time-to-first-event, and /v1/stats cache and admission curves.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
)

// Spec is the workload specification: the traffic of every client class
// plus the run's phases. Warmup precedes the measured window; samples
// dispatched during warmup are replayed but excluded from the report.
type Spec struct {
	Name       string      `json:"name,omitempty"`
	Seed       int64       `json:"seed"`
	WarmupMS   int64       `json:"warmup_ms,omitempty"`
	DurationMS int64       `json:"duration_ms"`
	Classes    []ClassSpec `json:"classes"`
}

// ClassSpec is one client class: an arrival process for session starts and
// the behavior of each session it spawns.
type ClassSpec struct {
	Name string `json:"name"`
	// Arrival is the interarrival distribution of session starts:
	// "poisson" (exponential interarrivals, the default) or "gamma"
	// (Gamma-distributed interarrivals with coefficient of variation CV —
	// CV > 1 models bursty traffic, CV < 1 smoother-than-Poisson).
	Arrival string `json:"arrival,omitempty"`
	// RatePerSec is the mean session-arrival rate.
	RatePerSec float64 `json:"rate_per_sec"`
	// CV is the gamma interarrival coefficient of variation (ignored for
	// poisson; default 1, which makes gamma coincide with poisson).
	CV float64 `json:"cv,omitempty"`
	// SessionOps is the session lifetime in operations, including the
	// opening one (default 1: every arrival is a single request).
	SessionOps int `json:"session_ops,omitempty"`
	// ThinkMS is the mean think time between a session's consecutive ops,
	// exponentially distributed (0: ops are scheduled back-to-back).
	ThinkMS float64 `json:"think_ms,omitempty"`
	// Mix weighs the op kinds. The first op of a session that uses session
	// state is always an append (it creates the session); a sampled
	// interact/export before the session exists degrades to append.
	// A sampled "generate" is a one-shot stateless generation.
	Mix OpMix `json:"mix"`
	// Workload names the query log feeding this class: "figure1" (default),
	// "sdss", or "sdss-join". Appends walk the log one query at a time,
	// cycling at the end.
	Workload string `json:"workload,omitempty"`
	// InitQueries is how many queries the opening request carries
	// (default 1).
	InitQueries int `json:"init_queries,omitempty"`
	// Iterations is the per-request search iteration budget (default 8;
	// iteration budgets keep replayed searches deterministic).
	Iterations int `json:"iterations,omitempty"`
	// Stream switches this class's generate ops to SSE streaming, which the
	// collector measures for time-to-first-event.
	Stream bool `json:"stream,omitempty"`
}

// OpMix weighs the four op kinds; weights are relative, not probabilities.
type OpMix struct {
	Generate float64 `json:"generate,omitempty"`
	Append   float64 `json:"append,omitempty"`
	Interact float64 `json:"interact,omitempty"`
	Export   float64 `json:"export,omitempty"`
}

func (m OpMix) total() float64 { return m.Generate + m.Append + m.Interact + m.Export }

// Horizon is the trace length: warmup plus the measured window.
func (s *Spec) Horizon() time.Duration {
	return time.Duration(s.WarmupMS+s.DurationMS) * time.Millisecond
}

// Validate checks the spec. Defaults are not materialized here — the
// accessor methods (workloadName, sessionOps, ...) apply them at use sites,
// so a recorded spec round-trips unchanged.
func (s *Spec) Validate() error {
	if s.DurationMS <= 0 {
		return fmt.Errorf("spec %q: duration_ms must be positive", s.Name)
	}
	if s.WarmupMS < 0 {
		return fmt.Errorf("spec %q: negative warmup_ms", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("spec %q: no classes", s.Name)
	}
	seen := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("spec %q: class %d has no name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("spec %q: duplicate class %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Arrival {
		case "", "poisson", "gamma":
		default:
			return fmt.Errorf("class %q: unknown arrival %q (want poisson or gamma)", c.Name, c.Arrival)
		}
		if c.RatePerSec <= 0 {
			return fmt.Errorf("class %q: rate_per_sec must be positive", c.Name)
		}
		if c.CV < 0 {
			return fmt.Errorf("class %q: negative cv", c.Name)
		}
		if c.SessionOps < 0 || c.ThinkMS < 0 || c.InitQueries < 0 || c.Iterations < 0 {
			return fmt.Errorf("class %q: negative knob", c.Name)
		}
		if c.Mix.Generate < 0 || c.Mix.Append < 0 || c.Mix.Interact < 0 || c.Mix.Export < 0 {
			return fmt.Errorf("class %q: negative mix weight", c.Name)
		}
		if c.Mix.total() <= 0 {
			return fmt.Errorf("class %q: op mix has no positive weight", c.Name)
		}
		if _, err := QueryLog(c.workloadName()); err != nil {
			return fmt.Errorf("class %q: %w", c.Name, err)
		}
	}
	return nil
}

func (c *ClassSpec) workloadName() string {
	if c.Workload == "" {
		return "figure1"
	}
	return c.Workload
}

func (c *ClassSpec) sessionOps() int {
	if c.SessionOps <= 0 {
		return 1
	}
	return c.SessionOps
}

func (c *ClassSpec) initQueries() int {
	if c.InitQueries <= 0 {
		return 1
	}
	return c.InitQueries
}

func (c *ClassSpec) iterations() int {
	if c.Iterations <= 0 {
		return 8
	}
	return c.Iterations
}

func (c *ClassSpec) cv() float64 {
	if c.CV <= 0 {
		return 1
	}
	return c.CV
}

// ParseSpec decodes a spec from JSON, rejecting unknown fields so a typoed
// knob fails loudly instead of silently running the default.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// SmokeSpec is the built-in seconds-scale spec the CI bench-serving job
// runs: two classes — steady analyst sessions over the figure1 log and a
// bursty one-shot streaming class over the SDSS log — at rates a shared
// runner sustains with headroom.
func SmokeSpec() Spec {
	return Spec{
		Name:       "smoke",
		Seed:       1,
		WarmupMS:   2000,
		DurationMS: 6000,
		Classes: []ClassSpec{
			{
				Name:       "analyst",
				Arrival:    "poisson",
				RatePerSec: 2.5,
				SessionOps: 4,
				ThinkMS:    200,
				Mix:        OpMix{Generate: 1, Append: 3, Interact: 3, Export: 2},
				Workload:   "figure1",
				Iterations: 6,
			},
			{
				Name:        "burst",
				Arrival:     "gamma",
				RatePerSec:  1.5,
				CV:          2.5,
				SessionOps:  1,
				Mix:         OpMix{Generate: 1},
				Workload:    "sdss",
				InitQueries: 3,
				Iterations:  4,
				Stream:      true,
			},
		},
	}
}

// QueryLog resolves a workload name to its SQL query log.
func QueryLog(name string) ([]string, error) {
	switch name {
	case "figure1":
		return []string{
			"SELECT Sales FROM sales WHERE cty = USA",
			"SELECT Costs FROM sales WHERE cty = EUR",
			"SELECT Costs FROM sales",
		}, nil
	case "sdss":
		return workload.SDSSLogSQL(), nil
	case "sdss-join":
		return workload.SDSSJoinLogSQL(), nil
	}
	return nil, fmt.Errorf("unknown workload %q (want figure1, sdss, or sdss-join)", name)
}
