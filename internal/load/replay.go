package load

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/api/client"
)

// Options configures a replay run.
type Options struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests (http.DefaultClient when nil). Replays
	// against a loaded daemon want a generous Timeout and MaxConnsPerHost
	// left unlimited — open-loop traffic needs one connection per in-flight
	// request.
	Client *http.Client
	// Record, when non-nil, receives the dispatched events as JSONL in
	// dispatch order — byte-identical to WriteTrace of the replayed trace,
	// which is what makes record→replay→re-record a fixpoint.
	Record io.Writer
	// StatsEvery scrapes GET /v1/stats on this cadence into the result's
	// stats curve (0: no scraping).
	StatsEvery time.Duration
}

// StatsPoint is one /v1/stats scrape, decoded leniently (unknown fields
// ignored) so the harness tolerates stats-surface growth.
type StatsPoint struct {
	AtMS  int64 `json:"at_ms"`
	Cache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Entries   int64   `json:"entries"`
		Evictions int64   `json:"evictions"`
		Capacity  int64   `json:"capacity"`
		HitRate   float64 `json:"hit_rate"`
		Occupancy float64 `json:"occupancy"`
	} `json:"cache"`
	Admission struct {
		Served          int64   `json:"served"`
		Overflow429     int64   `json:"overflow_429"`
		QueueTimeout503 int64   `json:"queue_timeout_503"`
		Draining503     int64   `json:"draining_503"`
		ClientGone      int64   `json:"client_gone"`
		QueueWaitMS     float64 `json:"queue_wait_total_ms"`
	} `json:"admission"`
	Queued   int64 `json:"queued"`
	Inflight int64 `json:"inflight"`
	Sessions int64 `json:"sessions"`
}

// RunResult is a completed replay: every sample, the server stats curve
// (first and last scrape bracket the run), and the wall-clock span.
type RunResult struct {
	Samples []Sample
	Stats   []StatsPoint
	// Elapsed is dispatch of the first event to completion of the last
	// response.
	Elapsed time.Duration
	// Dispatched counts events actually issued (all of them unless the
	// context was cancelled mid-run).
	Dispatched int
}

// Replay issues the trace against the daemon with open-loop semantics:
// each event fires at its scheduled offset from the run start on its own
// goroutine, so a late response never delays a future arrival — the
// defining property of an open-loop load generator, and the reason an
// overloaded daemon sees queue growth instead of a politely backing-off
// client. Cancelling ctx stops dispatching and waits for in-flight
// requests to finish.
func Replay(ctx context.Context, events []Event, opt Options) (*RunResult, error) {
	if opt.BaseURL == "" {
		return nil, fmt.Errorf("replay: no BaseURL")
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	// The typed client with retries disabled: open-loop measurement means a
	// refused connection is a data point, never something to paper over
	// with a re-send.
	cl := client.New(strings.TrimRight(opt.BaseURL, "/"))
	cl.HTTPClient = opt.Client
	cl.Retries = -1

	var rec *bufio.Writer
	var recEnc *json.Encoder
	if opt.Record != nil {
		rec = bufio.NewWriter(opt.Record)
		recEnc = json.NewEncoder(rec)
		recEnc.SetEscapeHTML(false)
	}

	col := NewCollector()
	start := time.Now()

	// Stats scraper: one goroutine sampling /v1/stats on a fixed cadence,
	// plus one final scrape after the last response so the curve's endpoint
	// reflects the whole run.
	var stats []StatsPoint
	var statsMu sync.Mutex
	scrape := func() {
		p, err := scrapeStats(ctx, cl, start)
		if err != nil {
			return // a missed scrape thins the curve, never fails the run
		}
		statsMu.Lock()
		stats = append(stats, p)
		statsMu.Unlock()
	}
	scrapeCtx, stopScraper := context.WithCancel(ctx)
	var scraperDone chan struct{}
	if opt.StatsEvery > 0 {
		scraperDone = make(chan struct{})
		go func() {
			defer close(scraperDone)
			tick := time.NewTicker(opt.StatsEvery)
			defer tick.Stop()
			scrape()
			for {
				select {
				case <-tick.C:
					scrape()
				case <-scrapeCtx.Done():
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	dispatched := 0
dispatch:
	for i := range events {
		ev := &events[i]
		if wait := time.Duration(ev.AtUS)*time.Microsecond - time.Since(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		if recEnc != nil {
			if err := recEnc.Encode(ev); err != nil {
				stopScraper()
				return nil, fmt.Errorf("recording event %d: %w", ev.Seq, err)
			}
		}
		dispatched++
		wg.Add(1)
		go func(ev *Event) {
			defer wg.Done()
			col.Add(issue(ctx, cl, ev, start))
		}(ev)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopScraper()
	if scraperDone != nil {
		<-scraperDone
		scrape() // final point after the last response
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, fmt.Errorf("flushing recording: %w", err)
		}
	}
	return &RunResult{
		Samples:    col.Samples(),
		Stats:      stats,
		Elapsed:    elapsed,
		Dispatched: dispatched,
	}, nil
}

// scrapeStats reads one /v1/stats snapshot through the typed client. The
// client decodes leniently (unknown fields ignored), so the harness
// tolerates stats-surface growth — and a router's FleetStatsResponse, whose
// aggregate is shaped exactly like one daemon's stats, scrapes identically.
func scrapeStats(ctx context.Context, cl *client.Client, start time.Time) (StatsPoint, error) {
	var p StatsPoint
	at := time.Since(start)
	st, err := cl.Stats(ctx)
	if err != nil {
		return p, err
	}
	p.AtMS = at.Milliseconds()
	p.Cache.Hits = st.Cache.Hits
	p.Cache.Misses = st.Cache.Misses
	p.Cache.Entries = st.Cache.Entries
	p.Cache.Evictions = st.Cache.Evictions
	p.Cache.Capacity = st.Cache.Capacity
	p.Cache.HitRate = st.Cache.HitRate
	p.Cache.Occupancy = st.Cache.Occupancy
	p.Admission.Served = st.Admission.Served
	p.Admission.Overflow429 = st.Admission.Overflow429
	p.Admission.QueueTimeout503 = st.Admission.QueueTimeout503
	p.Admission.Draining503 = st.Admission.Draining503
	p.Admission.ClientGone = st.Admission.ClientGone
	p.Admission.QueueWaitMS = st.Admission.QueueWaitMS
	p.Queued = st.Queued
	p.Inflight = int64(st.Inflight)
	p.Sessions = int64(st.Sessions)
	return p, nil
}

// issue performs one event's request through the typed client and reduces
// it to a Sample: a nil error is a 200, a *client.StatusError contributes
// its code, anything else is a transport error (status 0) — exactly the
// three outcomes the open-loop report's goodput/429/503 split needs.
func issue(ctx context.Context, cl *client.Client, ev *Event, start time.Time) Sample {
	s := Sample{
		Class:  ev.Class,
		Op:     ev.Op,
		Stream: ev.Stream,
		TTFEUS: -1,
	}
	t0 := time.Now()
	s.StartUS = t0.Sub(start).Microseconds()
	var err error
	switch ev.Op {
	case OpGenerate:
		req := &api.GenerateRequest{
			SearchParams: api.SearchParams{Iterations: ev.Iterations, Seed: ev.Seed},
			Queries:      ev.Queries,
		}
		if ev.Stream {
			_, err = cl.GenerateStream(ctx, req, func(fr client.StreamEvent) {
				if s.TTFEUS < 0 {
					s.TTFEUS = time.Since(t0).Microseconds()
				}
			})
		} else {
			_, err = cl.Generate(ctx, req)
		}
	case OpAppend:
		_, err = cl.Append(ctx, ev.Session, &api.SessionQueriesRequest{
			SearchParams: api.SearchParams{Iterations: ev.Iterations, Seed: ev.Seed},
			Queries:      ev.Queries,
		})
	case OpInteract:
		_, err = cl.Interact(ctx, ev.Session, &api.InteractRequest{Op: api.OpGet})
	case OpExport:
		_, err = cl.ExportSession(ctx, ev.Session)
	default:
		s.Err = fmt.Sprintf("unknown op %q", ev.Op)
		return s
	}
	s.LatencyUS = time.Since(t0).Microseconds()
	s.Status = http.StatusOK
	if err != nil {
		var se *client.StatusError
		switch {
		case errors.As(err, &se):
			s.Status = se.Code
		case s.TTFEUS >= 0:
			// The stream opened (a 200 was committed) and then failed or
			// ended without a result: the search never delivered.
			s.Err = err.Error()
		default:
			s.Status = 0
			s.Err = err.Error()
		}
	}
	return s
}
