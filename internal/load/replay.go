package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Options configures a replay run.
type Options struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests (http.DefaultClient when nil). Replays
	// against a loaded daemon want a generous Timeout and MaxConnsPerHost
	// left unlimited — open-loop traffic needs one connection per in-flight
	// request.
	Client *http.Client
	// Record, when non-nil, receives the dispatched events as JSONL in
	// dispatch order — byte-identical to WriteTrace of the replayed trace,
	// which is what makes record→replay→re-record a fixpoint.
	Record io.Writer
	// StatsEvery scrapes GET /v1/stats on this cadence into the result's
	// stats curve (0: no scraping).
	StatsEvery time.Duration
}

// StatsPoint is one /v1/stats scrape, decoded leniently (unknown fields
// ignored) so the harness tolerates stats-surface growth.
type StatsPoint struct {
	AtMS  int64 `json:"at_ms"`
	Cache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Entries   int64   `json:"entries"`
		Evictions int64   `json:"evictions"`
		Capacity  int64   `json:"capacity"`
		HitRate   float64 `json:"hit_rate"`
		Occupancy float64 `json:"occupancy"`
	} `json:"cache"`
	Admission struct {
		Served          int64   `json:"served"`
		Overflow429     int64   `json:"overflow_429"`
		QueueTimeout503 int64   `json:"queue_timeout_503"`
		Draining503     int64   `json:"draining_503"`
		ClientGone      int64   `json:"client_gone"`
		QueueWaitMS     float64 `json:"queue_wait_total_ms"`
	} `json:"admission"`
	Queued   int64 `json:"queued"`
	Inflight int64 `json:"inflight"`
	Sessions int64 `json:"sessions"`
}

// RunResult is a completed replay: every sample, the server stats curve
// (first and last scrape bracket the run), and the wall-clock span.
type RunResult struct {
	Samples []Sample
	Stats   []StatsPoint
	// Elapsed is dispatch of the first event to completion of the last
	// response.
	Elapsed time.Duration
	// Dispatched counts events actually issued (all of them unless the
	// context was cancelled mid-run).
	Dispatched int
}

// Replay issues the trace against the daemon with open-loop semantics:
// each event fires at its scheduled offset from the run start on its own
// goroutine, so a late response never delays a future arrival — the
// defining property of an open-loop load generator, and the reason an
// overloaded daemon sees queue growth instead of a politely backing-off
// client. Cancelling ctx stops dispatching and waits for in-flight
// requests to finish.
func Replay(ctx context.Context, events []Event, opt Options) (*RunResult, error) {
	if opt.BaseURL == "" {
		return nil, fmt.Errorf("replay: no BaseURL")
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	base := strings.TrimRight(opt.BaseURL, "/")

	var rec *bufio.Writer
	var recEnc *json.Encoder
	if opt.Record != nil {
		rec = bufio.NewWriter(opt.Record)
		recEnc = json.NewEncoder(rec)
		recEnc.SetEscapeHTML(false)
	}

	col := NewCollector()
	start := time.Now()

	// Stats scraper: one goroutine sampling /v1/stats on a fixed cadence,
	// plus one final scrape after the last response so the curve's endpoint
	// reflects the whole run.
	var stats []StatsPoint
	var statsMu sync.Mutex
	scrape := func() {
		p, err := scrapeStats(ctx, client, base, start)
		if err != nil {
			return // a missed scrape thins the curve, never fails the run
		}
		statsMu.Lock()
		stats = append(stats, p)
		statsMu.Unlock()
	}
	scrapeCtx, stopScraper := context.WithCancel(ctx)
	var scraperDone chan struct{}
	if opt.StatsEvery > 0 {
		scraperDone = make(chan struct{})
		go func() {
			defer close(scraperDone)
			tick := time.NewTicker(opt.StatsEvery)
			defer tick.Stop()
			scrape()
			for {
				select {
				case <-tick.C:
					scrape()
				case <-scrapeCtx.Done():
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	dispatched := 0
dispatch:
	for i := range events {
		ev := &events[i]
		if wait := time.Duration(ev.AtUS)*time.Microsecond - time.Since(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		if recEnc != nil {
			if err := recEnc.Encode(ev); err != nil {
				stopScraper()
				return nil, fmt.Errorf("recording event %d: %w", ev.Seq, err)
			}
		}
		dispatched++
		wg.Add(1)
		go func(ev *Event) {
			defer wg.Done()
			col.Add(issue(ctx, client, base, ev, start))
		}(ev)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopScraper()
	if scraperDone != nil {
		<-scraperDone
		scrape() // final point after the last response
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, fmt.Errorf("flushing recording: %w", err)
		}
	}
	return &RunResult{
		Samples:    col.Samples(),
		Stats:      stats,
		Elapsed:    elapsed,
		Dispatched: dispatched,
	}, nil
}

// scrapeStats reads one /v1/stats snapshot.
func scrapeStats(ctx context.Context, client *http.Client, base string, start time.Time) (StatsPoint, error) {
	var p StatsPoint
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return p, err
	}
	at := time.Since(start)
	resp, err := client.Do(req)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return p, fmt.Errorf("stats: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return p, err
	}
	p.AtMS = at.Milliseconds()
	return p, nil
}

// Request bodies mirror internal/server's wire shapes. They are local
// structs (not imports) so the load package stays a pure HTTP client of
// the daemon — the same coupling a real external client has.
type generateBody struct {
	Queries    []string `json:"queries"`
	Iterations int      `json:"iterations,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Stream     bool     `json:"stream,omitempty"`
}

type interactBody struct {
	Op string `json:"op"`
}

// issue performs one event's request and reduces it to a Sample.
func issue(ctx context.Context, client *http.Client, base string, ev *Event, start time.Time) Sample {
	s := Sample{
		Class:  ev.Class,
		Op:     ev.Op,
		Stream: ev.Stream,
		TTFEUS: -1,
	}
	var (
		method = http.MethodPost
		url    string
		body   any
	)
	switch ev.Op {
	case OpGenerate:
		url = base + "/v1/generate"
		body = generateBody{Queries: ev.Queries, Iterations: ev.Iterations, Seed: ev.Seed, Stream: ev.Stream}
	case OpAppend:
		url = base + "/v1/sessions/" + ev.Session + "/queries"
		body = generateBody{Queries: ev.Queries, Iterations: ev.Iterations, Seed: ev.Seed}
	case OpInteract:
		url = base + "/v1/sessions/" + ev.Session + "/interact"
		body = interactBody{Op: "get"}
	case OpExport:
		method = http.MethodGet
		url = base + "/v1/sessions/" + ev.Session + "/export?format=json"
	default:
		s.Err = fmt.Sprintf("unknown op %q", ev.Op)
		return s
	}
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			s.Err = err.Error()
			return s
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		s.Err = err.Error()
		return s
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}

	t0 := time.Now()
	s.StartUS = t0.Sub(start).Microseconds()
	resp, err := client.Do(req)
	if err != nil {
		s.LatencyUS = time.Since(t0).Microseconds()
		s.Err = err.Error()
		return s
	}
	defer resp.Body.Close()
	s.Status = resp.StatusCode
	if ev.Stream && resp.StatusCode == http.StatusOK {
		readStream(resp.Body, t0, &s)
	} else {
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			s.Err = err.Error()
		}
	}
	s.LatencyUS = time.Since(t0).Microseconds()
	return s
}

// readStream consumes an SSE response, stamping the time to the first
// event and demoting a stream that ends without a "result" event to a
// transport error (the search never delivered).
func readStream(body io.Reader, t0 time.Time, s *Sample) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	sawResult := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			if s.TTFEUS < 0 {
				s.TTFEUS = time.Since(t0).Microseconds()
			}
			if strings.TrimPrefix(line, "event: ") == "result" {
				sawResult = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.Err = err.Error()
		return
	}
	if !sawResult {
		s.Err = "stream ended without a result event"
	}
}
