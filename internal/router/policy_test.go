package router

import (
	"testing"

	"repro/internal/api"
)

// testView builds a ready View over synthetic replicas, the way the Router
// presents one to a policy: sorted by URL, ring over exactly the ready set.
func testView(urls ...string) View {
	v := View{Ring: buildRing(urls, 64)}
	for _, u := range urls {
		v.Ready = append(v.Ready, &Replica{URL: u, state: api.StateReady})
	}
	return v
}

func TestNewPolicyNames(t *testing.T) {
	for name, want := range map[string]string{
		"":             "affinity",
		"affinity":     "affinity",
		"round-robin":  "round-robin",
		"least-loaded": "least-loaded",
	} {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := NewPolicy("warp"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAffinityPolicyFollowsRing(t *testing.T) {
	v := testView("http://a:1", "http://b:1", "http://c:1")
	p, _ := NewPolicy("affinity")
	for _, key := range []string{"s:alpha", "s:beta", "q:deadbeef"} {
		rep := p.Pick(key, v)
		if rep == nil {
			t.Fatalf("Pick(%q) returned nil", key)
		}
		if want := v.Ring.lookup(key); rep.URL != want {
			t.Errorf("Pick(%q) = %s, ring owner is %s", key, rep.URL, want)
		}
		// Stable: picking again changes nothing.
		if again := p.Pick(key, v); again != rep {
			t.Errorf("Pick(%q) not stable: %s then %s", key, rep.URL, again.URL)
		}
	}
}

func TestRoundRobinPolicyCycles(t *testing.T) {
	v := testView("http://a:1", "http://b:1", "http://c:1")
	p, _ := NewPolicy("round-robin")
	counts := map[string]int{}
	for i := 0; i < 9; i++ {
		counts[p.Pick("q:ignored", v).URL]++
	}
	for _, rep := range v.Ready {
		if counts[rep.URL] != 3 {
			t.Errorf("replica %s picked %d times over 9 picks of 3 replicas (want 3): %v",
				rep.URL, counts[rep.URL], counts)
		}
	}
}

func TestLeastLoadedPolicyPicksMinimum(t *testing.T) {
	v := testView("http://a:1", "http://b:1", "http://c:1")
	v.Ready[0].queued, v.Ready[0].inflight = 3, 1 // load 4
	v.Ready[1].queued = 1                         // load 1: the winner
	v.Ready[2].outstanding.Add(2)                 // load 2 (router-side live count)
	p, _ := NewPolicy("least-loaded")
	if rep := p.Pick("q:x", v); rep.URL != "http://b:1" {
		t.Errorf("picked %s (load %d), want the least-loaded http://b:1", rep.URL, rep.load())
	}

	// Ties break by URL order, so placement stays deterministic.
	v.Ready[1].queued = 2
	v.Ready[2].outstanding.Add(-2)
	v.Ready[2].queued = 2
	if rep := p.Pick("q:x", v); rep.URL != "http://b:1" {
		t.Errorf("tie broke to %s, want first-by-URL http://b:1", rep.URL)
	}
}
