package router

// Fleet membership management: the router-side half of warm bring-up and
// warm handoff, built from the daemon primitives PR 8 and this PR provide
// (/v1/cache/export, /v1/cache/import, /v1/drain, /readyz).
//
//   - Join primes the newcomer before it takes traffic: the warmest ready
//     replica's cache snapshot is exported and imported into the joiner,
//     then the joiner is probed and (once ready) enters the ring. A joiner
//     therefore reports warm cache hits from its very first request.
//   - Leave is the planned-removal path: the departing replica is ejected
//     from the ring first (no new work lands on it), drained (in-flight
//     searches return best-so-far; export stays available by design), and
//     its cache is exported and imported into every remaining ready replica
//     — first-write-wins merge semantics make that safe however much the
//     snapshots overlap — so the warmth the replica accumulated survives it.
//
// Join and leave serialize on fleetMu: each is a multi-step sequence, and a
// second concurrent mutation gets 409 instead of interleaving half-applied
// membership states.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/api"
)

// fleetOpTimeout bounds one join/leave end to end. Snapshot transfers are
// size-capped (MaxSnapshotBytes), so a minute is generous.
const fleetOpTimeout = time.Minute

// lockFleet claims the one-at-a-time membership-mutation slot; false means
// the 409 has been written.
func (rt *Router) lockFleet(w http.ResponseWriter) bool {
	select {
	case rt.fleetMu <- struct{}{}:
		return true
	default:
		rt.fail(w, http.StatusConflict, errors.New("another fleet membership change is in progress"))
		return false
	}
}

func (rt *Router) unlockFleet() { <-rt.fleetMu }

func (rt *Router) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	var req api.FleetJoinRequest
	if !rt.decode(w, r, &req) {
		return
	}
	u := normalizeURL(req.URL)
	if u == "" {
		rt.fail(w, http.StatusBadRequest, errors.New("empty replica URL"))
		return
	}
	if !rt.lockFleet(w) {
		return
	}
	defer rt.unlockFleet()
	rt.mu.Lock()
	_, exists := rt.replicas[u]
	rt.mu.Unlock()
	if exists {
		rt.fail(w, http.StatusConflict, fmt.Errorf("replica %s is already a fleet member", u))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), fleetOpTimeout)
	defer cancel()

	joiner := rt.newReplica(u)
	// The joiner must be alive before anything else — priming a dead URL
	// would waste a donor export.
	if _, err := joiner.cl.Stats(ctx); err != nil {
		rt.fail(w, http.StatusBadGateway, fmt.Errorf("joining replica %s is unreachable: %w", u, err))
		return
	}

	resp := api.FleetJoinResponse{URL: u}
	if !req.Cold {
		donor, err := rt.pickDonor(req.Donor)
		if err != nil {
			rt.fail(w, http.StatusBadGateway, err)
			return
		}
		if donor != nil { // a first, empty fleet has no donor: the joiner starts cold
			entries, err := rt.shipCache(ctx, donor, joiner)
			if err != nil {
				rt.fail(w, http.StatusBadGateway, fmt.Errorf("priming %s from %s: %w", u, donor.URL, err))
				return
			}
			resp.Primed = true
			resp.Donor = donor.URL
			resp.Entries = entries
		}
	}

	rt.mu.Lock()
	rt.replicas[u] = joiner
	rt.mu.Unlock()
	// The post-add probe classifies the joiner (ready/unready/draining) and
	// rebuilds the ring; a still-warming replica enters the ring when the
	// probe loop later sees its /readyz flip.
	probeCtx, probeCancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	rt.ProbeOnce(probeCtx)
	probeCancel()
	rt.writeJSON(w, http.StatusOK, resp)
}

// pickDonor resolves the priming donor: the named replica, or the warmest
// ready one. A named donor must exist and be ready; no-donor (nil, nil)
// means the fleet has no warmth to give and the join proceeds cold.
func (rt *Router) pickDonor(named string) (*Replica, error) {
	if named == "" {
		return rt.warmestReady(), nil
	}
	u := normalizeURL(named)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rep, ok := rt.replicas[u]
	if !ok {
		return nil, fmt.Errorf("donor %s is not a fleet member", u)
	}
	if rep.state != api.StateReady && rep.state != api.StateDraining {
		return nil, fmt.Errorf("donor %s is %s", u, rep.state)
	}
	return rep, nil
}

// shipCache streams one cache snapshot from donor to recipient and returns
// the recipient's merged entry count.
func (rt *Router) shipCache(ctx context.Context, donor, recipient *Replica) (int64, error) {
	snap, err := donor.cl.ExportCache(ctx)
	if err != nil {
		return 0, fmt.Errorf("export: %w", err)
	}
	defer snap.Close()
	resp, err := recipient.cl.ImportCache(ctx, snap)
	if err != nil {
		return 0, fmt.Errorf("import: %w", err)
	}
	return resp.Entries, nil
}

func (rt *Router) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	var req api.FleetLeaveRequest
	if !rt.decode(w, r, &req) {
		return
	}
	u := normalizeURL(req.URL)
	if !rt.lockFleet(w) {
		return
	}
	defer rt.unlockFleet()
	rt.mu.Lock()
	rep, ok := rt.replicas[u]
	if ok {
		// Eject before anything else: no new work may land on the leaver
		// while the handoff runs, and its sessions re-place immediately.
		rep.state = api.StateDraining
		rt.dropPlacementsLocked(u)
		rt.rebuildRingLocked()
	}
	rt.mu.Unlock()
	if !ok {
		rt.fail(w, http.StatusNotFound, fmt.Errorf("replica %s is not a fleet member", u))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), fleetOpTimeout)
	defer cancel()

	resp := api.FleetLeaveResponse{URL: u}
	if _, err := rep.cl.Drain(ctx); err == nil {
		resp.Drained = true
	}
	// Warm handoff: the leaver's cache ships to every surviving ready
	// replica (export is available while draining — that asymmetry is the
	// point). An unreachable leaver (crash, not planned removal) just
	// skips the handoff; removal proceeds either way.
	if !req.Cold && resp.Drained {
		rt.mu.Lock()
		survivors := rt.readyViewLocked().Ready
		rt.mu.Unlock()
		for i, sv := range survivors {
			entries, err := rt.shipCache(ctx, rep, sv)
			if err != nil {
				rt.fail(w, http.StatusBadGateway, fmt.Errorf("handoff from %s to %s: %w", u, sv.URL, err))
				return
			}
			if i == 0 {
				resp.Entries = entries
			}
			resp.Recipients = append(resp.Recipients, sv.URL)
		}
	}

	rt.mu.Lock()
	if cur, stillThere := rt.replicas[u]; stillThere && cur == rep {
		delete(rt.replicas, u)
		rt.rebuildRingLocked()
	}
	rt.mu.Unlock()
	rt.writeJSON(w, http.StatusOK, resp)
}

// decode reads a small JSON body; false means the response has been
// written.
func (rt *Router) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := rt.readBody(w, r, rt.cfg.MaxBodyBytes)
	if !ok {
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		rt.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}
