// Package router implements mctsrouter's fleet layer: a thin HTTP router
// in front of N mctsuid replicas that makes a fleet look like one daemon.
//
//   - Placement: requests are keyed ("s:<id>" for session traffic,
//     "q:<hash>" for stateless generates) and placed by a pluggable Policy
//     — consistent-hash affinity (default), round-robin, or least-loaded.
//     Session placements are sticky at the router level regardless of
//     policy: session state lives on one replica, so a session is re-placed
//     only when its replica leaves the ready set.
//   - Health: replicas are probed on an interval (one /v1/stats call
//     carries readiness, drain state, and load gauges); a replica that
//     fails FailAfter consecutive probes — or a single forwarded dial — is
//     ejected from the ring and its sessions re-placed on the survivors.
//     Failover is visible to clients only as created=true on the session's
//     next response (the fleet cannot resurrect a lost replica's state).
//   - Warm handoff: joining replicas are primed from the warmest donor's
//     /v1/cache/export before entering the ring, and a planned leave
//     drains the departing replica and ships its cache to the survivors —
//     so fleet membership changes never serve cold (internal/router/fleet.go).
//
// The router holds no search state of its own: every byte a client sees
// was produced by a replica, so determinism contracts (byte-identical
// responses for identical requests) survive the extra hop. All wire types
// are internal/api's; probes and handoff use the typed client.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/api/client"
)

// Config tunes the router; zero values take the defaults below.
type Config struct {
	// Replicas are the initial fleet members' base URLs.
	Replicas []string
	// Policy selects the routing policy by name: "affinity" (default),
	// "round-robin", or "least-loaded".
	Policy string
	// ProbeInterval is the health/stats probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive probe failures that eject a replica
	// (default 2). A forwarded request's dial failure ejects immediately.
	FailAfter int
	// VNodes is the consistent-hash points per replica (default 64).
	VNodes int
	// MaxBodyBytes bounds buffered request bodies (default 1 MiB, matching
	// the daemon). Bodies are buffered so a dial failure can fail over to
	// another replica with the request intact.
	MaxBodyBytes int64
	// MaxSnapshotBytes bounds /v1/cache/import bodies (default 256 MiB).
	MaxSnapshotBytes int64
	// MaxSessions bounds the sticky session-placement table; beyond it the
	// least-recently-routed placements are forgotten (default 4096 — a
	// forgotten placement re-places through the policy, which under
	// affinity lands on the same replica anyway).
	MaxSessions int
	// HTTPClient issues probes and forwards (a per-router default when nil).
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 256 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// Replica is one fleet member as the router sees it. Probe-fed fields are
// guarded by the Router's mutex; outstanding is the router's live count of
// forwarded-and-unfinished requests (the least-loaded policy's freshness
// signal between probes).
type Replica struct {
	// URL is the replica's base URL — its identity in the fleet.
	URL string

	cl          *client.Client
	outstanding atomic.Int64

	// Everything below is guarded by Router.mu.
	state        string // api.State*
	id           string // self-reported replica id
	sessions     int
	cacheEntries int64
	queued       int64
	inflight     int
	lastErr      string
	fails        int // consecutive probe failures
}

// load is the least-loaded policy's metric: the replica's own admission
// gauges at the last probe plus the router's live outstanding count.
func (rep *Replica) load() int64 {
	return rep.queued + int64(rep.inflight) + rep.outstanding.Load()
}

// stickyEntry records where a session lives and when it was last routed
// (LRU bound on the table).
type stickyEntry struct {
	url      string
	lastUsed time.Time
}

// Router is the fleet state. Construct with New, mount Handler, Close on
// shutdown.
type Router struct {
	cfg    Config
	policy Policy

	mu       sync.Mutex
	replicas map[string]*Replica
	ring     *ring
	sticky   map[string]stickyEntry

	// fleetMu serializes join/leave (each is a multi-step handoff; a second
	// concurrent mutation gets 409 instead of interleaving).
	fleetMu chan struct{}

	stopProbe context.CancelFunc
	probeWG   sync.WaitGroup
}

// New builds a Router over cfg.Replicas, probes them once synchronously
// (so the first request routes on real state), and starts the background
// probe loop. Close stops the loop.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	policy, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:      cfg,
		policy:   policy,
		replicas: make(map[string]*Replica),
		sticky:   make(map[string]stickyEntry),
		fleetMu:  make(chan struct{}, 1),
	}
	for _, u := range cfg.Replicas {
		u = normalizeURL(u)
		if u == "" {
			return nil, errors.New("empty replica URL")
		}
		rt.replicas[u] = rt.newReplica(u)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.ProbeTimeout)
	rt.ProbeOnce(ctx)
	cancel()
	probeCtx, stop := context.WithCancel(context.Background())
	rt.stopProbe = stop
	rt.probeWG.Add(1)
	go rt.probeLoop(probeCtx)
	return rt, nil
}

// Close stops the probe loop.
func (rt *Router) Close() {
	rt.stopProbe()
	rt.probeWG.Wait()
}

// Policy returns the active routing policy's name.
func (rt *Router) Policy() string { return rt.policy.Name() }

func (rt *Router) newReplica(u string) *Replica {
	cl := client.New(u)
	cl.HTTPClient = rt.cfg.HTTPClient
	cl.Retries = -1 // the router's failover is the retry
	return &Replica{URL: u, cl: cl, state: api.StateUnready}
}

func normalizeURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Handler returns the router's route table: the full v1 serving surface
// forwarded to replicas, plus the router-local fleet/health endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", rt.handleGenerate)
	mux.HandleFunc("POST /v1/sessions/{id}/queries", rt.handleSession)
	mux.HandleFunc("POST /v1/sessions/{id}/interact", rt.handleSession)
	mux.HandleFunc("POST /v1/sessions/{id}/import", rt.handleSession)
	mux.HandleFunc("GET /v1/sessions/{id}/export", rt.handleSession)
	mux.HandleFunc("GET /v1/cache/export", rt.handleCacheExport)
	mux.HandleFunc("POST /v1/cache/import", rt.handleCacheImport)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.HandleFunc("GET /v1/fleet", rt.handleFleet)
	mux.HandleFunc("POST /v1/fleet/join", rt.handleFleetJoin)
	mux.HandleFunc("POST /v1/fleet/leave", rt.handleFleetLeave)
	return mux
}

// --- Probing ----------------------------------------------------------------

func (rt *Router) probeLoop(ctx context.Context) {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			probeCtx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			rt.ProbeOnce(probeCtx)
			cancel()
		}
	}
}

// ProbeOnce probes every fleet member concurrently and applies the results:
// one /v1/stats call per replica carries readiness, drain state, identity,
// and the load gauges. Exported so tests (and the fleet handlers) can
// refresh state synchronously instead of waiting out ProbeInterval.
func (rt *Router) ProbeOnce(ctx context.Context) {
	reps := rt.members()
	results := make([]*api.StatsResponse, len(reps))
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			results[i], errs[i] = rep.cl.Stats(ctx)
		}(i, rep)
	}
	wg.Wait()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	changed := false
	for i, rep := range reps {
		if cur, ok := rt.replicas[rep.URL]; !ok || cur != rep {
			continue // left the fleet while the probe was in flight
		}
		prev := rep.state
		if errs[i] != nil {
			rep.fails++
			rep.lastErr = errs[i].Error()
			if rep.fails >= rt.cfg.FailAfter {
				rep.state = api.StateDead
			}
		} else {
			st := results[i]
			rep.fails = 0
			rep.lastErr = ""
			rep.id = st.Replica.ID
			rep.sessions = st.Replica.Sessions
			rep.cacheEntries = st.Cache.Entries
			rep.queued = st.Queued
			rep.inflight = st.Inflight
			switch {
			case st.Draining:
				rep.state = api.StateDraining
			case !st.Replica.Ready:
				rep.state = api.StateUnready
			default:
				rep.state = api.StateReady
			}
		}
		if rep.state != prev {
			changed = true
			if rep.state != api.StateReady {
				rt.dropPlacementsLocked(rep.URL)
			}
		}
	}
	if changed {
		rt.rebuildRingLocked()
	}
}

// markDead ejects a replica after a forwarded request's dial failure — the
// fastest failure signal there is, so it does not wait for FailAfter probes.
func (rt *Router) markDead(rep *Replica, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if cur, ok := rt.replicas[rep.URL]; !ok || cur != rep {
		return
	}
	rep.state = api.StateDead
	rep.fails = max(rep.fails, rt.cfg.FailAfter)
	rep.lastErr = err.Error()
	rt.dropPlacementsLocked(rep.URL)
	rt.rebuildRingLocked()
}

// dropPlacementsLocked forgets every sticky placement on url; those
// sessions re-place through the policy on their next request.
func (rt *Router) dropPlacementsLocked(url string) {
	for id, e := range rt.sticky {
		if e.url == url {
			delete(rt.sticky, id)
		}
	}
}

// rebuildRingLocked rebuilds the consistent-hash ring over the ready set.
func (rt *Router) rebuildRingLocked() {
	rt.ring = buildRing(rt.readyURLsLocked(), rt.cfg.VNodes)
}

func (rt *Router) readyURLsLocked() []string {
	urls := make([]string, 0, len(rt.replicas))
	for u, rep := range rt.replicas {
		if rep.state == api.StateReady {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	return urls
}

// members snapshots the fleet, sorted by URL.
func (rt *Router) members() []*Replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.membersLocked()
}

func (rt *Router) membersLocked() []*Replica {
	reps := make([]*Replica, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].URL < reps[j].URL })
	return reps
}

func (rt *Router) readyViewLocked() View {
	ready := make([]*Replica, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		if rep.state == api.StateReady {
			ready = append(ready, rep)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].URL < ready[j].URL })
	return View{Ready: ready, Ring: rt.ring}
}

// --- Placement --------------------------------------------------------------

var errNoReplicas = errors.New("no ready replicas in the fleet")

// place picks the replica for a request. Session keys consult the sticky
// table first — a live placement wins over any policy — and record their
// placement; stateless keys go straight to the policy.
func (rt *Router) place(key, session string) (*Replica, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	v := rt.readyViewLocked()
	if len(v.Ready) == 0 {
		return nil, errNoReplicas
	}
	if session == "" {
		return rt.policy.Pick(key, v), nil
	}
	if e, ok := rt.sticky[session]; ok {
		if rep := v.byURL(e.url); rep != nil {
			rt.sticky[session] = stickyEntry{url: e.url, lastUsed: time.Now()}
			return rep, nil
		}
		delete(rt.sticky, session) // placed on a replica that is gone: re-place below
	}
	rep := rt.policy.Pick(key, v)
	rt.sticky[session] = stickyEntry{url: rep.URL, lastUsed: time.Now()}
	rt.evictStickyLocked()
	return rep, nil
}

// evictStickyLocked bounds the sticky table: beyond MaxSessions the
// least-recently-routed placements are forgotten (collect-then-sort so the
// choice never depends on map order).
func (rt *Router) evictStickyLocked() {
	over := len(rt.sticky) - rt.cfg.MaxSessions
	if over <= 0 {
		return
	}
	type aged struct {
		id string
		at time.Time
	}
	entries := make([]aged, 0, len(rt.sticky))
	for id, e := range rt.sticky {
		entries = append(entries, aged{id: id, at: e.lastUsed})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].at.Equal(entries[j].at) {
			return entries[i].at.Before(entries[j].at)
		}
		return entries[i].id < entries[j].id
	})
	for _, e := range entries[:over] {
		delete(rt.sticky, e.id)
	}
}

// --- Forwarding -------------------------------------------------------------

func (rt *Router) handleGenerate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, rt.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	// Stateless generates key on content: identical request bodies revisit
	// the replica that already holds their cache warmth (under affinity).
	key := "q:" + strconv.FormatUint(hash64(string(body)), 16)
	rt.forward(w, r, key, "", body)
}

func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		rt.fail(w, http.StatusBadRequest, errors.New("empty session id"))
		return
	}
	body, ok := rt.readBody(w, r, rt.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	rt.forward(w, r, "s:"+id, id, body)
}

// readBody buffers the request body (so a dial failure can replay it
// against another replica); false means the response has been written.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", limit))
		} else {
			rt.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		}
		return nil, false
	}
	return body, true
}

// forward places and proxies one request, failing over on dial errors: a
// replica that cannot even be dialed never saw the request, so replaying
// the buffered body on the next placement is safe for any method. Once a
// byte of response has been received, failures propagate to the client
// instead (the replica may have acted).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key, session string, body []byte) {
	// Every live member is a potential placement; +1 covers a join racing in.
	attempts := 1 + len(rt.members())
	var lastErr error
	for i := 0; i < attempts; i++ {
		rep, err := rt.place(key, session)
		if err != nil {
			rt.fail(w, http.StatusServiceUnavailable, err)
			return
		}
		err = rt.tryForward(w, r, rep, body)
		if err == nil {
			return
		}
		if !dialFailure(err) || r.Context().Err() != nil {
			rt.fail(w, http.StatusBadGateway, fmt.Errorf("forwarding to %s: %w", rep.URL, err))
			return
		}
		rt.markDead(rep, err)
		lastErr = err
	}
	rt.fail(w, http.StatusBadGateway, fmt.Errorf("no replica accepted the request: %w", lastErr))
}

// dialFailure reports that err proves the request never reached a replica.
func dialFailure(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// tryForward proxies one attempt to rep, streaming the response (flushed
// per chunk, so SSE frames pass through live). A non-nil return means
// nothing was written to the client.
func (rt *Router) tryForward(w http.ResponseWriter, r *http.Request, rep *Replica, body []byte) error {
	rep.outstanding.Add(1)
	defer rep.outstanding.Add(-1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.URL+r.URL.RequestURI(), rd)
	if err != nil {
		return err
	}
	for _, h := range []string{"Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	copyResponse(w, resp, rep.URL)
	return nil
}

// copyResponse relays an upstream response, stamping which replica answered
// and flushing per chunk (SSE progress must not sit in a proxy buffer).
func copyResponse(w http.ResponseWriter, resp *http.Response, replicaURL string) {
	for _, h := range []string{"Content-Type", "Content-Disposition", "Cache-Control", "X-Replica"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fleet-Replica", replicaURL)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client gone; the upstream context cancels via r.Context
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// --- Cache transfer across the fleet ----------------------------------------

// handleCacheExport serves the warmest ready replica's snapshot: the best
// single capture of the fleet's accumulated warmth.
func (rt *Router) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	rep := rt.warmestReady()
	if rep == nil {
		rt.fail(w, http.StatusServiceUnavailable, errNoReplicas)
		return
	}
	if err := rt.tryForward(w, r, rep, nil); err != nil {
		rt.fail(w, http.StatusBadGateway, fmt.Errorf("exporting from %s: %w", rep.URL, err))
	}
}

// handleCacheImport warms the whole fleet from one snapshot: the body is
// buffered once and imported into every ready replica (first-write-wins
// cache semantics make re-imports idempotent and merge-safe). The reported
// entry count is the first recipient's.
func (rt *Router) handleCacheImport(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, rt.cfg.MaxSnapshotBytes)
	if !ok {
		return
	}
	rt.mu.Lock()
	ready := rt.readyViewLocked().Ready
	rt.mu.Unlock()
	if len(ready) == 0 {
		rt.fail(w, http.StatusServiceUnavailable, errNoReplicas)
		return
	}
	var out api.CacheImportResponse
	for i, rep := range ready {
		resp, err := rep.cl.ImportCache(r.Context(), bytes.NewReader(body))
		if err != nil {
			var se *client.StatusError
			if errors.As(err, &se) {
				rt.fail(w, se.Code, fmt.Errorf("import into %s: %s", rep.URL, se.Message))
			} else {
				rt.fail(w, http.StatusBadGateway, fmt.Errorf("import into %s: %w", rep.URL, err))
			}
			return
		}
		if i == 0 {
			out = *resp
		}
	}
	rt.writeJSON(w, http.StatusOK, out)
}

// warmestReady picks the ready replica with the most cache entries (ties by
// URL order) — export's source and join priming's default donor.
func (rt *Router) warmestReady() *Replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var best *Replica
	for _, rep := range rt.membersLocked() {
		if rep.state != api.StateReady {
			continue
		}
		if best == nil || rep.cacheEntries > best.cacheEntries {
			best = rep
		}
	}
	return best
}

// --- Observability ----------------------------------------------------------

// handleStats reports the fleet-wide aggregate in a single replica's shape
// (counters summed, ratios recomputed) plus the per-replica breakdown, by
// fanning out live /v1/stats calls — a load harness pointed at the router
// scrapes it exactly as it would one daemon.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	reps := rt.members()
	results := make([]*api.StatsResponse, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			results[i], _ = rep.cl.Stats(r.Context())
		}(i, rep)
	}
	wg.Wait()

	var agg api.FleetStatsResponse
	live := 0
	for _, st := range results {
		if st == nil {
			continue
		}
		live++
		agg.Cache.Hits += st.Cache.Hits
		agg.Cache.Misses += st.Cache.Misses
		agg.Cache.Entries += st.Cache.Entries
		agg.Cache.Evictions += st.Cache.Evictions
		agg.Cache.Capacity += st.Cache.Capacity
		agg.Admission.Served += st.Admission.Served
		agg.Admission.Overflow429 += st.Admission.Overflow429
		agg.Admission.QueueTimeout503 += st.Admission.QueueTimeout503
		agg.Admission.Draining503 += st.Admission.Draining503
		agg.Admission.ClientGone += st.Admission.ClientGone
		agg.Admission.QueueWaitMS += st.Admission.QueueWaitMS
		agg.Sessions += st.Sessions
		agg.Inflight += st.Inflight
		agg.Queued += st.Queued
		agg.Requests += st.Requests
		agg.Rejected += st.Rejected
	}
	if lookups := agg.Cache.Hits + agg.Cache.Misses; lookups > 0 {
		agg.Cache.HitRate = float64(agg.Cache.Hits) / float64(lookups)
	}
	if agg.Cache.Capacity > 0 {
		agg.Cache.Occupancy = float64(agg.Cache.Entries) / float64(agg.Cache.Capacity)
	}
	fleet := rt.fleetReplicas()
	readyCount := 0
	for _, fr := range fleet {
		if fr.State == api.StateReady {
			readyCount++
		}
	}
	agg.Replica = api.ReplicaStats{ID: "mctsrouter", Ready: readyCount > 0, Sessions: agg.Sessions}
	agg.Draining = live > 0 && readyCount == 0
	agg.Replica.Draining = agg.Draining
	agg.Fleet = fleet
	rt.writeJSON(w, http.StatusOK, agg)
}

// fleetReplicas snapshots every member's status, sorted by URL.
func (rt *Router) fleetReplicas() []api.FleetReplica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]api.FleetReplica, 0, len(rt.replicas))
	for _, rep := range rt.membersLocked() {
		out = append(out, api.FleetReplica{
			URL:          rep.URL,
			ID:           rep.id,
			State:        rep.state,
			Sessions:     rep.sessions,
			CacheEntries: rep.cacheEntries,
			Queued:       rep.queued,
			Inflight:     rep.inflight,
			LastError:    rep.lastErr,
		})
	}
	return out
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	fleet := rt.fleetReplicas()
	ready := 0
	for _, fr := range fleet {
		if fr.State == api.StateReady {
			ready++
		}
	}
	rt.mu.Lock()
	stickyCount := len(rt.sticky)
	rt.mu.Unlock()
	rt.writeJSON(w, http.StatusOK, api.FleetResponse{
		Policy:         rt.policy.Name(),
		Replicas:       fleet,
		ReadyReplicas:  ready,
		StickySessions: stickyCount,
	})
}

// handleHealth is the router's own liveness: the router can always answer.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Ready: rt.readyCount() > 0})
}

// handleReady is routability: 200 iff at least one replica is ready.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.readyCount() == 0 {
		rt.writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{Status: "no ready replicas"})
		return
	}
	rt.writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ready", Ready: true})
}

func (rt *Router) readyCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, rep := range rt.replicas {
		if rep.state == api.StateReady {
			n++
		}
	}
	return n
}

// --- Helpers ----------------------------------------------------------------

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (rt *Router) fail(w http.ResponseWriter, status int, err error) {
	rt.writeJSON(w, status, api.ErrorBody{Error: err.Error()})
}
