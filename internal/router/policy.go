package router

import (
	"fmt"
	"sync/atomic"
)

// View is the routing state a Policy picks from: the ready replicas (sorted
// by URL, never empty when Pick is called) and the consistent-hash ring
// built over exactly those replicas.
type View struct {
	// Ready is the routable replica set, sorted by URL.
	Ready []*Replica
	// Ring hashes keys onto Ready's URLs.
	Ring *ring
}

// byURL returns the ready replica with the given URL (nil when absent).
func (v View) byURL(url string) *Replica {
	for _, rep := range v.Ready {
		if rep.URL == url {
			return rep
		}
	}
	return nil
}

// Policy places a request key on a replica. Keys are stable identifiers:
// "s:<session-id>" for session traffic, "q:<content-hash>" for stateless
// generates — so an affinity policy can keep equal work on equal replicas.
// Pick is called with at least one ready replica and must return one of
// them; the Router owns session stickiness (a session key is re-Picked only
// on first placement and after its replica is lost), so policies are pure
// placement functions.
type Policy interface {
	// Name is the -policy flag value selecting this policy.
	Name() string
	// Pick chooses a replica from v for key.
	Pick(key string, v View) *Replica
}

// NewPolicy resolves a -policy flag value.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", "affinity":
		return affinityPolicy{}, nil
	case "round-robin":
		return &roundRobinPolicy{}, nil
	case "least-loaded":
		return leastLoadedPolicy{}, nil
	default:
		return nil, fmt.Errorf("unknown routing policy %q (want affinity, round-robin, or least-loaded)", name)
	}
}

// affinityPolicy routes by consistent hash: a key lands on the same replica
// for as long as that replica stays ready, so session state and the
// transposition-cache warmth a key builds up are revisited instead of
// re-derived. The default, and the policy the byte-identity handoff tests
// run under — with one replica owning a key, fleet results match a
// single-daemon run exactly.
type affinityPolicy struct{}

func (affinityPolicy) Name() string { return "affinity" }

func (affinityPolicy) Pick(key string, v View) *Replica {
	if rep := v.byURL(v.Ring.lookup(key)); rep != nil {
		return rep
	}
	return v.Ready[0] // ring and ready set disagree only mid-rebuild; any ready replica serves
}

// roundRobinPolicy spreads keys uniformly in arrival order, ignoring both
// key identity and replica load. Best when requests are cheap and uniform
// and cache locality matters less than even spread.
type roundRobinPolicy struct {
	next atomic.Uint64
}

func (*roundRobinPolicy) Name() string { return "round-robin" }

func (p *roundRobinPolicy) Pick(key string, v View) *Replica {
	return v.Ready[(p.next.Add(1)-1)%uint64(len(v.Ready))]
}

// leastLoadedPolicy routes each key to the replica with the smallest load —
// the replica's own admission gauges from its last probe (queued + inflight
// searches) plus the router's live count of requests it has forwarded there
// and not yet seen complete, which covers the window between probes. Ties
// break by URL order. Best under heterogeneous request costs, where a few
// long searches would starve a round-robin slot.
type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Name() string { return "least-loaded" }

func (leastLoadedPolicy) Pick(key string, v View) *Replica {
	best := v.Ready[0]
	bestLoad := best.load()
	for _, rep := range v.Ready[1:] {
		if l := rep.load(); l < bestLoad {
			best, bestLoad = rep, l
		}
	}
	return best
}
