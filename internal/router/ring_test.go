package router

import (
	"fmt"
	"testing"
)

func ringURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return urls
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("s:session-%d", i)
	}
	return keys
}

func TestRingDeterministicAndTotal(t *testing.T) {
	urls := ringURLs(5)
	a, b := buildRing(urls, 64), buildRing(urls, 64)
	owned := make(map[string]int)
	for _, k := range ringKeys(1000) {
		ua, ub := a.lookup(k), b.lookup(k)
		if ua != ub {
			t.Fatalf("key %q: two identical rings disagree: %q vs %q", k, ua, ub)
		}
		if ua == "" {
			t.Fatalf("key %q: no owner on a populated ring", k)
		}
		owned[ua]++
	}
	// Every replica owns a share of the key space: 64 vnodes over 5 replicas
	// cannot leave one starved to zero for 1000 keys.
	for _, u := range urls {
		if owned[u] == 0 {
			t.Errorf("replica %s owns no keys (distribution %v)", u, owned)
		}
	}
}

// TestRingRemovalMovesOnlyOrphans pins the consistent-hashing contract: when
// a replica leaves, exactly the keys it owned are re-placed — every other
// key keeps its replica, which is what makes session and cache-affinity
// placement survive membership churn.
func TestRingRemovalMovesOnlyOrphans(t *testing.T) {
	urls := ringURLs(5)
	full := buildRing(urls, 64)
	gone := urls[2]
	smaller := buildRing(append(append([]string{}, urls[:2]...), urls[3:]...), 64)

	moved := 0
	for _, k := range ringKeys(1000) {
		before, after := full.lookup(k), smaller.lookup(k)
		if before == gone {
			moved++
			if after == gone || after == "" {
				t.Fatalf("key %q still routes to the removed replica", k)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %q -> %q though its replica never left", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned no keys; the test proved nothing")
	}
	// The orphaned share should be in the neighborhood of 1/5 of the space.
	if moved > 500 {
		t.Errorf("removing one of five replicas moved %d/1000 keys", moved)
	}
}

// TestRingAdditionStealsOnlyForNewcomer is the join-side mirror: a new
// replica takes over some keys, and every key it did not take stays put.
func TestRingAdditionStealsOnlyForNewcomer(t *testing.T) {
	urls := ringURLs(4)
	small := buildRing(urls, 64)
	newcomer := "http://replica-new:8080"
	grown := buildRing(append(append([]string{}, urls...), newcomer), 64)

	stolen := 0
	for _, k := range ringKeys(1000) {
		before, after := small.lookup(k), grown.lookup(k)
		if after == newcomer {
			stolen++
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %q -> %q to a replica that was already present", k, before, after)
		}
	}
	if stolen == 0 {
		t.Fatal("newcomer took no keys")
	}
	if stolen > 500 {
		t.Errorf("adding a fifth replica moved %d/1000 keys", stolen)
	}
}

func TestRingEmpty(t *testing.T) {
	if got := buildRing(nil, 64).lookup("s:any"); got != "" {
		t.Errorf("empty ring returned %q", got)
	}
	var nilRing *ring
	if got := nilRing.lookup("s:any"); got != "" {
		t.Errorf("nil ring returned %q", got)
	}
}
