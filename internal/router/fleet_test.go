package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	mctsui "repro"
	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/server"
)

// The paper's three-query log: every search over it takes milliseconds.
var fleetQueries = []string{
	"SELECT Sales FROM sales WHERE cty = USA",
	"SELECT Costs FROM sales WHERE cty = EUR",
	"SELECT Costs FROM sales",
}

var fleetParams = api.SearchParams{Iterations: 8, Seed: 7}

// startDaemon brings up one real mctsuid replica (full server stack) on an
// httptest listener.
func startDaemon(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// startRouter builds a Router over the replicas and serves it. The probe
// interval is pushed way out so tests drive probing explicitly (ProbeOnce)
// and the dial-failure path — not timer luck — is what the assertions see.
func startRouter(t *testing.T, policy string, replicas ...string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(Config{
		Replicas:      replicas,
		Policy:        policy,
		ProbeInterval: time.Hour,
		ProbeTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func fleetClient(base string) *client.Client {
	cl := client.New(base)
	cl.Retries = -1
	return cl
}

// replicaSessions asks a daemon (directly, not through the router) how many
// sessions it holds.
func replicaSessions(t *testing.T, base string) int {
	t.Helper()
	st, err := fleetClient(base).Stats(context.Background())
	if err != nil {
		t.Fatalf("stats from %s: %v", base, err)
	}
	return st.Replica.Sessions
}

// TestFleetSessionAffinityPlacement: sessions created through the router
// land once and stay put — the second append to every session must find the
// state the first one created (created=false), which can only happen if the
// router kept routing the session to the replica that holds it.
func TestFleetSessionAffinityPlacement(t *testing.T) {
	_, tsA := startDaemon(t, server.Config{})
	_, tsB := startDaemon(t, server.Config{})
	_, tsR := startRouter(t, "affinity", tsA.URL, tsB.URL)
	cl := fleetClient(tsR.URL)
	ctx := context.Background()

	const sessions = 24
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = "aff-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26))
		resp, err := cl.Append(ctx, ids[i], &api.SessionQueriesRequest{
			SearchParams: fleetParams, Queries: fleetQueries[:2],
		})
		if err != nil {
			t.Fatalf("create %s: %v", ids[i], err)
		}
		if !resp.Created {
			t.Fatalf("session %s: first append not created", ids[i])
		}
	}
	for _, id := range ids {
		resp, err := cl.Append(ctx, id, &api.SessionQueriesRequest{
			SearchParams: fleetParams, Queries: fleetQueries[2:],
		})
		if err != nil {
			t.Fatalf("append %s: %v", id, err)
		}
		if resp.Created {
			t.Errorf("session %s: second append re-created state — the router moved a healthy session", id)
		}
		if resp.QueryCount != 3 {
			t.Errorf("session %s: query count %d, want 3", id, resp.QueryCount)
		}
	}

	// The sessions really are spread over the fleet, and nothing was lost.
	onA, onB := replicaSessions(t, tsA.URL), replicaSessions(t, tsB.URL)
	if onA+onB != sessions {
		t.Errorf("fleet holds %d+%d sessions, want %d", onA, onB, sessions)
	}
	if onA == 0 || onB == 0 {
		t.Errorf("affinity placed every session on one replica (%d/%d) — ring not spreading", onA, onB)
	}

	// The fleet surface agrees: two ready replicas, all sessions sticky.
	fleet, err := cl.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.ReadyReplicas != 2 || len(fleet.Replicas) != 2 {
		t.Errorf("fleet = %+v, want 2 ready of 2", fleet)
	}
	if fleet.StickySessions != sessions {
		t.Errorf("sticky sessions %d, want %d", fleet.StickySessions, sessions)
	}
	if fleet.Policy != "affinity" {
		t.Errorf("policy %q", fleet.Policy)
	}

	// The aggregate stats scrape like one daemon: requests sum across the
	// fleet, and the per-replica breakdown carries both members.
	agg, err := cl.FleetStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Requests != 2*sessions {
		t.Errorf("aggregate requests %d, want %d", agg.Requests, 2*sessions)
	}
	if len(agg.Fleet) != 2 {
		t.Errorf("aggregate breakdown has %d replicas, want 2", len(agg.Fleet))
	}
}

// TestFleetFailoverMidSession kills a session's replica mid-session and
// requires the next request — a streaming append, the hardest case — to fail
// over to the survivor and complete. The fleet cannot resurrect the lost
// replica's state, so the failover is visible as created=true; what must
// not happen is an error reaching the client.
func TestFleetFailoverMidSession(t *testing.T) {
	_, tsA := startDaemon(t, server.Config{})
	_, tsB := startDaemon(t, server.Config{})
	_, tsR := startRouter(t, "affinity", tsA.URL, tsB.URL)
	cl := fleetClient(tsR.URL)
	ctx := context.Background()

	const id = "failover-victim"
	if _, err := cl.Append(ctx, id, &api.SessionQueriesRequest{
		SearchParams: fleetParams, Queries: fleetQueries[:2],
	}); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Find and kill the replica holding the session.
	holder, survivor := tsA, tsB
	if replicaSessions(t, tsA.URL) == 0 {
		holder, survivor = tsB, tsA
	}
	holder.Close()

	// The streaming append must complete against the survivor: the router
	// sees the dial failure (the request never reached a replica), ejects the
	// dead member, and replays the buffered body on the re-placement.
	progress := 0
	resp, err := cl.AppendStream(ctx, id, &api.SessionQueriesRequest{
		SearchParams: fleetParams, Queries: fleetQueries[2:],
	}, func(ev client.StreamEvent) {
		if ev.Name == api.EventProgress {
			progress++
		}
	})
	if err != nil {
		t.Fatalf("append after replica death: %v", err)
	}
	if !resp.Created {
		t.Error("failover did not re-create the session (state cannot survive a dead replica)")
	}
	if !resp.Valid {
		t.Error("failover response carries no valid interface")
	}
	if progress == 0 {
		t.Error("stream delivered no progress events through the router")
	}
	if got := replicaSessions(t, survivor.URL); got == 0 {
		t.Error("survivor holds no sessions after failover")
	}

	// The dead member is ejected, the fleet stays routable.
	fleet, err := cl.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.ReadyReplicas != 1 {
		t.Errorf("ready replicas %d, want 1 after the kill", fleet.ReadyReplicas)
	}
	for _, rep := range fleet.Replicas {
		if rep.URL == normalizeURL(holder.URL) && rep.State != api.StateDead {
			t.Errorf("killed replica reported %q, want %q", rep.State, api.StateDead)
		}
	}
	if ok, err := cl.Ready(ctx); err != nil || !ok {
		t.Errorf("router readyz after failover: %v %v", ok, err)
	}
}

// TestFleetWarmHandoffByteIdentity is the planned-removal story end to end:
// a fleet of one serves a trace; a cold successor joins (primed from the
// donor's cache), the original leaves (drain + handoff); the successor must
// serve the same trace byte-identically — warmth moved, answers did not —
// and warm, with cache hits from its very first request.
func TestFleetWarmHandoffByteIdentity(t *testing.T) {
	_, tsA := startDaemon(t, server.Config{})
	cacheB := mctsui.NewCache(0)
	_, tsB := startDaemon(t, server.Config{Cache: cacheB})
	_, tsR := startRouter(t, "affinity", tsA.URL)
	cl := fleetClient(tsR.URL)
	ctx := context.Background()

	trace := []api.GenerateRequest{
		{SearchParams: api.SearchParams{Iterations: 8, Seed: 7}, Queries: fleetQueries},
		{SearchParams: api.SearchParams{Iterations: 12, Seed: 3}, Queries: fleetQueries},
		{SearchParams: api.SearchParams{Iterations: 8, Seed: 7, Strategy: "beam:4"}, Queries: fleetQueries},
	}
	serveTrace := func(label string) [][]byte {
		out := make([][]byte, len(trace))
		for i, req := range trace {
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			status, resp, err := cl.PostJSON(ctx, "/v1/generate", body)
			if err != nil || status != 200 {
				t.Fatalf("%s request %d: status %d err %v", label, i, status, err)
			}
			out[i] = resp
		}
		return out
	}
	before := serveTrace("single-replica pass")

	// Warm bring-up: B joins and is primed from A's cache before taking
	// traffic.
	join, err := cl.FleetJoin(ctx, &api.FleetJoinRequest{URL: tsB.URL})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if !join.Primed || join.Donor != normalizeURL(tsA.URL) || join.Entries <= 0 {
		t.Fatalf("join = %+v, want primed from %s with entries", join, tsA.URL)
	}
	if st := cacheB.Stats(); st.Entries == 0 {
		t.Fatal("join reported primed but the successor's cache is empty")
	}

	// Planned removal: A drains, ships its cache to the survivors, leaves.
	leave, err := cl.FleetLeave(ctx, &api.FleetLeaveRequest{URL: tsA.URL})
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if !leave.Drained {
		t.Errorf("leave did not drain: %+v", leave)
	}
	if len(leave.Recipients) != 1 || leave.Recipients[0] != normalizeURL(tsB.URL) {
		t.Errorf("handoff recipients %v, want [%s]", leave.Recipients, tsB.URL)
	}
	// The drained replica refuses new work but stayed alive through the
	// handoff (liveness vs readiness).
	clA := fleetClient(tsA.URL)
	if ok, err := clA.Ready(ctx); err != nil || ok {
		t.Errorf("drained replica readyz = %v %v, want unready", ok, err)
	}
	if ok, err := clA.Healthy(ctx); err != nil || !ok {
		t.Errorf("drained replica healthz = %v %v, want alive", ok, err)
	}

	fleet, err := cl.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Replicas) != 1 || fleet.Replicas[0].URL != normalizeURL(tsB.URL) {
		t.Fatalf("fleet after leave = %+v, want only the successor", fleet.Replicas)
	}

	hitsBefore := cacheB.Stats().Hits
	after := serveTrace("successor pass")
	for i := range trace {
		if !bytes.Equal(before[i], after[i]) {
			t.Errorf("request %d: successor response differs from the original replica's\nA: %s\nB: %s",
				i, before[i], after[i])
		}
	}
	// Warm from the first request: the successor serves the trace against
	// shipped verdicts, so its lookups hit instead of recomputing.
	st := cacheB.Stats()
	if st.Hits == hitsBefore {
		t.Error("successor served the trace with zero cache hits — handoff shipped no usable warmth")
	}
	if rate := st.HitRate(); rate < 0.5 {
		t.Errorf("successor hit rate %.3f, want >= 0.5 (warm from first request); stats %+v", rate, st)
	}
}

// TestRouterNoReadyReplicas: a fleet with nothing routable is alive but not
// ready, and says so on both surfaces.
func TestRouterNoReadyReplicas(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	_, tsR := startRouter(t, "affinity", deadURL)
	cl := fleetClient(tsR.URL)
	ctx := context.Background()

	if ok, err := cl.Healthy(ctx); err != nil || !ok {
		t.Errorf("router healthz = %v %v, want alive", ok, err)
	}
	if ok, err := cl.Ready(ctx); err != nil || ok {
		t.Errorf("router readyz = %v %v, want not ready", ok, err)
	}
	_, err := cl.Generate(ctx, &api.GenerateRequest{SearchParams: fleetParams, Queries: fleetQueries})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Errorf("generate with no replicas: %v, want 503", err)
	}
}
