package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica base URLs: each replica
// contributes vnodes points (fnv64a of "url#i") on a sorted uint64 circle,
// and a key routes to the first point clockwise of its hash. With V vnodes
// per replica, adding or removing one replica moves only ~1/N of the key
// space and leaves every other key's placement untouched — the property
// that keeps session and cache-affinity placement stable across fleet
// membership changes.
//
// The ring is immutable once built; the Router rebuilds it (cheap: N×V
// hashes) whenever the ready set changes.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	url  string
}

// buildRing constructs the ring over urls with vnodes points per URL.
// Duplicate hash collisions are resolved by URL order (stable because the
// sort is total over (hash, url)).
func buildRing(urls []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(urls)*vnodes)}
	for _, u := range urls {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(u + "#" + strconv.Itoa(i)), url: u})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].url < r.points[j].url
	})
	return r
}

// lookup returns the URL owning key, or "" on an empty ring.
func (r *ring) lookup(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) { // wrap past the last point
		i = 0
	}
	return r.points[i].url
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// fnv64a alone clusters similar short strings (vnode labels "url#0".."url#63",
	// session ids differing in a trailing digit) into narrow arcs, which
	// collapses the ring to a handful of effective points. A splitmix64-style
	// avalanche finalizer spreads them over the whole circle.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
