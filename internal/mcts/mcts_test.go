package mcts

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// lineState is a toy domain: integers 0..n-1 on a line, reward peaked at a
// hidden target. Neighbors are ±1. A random walker drifts; UCT should home
// in on the peak.
type lineState int

func (s lineState) Hash() uint64 { return uint64(s) }

type lineDomain struct {
	n, target int
}

func (d lineDomain) Neighbors(s State) []State {
	v := int(s.(lineState))
	var out []State
	if v > 0 {
		out = append(out, lineState(v-1))
	}
	if v < d.n-1 {
		out = append(out, lineState(v+1))
	}
	return out
}

func (d lineDomain) Reward(s State) float64 {
	v := int(s.(lineState))
	dist := math.Abs(float64(v - d.target))
	return 1.0 / (1.0 + dist)
}

// trapDomain has a deceptive local optimum near the start (a greedy hill
// climber parks there) plus a gentle slope toward the distant global
// optimum; exploration must escape the trap.
type trapDomain struct{ lineDomain }

func (d trapDomain) Reward(s State) float64 {
	v := int(s.(lineState))
	switch {
	case v == 2:
		return 0.5 // local optimum: both neighbors score lower
	case v == d.target:
		return 1.0
	default:
		return 0.1 + 0.3*float64(v)/float64(d.n)
	}
}

func TestSearchFindsPeak(t *testing.T) {
	d := lineDomain{n: 40, target: 25}
	res := Search(context.Background(), d, lineState(0), Config{Iterations: 600, MaxRolloutDepth: 60, Seed: 5, EvaluateChildren: true})
	got := int(res.Best.(lineState))
	if got != d.target {
		t.Errorf("best state = %d, want %d (reward %f)", got, d.target, res.BestReward)
	}
	if res.BestReward != 1.0 {
		t.Errorf("best reward = %f", res.BestReward)
	}
	if res.Iterations != 600 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.Expanded == 0 || res.Rollouts == 0 || res.Evals == 0 {
		t.Errorf("counters zero: %+v", res)
	}
}

func TestSearchEscapesTrap(t *testing.T) {
	d := trapDomain{lineDomain{n: 30, target: 22}}
	res := Search(context.Background(), d, lineState(0), Config{Iterations: 800, MaxRolloutDepth: 40, Seed: 3, EvaluateChildren: true})
	if int(res.Best.(lineState)) != 22 {
		t.Errorf("stuck at %d (reward %f)", int(res.Best.(lineState)), res.BestReward)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	d := lineDomain{n: 40, target: 31}
	cfg := Config{Iterations: 100, MaxRolloutDepth: 30, Seed: 9}
	a := Search(context.Background(), d, lineState(0), cfg)
	b := Search(context.Background(), d, lineState(0), cfg)
	if a.Best.(lineState) != b.Best.(lineState) || a.Evals != b.Evals || a.Rollouts != b.Rollouts {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestMoreIterationsNoWorse(t *testing.T) {
	d := lineDomain{n: 100, target: 83}
	short := Search(context.Background(), d, lineState(0), Config{Iterations: 10, MaxRolloutDepth: 20, Seed: 2})
	long := Search(context.Background(), d, lineState(0), Config{Iterations: 500, MaxRolloutDepth: 20, Seed: 2})
	if long.BestReward < short.BestReward {
		t.Errorf("more iterations got worse: %f vs %f", long.BestReward, short.BestReward)
	}
}

// terminalDomain has no moves at all: the search must terminate and return
// the root.
type terminalDomain struct{}

func (terminalDomain) Neighbors(State) []State { return nil }
func (terminalDomain) Reward(State) float64    { return 0.25 }

func TestTerminalRoot(t *testing.T) {
	res := Search(context.Background(), terminalDomain{}, lineState(7), Config{Iterations: 5, Seed: 1})
	if res.Best.(lineState) != 7 {
		t.Error("root should be best in a terminal domain")
	}
	if res.BestReward != 0.25 {
		t.Errorf("reward = %f", res.BestReward)
	}
}

// samplerDomain verifies the Sampler fast path is used during rollouts.
type samplerDomain struct {
	lineDomain
	samplerCalls int
}

func (d *samplerDomain) RandomNeighbor(s State, rng *rand.Rand) (State, bool) {
	d.samplerCalls++
	ns := d.Neighbors(s)
	if len(ns) == 0 {
		return nil, false
	}
	return ns[rng.Intn(len(ns))], true
}

func TestSamplerUsed(t *testing.T) {
	d := &samplerDomain{lineDomain: lineDomain{n: 20, target: 15}}
	Search(context.Background(), d, lineState(0), Config{Iterations: 20, MaxRolloutDepth: 10, Seed: 4})
	if d.samplerCalls == 0 {
		t.Error("sampler never called")
	}
}

func TestTimeBudget(t *testing.T) {
	d := lineDomain{n: 1000, target: 999}
	start := time.Now()
	res := Search(context.Background(), d, lineState(0), Config{TimeBudget: 30 * time.Millisecond, MaxRolloutDepth: 10, Seed: 1})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("time budget ignored: ran %v", elapsed)
	}
	if res.Iterations == 0 {
		t.Error("no iterations within budget")
	}
}

// fanDomain is a one-level star: the root has `fan` children, every child is
// terminal, and each Reward call burns `delay`. It models the large-fanout
// difftree states where one simulation pass dominates an iteration.
type fanDomain struct {
	fan   int
	delay time.Duration
	evals func() // called on every Reward, before the delay
}

func (d fanDomain) Neighbors(s State) []State {
	if int(s.(lineState)) != 0 {
		return nil
	}
	out := make([]State, d.fan)
	for i := range out {
		out[i] = lineState(i + 1)
	}
	return out
}

func (d fanDomain) Reward(State) float64 {
	if d.evals != nil {
		d.evals()
	}
	time.Sleep(d.delay)
	return 0.5
}

// TestTimeBudgetNotOverrunByFanout is the regression test for the
// time-budget overrun: the simulation loop used to re-check only the
// context between children, never the wall-clock deadline, so one iteration
// over a large fanout ran arbitrarily past TimeBudget (here ~1.5s of child
// rollouts against a 50ms budget). The deadline must now cut the pass.
func TestTimeBudgetNotOverrunByFanout(t *testing.T) {
	d := fanDomain{fan: 300, delay: 5 * time.Millisecond}
	start := time.Now()
	Search(context.Background(), d, lineState(0), Config{TimeBudget: 50 * time.Millisecond, MaxRolloutDepth: 4, Seed: 1})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("TimeBudget=50ms overrun to %v by a fanout-300 simulation pass", elapsed)
	}
}

// TestCancelledIterationNotCounted is the regression test for the
// iteration off-by-one: the counter used to be incremented before iterate
// ran, so a search cancelled mid-iteration reported one more completed
// iteration than it performed. The context is cancelled from inside the
// first simulation pass; the aborted iteration must not be counted.
func TestCancelledIterationNotCounted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	d := fanDomain{fan: 10, evals: func() {
		calls++
		if calls == 2 { // call 1 scores the root; call 2 is mid-iteration
			cancel()
		}
	}}
	res := Search(ctx, d, lineState(0), Config{Iterations: 50, MaxRolloutDepth: 4, Seed: 1})
	if !res.Interrupted {
		t.Error("mid-iteration cancellation must report Interrupted")
	}
	if res.Iterations != 0 {
		t.Errorf("aborted iteration was counted: Iterations = %d, want 0", res.Iterations)
	}
}

func TestContextCancellation(t *testing.T) {
	d := lineDomain{n: 1000, target: 999}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the search must stop immediately
	res := Search(ctx, d, lineState(0), Config{Iterations: 1 << 30, MaxRolloutDepth: 10, Seed: 1})
	if !res.Interrupted {
		t.Error("cancelled search must report Interrupted")
	}
	if res.Iterations != 0 {
		t.Errorf("cancelled-before-start search ran %d iterations", res.Iterations)
	}
	if res.Best == nil {
		t.Error("cancelled search must still return the best-so-far state (the root)")
	}
}

func TestContextDeadline(t *testing.T) {
	d := lineDomain{n: 100000, target: 99999}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := Search(ctx, d, lineState(0), Config{Iterations: 1 << 30, MaxRolloutDepth: 50, Seed: 1})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline ignored: ran %v", elapsed)
	}
	if !res.Interrupted {
		t.Error("deadline-terminated search must report Interrupted")
	}
	if res.Best == nil {
		t.Error("no best-so-far state")
	}
}

func TestProgressCallback(t *testing.T) {
	d := lineDomain{n: 40, target: 25}
	var snaps []Result
	Search(context.Background(), d, lineState(0), Config{
		Iterations: 25, MaxRolloutDepth: 10, Seed: 2,
		Progress: func(r Result) { snaps = append(snaps, r) },
	})
	if len(snaps) != 25 {
		t.Fatalf("progress called %d times, want 25", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Iterations != snaps[i-1].Iterations+1 {
			t.Error("iteration counts must increase by one per snapshot")
		}
		if snaps[i].BestReward < snaps[i-1].BestReward {
			t.Error("best reward must be monotone non-decreasing")
		}
		if snaps[i].Evals < snaps[i-1].Evals {
			t.Error("eval counts must be monotone")
		}
	}
}

func TestUCTMath(t *testing.T) {
	parent := &node{visits: 10}
	child := &node{parent: parent, visits: 2, total: 1.0}
	got := uct(child, 1.0)
	want := 0.5 + math.Sqrt(math.Log(10)/2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("uct = %f, want %f", got, want)
	}
	if !math.IsInf(uct(&node{parent: parent}, 1.0), 1) {
		t.Error("unvisited node must have infinite UCT")
	}
	root := &node{visits: 3, total: 1.5}
	if uct(root, 1.0) != 0.5 {
		t.Error("root UCT is pure exploitation")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MaxRolloutDepth != 200 {
		t.Error("paper rollout depth is 200")
	}
	if cfg.C != math.Sqrt2 {
		t.Error("default C")
	}
	// Zero-value config still runs (defaults kick in).
	res := Search(context.Background(), lineDomain{n: 5, target: 4}, lineState(0), Config{Seed: 1})
	if res.Iterations == 0 {
		t.Error("zero config should default to a bounded run")
	}
}

func TestBackprop(t *testing.T) {
	root := &node{}
	mid := &node{parent: root}
	leaf := &node{parent: mid}
	backprop(leaf, 0.75)
	for i, n := range []*node{root, mid, leaf} {
		if n.visits != 1 || n.total != 0.75 {
			t.Errorf("node %d: visits=%d total=%f", i, n.visits, n.total)
		}
	}
}
