package mcts

import (
	"context"
	"testing"
)

// TestReuseReRootsAndSavesEvals: feeding a previous run's tree back through
// Config.Reuse re-roots the search on the persisted statistics, which must
// cost fewer Reward calls than an identical from-scratch run — visited
// children skip their simulation pass — at an equal-or-better best reward.
func TestReuseReRootsAndSavesEvals(t *testing.T) {
	d := lineDomain{n: 60, target: 12}
	base := Config{Iterations: 300, MaxRolloutDepth: 30, Seed: 11, EvaluateChildren: true}

	first := Search(context.Background(), d, lineState(0), base)
	if first.Tree == nil {
		t.Fatal("sequential search returned no tree")
	}
	if first.ReRooted {
		t.Fatal("fresh search claims re-rooting")
	}

	warm := base
	warm.Reuse = first.Tree
	second := Search(context.Background(), d, lineState(0), warm)
	if !second.ReRooted {
		t.Fatal("root state is in the reused tree but search did not re-root")
	}

	cold := Search(context.Background(), d, lineState(0), base)
	if second.Evals >= cold.Evals {
		t.Errorf("re-rooted run used %d evals, from-scratch %d; reuse must be cheaper", second.Evals, cold.Evals)
	}
	if cold.BestReward != 1.0 || second.BestReward != 1.0 {
		t.Errorf("peak missed: cold reward %f, re-rooted reward %f, want 1.0 for both", cold.BestReward, second.BestReward)
	}
}

// TestReuseReRootsAtDescendant: a warm start typically moves the root to a
// state deeper in the previous tree; the subtree there is found by hash and
// its statistics survive.
func TestReuseReRootsAtDescendant(t *testing.T) {
	d := lineDomain{n: 60, target: 12}
	base := Config{Iterations: 300, MaxRolloutDepth: 30, Seed: 7, EvaluateChildren: true}
	first := Search(context.Background(), d, lineState(0), base)

	warm := base
	warm.Reuse = first.Tree
	res := Search(context.Background(), d, lineState(4), warm)
	if !res.ReRooted {
		t.Fatal("descendant state was explored by the first search; expected a re-root")
	}
	if got := int(res.Best.(lineState)); got != d.target {
		t.Errorf("best state = %d, want %d", got, d.target)
	}
}

// TestReuseUnknownRootFallsBack: a root state the previous tree never
// materialized starts a fresh search (no re-root, no panic).
func TestReuseUnknownRootFallsBack(t *testing.T) {
	d := lineDomain{n: 200, target: 5}
	small := Config{Iterations: 10, MaxRolloutDepth: 3, Seed: 3, EvaluateChildren: true}
	first := Search(context.Background(), d, lineState(0), small)

	warm := small
	warm.Reuse = first.Tree
	res := Search(context.Background(), d, lineState(199), warm)
	if res.ReRooted {
		t.Fatal("state 199 cannot be in a 10-iteration tree from state 0")
	}
	if res.Tree == nil {
		t.Fatal("fallback search must still persist a tree")
	}
}

// TestReuseReconcileDropsAndKeepsChildren: after re-rooting into a domain
// whose neighbor sets changed, reconciliation keeps surviving children (with
// their visits) and drops states that are no longer reachable.
func TestReuseReconcileDropsAndKeepsChildren(t *testing.T) {
	big := lineDomain{n: 40, target: 30}
	base := Config{Iterations: 120, MaxRolloutDepth: 20, Seed: 9, EvaluateChildren: true}
	first := Search(context.Background(), big, lineState(0), base)

	// Shrink the domain: states >= 20 vanish. The reused tree still holds
	// them; reconciliation must prune them rather than descend into them.
	shrunk := lineDomain{n: 20, target: 10}
	warm := base
	warm.Reuse = first.Tree
	res := Search(context.Background(), shrunk, lineState(0), warm)
	if !res.ReRooted {
		t.Fatal("root 0 is in the reused tree")
	}
	if got := int(res.Best.(lineState)); got != shrunk.target {
		t.Errorf("best state = %d, want %d", got, shrunk.target)
	}
	// Audit: no node of the new tree may hold a state outside the shrunk
	// domain once visited — reconciled nodes must have pruned them.
	var audit func(n *node)
	audit = func(n *node) {
		if n.epoch == res.Tree.epoch {
			for _, c := range n.children {
				if int(c.state.(lineState)) >= shrunk.n {
					t.Errorf("reconciled node %v kept out-of-domain child %v", n.state, c.state)
				}
			}
		}
		for _, c := range n.children {
			audit(c)
		}
	}
	audit(res.Tree.root)
}
