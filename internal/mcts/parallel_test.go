package mcts

import (
	"context"
	"testing"
	"time"
)

// walkTree applies fn to every node reachable from root.
func walkTree(root *pnode, fn func(*pnode)) {
	fn(root)
	for _, c := range root.children {
		walkTree(c, fn)
	}
}

func TestTreeParallelFindsPeak(t *testing.T) {
	d := lineDomain{n: 40, target: 25}
	res := Search(context.Background(), d, lineState(0), Config{
		Iterations: 1500, MaxRolloutDepth: 60, Seed: 5, EvaluateChildren: true, TreeWorkers: 4,
	})
	if got := int(res.Best.(lineState)); got != d.target {
		t.Errorf("best state = %d, want %d (reward %f)", got, d.target, res.BestReward)
	}
	if res.Iterations != 1500 {
		t.Errorf("iterations = %d, want the full shared budget of 1500", res.Iterations)
	}
	if res.Expanded == 0 || res.Rollouts == 0 || res.Evals == 0 {
		t.Errorf("counters zero: %+v", res)
	}
}

// TestTreeParallelWorkersOneBitIdentical pins the determinism contract:
// TreeWorkers 0 and 1 must run the identical sequential search.
func TestTreeParallelWorkersOneBitIdentical(t *testing.T) {
	d := lineDomain{n: 60, target: 47}
	base := Config{Iterations: 200, MaxRolloutDepth: 30, Seed: 11, EvaluateChildren: true}
	seq := Search(context.Background(), d, lineState(0), base)
	one := base
	one.TreeWorkers = 1
	got := Search(context.Background(), d, lineState(0), one)
	// The Tree handle is a fresh pointer per run; identity is over the
	// search outcome, not the handle.
	got.Tree, seq.Tree = nil, nil
	if got != seq {
		t.Errorf("TreeWorkers=1 diverged from the sequential search:\n got %+v\nwant %+v", got, seq)
	}
}

// TestVirtualLossAccounting joins an 8-worker shared-tree search and then
// audits the tree: no virtual loss may remain, visit counts must be
// consistent along every edge, rewards must stay within their [0, 1] bounds,
// and the root must have absorbed exactly one backpropagation per random
// walk (lineDomain has no terminal states, so walks are the only source).
func TestVirtualLossAccounting(t *testing.T) {
	d := lineDomain{n: 30, target: 21}
	cfg := Config{Iterations: 400, MaxRolloutDepth: 20, Seed: 3, TreeWorkers: 8, C: 1.4}
	res, root := searchParallel(context.Background(), d, lineState(0), cfg, time.Time{})

	walkTree(root, func(n *pnode) {
		if vl := n.vloss.Load(); vl != 0 {
			t.Errorf("node %v: %d virtual losses left after join", n.state, vl)
		}
		v := n.visits.Load()
		var childSum int64
		for _, c := range n.children {
			childSum += c.visits.Load()
		}
		// Every child backprop passes through its parent; the parent may
		// additionally absorb its own expansion-time or terminal backprops.
		if childSum > v {
			t.Errorf("node %v: children visits %d exceed own visits %d", n.state, childSum, v)
		}
		if total := n.total(); total < 0 || total > float64(v) {
			t.Errorf("node %v: total reward %f out of [0, visits=%d]", n.state, total, v)
		}
	})
	if rv := root.visits.Load(); rv != int64(res.Rollouts) {
		t.Errorf("root visits %d != rollouts %d: lost or duplicated backpropagation", rv, res.Rollouts)
	}
	if res.Iterations != 400 {
		t.Errorf("iterations = %d, want 400", res.Iterations)
	}
}

// TestTreeParallelStressTinyTree maximizes contention: 8 workers in a
// 5-state space collide on the same few nodes constantly. Run under -race in
// CI, this is the shared-tree memory-safety exercise.
func TestTreeParallelStressTinyTree(t *testing.T) {
	d := lineDomain{n: 5, target: 4}
	cfg := Config{Iterations: 2000, MaxRolloutDepth: 8, Seed: 9, TreeWorkers: 8, EvaluateChildren: true}
	res, root := searchParallel(context.Background(), d, lineState(0), cfg, time.Time{})
	if int(res.Best.(lineState)) != d.target {
		t.Errorf("best = %v, want %d", res.Best, d.target)
	}
	walkTree(root, func(n *pnode) {
		if n.vloss.Load() != 0 {
			t.Errorf("virtual loss left on %v", n.state)
		}
	})
}

func TestTreeParallelCancellation(t *testing.T) {
	d := lineDomain{n: 1000, target: 999}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Search(ctx, d, lineState(0), Config{Iterations: 1 << 30, MaxRolloutDepth: 10, Seed: 1, TreeWorkers: 4})
	if !res.Interrupted {
		t.Error("cancelled tree-parallel search must report Interrupted")
	}
	if res.Iterations != 0 {
		t.Errorf("cancelled-before-start search completed %d iterations", res.Iterations)
	}
	if res.Best == nil {
		t.Error("cancelled search must still return the root as best-so-far")
	}
}

func TestTreeParallelTimeBudget(t *testing.T) {
	d := lineDomain{n: 100000, target: 99999}
	start := time.Now()
	res := Search(context.Background(), d, lineState(0), Config{
		TimeBudget: 30 * time.Millisecond, MaxRolloutDepth: 10, Seed: 1, TreeWorkers: 4,
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("time budget ignored: ran %v", elapsed)
	}
	if res.Iterations == 0 {
		t.Error("no iterations within budget")
	}
	if res.Interrupted {
		t.Error("an elapsed TimeBudget is a normal completion, not an interruption")
	}
}
