// Tree-parallel MCTS: Config.TreeWorkers goroutines share one search tree.
//
// The scheme is the classic virtual-loss design: while a worker is inside an
// iteration, every node on its selection path carries a virtual loss — an
// extra visit that contributes zero reward — so concurrent workers see
// in-flight paths as less attractive and diversify instead of piling onto
// the same leaf. Expansion is guarded per node (a mutex arbitrates the one
// materialization; an atomic flag publishes the children), node statistics
// are updated with atomic adds (a CAS loop for the float64 reward total),
// and each new child is claimed for simulation exactly once via CAS, so the
// "one random walk from every new child" contract of the sequential search
// carries over. Leaf evaluations all drain through the Domain, whose
// concurrency safety in this codebase comes from the internal/eval
// transposition cache.
//
// Tree-parallel results are not bit-reproducible across runs — the OS
// scheduler decides which states get visited — but every accounting
// invariant is: after the workers join, no virtual loss remains, each node's
// visit count equals the backpropagations through it, and the root's visit
// count equals the number of completed walks. The parallel_test.go suite
// pins those invariants under -race.
package mcts

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// pnode is the shared-tree node. children is written once under mu and
// published by the expanded flag (atomic store-release / load-acquire), after
// which it is immutable; the statistics are plain atomics.
type pnode struct {
	state  State
	parent *pnode

	mu       sync.Mutex  // guards the one-time materialization of children
	expanded atomic.Bool // published after children is fully written
	children []*pnode

	visits    atomic.Int64  // completed backpropagations through this node
	totalBits atomic.Uint64 // math.Float64bits of the summed reward
	vloss     atomic.Int64  // in-flight selection paths through this node
	simulated atomic.Bool   // claimed for its one expansion-time rollout
}

func (n *pnode) total() float64 { return math.Float64frombits(n.totalBits.Load()) }

// addTotal accumulates a reward into the node's float total via CAS.
func (n *pnode) addTotal(r float64) {
	for {
		old := n.totalBits.Load()
		if n.totalBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+r)) {
			return
		}
	}
}

// uctP is uct over the shared tree with the virtual-loss penalty applied:
// each in-flight path through a node counts as a visit with zero reward,
// lowering both the exploitation term and the exploration bonus for nodes
// other workers are currently inside.
func uctP(n *pnode, c float64) float64 {
	eff := n.visits.Load() + n.vloss.Load()
	if eff == 0 {
		return math.Inf(1)
	}
	exploit := n.total() / float64(eff)
	if n.parent == nil {
		return exploit
	}
	N := n.parent.visits.Load() + n.parent.vloss.Load()
	if N < 1 {
		N = 1
	}
	return exploit + c*math.Sqrt(math.Log(float64(N))/float64(eff))
}

// backpropP adds the reward to every node up to the root.
func backpropP(n *pnode, r float64) {
	for ; n != nil; n = n.parent {
		n.visits.Add(1)
		n.addTotal(r)
	}
}

// psearcher is the shared state of one tree-parallel search.
type psearcher struct {
	d        Domain
	cfg      Config
	ctx      context.Context
	deadline time.Time

	claimed   atomic.Int64 // iterations handed out (bounds the shared budget)
	completed atomic.Int64 // iterations that ran to completion
	expanded  atomic.Int64
	rollouts  atomic.Int64
	evals     atomic.Int64

	mu         sync.Mutex // guards best/bestReward and serializes Progress
	best       State
	bestReward float64
}

func (s *psearcher) cancelled() bool {
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

func (s *psearcher) stopped() bool {
	if s.cancelled() {
		return true
	}
	//mctsvet:allow wallclock -- anytime TimeBudget deadline check: stops iteration, never feeds a reward or move choice
	return !s.deadline.IsZero() && !time.Now().Before(s.deadline)
}

// eval scores a state and folds it into the shared best.
func (s *psearcher) eval(st State) float64 {
	s.evals.Add(1)
	r := s.d.Reward(st)
	s.mu.Lock()
	if r > s.bestReward {
		s.bestReward = r
		s.best = st
	}
	s.mu.Unlock()
	return r
}

// snapshot assembles a Result from the shared counters. Caller must hold
// s.mu when a consistent best is required.
func (s *psearcher) snapshotLocked() Result {
	return Result{
		Best:       s.best,
		BestReward: s.bestReward,
		Iterations: int(s.completed.Load()),
		Expanded:   int(s.expanded.Load()),
		Rollouts:   int(s.rollouts.Load()),
		Evals:      int(s.evals.Load()),
	}
}

// searchParallel runs the tree-parallel search and returns the result plus
// the shared root (exposed for the accounting-invariant tests).
func searchParallel(ctx context.Context, d Domain, root State, cfg Config, deadline time.Time) (Result, *pnode) {
	s := &psearcher{d: d, cfg: cfg, ctx: ctx, deadline: deadline, bestReward: math.Inf(-1)}
	rootNode := &pnode{state: root}
	s.best = root
	s.bestReward = s.eval(root)

	var wg sync.WaitGroup
	for w := 0; w < cfg.TreeWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a distinct rollout RNG stream derived from the
			// base seed (golden-ratio stride, as the root-parallel scheme).
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w+1)*0x9e3779b9))
			s.worker(rootNode, rng)
		}(w)
	}
	wg.Wait()

	s.mu.Lock()
	res := s.snapshotLocked()
	s.mu.Unlock()
	res.Interrupted = s.cancelled()
	return res, rootNode
}

// worker claims iterations from the shared budget until it is exhausted or
// the search is stopped.
func (s *psearcher) worker(root *pnode, rng *rand.Rand) {
	for {
		if s.stopped() {
			return
		}
		if s.cfg.Iterations > 0 && s.claimed.Add(1) > int64(s.cfg.Iterations) {
			return
		}
		worked, cut := s.iterate(root, rng)
		switch {
		case worked:
			s.completed.Add(1)
			if s.cfg.Progress != nil {
				// Snapshot under the lock, deliver outside it: a slow
				// Progress consumer must not stall the other workers, whose
				// every eval() takes the same mutex. With TreeWorkers > 1
				// the callback can therefore run concurrently; callers that
				// need serialization wrap it themselves (core does).
				s.mu.Lock()
				snap := s.snapshotLocked()
				s.mu.Unlock()
				s.cfg.Progress(snap)
			}
		case !cut && s.cfg.Iterations > 0:
			// A contention no-op (every child was already claimed by a
			// concurrent worker): nothing was simulated, so the iteration
			// must not be counted — refund the budget claim so another pass
			// does the real work. The window is transient (it needs an
			// expansion racing a selection), so this cannot spin: a settled
			// tree always lands on an unexpanded or terminal node.
			s.claimed.Add(-1)
		}
	}
}

// iterate is one select-expand-simulate-backprop cycle on the shared tree.
// worked reports that the cycle performed at least one rollout or terminal
// backpropagation (a cycle that found all children claimed by concurrent
// workers did nothing countable); cut reports that cancellation or the
// deadline ended the cycle early.
func (s *psearcher) iterate(root *pnode, rng *rand.Rand) (worked, cut bool) {
	// Selection: descend by virtual-loss UCT, marking the path in flight so
	// concurrent workers steer elsewhere.
	n := root
	n.vloss.Add(1)
	path := []*pnode{root}
	for n.expanded.Load() {
		children := n.children // immutable once expanded is set
		if len(children) == 0 {
			break
		}
		best := children[0]
		bestScore := uctP(best, s.cfg.C)
		for _, c := range children[1:] {
			if sc := uctP(c, s.cfg.C); sc > bestScore {
				best, bestScore = c, sc
			}
		}
		n = best
		n.vloss.Add(1)
		path = append(path, n)
	}
	defer func() {
		for _, m := range path {
			m.vloss.Add(-1)
		}
	}()

	// Expansion: exactly one worker materializes the children; late arrivals
	// fall through to simulation against the published slice.
	if !n.expanded.Load() {
		n.mu.Lock()
		if !n.expanded.Load() {
			seen := map[uint64]bool{n.state.Hash(): true}
			var children []*pnode
			for _, st := range s.d.Neighbors(n.state) {
				h := st.Hash()
				if seen[h] {
					continue
				}
				seen[h] = true
				children = append(children, &pnode{state: st, parent: n})
			}
			n.children = children
			s.expanded.Add(1)
			n.expanded.Store(true)
		}
		n.mu.Unlock()
	}

	if len(n.children) == 0 {
		// Terminal: reward the node itself.
		backpropP(n, s.eval(n.state))
		return true, false
	}

	// Simulation: one random walk from every new child; the CAS claim makes
	// "new" race-free, and the claimed child carries a virtual loss for the
	// duration of its rollout. Cancellation and the deadline are re-checked
	// between children, as in the sequential search.
	for _, c := range n.children {
		if s.stopped() {
			return worked, true
		}
		if c.visits.Load() > 0 || !c.simulated.CompareAndSwap(false, true) {
			continue
		}
		c.vloss.Add(1)
		if s.cfg.EvaluateChildren {
			s.eval(c.state)
		}
		r := s.rollout(c.state, rng)
		backpropP(c, r)
		c.vloss.Add(-1)
		worked = true
	}
	return worked, false
}

// rollout performs a uniformly random walk from st with the worker's own rng
// and returns the final state's reward.
func (s *psearcher) rollout(st State, rng *rand.Rand) float64 {
	s.rollouts.Add(1)
	cur := st
	sampler, hasSampler := s.d.(Sampler)
	for i := 0; i < s.cfg.MaxRolloutDepth; i++ {
		var next State
		ok := false
		if hasSampler {
			next, ok = sampler.RandomNeighbor(cur, rng)
		} else {
			ns := s.d.Neighbors(cur)
			if len(ns) > 0 {
				next, ok = ns[rng.Intn(len(ns))], true
			}
		}
		if !ok {
			break
		}
		cur = next
	}
	return s.eval(cur)
}
