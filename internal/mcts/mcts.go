// Package mcts implements Monte Carlo Tree Search with UCT selection, the
// paper's search procedure: each iteration selects the state with the
// highest UCT score, expands its immediate neighbor states, performs a
// random walk of up to MaxRolloutDepth steps (200 in the paper) from each
// new child, and adds the final state's reward to every state along the
// path. The search stops on an iteration or wall-clock budget.
//
// The package is generic over the state space: the interface-generation
// domain (difftrees + transformation rules) plugs in via Domain.
//
// Search is an anytime algorithm: it accepts a context.Context and stops
// promptly — returning the best state seen so far — when the context is
// cancelled or its deadline passes, in addition to the iteration and
// wall-clock budgets in Config.
//
// Config.TreeWorkers > 1 switches to the tree-parallel search in
// parallel.go: the workers share one tree, diversified by virtual loss.
// TreeWorkers <= 1 keeps the sequential search below, bit-identical per
// seed.
package mcts

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// State is one search state. Hash identifies states for deduplication of a
// node's children; equal states may hash equally.
type State interface {
	Hash() uint64
}

// Domain defines the search space.
type Domain interface {
	// Neighbors returns the states reachable in one legal move.
	Neighbors(s State) []State
	// Reward estimates the quality of s in [0, 1] (higher is better). The
	// paper uses the negated interface cost mapped into this range.
	Reward(s State) float64
}

// Sampler is an optional Domain extension: draw one random neighbor without
// materializing all of them (much cheaper during rollouts). ok is false when
// s has no neighbors.
type Sampler interface {
	RandomNeighbor(s State, rng *rand.Rand) (State, bool)
}

// Config tunes the search.
type Config struct {
	// C is the UCT exploration constant (√2 default).
	C float64
	// MaxRolloutDepth bounds random walks (paper: up to 200 steps).
	MaxRolloutDepth int
	// Iterations bounds the number of MCTS iterations (0 = unbounded; then
	// TimeBudget must be set). With TreeWorkers > 1 the budget is shared
	// across workers, not multiplied by them.
	Iterations int
	// TimeBudget bounds wall-clock time (0 = unbounded).
	TimeBudget time.Duration
	// Seed makes the search deterministic.
	Seed int64
	// TreeWorkers > 1 runs the search tree-parallel: that many goroutines
	// share one tree, selection applies a virtual-loss penalty to in-flight
	// paths so workers diversify, and expansion is guarded per node. The
	// Domain must then be safe for concurrent use. Values <= 1 run the
	// sequential search, which is bit-identical for a fixed seed;
	// tree-parallel results are *not* reproducible across runs (worker
	// interleaving decides which states are visited), only the quality
	// envelope is pinned.
	TreeWorkers int
	// EvaluateChildren also scores each expanded child directly, so good
	// intermediate states are never missed; costs one Reward call per child.
	EvaluateChildren bool
	// Reuse, when non-nil, seeds the search with a tree persisted by a
	// previous sequential Search (Result.Tree). If the new root state occurs
	// anywhere in the reused tree, that subtree — visit counts, totals, and
	// children included — becomes the new search tree (Result.ReRooted
	// reports it); otherwise the search starts fresh. Reused nodes carry an
	// older epoch: selection treats them as unexpanded, and expansion
	// re-derives their neighbor set under the *current* domain, merging by
	// state hash so surviving children keep their statistics while vanished
	// states drop and new ones appear. Children that kept visits skip their
	// simulation pass, which is where a warm-started session append saves
	// evaluations. Ignored when TreeWorkers > 1 (the tree-parallel searcher
	// builds its own tree and persists none).
	Reuse *Tree
	// Progress, when non-nil, is invoked after every iteration with the
	// running result (anytime observability). It runs on the search
	// goroutine and must be fast. With TreeWorkers > 1 it may be invoked
	// concurrently from several workers; callers needing serialization
	// wrap the callback in their own mutex.
	Progress func(Result)
}

// DefaultConfig mirrors the paper's setup with a deterministic iteration
// budget instead of the 1-minute wall clock.
func DefaultConfig() Config {
	return Config{
		C:                math.Sqrt2,
		MaxRolloutDepth:  200,
		Iterations:       100,
		Seed:             1,
		EvaluateChildren: true,
	}
}

// Result reports the search outcome.
type Result struct {
	Best        State   // highest-reward state seen anywhere in the search
	BestReward  float64 // its reward
	Iterations  int     // iterations actually executed
	Expanded    int     // total expanded nodes
	Rollouts    int     // total random walks
	Evals       int     // total Reward calls
	Interrupted bool    // the context ended the search before its budget
	Tree        *Tree   // the search tree, reusable via Config.Reuse (nil when tree-parallel)
	ReRooted    bool    // the search started from a subtree of Config.Reuse
}

// Tree is an opaque persisted search tree, handed back by a sequential
// Search and accepted by Config.Reuse. It retains every state the search
// materialized, so holders should replace it with each newer Result.Tree
// rather than accumulate generations.
type Tree struct {
	root  *node
	epoch uint32
}

// Nodes counts the tree's nodes (stats and tests).
func (t *Tree) Nodes() int {
	if t == nil || t.root == nil {
		return 0
	}
	n := 0
	stack := []*node{t.root}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n++
		stack = append(stack, c.children...)
	}
	return n
}

// find returns the first node (pre-order) whose state hash is h, or nil.
func (t *Tree) find(h uint64) *node {
	if t == nil || t.root == nil {
		return nil
	}
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.state.Hash() == h {
			return n
		}
		stack = append(stack, n.children...)
	}
	return nil
}

type node struct {
	state    State
	parent   *node
	children []*node
	visits   int
	total    float64
	expanded bool
	// epoch stamps which Search run last expanded this node. A reused node
	// from an older run fails the selection-time epoch check and is
	// reconciled against the current domain before being descended through.
	epoch uint32
}

// uct computes the node's UCT score given its parent's visit count.
func uct(n *node, c float64) float64 {
	if n.visits == 0 {
		return math.Inf(1)
	}
	exploit := n.total / float64(n.visits)
	if n.parent == nil {
		return exploit
	}
	N := n.parent.visits
	if N < 1 {
		N = 1
	}
	return exploit + c*math.Sqrt(math.Log(float64(N))/float64(n.visits))
}

// Search runs MCTS from root and returns the best state found. A nil ctx is
// treated as context.Background(); when ctx ends mid-search the best
// state found so far is returned with Interrupted set.
func Search(ctx context.Context, d Domain, root State, cfg Config) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.C == 0 {
		cfg.C = math.Sqrt2
	}
	if cfg.MaxRolloutDepth <= 0 {
		cfg.MaxRolloutDepth = 200
	}
	if cfg.Iterations <= 0 && cfg.TimeBudget <= 0 {
		cfg.Iterations = 100
	}
	deadline := time.Time{}
	if cfg.TimeBudget > 0 {
		//mctsvet:allow wallclock -- anytime TimeBudget deadline: decides when to stop iterating, never feeds a reward or move choice
		deadline = time.Now().Add(cfg.TimeBudget)
	}
	if cfg.TreeWorkers > 1 {
		res, _ := searchParallel(ctx, d, root, cfg, deadline)
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &searcher{d: d, cfg: cfg, rng: rng, ctx: ctx, deadline: deadline, epoch: 1}
	rootNode := &node{state: root}
	if cfg.Reuse != nil {
		s.epoch = cfg.Reuse.epoch + 1
		if n := cfg.Reuse.find(root.Hash()); n != nil {
			// Re-root: the reused subtree keeps its statistics; its parent
			// link is severed so backprop stops here and the abandoned
			// ancestors become garbage.
			n.parent = nil
			rootNode = n
			s.res.ReRooted = true
		}
	}
	s.res.Tree = &Tree{root: rootNode, epoch: s.epoch}
	s.res.Best = root
	s.res.BestReward = s.eval(root)

	for {
		if s.cancelled() {
			s.res.Interrupted = true
			break
		}
		if cfg.Iterations > 0 && s.res.Iterations >= cfg.Iterations {
			break
		}
		if s.expired() {
			break
		}
		if s.iterate(rootNode) {
			// Only fully completed iterations count: a cancelled or
			// deadline-cut simulation pass must not inflate the counter (it
			// would skew iters/sec in the bench harness).
			s.res.Iterations++
			if cfg.Progress != nil {
				cfg.Progress(s.res)
			}
		}
	}
	s.primeBest()
	return s.res
}

// primeBest prepares the persisted tree for reuse. A warm-started follow-up
// search re-roots at this search's best state, but the best state is almost
// always an unexpanded frontier leaf — a subtree with no statistics to
// reuse. Expanding it here gives that follow-up visited children to skip.
// Only tree statistics change: the Result counters, the incumbent best, and
// the search rng stream are untouched (child rewards are deterministic per
// state and not counted in Evals), so the search outcome stays bit-identical
// with or without priming. Skipped when the search was cut short — the
// budget is spent — and when the best state never became a tree node (e.g.
// it was only ever a rollout endpoint).
func (s *searcher) primeBest() {
	if s.res.Interrupted || s.expired() {
		return
	}
	n := s.res.Tree.find(s.res.Best.Hash())
	if n == nil || n.expanded {
		return
	}
	seen := map[uint64]bool{n.state.Hash(): true}
	for _, st := range s.d.Neighbors(n.state) {
		h := st.Hash()
		if seen[h] {
			continue
		}
		seen[h] = true
		c := &node{state: st, parent: n}
		backprop(c, s.d.Reward(st))
		n.children = append(n.children, c)
	}
	n.expanded = true
	n.epoch = s.epoch
}

type searcher struct {
	d        Domain
	cfg      Config
	rng      *rand.Rand
	ctx      context.Context
	deadline time.Time
	epoch    uint32
	res      Result
}

// cancelled polls the search context without blocking.
func (s *searcher) cancelled() bool {
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// expired reports that the wall-clock budget has run out.
func (s *searcher) expired() bool {
	//mctsvet:allow wallclock -- anytime TimeBudget deadline check: stops iteration, never feeds a reward or move choice
	return !s.deadline.IsZero() && !time.Now().Before(s.deadline)
}

// stopped reports that the search must end now — by cancellation or by the
// wall-clock budget. Checked wherever a long loop re-checks cancellation, so
// a TimeBudget cannot be overrun by a large fanout.
func (s *searcher) stopped() bool {
	return s.cancelled() || s.expired()
}

func (s *searcher) eval(st State) float64 {
	s.res.Evals++
	r := s.d.Reward(st)
	if r > s.res.BestReward {
		s.res.BestReward = r
		s.res.Best = st
	}
	return r
}

// iterate runs one select-expand-simulate-backprop cycle; it reports whether
// the cycle ran to completion (false when cancellation or the wall-clock
// deadline cut the simulation pass short).
func (s *searcher) iterate(root *node) bool {
	// Selection: descend by UCT until an unexpanded node — or a node last
	// expanded by a previous search run (stale epoch), which must be
	// reconciled against the current domain before descending through it.
	n := root
	for n.expanded && n.epoch == s.epoch && len(n.children) > 0 {
		best := n.children[0]
		bestScore := uct(best, s.cfg.C)
		for _, c := range n.children[1:] {
			if sc := uct(c, s.cfg.C); sc > bestScore {
				best, bestScore = c, sc
			}
		}
		n = best
	}

	// Expansion: materialize all immediate neighbors, dropping duplicates.
	// For a reused stale node this is a reconciliation: the neighbor set is
	// re-derived under the current domain and merged by state hash, so
	// surviving children keep their visit statistics, states that are no
	// longer reachable drop out, and newly legal states join fresh.
	if !n.expanded || n.epoch != s.epoch {
		var old map[uint64]*node
		if n.expanded && len(n.children) > 0 {
			old = make(map[uint64]*node, len(n.children))
			for _, c := range n.children {
				old[c.state.Hash()] = c
			}
		}
		n.expanded = true
		n.epoch = s.epoch
		s.res.Expanded++
		seen := map[uint64]bool{n.state.Hash(): true}
		var kids []*node
		for _, st := range s.d.Neighbors(n.state) {
			h := st.Hash()
			if seen[h] {
				continue
			}
			seen[h] = true
			if oc := old[h]; oc != nil {
				kids = append(kids, oc)
			} else {
				kids = append(kids, &node{state: st, parent: n})
			}
		}
		n.children = kids
	}

	if len(n.children) == 0 {
		// Terminal: reward the node itself.
		backprop(n, s.eval(n.state))
		return true
	}

	// Simulation: one random walk from every new child (paper: "perform a
	// random walk ... from all of its immediate neighbor states"). Large
	// fanouts make this the long pole of an iteration, so both cancellation
	// and the wall-clock deadline are re-checked between children.
	for _, c := range n.children {
		if c.visits > 0 {
			continue
		}
		if s.stopped() {
			return false
		}
		if s.cfg.EvaluateChildren {
			s.eval(c.state)
		}
		r := s.rollout(c.state)
		backprop(c, r)
	}
	return true
}

// rollout performs a uniformly random walk from st and returns the final
// state's reward.
func (s *searcher) rollout(st State) float64 {
	s.res.Rollouts++
	cur := st
	sampler, hasSampler := s.d.(Sampler)
	for i := 0; i < s.cfg.MaxRolloutDepth; i++ {
		var next State
		ok := false
		if hasSampler {
			next, ok = sampler.RandomNeighbor(cur, s.rng)
		} else {
			ns := s.d.Neighbors(cur)
			if len(ns) > 0 {
				next, ok = ns[s.rng.Intn(len(ns))], true
			}
		}
		if !ok {
			break
		}
		cur = next
	}
	return s.eval(cur)
}

// backprop adds the reward to every state along the path to the root.
func backprop(n *node, r float64) {
	for ; n != nil; n = n.parent {
		n.visits++
		n.total += r
	}
}
