// Package mcts implements Monte Carlo Tree Search with UCT selection, the
// paper's search procedure: each iteration selects the state with the
// highest UCT score, expands its immediate neighbor states, performs a
// random walk of up to MaxRolloutDepth steps (200 in the paper) from each
// new child, and adds the final state's reward to every state along the
// path. The search stops on an iteration or wall-clock budget.
//
// The package is generic over the state space: the interface-generation
// domain (difftrees + transformation rules) plugs in via Domain.
//
// Search is an anytime algorithm: it accepts a context.Context and stops
// promptly — returning the best state seen so far — when the context is
// cancelled or its deadline passes, in addition to the iteration and
// wall-clock budgets in Config.
//
// Config.TreeWorkers > 1 switches to the tree-parallel search in
// parallel.go: the workers share one tree, diversified by virtual loss.
// TreeWorkers <= 1 keeps the sequential search below, bit-identical per
// seed.
package mcts

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// State is one search state. Hash identifies states for deduplication of a
// node's children; equal states may hash equally.
type State interface {
	Hash() uint64
}

// Domain defines the search space.
type Domain interface {
	// Neighbors returns the states reachable in one legal move.
	Neighbors(s State) []State
	// Reward estimates the quality of s in [0, 1] (higher is better). The
	// paper uses the negated interface cost mapped into this range.
	Reward(s State) float64
}

// Sampler is an optional Domain extension: draw one random neighbor without
// materializing all of them (much cheaper during rollouts). ok is false when
// s has no neighbors.
type Sampler interface {
	RandomNeighbor(s State, rng *rand.Rand) (State, bool)
}

// Config tunes the search.
type Config struct {
	// C is the UCT exploration constant (√2 default).
	C float64
	// MaxRolloutDepth bounds random walks (paper: up to 200 steps).
	MaxRolloutDepth int
	// Iterations bounds the number of MCTS iterations (0 = unbounded; then
	// TimeBudget must be set). With TreeWorkers > 1 the budget is shared
	// across workers, not multiplied by them.
	Iterations int
	// TimeBudget bounds wall-clock time (0 = unbounded).
	TimeBudget time.Duration
	// Seed makes the search deterministic.
	Seed int64
	// TreeWorkers > 1 runs the search tree-parallel: that many goroutines
	// share one tree, selection applies a virtual-loss penalty to in-flight
	// paths so workers diversify, and expansion is guarded per node. The
	// Domain must then be safe for concurrent use. Values <= 1 run the
	// sequential search, which is bit-identical for a fixed seed;
	// tree-parallel results are *not* reproducible across runs (worker
	// interleaving decides which states are visited), only the quality
	// envelope is pinned.
	TreeWorkers int
	// EvaluateChildren also scores each expanded child directly, so good
	// intermediate states are never missed; costs one Reward call per child.
	EvaluateChildren bool
	// Progress, when non-nil, is invoked after every iteration with the
	// running result (anytime observability). It runs on the search
	// goroutine and must be fast. With TreeWorkers > 1 it may be invoked
	// concurrently from several workers; callers needing serialization
	// wrap the callback in their own mutex.
	Progress func(Result)
}

// DefaultConfig mirrors the paper's setup with a deterministic iteration
// budget instead of the 1-minute wall clock.
func DefaultConfig() Config {
	return Config{
		C:                math.Sqrt2,
		MaxRolloutDepth:  200,
		Iterations:       100,
		Seed:             1,
		EvaluateChildren: true,
	}
}

// Result reports the search outcome.
type Result struct {
	Best        State   // highest-reward state seen anywhere in the search
	BestReward  float64 // its reward
	Iterations  int     // iterations actually executed
	Expanded    int     // total expanded nodes
	Rollouts    int     // total random walks
	Evals       int     // total Reward calls
	Interrupted bool    // the context ended the search before its budget
}

type node struct {
	state    State
	parent   *node
	children []*node
	visits   int
	total    float64
	expanded bool
}

// uct computes the node's UCT score given its parent's visit count.
func uct(n *node, c float64) float64 {
	if n.visits == 0 {
		return math.Inf(1)
	}
	exploit := n.total / float64(n.visits)
	if n.parent == nil {
		return exploit
	}
	N := n.parent.visits
	if N < 1 {
		N = 1
	}
	return exploit + c*math.Sqrt(math.Log(float64(N))/float64(n.visits))
}

// Search runs MCTS from root and returns the best state found. A nil ctx is
// treated as context.Background(); when ctx ends mid-search the best
// state found so far is returned with Interrupted set.
func Search(ctx context.Context, d Domain, root State, cfg Config) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.C == 0 {
		cfg.C = math.Sqrt2
	}
	if cfg.MaxRolloutDepth <= 0 {
		cfg.MaxRolloutDepth = 200
	}
	if cfg.Iterations <= 0 && cfg.TimeBudget <= 0 {
		cfg.Iterations = 100
	}
	deadline := time.Time{}
	if cfg.TimeBudget > 0 {
		deadline = time.Now().Add(cfg.TimeBudget)
	}
	if cfg.TreeWorkers > 1 {
		res, _ := searchParallel(ctx, d, root, cfg, deadline)
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &searcher{d: d, cfg: cfg, rng: rng, ctx: ctx, deadline: deadline}
	rootNode := &node{state: root}
	s.res.Best = root
	s.res.BestReward = s.eval(root)

	for {
		if s.cancelled() {
			s.res.Interrupted = true
			break
		}
		if cfg.Iterations > 0 && s.res.Iterations >= cfg.Iterations {
			break
		}
		if s.expired() {
			break
		}
		if s.iterate(rootNode) {
			// Only fully completed iterations count: a cancelled or
			// deadline-cut simulation pass must not inflate the counter (it
			// would skew iters/sec in the bench harness).
			s.res.Iterations++
			if cfg.Progress != nil {
				cfg.Progress(s.res)
			}
		}
	}
	return s.res
}

type searcher struct {
	d        Domain
	cfg      Config
	rng      *rand.Rand
	ctx      context.Context
	deadline time.Time
	res      Result
}

// cancelled polls the search context without blocking.
func (s *searcher) cancelled() bool {
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// expired reports that the wall-clock budget has run out.
func (s *searcher) expired() bool {
	return !s.deadline.IsZero() && !time.Now().Before(s.deadline)
}

// stopped reports that the search must end now — by cancellation or by the
// wall-clock budget. Checked wherever a long loop re-checks cancellation, so
// a TimeBudget cannot be overrun by a large fanout.
func (s *searcher) stopped() bool {
	return s.cancelled() || s.expired()
}

func (s *searcher) eval(st State) float64 {
	s.res.Evals++
	r := s.d.Reward(st)
	if r > s.res.BestReward {
		s.res.BestReward = r
		s.res.Best = st
	}
	return r
}

// iterate runs one select-expand-simulate-backprop cycle; it reports whether
// the cycle ran to completion (false when cancellation or the wall-clock
// deadline cut the simulation pass short).
func (s *searcher) iterate(root *node) bool {
	// Selection: descend by UCT until an unexpanded node.
	n := root
	for n.expanded && len(n.children) > 0 {
		best := n.children[0]
		bestScore := uct(best, s.cfg.C)
		for _, c := range n.children[1:] {
			if sc := uct(c, s.cfg.C); sc > bestScore {
				best, bestScore = c, sc
			}
		}
		n = best
	}

	// Expansion: materialize all immediate neighbors, dropping duplicates.
	if !n.expanded {
		n.expanded = true
		s.res.Expanded++
		seen := map[uint64]bool{n.state.Hash(): true}
		for _, st := range s.d.Neighbors(n.state) {
			h := st.Hash()
			if seen[h] {
				continue
			}
			seen[h] = true
			n.children = append(n.children, &node{state: st, parent: n})
		}
	}

	if len(n.children) == 0 {
		// Terminal: reward the node itself.
		backprop(n, s.eval(n.state))
		return true
	}

	// Simulation: one random walk from every new child (paper: "perform a
	// random walk ... from all of its immediate neighbor states"). Large
	// fanouts make this the long pole of an iteration, so both cancellation
	// and the wall-clock deadline are re-checked between children.
	for _, c := range n.children {
		if c.visits > 0 {
			continue
		}
		if s.stopped() {
			return false
		}
		if s.cfg.EvaluateChildren {
			s.eval(c.state)
		}
		r := s.rollout(c.state)
		backprop(c, r)
	}
	return true
}

// rollout performs a uniformly random walk from st and returns the final
// state's reward.
func (s *searcher) rollout(st State) float64 {
	s.res.Rollouts++
	cur := st
	sampler, hasSampler := s.d.(Sampler)
	for i := 0; i < s.cfg.MaxRolloutDepth; i++ {
		var next State
		ok := false
		if hasSampler {
			next, ok = sampler.RandomNeighbor(cur, s.rng)
		} else {
			ns := s.d.Neighbors(cur)
			if len(ns) > 0 {
				next, ok = ns[s.rng.Intn(len(ns))], true
			}
		}
		if !ok {
			break
		}
		cur = next
	}
	return s.eval(cur)
}

// backprop adds the reward to every state along the path to the root.
func backprop(n *node, r float64) {
	for ; n != nil; n = n.parent {
		n.visits++
		n.total += r
	}
}
