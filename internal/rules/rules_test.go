package rules

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/sqlparser"
)

func paperQueries(t testing.TB) []*ast.Node {
	t.Helper()
	srcs := []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales WHERE cty = EUR",
		"SELECT Costs FROM sales",
	}
	qs := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		qs[i] = sqlparser.MustParse(s)
	}
	return qs
}

func initial(t testing.TB, qs []*ast.Node) *difftree.Node {
	t.Helper()
	d, err := difftree.Initial(qs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestByName(t *testing.T) {
	for _, r := range All() {
		got, ok := ByName(r.Name())
		if !ok || got.Name() != r.Name() {
			t.Errorf("ByName(%q) failed", r.Name())
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown rule should miss")
	}
}

func TestAny2AllOnPaperExample(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)

	out, ok := (Any2All{}).Apply(d)
	if !ok {
		t.Fatal("Any2All should apply to the initial ANY")
	}
	if out.Kind != difftree.All || out.Label != ast.KindSelect {
		t.Fatalf("Any2All result should be ALL(Select), got %s", out)
	}
	if err := difftree.Validate(out); err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(out, qs) {
		t.Fatal("Any2All lost an input query")
	}
	// The Where position must have gained an ∅ alternative (q3 has no WHERE).
	s := out.String()
	if !strings.Contains(s, "Empty") {
		t.Errorf("expected ∅ alternative for the missing WHERE clause: %s", s)
	}
	// The From clause is shared by all queries → stays a plain node.
	var fromIsPlain bool
	difftree.WalkPath(out, func(n *difftree.Node, p difftree.Path) bool {
		if n.Kind == difftree.All && n.Label == ast.KindFrom {
			fromIsPlain = !n.HasChoice()
		}
		return true
	})
	if !fromIsPlain {
		t.Error("shared FROM clause should not contain choices")
	}
}

func TestAny2AllRejects(t *testing.T) {
	// Mixed head labels.
	mixed := difftree.NewAny(
		difftree.NewAll(ast.KindColExpr, "a"),
		difftree.NewAll(ast.KindTable, "t"),
	)
	if _, ok := (Any2All{}).Apply(mixed); ok {
		t.Error("mixed heads must not factor")
	}
	// Non-Any node.
	if _, ok := (Any2All{}).Apply(difftree.NewAll(ast.KindColExpr, "a")); ok {
		t.Error("non-ANY must not match")
	}
	// Single child.
	if _, ok := (Any2All{}).Apply(difftree.NewAny(difftree.NewAll(ast.KindColExpr, "a"))); ok {
		t.Error("singleton ANY is Unwrap's job")
	}
	// Childless identical branches: nothing to factor.
	leafAny := difftree.NewAny(
		difftree.NewAll(ast.KindTable, "t"),
		difftree.NewAll(ast.KindTable, "t"),
	)
	if _, ok := (Any2All{}).Apply(leafAny); ok {
		t.Error("identical leaves are DedupAny's job")
	}
}

func TestAny2AllAlignsLeafValues(t *testing.T) {
	// ANY[ColExpr:Sales, ColExpr:Costs] — same label, different values: the
	// head differs by Value so the rule must not apply (values are part of
	// the head).
	vals := difftree.NewAny(
		difftree.NewAll(ast.KindColExpr, "Sales"),
		difftree.NewAll(ast.KindColExpr, "Costs"),
	)
	if _, ok := (Any2All{}).Apply(vals); ok {
		t.Error("differing head values must not factor")
	}
}

func TestLiftAndUnliftInverse(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)

	lifted, ok := (Lift{}).Apply(d)
	if !ok {
		t.Fatal("Lift should apply")
	}
	if lifted.Kind != difftree.All || lifted.Label != ast.KindSelect {
		t.Fatalf("lift result = %s", lifted)
	}
	if err := difftree.Validate(lifted); err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(lifted, qs) {
		t.Fatal("Lift lost a query")
	}
	back, ok := (Unlift{}).Apply(lifted)
	if !ok {
		t.Fatal("Unlift should invert Lift")
	}
	if !difftree.Equal(back, d) {
		t.Errorf("Unlift(Lift(d)) != d:\n got %s\nwant %s", back, d)
	}
}

func TestOptionalAndUnoptionalInverse(t *testing.T) {
	anyNode := difftree.NewAny(
		difftree.Emptyn(),
		difftree.NewAll(ast.KindWhere, "", difftree.NewAll(ast.KindColExpr, "x")),
	)
	opt, ok := (Optional{}).Apply(anyNode)
	if !ok || opt.Kind != difftree.Opt {
		t.Fatalf("Optional failed: %v %v", opt, ok)
	}
	back, ok := (Unoptional{}).Apply(opt)
	if !ok || !difftree.Equal(back, anyNode) {
		t.Errorf("Unoptional(Optional(x)) != x: %s", back)
	}

	multi := difftree.NewAny(
		difftree.Emptyn(),
		difftree.NewAll(ast.KindColExpr, "a"),
		difftree.NewAll(ast.KindColExpr, "b"),
	)
	opt2, ok := (Optional{}).Apply(multi)
	if !ok || opt2.Kind != difftree.Opt || opt2.Children[0].Kind != difftree.Any {
		t.Fatalf("Optional with several alternatives should nest ANY: %s", opt2)
	}
	back2, _ := (Unoptional{}).Apply(opt2)
	if !difftree.Equal(back2, multi) {
		t.Errorf("round trip failed: %s", back2)
	}

	if _, ok := (Optional{}).Apply(difftree.NewAny(difftree.NewAll(ast.KindColExpr, "a"))); ok {
		t.Error("no ∅ → no Optional")
	}
	if _, ok := (Optional{}).Apply(difftree.NewAny(difftree.Emptyn())); ok {
		t.Error("only ∅ → no Optional")
	}
}

func TestUnwrapWrapFlattenDedup(t *testing.T) {
	leaf := difftree.NewAll(ast.KindColExpr, "a")

	w, ok := (Wrap{}).Apply(leaf)
	if !ok || w.Kind != difftree.Any || len(w.Children) != 1 {
		t.Fatalf("Wrap failed: %s", w)
	}
	u, ok := (Unwrap{}).Apply(w)
	if !ok || !difftree.Equal(u, leaf) {
		t.Fatalf("Unwrap(Wrap(x)) != x")
	}
	if _, ok := (Wrap{}).Apply(difftree.Emptyn()); ok {
		t.Error("wrapping ∅ is useless")
	}
	if _, ok := (Wrap{}).Apply(difftree.NewAny(leaf)); ok {
		t.Error("wrapping choice nodes is forbidden")
	}
	if _, ok := (Unwrap{}).Apply(difftree.NewAny(leaf, leaf.Clone())); ok {
		t.Error("Unwrap needs exactly one child")
	}

	nested := difftree.NewAny(
		difftree.NewAny(difftree.NewAll(ast.KindColExpr, "a"), difftree.NewAll(ast.KindColExpr, "b")),
		difftree.NewAll(ast.KindColExpr, "c"),
	)
	flat, ok := (Flatten{}).Apply(nested)
	if !ok || len(flat.Children) != 3 {
		t.Fatalf("Flatten failed: %s", flat)
	}
	if _, ok := (Flatten{}).Apply(flat); ok {
		t.Error("Flatten should not re-apply")
	}

	dup := difftree.NewAny(leaf.Clone(), leaf.Clone(), difftree.NewAll(ast.KindColExpr, "b"))
	dd, ok := (DedupAny{}).Apply(dup)
	if !ok || len(dd.Children) != 2 {
		t.Fatalf("DedupAny failed: %s", dd)
	}
	if _, ok := (DedupAny{}).Apply(dd); ok {
		t.Error("DedupAny should not re-apply")
	}
}

func TestMultiMerge(t *testing.T) {
	mk := func(col string) *difftree.Node {
		return difftree.NewAll(ast.KindBetween, "",
			difftree.NewAll(ast.KindColExpr, col),
			difftree.NewAll(ast.KindNumExpr, "0"),
			difftree.NewAll(ast.KindNumExpr, "30"))
	}
	and := difftree.NewAll(ast.KindAnd, "", mk("u"), mk("g"), mk("r"), mk("i"))
	out, ok := (MultiMerge{}).Apply(and)
	if !ok {
		t.Fatal("MultiMerge should merge the BETWEEN run")
	}
	if len(out.Children) != 1 || out.Children[0].Kind != difftree.Multi {
		t.Fatalf("merged shape wrong: %s", out)
	}
	inner := out.Children[0].Children[0]
	if inner.Kind != difftree.Any || len(inner.Children) != 4 {
		t.Fatalf("MULTI child should be ANY of 4 distinct predicates: %s", inner)
	}
	if err := difftree.Validate(out); err != nil {
		t.Fatal(err)
	}

	// The merged tree still expresses the original conjunction.
	orig := &ast.Node{Kind: ast.KindAnd, Children: []*ast.Node{
		astBetween("u"), astBetween("g"), astBetween("r"), astBetween("i"),
	}}
	if !difftree.Expressible(out, orig) {
		t.Error("merged tree lost the original conjunction")
	}
	// And generalizes to other counts/orders.
	if !difftree.Expressible(out, &ast.Node{Kind: ast.KindAnd, Children: []*ast.Node{astBetween("g")}}) {
		t.Error("merged tree should express a single conjunct")
	}

	// Identical repeats merge to a MULTI with a plain child.
	and2 := difftree.NewAll(ast.KindAnd, "", mk("u"), mk("u"))
	out2, ok := (MultiMerge{}).Apply(and2)
	if !ok || out2.Children[0].Children[0].Kind != difftree.All {
		t.Fatalf("identical run should merge to plain child: %s", out2)
	}

	// Runs shorter than 2 do not merge.
	if _, ok := (MultiMerge{}).Apply(difftree.NewAll(ast.KindAnd, "", mk("u"))); ok {
		t.Error("single element must not merge")
	}
	// Opt/Multi parents are skipped.
	if _, ok := (MultiMerge{}).Apply(difftree.NewOpt(mk("u"))); ok {
		t.Error("OPT parent must not merge")
	}
	// Runs inside ANY alternatives merge too (label looked through ANY).
	anyRun := difftree.NewAll(ast.KindAnd, "",
		difftree.NewAny(mk("u"), mk("g")),
		difftree.NewAny(mk("r"), mk("i")))
	out3, ok := (MultiMerge{}).Apply(anyRun)
	if !ok || out3.Children[0].Kind != difftree.Multi {
		t.Fatalf("ANY run merge failed: %s", out3)
	}
	if len(out3.Children[0].Children[0].Children) != 4 {
		t.Errorf("flattened alternatives wrong: %s", out3)
	}
}

func astBetween(col string) *ast.Node {
	return ast.New(ast.KindBetween, "",
		ast.Leaf(ast.KindColExpr, col),
		ast.Leaf(ast.KindNumExpr, "0"),
		ast.Leaf(ast.KindNumExpr, "30"))
}

func TestAll2AnyInverse(t *testing.T) {
	// ALL(BiExpr)[ColExpr:cty, ANY[StrExpr:USA, StrExpr:EUR]]
	all := difftree.NewAll(ast.KindBiExpr, "=",
		difftree.NewAll(ast.KindColExpr, "cty"),
		difftree.NewAny(
			difftree.NewAll(ast.KindStrExpr, "USA"),
			difftree.NewAll(ast.KindStrExpr, "EUR")))
	out, ok := (All2Any{}).Apply(all)
	if !ok {
		t.Fatal("All2Any should apply")
	}
	if out.Kind != difftree.Any || len(out.Children) != 2 {
		t.Fatalf("expansion wrong: %s", out)
	}
	// Re-factoring recovers the original.
	back, ok := (Any2All{}).Apply(out)
	if !ok || !difftree.Equal(back, all) {
		t.Errorf("Any2All(All2Any(x)) != x: %s", back)
	}

	// ∅ alternatives drop the clause in that branch.
	withOpt := difftree.NewAll(ast.KindSelect, "",
		difftree.NewAll(ast.KindProject, "", difftree.NewAll(ast.KindColExpr, "a")),
		difftree.NewAny(difftree.Emptyn(), difftree.NewAll(ast.KindWhere, "", difftree.NewAll(ast.KindColExpr, "x"))))
	out2, ok := (All2Any{}).Apply(withOpt)
	if !ok {
		t.Fatal("All2Any with ∅ should apply")
	}
	if len(out2.Children[0].Children) >= len(out2.Children[1].Children) {
		t.Errorf("first branch should lack the WHERE clause: %s", out2)
	}

	// Mismatched cardinalities refuse.
	bad := difftree.NewAll(ast.KindSelect, "",
		difftree.NewAny(difftree.NewAll(ast.KindColExpr, "a"), difftree.NewAll(ast.KindColExpr, "b")),
		difftree.NewAny(difftree.NewAll(ast.KindTable, "t"), difftree.NewAll(ast.KindTable, "u"), difftree.NewAll(ast.KindTable, "v")))
	if _, ok := (All2Any{}).Apply(bad); ok {
		t.Error("mismatched ANY cardinalities must refuse")
	}
	// No ANY children refuses.
	if _, ok := (All2Any{}).Apply(difftree.NewAll(ast.KindColExpr, "a")); ok {
		t.Error("no ANY children must refuse")
	}
}

func TestMovesPreserveExpressibility(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)
	moves := Moves(d, qs, All())
	if len(moves) == 0 {
		t.Fatal("initial state should have moves")
	}
	for _, m := range moves {
		next, err := ApplyMove(d, m)
		if err != nil {
			t.Fatalf("move %s: %v", m, err)
		}
		if err := difftree.Validate(next); err != nil {
			t.Fatalf("move %s produced invalid tree: %v", m, err)
		}
		if !difftree.ExpressibleAll(next, qs) {
			t.Fatalf("move %s lost an input query: %s", m, next)
		}
	}
}

func TestMovesDeterministic(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)
	a := Moves(d, qs, All())
	b := Moves(d, qs, All())
	if len(a) != len(b) {
		t.Fatal("non-deterministic move count")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("move %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestApplyMoveErrors(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)
	if _, err := ApplyMove(d, Move{Rule: "nope", Path: nil}); err == nil {
		t.Error("unknown rule must error")
	}
	if _, err := ApplyMove(d, Move{Rule: "Any2All", Path: difftree.Path{99}}); err == nil {
		t.Error("bad path must error")
	}
	if _, err := ApplyMove(d, Move{Rule: "Optional", Path: nil}); err == nil {
		t.Error("non-matching rule must error")
	}
}

// TestRandomWalkInvariant is the paper's core invariant under fuzzing: any
// sequence of legal moves keeps every input query expressible and the tree
// valid.
func TestRandomWalkInvariant(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 60; step++ {
		moves := Moves(d, qs, All())
		if len(moves) == 0 {
			break
		}
		m := moves[rng.Intn(len(moves))]
		next, err := ApplyMove(d, m)
		if err != nil {
			t.Fatalf("step %d move %s: %v", step, m, err)
		}
		if err := difftree.Validate(next); err != nil {
			t.Fatalf("step %d move %s: invalid: %v\n%s", step, m, err, next)
		}
		if !difftree.ExpressibleAll(next, qs) {
			t.Fatalf("step %d move %s lost a query:\n%s", step, m, next)
		}
		d = next
	}
}

// TestReachFactoredState checks that greedy forward application reaches a
// compact state resembling the paper's Figure 4 for the 3-query example.
func TestReachFactoredState(t *testing.T) {
	qs := paperQueries(t)
	d := initial(t, qs)
	// Greedily shrink the tree: factoring rules reduce total size by merging
	// shared structure (choice count briefly rises before it falls, so size
	// is the right greedy objective here).
	metric := func(n *difftree.Node) int { return n.Size()*10 + n.CountChoice() }
	for i := 0; i < 50; i++ {
		moves := Moves(d, qs, Forward())
		if len(moves) == 0 {
			break
		}
		best := d
		bestM := metric(d)
		for _, m := range moves {
			next, err := ApplyMove(d, m)
			if err != nil {
				continue
			}
			if mm := metric(next); mm < bestM {
				best, bestM = next, mm
			}
		}
		if difftree.Equal(best, d) {
			break
		}
		d = best
	}
	// The factored tree should be an ALL(Select) root with few choices.
	if d.Kind != difftree.All || d.Label != ast.KindSelect {
		t.Fatalf("expected factored ALL(Select) root, got %s", d)
	}
	if c := d.CountChoice(); c > 4 {
		t.Errorf("factored tree still has %d choice nodes: %s", c, d)
	}
	if !difftree.ExpressibleAll(d, qs) {
		t.Error("factored tree lost queries")
	}
}

func TestForwardSubset(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Forward() {
		names[r.Name()] = true
	}
	for _, banned := range []string{"Wrap", "All2Any", "Unlift", "Unoptional"} {
		if names[banned] {
			t.Errorf("Forward() must not contain %s", banned)
		}
	}
}

func TestMoveString(t *testing.T) {
	m := Move{Rule: "Lift", Path: difftree.Path{0, 2}}
	if m.String() != "Lift@/0/2" {
		t.Errorf("Move.String = %q", m.String())
	}
}
