package rules

import (
	"repro/internal/ast"
	"repro/internal/difftree"
)

// MultiMerge replaces a run of two or more consecutive siblings that denote
// the same grammar rule with a single MULTI node whose child expresses all
// of them (paper: ANY[ALL[x x x x], ALL[x x]] → ALL[MULTI[x]]; e.g. merging
// repeated predicates so the interface gains an "adder" widget). The rule is
// the only non-bidirectional rule in the paper.
type MultiMerge struct{}

// Name implements Rule.
func (MultiMerge) Name() string { return "MultiMerge" }

// elemLabel returns the grammar rule a sibling denotes, looking through ANY
// alternatives; ok is false for nodes that cannot participate in a run
// (Seq, Empty, Opt, Multi, or mixed-label Any).
func elemLabel(c *difftree.Node) (ast.Kind, bool) {
	switch c.Kind {
	case difftree.All:
		if c.IsEmpty() || c.IsSeq() {
			return 0, false
		}
		return c.Label, true
	case difftree.Any:
		var label ast.Kind
		for i, alt := range c.Children {
			l, ok := elemLabel(alt)
			if !ok {
				return 0, false
			}
			if i == 0 {
				label = l
			} else if l != label {
				return 0, false
			}
		}
		return label, len(c.Children) > 0
	}
	return 0, false
}

// alternativesOf flattens a run element into its concrete alternatives.
func alternativesOf(c *difftree.Node) []*difftree.Node {
	if c.Kind == difftree.Any {
		var out []*difftree.Node
		for _, alt := range c.Children {
			out = append(out, alternativesOf(alt)...)
		}
		return out
	}
	return []*difftree.Node{c}
}

// Apply implements Rule. It merges the first maximal run of length >= 2
// found among n's children (one run per move keeps fanout proportional to
// the number of runs, and repeated application handles the rest).
func (MultiMerge) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind == difftree.Opt || n.Kind == difftree.Multi {
		return nil, false
	}
	if n.Kind == difftree.All && n.IsEmpty() {
		return nil, false
	}
	kids := n.Children
	for start := 0; start < len(kids); start++ {
		label, ok := elemLabel(kids[start])
		if !ok {
			continue
		}
		end := start + 1
		for end < len(kids) {
			l, ok := elemLabel(kids[end])
			if !ok || l != label {
				break
			}
			end++
		}
		if end-start < 2 {
			continue
		}
		var alts []*difftree.Node
		for i := start; i < end; i++ {
			alts = append(alts, alternativesOf(kids[i])...)
		}
		alts = dedupNodes(alts)
		var child *difftree.Node
		if len(alts) == 1 {
			child = alts[0]
		} else {
			child = difftree.NewAny(alts...)
		}
		if difftree.Nullable(child) {
			continue // would break the MULTI invariant
		}
		out := &difftree.Node{Kind: n.Kind, Label: n.Label, Value: n.Value}
		out.Children = append(out.Children, kids[:start]...)
		out.Children = append(out.Children, difftree.NewMulti(child))
		out.Children = append(out.Children, kids[end:]...)
		return out, true
	}
	return nil, false
}
