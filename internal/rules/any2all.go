package rules

import (
	"repro/internal/ast"
	"repro/internal/difftree"
)

// Any2All is the paper's main factoring rule: an ANY whose children are ALL
// nodes with the same root and alignable child sequences becomes a single
// ALL whose children are per-position choices. Aligned positions that agree
// in every branch collapse to a plain node; positions with variants become
// ANY nodes; positions missing from some branch gain an ∅ alternative
// (which the Optional rule can then turn into OPT).
type Any2All struct{}

// Name implements Rule.
func (Any2All) Name() string { return "Any2All" }

// alignKey identifies which grandchildren align across branches: plain All
// children align by grammar label; choice children align only with
// structurally identical choice nodes.
func alignKey(c *difftree.Node) (string, bool) {
	switch c.Kind {
	case difftree.All:
		if c.IsEmpty() || c.IsSeq() {
			return "", false
		}
		return "L" + c.Label.String(), true
	default:
		return "C" + c.Kind.String() + hashKey(c), true
	}
}

func hashKey(c *difftree.Node) string {
	h := difftree.Hash(c)
	buf := make([]byte, 16)
	for i := 0; i < 16; i++ {
		buf[i] = "0123456789abcdef"[h&0xf]
		h >>= 4
	}
	return string(buf)
}

// Apply implements Rule.
func (Any2All) Apply(n *difftree.Node) (*difftree.Node, bool) {
	label, value, ok := sameAllHead(n)
	if !ok {
		return nil, false
	}

	// Per branch: sequence of (key, node). Keys get an ordinal suffix per
	// repeated label so four BETWEEN conjuncts align positionally.
	type slot struct {
		key  string
		node *difftree.Node
	}
	branches := make([][]slot, len(n.Children))
	for bi, b := range n.Children {
		counts := map[string]int{}
		for _, c := range b.Children {
			k, ok := alignKey(c)
			if !ok {
				return nil, false // Seq children: not alignable
			}
			ord := counts[k]
			counts[k]++
			branches[bi] = append(branches[bi], slot{key: k + "#" + itoa(ord), node: c})
		}
	}

	// Position order: first appearance scanning branches in order.
	var order []string
	seen := map[string]bool{}
	for _, br := range branches {
		for _, s := range br {
			if !seen[s.key] {
				seen[s.key] = true
				order = append(order, s.key)
			}
		}
	}

	if len(order) == 0 {
		return nil, false // all branches empty: nothing to factor
	}

	// Collect variants per position.
	newKids := make([]*difftree.Node, 0, len(order))
	for _, key := range order {
		var variants []*difftree.Node
		missing := false
		for _, br := range branches {
			found := (*difftree.Node)(nil)
			for _, s := range br {
				if s.key == key {
					found = s.node
					break
				}
			}
			if found == nil {
				missing = true
			} else {
				variants = append(variants, found) // shared: one (branch, slot) each
			}
		}
		variants = dedupNodes(variants)
		var kid *difftree.Node
		switch {
		case len(variants) == 1 && !missing:
			kid = variants[0]
		case missing:
			kid = difftree.NewAny(append([]*difftree.Node{difftree.Emptyn()}, variants...)...)
		default:
			kid = difftree.NewAny(variants...)
		}
		newKids = append(newKids, kid)
	}

	out := difftree.NewAll(label, value, newKids...)
	// A no-op rewrite (e.g. identical branches) is not a move.
	if difftree.Equal(out, n) {
		return nil, false
	}
	return out, true
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// All2Any is the inverse direction: an ALL node whose direct ANY children
// all have the same alternative count k expands back into an ANY of k ALL
// combinations, pairing alternatives positionally. (The expressibility
// filter in Moves rejects pairings that lose input queries.)
type All2Any struct{}

// Name implements Rule.
func (All2Any) Name() string { return "All2Any" }

// maxExpandBranches bounds the number of combinations All2Any may emit.
const maxExpandBranches = 12

// Apply implements Rule.
func (All2Any) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.All || n.IsEmpty() || n.Label == ast.KindSeq {
		return nil, false
	}
	k := 0
	hasAny := false
	for _, c := range n.Children {
		if c.Kind == difftree.Any {
			hasAny = true
			if k == 0 {
				k = len(c.Children)
			} else if k != len(c.Children) {
				return nil, false
			}
		}
	}
	if !hasAny || k < 2 || k > maxExpandBranches {
		return nil, false
	}
	branches := make([]*difftree.Node, k)
	for i := 0; i < k; i++ {
		kids := make([]*difftree.Node, 0, len(n.Children))
		for _, c := range n.Children {
			if c.Kind == difftree.Any {
				alt := c.Children[i]
				if alt.IsEmpty() {
					continue // ∅ alternative: clause absent in this branch
				}
				kids = append(kids, alt) // shared: alternative i goes to branch i only
			} else {
				// Deep-cloned on purpose: the same source child is emitted
				// into every branch, and node pointers must stay unique
				// within one tree.
				kids = append(kids, c.Clone())
			}
		}
		branches[i] = difftree.NewAll(n.Label, n.Value, kids...)
	}
	branches = dedupNodes(branches)
	if len(branches) == 1 {
		return branches[0], true
	}
	return difftree.NewAny(branches...), true
}
