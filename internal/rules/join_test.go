package rules

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func parseAll(t *testing.T, srcs ...string) []*ast.Node {
	t.Helper()
	out := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

// TestAny2AllFactorsJoinPartner: two queries that differ only in the join
// partner table factor — via repeated Any2All — down to a single ANY over
// the partner tables sitting inside the Join node (the join-partner picker).
func TestAny2AllFactorsJoinPartner(t *testing.T) {
	log := parseAll(t,
		"select objid from stars inner join specobj on objid = objid",
		"select objid from stars inner join photoz on objid = objid",
	)
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}

	// Greedily apply Any2All anywhere it is legal until a fixpoint; on this
	// pair that fully factors the shared structure.
	for {
		applied := false
		for _, m := range Moves(d, log, []Rule{Any2All{}}) {
			next, err := ApplyMove(d, m)
			if err != nil {
				t.Fatal(err)
			}
			d, applied = next, true
			break
		}
		if !applied {
			break
		}
	}

	// The factored tree has exactly one choice: ANY[Table(specobj),
	// Table(photoz)] directly under the Join node.
	if got := d.CountChoice(); got != 1 {
		t.Fatalf("choices after factoring = %d, want 1\ntree: %s", got, d)
	}
	var picker *difftree.Node
	difftree.WalkPath(d, func(n *difftree.Node, _ difftree.Path) bool {
		if n.Kind == difftree.All && n.Label == ast.KindJoin {
			for _, c := range n.Children {
				if c.Kind == difftree.Any {
					picker = c
				}
			}
		}
		return true
	})
	if picker == nil {
		t.Fatalf("no ANY under the Join node\ntree: %s", d)
	}
	for _, alt := range picker.Children {
		if alt.Label != ast.KindTable {
			t.Fatalf("picker alternative is %s, want Table", alt.Label)
		}
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Fatal("factored tree lost a query")
	}
}

// TestAny2AllFactorsUnionBranches: two union chains sharing their first
// branch factor into a Union node whose varying branch is an ANY — the
// union-branch choice the tabs widget hosts.
func TestAny2AllFactorsUnionBranches(t *testing.T) {
	log := parseAll(t,
		"select objid from stars union select objid from galaxies",
		"select objid from stars union select objid from quasars",
	)
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	ms := Moves(d, log, []Rule{Any2All{}})
	if len(ms) == 0 {
		t.Fatalf("Any2All has no move on ANY of Unions\ntree: %s", d)
	}
	next, err := ApplyMove(d, ms[0])
	if err != nil {
		t.Fatal(err)
	}
	if next.Kind != difftree.All || next.Label != ast.KindUnion {
		t.Fatalf("factored root = %s, want Union", next)
	}
	anyBranches := 0
	for _, c := range next.Children {
		if c.Kind == difftree.Any {
			anyBranches++
		}
	}
	if anyBranches != 1 {
		t.Fatalf("want exactly one varying union branch, got %d\ntree: %s", anyBranches, next)
	}
	if !difftree.ExpressibleAll(next, log) {
		t.Fatal("factored union tree lost a query")
	}
}

// TestLiftOverJoinChain: Lift applies to an ANY of Selects whose FROM
// clauses carry different join chains, producing the Seq-splice intermediate
// states the long search paths need; the result stays legal.
func TestLiftOverJoinChain(t *testing.T) {
	log := parseAll(t,
		"select objid from stars inner join specobj on objid = objid where u between 0 and 30",
		"select objid from stars left join photoz on objid = objid",
	)
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := Lift{}.Apply(d)
	if !ok {
		t.Fatalf("Lift does not apply to %s", d)
	}
	if out.Label != ast.KindSelect {
		t.Fatalf("lifted root label = %s", out.Label)
	}
	if err := difftree.Validate(out); err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(out, log) {
		t.Fatal("Lift lost a query")
	}
}

// TestMovesExploreJoinLog: the full rule set offers moves on the SDSS join
// log's initial state — the search space over the new grammar is not empty.
func TestMovesExploreJoinLog(t *testing.T) {
	log := workload.SDSSJoinLog()
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	ms := Moves(d, log, All())
	if len(ms) == 0 {
		t.Fatal("no legal moves on the join log's initial difftree")
	}
}
