package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/difftree"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// TestQuickWalkInvariantRandomLogs is the system's central property
// quantified over random logs: along any path of legal moves, the difftree
// stays valid and every input query stays expressible.
func TestQuickWalkInvariantRandomLogs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := workload.RandomLog(rng, 2+rng.Intn(3))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		for step := 0; step < 8; step++ {
			moves := Moves(d, log, All())
			if len(moves) == 0 {
				break
			}
			next, err := ApplyMove(d, moves[rng.Intn(len(moves))])
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			if difftree.Validate(next) != nil {
				t.Logf("seed %d step %d: invalid state", seed, step)
				return false
			}
			if !difftree.ExpressibleAll(next, log) {
				t.Logf("seed %d step %d: lost a query", seed, step)
				return false
			}
			d = next
		}
		return true
	}
	cfg := testutil.QuickConfig(106, 25)
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBidirectionalPairsInvert checks rule inverses on random states:
// whenever Lift applies, Unlift(Lift(x)) == x; same for Optional/Unoptional
// and Wrap/Unwrap.
func TestQuickBidirectionalPairsInvert(t *testing.T) {
	pairs := []struct {
		fwd, bwd Rule
	}{
		{Lift{}, Unlift{}},
		{Optional{}, Unoptional{}},
		{Wrap{}, Unwrap{}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := workload.RandomLog(rng, 2+rng.Intn(3))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		// Wander a little to diversify shapes.
		for step := 0; step < rng.Intn(4); step++ {
			moves := Moves(d, log, All())
			if len(moves) == 0 {
				break
			}
			if next, err := ApplyMove(d, moves[rng.Intn(len(moves))]); err == nil {
				d = next
			}
		}
		ok := true
		difftree.WalkPath(d, func(n *difftree.Node, _ difftree.Path) bool {
			for _, pr := range pairs {
				mid, applied := pr.fwd.Apply(n)
				if !applied {
					continue
				}
				back, applied := pr.bwd.Apply(mid)
				if !applied {
					continue // inverse not applicable on this output shape
				}
				if !difftree.Equal(back, n) {
					t.Logf("seed %d: %s then %s changed %s into %s", seed, pr.fwd.Name(), pr.bwd.Name(), n, back)
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, testutil.QuickConfig(107, 20)); err != nil {
		t.Fatal(err)
	}
}
