// Package rules implements the paper's difftree transformation rules
// (Figure 5): Any2All, Lift, MultiMerge, Optional, and Noop, together with
// their inverses (all rules are bidirectional except MultiMerge), plus
// GroupAny, which partitions a mixed-shape ANY into factorable same-head
// groups (needed once logs mix SELECTs with UNION chains and join variants;
// Flatten is its inverse).
//
// A rule rewrites the subtree rooted at one node; a Move names a rule and
// the path of the node it applies to. Moves(root, queries) enumerates every
// legal move, filtering out rewrites that would make any input query
// inexpressible — the system-wide invariant.
package rules

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/difftree"
)

// Rule rewrites a single difftree node.
type Rule interface {
	// Name identifies the rule (stable; used in Move and logs).
	Name() string
	// Apply attempts the rewrite on the subtree rooted at n and returns the
	// replacement subtree. It must not mutate n. ok is false when the rule's
	// input pattern does not match.
	Apply(n *difftree.Node) (out *difftree.Node, ok bool)
}

// Move is one applicable (rule, node) pair.
type Move struct {
	Rule string
	Path difftree.Path
}

func (m Move) String() string { return fmt.Sprintf("%s@%s", m.Rule, m.Path) }

// All returns the full rule set in canonical order.
func All() []Rule {
	return []Rule{
		Any2All{},
		All2Any{},
		Lift{},
		Unlift{},
		MultiMerge{},
		Optional{},
		Unoptional{},
		Unwrap{},
		Flatten{},
		DedupAny{},
		Wrap{},
		GroupAny{},
	}
}

// Forward returns only the factoring (forward) rules; useful for greedy
// baselines that never want to expand a tree.
func Forward() []Rule {
	return []Rule{Any2All{}, Lift{}, MultiMerge{}, Optional{}, Unwrap{}, Flatten{}, DedupAny{}, GroupAny{}}
}

// MatchKinds maps each built-in rule to the difftree node kinds its pattern
// can match. Move enumerators and rollout samplers use it to skip (rule,
// node) pairs that cannot possibly apply; rules absent from the table are
// tried on every node.
var MatchKinds = map[string]map[difftree.Kind]bool{
	"Any2All":    {difftree.Any: true},
	"All2Any":    {difftree.All: true},
	"Lift":       {difftree.Any: true},
	"Unlift":     {difftree.All: true},
	"MultiMerge": {difftree.Any: true, difftree.All: true},
	"Optional":   {difftree.Any: true},
	"Unoptional": {difftree.Opt: true},
	"Unwrap":     {difftree.Any: true},
	"Flatten":    {difftree.Any: true},
	"DedupAny":   {difftree.Any: true},
	"Wrap":       {difftree.All: true},
	"GroupAny":   {difftree.Any: true},
}

var ruleByName = func() map[string]Rule {
	m := make(map[string]Rule)
	for _, r := range All() {
		m[r.Name()] = r
	}
	return m
}()

// ByName looks a rule up by its name.
func ByName(name string) (Rule, bool) {
	r, ok := ruleByName[name]
	return r, ok
}

// parentAware lets a rule veto application based on the node's parent; used
// by Wrap to bound fanout (wrapping is only useful on choice alternatives).
type parentAware interface {
	AllowedUnder(parent *difftree.Node) bool
}

// LegalState reports whether a rewritten difftree satisfies the system
// invariant: structurally valid and still expressing every input query.
func LegalState(next *difftree.Node, queries []*ast.Node) bool {
	return difftree.Validate(next) == nil && difftree.ExpressibleAll(next, queries)
}

// Candidate applies one (rule, path) pattern without the legality gate,
// returning the rewritten tree. Callers must check LegalState (directly or
// through a cache) before treating the result as a search state.
func Candidate(root *difftree.Node, p difftree.Path, r Rule) (*difftree.Node, bool) {
	n := difftree.At(root, p)
	if n == nil {
		return nil, false
	}
	if pa, ok := r.(parentAware); ok {
		var parent *difftree.Node
		if len(p) > 0 {
			parent = difftree.At(root, p[:len(p)-1])
		}
		if !pa.AllowedUnder(parent) {
			return nil, false
		}
	}
	sub, ok := r.Apply(n)
	if !ok {
		return nil, false
	}
	next := difftree.ReplaceAt(root, p, sub)
	if next == nil {
		return nil, false
	}
	return next, true
}

// CandidateArena is Candidate with the copy-on-write spine bump-allocated
// from a. The returned tree obeys difftree.SpineArena's lifetime contract: it
// is valid only until a.Reset and must not be retained as a search state —
// callers that keep a candidate rebuild it with Candidate.
func CandidateArena(root *difftree.Node, p difftree.Path, r Rule, a *difftree.SpineArena) (*difftree.Node, bool) {
	n := difftree.At(root, p)
	if n == nil {
		return nil, false
	}
	if pa, ok := r.(parentAware); ok {
		var parent *difftree.Node
		if len(p) > 0 {
			parent = difftree.At(root, p[:len(p)-1])
		}
		if !pa.AllowedUnder(parent) {
			return nil, false
		}
	}
	sub, ok := r.Apply(n)
	if !ok {
		return nil, false
	}
	next := a.ReplaceAt(root, p, sub)
	if next == nil {
		return nil, false
	}
	return next, true
}

// Moves enumerates all legal moves on root using the given rule set: the
// rule pattern matches, the resulting tree validates, and every query stays
// expressible. The result order is deterministic (pre-order paths, rule
// order).
func Moves(root *difftree.Node, queries []*ast.Node, set []Rule) []Move {
	var out []Move
	difftree.WalkPath(root, func(n *difftree.Node, p difftree.Path) bool {
		for _, r := range set {
			next, ok := Candidate(root, p, r)
			if !ok || !LegalState(next, queries) {
				continue
			}
			out = append(out, Move{Rule: r.Name(), Path: p.Clone()})
		}
		return true
	})
	return out
}

// TryApply attempts one (rule, path) candidate with the full legality gate
// used by Moves: parent admissibility, pattern match, validation, and
// expressibility preservation. It is the primitive behind random move
// sampling in rollouts.
func TryApply(root *difftree.Node, p difftree.Path, r Rule, queries []*ast.Node) (*difftree.Node, bool) {
	next, ok := Candidate(root, p, r)
	if !ok || !LegalState(next, queries) {
		return nil, false
	}
	return next, true
}

// ApplyMove applies a move to root, returning the rewritten tree. It errors
// if the move no longer matches (e.g. applied to a different tree).
func ApplyMove(root *difftree.Node, m Move) (*difftree.Node, error) {
	r, ok := ByName(m.Rule)
	if !ok {
		return nil, fmt.Errorf("rules: unknown rule %q", m.Rule)
	}
	n := difftree.At(root, m.Path)
	if n == nil {
		return nil, fmt.Errorf("rules: move %s: path does not exist", m)
	}
	sub, ok := r.Apply(n)
	if !ok {
		return nil, fmt.Errorf("rules: move %s: rule pattern no longer matches", m)
	}
	next := difftree.ReplaceAt(root, m.Path, sub)
	if next == nil {
		return nil, fmt.Errorf("rules: move %s: replace failed", m)
	}
	return next, nil
}

// dedupNodes removes structural duplicates preserving order.
func dedupNodes(ns []*difftree.Node) []*difftree.Node {
	seen := make(map[uint64][]*difftree.Node, len(ns))
	var out []*difftree.Node
	for _, n := range ns {
		h := difftree.Hash(n)
		dup := false
		for _, prev := range seen[h] {
			if difftree.Equal(prev, n) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], n)
			out = append(out, n)
		}
	}
	return out
}

// sameAllHead reports whether every child of n is a plain All node (not
// Empty, not Seq) sharing one (Label, Value) head; it returns that head.
func sameAllHead(n *difftree.Node) (label ast.Kind, value string, ok bool) {
	if n.Kind != difftree.Any || len(n.Children) < 2 {
		return 0, "", false
	}
	first := n.Children[0]
	if first.Kind != difftree.All || first.IsEmpty() || first.IsSeq() {
		return 0, "", false
	}
	for _, c := range n.Children[1:] {
		if c.Kind != difftree.All || c.Label != first.Label || c.Value != first.Value {
			return 0, "", false
		}
	}
	return first.Label, first.Value, true
}
