package rules

import (
	"repro/internal/difftree"
)

// GroupAny partitions a heterogeneous ANY by the root (Label, Value) head of
// its alternatives, nesting every multi-member head group in an inner ANY:
//
//	ANY[ Select.. Select.. Union.. Union.. ] →
//	ANY[ ANY[Select.. Select..] ANY[Union.. Union..] ]
//
// ANY is associative, so the generated language is unchanged; what changes
// is that Any2All and Lift — whose pattern requires one shared head — can
// now factor the homogeneous inner groups. This is what opens the search
// space for logs that mix query shapes (multi-table logs mixing plain
// SELECTs with UNION chains, or INNER with LEFT join steps). Flatten is the
// inverse. The rule never matches a single-head ANY (grouping it would be a
// no-op wrap), so single-shape logs see no new moves.
type GroupAny struct{}

// Name implements Rule.
func (GroupAny) Name() string { return "GroupAny" }

// groupKey buckets an alternative by its factorable head; non-All children
// (choices, Seq, ∅) are never grouped and bucket alone.
func groupKey(c *difftree.Node) (string, bool) {
	if c.Kind != difftree.All || c.IsEmpty() || c.IsSeq() {
		return "", false
	}
	return c.Label.String() + "\x00" + c.Value, true
}

// Apply implements Rule.
func (GroupAny) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.Any || len(n.Children) < 3 {
		return nil, false
	}
	type group struct {
		members []*difftree.Node
	}
	var order []string
	groups := make(map[string]*group)
	var singles int
	for _, c := range n.Children {
		k, ok := groupKey(c)
		if !ok {
			// Ungroupable alternative: its own bucket.
			singles++
			k = "\x01" + itoa(singles)
		}
		g, seen := groups[k]
		if !seen {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, c) // shared: each child lands once
	}
	// Grouping is only a move when it changes the shape: at least two
	// buckets (a single head is Any2All/Lift territory already) and at
	// least one bucket with two or more members.
	if len(order) < 2 {
		return nil, false
	}
	grouped := false
	kids := make([]*difftree.Node, 0, len(order))
	for _, k := range order {
		g := groups[k]
		if len(g.members) == 1 {
			kids = append(kids, g.members[0])
			continue
		}
		grouped = true
		kids = append(kids, difftree.NewAny(g.members...))
	}
	if !grouped {
		return nil, false
	}
	return difftree.NewAny(kids...), true
}
