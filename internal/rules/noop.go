package rules

import "repro/internal/difftree"

// Optional converts an ANY with an ∅ alternative into an OPT (paper:
// ANY[∅, z] → OPT[z]); multiple non-empty alternatives nest an inner ANY.
type Optional struct{}

// Name implements Rule.
func (Optional) Name() string { return "Optional" }

// Apply implements Rule.
func (Optional) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.Any {
		return nil, false
	}
	var nonEmpty []*difftree.Node
	empties := 0
	for _, c := range n.Children {
		if c.IsEmpty() {
			empties++
		} else {
			nonEmpty = append(nonEmpty, c) // shared: used once (see share)
		}
	}
	// Exactly one ∅ keeps the rule invertible (duplicate ∅ alternatives are
	// DedupAny's job); Unoptional restores exactly one.
	if empties != 1 || len(nonEmpty) == 0 {
		return nil, false
	}
	// A lone alternative passes through — unless it is itself an ANY, which
	// Unoptional would flatten into the rebuilt ANY; nest it instead so
	// Unoptional(Optional(x)) == x.
	if len(nonEmpty) == 1 && nonEmpty[0].Kind != difftree.Any {
		return difftree.NewOpt(nonEmpty[0]), true
	}
	return difftree.NewOpt(difftree.NewAny(nonEmpty...)), true
}

// Unoptional is the inverse: OPT[z] → ANY[∅, z] (flattening an inner ANY).
type Unoptional struct{}

// Name implements Rule.
func (Unoptional) Name() string { return "Unoptional" }

// Apply implements Rule.
func (Unoptional) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.Opt {
		return nil, false
	}
	child := n.Children[0]
	kids := []*difftree.Node{difftree.Emptyn()}
	if child.Kind == difftree.Any {
		kids = append(kids, share(child.Children)...)
	} else {
		kids = append(kids, child)
	}
	return difftree.NewAny(kids...), true
}

// Unwrap removes a trivial ANY wrapper: ANY[x] → x (paper's Noop, forward).
type Unwrap struct{}

// Name implements Rule.
func (Unwrap) Name() string { return "Unwrap" }

// Apply implements Rule.
func (Unwrap) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.Any || len(n.Children) != 1 {
		return nil, false
	}
	return n.Children[0], true
}

// Wrap adds a trivial ANY wrapper: x → ANY[x] (paper's Noop, backward). It
// refuses to wrap choice nodes or ∅, and — to keep the search fanout in the
// paper's reported range (~50) — only applies to nodes that are themselves
// choice alternatives (children of an ANY).
type Wrap struct{}

// Name implements Rule.
func (Wrap) Name() string { return "Wrap" }

// AllowedUnder bounds Wrap to ANY alternatives.
func (Wrap) AllowedUnder(parent *difftree.Node) bool {
	return parent != nil && parent.Kind == difftree.Any
}

// Apply implements Rule.
func (Wrap) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.All || n.IsEmpty() || n.IsSeq() {
		return nil, false
	}
	return difftree.NewAny(n), true
}

// Flatten splices nested ANY alternatives into their parent:
// ANY[ANY[a b] c] → ANY[a b c].
type Flatten struct{}

// Name implements Rule.
func (Flatten) Name() string { return "Flatten" }

// Apply implements Rule.
func (Flatten) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.Any {
		return nil, false
	}
	hasNested := false
	for _, c := range n.Children {
		if c.Kind == difftree.Any {
			hasNested = true
			break
		}
	}
	if !hasNested {
		return nil, false
	}
	var kids []*difftree.Node
	for _, c := range n.Children {
		if c.Kind == difftree.Any {
			kids = append(kids, share(c.Children)...)
		} else {
			kids = append(kids, c)
		}
	}
	return difftree.NewAny(dedupNodes(kids)...), true
}

// DedupAny removes structurally duplicate alternatives from an ANY.
type DedupAny struct{}

// Name implements Rule.
func (DedupAny) Name() string { return "DedupAny" }

// Apply implements Rule.
func (DedupAny) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.Any {
		return nil, false
	}
	kids := dedupNodes(n.Children)
	if len(kids) == len(n.Children) {
		return nil, false
	}
	return difftree.NewAny(share(kids)...), true
}
