package rules

import (
	"repro/internal/ast"
	"repro/internal/difftree"
)

// Lift factors only the shared root out of an ANY:
//
//	ANY[ ALL(z)[xs...], ALL(z)[ys...] ]  →  ALL(z)[ ANY[ Seq(xs...), Seq(ys...) ] ]
//
// Unlike Any2All it does not align the child sequences; the ANY then holds
// the whole (headless) child sequences as Seq splices, which later rules can
// refine. This produces the intermediate states that give the paper its long
// (~100-step) search paths.
type Lift struct{}

// Name implements Rule.
func (Lift) Name() string { return "Lift" }

// Apply implements Rule.
func (Lift) Apply(n *difftree.Node) (*difftree.Node, bool) {
	label, value, ok := sameAllHead(n)
	if !ok {
		return nil, false
	}
	alts := make([]*difftree.Node, 0, len(n.Children))
	for _, b := range n.Children {
		alts = append(alts, seqOf(b.Children))
	}
	alts = dedupNodes(alts)
	var inner *difftree.Node
	if len(alts) == 1 {
		inner = alts[0]
	} else {
		inner = difftree.NewAny(alts...)
	}
	if inner.IsSeq() {
		// Single branch whose children can be inlined directly.
		return difftree.NewAll(label, value, share(inner.Children)...), true
	}
	return difftree.NewAll(label, value, inner), true
}

// seqOf wraps a child sequence for splicing: zero children become ∅, one
// child passes through, several children become a Seq node. A lone child
// that is itself a Seq or ∅ is re-wrapped in a fresh Seq rather than
// reused: Unlift treats bare Seq/∅ alternatives as its own splice markers,
// so reusing the node would make Unlift(Lift(x)) dissolve x's wrapper.
func seqOf(cs []*difftree.Node) *difftree.Node {
	switch {
	case len(cs) == 0:
		return difftree.Emptyn()
	case len(cs) == 1 && !cs[0].IsSeq() && !cs[0].IsEmpty():
		return cs[0]
	default:
		return difftree.NewAll(ast.KindSeq, "", share(cs)...)
	}
}

// share copies the slice but not the subtrees: difftrees are immutable, so a
// rewrite may reference unchanged source subtrees directly (copy-on-write).
// The one constraint is that a source node must land at most ONCE in the
// output tree — widget assignment and cost attribution key maps by node
// pointer, so duplicating a pointer within one tree would conflate two
// positions. Every caller here satisfies that; All2Any, which emits a child
// into several branches, is the one rule that still deep-clones.
func share(cs []*difftree.Node) []*difftree.Node {
	out := make([]*difftree.Node, len(cs))
	copy(out, cs)
	return out
}

// Unlift is the inverse of Lift: an ALL whose only child is an ANY of
// spliceable sequences expands back to an ANY of complete ALL branches.
type Unlift struct{}

// Name implements Rule.
func (Unlift) Name() string { return "Unlift" }

// Apply implements Rule.
func (Unlift) Apply(n *difftree.Node) (*difftree.Node, bool) {
	if n.Kind != difftree.All || n.IsEmpty() || n.Label == ast.KindSeq {
		return nil, false
	}
	if len(n.Children) != 1 || n.Children[0].Kind != difftree.Any {
		return nil, false
	}
	anyNode := n.Children[0]
	branches := make([]*difftree.Node, 0, len(anyNode.Children))
	for _, alt := range anyNode.Children {
		var kids []*difftree.Node
		switch {
		case alt.IsSeq():
			kids = share(alt.Children)
		case alt.IsEmpty():
			kids = nil
		default:
			kids = []*difftree.Node{alt}
		}
		branches = append(branches, difftree.NewAll(n.Label, n.Value, kids...))
	}
	branches = dedupNodes(branches)
	if len(branches) == 1 {
		return branches[0], true
	}
	return difftree.NewAny(branches...), true
}
