// Package client is the typed Go client for the v1 serving API
// (internal/api): every mctsuid endpoint behind context-aware methods, with
// bounded retry/backoff on connection errors and SSE progress decoding.
//
// It is the one HTTP codepath the repo's own consumers share — the load
// harness (internal/load), the fleet router's probes and warm-handoff
// plumbing (internal/router), cmd/mctsload's readiness polling, and the
// server integration tests all speak to daemons through it instead of
// hand-rolling net/http calls, so a wire-contract change breaks loudly at
// compile time in one place.
//
// Retry semantics are deliberately narrow: a request is retried only when
// the error proves it never reached a server (a dial failure — connection
// refused, no route). Anything after a connection is established — an HTTP
// error status, a mid-body transport error, a context cancellation — is
// returned as-is, because retrying could double-apply a non-idempotent
// request (a session append, a cache import). Callers that must not retry
// at all (the open-loop load harness, where a refused connection is data)
// set Retries to a negative value.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/api"
)

// Client talks to one server (an mctsuid replica or an mctsrouter). The
// zero value is unusable; construct with New. Fields may be adjusted before
// first use, not after.
type Client struct {
	// BaseURL is the server's root, no trailing slash (e.g.
	// "http://127.0.0.1:8080").
	BaseURL string
	// HTTPClient issues the requests (http.DefaultClient when nil).
	HTTPClient *http.Client
	// Retries bounds re-sends after a connection-level failure: 0 means the
	// default (2 retries, 3 attempts total), negative disables retry.
	Retries int
	// Backoff is the first retry's delay, doubled per attempt (default
	// 50ms). The sleep honors the request context.
	Backoff time.Duration
}

// New returns a Client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// StatusError is a non-2xx response, carrying the decoded error body.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's api.ErrorBody.Error text (or the raw body
	// when it was not an error JSON).
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

// StreamEvent is one decoded SSE frame. Name is an api.Event* constant;
// Data is the frame's JSON payload (an api.ProgressEvent for
// api.EventProgress, an api.GenerateResponse for api.EventResult, an
// api.ErrorBody for api.EventError).
type StreamEvent struct {
	Name string
	Data json.RawMessage
}

// --- Generation -------------------------------------------------------------

// Generate runs one-shot generation (POST /v1/generate).
func (c *Client) Generate(ctx context.Context, req *api.GenerateRequest) (*api.GenerateResponse, error) {
	var resp api.GenerateResponse
	if err := c.postJSON(ctx, "/v1/generate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Append appends queries to a session and regenerates warm-started
// (POST /v1/sessions/{id}/queries).
func (c *Client) Append(ctx context.Context, id string, req *api.SessionQueriesRequest) (*api.GenerateResponse, error) {
	var resp api.GenerateResponse
	if err := c.postJSON(ctx, "/v1/sessions/"+url.PathEscape(id)+"/queries", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GenerateStream runs one-shot generation over SSE, invoking on (when
// non-nil) for every frame as it arrives, and returns the final result.
// A stream that ends with api.EventError — or without any api.EventResult —
// is an error.
func (c *Client) GenerateStream(ctx context.Context, req *api.GenerateRequest, on func(StreamEvent)) (*api.GenerateResponse, error) {
	r := *req
	r.Stream = true
	return c.stream(ctx, "/v1/generate", &r, on)
}

// AppendStream is Append over SSE, as GenerateStream.
func (c *Client) AppendStream(ctx context.Context, id string, req *api.SessionQueriesRequest, on func(StreamEvent)) (*api.GenerateResponse, error) {
	r := *req
	r.Stream = true
	return c.stream(ctx, "/v1/sessions/"+url.PathEscape(id)+"/queries", &r, on)
}

// --- Sessions ---------------------------------------------------------------

// Interact drives a session's widgets (POST /v1/sessions/{id}/interact).
func (c *Client) Interact(ctx context.Context, id string, req *api.InteractRequest) (*api.InteractResponse, error) {
	var resp api.InteractResponse
	if err := c.postJSON(ctx, "/v1/sessions/"+url.PathEscape(id)+"/interact", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ImportSession loads a persisted interface (codec JSON, the export format)
// as a session (POST /v1/sessions/{id}/import). screen, when non-nil, is
// the ?w=&h= generating-screen hint that makes cost/validity round-trip.
func (c *Client) ImportSession(ctx context.Context, id string, data []byte, screen *api.Size) (*api.GenerateResponse, error) {
	path := "/v1/sessions/" + url.PathEscape(id) + "/import"
	if screen != nil {
		path += fmt.Sprintf("?w=%d&h=%d", screen.W, screen.H)
	}
	status, body, err := c.PostJSON(ctx, path, data)
	if err != nil {
		return nil, err
	}
	var resp api.GenerateResponse
	if err := decodeStatus(status, body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ExportSession fetches a session's persisted interface as codec JSON
// (GET /v1/sessions/{id}/export).
func (c *Client) ExportSession(ctx context.Context, id string) ([]byte, error) {
	return c.getBytes(ctx, "/v1/sessions/"+url.PathEscape(id)+"/export")
}

// ExportSessionHTML fetches the session's self-contained interactive HTML
// page (GET /v1/sessions/{id}/export?format=html).
func (c *Client) ExportSessionHTML(ctx context.Context, id string) ([]byte, error) {
	return c.getBytes(ctx, "/v1/sessions/"+url.PathEscape(id)+"/export?format=html")
}

// --- Cache transfer ---------------------------------------------------------

// ExportCache streams the server's cache snapshot (GET /v1/cache/export).
// The caller must Close the reader; it streams directly from the response
// body, so large snapshots are never buffered in memory.
func (c *Client) ExportCache(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/cache/export", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, statusError(resp.StatusCode, readAll(resp.Body))
	}
	return resp.Body, nil
}

// ImportCache uploads a cache snapshot (POST /v1/cache/import), streaming
// from r. Never retried: the stream is consumed on the first attempt.
func (c *Client) ImportCache(ctx context.Context, r io.Reader) (*api.CacheImportResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/cache/import", r)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out api.CacheImportResponse
	if err := decodeStatus(resp.StatusCode, readAll(resp.Body), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Lifecycle and observability --------------------------------------------

// Stats fetches the server's /v1/stats.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var resp api.StatsResponse
	if err := c.getJSON(ctx, "/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FleetStats fetches /v1/stats from a router, including the per-replica
// breakdown (a plain replica answers too — Fleet is then empty).
func (c *Client) FleetStats(ctx context.Context) (*api.FleetStatsResponse, error) {
	var resp api.FleetStatsResponse
	if err := c.getJSON(ctx, "/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Drain begins graceful drain (POST /v1/drain, idempotent).
func (c *Client) Drain(ctx context.Context) (*api.DrainResponse, error) {
	var resp api.DrainResponse
	if err := c.postJSON(ctx, "/v1/drain", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthy reports liveness (GET /healthz): true on 200. An unreachable
// server returns the transport error.
func (c *Client) Healthy(ctx context.Context) (bool, error) {
	return c.check(ctx, "/healthz")
}

// Ready reports readiness (GET /readyz): true on 200, false (no error) on
// a 503 from a live-but-unready server.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	return c.check(ctx, "/readyz")
}

func (c *Client) check(ctx context.Context, path string) (bool, error) {
	status, _, err := c.Get(ctx, path)
	if err != nil {
		return false, err
	}
	return status == http.StatusOK, nil
}

// --- Fleet management (router endpoints) ------------------------------------

// Fleet fetches a router's fleet status (GET /v1/fleet).
func (c *Client) Fleet(ctx context.Context) (*api.FleetResponse, error) {
	var resp api.FleetResponse
	if err := c.getJSON(ctx, "/v1/fleet", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FleetJoin adds a replica to a router's fleet (POST /v1/fleet/join),
// warm-priming it from a donor unless req.Cold.
func (c *Client) FleetJoin(ctx context.Context, req *api.FleetJoinRequest) (*api.FleetJoinResponse, error) {
	var resp api.FleetJoinResponse
	if err := c.postJSON(ctx, "/v1/fleet/join", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FleetLeave removes a replica from a router's fleet with warm handoff
// (POST /v1/fleet/leave).
func (c *Client) FleetLeave(ctx context.Context, req *api.FleetLeaveRequest) (*api.FleetLeaveResponse, error) {
	var resp api.FleetLeaveResponse
	if err := c.postJSON(ctx, "/v1/fleet/leave", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// --- Raw helpers ------------------------------------------------------------
//
// The raw helpers return (status, body) without turning non-2xx into
// errors, so tests that assert on failure statuses and exact body bytes can
// ride the client's connection handling without fighting its typing.

// PostJSON posts raw JSON bytes to path (relative to BaseURL) and returns
// the status and body. Connection-level failures are retried per Retries.
func (c *Client) PostJSON(ctx context.Context, path string, body []byte) (int, []byte, error) {
	return c.do(ctx, http.MethodPost, path, body, "application/json", "")
}

// Get fetches path (relative to BaseURL) and returns the status and body.
// Connection-level failures are retried per Retries.
func (c *Client) Get(ctx context.Context, path string) (int, []byte, error) {
	return c.do(ctx, http.MethodGet, path, nil, "", "")
}

// --- Internals --------------------------------------------------------------

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	switch {
	case c.Retries < 0:
		return 1
	case c.Retries == 0:
		return 3
	default:
		return c.Retries + 1
	}
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// retryable reports that err proves the request never reached a server: a
// dial-phase failure (connection refused, no route, unknown host). A
// mid-request failure is not retryable — the server may have acted on it.
func retryable(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// do issues one request with bounded dial-failure retry, buffering the
// response body. accept, when non-empty, sets the Accept header.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType, accept string) (int, []byte, error) {
	var lastErr error
	delay := c.backoff()
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0, nil, ctx.Err()
			}
			delay *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			if retryable(err) && ctx.Err() == nil {
				continue
			}
			return 0, nil, err
		}
		data := readAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, data, nil
	}
	return 0, nil, lastErr
}

// postJSON marshals req, posts it, and decodes a 2xx response into out
// (non-2xx becomes a *StatusError).
func (c *Client) postJSON(ctx context.Context, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	status, data, err := c.PostJSON(ctx, path, body)
	if err != nil {
		return err
	}
	return decodeStatus(status, data, out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	status, data, err := c.Get(ctx, path)
	if err != nil {
		return err
	}
	return decodeStatus(status, data, out)
}

func (c *Client) getBytes(ctx context.Context, path string) ([]byte, error) {
	status, data, err := c.Get(ctx, path)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, statusError(status, data)
	}
	return data, nil
}

// decodeStatus decodes a 2xx body into out, or maps a non-2xx to
// *StatusError.
func decodeStatus(status int, body []byte, out any) error {
	if status < 200 || status > 299 {
		return statusError(status, body)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("decoding %d response: %w", status, err)
	}
	return nil
}

func statusError(status int, body []byte) *StatusError {
	var eb api.ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		return &StatusError{Code: status, Message: eb.Error}
	}
	return &StatusError{Code: status, Message: strings.TrimSpace(string(body))}
}

func readAll(r io.Reader) []byte {
	data, _ := io.ReadAll(r)
	return data
}

// stream posts req to an SSE endpoint and decodes the event stream. Never
// retried past the first byte received: a broken stream means the search
// already ran.
func (c *Client) stream(ctx context.Context, path string, req any, on func(StreamEvent)) (*api.GenerateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	delay := c.backoff()
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			delay *= 2
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Accept", "text/event-stream")
		resp, err := c.httpClient().Do(hreq)
		if err != nil {
			lastErr = err
			if retryable(err) && ctx.Err() == nil {
				continue
			}
			return nil, err
		}
		out, err := decodeStream(resp, on)
		resp.Body.Close()
		return out, err
	}
	return nil, lastErr
}

// decodeStream walks the SSE frames of resp. A non-SSE response is an
// ordinary status/body (pre-stream validation failures arrive as plain
// JSON errors even on streaming endpoints).
func decodeStream(resp *http.Response, on func(StreamEvent)) (*api.GenerateResponse, error) {
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		data := readAll(resp.Body)
		var out api.GenerateResponse
		if err := decodeStatus(resp.StatusCode, data, &out); err != nil {
			return nil, err
		}
		return &out, nil
	}
	var result *api.GenerateResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // result frames carry whole interfaces
	var name string
	var data bytes.Buffer
	flush := func() error {
		if name == "" && data.Len() == 0 {
			return nil
		}
		ev := StreamEvent{Name: name, Data: json.RawMessage(bytes.Clone(data.Bytes()))}
		name = ""
		data.Reset()
		if on != nil {
			on(ev)
		}
		switch ev.Name {
		case api.EventError:
			var eb api.ErrorBody
			if json.Unmarshal(ev.Data, &eb) == nil && eb.Error != "" {
				return errors.New(eb.Error)
			}
			return fmt.Errorf("stream error event: %s", ev.Data)
		case api.EventResult:
			var out api.GenerateResponse
			if err := json.Unmarshal(ev.Data, &out); err != nil {
				return fmt.Errorf("decoding result event: %w", err)
			}
			result = &out
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading event stream: %w", err)
	}
	if err := flush(); err != nil { // stream ended without a trailing blank line
		return nil, err
	}
	if result == nil {
		return nil, errors.New("event stream ended without a result event")
	}
	return result, nil
}
