// Package api is the single source of truth for the v1 HTTP wire contract
// of the mctsui serving stack. Every JSON request and response body — and
// every SSE event payload — exchanged between a client and an mctsuid
// replica, or between the mctsrouter fleet router and its replicas, is
// defined here and nowhere else. internal/server marshals these types,
// internal/api/client decodes them, internal/router forwards and aggregates
// them, and internal/load replays traffic built from them; a field added
// here is visible to all four at once, and a field added anywhere else is a
// contract violation.
//
// The contract is versioned by path prefix (/v1/...). Additive changes
// (new optional fields, new endpoints) are compatible; renaming or removing
// a field is a breaking change and would move the surface to /v2.
//
// Endpoint map (server-side handlers in internal/server, fleet-side in
// internal/router):
//
//	POST /v1/generate               GenerateRequest  -> GenerateResponse | SSE
//	POST /v1/sessions/{id}/queries  SessionQueriesRequest -> GenerateResponse | SSE
//	POST /v1/sessions/{id}/interact InteractRequest  -> InteractResponse
//	POST /v1/sessions/{id}/import   codec JSON       -> GenerateResponse
//	GET  /v1/sessions/{id}/export   -> codec JSON or HTML page
//	GET  /v1/cache/export           -> binary cache snapshot
//	POST /v1/cache/import           binary snapshot  -> CacheImportResponse
//	POST /v1/drain                  -> DrainResponse
//	GET  /v1/stats                  -> StatsResponse (router: FleetStatsResponse)
//	GET  /healthz                   -> HealthResponse (liveness: 200 while the
//	                                   process runs, draining or not)
//	GET  /readyz                    -> HealthResponse (readiness: 503 while
//	                                   draining or before warm boot completes)
//
// Router-only fleet management surface:
//
//	GET  /v1/fleet        -> FleetResponse
//	POST /v1/fleet/join   FleetJoinRequest  -> FleetJoinResponse
//	POST /v1/fleet/leave  FleetLeaveRequest -> FleetLeaveResponse
//
// Every non-2xx response carries an ErrorBody.
package api

import (
	"encoding/json"
	"math"
)

// --- Shared search parameters ----------------------------------------------

// Size is a width/height pair (screen constraint, interface bounds).
type Size struct {
	// W is the width in character cells.
	W int `json:"w"`
	// H is the height in character cells.
	H int `json:"h"`
}

// SearchParams are the per-request search knobs shared by /v1/generate and
// /v1/sessions/{id}/queries.
type SearchParams struct {
	// Iterations bounds the search (engine default when 0 and no budget).
	Iterations int `json:"iterations,omitempty"`
	// BudgetMS bounds wall-clock search time in milliseconds, clamped to
	// the server's MaxBudget. The search is anytime: hitting the budget —
	// or the daemon draining — returns the best interface found so far.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Strategy is a StrategyByName spec: "mcts", "beam[:W]", "greedy",
	// "random[:N]", "exhaustive[:M]".
	Strategy string `json:"strategy,omitempty"`
	// Workers runs root-parallel searches, clamped to the server's
	// MaxWorkers.
	Workers int `json:"workers,omitempty"`
	// TreeWorkers runs each MCTS search tree-parallel with that many
	// goroutines sharing one tree (virtual-loss diversification). Admission
	// control caps the request's total goroutine fan-out: workers ×
	// tree_workers never exceeds MaxWorkers. Requests with tree_workers > 1
	// trade the byte-identical-response determinism contract for speed.
	TreeWorkers int `json:"tree_workers,omitempty"`
	// Seed makes the response deterministic (engine default when 0).
	Seed int64 `json:"seed,omitempty"`
	// Screen is the output constraint (wide screen when omitted).
	Screen *Size `json:"screen,omitempty"`
}

// --- Generation -------------------------------------------------------------

// GenerateRequest is the /v1/generate body.
type GenerateRequest struct {
	SearchParams
	// Queries is the SQL query log, one statement per entry.
	Queries []string `json:"queries"`
	// Stream switches the response to Server-Sent Events: "progress"
	// events with best-so-far snapshots, then one "result" (or "error")
	// event. Also enabled by "Accept: text/event-stream".
	Stream bool `json:"stream,omitempty"`
}

// SessionQueriesRequest is the /v1/sessions/{id}/queries body.
type SessionQueriesRequest struct {
	SearchParams
	// Queries are appended to the session's stored log; the interface is
	// regenerated over the whole log, warm-started from the session's
	// previous interface. An existing session accepts an empty append (a
	// pure re-generation, e.g. with a bigger budget); a new session needs
	// at least one query.
	Queries []string `json:"queries"`
	// Stream switches to SSE progress streaming, as in /v1/generate.
	Stream bool `json:"stream,omitempty"`
}

// SearchStats is the deterministic subset of the engine's search
// diagnostics (wall-clock fields are deliberately excluded so identical
// requests produce byte-identical responses).
type SearchStats struct {
	// Strategy is the strategy that produced the interface.
	Strategy string `json:"strategy"`
	// Iterations is the number of completed search iterations.
	Iterations int `json:"iterations"`
	// Evals is the number of state evaluations the search performed.
	Evals int `json:"evals"`
	// Workers is the root-parallel worker count the search ran with.
	Workers int `json:"workers"`
	// TreeWorkers is the tree-parallel goroutine count per search tree.
	TreeWorkers int `json:"tree_workers"`
	// Interrupted reports that the search hit its budget, the request
	// context ended, or the daemon drained — the result is best-so-far.
	Interrupted bool `json:"interrupted"`
	// WarmStarted reports that the search was seeded from the session's
	// previous interface.
	WarmStarted bool `json:"warm_started"`
	// ReRooted reports that this search reused the session's previous MCTS
	// tree, re-rooted at its best state (sequential session appends only).
	ReRooted bool `json:"re_rooted"`
}

// GenerateResponse is the result of a generation (one-shot or session).
type GenerateResponse struct {
	// Session is the session id (session endpoints only).
	Session string `json:"session,omitempty"`
	// Created reports that the session request found no stored interface
	// and started fresh — the signal that an append did *not* extend
	// previous state (e.g. the session had idled out of the LRU, or its
	// replica was lost and the fleet router re-placed it).
	Created bool `json:"created,omitempty"`
	// QueryCount is the total queries in the (session) log after this
	// request.
	QueryCount int `json:"query_count"`
	// Cost is the interface's total cost under the paper's model
	// (-1 when no valid interface was found; +Inf is not JSON).
	Cost float64 `json:"cost"`
	// M is the manipulation-cost component of Cost.
	M float64 `json:"m"`
	// U is the unfamiliarity-cost component of Cost.
	U float64 `json:"u"`
	// Valid reports whether a legal interface was found at all.
	Valid bool `json:"valid"`
	// Widgets is the widget count of the interface.
	Widgets int `json:"widgets"`
	// Bounds is the rendered interface's bounding box.
	Bounds Size `json:"bounds"`
	// ASCII is the layout sketch (the paper's figure style).
	ASCII string `json:"ascii"`
	// Interface is the persisted form (codec JSON) — the exact bytes
	// /v1/sessions/{id}/import accepts.
	Interface json.RawMessage `json:"interface"`
	// Search carries the deterministic search diagnostics.
	Search SearchStats `json:"search"`
}

// --- Interaction ------------------------------------------------------------

// Interact op kinds (InteractRequest.Op).
const (
	// OpSet sets a widget's value.
	OpSet = "set"
	// OpSetInstance sets a value inside an adder instance.
	OpSetInstance = "set_instance"
	// OpLoadQuery sets every widget so the current query equals Query.
	OpLoadQuery = "load_query"
	// OpGet is a read-only snapshot.
	OpGet = "get"
)

// InteractRequest is the /v1/sessions/{id}/interact body.
type InteractRequest struct {
	// Op is one of the Op* interact constants ("" means OpGet).
	Op string `json:"op"`
	// Widget is the widget index for set/set_instance.
	Widget int `json:"widget,omitempty"`
	// Value is the option index (choice), 0/1 (toggle), or instance count
	// (adder).
	Value int `json:"value,omitempty"`
	// Instance addresses the enclosing adder instances, outermost first,
	// for set_instance.
	Instance []int `json:"instance,omitempty"`
	// Query is the SQL to load for load_query.
	Query string `json:"query,omitempty"`
}

// WidgetState is one widget's display state.
type WidgetState struct {
	// Index is the widget's position in the interface.
	Index int `json:"index"`
	// Type is the widget kind (choice, toggle, adder, ...).
	Type string `json:"type"`
	// Title is the widget caption.
	Title string `json:"title"`
	// Options are the selectable values (choice widgets).
	Options []string `json:"options,omitempty"`
	// Value is the current value, rendered.
	Value string `json:"value"`
}

// InteractResponse reports the session's widget state and current query
// after the operation.
type InteractResponse struct {
	// Session is the session id.
	Session string `json:"session"`
	// SQL is the query the current widget values express.
	SQL string `json:"sql"`
	// Widgets is the full widget state after the op.
	Widgets []WidgetState `json:"widgets"`
}

// --- Cache transfer ---------------------------------------------------------

// CacheImportResponse is the /v1/cache/import success body.
type CacheImportResponse struct {
	// Entries is the number of snapshot entries merged into the cache.
	Entries int64 `json:"entries"`
}

// --- Observability ----------------------------------------------------------

// CacheStats is the /v1/stats cache section: the shared transposition
// cache's counters plus its occupancy ratio (entries/capacity) — the number
// the load harness plots as the cache fill/eviction curve.
type CacheStats struct {
	// Hits counts cache lookups answered from a stored entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that fell through to a fresh evaluation.
	Misses int64 `json:"misses"`
	// Entries is the current resident entry count.
	Entries int64 `json:"entries"`
	// Evictions counts CLOCK victims discarded to make room.
	Evictions int64 `json:"evictions"`
	// Capacity is the configured entry bound.
	Capacity int64 `json:"capacity"`
	// HitRate is Hits / (Hits + Misses).
	HitRate float64 `json:"hit_rate"`
	// Occupancy is Entries / Capacity.
	Occupancy float64 `json:"occupancy"`
}

// AdmissionStats is the /v1/stats admission section: cumulative per-outcome
// totals for every request that passed through the admission gate, plus the
// total time requests spent waiting for a search slot. Served counts
// admissions (a slot was granted); overflow/timeout/draining are the
// refusals aggregated in the top-level rejected counter; client_gone counts
// clients that disconnected while queued (not an admission refusal).
type AdmissionStats struct {
	// Served counts requests granted a search slot.
	Served int64 `json:"served"`
	// Overflow429 counts immediate refusals with a full queue.
	Overflow429 int64 `json:"overflow_429"`
	// QueueTimeout503 counts refusals after QueueWait expired slotless.
	QueueTimeout503 int64 `json:"queue_timeout_503"`
	// Draining503 counts refusals because the daemon was draining.
	Draining503 int64 `json:"draining_503"`
	// ClientGone counts clients that disconnected while queued.
	ClientGone int64 `json:"client_gone"`
	// QueueWaitMS is the cumulative slot-wait time in milliseconds.
	QueueWaitMS float64 `json:"queue_wait_total_ms"`
}

// ReplicaStats is the /v1/stats replica section: the daemon's fleet
// identity and lifecycle state — what a router needs to place sessions and
// decide routability.
type ReplicaStats struct {
	// ID is the operator-assigned replica identity (-replica-id; may be
	// empty on single-node deployments).
	ID string `json:"id,omitempty"`
	// Ready reports the /readyz verdict: warm boot complete and not
	// draining.
	Ready bool `json:"ready"`
	// Draining reports that graceful shutdown has begun.
	Draining bool `json:"draining"`
	// Sessions is the resident session count (same value as the top-level
	// gauge, repeated here so the section is self-contained).
	Sessions int `json:"sessions"`
}

// StatsResponse is the /v1/stats body of one replica.
type StatsResponse struct {
	// Cache is the shared transposition cache's counters.
	Cache CacheStats `json:"cache"`
	// Admission is the per-outcome admission ledger.
	Admission AdmissionStats `json:"admission"`
	// Replica is the daemon's fleet identity and lifecycle state.
	Replica ReplicaStats `json:"replica"`
	// Sessions is the resident session count.
	Sessions int `json:"sessions"`
	// Inflight is the number of searches currently holding a slot.
	Inflight int `json:"inflight"`
	// Queued is the number of requests waiting for a slot (excludes
	// inflight).
	Queued int64 `json:"queued"`
	// Requests is the cumulative admitted-search total.
	Requests int64 `json:"requests"`
	// Rejected is the cumulative admission-refusal total.
	Rejected int64 `json:"rejected"`
	// Draining reports that graceful shutdown has begun.
	Draining bool `json:"draining"`
}

// HealthResponse is the /healthz and /readyz body.
type HealthResponse struct {
	// Status is "ok" (healthz), "ready", or the not-ready reason
	// ("draining", "warming").
	Status string `json:"status"`
	// Draining reports that graceful shutdown has begun.
	Draining bool `json:"draining,omitempty"`
	// Ready reports the readiness verdict (meaningful on /readyz).
	Ready bool `json:"ready"`
}

// DrainResponse is the POST /v1/drain body: the endpoint is idempotent, so
// the response just confirms the state.
type DrainResponse struct {
	// Draining is always true after a successful drain request.
	Draining bool `json:"draining"`
}

// ErrorBody is every non-2xx response body.
type ErrorBody struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// --- SSE events -------------------------------------------------------------

// SSE event names emitted by the streaming generate endpoints.
const (
	// EventProgress frames carry a ProgressEvent snapshot.
	EventProgress = "progress"
	// EventResult is the final frame of a successful stream: a
	// GenerateResponse.
	EventResult = "result"
	// EventError is the final frame of a failed stream: an ErrorBody.
	EventError = "error"
)

// ProgressEvent is one SSE "progress" frame: a best-so-far snapshot of the
// running search (the same data cmd/mctsui -progress prints). BestCost is
// -1 until a valid interface has been seen.
type ProgressEvent struct {
	// Strategy is the running strategy's name.
	Strategy string `json:"strategy"`
	// Worker is the root-parallel worker reporting (0 when sequential).
	Worker int `json:"worker"`
	// Iterations is the iterations completed so far.
	Iterations int `json:"iterations"`
	// States is the number of distinct states expanded so far.
	States int `json:"states"`
	// Evals is the number of evaluations performed so far.
	Evals int `json:"evals"`
	// BestCost is the best valid interface cost seen (-1 before the first).
	BestCost float64 `json:"best_cost"`
	// ElapsedMS is wall-clock search time so far in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// --- Fleet management (mctsrouter) ------------------------------------------

// Replica lifecycle states as the router reports them (FleetReplica.State).
const (
	// StateReady: probed healthy, in the ring, receiving traffic.
	StateReady = "ready"
	// StateUnready: reachable but /readyz refuses (warming up); out of the
	// ring until it turns ready.
	StateUnready = "unready"
	// StateDraining: planned removal in progress; ejected from the ring,
	// sessions re-placed.
	StateDraining = "draining"
	// StateDead: probes (or a forwarded request) failed; ejected from the
	// ring until probes succeed again.
	StateDead = "dead"
)

// FleetReplica is one replica's status in the router's /v1/fleet listing.
type FleetReplica struct {
	// URL is the replica's base URL — its identity in the fleet.
	URL string `json:"url"`
	// ID is the replica's self-reported -replica-id (from its stats).
	ID string `json:"id,omitempty"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Sessions is the replica's resident session count at the last probe.
	Sessions int `json:"sessions"`
	// CacheEntries is the replica's cache occupancy at the last probe —
	// the warmth signal join priming uses to pick a donor.
	CacheEntries int64 `json:"cache_entries"`
	// Queued and Inflight are the replica's admission gauges at the last
	// probe — the load signal the least-loaded policy routes on.
	Queued   int64 `json:"queued"`
	Inflight int   `json:"inflight"`
	// LastError is the most recent probe or forwarding failure ("" when
	// healthy).
	LastError string `json:"last_error,omitempty"`
}

// FleetResponse is the router's GET /v1/fleet body.
type FleetResponse struct {
	// Policy is the active routing policy name.
	Policy string `json:"policy"`
	// Replicas lists every fleet member, sorted by URL.
	Replicas []FleetReplica `json:"replicas"`
	// ReadyReplicas counts members currently in the ring.
	ReadyReplicas int `json:"ready_replicas"`
	// StickySessions counts sessions with a live placement.
	StickySessions int `json:"sticky_sessions"`
}

// FleetStatsResponse is the router's GET /v1/stats body: the fleet-wide
// aggregate in the same shape a single replica reports — counters summed,
// ratios recomputed — so a harness pointed at the router scrapes it exactly
// like a daemon, plus the per-replica breakdown.
type FleetStatsResponse struct {
	StatsResponse
	// Fleet is the per-replica breakdown behind the aggregate.
	Fleet []FleetReplica `json:"fleet"`
}

// FleetJoinRequest is the router's POST /v1/fleet/join body: add a replica
// to the fleet, warm-priming it first.
type FleetJoinRequest struct {
	// URL is the joining replica's base URL.
	URL string `json:"url"`
	// Donor optionally names the replica whose cache primes the joiner;
	// empty picks the warmest ready replica (most cache entries).
	Donor string `json:"donor,omitempty"`
	// Cold skips priming: the replica joins with whatever cache it has.
	Cold bool `json:"cold,omitempty"`
}

// FleetJoinResponse reports a completed join.
type FleetJoinResponse struct {
	// URL is the joined replica.
	URL string `json:"url"`
	// Primed reports that a donor snapshot was imported before joining.
	Primed bool `json:"primed"`
	// Donor is the replica whose cache primed the joiner ("" when cold).
	Donor string `json:"donor,omitempty"`
	// Entries is the number of cache entries the joiner merged.
	Entries int64 `json:"entries"`
}

// FleetLeaveRequest is the router's POST /v1/fleet/leave body: planned
// removal with warm handoff — the replica is ejected from the ring, drained,
// and its cache exported into the remaining replicas before it is dropped.
type FleetLeaveRequest struct {
	// URL is the departing replica's base URL.
	URL string `json:"url"`
	// Cold skips the warm handoff: eject and drain without shipping the
	// cache.
	Cold bool `json:"cold,omitempty"`
}

// FleetLeaveResponse reports a completed leave.
type FleetLeaveResponse struct {
	// URL is the departed replica.
	URL string `json:"url"`
	// Drained reports that the replica acknowledged the drain request.
	Drained bool `json:"drained"`
	// Entries is the exported snapshot's merged entry count on the first
	// recipient (0 on a cold leave).
	Entries int64 `json:"entries"`
	// Recipients lists the replicas the departing cache was imported into,
	// sorted by URL.
	Recipients []string `json:"recipients,omitempty"`
}

// --- Helpers ----------------------------------------------------------------

// JSONCost makes a cost JSON-representable (+Inf and NaN are not): the wire
// convention is -1 for "no valid interface".
func JSONCost(c float64) float64 {
	if math.IsInf(c, 1) || math.IsNaN(c) {
		return -1
	}
	return c
}
