// Package layout implements the widget tree (paper Figure 3): a hierarchical
// arrangement of layout widgets (vertical, horizontal, adder) and interaction
// widgets (dropdown, radio, toggle, ...). It computes bounding boxes for the
// screen-size constraint and renders trees as ASCII art or HTML.
package layout

import (
	"fmt"

	"repro/internal/difftree"
	"repro/internal/widgets"
)

// Screen is the output screen constraint in layout units.
type Screen struct {
	W, H int
}

// Screen presets mirroring Figure 6(a) (wide) and 6(b) (narrow).
var (
	Wide   = Screen{W: 1200, H: 800}
	Narrow = Screen{W: 420, H: 800}
)

func (s Screen) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// Node is one widget-tree node. Interaction widgets are leaves except Tabs
// (one child panel per alternative) and Adder (the repeated instance
// template as its only child).
type Node struct {
	Type     widgets.Type
	Domain   widgets.Domain
	Title    string
	Choice   *difftree.Node // difftree choice node this widget controls; nil for layout nodes
	Children []*Node
}

// NewWidget constructs an interaction widget leaf bound to a choice node.
func NewWidget(t widgets.Type, d widgets.Domain, choice *difftree.Node) *Node {
	return &Node{Type: t, Domain: d, Title: d.Title, Choice: choice}
}

// NewBox constructs a layout container.
func NewBox(t widgets.Type, children ...*Node) *Node {
	return &Node{Type: t, Children: children}
}

// Walk visits the tree in pre-order.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Widgets returns all interaction-widget nodes in pre-order (Tabs and Adder
// included: they both expose a choice).
func (n *Node) Widgets() []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Choice != nil {
			out = append(out, x)
		}
		return true
	})
	return out
}

// CountWidgets counts interaction widgets.
func (n *Node) CountWidgets() int { return len(n.Widgets()) }

// ByChoice indexes the tree's widgets by the difftree choice node they
// control.
func (n *Node) ByChoice() map[*difftree.Node]*Node {
	m := make(map[*difftree.Node]*Node)
	n.Walk(func(x *Node) bool {
		if x.Choice != nil {
			m[x.Choice] = x
		}
		return true
	})
	return m
}

// Clone deep-copies the tree (Choice pointers are shared, they identify
// difftree nodes).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Type: n.Type, Domain: n.Domain, Title: n.Title, Choice: n.Choice}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Bounds computes the node's bounding box (paper: blue boxes in Figure 2).
func (n *Node) Bounds() widgets.Size {
	if n == nil {
		return widgets.Size{}
	}
	switch n.Type {
	case widgets.VBox:
		var w, h int
		for i, c := range n.Children {
			b := c.Bounds()
			if b.W > w {
				w = b.W
			}
			h += b.H
			if i > 0 {
				h += widgets.Spacing
			}
		}
		return widgets.Size{W: w + 2*widgets.Pad, H: h + 2*widgets.Pad}

	case widgets.HBox:
		var w, h int
		for i, c := range n.Children {
			b := c.Bounds()
			if b.H > h {
				h = b.H
			}
			w += b.W
			if i > 0 {
				w += widgets.Spacing
			}
		}
		return widgets.Size{W: w + 2*widgets.Pad, H: h + 2*widgets.Pad}

	case widgets.Adder:
		// The instance template plus an add/remove button row; we budget
		// room for two visible instances so repeated clauses fit.
		var child widgets.Size
		if len(n.Children) > 0 {
			child = n.Children[0].Bounds()
		}
		return widgets.Size{
			W: max(child.W, 96) + 2*widgets.Pad,
			H: 2*child.H + widgets.RowH + widgets.Spacing + 2*widgets.Pad,
		}

	case widgets.Tabs:
		bar := widgets.Measure(widgets.Tabs, n.Domain)
		var panel widgets.Size
		for _, c := range n.Children {
			b := c.Bounds()
			if b.W > panel.W {
				panel.W = b.W
			}
			if b.H > panel.H {
				panel.H = b.H
			}
		}
		return widgets.Size{
			W: max(bar.W, panel.W) + 2*widgets.Pad,
			H: bar.H + panel.H + widgets.Spacing + 2*widgets.Pad,
		}

	default:
		return widgets.Measure(n.Type, n.Domain)
	}
}

// Fits reports whether the tree's bounding box fits the screen.
func (n *Node) Fits(s Screen) bool {
	b := n.Bounds()
	return b.W <= s.W && b.H <= s.H
}
