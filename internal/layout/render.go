package layout

import (
	"fmt"
	"html"
	"strings"

	"repro/internal/widgets"
)

// RenderASCII draws the widget tree as an indented outline with bounding
// boxes; the textual analogue of the paper's Figure 6 screenshots.
func RenderASCII(n *Node) string {
	var b strings.Builder
	renderASCII(&b, n, "", true, true)
	return b.String()
}

func renderASCII(b *strings.Builder, n *Node, prefix string, isLast, isRoot bool) {
	if n == nil {
		return
	}
	connector := "├─ "
	childPrefix := prefix + "│  "
	if isLast {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	if isRoot {
		connector = ""
		childPrefix = ""
	}
	bounds := n.Bounds()
	b.WriteString(prefix + connector + describe(n))
	fmt.Fprintf(b, "  (%dx%d)\n", bounds.W, bounds.H)
	for i, c := range n.Children {
		renderASCII(b, c, childPrefix, i == len(n.Children)-1, false)
	}
}

func describe(n *Node) string {
	switch n.Type {
	case widgets.VBox:
		return "[vertical]"
	case widgets.HBox:
		return "[horizontal]"
	case widgets.Adder:
		return fmt.Sprintf("[adder] %q", n.Title)
	case widgets.Tabs:
		return fmt.Sprintf("tabs %q {%s}", n.Title, strings.Join(n.Domain.Options, " | "))
	case widgets.Toggle, widgets.Checkbox:
		return fmt.Sprintf("%s %q", n.Type, n.Title)
	default:
		opts := n.Domain.Options
		const maxShown = 6
		shown := opts
		suffix := ""
		if len(opts) > maxShown {
			shown = opts[:maxShown]
			suffix = fmt.Sprintf(" … +%d", len(opts)-maxShown)
		}
		return fmt.Sprintf("%s %q {%s%s}", n.Type, n.Title, strings.Join(shown, " | "), suffix)
	}
}

// RenderHTML emits a standalone HTML fragment for the widget tree, giving
// the examples a browser-viewable interface like the paper's screenshots.
func RenderHTML(n *Node) string {
	var b strings.Builder
	b.WriteString("<div class=\"generated-interface\">\n")
	renderHTML(&b, n, 1)
	b.WriteString("</div>\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func renderHTML(b *strings.Builder, n *Node, depth int) {
	if n == nil {
		return
	}
	esc := html.EscapeString
	switch n.Type {
	case widgets.VBox, widgets.HBox:
		dir := "column"
		if n.Type == widgets.HBox {
			dir = "row"
		}
		indent(b, depth)
		fmt.Fprintf(b, "<div class=\"box\" style=\"display:flex;flex-direction:%s;gap:6px;padding:8px;border:1px solid #88c\">\n", dir)
		for _, c := range n.Children {
			renderHTML(b, c, depth+1)
		}
		indent(b, depth)
		b.WriteString("</div>\n")

	case widgets.Adder:
		indent(b, depth)
		fmt.Fprintf(b, "<fieldset class=\"adder\"><legend>%s</legend>\n", esc(n.Title))
		for _, c := range n.Children {
			renderHTML(b, c, depth+1)
		}
		indent(b, depth+1)
		b.WriteString("<button type=\"button\">+ add</button>\n")
		indent(b, depth)
		b.WriteString("</fieldset>\n")

	case widgets.Tabs:
		indent(b, depth)
		fmt.Fprintf(b, "<div class=\"tabs\" role=\"tablist\" aria-label=\"%s\">\n", esc(n.Title))
		for _, o := range n.Domain.Options {
			indent(b, depth+1)
			fmt.Fprintf(b, "<button role=\"tab\">%s</button>\n", esc(o))
		}
		for _, c := range n.Children {
			renderHTML(b, c, depth+1)
		}
		indent(b, depth)
		b.WriteString("</div>\n")

	case widgets.Dropdown:
		indent(b, depth)
		fmt.Fprintf(b, "<label>%s <select>", esc(n.Title))
		for _, o := range n.Domain.Options {
			fmt.Fprintf(b, "<option>%s</option>", esc(o))
		}
		b.WriteString("</select></label>\n")

	case widgets.Radio:
		indent(b, depth)
		fmt.Fprintf(b, "<fieldset><legend>%s</legend>", esc(n.Title))
		for _, o := range n.Domain.Options {
			fmt.Fprintf(b, "<label><input type=\"radio\" name=\"%s\">%s</label>", esc(n.Title), esc(o))
		}
		b.WriteString("</fieldset>\n")

	case widgets.Buttons:
		indent(b, depth)
		fmt.Fprintf(b, "<div class=\"buttons\" aria-label=\"%s\">", esc(n.Title))
		for _, o := range n.Domain.Options {
			fmt.Fprintf(b, "<button type=\"button\">%s</button>", esc(o))
		}
		b.WriteString("</div>\n")

	case widgets.Slider, widgets.RangeSlider:
		indent(b, depth)
		fmt.Fprintf(b, "<label>%s <input type=\"range\"></label>\n", esc(n.Title))

	case widgets.Textbox:
		indent(b, depth)
		fmt.Fprintf(b, "<label>%s <input type=\"text\"></label>\n", esc(n.Title))

	case widgets.Toggle, widgets.Checkbox:
		indent(b, depth)
		fmt.Fprintf(b, "<label><input type=\"checkbox\">%s</label>\n", esc(n.Title))

	case widgets.Label:
		indent(b, depth)
		fmt.Fprintf(b, "<span>%s</span>\n", esc(n.Title))
	}
}
