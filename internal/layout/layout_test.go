package layout

import (
	"strings"
	"testing"

	"repro/internal/difftree"
	"repro/internal/widgets"
)

func dom(opts ...string) widgets.Domain {
	return widgets.Domain{Kind: widgets.ChoiceDomain, Title: "Attr", Options: opts, Scalar: true}
}

func sampleTree() *Node {
	ch1 := difftree.NewAny(difftree.Emptyn(), difftree.Emptyn())
	ch2 := difftree.NewAny(difftree.Emptyn(), difftree.Emptyn())
	return NewBox(widgets.VBox,
		NewWidget(widgets.Radio, dom("objid", "count"), ch1),
		NewBox(widgets.HBox,
			NewWidget(widgets.Dropdown, dom("10", "100", "1000"), ch2),
			&Node{Type: widgets.Label, Title: "rows"},
		),
	)
}

func TestWalkAndWidgets(t *testing.T) {
	n := sampleTree()
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	if count != 5 {
		t.Errorf("walked %d nodes, want 5", count)
	}
	ws := n.Widgets()
	if len(ws) != 2 {
		t.Fatalf("Widgets = %d, want 2 (label has no choice)", len(ws))
	}
	if n.CountWidgets() != 2 {
		t.Error("CountWidgets wrong")
	}
	byC := n.ByChoice()
	for _, w := range ws {
		if byC[w.Choice] != w {
			t.Error("ByChoice index wrong")
		}
	}
	// Pruned walk.
	count = 0
	n.Walk(func(x *Node) bool { count++; return x.Type != widgets.HBox })
	if count != 3 {
		t.Errorf("pruned walk = %d, want 3", count)
	}
}

func TestClone(t *testing.T) {
	n := sampleTree()
	c := n.Clone()
	if c == n || c.Children[0] == n.Children[0] {
		t.Error("clone must copy nodes")
	}
	if c.Children[0].Choice != n.Children[0].Choice {
		t.Error("clone must share choice pointers")
	}
	var nilN *Node
	if nilN.Clone() != nil {
		t.Error("nil clone")
	}
}

func TestBoundsVBox(t *testing.T) {
	a := NewWidget(widgets.Dropdown, dom("aa", "bb"), nil)
	b := NewWidget(widgets.Dropdown, dom("cc", "dd"), nil)
	v := NewBox(widgets.VBox, a, b)
	av, bv := a.Bounds(), b.Bounds()
	got := v.Bounds()
	wantH := av.H + bv.H + widgets.Spacing + 2*widgets.Pad
	if got.H != wantH {
		t.Errorf("VBox height = %d, want %d", got.H, wantH)
	}
	if got.W != av.W+2*widgets.Pad {
		t.Errorf("VBox width = %d", got.W)
	}
}

func TestBoundsHBox(t *testing.T) {
	a := NewWidget(widgets.Dropdown, dom("aa", "bb"), nil)
	b := NewWidget(widgets.Toggle, widgets.Domain{Kind: widgets.ToggleDomain, Title: "Where"}, nil)
	h := NewBox(widgets.HBox, a, b)
	got := h.Bounds()
	aw, bw := a.Bounds(), b.Bounds()
	if got.W != aw.W+bw.W+widgets.Spacing+2*widgets.Pad {
		t.Errorf("HBox width = %d", got.W)
	}
	if got.H != max(aw.H, bw.H)+2*widgets.Pad {
		t.Errorf("HBox height = %d", got.H)
	}
}

func TestBoundsTabsAndAdder(t *testing.T) {
	panel := NewBox(widgets.VBox, NewWidget(widgets.Dropdown, dom("x", "y"), nil))
	tabs := &Node{Type: widgets.Tabs, Domain: dom("t1", "t2"), Title: "variant", Children: []*Node{panel}}
	tb := tabs.Bounds()
	if tb.H <= panel.Bounds().H {
		t.Error("tabs must be taller than their tallest panel")
	}
	adder := &Node{Type: widgets.Adder, Title: "Between", Domain: widgets.Domain{Kind: widgets.RepeatDomain}, Children: []*Node{panel}}
	ab := adder.Bounds()
	if ab.H <= panel.Bounds().H {
		t.Error("adder must reserve room for instances")
	}
	empty := &Node{Type: widgets.Adder, Domain: widgets.Domain{Kind: widgets.RepeatDomain}}
	if b := empty.Bounds(); b.W <= 0 || b.H <= 0 {
		t.Errorf("childless adder bounds = %v", b)
	}
	var nilNode *Node
	if (nilNode.Bounds() != widgets.Size{}) {
		t.Error("nil bounds")
	}
}

// TestNarrowScreenRejectsWideLayouts is the geometric driver of Figure 6(b):
// a wide horizontal enumeration fits a wide screen but not a narrow one,
// while the dropdown version fits both.
func TestNarrowScreenRejectsWideLayouts(t *testing.T) {
	opts := []string{"option-a", "option-b", "option-c", "option-d", "option-e", "option-f"}
	buttons := NewBox(widgets.VBox,
		NewWidget(widgets.Buttons, dom(opts...), nil),
		NewWidget(widgets.Buttons, dom(opts...), nil),
	)
	if !buttons.Fits(Wide) {
		t.Fatalf("buttons rows should fit the wide screen (%v)", buttons.Bounds())
	}
	if buttons.Fits(Narrow) {
		t.Fatalf("buttons rows must overflow the narrow screen (%v)", buttons.Bounds())
	}
	dropdowns := NewBox(widgets.VBox,
		NewWidget(widgets.Dropdown, dom(opts...), nil),
		NewWidget(widgets.Dropdown, dom(opts...), nil),
	)
	if !dropdowns.Fits(Narrow) {
		t.Fatalf("dropdown column should fit the narrow screen (%v)", dropdowns.Bounds())
	}
}

func TestScreenString(t *testing.T) {
	if Wide.String() != "1200x800" || Narrow.String() != "420x800" {
		t.Error("screen presets changed")
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII(sampleTree())
	for _, want := range []string{"[vertical]", "[horizontal]", "radio", "dropdown", "objid", "1000", "(", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	if RenderASCII(nil) != "" {
		t.Error("nil renders empty")
	}
	// Long option lists are elided.
	many := NewWidget(widgets.Dropdown, dom("a", "b", "c", "d", "e", "f", "g", "h"), nil)
	if !strings.Contains(RenderASCII(many), "+2") {
		t.Error("long domains should elide options")
	}
	// Tabs and adder describe themselves.
	tabs := &Node{Type: widgets.Tabs, Domain: dom("x", "y"), Title: "v"}
	if !strings.Contains(RenderASCII(tabs), "tabs") {
		t.Error("tabs description missing")
	}
	adder := &Node{Type: widgets.Adder, Title: "preds", Domain: widgets.Domain{Kind: widgets.RepeatDomain}}
	if !strings.Contains(RenderASCII(adder), "adder") {
		t.Error("adder description missing")
	}
}

func TestRenderHTML(t *testing.T) {
	n := NewBox(widgets.VBox,
		NewWidget(widgets.Radio, dom("objid", "count"), nil),
		NewWidget(widgets.Dropdown, dom("10", "100"), nil),
		NewWidget(widgets.Buttons, dom("a", "b"), nil),
		NewWidget(widgets.Slider, dom("1", "2"), nil),
		NewWidget(widgets.Textbox, dom("x", "y"), nil),
		NewWidget(widgets.Toggle, widgets.Domain{Kind: widgets.ToggleDomain, Title: "Where"}, nil),
		&Node{Type: widgets.Label, Title: "static <text>"},
		&Node{Type: widgets.Adder, Title: "preds", Domain: widgets.Domain{Kind: widgets.RepeatDomain},
			Children: []*Node{NewWidget(widgets.Dropdown, dom("u", "g"), nil)}},
		&Node{Type: widgets.Tabs, Domain: dom("t1", "t2"), Title: "variant",
			Children: []*Node{NewBox(widgets.VBox)}},
	)
	out := RenderHTML(n)
	for _, want := range []string{
		"<select>", "<option>10</option>", "type=\"radio\"", "<button type=\"button\">a</button>",
		"type=\"range\"", "type=\"text\"", "type=\"checkbox\"", "role=\"tab\"", "+ add",
		"generated-interface", "flex-direction:column",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Contains(out, "<text>") {
		t.Error("HTML must escape user strings")
	}
	if !strings.Contains(out, "&lt;text&gt;") {
		t.Error("escaped label missing")
	}
}
