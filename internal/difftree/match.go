package difftree

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
)

// Assignment records, for each choice node, the canonical description of the
// choices made to express one query. Two queries "use the same widget value"
// exactly when their assignments agree on that widget's choice node. A node
// visited several times (inside a Multi) accumulates one entry per instance.
type Assignment map[*Node]string

// Changed returns the choice nodes whose assignment differs between a and b,
// including nodes present in only one of them. The result is an unordered
// set: callers that depend on order must sort it themselves (cost.NewEvaluator
// sorts by pre-order position before deriving any cost term).
func (a Assignment) Changed(b Assignment) []*Node {
	var out []*Node
	//mctsvet:allow detmap -- unordered-set result by contract; the cost evaluator sorts by pre-order position before any order-dependent use
	for n, v := range a {
		if bv, ok := b[n]; !ok || bv != v {
			out = append(out, n)
		}
	}
	//mctsvet:allow detmap -- unordered-set result by contract; the cost evaluator sorts by pre-order position before any order-dependent use
	for n := range b {
		if _, ok := a[n]; !ok {
			out = append(out, n)
		}
	}
	return out
}

// matchBudget bounds backtracking work per Express call; exhausted budgets
// report inexpressibility, which is conservative (the move filter will simply
// reject the state).
const matchBudget = 1 << 20

// Expressible reports whether the difftree can generate the query. Unlike
// Express it records no trail and builds no assignment, so the common
// legality-check path allocates nothing after the matcher pool warms up.
func Expressible(root *Node, q *ast.Node) bool {
	m := acquireMatcher(false)
	ok := m.matchQuery(root, q)
	releaseMatcher(m)
	return ok
}

// ExpressibleAll reports whether every query is expressible. One pooled
// matcher (and its cons-cell arena) is reused across all queries; the
// backtracking budget is per query, matching repeated Expressible calls.
func ExpressibleAll(root *Node, qs []*ast.Node) bool {
	m := acquireMatcher(false)
	defer releaseMatcher(m)
	for _, q := range qs {
		m.budget = matchBudget
		m.chunk, m.used = 0, 0
		if !m.matchQuery(root, q) {
			return false
		}
	}
	return true
}

// Express finds choice assignments under which the difftree generates q.
// The witness is deterministic (first found in a fixed alternative order).
func Express(root *Node, q *ast.Node) (Assignment, bool) {
	m := acquireMatcher(true)
	if !m.matchQuery(root, q) {
		releaseMatcher(m)
		return nil, false
	}
	asg := make(Assignment, len(m.trail))
	for _, e := range m.trail {
		if prev, ok := asg[e.node]; ok {
			asg[e.node] = prev + "|" + e.choice
		} else {
			asg[e.node] = e.choice
		}
	}
	releaseMatcher(m)
	return asg, true
}

type trailEvent struct {
	node   *Node
	choice string
}

type matcher struct {
	trail     []trailEvent
	budget    int
	needTrail bool
	qbuf      [1]*ast.Node

	// Cons-cell arena: dlist cells live only for the duration of one match
	// (match returns bool; nothing downstream holds a cell), so they are
	// bump-allocated from reusable chunks instead of the heap.
	chunks [][]dlist
	chunk  int // index of the chunk being filled
	used   int // cells used in chunks[chunk]
}

const dlistChunkSize = 512

var matcherPool = sync.Pool{New: func() any { return &matcher{} }}

func acquireMatcher(needTrail bool) *matcher {
	m := matcherPool.Get().(*matcher)
	m.budget = matchBudget
	m.needTrail = needTrail
	m.trail = m.trail[:0]
	m.chunk, m.used = 0, 0
	return m
}

func releaseMatcher(m *matcher) {
	m.qbuf[0] = nil
	matcherPool.Put(m)
}

func (m *matcher) matchQuery(root *Node, q *ast.Node) bool {
	m.qbuf[0] = q
	return m.match(m.cons(root, nil), m.qbuf[:1])
}

func (m *matcher) mark() int     { return len(m.trail) }
func (m *matcher) undo(mark int) { m.trail = m.trail[:mark] }
func (m *matcher) record(n *Node, choice string) {
	if !m.needTrail {
		return
	}
	m.trail = append(m.trail, trailEvent{n, choice})
}

// dlist is an immutable cons list of pending difftree nodes; sharing tails
// across backtracking alternatives avoids the slice copies that would
// otherwise dominate matching time.
type dlist struct {
	head *Node
	tail *dlist
}

// cons bump-allocates a cell from the matcher's arena. Cells abandoned by
// backtracking are not reclaimed within a match (the budget bounds the
// total); the whole arena is recycled when the matcher is released.
func (m *matcher) cons(head *Node, tail *dlist) *dlist {
	for m.chunk < len(m.chunks) && m.used == len(m.chunks[m.chunk]) {
		m.chunk++
		m.used = 0
	}
	if m.chunk == len(m.chunks) {
		m.chunks = append(m.chunks, make([]dlist, dlistChunkSize))
		m.used = 0
	}
	c := &m.chunks[m.chunk][m.used]
	m.used++
	c.head = head
	c.tail = tail
	return c
}

// consChildren pushes children onto rest, preserving order.
func (m *matcher) consChildren(children []*Node, rest *dlist) *dlist {
	out := rest
	for i := len(children) - 1; i >= 0; i-- {
		out = m.cons(children[i], out)
	}
	return out
}

// match reports whether the pending difftree node list can generate exactly
// the AST node sequence as. It backtracks across Any/Opt/Multi alternatives
// and records choices on the trail.
func (m *matcher) match(ds *dlist, as []*ast.Node) bool {
	if m.budget <= 0 {
		return false
	}
	m.budget--

	if ds == nil {
		return len(as) == 0
	}
	d := ds.head
	rest := ds.tail
	if d == nil {
		return m.match(rest, as)
	}

	switch d.Kind {
	case All:
		switch d.Label {
		case ast.KindEmpty:
			return m.match(rest, as)
		case ast.KindSeq:
			return m.match(m.consChildren(d.Children, rest), as)
		default:
			if len(as) == 0 {
				return false
			}
			a := as[0]
			if a.Kind != d.Label || a.Value != d.Value {
				return false
			}
			mk := m.mark()
			if !m.match(m.consChildren(d.Children, nil), a.Children) {
				m.undo(mk)
				return false
			}
			if !m.match(rest, as[1:]) {
				m.undo(mk)
				return false
			}
			return true
		}

	case Any:
		for i, c := range d.Children {
			if !headCanMatch(c, as) {
				continue
			}
			mk := m.mark()
			m.record(d, choiceLabels.get(i))
			if m.match(m.cons(c, rest), as) {
				return true
			}
			m.undo(mk)
		}
		return false

	case Opt:
		// Try taking the child first (maximal munch), then skipping.
		mk := m.mark()
		if headCanMatch(d.Children[0], as) {
			m.record(d, "on")
			if m.match(m.cons(d.Children[0], rest), as) {
				return true
			}
			m.undo(mk)
		}
		m.record(d, "off")
		if m.match(rest, as) {
			return true
		}
		m.undo(mk)
		return false

	case Multi:
		// Take instances greedily; each instance must consume at least one
		// AST node (Multi children are validated non-nullable), so the
		// recursion terminates.
		mk := m.mark()
		if headCanMatch(d.Children[0], as) {
			m.record(d, "+")
			if m.match(m.cons(d.Children[0], m.cons(d, rest)), as) {
				return true
			}
			m.undo(mk)
		}
		m.record(d, "0")
		if m.match(rest, as) {
			return true
		}
		m.undo(mk)
		return false
	}
	return false
}

// headCanMatch is a cheap pruning check: a plain All node can only start
// matching when the next AST node agrees on kind and value. Choice nodes,
// Seq, and ∅ are never pruned here.
func headCanMatch(d *Node, as []*ast.Node) bool {
	if d.Kind != All || d.Label == ast.KindEmpty || d.Label == ast.KindSeq {
		return true
	}
	return len(as) > 0 && as[0].Kind == d.Label && as[0].Value == d.Value
}

// choiceLabels interns the decimal strings for small child indexes so the
// hot matching loop does not format integers.
var choiceLabels = func() *labelCache {
	c := &labelCache{}
	for i := range c.small {
		c.small[i] = fmt.Sprintf("%d", i)
	}
	return c
}()

type labelCache struct {
	small [64]string
}

func (c *labelCache) get(i int) string {
	if i >= 0 && i < len(c.small) {
		return c.small[i]
	}
	return fmt.Sprintf("%d", i)
}

// DescribeAssignment renders an assignment deterministically for tests and
// debugging: one "path=value" per line sorted by choice node identity string.
func DescribeAssignment(root *Node, a Assignment) string {
	type entry struct {
		path  string
		value string
	}
	var entries []entry
	WalkPath(root, func(n *Node, p Path) bool {
		if v, ok := a[n]; ok {
			entries = append(entries, entry{p.String(), v})
		}
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].path < entries[j].path })
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%s=%s\n", e.path, e.value)
	}
	return b.String()
}
