package difftree

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// paperQueries returns the three queries of paper Figure 1.
func paperQueries(t testing.TB) []*ast.Node {
	t.Helper()
	srcs := []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales WHERE cty = EUR",
		"SELECT Costs FROM sales",
	}
	qs := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		qs[i] = sqlparser.MustParse(s)
	}
	return qs
}

// figure4Tree hand-builds the difftree of paper Figure 4:
// ALL(Select)[ ANY(Project) From/Table OPT(Where) ] where the Where subtree
// contains ANY(StrExpr).
func figure4Tree() *Node {
	project := NewAll(ast.KindProject, "",
		NewAny(
			NewAll(ast.KindColExpr, "Sales"),
			NewAll(ast.KindColExpr, "Costs"),
		))
	from := NewAll(ast.KindFrom, "", NewAll(ast.KindTable, "sales"))
	where := NewOpt(NewAll(ast.KindWhere, "",
		NewAll(ast.KindBiExpr, "=",
			NewAll(ast.KindColExpr, "cty"),
			NewAny(
				NewAll(ast.KindStrExpr, "USA"),
				NewAll(ast.KindStrExpr, "EUR"),
			))))
	return NewAll(ast.KindSelect, "", project, from, where)
}

func TestKindString(t *testing.T) {
	if All.String() != "ALL" || Any.String() != "ANY" || Opt.String() != "OPT" || Multi.String() != "MULTI" {
		t.Error("kind names wrong")
	}
	if !Any.IsChoice() || !Opt.IsChoice() || !Multi.IsChoice() || All.IsChoice() {
		t.Error("IsChoice wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include number")
	}
}

func TestFromASTToASTRoundTrip(t *testing.T) {
	for _, q := range paperQueries(t) {
		d := FromAST(q)
		if d.HasChoice() {
			t.Fatal("FromAST must be choice-free")
		}
		back, ok := ToAST(d)
		if !ok {
			t.Fatal("ToAST failed on choice-free tree")
		}
		if !ast.Equal(q, back) {
			t.Errorf("round trip changed tree: %s vs %s", q, back)
		}
	}
}

func TestToASTSplicesSeqAndEmpty(t *testing.T) {
	d := NewAll(ast.KindProject, "",
		NewAll(ast.KindSeq, "",
			NewAll(ast.KindColExpr, "a"),
			Emptyn(),
			NewAll(ast.KindColExpr, "b")),
		NewAll(ast.KindColExpr, "c"))
	a, ok := ToAST(d)
	if !ok {
		t.Fatal("ToAST failed")
	}
	if len(a.Children) != 3 {
		t.Fatalf("splice: got %d children, want 3 (%s)", len(a.Children), a)
	}
	if a.Children[0].Value != "a" || a.Children[1].Value != "b" || a.Children[2].Value != "c" {
		t.Errorf("splice order wrong: %s", a)
	}
	if _, ok := ToAST(NewAny(Emptyn())); ok {
		t.Error("ToAST must fail on choice nodes")
	}
	if _, ok := ToAST(Emptyn()); ok {
		t.Error("ToAST of bare Empty must fail (no node produced)")
	}
}

func TestInitial(t *testing.T) {
	qs := paperQueries(t)
	d, err := Initial(qs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != Any || len(d.Children) != 3 {
		t.Fatalf("initial state should be ANY over 3 queries, got %s", d)
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	// Duplicates collapse.
	d2, err := Initial([]*ast.Node{qs[0], qs[0].Clone(), qs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Children) != 2 {
		t.Errorf("dedup failed: %d children", len(d2.Children))
	}
	// Single query: plain tree.
	d3, err := Initial(qs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if d3.Kind != All {
		t.Errorf("single query should yield All root, got %v", d3.Kind)
	}
	if _, err := Initial(nil); err == nil {
		t.Error("empty log must error")
	}
}

func TestExpressibleInitial(t *testing.T) {
	qs := paperQueries(t)
	d, _ := Initial(qs)
	for i, q := range qs {
		if !Expressible(d, q) {
			t.Errorf("query %d not expressible in initial state", i)
		}
	}
	other := sqlparser.MustParse("SELECT Sales FROM sales WHERE cty = EUR")
	if Expressible(d, other) {
		t.Error("initial state must express exactly the input queries")
	}
}

func TestExpressibleFigure4(t *testing.T) {
	d := figure4Tree()
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
	for i, q := range paperQueries(t) {
		if !Expressible(d, q) {
			t.Errorf("paper query %d not expressible in Figure 4 tree", i)
		}
	}
	// Figure 4 "can express more queries than the initial difftree":
	extra := sqlparser.MustParse("SELECT Sales FROM sales WHERE cty = EUR")
	if !Expressible(d, extra) {
		t.Error("Figure 4 tree should express the generalized query")
	}
	// ...but not arbitrary queries.
	if Expressible(d, sqlparser.MustParse("SELECT Profit FROM sales")) {
		t.Error("unknown column should not be expressible")
	}
	if Expressible(d, sqlparser.MustParse("SELECT Sales FROM other")) {
		t.Error("unknown table should not be expressible")
	}
}

func TestExpressAssignments(t *testing.T) {
	d := figure4Tree()
	qs := paperQueries(t)

	a1, ok := Express(d, qs[0])
	if !ok {
		t.Fatal("q1 inexpressible")
	}
	a2, ok := Express(d, qs[1])
	if !ok {
		t.Fatal("q2 inexpressible")
	}
	a3, ok := Express(d, qs[2])
	if !ok {
		t.Fatal("q3 inexpressible")
	}

	// q1 vs q2 differ in both the Project ANY and the StrExpr ANY (2 widgets).
	ch12 := a1.Changed(a2)
	if len(ch12) != 2 {
		t.Errorf("q1->q2 changed %d choice nodes, want 2 (%s vs %s)",
			len(ch12), DescribeAssignment(d, a1), DescribeAssignment(d, a2))
	}
	// q2 vs q3 differ only in the OPT(Where) toggle: the StrExpr choice
	// disappears when the Where clause is off.
	ch23 := a2.Changed(a3)
	if len(ch23) != 2 { // OPT itself + vanished StrExpr ANY
		t.Errorf("q2->q3 changed %d choice nodes, want 2", len(ch23))
	}
	// Same query: no changes.
	if n := len(a1.Changed(a1)); n != 0 {
		t.Errorf("self-diff = %d", n)
	}
}

func TestExpressMulti(t *testing.T) {
	// MULTI over BETWEEN conjuncts: And[Multi[Between(col?,num?,num?)]]
	between := NewAll(ast.KindBetween, "",
		NewAny(
			NewAll(ast.KindColExpr, "u"),
			NewAll(ast.KindColExpr, "g"),
		),
		NewAll(ast.KindNumExpr, "0"),
		NewAll(ast.KindNumExpr, "30"),
	)
	d := NewAll(ast.KindAnd, "", NewMulti(between))
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}

	mk := func(src string) *ast.Node {
		q := sqlparser.MustParse("select a from t where " + src)
		return q.ChildOfKind(ast.KindWhere).Children[0]
	}
	two := mk("u between 0 and 30 and g between 0 and 30")
	if !Expressible(d, two) {
		t.Error("2 instances should match")
	}
	one := &ast.Node{Kind: ast.KindAnd, Children: []*ast.Node{mk("u between 0 and 30 and g between 0 and 30").Children[0]}}
	if !Expressible(d, one) {
		t.Error("1 instance should match")
	}
	zero := &ast.Node{Kind: ast.KindAnd}
	if !Expressible(d, zero) {
		t.Error("0 instances should match")
	}
	bad := mk("u between 0 and 31 and g between 0 and 30")
	if Expressible(d, bad) {
		t.Error("literal mismatch must not match")
	}
	a2, _ := Express(d, two)
	a0, _ := Express(d, zero)
	if len(a2.Changed(a0)) == 0 {
		t.Error("different instance counts must change the Multi widget")
	}
}

func TestValidate(t *testing.T) {
	good := figure4Tree()
	if err := Validate(good); err != nil {
		t.Fatal(err)
	}
	bad := []*Node{
		NewAny(),      // ANY with no children
		{Kind: Opt},   // OPT without child
		{Kind: Multi}, // MULTI without child
		NewMulti(NewOpt(NewAll(ast.KindColExpr, "a"))), // nullable MULTI child
		NewMulti(Emptyn()),                                             // nullable MULTI child
		{Kind: All, Label: ast.KindInvalid},                            // invalid label
		{Kind: All, Label: ast.KindEmpty, Children: []*Node{Emptyn()}}, // Empty with child
	}
	for i, b := range bad {
		if err := Validate(b); err == nil {
			t.Errorf("case %d: Validate should fail on %s", i, b)
		}
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		n    *Node
		want bool
	}{
		{Emptyn(), true},
		{NewAll(ast.KindColExpr, "a"), false},
		{NewOpt(NewAll(ast.KindColExpr, "a")), true},
		{NewMulti(NewAll(ast.KindColExpr, "a")), true},
		{NewAny(NewAll(ast.KindColExpr, "a"), Emptyn()), true},
		{NewAny(NewAll(ast.KindColExpr, "a")), false},
		{NewAll(ast.KindSeq, "", Emptyn(), Emptyn()), true},
		{NewAll(ast.KindSeq, "", Emptyn(), NewAll(ast.KindColExpr, "a")), false},
		{nil, true},
	}
	for i, c := range cases {
		if got := Nullable(c.n); got != c.want {
			t.Errorf("case %d: Nullable(%s) = %v, want %v", i, c.n, got, c.want)
		}
	}
}

func TestCloneEqualHash(t *testing.T) {
	d := figure4Tree()
	c := d.Clone()
	if !Equal(d, c) {
		t.Fatal("clone not equal")
	}
	if Hash(d) != Hash(c) {
		t.Fatal("clone hash differs")
	}
	c.Children[0].Children[0].Children[0].Value = "Other"
	if Equal(d, c) {
		t.Fatal("deep clone violated")
	}
	// Hashes are memoized at first computation, so a structurally different
	// tree must be built fresh (mutating an already-hashed node is outside
	// the immutable-difftree contract).
	other := figure4Tree()
	other.Children[0].Children[0].Children[0].Value = "Other"
	if Hash(d) == Hash(other) {
		t.Error("different trees should hash differently")
	}
	if !Equal(nil, nil) || Equal(d, nil) {
		t.Error("nil equality wrong")
	}
	var n *Node
	if n.Clone() != nil || n.Size() != 0 || n.CountChoice() != 0 || n.HasChoice() {
		t.Error("nil node helpers wrong")
	}
}

func TestCountChoiceAndPaths(t *testing.T) {
	d := figure4Tree()
	if got := d.CountChoice(); got != 3 {
		t.Errorf("CountChoice = %d, want 3 (2 ANY + 1 OPT)", got)
	}
	ps := ChoicePaths(d)
	if len(ps) != 3 {
		t.Fatalf("ChoicePaths = %d", len(ps))
	}
	for _, p := range ps {
		if At(d, p) == nil || !At(d, p).Kind.IsChoice() {
			t.Errorf("path %s does not address a choice node", p)
		}
	}
	if At(d, Path{9}) != nil {
		t.Error("invalid path should be nil")
	}
	if At(d, nil) != d {
		t.Error("empty path is root")
	}
	if (Path{}).String() != "/" || (Path{1, 2}).String() != "/1/2" {
		t.Error("path rendering wrong")
	}
}

func TestReplaceAt(t *testing.T) {
	d := figure4Tree()
	repl := NewAll(ast.KindColExpr, "Profit")
	out := ReplaceAt(d, Path{0, 0, 0}, repl)
	if out == nil {
		t.Fatal("ReplaceAt failed")
	}
	if At(out, Path{0, 0, 0}).Value != "Profit" {
		t.Error("replacement missing")
	}
	if At(d, Path{0, 0, 0}).Value == "Profit" {
		t.Error("original mutated")
	}
	if ReplaceAt(d, Path{9, 9}, repl) != nil {
		t.Error("bad path should be nil")
	}
	if ReplaceAt(d, nil, repl) != repl {
		t.Error("empty path replaces root")
	}
}

func TestEnumerateQueries(t *testing.T) {
	d := figure4Tree()
	qs := EnumerateQueries(d, 100, 2)
	// 2 projections × (2 cty values + no-where) = 6 queries.
	if len(qs) != 6 {
		t.Fatalf("enumerated %d queries, want 6", len(qs))
	}
	for _, q := range qs {
		if !Expressible(d, q) {
			t.Errorf("enumerated query not expressible: %s", sqlparser.Render(q))
		}
	}
	if got := CountQueries(d, 3, 2); got != 3 {
		t.Errorf("CountQueries limit: got %d", got)
	}
	if got := EnumerateQueries(d, 0, 2); got != nil {
		t.Error("limit 0 should return nil")
	}
}

func TestEnumerateMulti(t *testing.T) {
	between := NewAll(ast.KindBetween, "",
		NewAll(ast.KindColExpr, "u"),
		NewAll(ast.KindNumExpr, "0"),
		NewAll(ast.KindNumExpr, "30"))
	d := NewAll(ast.KindAnd, "", NewMulti(between))
	qs := EnumerateQueries(d, 10, 3)
	// 0,1,2,3 instances → 4 distinct Ands.
	if len(qs) != 4 {
		t.Fatalf("multi enumeration = %d, want 4", len(qs))
	}
}

func TestStringNotation(t *testing.T) {
	d := NewAny(NewAll(ast.KindColExpr, "Sales"), Emptyn())
	s := d.String()
	if !strings.Contains(s, "ANY[") || !strings.Contains(s, "ColExpr:Sales") || !strings.Contains(s, "Empty") {
		t.Errorf("String() = %q", s)
	}
	var n *Node
	if n.String() != "<nil>" {
		t.Error("nil String wrong")
	}
}

func TestOptionLabels(t *testing.T) {
	anyNode := NewAny(
		NewAll(ast.KindColExpr, "Sales"),
		NewAll(ast.KindColExpr, "Costs"),
		Emptyn(),
	)
	labels := OptionLabels(anyNode)
	if labels[0] != "Sales" || labels[1] != "Costs" || labels[2] != "(none)" {
		t.Errorf("labels = %v", labels)
	}
	// Long fragments fall back to generic labels.
	long := FromAST(sqlparser.MustParse("select top 10 objid from stars where u between 0 and 30 and g between 0 and 30"))
	if got := OptionLabel(4, long); got != "option 5" {
		t.Errorf("long label = %q", got)
	}
	// Choice-bearing alternative falls back too.
	withChoice := NewAll(ast.KindWhere, "", NewAny(Emptyn(), NewAll(ast.KindColExpr, "x")))
	if got := OptionLabel(0, withChoice); got != "option 1" {
		t.Errorf("choice label = %q", got)
	}
	// Seq alternatives render joined.
	seq := NewAll(ast.KindSeq, "", NewAll(ast.KindColExpr, "a"), NewAll(ast.KindColExpr, "b"))
	if got := OptionLabel(0, seq); got != "a b" {
		t.Errorf("seq label = %q", got)
	}
}

func TestNodeTitle(t *testing.T) {
	d := figure4Tree()
	projAny := d.Children[0].Children[0]
	if got := NodeTitle(projAny); got != "ColExpr" {
		t.Errorf("title = %q", got)
	}
	whereOpt := d.Children[2]
	if got := NodeTitle(whereOpt); got != "Where" {
		t.Errorf("opt title = %q", got)
	}
	mixed := NewAny(NewAll(ast.KindColExpr, "a"), NewAll(ast.KindTable, "t"))
	if got := NodeTitle(mixed); got != "choice" {
		t.Errorf("mixed title = %q", got)
	}
	multi := NewMulti(NewAll(ast.KindBetween, "", NewAll(ast.KindColExpr, "u"), NewAll(ast.KindNumExpr, "0"), NewAll(ast.KindNumExpr, "1")))
	if got := NodeTitle(multi); got != "Between" {
		t.Errorf("multi title = %q", got)
	}
	if got := NodeTitle(NewAll(ast.KindColExpr, "a")); got != "" {
		t.Errorf("non-choice title = %q", got)
	}
}

func TestExpressBudgetTermination(t *testing.T) {
	// A deliberately ambiguous tree: nested Anys with many identical options.
	// The matcher must terminate (budget) even when no match exists.
	opts := make([]*Node, 12)
	for i := range opts {
		opts[i] = NewAll(ast.KindColExpr, "x")
	}
	inner := NewAny(opts...)
	d := NewAll(ast.KindProject, "", NewMulti(inner))
	var cols []*ast.Node
	for i := 0; i < 12; i++ {
		cols = append(cols, ast.Leaf(ast.KindColExpr, "x"))
	}
	cols = append(cols, ast.Leaf(ast.KindColExpr, "y")) // unmatchable tail
	q := &ast.Node{Kind: ast.KindProject, Children: cols}
	if Expressible(d, q) {
		t.Error("should not match")
	}
}
