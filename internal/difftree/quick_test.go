package difftree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/testutil"
)

// genAST builds a random small grammar AST (not necessarily a full query —
// difftree semantics are grammar-agnostic).
func genAST(rng *rand.Rand, depth int) *ast.Node {
	kinds := []ast.Kind{ast.KindColExpr, ast.KindNumExpr, ast.KindStrExpr, ast.KindTable}
	if depth <= 0 || rng.Intn(3) == 0 {
		k := kinds[rng.Intn(len(kinds))]
		return ast.Leaf(k, string(rune('a'+rng.Intn(6))))
	}
	interior := []ast.Kind{ast.KindAnd, ast.KindProject, ast.KindBetween, ast.KindBiExpr, ast.KindWhere}
	k := interior[rng.Intn(len(interior))]
	n := &ast.Node{Kind: k, Value: ""}
	if k == ast.KindBiExpr {
		n.Value = "="
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		n.Children = append(n.Children, genAST(rng, depth-1))
	}
	return n
}

// TestQuickFromToASTRoundTrip: ToAST(FromAST(a)) == a for arbitrary ASTs.
func TestQuickFromToASTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			a := genAST(rng, 3)
			d := FromAST(a)
			back, ok := ToAST(d)
			if !ok || !ast.Equal(a, back) {
				t.Logf("round trip failed for %s", a)
				return false
			}
			if d.HasChoice() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(101, 80)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInitialExpressesLog: the initial difftree expresses exactly its
// input queries.
func TestQuickInitialExpressesLog(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		log := make([]*ast.Node, n)
		for i := range log {
			log[i] = genAST(rng, 3)
		}
		d, err := Initial(log)
		if err != nil {
			return false
		}
		if Validate(d) != nil {
			t.Logf("invalid initial state for seed %d", seed)
			return false
		}
		for _, q := range log {
			if !Expressible(d, q) {
				t.Logf("input query inexpressible: %s", q)
				return false
			}
		}
		// A fresh random tree differing from all inputs must be rejected.
		probe := genAST(rng, 3)
		isInput := false
		for _, q := range log {
			if ast.Equal(q, probe) {
				isInput = true
			}
		}
		if !isInput && Expressible(d, probe) {
			t.Logf("phantom query expressible: %s", probe)
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(102, 80)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumerateSubsetOfExpressible: everything EnumerateQueries
// returns must be Expressible, and hashing/equality must agree.
func TestQuickEnumerateSubsetOfExpressible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := []*ast.Node{genAST(rng, 2), genAST(rng, 2), genAST(rng, 2)}
		d, err := Initial(log)
		if err != nil {
			return false
		}
		for _, q := range EnumerateQueries(d, 20, 2) {
			if !Expressible(d, q) {
				t.Logf("enumerated-but-inexpressible: %s", q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(103, 60)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashEqualConsistent: Equal trees hash equally; clones are Equal.
func TestQuickHashEqualConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromAST(genAST(rng, 3))
		b := a.Clone()
		if !Equal(a, b) || Hash(a) != Hash(b) {
			return false
		}
		// A mutated copy must not be Equal (value change at a random leaf).
		c := a.Clone()
		var leaves []*Node
		WalkPath(c, func(n *Node, _ Path) bool {
			if len(n.Children) == 0 {
				leaves = append(leaves, n)
			}
			return true
		})
		if len(leaves) == 0 {
			return true
		}
		leaves[rng.Intn(len(leaves))].Value += "x"
		return !Equal(a, c)
	}
	if err := quick.Check(f, testutil.QuickConfig(104, 100)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReplaceAtPreservesOthers: replacing one subtree leaves all other
// paths intact and never mutates the original.
func TestQuickReplaceAtPreservesOthers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := FromAST(genAST(rng, 3))
		orig := root.Clone()
		var paths []Path
		WalkPath(root, func(_ *Node, p Path) bool {
			paths = append(paths, p.Clone())
			return true
		})
		p := paths[rng.Intn(len(paths))]
		repl := NewAll(ast.KindColExpr, "replacement")
		out := ReplaceAt(root, p, repl)
		if out == nil {
			return false
		}
		if !Equal(At(out, p), repl) {
			return false
		}
		if !Equal(root, orig) {
			t.Log("ReplaceAt mutated the original")
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(105, 100)); err != nil {
		t.Fatal(err)
	}
}
