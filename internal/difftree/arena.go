package difftree

// SpineArena bump-allocates the copy-on-write spine (fresh nodes plus their
// child slices) built by its ReplaceAt. Move enumeration and rollout sampling
// build many candidate trees that fail a legality check and are immediately
// discarded; allocating their spines from a reusable arena removes that
// garbage from the search hot path.
//
// Contract: trees built by (*SpineArena).ReplaceAt are valid only until the
// next Reset. A candidate that is *kept* as a search state must be rebuilt on
// the heap (difftree.ReplaceAt or rules.Candidate) — arena nodes are reused
// in place, so retaining one would alias a future candidate. The untouched
// subtrees hanging off the spine are the caller's heap nodes and are safe to
// share as always.
type SpineArena struct {
	nodes [][]Node
	nc    int // index of the node chunk being filled
	nu    int // nodes used in nodes[nc]
	kids  [][]*Node
	kc    int // index of the child-slice chunk being filled
	ku    int // pointers used in kids[kc]
}

const (
	spineNodeChunk = 256
	spineKidChunk  = 2048
)

// Reset recycles every node and child slice handed out since the last Reset.
// Trees previously returned by ReplaceAt become invalid.
func (a *SpineArena) Reset() {
	a.nc, a.nu = 0, 0
	a.kc, a.ku = 0, 0
}

func (a *SpineArena) node() *Node {
	for a.nc < len(a.nodes) && a.nu == len(a.nodes[a.nc]) {
		a.nc++
		a.nu = 0
	}
	if a.nc == len(a.nodes) {
		a.nodes = append(a.nodes, make([]Node, spineNodeChunk))
		a.nu = 0
	}
	n := &a.nodes[a.nc][a.nu]
	a.nu++
	return n
}

func (a *SpineArena) childSlice(n int) []*Node {
	if n == 0 {
		return nil
	}
	if n > spineKidChunk {
		return make([]*Node, n) // oversized fanout: fall back to the heap
	}
	for a.kc < len(a.kids) && a.ku+n > len(a.kids[a.kc]) {
		a.kc++
		a.ku = 0
	}
	if a.kc == len(a.kids) {
		a.kids = append(a.kids, make([]*Node, spineKidChunk))
		a.ku = 0
	}
	s := a.kids[a.kc][a.ku : a.ku+n : a.ku+n]
	a.ku += n
	return s
}

// ReplaceAt is ReplaceAt with the spine allocated from the arena. It returns
// nil when p is invalid. See the type comment for the lifetime contract.
func (a *SpineArena) ReplaceAt(root *Node, p Path, repl *Node) *Node {
	if len(p) == 0 {
		return repl
	}
	if root == nil || p[0] < 0 || p[0] >= len(root.Children) {
		return nil
	}
	sub := a.ReplaceAt(root.Children[p[0]], p[1:], repl)
	if sub == nil {
		return nil
	}
	out := a.node()
	out.Kind, out.Label, out.Value = root.Kind, root.Label, root.Value
	out.h.Store(0)
	out.Children = a.childSlice(len(root.Children))
	copy(out.Children, root.Children)
	out.Children[p[0]] = sub
	return out
}
