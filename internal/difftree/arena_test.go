package difftree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

// TestQuickSpineArenaReplaceAtEquivalence: the arena-backed ReplaceAt builds
// trees structurally identical (and hash-identical) to the heap ReplaceAt,
// across Resets that recycle previous spines.
func TestQuickSpineArenaReplaceAtEquivalence(t *testing.T) {
	arena := &SpineArena{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := genDiff(rng, 4)
		var paths []Path
		WalkPath(root, func(_ *Node, p Path) bool {
			paths = append(paths, p.Clone())
			return true
		})

		// Build several candidates from one arena generation, checking each
		// against the heap version before the next overwrites nothing (spines
		// are bump-allocated, so candidates within a generation coexist).
		arena.Reset()
		for try := 0; try < 4; try++ {
			p := paths[rng.Intn(len(paths))]
			repl := genDiff(rng, 2)
			got := arena.ReplaceAt(root, p, repl)
			want := ReplaceAt(root, p, repl)
			if (got == nil) != (want == nil) {
				t.Logf("nil disagreement at %s", p)
				return false
			}
			if got == nil {
				continue
			}
			if !Equal(got, want) {
				t.Logf("arena tree differs at %s", p)
				return false
			}
			if Hash(got) != Hash(rebuild(want)) {
				t.Logf("arena hash differs at %s", p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(71, 150)); err != nil {
		t.Fatal(err)
	}
}

// TestSpineArenaResetRecycles: after Reset the arena hands out the same
// backing nodes again with cleanly reset hash memos.
func TestSpineArenaResetRecycles(t *testing.T) {
	arena := &SpineArena{}
	rng := rand.New(rand.NewSource(5))
	root := genDiff(rng, 4)
	repl := genDiff(rng, 2)
	p := Path{0}
	first := arena.ReplaceAt(root, p, repl)
	if first == nil {
		t.Fatal("replace failed")
	}
	Hash(first) // memoize on the arena node

	arena.Reset()
	repl2 := genDiff(rng, 2)
	second := arena.ReplaceAt(root, p, repl2)
	if second != first {
		t.Fatalf("expected the arena to recycle the spine node: %p vs %p", second, first)
	}
	if got, want := Hash(second), Hash(rebuild(second)); got != want {
		t.Fatalf("stale hash memo survived Reset: %x want %x", got, want)
	}
}
