package difftree

import (
	"errors"

	"repro/internal/ast"
)

// Initial builds the paper's initial search state: the input query ASTs
// (duplicates removed) connected with an ANY root. A single distinct query
// yields its plain All-tree.
func Initial(queries []*ast.Node) (*Node, error) {
	if len(queries) == 0 {
		return nil, errors.New("difftree: empty query log")
	}
	distinct := ast.Dedup(queries)
	if len(distinct) == 1 {
		return FromAST(distinct[0]), nil
	}
	kids := make([]*Node, len(distinct))
	for i, q := range distinct {
		kids[i] = FromAST(q)
	}
	return NewAny(kids...), nil
}

// Validate checks the structural invariants every difftree must satisfy:
//
//   - Any nodes have >= 1 child,
//   - Opt and Multi nodes have exactly one child,
//   - Multi children are not nullable (otherwise matching would diverge),
//   - All nodes carry a valid grammar label,
//   - Empty nodes are leaves.
func Validate(root *Node) error {
	var err error
	WalkPath(root, func(n *Node, p Path) bool {
		if err != nil {
			return false
		}
		switch n.Kind {
		case Any:
			if len(n.Children) == 0 {
				err = errorsAt(p, "ANY node with no children")
			}
		case Opt:
			if len(n.Children) != 1 {
				err = errorsAt(p, "OPT node must have exactly one child")
			}
		case Multi:
			if len(n.Children) != 1 {
				err = errorsAt(p, "MULTI node must have exactly one child")
			} else if Nullable(n.Children[0]) {
				err = errorsAt(p, "MULTI child must not be nullable")
			}
		case All:
			if !n.Label.Valid() {
				err = errorsAt(p, "ALL node with invalid grammar label")
			}
			if n.Label == ast.KindEmpty && len(n.Children) != 0 {
				err = errorsAt(p, "Empty node must be a leaf")
			}
		}
		return true
	})
	return err
}

func errorsAt(p Path, msg string) error {
	return errors.New("difftree: at " + p.String() + ": " + msg)
}

// ReplaceAt returns root with the subtree at path p replaced by repl (used
// as-is). Only the spine from the root to p is fresh; untouched siblings are
// shared with the input — difftrees are treated as immutable values
// throughout the system, so structural sharing is safe and keeps rule
// application cheap. It returns nil when p is invalid.
func ReplaceAt(root *Node, p Path, repl *Node) *Node {
	if len(p) == 0 {
		return repl
	}
	if root == nil || p[0] < 0 || p[0] >= len(root.Children) {
		return nil
	}
	sub := ReplaceAt(root.Children[p[0]], p[1:], repl)
	if sub == nil {
		return nil
	}
	out := &Node{Kind: root.Kind, Label: root.Label, Value: root.Value,
		Children: make([]*Node, len(root.Children))}
	copy(out.Children, root.Children)
	out.Children[p[0]] = sub
	return out
}
