package difftree

import "repro/internal/ast"

// EnumerateQueries generates up to limit distinct queries the difftree can
// express. Multi nodes are expanded with 0..maxMulti instances. The result
// order is deterministic (choice-index order, depth first).
func EnumerateQueries(root *Node, limit, maxMulti int) []*ast.Node {
	if limit <= 0 {
		return nil
	}
	e := &enumerator{limit: limit, maxMulti: maxMulti}
	seqs := e.expand(root)
	var out []*ast.Node
	seen := make(map[uint64][]*ast.Node)
	for _, s := range seqs {
		if len(s) != 1 {
			continue
		}
		q := s[0]
		h := ast.Hash(q)
		dup := false
		for _, prev := range seen[h] {
			if ast.Equal(prev, q) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], q)
		out = append(out, q)
		if len(out) >= limit {
			break
		}
	}
	return out
}

// CountQueries returns the number of distinct expressible queries, counting
// at most limit (so callers can detect "more than limit" cheaply).
func CountQueries(root *Node, limit, maxMulti int) int {
	return len(EnumerateQueries(root, limit, maxMulti))
}

type enumerator struct {
	limit    int
	maxMulti int
}

// expand returns all AST-node sequences the subtree can generate, truncated
// to keep at most limit*4 partial candidates alive (the caller dedups and
// trims to limit).
func (e *enumerator) expand(n *Node) [][]*ast.Node {
	cap_ := e.limit * 4
	if cap_ < 16 {
		cap_ = 16
	}
	switch n.Kind {
	case All:
		switch n.Label {
		case ast.KindEmpty:
			return [][]*ast.Node{nil}
		case ast.KindSeq:
			return e.expandConcat(n.Children, cap_)
		default:
			kidSeqs := e.expandConcat(n.Children, cap_)
			out := make([][]*ast.Node, 0, len(kidSeqs))
			for _, ks := range kidSeqs {
				out = append(out, []*ast.Node{{Kind: n.Label, Value: n.Value, Children: ks}})
			}
			return out
		}
	case Any:
		var out [][]*ast.Node
		for _, c := range n.Children {
			out = append(out, e.expand(c)...)
			if len(out) > cap_ {
				out = out[:cap_]
				break
			}
		}
		return out
	case Opt:
		out := [][]*ast.Node{nil}
		out = append(out, e.expand(n.Children[0])...)
		if len(out) > cap_ {
			out = out[:cap_]
		}
		return out
	case Multi:
		// 0..maxMulti concatenated instances.
		out := [][]*ast.Node{nil}
		inst := e.expand(n.Children[0])
		prev := [][]*ast.Node{nil}
		for k := 0; k < e.maxMulti; k++ {
			var next [][]*ast.Node
			for _, p := range prev {
				for _, i := range inst {
					cat := append(append([]*ast.Node{}, p...), i...)
					next = append(next, cat)
					if len(next) > cap_ {
						break
					}
				}
				if len(next) > cap_ {
					break
				}
			}
			out = append(out, next...)
			prev = next
			if len(out) > cap_ {
				out = out[:cap_]
				break
			}
		}
		return out
	}
	return nil
}

func (e *enumerator) expandConcat(children []*Node, cap_ int) [][]*ast.Node {
	acc := [][]*ast.Node{nil}
	for _, c := range children {
		sub := e.expand(c)
		var next [][]*ast.Node
		for _, a := range acc {
			for _, s := range sub {
				cat := append(append([]*ast.Node{}, a...), s...)
				next = append(next, cat)
				if len(next) > cap_ {
					break
				}
			}
			if len(next) > cap_ {
				break
			}
		}
		acc = next
	}
	return acc
}
