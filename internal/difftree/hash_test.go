package difftree

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/testutil"
)

// rebuild constructs a brand-new structurally identical tree, field by
// field, with no cached hashes carried over — the reference for "the hash is
// a pure function of structure".
func rebuild(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Label: n.Label, Value: n.Value}
	for _, ch := range n.Children {
		c.Children = append(c.Children, rebuild(ch))
	}
	return c
}

// genDiff grows a random difftree with all four node kinds.
func genDiff(rng *rand.Rand, depth int) *Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		kinds := []ast.Kind{ast.KindColExpr, ast.KindNumExpr, ast.KindStrExpr, ast.KindTable}
		return NewAll(kinds[rng.Intn(len(kinds))], string(rune('a'+rng.Intn(6))))
	}
	switch rng.Intn(4) {
	case 0:
		kids := make([]*Node, 1+rng.Intn(3))
		for i := range kids {
			kids[i] = genDiff(rng, depth-1)
		}
		return NewAny(kids...)
	case 1:
		return NewOpt(genDiff(rng, depth-1))
	case 2:
		return NewMulti(NewAll(ast.KindColExpr, "m", genDiff(rng, depth-1)))
	default:
		kids := make([]*Node, rng.Intn(3))
		for i := range kids {
			kids[i] = genDiff(rng, depth-1)
		}
		return NewAll(ast.KindAnd, "", kids...)
	}
}

// TestQuickHashPureFunctionOfStructure: structurally equal trees hash
// equally no matter how they were produced — built fresh, cloned, or
// assembled through copy-on-write ReplaceAt with hashes computed at
// arbitrary intermediate moments.
func TestQuickHashPureFunctionOfStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genDiff(rng, 4)

		// Fresh rebuild: same structure, no shared nodes, no cached hashes.
		b := rebuild(a)
		if !Equal(a, b) {
			t.Log("rebuild not Equal")
			return false
		}
		ha := Hash(a) // caches hashes throughout a
		if Hash(b) != ha {
			t.Log("fresh rebuild hashes differently")
			return false
		}

		// Clones carry the cached hashes and must agree.
		if Hash(a.Clone()) != ha {
			t.Log("clone hashes differently")
			return false
		}

		// Copy-on-write: replace a random subtree; the rewritten tree shares
		// every untouched node (with their already-cached hashes) and must
		// hash identically to a from-scratch rebuild of the same structure.
		var paths []Path
		WalkPath(a, func(_ *Node, p Path) bool {
			paths = append(paths, p.Clone())
			return true
		})
		p := paths[rng.Intn(len(paths))]
		repl := genDiff(rng, 2)
		cow := ReplaceAt(a, p, repl)
		if cow == nil {
			return len(p) > 0 // only invalid paths may fail, and root never is
		}
		if got, want := Hash(cow), Hash(rebuild(cow)); got != want {
			t.Logf("COW hash %x != fresh hash %x at %s", got, want, p)
			return false
		}
		// The original is untouched and keeps its hash.
		if Hash(a) != ha {
			t.Log("ReplaceAt disturbed the source tree's hash")
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(61, 200)); err != nil {
		t.Fatal(err)
	}
}

// TestHashNoDelimiterCollision pins the fix for a real ambiguity in the
// previous delimiter-based hash: Value bytes could emulate the child
// delimiter plus a sibling's header, making these two structurally
// different trees hash equally:
//
//	A = And[ ColExpr:"a"  ColExpr:"z" ]
//	B = And[ ColExpr:"a\x1f\x1e<kind><label>z" ]
//
// (under the old scheme B's single child's value spelled out exactly the
// bytes A's two children emit). Length-prefixing Value and composing from
// child hashes removes the ambiguity.
func TestHashNoDelimiterCollision(t *testing.T) {
	sibling := NewAll(ast.KindColExpr, "z")
	a := NewAll(ast.KindAnd, "",
		NewAll(ast.KindColExpr, "a"),
		sibling,
	)
	crafted := "a" + "\x1f\x1e" + string([]byte{byte(All), byte(ast.KindColExpr)}) + "z"
	b := NewAll(ast.KindAnd, "", NewAll(ast.KindColExpr, crafted))

	if Equal(a, b) {
		t.Fatal("trees must be structurally different")
	}
	if Hash(a) == Hash(b) {
		t.Errorf("delimiter-emulating Value collides: %x", Hash(a))
	}
}

// stdlibHash is the reference implementation of Hash's byte stream using the
// hash/fnv hasher the production code used before the allocation-free inline
// loop: header (Kind, Label, value length, child count), Value bytes, then
// each child hash in little-endian.
func stdlibHash(n *Node) uint64 {
	if n == nil {
		return nilHash
	}
	h := fnv.New64a()
	var hdr [2 + 4 + 4]byte
	hdr[0] = byte(n.Kind)
	hdr[1] = byte(n.Label)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(n.Value)))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(n.Children)))
	h.Write(hdr[:])
	h.Write([]byte(n.Value))
	var cb [8]byte
	for _, c := range n.Children {
		binary.LittleEndian.PutUint64(cb[:], stdlibHash(c))
		h.Write(cb[:])
	}
	s := h.Sum64()
	if s == 0 {
		s = nilHash
	}
	return s
}

// TestHashMatchesStdlibFNV pins the inlined allocation-free FNV-1a loop to
// the stdlib hasher it replaced: per-state reward RNGs are seeded from these
// values, so any drift in the byte stream would silently change search
// trajectories and break the golden fixtures.
func TestHashMatchesStdlibFNV(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := genDiff(rng, 4)
		if got, want := Hash(rebuild(n)), stdlibHash(n); got != want {
			t.Logf("inline hash %x != stdlib fnv %x for %s", got, want, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(67, 300)); err != nil {
		t.Fatal(err)
	}
	if Hash(nil) != stdlibHash(nil) {
		t.Error("nil hash drifted")
	}
}

// TestHashMemoizedZeroAlloc pins the cold-cache fix: hashing a tree whose
// hashes are already memoized performs no allocations at all, and even the
// first hash of a fresh tree allocates nothing (the stdlib hasher used to
// cost one heap object per node).
func TestHashMemoizedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := genDiff(rng, 5)
	Hash(n)
	if avg := testing.AllocsPerRun(100, func() { Hash(n) }); avg != 0 {
		t.Errorf("memoized Hash allocates %v per call, want 0", avg)
	}
	fresh := make([]*Node, 101)
	for i := range fresh {
		fresh[i] = rebuild(n)
	}
	i := 0
	if avg := testing.AllocsPerRun(100, func() { Hash(fresh[i]); i++ }); avg != 0 {
		t.Errorf("first Hash of a fresh tree allocates %v per call, want 0", avg)
	}
}

// TestHashDistinguishesKindsAndArity: basic hash discrimination across the
// axes the cache keys on.
func TestHashDistinguishesKindsAndArity(t *testing.T) {
	leaf := func() *Node { return NewAll(ast.KindColExpr, "x") }
	cases := []*Node{
		leaf(),
		NewAny(leaf()),
		NewOpt(leaf()),
		NewMulti(leaf()),
		NewAny(leaf(), leaf()),
		NewAll(ast.KindAnd, "", leaf()),
		NewAll(ast.KindAnd, "y", leaf()),
		nil,
	}
	seen := map[uint64]int{}
	for i, c := range cases {
		h := Hash(c)
		if j, dup := seen[h]; dup {
			t.Errorf("cases %d and %d collide (%x)", i, j, h)
		}
		seen[h] = i
	}
	if Hash(nil) != Hash(nil) {
		t.Error("nil hash unstable")
	}
}
