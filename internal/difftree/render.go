package difftree

import (
	"fmt"

	"repro/internal/sqlparser"
)

// maxLabelLen caps widget option labels; longer fragments fall back to a
// generic "option i" label (the paper's Figure 2(a) labels whole queries
// q1/q2/q3 the same way).
const maxLabelLen = 24

// OptionLabel renders the i-th alternative of a choice node as a short
// human-readable widget label: the SQL fragment it denotes when it is
// choice-free and short, otherwise a generic name.
func OptionLabel(i int, alt *Node) string {
	if alt.IsEmpty() {
		return "(none)"
	}
	if !alt.HasChoice() {
		if a, ok := ToAST(alt); ok {
			s := sqlparser.RenderFragment(a)
			if s != "" && len(s) <= maxLabelLen {
				return s
			}
		}
		// Seq nodes resolve to several AST nodes; render them joined.
		if seq, ok := toASTSeq(alt); ok {
			s := ""
			for j, n := range seq {
				if j > 0 {
					s += " "
				}
				s += sqlparser.RenderFragment(n)
			}
			if s != "" && len(s) <= maxLabelLen {
				return s
			}
		}
	}
	return fmt.Sprintf("option %d", i+1)
}

// OptionLabels renders all alternatives of an Any node.
func OptionLabels(n *Node) []string {
	out := make([]string, len(n.Children))
	for i, c := range n.Children {
		out[i] = OptionLabel(i, c)
	}
	return out
}

// NodeTitle describes what a choice node controls, for widget captions:
// the grammar rule of the nearest enclosing structure the choices share.
func NodeTitle(n *Node) string {
	switch n.Kind {
	case Opt:
		return childTitle(n.Children[0])
	case Multi:
		return childTitle(n.Children[0])
	case Any:
		// If all alternatives share a root label, use it.
		label := ""
		for _, c := range n.Children {
			t := childTitle(c)
			if t == "" {
				continue
			}
			if label == "" {
				label = t
			} else if label != t {
				return "choice"
			}
		}
		if label != "" {
			return label
		}
		return "choice"
	}
	return ""
}

func childTitle(c *Node) string {
	if c == nil || c.IsEmpty() {
		return ""
	}
	if c.Kind == All && c.Label.Valid() && !c.IsSeq() {
		return c.Label.String()
	}
	if c.Kind.IsChoice() || c.IsSeq() {
		for _, gc := range c.Children {
			if t := childTitle(gc); t != "" {
				return t
			}
		}
	}
	return ""
}
