// Package difftree implements the paper's difftree: a tree whose nodes
// encode the differences and similarities among a set of query ASTs, and
// whose structure doubles as the interface layout skeleton.
//
// A difftree node generates a *sequence* of AST nodes:
//
//   - All(label,value)[c1..cn] generates exactly one AST node whose children
//     are the concatenation of what c1..cn generate. Two special labels:
//     ast.KindEmpty generates the empty sequence (the paper's ∅), and
//     ast.KindSeq splices its children's output into the parent (created by
//     the Lift rule).
//   - Any[c1..cn] generates the output of exactly one chosen child.
//   - Opt[c] generates nothing or c's output.
//   - Multi[c] generates k >= 0 concatenated instances of c's output.
//
// An AST is the special case of a difftree with only All nodes. A query is
// expressed by the set of choices made at Any/Opt/Multi nodes (see match.go).
package difftree

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/ast"
)

// Kind is the difftree node type.
type Kind uint8

// The four node types from the paper. Any, Opt, and Multi are the choice
// nodes; All mirrors a grammar AST node.
const (
	All Kind = iota
	Any
	Opt
	Multi
)

// String returns the paper's name for the node type.
func (k Kind) String() string {
	switch k {
	case All:
		return "ALL"
	case Any:
		return "ANY"
	case Opt:
		return "OPT"
	case Multi:
		return "MULTI"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsChoice reports whether the kind is one of the paper's choice node types.
func (k Kind) IsChoice() bool { return k == Any || k == Opt || k == Multi }

// Node is one difftree node. Difftrees are immutable values: once a node is
// reachable from a search state it is never modified, which is what makes
// copy-on-write rule application (ReplaceAt, structural sharing in
// internal/rules) and the cached structural hash below safe. Within one tree
// every node pointer occurs at exactly one position — widget assignment and
// cost attribution key maps by node identity.
type Node struct {
	Kind     Kind
	Label    ast.Kind // grammar rule, meaningful when Kind == All
	Value    string   // literal/operator value, meaningful when Kind == All
	Children []*Node

	// h memoizes Hash for the subtree; 0 means "not computed yet" (Hash
	// never returns 0). Atomic because immutable subtrees are shared across
	// search states and may be hashed from concurrent workers.
	h atomic.Uint64
}

// NewAll constructs an All node mirroring a grammar rule.
func NewAll(label ast.Kind, value string, children ...*Node) *Node {
	return &Node{Kind: All, Label: label, Value: value, Children: children}
}

// NewAny constructs a choice among the given alternatives.
func NewAny(children ...*Node) *Node { return &Node{Kind: Any, Children: children} }

// NewOpt constructs an optional wrapper around child.
func NewOpt(child *Node) *Node { return &Node{Kind: Opt, Children: []*Node{child}} }

// NewMulti constructs a zero-or-more repetition of child.
func NewMulti(child *Node) *Node { return &Node{Kind: Multi, Children: []*Node{child}} }

// Emptyn returns a fresh ∅ node (All node with the Empty label).
func Emptyn() *Node { return &Node{Kind: All, Label: ast.KindEmpty} }

// IsEmpty reports whether n is the ∅ marker.
func (n *Node) IsEmpty() bool { return n != nil && n.Kind == All && n.Label == ast.KindEmpty }

// IsSeq reports whether n is a splice marker produced by the Lift rule.
func (n *Node) IsSeq() bool { return n != nil && n.Kind == All && n.Label == ast.KindSeq }

// FromAST converts a grammar AST into the equivalent all-All difftree.
func FromAST(a *ast.Node) *Node {
	if a == nil {
		return nil
	}
	n := &Node{Kind: All, Label: a.Kind, Value: a.Value}
	if len(a.Children) > 0 {
		n.Children = make([]*Node, len(a.Children))
		for i, c := range a.Children {
			n.Children[i] = FromAST(c)
		}
	}
	return n
}

// ToAST converts a choice-free difftree back to a grammar AST. It reports
// false if the subtree contains any choice node. Seq and Empty markers are
// spliced away; a root that is itself Seq/Empty yields false unless it
// resolves to exactly one node.
func ToAST(n *Node) (*ast.Node, bool) {
	seq, ok := toASTSeq(n)
	if !ok || len(seq) != 1 {
		return nil, false
	}
	return seq[0], true
}

func toASTSeq(n *Node) ([]*ast.Node, bool) {
	if n == nil {
		return nil, true
	}
	if n.Kind != All {
		return nil, false
	}
	if n.Label == ast.KindEmpty {
		return nil, true
	}
	var kids []*ast.Node
	for _, c := range n.Children {
		sub, ok := toASTSeq(c)
		if !ok {
			return nil, false
		}
		kids = append(kids, sub...)
	}
	if n.Label == ast.KindSeq {
		return kids, true
	}
	return []*ast.Node{{Kind: n.Label, Value: n.Value, Children: kids}}, true
}

// Clone deep-copies the subtree. The cached structural hash carries over:
// a clone is structurally identical by construction.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Label: n.Label, Value: n.Value}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	if h := n.h.Load(); h != 0 {
		c.h.Store(h)
	}
	return c
}

// Size counts nodes in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// CountChoice counts Any/Opt/Multi nodes in the subtree; the paper uses this
// as the main driver of search fanout.
func (n *Node) CountChoice() int {
	if n == nil {
		return 0
	}
	s := 0
	if n.Kind.IsChoice() {
		s = 1
	}
	for _, c := range n.Children {
		s += c.CountChoice()
	}
	return s
}

// HasChoice reports whether the subtree contains any choice node.
func (n *Node) HasChoice() bool {
	if n == nil {
		return false
	}
	if n.Kind.IsChoice() {
		return true
	}
	for _, c := range n.Children {
		if c.HasChoice() {
			return true
		}
	}
	return false
}

// Equal reports structural equality.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Label != b.Label || a.Value != b.Value || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// nilHash is the hash of a nil subtree, and the substitute for the (2^-64
// unlikely) case where a real subtree hashes to 0 — 0 is reserved as the
// "not computed" sentinel of the per-node cache.
const nilHash uint64 = 0x9ae16a3b2f90404f

// FNV-1a 64-bit parameters (hash/fnv's, inlined so the hot path allocates
// nothing — the stdlib hasher costs one heap object per rehash).
const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

// fnvByte folds one byte into an FNV-1a state.
func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvUint32 folds a uint32 in little-endian byte order.
func fnvUint32(h uint64, v uint32) uint64 {
	h = fnvByte(h, byte(v))
	h = fnvByte(h, byte(v>>8))
	h = fnvByte(h, byte(v>>16))
	return fnvByte(h, byte(v>>24))
}

// fnvUint64 folds a uint64 in little-endian byte order.
func fnvUint64(h uint64, v uint64) uint64 {
	h = fnvUint32(h, uint32(v))
	return fnvUint32(h, uint32(v>>32))
}

// Hash returns a structural hash of the subtree; used to deduplicate search
// states and as the key of the evaluation engine's transposition cache.
//
// The hash is memoized on each node and composes from the children's cached
// hashes, so with copy-on-write move application only the spine from the
// root to the edited path is ever rehashed: unchanged subtrees reuse their
// cached values. Value strings and child lists are length-prefixed, so no
// crafted Value can emulate node boundaries (see TestHashNoDelimiterCollision
// for the ambiguity the previous delimiter-based scheme allowed).
//
// The digest is FNV-1a over the same byte stream as always — header (Kind,
// Label, value length, child count), Value bytes, then each child hash in
// little-endian — inlined allocation-free. Per-state reward RNGs are seeded
// from these values, so the byte stream (and therefore every hash) must stay
// exactly stable; TestHashMatchesStdlibFNV pins the equivalence.
func Hash(n *Node) uint64 {
	if n == nil {
		return nilHash
	}
	if h := n.h.Load(); h != 0 {
		return h
	}
	h := fnvOffset64
	h = fnvByte(h, byte(n.Kind))
	h = fnvByte(h, byte(n.Label))
	h = fnvUint32(h, uint32(len(n.Value)))
	h = fnvUint32(h, uint32(len(n.Children)))
	for i := 0; i < len(n.Value); i++ {
		h = fnvByte(h, n.Value[i])
	}
	for _, c := range n.Children {
		h = fnvUint64(h, Hash(c))
	}
	if h == 0 {
		h = nilHash
	}
	n.h.Store(h)
	return h
}

// Nullable reports whether the subtree can generate the empty sequence.
func Nullable(n *Node) bool {
	if n == nil {
		return true
	}
	switch n.Kind {
	case All:
		if n.Label == ast.KindEmpty {
			return true
		}
		if n.Label == ast.KindSeq {
			for _, c := range n.Children {
				if !Nullable(c) {
					return false
				}
			}
			return true
		}
		return false // generates exactly one node
	case Any:
		for _, c := range n.Children {
			if Nullable(c) {
				return true
			}
		}
		return false
	case Opt, Multi:
		return true
	}
	return false
}

// Path addresses a node by child indexes from the root.
type Path []int

// Clone copies the path.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

func (p Path) String() string {
	if len(p) == 0 {
		return "/"
	}
	var b strings.Builder
	for _, i := range p {
		fmt.Fprintf(&b, "/%d", i)
	}
	return b.String()
}

// At returns the node at path p, or nil if p leaves the tree.
func At(root *Node, p Path) *Node {
	n := root
	for _, i := range p {
		if n == nil || i < 0 || i >= len(n.Children) {
			return nil
		}
		n = n.Children[i]
	}
	return n
}

// WalkPath visits every node with its path in pre-order; returning false
// from fn prunes the node's subtree. The Path handed to fn shares one
// backing buffer across the whole walk and is valid only for the duration
// of the call: callers that retain it must Clone.
func WalkPath(root *Node, fn func(*Node, Path) bool) {
	var buf [16]int
	p := Path(buf[:0])
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil || !fn(n, p) {
			return
		}
		for i, c := range n.Children {
			p = append(p, i)
			rec(c)
			p = p[:len(p)-1]
		}
	}
	rec(root)
}

// ChoicePaths returns the paths of all choice nodes in pre-order.
func ChoicePaths(root *Node) []Path {
	var out []Path
	WalkPath(root, func(n *Node, p Path) bool {
		if n.Kind.IsChoice() {
			out = append(out, p.Clone())
		}
		return true
	})
	return out
}

// String renders the difftree in the paper's notation, e.g.
// ANY[ALL(Select)[...] ...]; for debugging and tests.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	switch n.Kind {
	case All:
		b.WriteString(n.Label.String())
		if n.Value != "" {
			b.WriteByte(':')
			b.WriteString(n.Value)
		}
	default:
		b.WriteString(n.Kind.String())
	}
	if len(n.Children) > 0 {
		b.WriteByte('[')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.write(b)
		}
		b.WriteByte(']')
	}
}
