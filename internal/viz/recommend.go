// Package viz is the automatic visualization substrate the paper leverages
// ("we leverage existing automatic visualization techniques that recommend
// visualizations based on a dataset", citing Show Me and plotly): a
// rule-based recommender that picks a chart type for a query result, plus a
// plain-text renderer so examples can show the live result under the
// generated widgets.
package viz

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// ChartType enumerates the recommendable visualizations.
type ChartType uint8

// Chart types in Show Me's spirit: single values, distributions of one
// numeric column, category/value bars, numeric scatter, and tables as the
// fallback.
const (
	BigNumber ChartType = iota
	Histogram
	Bar
	Scatter
	TableChart
)

func (t ChartType) String() string {
	switch t {
	case BigNumber:
		return "big-number"
	case Histogram:
		return "histogram"
	case Bar:
		return "bar"
	case Scatter:
		return "scatter"
	case TableChart:
		return "table"
	}
	return "chart?"
}

// Spec is a recommended visualization.
type Spec struct {
	Type ChartType
	X, Y string // column bindings (empty when unused)
}

// Recommend picks a chart for a query result following Show Me-style rules:
//
//   - a 1x1 aggregate → big number
//   - one categorical + one numeric column → bar
//   - two numeric columns → scatter
//   - one numeric column → histogram
//   - anything else → table
func Recommend(r *engine.Result) Spec {
	if r == nil || len(r.Cols) == 0 {
		return Spec{Type: TableChart}
	}
	if r.Aggregate && len(r.Cols) == 1 && len(r.Rows) == 1 {
		return Spec{Type: BigNumber, Y: r.Cols[0]}
	}
	numeric, categorical := classify(r)
	switch {
	case len(categorical) >= 1 && len(numeric) >= 1:
		return Spec{Type: Bar, X: categorical[0], Y: numeric[0]}
	case len(numeric) >= 2:
		return Spec{Type: Scatter, X: numeric[0], Y: numeric[1]}
	case len(numeric) == 1 && len(r.Cols) == 1:
		return Spec{Type: Histogram, X: numeric[0]}
	default:
		return Spec{Type: TableChart}
	}
}

func classify(r *engine.Result) (numeric, categorical []string) {
	for i, c := range r.Cols {
		t := engine.String
		if i < len(r.ColTypes) {
			t = r.ColTypes[i]
		}
		if t == engine.Int || t == engine.Float {
			numeric = append(numeric, c)
		} else {
			categorical = append(categorical, c)
		}
	}
	return numeric, categorical
}

// Render draws the recommended chart as plain text (the examples' stand-in
// for the paper's plotly output). Tables and charts are truncated to
// maxRows rows.
func Render(r *engine.Result, spec Spec, maxRows int) string {
	if r == nil {
		return "(no result)\n"
	}
	var b strings.Builder
	switch spec.Type {
	case BigNumber:
		fmt.Fprintf(&b, "┌────────────┐\n│ %s = %s\n└────────────┘\n", spec.Y, cellOrEmpty(r, 0, 0))
	case Bar:
		renderBars(&b, r, spec, maxRows)
	case Histogram:
		renderHistogram(&b, r, spec, maxRows)
	default:
		renderTable(&b, r, maxRows)
	}
	return b.String()
}

func cellOrEmpty(r *engine.Result, row, col int) string {
	if row < len(r.Rows) && col < len(r.Rows[row]) {
		return r.Rows[row][col]
	}
	return ""
}

func colIndex(r *engine.Result, name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

const barWidth = 32

func renderBars(b *strings.Builder, r *engine.Result, spec Spec, maxRows int) {
	xi, yi := colIndex(r, spec.X), colIndex(r, spec.Y)
	if xi < 0 || yi < 0 {
		renderTable(b, r, maxRows)
		return
	}
	maxV := 0.0
	n := len(r.Rows)
	if n > maxRows {
		n = maxRows
	}
	for _, row := range r.Rows[:n] {
		if v, err := strconv.ParseFloat(row[yi], 64); err == nil && v > maxV {
			maxV = v
		}
	}
	for _, row := range r.Rows[:n] {
		v, _ := strconv.ParseFloat(row[yi], 64)
		w := 0
		if maxV > 0 {
			w = int(v / maxV * barWidth)
		}
		fmt.Fprintf(b, "%-12s │%s %s\n", trunc(row[xi], 12), strings.Repeat("█", w), row[yi])
	}
}

func renderHistogram(b *strings.Builder, r *engine.Result, spec Spec, maxRows int) {
	xi := colIndex(r, spec.X)
	if xi < 0 || len(r.Rows) == 0 {
		renderTable(b, r, maxRows)
		return
	}
	const bins = 8
	lo, hi := 0.0, 0.0
	first := true
	var vals []float64
	for _, row := range r.Rows {
		v, err := strconv.ParseFloat(row[xi], 64)
		if err != nil {
			continue
		}
		vals = append(vals, v)
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	if len(vals) == 0 || hi == lo {
		renderTable(b, r, maxRows)
		return
	}
	counts := make([]int, bins)
	for _, v := range vals {
		i := int((v - lo) / (hi - lo) * bins)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		blo := lo + float64(i)*(hi-lo)/bins
		w := 0
		if maxC > 0 {
			w = c * barWidth / maxC
		}
		fmt.Fprintf(b, "%8.2f │%s %d\n", blo, strings.Repeat("█", w), c)
	}
}

func renderTable(b *strings.Builder, r *engine.Result, maxRows int) {
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	n := len(r.Rows)
	if n > maxRows {
		n = maxRows
	}
	for _, row := range r.Rows[:n] {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range r.Cols {
		fmt.Fprintf(b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Cols {
		b.WriteString(strings.Repeat("─", widths[i]) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range r.Rows[:n] {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(r.Rows) > n {
		fmt.Fprintf(b, "… %d more rows\n", len(r.Rows)-n)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
