package viz

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/sqlparser"
)

func TestRecommendBigNumber(t *testing.T) {
	r := &engine.Result{Cols: []string{"count(*)"}, ColTypes: []engine.ColType{engine.Float},
		Rows: [][]string{{"42"}}, Aggregate: true}
	spec := Recommend(r)
	if spec.Type != BigNumber || spec.Y != "count(*)" {
		t.Errorf("spec = %+v", spec)
	}
	out := Render(r, spec, 10)
	if !strings.Contains(out, "42") {
		t.Errorf("render: %s", out)
	}
}

func TestRecommendBar(t *testing.T) {
	r := &engine.Result{
		Cols:      []string{"class", "count(*)"},
		ColTypes:  []engine.ColType{engine.String, engine.Float},
		Rows:      [][]string{{"A", "4"}, {"B", "2"}},
		Aggregate: true,
	}
	spec := Recommend(r)
	if spec.Type != Bar || spec.X != "class" || spec.Y != "count(*)" {
		t.Errorf("spec = %+v", spec)
	}
	out := Render(r, spec, 10)
	if !strings.Contains(out, "█") || !strings.Contains(out, "A") {
		t.Errorf("bar render: %s", out)
	}
}

func TestRecommendScatter(t *testing.T) {
	r := &engine.Result{
		Cols:     []string{"u", "g"},
		ColTypes: []engine.ColType{engine.Float, engine.Float},
		Rows:     [][]string{{"1", "2"}},
	}
	spec := Recommend(r)
	if spec.Type != Scatter || spec.X != "u" || spec.Y != "g" {
		t.Errorf("spec = %+v", spec)
	}
}

func TestRecommendHistogram(t *testing.T) {
	r := &engine.Result{
		Cols:     []string{"u"},
		ColTypes: []engine.ColType{engine.Float},
		Rows:     [][]string{{"1"}, {"2"}, {"3"}, {"9"}},
	}
	spec := Recommend(r)
	if spec.Type != Histogram || spec.X != "u" {
		t.Errorf("spec = %+v", spec)
	}
	out := Render(r, spec, 10)
	if !strings.Contains(out, "│") {
		t.Errorf("hist render: %s", out)
	}
	// Degenerate (all equal) histograms fall back to a table.
	flat := &engine.Result{Cols: []string{"u"}, ColTypes: []engine.ColType{engine.Float},
		Rows: [][]string{{"5"}, {"5"}}}
	if !strings.Contains(Render(flat, Recommend(flat), 10), "u") {
		t.Error("flat histogram should render something")
	}
}

func TestRecommendTableFallback(t *testing.T) {
	r := &engine.Result{
		Cols:     []string{"name", "class"},
		ColTypes: []engine.ColType{engine.String, engine.String},
		Rows:     [][]string{{"M31", "A"}},
	}
	if spec := Recommend(r); spec.Type != TableChart {
		t.Errorf("spec = %+v", spec)
	}
	if Recommend(nil).Type != TableChart {
		t.Error("nil result → table")
	}
	if Recommend(&engine.Result{}).Type != TableChart {
		t.Error("empty result → table")
	}
}

func TestRenderTableTruncation(t *testing.T) {
	rows := make([][]string, 30)
	for i := range rows {
		rows[i] = []string{"x", "y"}
	}
	r := &engine.Result{Cols: []string{"a", "b"}, ColTypes: []engine.ColType{engine.String, engine.String}, Rows: rows}
	out := Render(r, Spec{Type: TableChart}, 5)
	if !strings.Contains(out, "25 more rows") {
		t.Errorf("truncation note missing:\n%s", out)
	}
}

func TestRenderNil(t *testing.T) {
	if !strings.Contains(Render(nil, Spec{}, 5), "no result") {
		t.Error("nil render")
	}
}

func TestChartTypeString(t *testing.T) {
	names := map[ChartType]string{
		BigNumber: "big-number", Histogram: "histogram", Bar: "bar",
		Scatter: "scatter", TableChart: "table",
	}
	for ct, want := range names {
		if ct.String() != want {
			t.Errorf("%d = %s", ct, ct.String())
		}
	}
	if ChartType(99).String() != "chart?" {
		t.Error("unknown chart type")
	}
}

func TestTrunc(t *testing.T) {
	if trunc("short", 10) != "short" {
		t.Error("no-op trunc")
	}
	if got := trunc("averylongvalue", 6); len(got) != 8 { // 5 bytes + 3-byte ellipsis
		t.Errorf("trunc = %q", got)
	}
}

func TestEndToEndWithEngine(t *testing.T) {
	db := engine.SDSSDB(50, 1)
	q := "select count(*) from stars where u between 0 and 30"
	res, err := engine.Exec(db, mustParse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	spec := Recommend(res)
	if spec.Type != BigNumber {
		t.Errorf("count query should be a big number, got %s", spec.Type)
	}
	if Render(res, spec, 5) == "" {
		t.Error("empty render")
	}
}

func mustParse(t testing.TB, q string) *ast.Node {
	t.Helper()
	return sqlparser.MustParse(q)
}
