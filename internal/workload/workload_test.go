package workload

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/sqlparser"
)

func TestSDSSLogMatchesListing1(t *testing.T) {
	log := SDSSLog()
	if len(log) != 10 {
		t.Fatalf("Listing 1 has 10 queries, got %d", len(log))
	}
	// Query 1: select top 10 objid from stars where ...
	q1 := log[0]
	if q1.ChildOfKind(ast.KindTop).Value != "10" {
		t.Error("q1 TOP wrong")
	}
	if q1.ChildOfKind(ast.KindFrom).Children[0].Value != "stars" {
		t.Error("q1 table wrong")
	}
	// Query 4: count(*) aggregate, no TOP.
	q4 := log[3]
	if q4.ChildOfKind(ast.KindTop) != nil {
		t.Error("q4 has no TOP")
	}
	if q4.ChildOfKind(ast.KindProject).Children[0].Kind != ast.KindFuncExpr {
		t.Error("q4 should project count(*)")
	}
	// All queries share the WHERE structure: And of 4 Betweens.
	for i, q := range log {
		where := q.ChildOfKind(ast.KindWhere)
		if where == nil {
			t.Fatalf("q%d missing WHERE", i+1)
		}
		and := where.Children[0]
		if and.Kind != ast.KindAnd || len(and.Children) != 4 {
			t.Fatalf("q%d WHERE shape wrong: %s", i+1, and)
		}
		for _, c := range and.Children {
			if c.Kind != ast.KindBetween {
				t.Fatalf("q%d conjunct not BETWEEN", i+1)
			}
		}
	}
	// Queries 6-8 share identical WHERE clauses (Figure 6(c) precondition).
	w6 := log[5].ChildOfKind(ast.KindWhere)
	for _, i := range []int{6, 7} {
		if !ast.Equal(w6, log[i].ChildOfKind(ast.KindWhere)) {
			t.Errorf("q6 and q%d WHERE differ", i+1)
		}
	}
	// Query 2's literals differ from query 1's (printed in Listing 1).
	if ast.Equal(log[0].ChildOfKind(ast.KindWhere), log[1].ChildOfKind(ast.KindWhere)) {
		t.Error("q1 and q2 WHERE should differ")
	}
	// All ten queries are distinct.
	if len(ast.Dedup(log)) != 10 {
		t.Error("queries must be distinct")
	}
}

func TestSDSSLogRoundTrips(t *testing.T) {
	for i, src := range SDSSLogSQL() {
		n, err := sqlparser.Parse(src)
		if err != nil {
			t.Fatalf("q%d: %v", i+1, err)
		}
		if !ast.Equal(n, sqlparser.MustParse(sqlparser.Render(n))) {
			t.Errorf("q%d does not round-trip", i+1)
		}
	}
}

func TestSDSSSubset(t *testing.T) {
	sub := SDSSSubset(6, 8)
	if len(sub) != 3 {
		t.Fatalf("subset 6-8 = %d queries", len(sub))
	}
	tops := []string{"10", "100", "1000"}
	for i, q := range sub {
		if q.ChildOfKind(ast.KindTop).Value != tops[i] {
			t.Errorf("query %d TOP = %v", 6+i, q.ChildOfKind(ast.KindTop))
		}
	}
	if SDSSSubset(8, 6) != nil {
		t.Error("inverted range should be empty")
	}
	if len(SDSSSubset(-3, 99)) != 10 {
		t.Error("clamping failed")
	}
}

func TestPaperFigure1Log(t *testing.T) {
	log := PaperFigure1Log()
	if len(log) != 3 {
		t.Fatal("figure 1 has 3 queries")
	}
	if log[2].ChildOfKind(ast.KindWhere) != nil {
		t.Error("q3 has no WHERE")
	}
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Error("initial difftree must express the log")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != cfg.Queries {
		t.Fatalf("generated %d queries", len(a))
	}
	for i := range a {
		if !ast.Equal(a[i], b[i]) {
			t.Fatal("same seed must generate the same log")
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Generate(cfg2)
	same := true
	for i := range a {
		if !ast.Equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := GenConfig{Queries: 30, Tables: 2, Projections: 3, TopValues: 2,
		Predicates: 3, PredColumns: 3, LiteralVars: 2, OptWhere: true, Seed: 7}
	log := Generate(cfg)
	sawWhere, sawNoWhere, sawTop, sawCount := false, false, false, false
	for _, q := range log {
		if q.Kind != ast.KindSelect {
			t.Fatal("non-select generated")
		}
		if w := q.ChildOfKind(ast.KindWhere); w != nil {
			sawWhere = true
			and := w.Children[0]
			if and.Kind != ast.KindAnd || len(and.Children) != 3 {
				t.Fatalf("predicate count wrong: %s", and)
			}
		} else {
			sawNoWhere = true
		}
		if q.ChildOfKind(ast.KindTop) != nil {
			sawTop = true
		}
		if p := q.ChildOfKind(ast.KindProject); p.Children[0].Kind == ast.KindFuncExpr {
			sawCount = true
		}
	}
	if !sawWhere || !sawNoWhere {
		t.Error("OptWhere should yield both shapes")
	}
	if !sawTop || !sawCount {
		t.Error("generator should produce TOP and count(*) variants")
	}
	// The whole log must be expressible from its initial difftree.
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Error("generated log inexpressible from initial state")
	}
}

func TestGenerateEdges(t *testing.T) {
	if Generate(GenConfig{Queries: 0}) != nil {
		t.Error("zero queries → nil")
	}
	one := Generate(GenConfig{Queries: 1, Tables: 1, Projections: 1, Seed: 1})
	if len(one) != 1 {
		t.Error("single query generation failed")
	}
	// No predicates → no WHERE.
	noPred := Generate(GenConfig{Queries: 5, Tables: 1, Projections: 2, Predicates: 0, Seed: 3})
	for _, q := range noPred {
		if q.ChildOfKind(ast.KindWhere) != nil {
			t.Error("Predicates=0 must not emit WHERE")
		}
	}
}
