// Package workload provides the paper's evaluation inputs: the Sloan
// Digital Sky Survey query log of Listing 1 and a parameterized synthetic
// log generator for scaling and ablation experiments.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// sdssWhere is the WHERE clause shared by the SDSS queries. The paper prints
// queries 1–2 in full and notes "All queries have the same WHERE clause
// structure"; we reuse query 1's literals for queries 3–10 (so, as the paper
// observes for Figure 6(c), queries 6–8 have identical WHERE clauses).
const sdssWhere = "u between 0 and 30 and g between 0 and 30 and r between 0 and 30 and i between 0 and 30"

// sdssWhere2 is query 2's distinct literal pattern, printed in Listing 1.
const sdssWhere2 = "u between 1 and 29 and g between 10 and 30 and r between 9 and 30 and i between 3 and 28"

// SDSSLogSQL returns the ten queries of the paper's Listing 1 as SQL text.
func SDSSLogSQL() []string {
	return []string{
		"select top 10 objid from stars where " + sdssWhere,
		"select top 100 objid from galaxies where " + sdssWhere2,
		"select top 1000 objid from quasars where " + sdssWhere,
		"select count(*) from stars where " + sdssWhere,
		"select objid from galaxies where " + sdssWhere,
		"select top 10 objid from quasars where " + sdssWhere,
		"select top 100 objid from stars where " + sdssWhere,
		"select top 1000 objid from galaxies where " + sdssWhere,
		"select count(*) from quasars where " + sdssWhere,
		"select objid from stars where " + sdssWhere,
	}
}

// SDSSLog parses Listing 1 into ASTs.
func SDSSLog() []*ast.Node {
	srcs := SDSSLogSQL()
	out := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

// SDSSSubset returns queries lo..hi (1-based, inclusive) of Listing 1;
// Figure 6(c) uses queries 6–8.
func SDSSSubset(lo, hi int) []*ast.Node {
	all := SDSSLog()
	if lo < 1 {
		lo = 1
	}
	if hi > len(all) {
		hi = len(all)
	}
	if lo > hi {
		return nil
	}
	return all[lo-1 : hi]
}

// PaperFigure1Log returns the three-query log of the paper's Figure 1.
func PaperFigure1Log() []*ast.Node {
	return mustParseAll(
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales WHERE cty = EUR",
		"SELECT Costs FROM sales",
	)
}

func mustParseAll(srcs ...string) []*ast.Node {
	out := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

// GenConfig parameterizes the synthetic log generator.
type GenConfig struct {
	Queries     int   // number of queries in the log
	Tables      int   // distinct tables drawn from
	Projections int   // distinct projection attributes
	TopValues   int   // distinct TOP row counts (0 disables TOP)
	Predicates  int   // BETWEEN conjuncts per query
	PredColumns int   // distinct predicate columns
	LiteralVars int   // distinct literal patterns per predicate column
	OptWhere    bool  // some queries drop the WHERE clause entirely
	Seed        int64 // determinism

	// Multi-table knobs; all zero values reproduce the single-table
	// generator bit-for-bit (no extra rng draws are made).
	JoinTables    int  // distinct join-partner tables; > 0 adds a join step to most queries
	LeftJoins     bool // mix LEFT JOIN into the join steps
	UnionBranches int  // > 1: some queries become UNION chains of up to this many branches
	Subqueries    bool // some WHERE clauses gain an IN (SELECT ...) conjunct
}

// DefaultGenConfig mirrors the SDSS log's scale.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Queries:     10,
		Tables:      3,
		Projections: 2,
		TopValues:   3,
		Predicates:  4,
		PredColumns: 4,
		LiteralVars: 1,
		OptWhere:    false,
		Seed:        1,
	}
}

// Generate produces a deterministic synthetic query log in the SDSS style:
// SELECT [TOP n] attr FROM table WHERE col BETWEEN lo AND hi AND ..., with
// the multi-table knobs adding join steps, IN-subquery conjuncts, and UNION
// chains on top of the same core shape.
func Generate(cfg GenConfig) []*ast.Node {
	if cfg.Queries <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tables := nameList("t", max(1, cfg.Tables))
	projs := nameList("attr", max(1, cfg.Projections))
	cols := nameList("c", max(1, cfg.PredColumns))
	joins := nameList("j", cfg.JoinTables)

	genSelect := func(b *strings.Builder) {
		b.WriteString("select ")
		if cfg.TopValues > 0 && rng.Intn(4) != 0 {
			b.WriteString(fmt.Sprintf("top %d ", int(math.Pow10(1+rng.Intn(cfg.TopValues)))))
		}
		if rng.Intn(5) == 0 {
			b.WriteString("count(*)")
		} else {
			b.WriteString(projs[rng.Intn(len(projs))])
		}
		b.WriteString(" from ")
		b.WriteString(tables[rng.Intn(len(tables))])
		if len(joins) > 0 && rng.Intn(4) != 0 {
			kind := "inner"
			if cfg.LeftJoins && rng.Intn(3) == 0 {
				kind = "left"
			}
			fmt.Fprintf(b, " %s join %s on %s = %s", kind, joins[rng.Intn(len(joins))], cols[0], cols[0])
		}
		if cfg.Predicates > 0 && (!cfg.OptWhere || rng.Intn(3) != 0) {
			b.WriteString(" where ")
			for p := 0; p < cfg.Predicates; p++ {
				if p > 0 {
					b.WriteString(" and ")
				}
				col := cols[(p+rng.Intn(max(1, cfg.PredColumns)))%len(cols)]
				variant := rng.Intn(max(1, cfg.LiteralVars))
				lo := variant
				hi := 30 - variant
				fmt.Fprintf(b, "%s between %d and %d", col, lo, hi)
			}
			if cfg.Subqueries && rng.Intn(3) == 0 {
				fmt.Fprintf(b, " and %s in (select %s from %s where %s between 0 and 30)",
					cols[0], cols[0], tables[rng.Intn(len(tables))], cols[len(cols)-1])
			}
		}
	}

	var out []*ast.Node
	for i := 0; i < cfg.Queries; i++ {
		var b strings.Builder
		genSelect(&b)
		if cfg.UnionBranches > 1 && rng.Intn(3) == 0 {
			for n := 1 + rng.Intn(cfg.UnionBranches-1); n > 0; n-- {
				b.WriteString(" union ")
				genSelect(&b)
			}
		}
		out = append(out, sqlparser.MustParse(b.String()))
	}
	return out
}

func nameList(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return out
}
