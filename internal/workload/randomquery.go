package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// RandomQuerySQL builds one random query over the full supported grammar
// (aggregates, DISTINCT, WHERE trees with AND/OR/NOT/IN/LIKE/BETWEEN,
// GROUP BY, ORDER BY, TOP, LIMIT). It is the input generator for the
// property-based tests: every string it returns must parse, and the
// parse/render round trip must be a fixed point.
func RandomQuerySQL(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("select ")
	if rng.Intn(6) == 0 {
		b.WriteString("distinct ")
	}
	if rng.Intn(4) == 0 {
		fmt.Fprintf(&b, "top %d ", 1+rng.Intn(1000))
	}

	cols := []string{"a", "b", "c", "objid", "u", "g"}
	aggs := []string{"count", "sum", "avg", "min", "max"}
	nItems := 1 + rng.Intn(3)
	grouped := rng.Intn(3) == 0
	var groupCols []string
	for i := 0; i < nItems; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case grouped && i == 0:
			col := cols[rng.Intn(len(cols))]
			groupCols = append(groupCols, col)
			b.WriteString(col)
		case rng.Intn(3) == 0:
			agg := aggs[rng.Intn(len(aggs))]
			if agg == "count" && rng.Intn(2) == 0 {
				b.WriteString("count(*)")
			} else {
				fmt.Fprintf(&b, "%s(%s)", agg, cols[rng.Intn(len(cols))])
			}
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, " as alias%d", i)
			}
		default:
			if grouped {
				// Non-aggregate items must be group columns.
				col := groupCols[0]
				b.WriteString(col)
			} else {
				b.WriteString(cols[rng.Intn(len(cols))])
			}
		}
	}

	tables := []string{"t1", "stars", "galaxies"}
	fmt.Fprintf(&b, " from %s", tables[rng.Intn(len(tables))])

	if rng.Intn(3) != 0 {
		b.WriteString(" where ")
		writePred(&b, rng, 2)
	}
	if grouped {
		fmt.Fprintf(&b, " group by %s", strings.Join(groupCols, ", "))
	}
	if rng.Intn(4) == 0 {
		dir := ""
		if rng.Intn(2) == 0 {
			dir = " desc"
		}
		fmt.Fprintf(&b, " order by %s%s", cols[rng.Intn(len(cols))], dir)
	}
	if rng.Intn(5) == 0 {
		fmt.Fprintf(&b, " limit %d", 1+rng.Intn(100))
	}
	return b.String()
}

func writePred(b *strings.Builder, rng *rand.Rand, depth int) {
	cols := []string{"a", "b", "u", "g"}
	col := cols[rng.Intn(len(cols))]
	switch choice := rng.Intn(8); {
	case choice == 0 && depth > 0:
		b.WriteString("(")
		writePred(b, rng, depth-1)
		b.WriteString(" or ")
		writePred(b, rng, depth-1)
		b.WriteString(")")
	case choice == 1 && depth > 0:
		writePred(b, rng, depth-1)
		b.WriteString(" and ")
		writePred(b, rng, depth-1)
	case choice == 2 && depth > 0:
		b.WriteString("not ")
		// NOT binds a single predicate; recurse at depth 0 to avoid
		// needing parentheses.
		writePred(b, rng, 0)
	case choice == 3:
		fmt.Fprintf(b, "%s between %d and %d", col, rng.Intn(10), 10+rng.Intn(30))
	case choice == 4:
		n := 1 + rng.Intn(3)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("%d", rng.Intn(100))
		}
		fmt.Fprintf(b, "%s in (%s)", col, strings.Join(vals, ", "))
	case choice == 5:
		fmt.Fprintf(b, "name like 'M%d%%'", rng.Intn(10))
	default:
		ops := []string{"=", "<", ">", "<=", ">=", "!="}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(b, "%s %s '%s'", col, ops[rng.Intn(len(ops))], []string{"USA", "EUR", "x y"}[rng.Intn(3)])
		} else {
			fmt.Fprintf(b, "%s %s %g", col, ops[rng.Intn(len(ops))], float64(rng.Intn(200))/4)
		}
	}
}

// RandomQuery parses RandomQuerySQL; it panics if the generator emits an
// unparsable query (a generator bug, caught by the property tests).
func RandomQuery(rng *rand.Rand) *ast.Node {
	return sqlparser.MustParse(RandomQuerySQL(rng))
}

// RandomLog builds a log of n random queries sharing some structure: it
// mutates a base query's literals/clauses with probability, so logs look
// like real analysis sessions rather than unrelated queries.
func RandomLog(rng *rand.Rand, n int) []*ast.Node {
	if n <= 0 {
		return nil
	}
	out := make([]*ast.Node, 0, n)
	base := RandomQuery(rng)
	out = append(out, base)
	for len(out) < n {
		if rng.Intn(3) == 0 {
			out = append(out, RandomQuery(rng))
			continue
		}
		out = append(out, mutate(base.Clone(), rng))
	}
	return out
}

// mutate tweaks one random leaf literal of the query.
func mutate(q *ast.Node, rng *rand.Rand) *ast.Node {
	leaves := ast.Leaves(q, nil)
	var lits []*ast.Node
	for _, l := range leaves {
		if l.Kind == ast.KindNumExpr || l.Kind == ast.KindStrExpr || l.Kind == ast.KindColExpr {
			lits = append(lits, l)
		}
	}
	if len(lits) == 0 {
		return q
	}
	l := lits[rng.Intn(len(lits))]
	switch l.Kind {
	case ast.KindNumExpr:
		l.Value = fmt.Sprintf("%d", rng.Intn(500))
	case ast.KindStrExpr:
		l.Value = []string{"USA", "EUR", "APAC"}[rng.Intn(3)]
	case ast.KindColExpr:
		l.Value = []string{"a", "b", "c", "u"}[rng.Intn(4)]
	}
	return q
}
