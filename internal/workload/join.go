// Multi-table workloads: the SDSS-style join log and random query
// generators over the extended grammar (JOIN chains, UNION, IN/EXISTS
// subqueries), mirroring the single-table generators in sdss.go and
// randomquery.go.

package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// SDSSJoinLogSQL returns an SDSS-style multi-table session: photometric
// tables joined against the spectroscopic tables of engine.SDSSDB (specobj,
// photoz), IN-subquery variants of the same analysis, and UNION queries
// combining photometric tables. Like Listing 1, consecutive queries differ
// in one or two positions (TOP count, table, join partner, join kind,
// subquery bound, union branch), which is what makes the log factorable
// into a compact linked-widget interface.
func SDSSJoinLogSQL() []string {
	return []string{
		// Join block: vary TOP, photometric table, join partner, join kind.
		"select top 10 objid from stars inner join specobj on objid = objid where " + sdssWhere,
		"select top 100 objid from stars inner join specobj on objid = objid where " + sdssWhere,
		"select top 100 objid from galaxies inner join specobj on objid = objid where " + sdssWhere,
		"select top 100 objid from galaxies inner join photoz on objid = objid where " + sdssWhere,
		"select top 100 objid from galaxies left join photoz on objid = objid where " + sdssWhere,
		"select top 10 objid from quasars left join photoz on objid = objid where " + sdssWhere,
		// Subquery block: vary the table and the spectroscopic redshift bound.
		"select objid from stars where objid in (select objid from specobj where redshift between 0 and 3)",
		"select objid from galaxies where objid in (select objid from specobj where redshift between 0 and 3)",
		"select objid from galaxies where objid in (select objid from specobj where redshift between 0 and 5)",
		"select objid from quasars where objid in (select objid from specobj where redshift between 0 and 5)",
		// Union block: vary TOP and the second branch's table.
		"select top 10 objid from stars union select top 10 objid from galaxies",
		"select top 100 objid from stars union select top 100 objid from galaxies",
		"select top 100 objid from stars union select top 100 objid from quasars",
		"select top 1000 objid from stars union select top 1000 objid from quasars",
	}
}

// SDSSJoinLog parses the multi-table session into ASTs.
func SDSSJoinLog() []*ast.Node {
	srcs := SDSSJoinLogSQL()
	out := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

// SDSSJoinSubset returns queries lo..hi (1-based, inclusive) of the join
// log, like SDSSSubset for Listing 1. Queries 1–6 are the pure join block —
// the sub-session whose optimal interface is a fully factored table /
// join-partner / TOP widget panel rather than a whole-query picker.
func SDSSJoinSubset(lo, hi int) []*ast.Node {
	all := SDSSJoinLog()
	if lo < 1 {
		lo = 1
	}
	if hi > len(all) {
		hi = len(all)
	}
	if lo > hi {
		return nil
	}
	return all[lo-1 : hi]
}

// RandomJoinQuerySQL builds one random query over the full multi-table
// grammar: the single-table generator's SELECT core extended with join
// chains, IN/EXISTS subqueries, and UNION/UNION ALL combinations. Every
// string it returns must parse, and the parse/render round trip must be a
// fixed point (property-tested).
func RandomJoinQuerySQL(rng *rand.Rand) string {
	sel := randomJoinSelect(rng)
	// One in three queries is a union chain; one connective per chain.
	if rng.Intn(3) != 0 {
		return sel
	}
	op := " union "
	if rng.Intn(2) == 0 {
		op = " union all "
	}
	branches := []string{sel}
	for n := 1 + rng.Intn(2); n > 0; n-- {
		branches = append(branches, randomJoinSelect(rng))
	}
	return strings.Join(branches, op)
}

// randomJoinSelect emits one SELECT with optional join steps and subquery
// predicates.
func randomJoinSelect(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("select ")
	if rng.Intn(5) == 0 {
		fmt.Fprintf(&b, "top %d ", 1+rng.Intn(1000))
	}
	cols := []string{"objid", "u", "g", "class"}
	if rng.Intn(4) == 0 {
		b.WriteString("count(*)")
	} else {
		b.WriteString(cols[rng.Intn(len(cols))])
	}

	tables := []string{"stars", "galaxies", "quasars"}
	partners := []string{"specobj", "photoz"}
	fmt.Fprintf(&b, " from %s", tables[rng.Intn(len(tables))])
	for n := rng.Intn(3); n > 0; n-- {
		kind := "inner"
		if rng.Intn(3) == 0 {
			kind = "left"
		}
		fmt.Fprintf(&b, " %s join %s on objid = objid", kind, partners[rng.Intn(len(partners))])
		if rng.Intn(4) == 0 {
			b.WriteString(" and u = g")
		}
	}

	if rng.Intn(3) != 0 {
		b.WriteString(" where ")
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "objid in (select objid from specobj where redshift between 0 and %d)", 1+rng.Intn(5))
		case 1:
			fmt.Fprintf(&b, "exists (select objid from photoz where zphot > %d)", rng.Intn(4))
		default:
			writePred(&b, rng, 2)
		}
	}
	return b.String()
}

// RandomJoinQuery parses RandomJoinQuerySQL; it panics if the generator
// emits an unparsable query (a generator bug, caught by the property tests).
func RandomJoinQuery(rng *rand.Rand) *ast.Node {
	return sqlparser.MustParse(RandomJoinQuerySQL(rng))
}

// RandomJoinLog builds a log of n random multi-table queries sharing some
// structure, like RandomLog: most entries mutate a base query's literals so
// the log looks like one analysis session.
func RandomJoinLog(rng *rand.Rand, n int) []*ast.Node {
	if n <= 0 {
		return nil
	}
	out := make([]*ast.Node, 0, n)
	base := RandomJoinQuery(rng)
	out = append(out, base)
	for len(out) < n {
		if rng.Intn(3) == 0 {
			out = append(out, RandomJoinQuery(rng))
			continue
		}
		out = append(out, mutate(base.Clone(), rng))
	}
	return out
}
