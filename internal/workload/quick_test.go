package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/sqlparser"
	"repro/internal/testutil"
)

// TestQuickRandomQueryParses: every query the generator emits parses, and
// the parse/render round trip is a fixed point.
func TestQuickRandomQueryParses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5; i++ {
			src := RandomQuerySQL(rng)
			n, err := sqlparser.Parse(src)
			if err != nil {
				t.Logf("unparsable: %q: %v", src, err)
				return false
			}
			rendered := sqlparser.Render(n)
			n2, err := sqlparser.Parse(rendered)
			if err != nil || !ast.Equal(n, n2) {
				t.Logf("round trip broke: %q -> %q", src, rendered)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(112, 100)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomLogExpressible: the initial difftree of any random log
// expresses every query in it.
func TestQuickRandomLogExpressible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := RandomLog(rng, 2+rng.Intn(5))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		return difftree.ExpressibleAll(d, log)
	}
	if err := quick.Check(f, testutil.QuickConfig(113, 60)); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLogShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	log := RandomLog(rng, 8)
	if len(log) != 8 {
		t.Fatalf("len = %d", len(log))
	}
	// Mutated queries mostly share structure with the base query.
	base := log[0]
	shared := 0
	for _, q := range log[1:] {
		if ast.ShapeHash(q) == ast.ShapeHash(base) {
			shared++
		}
	}
	if shared == 0 {
		t.Error("random logs should share structure with their base query")
	}
	if RandomLog(rng, 0) != nil {
		t.Error("zero-length log")
	}
}

func TestMutatePreservesParse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		q := RandomQuery(rng)
		m := mutate(q.Clone(), rng)
		// The mutated query still renders and reparses.
		src := sqlparser.Render(m)
		if _, err := sqlparser.Parse(src); err != nil {
			t.Fatalf("mutated query unparsable: %q: %v", src, err)
		}
	}
}
