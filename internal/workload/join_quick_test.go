package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/rules"
	"repro/internal/sqlparser"
	"repro/internal/testutil"
)

// TestQuickRandomJoinQueryParses: every multi-table query the generator
// emits parses, and the parse/render round trip is a fixed point.
func TestQuickRandomJoinQueryParses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5; i++ {
			src := RandomJoinQuerySQL(rng)
			n, err := sqlparser.Parse(src)
			if err != nil {
				t.Logf("unparsable: %q: %v", src, err)
				return false
			}
			rendered := sqlparser.Render(n)
			n2, err := sqlparser.Parse(rendered)
			if err != nil || !ast.Equal(n, n2) {
				t.Logf("round trip broke: %q -> %q", src, rendered)
				return false
			}
			if r2 := sqlparser.Render(n2); r2 != rendered {
				t.Logf("render not a fixpoint: %q -> %q", rendered, r2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(211, 100)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomJoinLogExpressible: the initial difftree of any random
// multi-table log expresses every query in it (mirrors
// TestQuickRandomLogExpressible over the extended grammar).
func TestQuickRandomJoinLogExpressible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := RandomJoinLog(rng, 2+rng.Intn(4))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		return difftree.ExpressibleAll(d, log)
	}
	if err := quick.Check(f, testutil.QuickConfig(212, 40)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJoinLogRulesPreserveExpressibility: every legal rule move on a
// multi-table log's difftree keeps every query expressible — the grammar
// inversion rules handle the new node kinds, so the search space actually
// explores join chains and union branches.
func TestQuickJoinLogRulesPreserveExpressibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := RandomJoinLog(rng, 2+rng.Intn(3))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		moves := rules.Moves(d, log, rules.All())
		for i, m := range moves {
			if i >= 8 {
				break // bound per-case work; move order is deterministic
			}
			next, err := rules.ApplyMove(d, m)
			if err != nil {
				t.Logf("move %s failed: %v", m, err)
				return false
			}
			if !difftree.ExpressibleAll(next, log) {
				t.Logf("move %s lost a query", m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(213, 15)); err != nil {
		t.Fatal(err)
	}
}

func TestSDSSJoinLogShape(t *testing.T) {
	log := SDSSJoinLog()
	if len(log) != 14 {
		t.Fatalf("len = %d", len(log))
	}
	if got := len(SDSSJoinSubset(1, 6)); got != 6 {
		t.Fatalf("subset len = %d", got)
	}
	joins, unions, subqueries := 0, 0, 0
	for i, q := range log {
		// Round trip like any other workload query.
		src := sqlparser.Render(q)
		q2, err := sqlparser.Parse(src)
		if err != nil || !ast.Equal(q, q2) {
			t.Fatalf("query %d does not round trip: %q", i, src)
		}
		ast.Walk(q, func(n *ast.Node) bool {
			switch n.Kind {
			case ast.KindJoin:
				joins++
			case ast.KindUnion:
				unions++
			case ast.KindSubquery:
				subqueries++
			}
			return true
		})
	}
	if joins == 0 || unions == 0 || subqueries == 0 {
		t.Fatalf("log misses a scenario: joins=%d unions=%d subqueries=%d", joins, unions, subqueries)
	}
	d, err := difftree.Initial(log)
	if err != nil {
		t.Fatal(err)
	}
	if !difftree.ExpressibleAll(d, log) {
		t.Fatal("initial difftree cannot express the join log")
	}
}

// TestGenerateMultiTableKnobs: the knobs emit the new node kinds, stay
// deterministic, and the zero-value knobs reproduce the single-table
// generator exactly.
func TestGenerateMultiTableKnobs(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Queries = 30
	cfg.JoinTables = 2
	cfg.LeftJoins = true
	cfg.UnionBranches = 3
	cfg.Subqueries = true

	log := Generate(cfg)
	joins, unions, subqueries := 0, 0, 0
	for _, q := range log {
		ast.Walk(q, func(n *ast.Node) bool {
			switch n.Kind {
			case ast.KindJoin:
				joins++
			case ast.KindUnion:
				unions++
			case ast.KindSubquery:
				subqueries++
			}
			return true
		})
	}
	if joins == 0 || unions == 0 || subqueries == 0 {
		t.Fatalf("knobs produced joins=%d unions=%d subqueries=%d", joins, unions, subqueries)
	}

	again := Generate(cfg)
	for i := range log {
		if !ast.Equal(log[i], again[i]) {
			t.Fatal("multi-table Generate not deterministic")
		}
	}

	// Zero-value knobs: bit-identical to the pre-extension generator shape.
	plain := DefaultGenConfig()
	plain.Queries = 30
	for _, q := range Generate(plain) {
		ast.Walk(q, func(n *ast.Node) bool {
			if n.Kind == ast.KindJoin || n.Kind == ast.KindUnion || n.Kind == ast.KindSubquery {
				t.Fatalf("single-table config emitted %s", n.Kind)
			}
			return true
		})
	}
}
