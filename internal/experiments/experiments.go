// Package experiments regenerates every figure and claim of the paper's
// evaluation (see DESIGN.md's experiment index). Each experiment returns a
// plain-text report; cmd/experiments prints them and EXPERIMENTS.md records
// the outputs next to the paper's expectations.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/mcts"
	"repro/internal/rules"
	"repro/internal/widgets"
	"repro/internal/workload"
)

// Config tunes experiment scale.
type Config struct {
	Iterations   int   // MCTS iterations per generated interface
	RolloutDepth int   // rollout cap (paper: 200)
	Seed         int64 // base seed
}

// Default returns the settings used for EXPERIMENTS.md.
func Default() Config { return Config{Iterations: 40, RolloutDepth: 12, Seed: 1} }

func (c Config) opts(screen layout.Screen) core.Options {
	return core.Options{
		Screen:       screen,
		Iterations:   c.Iterations,
		RolloutDepth: c.RolloutDepth,
		Seed:         c.Seed,
	}
}

// Fig6a generates the all-queries interface on the wide screen.
func Fig6a(ctx context.Context, cfg Config) string {
	return figure(ctx, cfg, "Figure 6(a): all SDSS queries, wide screen", workload.SDSSLog(), layout.Wide)
}

// Fig6b generates the all-queries interface on the narrow screen.
func Fig6b(ctx context.Context, cfg Config) string {
	return figure(ctx, cfg, "Figure 6(b): all SDSS queries, narrow screen", workload.SDSSLog(), layout.Narrow)
}

// Fig6c generates the interface for SDSS queries 6-8 only.
func Fig6c(ctx context.Context, cfg Config) string {
	return figure(ctx, cfg, "Figure 6(c): SDSS queries 6-8, wide screen", workload.SDSSSubset(6, 8), layout.Wide)
}

func figure(ctx context.Context, cfg Config, title string, log []*ast.Node, screen layout.Screen) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	res, err := core.Generate(ctx, log, cfg.opts(screen))
	if err != nil {
		fmt.Fprintf(&b, "error: %v\n", err)
		return b.String()
	}
	b.WriteString(layout.RenderASCII(res.UI))
	fmt.Fprintf(&b, "cost=%.2f (M=%.2f U=%.2f) widgets=%d bounds=%dx%d screen=%s\n",
		res.Cost.Total(), res.Cost.M, res.Cost.U, res.Cost.Widgets,
		res.Cost.Bounds.W, res.Cost.Bounds.H, screen)
	fmt.Fprintf(&b, "initial-state cost=%.2f  improvement=%.1f%%\n",
		res.Initial.Total(), 100*(1-res.Cost.Total()/res.Initial.Total()))
	fmt.Fprintf(&b, "widget mix: %s\n", widgetMix(res.UI))
	return b.String()
}

func widgetMix(ui *layout.Node) string {
	if ui == nil {
		return "(none)"
	}
	counts := map[string]int{}
	var order []string
	for _, w := range ui.Widgets() {
		k := w.Type.String()
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	var parts []string
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s x%d", k, counts[k]))
	}
	return strings.Join(parts, ", ")
}

// Fig6d contrasts searched interfaces with unsearched random-walk states
// (the paper's "low reward interface ... poor interface choices are easily
// possible").
func Fig6d(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Figure 6(d): low-reward (unsearched) interfaces ==\n")
	log := workload.SDSSLog()
	model := cost.Default(layout.Wide)

	res, err := core.Generate(ctx, log, cfg.opts(layout.Wide))
	if err != nil {
		return err.Error()
	}
	fmt.Fprintf(&b, "searched (MCTS %d iters): cost=%.2f\n", cfg.Iterations, res.Cost.Total())

	for _, steps := range []int{2, 5, 10} {
		worst, sum, n := 0.0, 0.0, 0
		for seed := int64(0); seed < 5; seed++ {
			d, err := core.RandomWalk(log, steps, cfg.Seed+seed*17)
			if err != nil {
				continue
			}
			_, bd, _ := core.BestInterface(d, log, model, 2000, cfg.Seed)
			c := bd.Total()
			if math.IsInf(c, 1) {
				c = 250 // report invalid states at a large finite sentinel
			}
			if c > worst {
				worst = c
			}
			sum += c
			n++
		}
		fmt.Fprintf(&b, "random walk %2d steps (5 seeds): mean cost=%.2f worst=%.2f\n",
			steps, sum/float64(n), worst)
	}
	return b.String()
}

// Fig6e scores a hand-coded replica of the original SDSS search form (all
// textboxes and radio buttons in a flat column, as in the paper's Figure
// 6(e)) under the same cost model, for reference.
func Fig6e(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Figure 6(e): original SDSS form (hand-coded reference) ==\n")
	log := workload.SDSSLog()
	model := cost.Default(layout.Wide)

	base, err := baseline.Build(log, model)
	if err != nil {
		return err.Error()
	}
	// Rebuild the baseline's flat UI with the SDSS form's widget choices:
	// textboxes for every scalar, radio buttons for categorical slots.
	var ws []*layout.Node
	var walk func(n, parent *difftree.Node)
	walk = func(n, parent *difftree.Node) {
		if n.Kind.IsChoice() {
			dom := assign.DomainOf(n, parent)
			t := widgets.Textbox
			if !dom.Scalar || widgets.IsInf(widgets.Appropriateness(widgets.Textbox, dom)) {
				t = widgets.Radio
			}
			if widgets.IsInf(widgets.Appropriateness(t, dom)) {
				t = widgets.Dropdown
			}
			ws = append(ws, layout.NewWidget(t, dom, n))
		}
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	walk(base.DiffTree, nil)
	form := layout.NewBox(widgets.VBox, ws...)
	bd := model.NewEvaluator(base.DiffTree, log).Evaluate(form)

	res, err := core.Generate(ctx, log, cfg.opts(layout.Wide))
	if err != nil {
		return err.Error()
	}
	fmt.Fprintf(&b, "SDSS-form-style (textboxes+radios, flat): cost=%.2f (M=%.2f U=%.2f) widgets=%d\n",
		bd.Total(), bd.M, bd.U, bd.Widgets)
	fmt.Fprintf(&b, "generated (MCTS):                        cost=%.2f (M=%.2f U=%.2f) widgets=%d\n",
		res.Cost.Total(), res.Cost.M, res.Cost.U, res.Cost.Widgets)
	return b.String()
}

// SearchSpace measures the paper's search-space characterization: "The
// fanout is as high as 50, and a search path can be as long as 100 steps."
func SearchSpace(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Search space (paper: fanout up to ~50, paths up to ~100 steps) ==\n")
	log := workload.SDSSLog()
	init, _ := difftree.Initial(log)

	fan := core.Fanout(init, log, rules.All())
	fmt.Fprintf(&b, "initial state: fanout=%d choices=%d size=%d\n",
		fan, init.CountChoice(), init.Size())

	// Walk randomly, recording fanout along the way and how long legal
	// paths can get. Moves that balloon the tree past 4x the initial size
	// are skipped, matching the search's pruning.
	sizeCap := 4 * init.Size()
	maxFan, pathLen := fan, 0
	d := init
	rng := rand.New(rand.NewSource(cfg.Seed))
	for step := 0; step < 100; step++ {
		if ctx.Err() != nil {
			fmt.Fprintf(&b, "(cancelled after %d steps)\n", step)
			break
		}
		moves := rules.Moves(d, log, rules.All())
		if len(moves) > maxFan {
			maxFan = len(moves)
		}
		var candidates []*difftree.Node
		for _, m := range moves {
			next, err := rules.ApplyMove(d, m)
			if err == nil && next.Size() <= sizeCap {
				candidates = append(candidates, next)
			}
		}
		if len(candidates) == 0 {
			break
		}
		d = candidates[rng.Intn(len(candidates))]
		pathLen++
	}
	fmt.Fprintf(&b, "random path: length>=%d (cap 100, states capped at 4x initial size), max fanout seen=%d\n", pathLen, maxFan)
	return b.String()
}

// BudgetSweep traces interface cost against the search budget (the paper
// runs MCTS "for around 1 minute"; we report cost vs iterations and the
// wall-clock each took).
func BudgetSweep(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Cost vs search budget (MCTS) ==\n")
	log := workload.SDSSLog()
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-12s\n", "iterations", "cost", "reward", "elapsed")
	for _, iters := range []int{1, 5, 10, 20, 40} {
		o := cfg.opts(layout.Wide)
		o.Iterations = iters
		start := time.Now()
		res, err := core.Generate(ctx, log, o)
		if err != nil {
			fmt.Fprintf(&b, "%-12d error: %v\n", iters, err)
			continue
		}
		fmt.Fprintf(&b, "%-12d %-10.2f %-10.3f %-12v\n",
			iters, res.Cost.Total(), res.Stats.BestReward, time.Since(start).Round(time.Millisecond))
	}
	return b.String()
}

// BaselineCompare scores the 2017 bottom-up baseline against MCTS on the
// paper's logs.
func BaselineCompare(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Prior work (Zhang et al. 2017 bottom-up) vs MCTS ==\n")
	cases := []struct {
		name string
		log  []*ast.Node
	}{
		{"figure-1 (3 queries)", workload.PaperFigure1Log()},
		{"sdss (10 queries)", workload.SDSSLog()},
		{"sdss 6-8", workload.SDSSSubset(6, 8)},
		{"synthetic (20 queries)", workload.Generate(workload.GenConfig{
			Queries: 20, Tables: 3, Projections: 3, TopValues: 3,
			Predicates: 3, PredColumns: 3, LiteralVars: 2, OptWhere: true, Seed: 5})},
	}
	model := cost.Default(layout.Wide)
	fmt.Fprintf(&b, "%-24s %-22s %-22s\n", "log", "baseline cost (widgets)", "mcts cost (widgets)")
	for _, c := range cases {
		base, err := baseline.Build(c.log, model)
		baseCost, baseW := math.Inf(1), 0
		if err == nil {
			baseCost, baseW = base.Cost.Total(), base.UI.CountWidgets()
		}
		res, err := core.Generate(ctx, c.log, cfg.opts(layout.Wide))
		mctsCost, mctsW := math.Inf(1), 0
		if err == nil {
			mctsCost, mctsW = res.Cost.Total(), res.Cost.Widgets
		}
		fmt.Fprintf(&b, "%-24s %-22s %-22s\n", c.name,
			fmt.Sprintf("%.2f (%d)", baseCost, baseW),
			fmt.Sprintf("%.2f (%d)", mctsCost, mctsW))
	}
	return b.String()
}

// Strategies compares MCTS against random walks, greedy hill climbing, beam
// search, and (on a tiny input) exhaustive enumeration. Every strategy runs
// through the same core.Strategy plumbing the public API exposes, so this
// is also an end-to-end exercise of WithStrategy.
func Strategies(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Search strategies (same cost model and rule set) ==\n")
	log := workload.SDSSLog()

	for _, s := range []core.Strategy{
		core.StrategyMCTS(),
		core.StrategyRandom(6),
		core.StrategyGreedy(),
		core.StrategyBeam(3),
	} {
		o := cfg.opts(layout.Wide)
		o.Strategy = s
		res, err := core.Generate(ctx, log, o)
		if err != nil {
			fmt.Fprintf(&b, "%-12s error: %v\n", s.Name(), err)
			continue
		}
		fmt.Fprintf(&b, "%-12s cost=%-8.2f evals=%d\n", s.Name(), res.Cost.Total(), res.Stats.Evals)
	}

	// Exhaustive on a 2-query log (tiny space) to calibrate optimality.
	tiny := workload.PaperFigure1Log()[:2]
	exOpts := cfg.opts(layout.Wide)
	exOpts.Strategy = core.StrategyExhaustive(4000)
	exOpts.RewardSamples = 1
	ex, err := core.Generate(ctx, tiny, exOpts)
	if err != nil {
		fmt.Fprintf(&b, "tiny log (2 queries): error: %v\n", err)
		return b.String()
	}
	tinyRes, _ := core.Generate(ctx, tiny, cfg.opts(layout.Wide))
	fmt.Fprintf(&b, "tiny log (2 queries): exhaustive=%.2f (complete=%v, states=%d)  mcts=%.2f\n",
		ex.Cost.Total(), ex.Stats.SpaceExhausted, ex.Stats.Expanded, tinyRes.Cost.Total())
	return b.String()
}

// AblationC sweeps the UCT exploration constant.
func AblationC(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Ablation: UCT exploration constant c ==\n")
	log := workload.SDSSLog()
	fmt.Fprintf(&b, "%-8s %-10s %-10s\n", "c", "cost", "reward")
	for _, c := range []float64{0.2, 0.7, math.Sqrt2, 2.5, 5} {
		o := cfg.opts(layout.Wide)
		o.ExplorationC = c
		res, err := core.Generate(ctx, log, o)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%-8.2f %-10.2f %-10.3f\n", c, res.Cost.Total(), res.Stats.BestReward)
	}
	return b.String()
}

// AblationRollout sweeps rollout depth and the reward sample count k.
func AblationRollout(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Ablation: rollout depth and reward samples k ==\n")
	log := workload.SDSSLog()
	fmt.Fprintf(&b, "%-14s %-10s %-12s\n", "rollout depth", "cost", "elapsed")
	for _, depth := range []int{2, 6, 12, 25} {
		o := cfg.opts(layout.Wide)
		o.RolloutDepth = depth
		start := time.Now()
		res, err := core.Generate(ctx, log, o)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%-14d %-10.2f %-12v\n", depth, res.Cost.Total(), time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "%-14s %-10s\n", "k (samples)", "cost")
	for _, k := range []int{1, 3, 5, 10} {
		o := cfg.opts(layout.Wide)
		o.RewardSamples = k
		res, err := core.Generate(ctx, log, o)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%-14d %-10.2f\n", k, res.Cost.Total())
	}
	return b.String()
}

// Scaling sweeps the synthetic log size.
func Scaling(ctx context.Context, cfg Config) string {
	var b strings.Builder
	b.WriteString("== Scaling with log size (synthetic generator) ==\n")
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-10s %-12s\n", "queries", "fanout", "cost", "widgets", "elapsed")
	for _, n := range []int{5, 10, 20} {
		log := workload.Generate(workload.GenConfig{
			Queries: n, Tables: 3, Projections: 3, TopValues: 3,
			Predicates: 3, PredColumns: 3, LiteralVars: 2, OptWhere: true, Seed: 11})
		init, err := difftree.Initial(log)
		if err != nil {
			continue
		}
		fan := core.Fanout(init, log, rules.All())
		start := time.Now()
		res, err := core.Generate(ctx, log, cfg.opts(layout.Wide))
		if err != nil {
			fmt.Fprintf(&b, "%-10d %-10d error: %v\n", n, fan, err)
			continue
		}
		fmt.Fprintf(&b, "%-10d %-10d %-10.2f %-10d %-12v\n",
			n, fan, res.Cost.Total(), res.Cost.Widgets, time.Since(start).Round(time.Millisecond))
	}
	return b.String()
}

// All runs every experiment in DESIGN.md order.
func All(ctx context.Context, cfg Config) string {
	sections := []func(context.Context, Config) string{
		Fig6a, Fig6b, Fig6c, Fig6d, Fig6e,
		SearchSpace, BudgetSweep, BaselineCompare, Strategies,
		AblationC, AblationRollout, Scaling,
	}
	var b strings.Builder
	for _, f := range sections {
		b.WriteString(f(ctx, cfg))
		b.WriteByte('\n')
	}
	return b.String()
}

// Named returns the experiment runner for a DESIGN.md experiment id.
func Named(name string) (func(context.Context, Config) string, bool) {
	m := map[string]func(context.Context, Config) string{
		"fig6a":            Fig6a,
		"fig6b":            Fig6b,
		"fig6c":            Fig6c,
		"fig6d":            Fig6d,
		"fig6e":            Fig6e,
		"space":            SearchSpace,
		"budget":           BudgetSweep,
		"baseline":         BaselineCompare,
		"strategies":       Strategies,
		"ablation-c":       AblationC,
		"ablation-rollout": AblationRollout,
		"scaling":          Scaling,
		"all":              All,
	}
	f, ok := m[name]
	return f, ok
}

// mctsSanity references the mcts package so the experiments package can
// host direct search ablations later without import churn.
var _ = mcts.DefaultConfig
