package experiments

import (
	"context"
	"strings"
	"testing"
)

// tiny returns a minimal-budget config so the smoke tests stay fast.
func tiny() Config { return Config{Iterations: 3, RolloutDepth: 4, Seed: 1} }

func TestNamedCoversDesignIndex(t *testing.T) {
	// Every experiment id in DESIGN.md's index must resolve.
	ids := []string{
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
		"space", "budget", "baseline", "strategies",
		"ablation-c", "ablation-rollout", "scaling", "all",
	}
	for _, id := range ids {
		if _, ok := Named(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := Named("nope"); ok {
		t.Error("unknown id should miss")
	}
}

func TestFigureExperimentsProduceInterfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := tiny()
	for name, f := range map[string]func(context.Context, Config) string{
		"fig6a": Fig6a, "fig6c": Fig6c,
	} {
		out := f(context.Background(), cfg)
		if !strings.Contains(out, "cost=") {
			t.Errorf("%s: no cost line:\n%s", name, out)
		}
		if !strings.Contains(out, "widgets=") {
			t.Errorf("%s: no widget count:\n%s", name, out)
		}
		if strings.Contains(out, "error:") {
			t.Errorf("%s failed:\n%s", name, out)
		}
	}
}

func TestSearchSpaceReport(t *testing.T) {
	out := SearchSpace(context.Background(), tiny())
	if !strings.Contains(out, "fanout=") || !strings.Contains(out, "random path") {
		t.Errorf("report incomplete:\n%s", out)
	}
}

func TestBaselineCompareReport(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	out := BaselineCompare(context.Background(), tiny())
	if !strings.Contains(out, "figure-1") || !strings.Contains(out, "sdss") {
		t.Errorf("rows missing:\n%s", out)
	}
}

func TestFig6dReport(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	out := Fig6d(context.Background(), tiny())
	if !strings.Contains(out, "random walk") || !strings.Contains(out, "searched") {
		t.Errorf("report incomplete:\n%s", out)
	}
}

func TestFig6eReport(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	out := Fig6e(context.Background(), tiny())
	if !strings.Contains(out, "SDSS-form-style") || !strings.Contains(out, "generated (MCTS)") {
		t.Errorf("report incomplete:\n%s", out)
	}
}
