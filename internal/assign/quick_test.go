package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/testutil"
	"repro/internal/widgets"
	"repro/internal/workload"
)

// TestQuickPlanProperties checks, over random logs:
//
//   - every choice node of the difftree gets exactly one widget,
//   - every widget's appropriateness cost is finite,
//   - random assignments and the exhaustive enumeration agree on the
//     widget count,
//   - plan materialization is deterministic per pick vector.
func TestQuickPlanProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := workload.RandomLog(rng, 2+rng.Intn(3))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		plan, err := BuildPlan(d)
		if err != nil {
			return true // no applicable widget is a legal outcome
		}
		want := d.CountChoice()
		ui := plan.Random(rng)
		if ui == nil {
			return want == 0
		}
		if got := ui.CountWidgets(); got != want {
			t.Logf("seed %d: %d widgets for %d choice nodes", seed, got, want)
			return false
		}
		for _, w := range ui.Widgets() {
			if w.Choice == nil {
				t.Logf("seed %d: widget without choice", seed)
				return false
			}
			if widgets.IsInf(widgets.Appropriateness(w.Type, w.Domain)) {
				t.Logf("seed %d: infinite-M widget %s", seed, w.Type)
				return false
			}
		}
		// Determinism: First() twice renders identically.
		a, b := plan.First(), plan.First()
		if (a == nil) != (b == nil) {
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(108, 50)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumerationCountsMatchSpaceSize: for small plans, Enumerate
// visits exactly SpaceSize assignments.
func TestQuickEnumerationCountsMatchSpaceSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := workload.RandomLog(rng, 2)
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		plan, err := BuildPlan(d)
		if err != nil {
			return true
		}
		size := plan.SpaceSize(500)
		if size >= 500 {
			return true // too big to verify cheaply
		}
		count := 0
		plan.Enumerate(1000, func(*layout.Node) bool { count++; return true })
		return count == size
	}
	if err := quick.Check(f, testutil.QuickConfig(109, 40)); err != nil {
		t.Fatal(err)
	}
}
