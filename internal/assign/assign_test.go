package assign

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// figure4Tree mirrors the paper's Figure 4 difftree.
func figure4Tree() *difftree.Node {
	project := difftree.NewAll(ast.KindProject, "",
		difftree.NewAny(
			difftree.NewAll(ast.KindColExpr, "Sales"),
			difftree.NewAll(ast.KindColExpr, "Costs"),
		))
	from := difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "sales"))
	where := difftree.NewOpt(difftree.NewAll(ast.KindWhere, "",
		difftree.NewAll(ast.KindBiExpr, "=",
			difftree.NewAll(ast.KindColExpr, "cty"),
			difftree.NewAny(
				difftree.NewAll(ast.KindStrExpr, "USA"),
				difftree.NewAll(ast.KindStrExpr, "EUR"),
			))))
	return difftree.NewAll(ast.KindSelect, "", project, from, where)
}

func TestBuildPlanFigure4(t *testing.T) {
	d := figure4Tree()
	p, err := BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	// Decisions: widget for Project-ANY, widget for OPT toggle, widget for
	// StrExpr-ANY, box for OPT group, box for Select root = 5.
	if p.Decisions() != 5 {
		t.Errorf("Decisions = %d, want 5", p.Decisions())
	}
	ui := p.First()
	if ui == nil {
		t.Fatal("First returned nil")
	}
	// All three choice nodes have widgets.
	if got := ui.CountWidgets(); got != 3 {
		t.Errorf("widgets = %d, want 3\n%s", got, layout.RenderASCII(ui))
	}
	// The Figure-2(b) grouping: the toggle and the StrExpr widget share a box.
	byChoice := ui.ByChoice()
	whereOpt := d.Children[2]
	strAny := whereOpt.Children[0].Children[0].Children[1]
	if byChoice[whereOpt] == nil || byChoice[strAny] == nil {
		t.Fatal("missing widgets for OPT or inner ANY")
	}
}

func TestPlanSpaceAndEnumerate(t *testing.T) {
	d := figure4Tree()
	p, _ := BuildPlan(d)
	size := p.SpaceSize(1 << 20)
	if size < 8 {
		t.Fatalf("space too small: %d", size)
	}
	seen := 0
	exhaustive := p.Enumerate(1<<20, func(ui *layout.Node) bool {
		seen++
		if ui.CountWidgets() != 3 {
			t.Fatalf("assignment with %d widgets", ui.CountWidgets())
		}
		return true
	})
	if !exhaustive {
		t.Error("enumeration should be exhaustive under a large cap")
	}
	if seen != size {
		t.Errorf("enumerated %d, SpaceSize says %d", seen, size)
	}
	// Capped enumeration stops early and reports non-exhaustive.
	seen = 0
	if p.Enumerate(3, func(*layout.Node) bool { seen++; return true }) {
		t.Error("capped enumeration must report non-exhaustive")
	}
	if seen != 3 {
		t.Errorf("cap ignored: %d", seen)
	}
	// Early stop by callback.
	if !p.Enumerate(10, func(*layout.Node) bool { return false }) {
		t.Error("callback stop reports true (caller aborted, not the cap)")
	}
}

func TestRandomAssignmentsDeterministic(t *testing.T) {
	d := figure4Tree()
	p, _ := BuildPlan(d)
	a := p.Random(rand.New(rand.NewSource(42)))
	b := p.Random(rand.New(rand.NewSource(42)))
	if layout.RenderASCII(a) != layout.RenderASCII(b) {
		t.Error("same seed must give same assignment")
	}
	// Different seeds eventually differ.
	diff := false
	for s := int64(0); s < 10 && !diff; s++ {
		c := p.Random(rand.New(rand.NewSource(s)))
		if layout.RenderASCII(c) != layout.RenderASCII(a) {
			diff = true
		}
	}
	if !diff {
		t.Error("assignments never vary across seeds")
	}
}

func TestInitialStateSingleWidget(t *testing.T) {
	// ANY over whole queries (paper Figure 2(a)): one widget choosing among
	// the queries.
	q1 := difftree.FromAST(ast.New(ast.KindSelect, "",
		ast.New(ast.KindProject, "", ast.Leaf(ast.KindColExpr, "a")),
		ast.New(ast.KindFrom, "", ast.Leaf(ast.KindTable, "t"))))
	q2 := difftree.FromAST(ast.New(ast.KindSelect, "",
		ast.New(ast.KindProject, "", ast.Leaf(ast.KindColExpr, "b")),
		ast.New(ast.KindFrom, "", ast.Leaf(ast.KindTable, "t"))))
	d := difftree.NewAny(q1, q2)
	p, err := BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := p.First()
	if ui.CountWidgets() != 1 {
		t.Fatalf("want single widget, got:\n%s", layout.RenderASCII(ui))
	}
	if ui.Choice != d {
		t.Error("widget must control the root ANY")
	}
	if ui.Domain.Scalar {
		t.Error("whole queries are not scalar options")
	}
}

func TestNestedChoiceNeedsTabs(t *testing.T) {
	inner := difftree.NewAny(
		difftree.NewAll(ast.KindStrExpr, "USA"),
		difftree.NewAll(ast.KindStrExpr, "EUR"))
	alt1 := difftree.NewAll(ast.KindWhere, "",
		difftree.NewAll(ast.KindBiExpr, "=", difftree.NewAll(ast.KindColExpr, "cty"), inner))
	alt2 := difftree.NewAll(ast.KindWhere, "",
		difftree.NewAll(ast.KindBiExpr, "<", difftree.NewAll(ast.KindColExpr, "pop"), difftree.NewAll(ast.KindNumExpr, "5")))
	d := difftree.NewAny(alt1, alt2)
	p, err := BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := p.First()
	if ui.Type != widgets.Tabs {
		t.Fatalf("nested ANY should become tabs, got %s", ui.Type)
	}
	if len(ui.Children) != 1 {
		t.Errorf("only the choice-bearing alternative forms a panel, got %d", len(ui.Children))
	}
	if ui.CountWidgets() != 2 {
		t.Errorf("tabs + inner widget, got %d", ui.CountWidgets())
	}
}

func TestTooManyNestedAlternativesFails(t *testing.T) {
	var alts []*difftree.Node
	for i := 0; i < 8; i++ {
		alts = append(alts, difftree.NewAll(ast.KindWhere, "",
			difftree.NewAny(
				difftree.NewAll(ast.KindNumExpr, "1"),
				difftree.NewAll(ast.KindNumExpr, "2"))))
	}
	d := difftree.NewAny(alts...)
	_, err := BuildPlan(d)
	if !errors.Is(err, ErrNoWidget) {
		t.Fatalf("want ErrNoWidget, got %v", err)
	}
}

func TestSingletonAnyFails(t *testing.T) {
	d := difftree.NewAny(difftree.NewAll(ast.KindColExpr, "a"), difftree.NewAll(ast.KindColExpr, "a"))
	// Two identical options dedupe to labels but cardinality 2 is fine;
	// a true singleton is the failure case.
	single := difftree.NewAny(difftree.NewAll(ast.KindColExpr, "a"))
	if _, err := BuildPlan(single); !errors.Is(err, ErrNoWidget) {
		t.Errorf("singleton ANY: want ErrNoWidget, got %v", err)
	}
	if _, err := BuildPlan(d); err != nil {
		t.Errorf("2 options should plan: %v", err)
	}
}

func TestMultiBecomesAdder(t *testing.T) {
	between := difftree.NewAll(ast.KindBetween, "",
		difftree.NewAny(difftree.NewAll(ast.KindColExpr, "u"), difftree.NewAll(ast.KindColExpr, "g")),
		difftree.NewAll(ast.KindNumExpr, "0"),
		difftree.NewAll(ast.KindNumExpr, "30"))
	d := difftree.NewAll(ast.KindAnd, "", difftree.NewMulti(between))
	p, err := BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := p.First()
	if ui.Type != widgets.Adder {
		t.Fatalf("MULTI should become adder, got %s", ui.Type)
	}
	if len(ui.Children) != 1 {
		t.Fatal("adder should contain the instance template")
	}
	if ui.Domain.Kind != widgets.RepeatDomain {
		t.Error("adder domain kind wrong")
	}
}

func TestStaticMultiAdder(t *testing.T) {
	between := difftree.NewAll(ast.KindBetween, "",
		difftree.NewAll(ast.KindColExpr, "u"),
		difftree.NewAll(ast.KindNumExpr, "0"),
		difftree.NewAll(ast.KindNumExpr, "30"))
	d := difftree.NewAll(ast.KindAnd, "", difftree.NewMulti(between))
	p, err := BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := p.First()
	if ui.Type != widgets.Adder || len(ui.Children) != 0 {
		t.Fatalf("static MULTI should be a childless adder: %s", layout.RenderASCII(ui))
	}
}

func TestChoiceFreeTreeHasNoUI(t *testing.T) {
	d := difftree.FromAST(ast.New(ast.KindSelect, "",
		ast.New(ast.KindProject, "", ast.Leaf(ast.KindColExpr, "a")),
		ast.New(ast.KindFrom, "", ast.Leaf(ast.KindTable, "t"))))
	p, err := BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Decisions() != 0 {
		t.Error("static tree should have no decisions")
	}
	if p.First() != nil {
		t.Error("static tree should have no widget tree")
	}
}

func TestDomainOf(t *testing.T) {
	// Numeric scalar domain.
	num := difftree.NewAny(
		difftree.NewAll(ast.KindNumExpr, "10"),
		difftree.NewAll(ast.KindNumExpr, "100"),
		difftree.NewAll(ast.KindNumExpr, "1000"))
	d := DomainOf(num, nil)
	if !d.Numeric || !d.Scalar || d.Nested {
		t.Errorf("numeric domain flags wrong: %+v", d)
	}
	if len(d.Options) != 3 || d.Options[0] != "10" {
		t.Errorf("options wrong: %v", d.Options)
	}

	// BETWEEN bounds context.
	parent := difftree.NewAll(ast.KindBetween, "", difftree.NewAll(ast.KindColExpr, "u"), num, difftree.NewAll(ast.KindNumExpr, "30"))
	db := DomainOf(num, parent)
	if !db.Bounds {
		t.Error("bounds flag missing under BETWEEN")
	}

	// Empty alternative kills numeric but keeps options.
	withEmpty := difftree.NewAny(difftree.Emptyn(), difftree.NewAll(ast.KindNumExpr, "5"), difftree.NewAll(ast.KindNumExpr, "6"))
	de := DomainOf(withEmpty, nil)
	if de.Numeric {
		t.Error("(none) option is not numeric")
	}
	if de.Options[0] != "(none)" {
		t.Errorf("empty label = %q", de.Options[0])
	}

	// Opt and Multi domains.
	opt := difftree.NewOpt(difftree.NewAll(ast.KindWhere, "", difftree.NewAll(ast.KindColExpr, "x")))
	if DomainOf(opt, nil).Kind != widgets.ToggleDomain {
		t.Error("OPT domain kind")
	}
	multi := difftree.NewMulti(difftree.NewAll(ast.KindBetween, "", difftree.NewAll(ast.KindColExpr, "u"), difftree.NewAll(ast.KindNumExpr, "0"), difftree.NewAll(ast.KindNumExpr, "1")))
	if DomainOf(multi, nil).Kind != widgets.RepeatDomain {
		t.Error("MULTI domain kind")
	}

	// Subtree (non-scalar) options.
	sub := difftree.NewAny(
		difftree.NewAll(ast.KindBiExpr, "=", difftree.NewAll(ast.KindColExpr, "a"), difftree.NewAll(ast.KindNumExpr, "1")),
		difftree.NewAll(ast.KindBiExpr, "=", difftree.NewAll(ast.KindColExpr, "b"), difftree.NewAll(ast.KindNumExpr, "2")))
	ds := DomainOf(sub, nil)
	if ds.Scalar || ds.Numeric {
		t.Error("subtree domain must not be scalar")
	}
}

func TestCandidateOrderIsByCost(t *testing.T) {
	num := difftree.NewAny(
		difftree.NewAll(ast.KindNumExpr, "10"),
		difftree.NewAll(ast.KindNumExpr, "100"))
	dom := DomainOf(num, nil)
	cands := sortedCandidates(dom, widgets.Tabs)
	for i := 1; i < len(cands); i++ {
		if widgets.Appropriateness(cands[i-1], dom) > widgets.Appropriateness(cands[i], dom) {
			t.Fatalf("candidates not cost-sorted: %v", cands)
		}
	}
	for _, c := range cands {
		if c == widgets.Tabs {
			t.Error("excluded type present")
		}
	}
}

func TestAssignmentVectorMismatchPanics(t *testing.T) {
	d := figure4Tree()
	p, _ := BuildPlan(d)
	defer func() {
		if recover() == nil {
			t.Error("short vector should panic")
		}
	}()
	p.Assignment([]int{0})
}
