// Package assign maps a difftree to concrete widget trees ("Creating Widget
// Trees" in the paper): each choice node becomes one interaction widget, and
// each ALL node with choice-bearing descendants becomes a layout widget. The
// open decisions — which widget template per choice node, and which direction
// per layout box — form a small discrete space that the search samples
// randomly (k times per reward, per the paper) and enumerates exhaustively
// for the final state.
package assign

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// ErrNoWidget reports a choice node that no widget template can express
// (e.g. a nested choice with too many alternatives for tabs); such difftrees
// have infinite cost.
var ErrNoWidget = errors.New("assign: choice node has no applicable widget")

// decisionKind distinguishes the two decision types in a plan.
type decisionKind uint8

const (
	pickWidget decisionKind = iota
	pickDir
)

// decision is one open slot in the assignment vector.
type decision struct {
	kind       decisionKind
	node       *difftree.Node
	candidates []widgets.Type // widget templates, or {VBox, HBox} for boxes
}

// Plan is the assignment skeleton for one difftree: the ordered list of
// decisions and the domains computed for every choice node.
type Plan struct {
	root      *difftree.Node
	decisions []decision
}

// boxDirs are the direction candidates for a layout box.
var boxDirs = []widgets.Type{widgets.VBox, widgets.HBox}

// BuildPlan analyses the difftree and returns its assignment plan. It fails
// with ErrNoWidget if some choice node has no applicable widget template.
func BuildPlan(root *difftree.Node) (*Plan, error) {
	p := &Plan{root: root}
	rec := &planRecorder{plan: p}
	if _, err := build(root, nil, rec); err != nil {
		return nil, err
	}
	return p, nil
}

// Decisions returns the number of open decisions.
func (p *Plan) Decisions() int { return len(p.decisions) }

// SpaceSize returns the number of distinct assignments, saturating at cap.
func (p *Plan) SpaceSize(cap int) int {
	n := 1
	for _, d := range p.decisions {
		n *= len(d.candidates)
		if n >= cap {
			return cap
		}
	}
	return n
}

// Assignment materializes the widget tree for a decision vector (one index
// per decision, in plan order). It panics on malformed vectors; callers use
// Random/Enumerate/First which always produce well-formed ones.
func (p *Plan) Assignment(picks []int) *layout.Node {
	if len(picks) != len(p.decisions) {
		panic(fmt.Sprintf("assign: vector length %d, want %d", len(picks), len(p.decisions)))
	}
	rec := &vectorPicker{plan: p, picks: picks}
	n, err := build(p.root, nil, rec)
	if err != nil {
		panic("assign: plan/build divergence: " + err.Error())
	}
	return n
}

// First returns the widget tree choosing every first candidate (the
// lowest-M template per slot, since candidates are cost-sorted).
func (p *Plan) First() *layout.Node {
	return p.Assignment(make([]int, len(p.decisions)))
}

// Random samples a uniform random assignment.
func (p *Plan) Random(rng *rand.Rand) *layout.Node {
	picks := make([]int, len(p.decisions))
	for i, d := range p.decisions {
		picks[i] = rng.Intn(len(d.candidates))
	}
	return p.Assignment(picks)
}

// Enumerate visits every assignment (up to limit trees) in lexicographic
// order; fn returning false stops early. It reports whether enumeration was
// exhaustive.
func (p *Plan) Enumerate(limit int, fn func(*layout.Node) bool) bool {
	picks := make([]int, len(p.decisions))
	count := 0
	for {
		if count >= limit {
			return false
		}
		count++
		if !fn(p.Assignment(picks)) {
			return true
		}
		// Odometer increment.
		i := len(picks) - 1
		for i >= 0 {
			picks[i]++
			if picks[i] < len(p.decisions[i].candidates) {
				break
			}
			picks[i] = 0
			i--
		}
		if i < 0 {
			return true
		}
	}
}

// picker supplies decisions during tree building; the planning pass records
// candidates, the materialization pass consumes a vector.
type picker interface {
	pick(kind decisionKind, node *difftree.Node, candidates []widgets.Type) widgets.Type
}

type planRecorder struct {
	plan *Plan
}

func (r *planRecorder) pick(kind decisionKind, node *difftree.Node, cands []widgets.Type) widgets.Type {
	r.plan.decisions = append(r.plan.decisions, decision{kind: kind, node: node, candidates: cands})
	return cands[0]
}

type vectorPicker struct {
	plan  *Plan
	picks []int
	next  int
}

func (v *vectorPicker) pick(kind decisionKind, node *difftree.Node, cands []widgets.Type) widgets.Type {
	d := v.plan.decisions[v.next]
	if d.kind != kind || d.node != node {
		panic("assign: plan/build divergence")
	}
	t := cands[v.picks[v.next]]
	v.next++
	return t
}

// build constructs the widget tree for the subtree rooted at d. It returns
// nil for subtrees without choice nodes (static structure needs no widget).
func build(d *difftree.Node, parent *difftree.Node, pk picker) (*layout.Node, error) {
	if d == nil || !d.HasChoice() {
		return nil, nil
	}
	switch d.Kind {
	case difftree.All:
		var kids []*layout.Node
		for _, c := range d.Children {
			k, err := build(c, d, pk)
			if err != nil {
				return nil, err
			}
			if k != nil {
				kids = append(kids, k)
			}
		}
		return box(d, kids, pk), nil

	case difftree.Any:
		dom := DomainOf(d, parent)
		if dom.Nested {
			// Alternatives carry inner widgets: tabs with per-alternative
			// panels is the only template that can host them.
			if widgets.IsInf(widgets.Appropriateness(widgets.Tabs, dom)) {
				return nil, fmt.Errorf("%w: %d nested alternatives", ErrNoWidget, len(d.Children))
			}
			tabs := &layout.Node{Type: widgets.Tabs, Domain: dom, Title: dom.Title, Choice: d}
			for _, alt := range d.Children {
				panel, err := build(alt, d, pk)
				if err != nil {
					return nil, err
				}
				if panel != nil {
					tabs.Children = append(tabs.Children, panel)
				}
			}
			return tabs, nil
		}
		cands := sortedCandidates(dom, widgets.Tabs) // leaf tabs excluded; they exist for nesting
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: %d alternatives (scalar=%v)", ErrNoWidget, len(d.Children), dom.Scalar)
		}
		t := pk.pick(pickWidget, d, cands)
		return layout.NewWidget(t, dom, d), nil

	case difftree.Opt:
		dom := DomainOf(d, parent)
		cands := sortedCandidates(dom)
		t := pk.pick(pickWidget, d, cands)
		toggle := layout.NewWidget(t, dom, d)
		inner, err := build(d.Children[0], d, pk)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return toggle, nil
		}
		// The toggle and its dependent widgets are grouped, as in the
		// paper's Figure 2(b) (toggle + dropdown share a bounding box).
		return box(d, []*layout.Node{toggle, inner}, pk), nil

	case difftree.Multi:
		dom := DomainOf(d, parent)
		adder := &layout.Node{Type: widgets.Adder, Domain: dom, Title: dom.Title, Choice: d}
		inner, err := build(d.Children[0], d, pk)
		if err != nil {
			return nil, err
		}
		if inner != nil {
			adder.Children = append(adder.Children, inner)
		}
		return adder, nil
	}
	return nil, nil
}

// box wraps children in a layout container with a direction decision; single
// children pass through unwrapped.
func box(owner *difftree.Node, kids []*layout.Node, pk picker) *layout.Node {
	switch len(kids) {
	case 0:
		return nil
	case 1:
		return kids[0]
	default:
		dir := pk.pick(pickDir, owner, boxDirs)
		return layout.NewBox(dir, kids...)
	}
}

// sortedCandidates returns applicable widget templates sorted by ascending
// appropriateness cost, excluding the given types.
func sortedCandidates(dom widgets.Domain, exclude ...widgets.Type) []widgets.Type {
	var out []widgets.Type
	for _, t := range widgets.Candidates(dom) {
		skip := false
		for _, e := range exclude {
			if t == e {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, t)
		}
	}
	// Insertion sort by M (tiny slices).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && widgets.Appropriateness(out[j], dom) < widgets.Appropriateness(out[j-1], dom); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DomainOf computes the widget domain a choice node exposes. The parent
// difftree node provides context (e.g. BETWEEN bounds are range-slider
// friendly).
func DomainOf(d *difftree.Node, parent *difftree.Node) widgets.Domain {
	switch d.Kind {
	case difftree.Opt:
		return widgets.Domain{Kind: widgets.ToggleDomain, Title: difftree.NodeTitle(d)}
	case difftree.Multi:
		return widgets.Domain{Kind: widgets.RepeatDomain, Title: difftree.NodeTitle(d)}
	}
	dom := widgets.Domain{
		Kind:    widgets.ChoiceDomain,
		Title:   difftree.NodeTitle(d),
		Options: difftree.OptionLabels(d),
		Scalar:  true,
		Numeric: true,
	}
	excess := 0
	for _, alt := range d.Children {
		if alt.HasChoice() {
			dom.Nested = true
		}
		if alt.IsEmpty() {
			dom.Numeric = false // "(none)" is not a slider stop
			continue
		}
		excess += alt.Size() - 1
		isLeaf := alt.Kind == difftree.All && len(alt.Children) == 0 && !alt.IsSeq()
		if !isLeaf {
			dom.Scalar = false
			dom.Numeric = false
		} else if !numericValue(alt.Value) {
			dom.Numeric = false
		}
	}
	if len(d.Children) > 0 {
		dom.Complexity = float64(excess) / float64(len(d.Children))
	}
	if dom.Nested {
		dom.Scalar = false
		dom.Numeric = false
	}
	if dom.Numeric && parent != nil && parent.Kind == difftree.All && parent.Label == ast.KindBetween {
		dom.Bounds = true
	}
	// The multi-table extension's linked widgets get descriptive captions: a
	// table choice directly inside a Join is the join-partner picker, and a
	// choice directly inside a Union switches the active branch.
	if parent != nil && parent.Kind == difftree.All {
		switch {
		case parent.Label == ast.KindJoin && allTables(d):
			dom.Title = "join partner"
		case parent.Label == ast.KindUnion:
			dom.Title = "union branch"
		}
	}
	return dom
}

// allTables reports whether every alternative of a choice node is a plain
// Table leaf (∅ alternatives allowed).
func allTables(d *difftree.Node) bool {
	for _, c := range d.Children {
		if c.IsEmpty() {
			continue
		}
		if c.Kind != difftree.All || c.Label != ast.KindTable {
			return false
		}
	}
	return len(d.Children) > 0
}

func numericValue(s string) bool {
	return ast.Leaf(ast.KindNumExpr, s).IsNumericValue()
}
