package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestParseInnerJoin(t *testing.T) {
	q := MustParse("select objid from photoobj inner join specobj on objid = specobjid where z > 2")
	from := q.ChildOfKind(ast.KindFrom)
	if from == nil || len(from.Children) != 2 {
		t.Fatalf("from wrong: %v", from)
	}
	if from.Children[0].Kind != ast.KindTable || from.Children[0].Value != "photoobj" {
		t.Fatalf("base table wrong: %v", from.Children[0])
	}
	join := from.Children[1]
	if join.Kind != ast.KindJoin || join.Value != "inner" {
		t.Fatalf("join wrong: %v", join)
	}
	if join.Children[0].Kind != ast.KindTable || join.Children[0].Value != "specobj" {
		t.Fatalf("join partner wrong: %v", join.Children[0])
	}
	on := join.Children[1]
	if on.Kind != ast.KindOn || len(on.Children) != 1 {
		t.Fatalf("on wrong: %v", on)
	}
	eq := on.Children[0]
	if eq.Kind != ast.KindBiExpr || eq.Value != "=" {
		t.Fatalf("on predicate wrong: %v", eq)
	}
	// Both ON operands are columns, unlike WHERE where a bare RHS ident is a
	// string literal.
	if eq.Children[0].Kind != ast.KindColExpr || eq.Children[1].Kind != ast.KindColExpr {
		t.Fatalf("on operands should both be ColExpr: %v", eq)
	}
}

func TestParseJoinVariants(t *testing.T) {
	// Bare JOIN is INNER; LEFT OUTER JOIN collapses to "left".
	q := MustParse("select a from t1 join t2 on x = y left outer join t3 on y = w")
	from := q.ChildOfKind(ast.KindFrom)
	if len(from.Children) != 3 {
		t.Fatalf("want table + 2 joins, got %v", from)
	}
	if from.Children[1].Value != "inner" || from.Children[2].Value != "left" {
		t.Fatalf("join kinds wrong: %v / %v", from.Children[1].Value, from.Children[2].Value)
	}
	if got := Render(q); got != "SELECT a FROM t1 INNER JOIN t2 ON x = y LEFT JOIN t3 ON y = w" {
		t.Fatalf("render = %q", got)
	}
}

func TestParseMultiOnConjuncts(t *testing.T) {
	q := MustParse("select a from t1 inner join t2 on x = y and u = v where a = 1")
	on := q.ChildOfKind(ast.KindFrom).Children[1].Children[1]
	if len(on.Children) != 2 {
		t.Fatalf("want 2 ON conjuncts, got %v", on)
	}
	// The WHERE clause after the ON chain still parses.
	if q.ChildOfKind(ast.KindWhere) == nil {
		t.Fatal("missing where after join")
	}
}

func TestParseUnion(t *testing.T) {
	q := MustParse("select a from t1 union select a from t2 union select a from t3")
	if q.Kind != ast.KindUnion || q.Value != "" {
		t.Fatalf("root wrong: %v", q)
	}
	if len(q.Children) != 3 {
		t.Fatalf("want 3 flattened branches, got %d", len(q.Children))
	}
	for _, c := range q.Children {
		if c.Kind != ast.KindSelect {
			t.Fatalf("branch kind = %v", c.Kind)
		}
	}
}

func TestParseUnionAll(t *testing.T) {
	q := MustParse("select a from t1 union all select b from t2")
	if q.Kind != ast.KindUnion || q.Value != "all" {
		t.Fatalf("root wrong: %v", q)
	}
	if got := Render(q); got != "SELECT a FROM t1 UNION ALL SELECT b FROM t2" {
		t.Fatalf("render = %q", got)
	}
}

func TestParseMixedUnionRejected(t *testing.T) {
	for _, src := range []string{
		"select a from t union select a from u union all select a from v",
		"select a from t union all select a from u union select a from v",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("mixed chain accepted: %q", src)
		}
	}
}

func TestParseInSubquery(t *testing.T) {
	q := MustParse("select objid from photoobj where objid in (select specobjid from specobj where z > 2)")
	in := q.ChildOfKind(ast.KindWhere).Children[0]
	if in.Kind != ast.KindIn || len(in.Children) != 2 {
		t.Fatalf("in wrong: %v", in)
	}
	sub := in.Children[1]
	if sub.Kind != ast.KindSubquery || sub.Value != "" {
		t.Fatalf("subquery wrong: %v", sub)
	}
	if sub.Children[0].Kind != ast.KindSelect {
		t.Fatalf("subquery child wrong: %v", sub.Children[0])
	}
}

func TestParseExistsSubquery(t *testing.T) {
	q := MustParse("select a from t where exists (select b from u where c = 1) and a > 0")
	and := q.ChildOfKind(ast.KindWhere).Children[0]
	if and.Kind != ast.KindAnd {
		t.Fatalf("want And root, got %v", and.Kind)
	}
	sub := and.Children[0]
	if sub.Kind != ast.KindSubquery || sub.Value != "exists" {
		t.Fatalf("exists wrong: %v", sub)
	}
}

func TestParseNestedSubqueryRejected(t *testing.T) {
	for _, src := range []string{
		"select a from t where x in (select b from u where y in (select c from v))",
		"select a from t where exists (select b from u where exists (select c from v))",
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "nested subqueries") {
			t.Errorf("nested subquery not rejected: %q (err %v)", src, err)
		}
	}
}

func TestMultiTableRoundTrips(t *testing.T) {
	// Parse → Render → Parse must reproduce the AST and Render must be a
	// fixpoint for the whole multi-table fragment.
	for _, src := range []string{
		"select objid from photoobj inner join specobj on objid = specobjid",
		"select a from t1 left join t2 on x = y where u between 0 and 30",
		"select a from t1 join t2 on x = y and u = v group by a order by a desc limit 5",
		"select top 10 a from t1 union select top 10 a from t2",
		"select a from t union all select b from u union all select c from v",
		"select a from t where x in (select y from u)",
		"select a from t where exists (select y from u inner join w on a = b)",
		"select a from t1 inner join t2 on x = y where z in (select q from u) union select a from t3 inner join t4 on x = y where z in (select q from u)",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		r1 := Render(q)
		q2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", r1, err)
		}
		if !ast.Equal(q, q2) {
			t.Fatalf("round trip changed AST:\n src %q\n r1  %q\n got %s\nwant %s", src, r1, q2, q)
		}
		if r2 := Render(q2); r1 != r2 {
			t.Fatalf("Render not a fixpoint: %q -> %q", r1, r2)
		}
	}
}

func TestMultiTableParseErrors(t *testing.T) {
	for _, src := range []string{
		"select a from t1 join t2",                     // missing ON
		"select a from t1 join t2 on x",                // incomplete equi-pred
		"select a from t1 join t2 on x = 1",            // literal RHS in ON
		"select a from t1 inner t2 on x = y",           // missing JOIN keyword
		"select a from t union",                        // dangling UNION
		"select a from t where exists select b",        // missing parens
		"select a from t where x in (select)",          // malformed subquery
		"select a from t where exists (x = 1)",         // EXISTS needs a select
		"select a from t1 left inner join t2 on x = y", // conflicting kinds
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}
