package sqlparser

import (
	"strings"
	"unicode"
)

// lexer turns SQL text into a token stream.
type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src)} }

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if unicode.IsSpace(r) {
			l.pos++
			continue
		}
		// -- line comments
		if r == '-' && l.at(1) == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		// /* block comments */
		if r == '/' && l.at(1) == '*' {
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.at(1) == '/') {
				l.pos++
			}
			l.pos += 2
			continue
		}
		break
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next returns the next token, or an error on malformed input.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	r := l.src[l.pos]

	switch {
	case isIdentStart(r):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := string(l.src[start:l.pos])
		if keywords[strings.ToLower(word)] {
			return token{kind: tokKeyword, text: strings.ToLower(word), pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.at(1))):
		return l.lexNumber(start)

	case r == '-' && (unicode.IsDigit(l.at(1)) || l.at(1) == '.'):
		l.pos++
		return l.lexNumber(start)

	case r == '\'' || r == '"':
		quote := r
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == quote {
				if l.at(1) == quote { // doubled quote escapes itself
					b.WriteRune(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteRune(c)
			l.pos++
		}
		return token{}, errorf(start, "unterminated string literal")

	default:
		return l.lexSymbol(start)
	}
}

func (l *lexer) lexNumber(start int) (token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			nxt := l.at(1)
			if unicode.IsDigit(nxt) || ((nxt == '+' || nxt == '-') && unicode.IsDigit(l.at(2))) {
				seenExp = true
				l.pos++
				if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
					l.pos++
				}
			} else {
				return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil
			}
		default:
			return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil
		}
	}
	return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil
}

func (l *lexer) lexSymbol(start int) (token, error) {
	r := l.src[l.pos]
	two := string(r) + string(l.at(1))
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		if two == "<>" {
			two = "!="
		}
		return token{kind: tokSymbol, text: two, pos: start}, nil
	}
	switch r {
	case '(', ')', ',', '*', '=', '<', '>':
		l.pos++
		return token{kind: tokSymbol, text: string(r), pos: start}, nil
	case ';':
		// Trailing semicolons terminate the statement.
		l.pos++
		return token{kind: tokEOF, pos: start}, nil
	}
	return token{}, errorf(start, "unexpected character %q", string(r))
}

// lexAll tokenizes the whole input (used by the parser and tests).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var ts []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
		if t.kind == tokEOF {
			return ts, nil
		}
	}
}
