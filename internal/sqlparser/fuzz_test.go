package sqlparser

import (
	"testing"

	"repro/internal/ast"
)

// FuzzParseRenderRoundTrip is the daemon's parser wall: every serving
// endpoint feeds attacker-controlled SQL strings into Parse, and session
// state round trips through Render. The contract fuzzed here:
//
//   - Parse never panics, whatever the bytes;
//   - anything Parse accepts renders to SQL that Parse accepts again
//     (the daemon re-parses its own rendered output on every session
//     append and LoadQuery);
//   - Render is a fixpoint after one round trip: Render(Parse(Render(q)))
//     == Render(q), so rendered SQL is a canonical form and stored logs
//     are stable across arbitrarily many persist/load cycles.
func FuzzParseRenderRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"select Costs from sales",
		"select top 10 objid from stars where u between 0 and 30 and g between 0 and 30",
		"select count(*) from quasars where u between 1 and 29",
		"select a from t where x = 1 and y between 2 and 3",
		"select a from t where not x = 1",
		"select a from t where (x = 1 and y = 2)",
		"select top 1000 a from t",
		"select a from t where s = 'quoted'",
		"",
		"select",
		"select a from",
		"select a from t where",
		"select a from t where x between 0",
		"select \x00 from t",
		"select a from t -- trailing",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejecting malformed SQL is the contract
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil without error", src)
		}
		r1 := Render(q)
		q2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendered output does not re-parse: Parse(%q) -> Render %q -> %v", src, r1, err)
		}
		if ast.Hash(q) != ast.Hash(q2) {
			t.Fatalf("round trip changed the AST:\n src: %q\n ast: %s\nback: %s", src, Render(q), Render(q2))
		}
		if r2 := Render(q2); r1 != r2 {
			t.Fatalf("Render is not a fixpoint: %q -> %q", r1, r2)
		}
	})
}
