package sqlparser

import (
	"testing"

	"repro/internal/ast"
)

// FuzzParseRenderRoundTrip is the daemon's parser wall: every serving
// endpoint feeds attacker-controlled SQL strings into Parse, and session
// state round trips through Render. The contract fuzzed here:
//
//   - Parse never panics, whatever the bytes;
//   - anything Parse accepts renders to SQL that Parse accepts again
//     (the daemon re-parses its own rendered output on every session
//     append and LoadQuery);
//   - Render is a fixpoint after one round trip: Render(Parse(Render(q)))
//     == Render(q), so rendered SQL is a canonical form and stored logs
//     are stable across arbitrarily many persist/load cycles.
func FuzzParseRenderRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"select Costs from sales",
		"select top 10 objid from stars where u between 0 and 30 and g between 0 and 30",
		"select count(*) from quasars where u between 1 and 29",
		"select a from t where x = 1 and y between 2 and 3",
		"select a from t where not x = 1",
		"select a from t where (x = 1 and y = 2)",
		"select top 1000 a from t",
		"select a from t where s = 'quoted'",
		"",
		"select",
		"select a from",
		"select a from t where",
		"select a from t where x between 0",
		"select \x00 from t",
		"select a from t -- trailing",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) { roundTrip(t, src) })
}

// roundTrip is the shared fuzz oracle: Parse never panics; anything Parse
// accepts renders to SQL that Parse accepts again; Render is a fixpoint
// after one round trip.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		return // rejecting malformed SQL is the contract
	}
	if q == nil {
		t.Fatalf("Parse(%q) returned nil without error", src)
	}
	r1 := Render(q)
	q2, err := Parse(r1)
	if err != nil {
		t.Fatalf("rendered output does not re-parse: Parse(%q) -> Render %q -> %v", src, r1, err)
	}
	if ast.Hash(q) != ast.Hash(q2) {
		t.Fatalf("round trip changed the AST:\n src: %q\n ast: %s\nback: %s", src, Render(q), Render(q2))
	}
	if r2 := Render(q2); r1 != r2 {
		t.Fatalf("Render is not a fixpoint: %q -> %q", r1, r2)
	}
}

// FuzzParseRenderMultiTable fuzzes the same round-trip contract seeded with
// the multi-table fragment — JOIN chains, UNION/UNION ALL, IN/EXISTS
// subqueries — so mutations explore the new grammar rather than rediscover
// it from single-table seeds. A curated seed corpus is also checked in under
// testdata/fuzz/FuzzParseRenderMultiTable.
func FuzzParseRenderMultiTable(f *testing.F) {
	for _, seed := range []string{
		"select objid from photoobj inner join specobj on objid = specobjid",
		"select a from t1 left join t2 on x = y where u between 0 and 30",
		"select a from t1 join t2 on x = y and u = v group by a order by a desc",
		"select top 10 objid from stars union select top 10 objid from galaxies",
		"select a from t union all select b from u union all select c from v",
		"select a from t where x in (select y from u)",
		"select objid from photoobj where exists (select z from specobj where z > 2)",
		"select a from t1 inner join t2 on x = y union select a from t3 inner join t4 on x = y",
		"select a from t1 left outer join t2 on x = y",
		"select a from t union select a from u union all select a from v",           // mixed: rejected
		"select a from t1 join t2 on x = 1",                                         // literal ON RHS: rejected
		"select a from t where x in (select y from u where z in (select w from v))", // nested: rejected
		"select a from t1 join t2 on",
		"select a from t union",
		"select a from t where exists (",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) { roundTrip(t, src) })
}
