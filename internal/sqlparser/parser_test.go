package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestParsePaperQ1(t *testing.T) {
	// Paper Figure 1: SELECT Sales FROM sales WHERE cty = USA
	q, err := Parse("SELECT Sales FROM sales WHERE cty = USA")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != ast.KindSelect {
		t.Fatalf("root kind = %v", q.Kind)
	}
	proj := q.ChildOfKind(ast.KindProject)
	if proj == nil || len(proj.Children) != 1 || proj.Children[0].Value != "Sales" {
		t.Fatalf("projection wrong: %v", proj)
	}
	from := q.ChildOfKind(ast.KindFrom)
	if from == nil || from.Children[0].Value != "sales" {
		t.Fatalf("from wrong: %v", from)
	}
	where := q.ChildOfKind(ast.KindWhere)
	if where == nil {
		t.Fatal("missing where")
	}
	be := where.Children[0]
	if be.Kind != ast.KindBiExpr || be.Value != "=" {
		t.Fatalf("predicate wrong: %v", be)
	}
	if be.Children[0].Value != "cty" || be.Children[1].Value != "USA" {
		t.Fatalf("operands wrong: %v", be)
	}
	if be.Children[1].Kind != ast.KindStrExpr {
		t.Errorf("bare RHS identifier should parse as string, got %v", be.Children[1].Kind)
	}
}

func TestParsePaperQ3NoWhere(t *testing.T) {
	q := MustParse("SELECT Costs FROM sales")
	if q.ChildOfKind(ast.KindWhere) != nil {
		t.Error("q3 has no WHERE clause")
	}
	if len(q.Children) != 2 {
		t.Errorf("q3 should have exactly Project and From, got %d children", len(q.Children))
	}
}

func TestParseSDSSStyle(t *testing.T) {
	q := MustParse("select top 10 objid from stars where u between 0 and 30 and g between 0 and 30")
	top := q.ChildOfKind(ast.KindTop)
	if top == nil || top.Value != "10" {
		t.Fatalf("top wrong: %v", top)
	}
	where := q.ChildOfKind(ast.KindWhere)
	and := where.Children[0]
	if and.Kind != ast.KindAnd || len(and.Children) != 2 {
		t.Fatalf("expected 2-ary AND, got %v", and)
	}
	for _, c := range and.Children {
		if c.Kind != ast.KindBetween {
			t.Errorf("conjunct kind = %v, want Between", c.Kind)
		}
		if len(c.Children) != 3 {
			t.Errorf("between arity = %d", len(c.Children))
		}
	}
}

func TestParseCountStar(t *testing.T) {
	q := MustParse("select count(*) from quasars")
	proj := q.ChildOfKind(ast.KindProject)
	fn := proj.Children[0]
	if fn.Kind != ast.KindFuncExpr || fn.Value != "count" {
		t.Fatalf("func wrong: %v", fn)
	}
	if fn.Children[0].Kind != ast.KindStar {
		t.Errorf("count arg should be Star, got %v", fn.Children[0].Kind)
	}
}

func TestParseAggregateWithColumnAndAlias(t *testing.T) {
	q := MustParse("select avg(u) as mean_u, count(*) from stars")
	proj := q.ChildOfKind(ast.KindProject)
	if len(proj.Children) != 2 {
		t.Fatalf("want 2 items, got %d", len(proj.Children))
	}
	avg := proj.Children[0]
	if avg.Value != "avg" || avg.Children[0].Value != "u" {
		t.Errorf("avg parse wrong: %v", avg)
	}
	if a := avg.ChildOfKind(ast.KindAlias); a == nil || a.Value != "mean_u" {
		t.Errorf("alias wrong: %v", a)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	q := MustParse("select class, count(*) from stars where u > 5 group by class order by class desc limit 20")
	gb := q.ChildOfKind(ast.KindGroupBy)
	if gb == nil || gb.Children[0].Value != "class" {
		t.Fatalf("group by wrong: %v", gb)
	}
	ob := q.ChildOfKind(ast.KindOrderBy)
	if ob == nil || ob.Children[0].Value != "desc" {
		t.Fatalf("order by wrong: %v", ob)
	}
	lim := q.ChildOfKind(ast.KindLimit)
	if lim == nil || lim.Value != "20" {
		t.Fatalf("limit wrong: %v", lim)
	}
}

func TestParseDistinct(t *testing.T) {
	q := MustParse("select distinct objid from stars")
	if q.ChildOfKind(ast.KindDistinct) == nil {
		t.Error("distinct marker missing")
	}
}

func TestParseInLikeNotOrParens(t *testing.T) {
	q := MustParse("select objid from stars where (class in (1, 2, 3) or name like 'M%') and not u < 0")
	where := q.ChildOfKind(ast.KindWhere)
	and := where.Children[0]
	if and.Kind != ast.KindAnd {
		t.Fatalf("want AND root, got %v", and.Kind)
	}
	or := and.Children[0]
	if or.Kind != ast.KindOr || len(or.Children) != 2 {
		t.Fatalf("want OR with 2 children, got %v", or)
	}
	if or.Children[0].Kind != ast.KindIn || len(or.Children[0].Children) != 4 {
		t.Errorf("IN parse wrong: %v", or.Children[0])
	}
	if or.Children[1].Kind != ast.KindLike {
		t.Errorf("LIKE parse wrong: %v", or.Children[1])
	}
	if and.Children[1].Kind != ast.KindNot {
		t.Errorf("NOT parse wrong: %v", and.Children[1])
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "<", ">", "<=", ">=", "!="} {
		q, err := Parse("select a from t where x " + op + " 5")
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		be := q.ChildOfKind(ast.KindWhere).Children[0]
		if be.Value != op {
			t.Errorf("op %s parsed as %s", op, be.Value)
		}
	}
	// <> normalizes to !=
	q := MustParse("select a from t where x <> 5")
	if got := q.ChildOfKind(ast.KindWhere).Children[0].Value; got != "!=" {
		t.Errorf("<> should normalize to !=, got %s", got)
	}
}

func TestParseNumbers(t *testing.T) {
	for _, n := range []string{"0", "30", "-5", "3.14", "1e3", "2.5e-2", ".5"} {
		q, err := Parse("select a from t where x = " + n)
		if err != nil {
			t.Fatalf("number %s: %v", n, err)
		}
		rhs := q.ChildOfKind(ast.KindWhere).Children[0].Children[1]
		if rhs.Kind != ast.KindNumExpr {
			t.Errorf("number %s parsed as %v", n, rhs.Kind)
		}
		if !rhs.IsNumericValue() {
			t.Errorf("number %s value %q not numeric", n, rhs.Value)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := MustParse("select a from t where name = 'O''Brien'")
	rhs := q.ChildOfKind(ast.KindWhere).Children[0].Children[1]
	if rhs.Value != "O'Brien" {
		t.Errorf("escaped quote: got %q", rhs.Value)
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse("select a -- projection\nfrom t /* the table */ where x = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if q.ChildOfKind(ast.KindWhere) == nil {
		t.Error("where lost after comments")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"update t set a = 1",
		"select from t",
		"select a from",
		"select a from t where",
		"select a from t where x",
		"select a from t where x ==",
		"select a from t where x between 1",
		"select a from t where x between 1 and",
		"select a from t where x in ()",
		"select a from t where x like 5",
		"select top from t",
		"select a from t group class",
		"select a from t extra",
		"select a from t where name = 'unterminated",
		"select a from t where x = 1 ??",
		"select a, from t",
		"select f( from t",
		"select a from t where (x = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("Parse(%q) error type %T, want *Error", src, err)
		}
	}
}

func TestParseLog(t *testing.T) {
	log := `
-- the log
select a from t
# comment
select b from t

select c from t where x = 1
`
	qs, err := ParseLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("ParseLog = %d queries, want 3", len(qs))
	}
	if _, err := ParseLog("select a from t\nnot sql"); err == nil {
		t.Error("ParseLog should propagate parse errors")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not sql")
}

func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales",
		"select top 10 objid from stars where u between 0 and 30 and g between 0 and 30 and r between 0 and 30 and i between 0 and 30",
		"select count(*) from quasars where u between 1 and 29",
		"select distinct class, count(*) as n from stars group by class order by class desc limit 5",
		"select objid from stars where (class in (1, 2) or name like 'M%') and not u < 0",
		"select a from t where x != 3.5 or y >= 1e3",
	}
	for _, src := range queries {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out := Render(n1)
		n2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse %q (rendered from %q): %v", out, src, err)
		}
		if !ast.Equal(n1, n2) {
			t.Errorf("round trip changed tree:\n src: %s\n out: %s\n n1: %s\n n2: %s", src, out, n1, n2)
		}
	}
}

func TestRenderCanonicalForms(t *testing.T) {
	cases := map[string]string{
		"select  a ,b from t":                  "SELECT a, b FROM t",
		"select top 10 a from t where x = 1":   "SELECT TOP 10 a FROM t WHERE x = 1",
		"select count(*) from t":               "SELECT count(*) FROM t",
		"select a from t where s = 'hi there'": "SELECT a FROM t WHERE s = 'hi there'",
	}
	for src, want := range cases {
		if got := Render(MustParse(src)); got != want {
			t.Errorf("Render(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestRenderFragment(t *testing.T) {
	q := MustParse("select a from t where u between 0 and 30")
	where := q.ChildOfKind(ast.KindWhere)
	if got := RenderFragment(where.Children[0]); got != "u BETWEEN 0 AND 30" {
		t.Errorf("fragment = %q", got)
	}
	if got := RenderFragment(ast.Leaf(ast.KindEmpty, "")); got != "" {
		t.Errorf("empty fragment = %q", got)
	}
	seq := ast.New(ast.KindSeq, "", ast.Leaf(ast.KindColExpr, "a"), ast.Leaf(ast.KindColExpr, "b"))
	if got := RenderFragment(seq); got != "a b" {
		t.Errorf("seq fragment = %q", got)
	}
}

func TestNeedsQuotes(t *testing.T) {
	if needsQuotes("USA") {
		t.Error("bare ident should not need quotes")
	}
	for _, s := range []string{"", "hi there", "select", "9lives", "a-b"} {
		if !needsQuotes(s) {
			t.Errorf("%q should need quotes", s)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("select a from t where x = 'bad")
	if err == nil {
		t.Fatal("want error")
	}
	perr := err.(*Error)
	if perr.Pos != strings.Index("select a from t where x = 'bad", "'") {
		t.Errorf("error position = %d", perr.Pos)
	}
	if !strings.Contains(perr.Error(), "offset") {
		t.Errorf("error text should mention offset: %s", perr)
	}
}

func TestRenderMalformedSubtrees(t *testing.T) {
	// Transformation rules can synthesize arity-violating subtrees (the
	// paper's "combinations ... may not make semantic sense"); rendering
	// must never panic and marks missing operands with '?'.
	cases := []*ast.Node{
		ast.New(ast.KindBiExpr, "=", ast.Leaf(ast.KindColExpr, "a")),
		ast.New(ast.KindBiExpr, "="),
		ast.New(ast.KindBetween, "", ast.Leaf(ast.KindColExpr, "u")),
		ast.New(ast.KindLike, ""),
		ast.New(ast.KindNot, ""),
		ast.New(ast.KindIn, ""),
		ast.New(ast.KindSortKey, "desc"),
	}
	for _, n := range cases {
		out := RenderFragment(n)
		if !strings.Contains(out, "?") && n.Kind != ast.KindIn {
			t.Errorf("%s rendered %q without placeholder", n, out)
		}
	}
}
