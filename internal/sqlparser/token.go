// Package sqlparser lexes and parses the SQL subset used by the paper's
// evaluation (SDSS-style analytic SELECT queries) into the generic grammar
// AST of internal/ast, and renders ASTs back to canonical SQL text.
//
// Supported grammar:
//
//	query      := select (UNION [ALL] select)*      — one connective per chain
//	select     := SELECT [DISTINCT] [TOP n] selectList FROM from
//	              [WHERE orExpr] [GROUP BY cols] [ORDER BY keys] [LIMIT n]
//	from       := ident join*
//	join       := [INNER | LEFT [OUTER]] JOIN ident ON onPred (AND onPred)*
//	onPred     := ident "=" ident
//	selectList := item ("," item)*
//	item       := "*" | ident [AS ident] | func "(" ("*"|ident) ")" [AS ident]
//	orExpr     := andExpr (OR andExpr)*
//	andExpr    := pred (AND pred)*
//	pred       := "(" orExpr ")" | NOT pred
//	            | ident BETWEEN num AND num
//	            | ident op literal
//	            | ident IN "(" (literal ("," literal)* | subquery) ")"
//	            | ident LIKE string
//	            | EXISTS "(" subquery ")"
//	subquery   := select                            — one nesting level, no UNION
package sqlparser

import "fmt"

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol // ( ) , * = < > <= >= != <>
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokKeyword:
		return "keyword"
	case tokSymbol:
		return "symbol"
	}
	return "unknown"
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // keywords are lower-cased; identifiers keep original case
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", t.kind, t.text)
}

// keywords recognized by the lexer (case-insensitive).
var keywords = map[string]bool{
	"select": true, "distinct": true, "top": true, "from": true,
	"where": true, "and": true, "or": true, "not": true,
	"between": true, "in": true, "like": true, "as": true,
	"group": true, "order": true, "by": true, "asc": true, "desc": true,
	"limit": true,
	"join":  true, "inner": true, "left": true, "outer": true, "on": true,
	"union": true, "all": true, "exists": true,
}

// Error describes a lex or parse failure with its byte offset in the input.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sqlparser: at offset %d: %s", e.Pos, e.Msg) }

func errorf(pos int, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
