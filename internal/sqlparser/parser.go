package sqlparser

import (
	"strings"

	"repro/internal/ast"
)

// Parse parses one SQL query into a grammar AST (paper Figure 1 shape).
func Parse(src string) (*ast.Node, error) {
	ts, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: ts}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errorf(p.peek().pos, "unexpected trailing %s", p.peek())
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and static query lists.
func MustParse(src string) *ast.Node {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseLog parses a multi-line query log: one query per non-empty line.
// Lines starting with "--" or "#" are comments.
func ParseLog(src string) ([]*ast.Node, error) {
	var out []*ast.Node
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := Parse(line)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

type parser struct {
	toks []token
	i    int
	// subDepth tracks subquery nesting; the supported fragment allows one
	// level of IN/EXISTS subqueries (a subquery cannot contain another).
	subDepth int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errorf(p.peek().pos, "expected %q, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return errorf(p.peek().pos, "expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	return "", errorf(p.peek().pos, "expected identifier, found %s", p.peek())
}

func (p *parser) expectNumber() (string, error) {
	if t := p.peek(); t.kind == tokNumber {
		p.advance()
		return t.text, nil
	}
	return "", errorf(p.peek().pos, "expected number, found %s", p.peek())
}

// parseQuery := select (UNION [ALL] select)*. A chain uses one connective
// throughout: mixing UNION and UNION ALL in one statement is rejected so the
// n-ary, flattened Union node round-trips unambiguously.
func (p *parser) parseQuery() (*ast.Node, error) {
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokKeyword || p.peek().text != "union" {
		return first, nil
	}
	union := ast.New(ast.KindUnion, "", first)
	for i := 0; p.acceptKeyword("union"); i++ {
		pos := p.peek().pos
		all := p.acceptKeyword("all")
		if i == 0 {
			if all {
				union.Value = "all"
			}
		} else if all != (union.Value == "all") {
			return nil, errorf(pos, "mixed UNION and UNION ALL in one chain is unsupported")
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		union.Children = append(union.Children, next)
	}
	return union, nil
}

// parseSelect := SELECT [DISTINCT] [TOP n] selectList FROM from [WHERE ...]
// [GROUP BY ...] [ORDER BY ...] [LIMIT n]
func (p *parser) parseSelect() (*ast.Node, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := ast.New(ast.KindSelect, "")

	distinct := p.acceptKeyword("distinct")

	var topNode *ast.Node
	if p.acceptKeyword("top") {
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		topNode = ast.Leaf(ast.KindTop, n)
	}

	proj, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	sel.Children = append(sel.Children, proj)

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	sel.Children = append(sel.Children, from)

	if p.acceptKeyword("where") {
		pred, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		sel.Children = append(sel.Children, ast.New(ast.KindWhere, "", pred))
	}

	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		gb := ast.New(ast.KindGroupBy, "")
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			gb.Children = append(gb.Children, ast.Leaf(ast.KindColExpr, col))
			if !p.acceptSymbol(",") {
				break
			}
		}
		sel.Children = append(sel.Children, gb)
	}

	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		ob := ast.New(ast.KindOrderBy, "")
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			dir := "asc"
			if p.acceptKeyword("desc") {
				dir = "desc"
			} else {
				p.acceptKeyword("asc")
			}
			ob.Children = append(ob.Children, ast.New(ast.KindSortKey, dir, ast.Leaf(ast.KindColExpr, col)))
			if !p.acceptSymbol(",") {
				break
			}
		}
		sel.Children = append(sel.Children, ob)
	}

	if p.acceptKeyword("limit") {
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		sel.Children = append(sel.Children, ast.Leaf(ast.KindLimit, n))
	}

	// TOP and DISTINCT trail the clause list in the AST so that clause order
	// in the tree is stable regardless of SQL surface position.
	if topNode != nil {
		sel.Children = append(sel.Children, topNode)
	}
	if distinct {
		sel.Children = append(sel.Children, ast.Leaf(ast.KindDistinct, ""))
	}
	return sel, nil
}

// parseFrom := ident join*. The chain maps to From[Table, Join...] with each
// Join carrying its partner Table and On condition.
func (p *parser) parseFrom() (*ast.Node, error) {
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	from := ast.New(ast.KindFrom, "", ast.Leaf(ast.KindTable, tbl))
	for {
		t := p.peek()
		if t.kind != tokKeyword || (t.text != "join" && t.text != "inner" && t.text != "left") {
			return from, nil
		}
		join, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		from.Children = append(from.Children, join)
	}
}

// parseJoin := [INNER | LEFT [OUTER]] JOIN ident ON onPred (AND onPred)*.
// A bare JOIN is INNER.
func (p *parser) parseJoin() (*ast.Node, error) {
	kind := "inner"
	switch {
	case p.acceptKeyword("inner"):
	case p.acceptKeyword("left"):
		kind = "left"
		p.acceptKeyword("outer")
	}
	if err := p.expectKeyword("join"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	on := ast.New(ast.KindOn, "")
	for {
		pred, err := p.parseOnPred()
		if err != nil {
			return nil, err
		}
		on.Children = append(on.Children, pred)
		if !p.acceptKeyword("and") {
			break
		}
	}
	return ast.New(ast.KindJoin, kind, ast.Leaf(ast.KindTable, tbl), on), nil
}

// parseOnPred := ident "=" ident — an equi-predicate over two columns (both
// sides are ColExpr, unlike WHERE comparisons whose bare-ident RHS is a
// string literal).
func (p *parser) parseOnPred() (*ast.Node, error) {
	lhs, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	rhs, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return ast.New(ast.KindBiExpr, "=",
		ast.Leaf(ast.KindColExpr, lhs), ast.Leaf(ast.KindColExpr, rhs)), nil
}

// parseSubquery parses the select inside IN (...) / EXISTS (...) and wraps
// it in a Subquery node. One nesting level is supported; union chains inside
// subqueries are not part of the fragment.
func (p *parser) parseSubquery(value string) (*ast.Node, error) {
	if p.subDepth > 0 {
		return nil, errorf(p.peek().pos, "nested subqueries are unsupported")
	}
	p.subDepth++
	sel, err := p.parseSelect()
	p.subDepth--
	if err != nil {
		return nil, err
	}
	return ast.New(ast.KindSubquery, value, sel), nil
}

func (p *parser) parseSelectList() (*ast.Node, error) {
	proj := ast.New(ast.KindProject, "")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		proj.Children = append(proj.Children, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return proj, nil
}

func (p *parser) parseSelectItem() (*ast.Node, error) {
	if p.acceptSymbol("*") {
		return ast.Leaf(ast.KindStar, ""), nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var item *ast.Node
	if p.acceptSymbol("(") {
		// Aggregate or scalar function call: name(arg)
		fn := ast.New(ast.KindFuncExpr, strings.ToLower(name))
		if p.acceptSymbol("*") {
			fn.Children = append(fn.Children, ast.Leaf(ast.KindStar, ""))
		} else {
			arg, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn.Children = append(fn.Children, ast.Leaf(ast.KindColExpr, arg))
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		item = fn
	} else {
		item = ast.Leaf(ast.KindColExpr, name)
	}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item.Children = append(item.Children, ast.Leaf(ast.KindAlias, alias))
	}
	return item, nil
}

// parseOrExpr := andExpr (OR andExpr)*   — n-ary, flattened.
func (p *parser) parseOrExpr() (*ast.Node, error) {
	first, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokKeyword || p.peek().text != "or" {
		return first, nil
	}
	or := ast.New(ast.KindOr, "", first)
	for p.acceptKeyword("or") {
		next, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		or.Children = append(or.Children, next)
	}
	return or, nil
}

// parseAndExpr := pred (AND pred)*   — n-ary, flattened.
func (p *parser) parseAndExpr() (*ast.Node, error) {
	first, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokKeyword || p.peek().text != "and" {
		return first, nil
	}
	and := ast.New(ast.KindAnd, "", first)
	for p.acceptKeyword("and") {
		next, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		and.Children = append(and.Children, next)
	}
	return and, nil
}

func (p *parser) parsePred() (*ast.Node, error) {
	if p.acceptSymbol("(") {
		inner, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	if p.acceptKeyword("not") {
		inner, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		return ast.New(ast.KindNot, "", inner), nil
	}
	if p.acceptKeyword("exists") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSubquery("exists")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return sub, nil
	}

	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	colNode := ast.Leaf(ast.KindColExpr, col)

	switch {
	case p.acceptKeyword("between"):
		lo, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		return ast.New(ast.KindBetween, "", colNode,
			ast.Leaf(ast.KindNumExpr, lo), ast.Leaf(ast.KindNumExpr, hi)), nil

	case p.acceptKeyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := ast.New(ast.KindIn, "", colNode)
		if t := p.peek(); t.kind == tokKeyword && t.text == "select" {
			sub, err := p.parseSubquery("")
			if err != nil {
				return nil, err
			}
			in.Children = append(in.Children, sub)
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return in, nil
		}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			in.Children = append(in.Children, lit)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil

	case p.acceptKeyword("like"):
		if t := p.peek(); t.kind == tokString {
			p.advance()
			return ast.New(ast.KindLike, "", colNode, ast.Leaf(ast.KindStrExpr, t.text)), nil
		}
		return nil, errorf(p.peek().pos, "expected string after LIKE, found %s", p.peek())

	default:
		t := p.peek()
		if t.kind != tokSymbol {
			return nil, errorf(t.pos, "expected comparison operator, found %s", t)
		}
		switch t.text {
		case "=", "<", ">", "<=", ">=", "!=":
			p.advance()
			rhs, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			return ast.New(ast.KindBiExpr, t.text, colNode, rhs), nil
		}
		return nil, errorf(t.pos, "expected comparison operator, found %s", t)
	}
}

// parseLiteral := number | string | bare identifier (paper writes cty = USA
// without quotes; a bare identifier on the RHS is treated as a string).
func (p *parser) parseLiteral() (*ast.Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return ast.Leaf(ast.KindNumExpr, t.text), nil
	case tokString:
		p.advance()
		return ast.Leaf(ast.KindStrExpr, t.text), nil
	case tokIdent:
		p.advance()
		return ast.Leaf(ast.KindStrExpr, t.text), nil
	}
	return nil, errorf(t.pos, "expected literal, found %s", t)
}
