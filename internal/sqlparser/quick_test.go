package sqlparser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/testutil"
)

// The random-query generator lives in internal/workload, which depends on
// this package; to avoid the cycle the property tests here use a local
// mirror of its seed-driven interface: properties are quantified over rng
// seeds, and queries are drawn inside the property.

// genQuery is a tiny local random query builder exercising the grammar.
func genQuery(rng *rand.Rand) string {
	parts := []string{"select "}
	if rng.Intn(5) == 0 {
		parts = append(parts, "distinct ")
	}
	if rng.Intn(3) == 0 {
		parts = append(parts, "top 10 ")
	}
	switch rng.Intn(4) {
	case 0:
		parts = append(parts, "count(*)")
	case 1:
		parts = append(parts, "a, b")
	case 2:
		parts = append(parts, "avg(u) as m")
	default:
		parts = append(parts, "objid")
	}
	parts = append(parts, " from stars")
	switch rng.Intn(5) {
	case 0:
		parts = append(parts, " where u between 0 and 30")
	case 1:
		parts = append(parts, " where u > 5 and g < 3")
	case 2:
		parts = append(parts, " where (a = 1 or b = 2) and not u >= 9")
	case 3:
		parts = append(parts, " where name like 'M%' or class in (1, 2)")
	}
	if rng.Intn(4) == 0 {
		parts = append(parts, " order by u desc")
	}
	if rng.Intn(5) == 0 {
		parts = append(parts, " limit 7")
	}
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

// TestQuickRoundTrip: Parse(Render(Parse(q))) == Parse(q) for random
// grammar-covering queries.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 8; i++ {
			src := genQuery(rng)
			n1, err := Parse(src)
			if err != nil {
				t.Logf("generator emitted unparsable %q: %v", src, err)
				return false
			}
			rendered := Render(n1)
			n2, err := Parse(rendered)
			if err != nil {
				t.Logf("rendered %q unparsable: %v", rendered, err)
				return false
			}
			if !ast.Equal(n1, n2) {
				t.Logf("round trip changed: %q -> %q", src, rendered)
				return false
			}
			// Render is a fixed point after one round.
			if Render(n2) != rendered {
				t.Logf("render not a fixed point: %q vs %q", Render(n2), rendered)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(110, 60)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLexerNeverPanics feeds arbitrary strings to the parser: it must
// return an error or a tree, never panic.
func TestQuickLexerNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(111, 300)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParsePrefixRobust checks truncated inputs never panic either
// (they exercise every "unexpected EOF" path).
func TestQuickParsePrefixRobust(t *testing.T) {
	base := "select distinct top 10 a, avg(u) as m from stars where (a = 1 or b in (2, 3)) and not name like 'M%' group by a order by a desc limit 5"
	for i := 0; i <= len(base); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", base[:i], r)
				}
			}()
			_, _ = Parse(base[:i])
		}()
	}
}
