package sqlparser

import (
	"strings"

	"repro/internal/ast"
)

// Render turns a grammar AST back into canonical SQL text. Render(Parse(q))
// is a fixed point for canonical inputs; Parse(Render(n)) reproduces n for
// every tree the parser can emit (round-trip tested).
func Render(n *ast.Node) string {
	var b strings.Builder
	renderNode(&b, n)
	return b.String()
}

// RenderFragment renders any subtree (not necessarily a whole query) as the
// SQL fragment it denotes; used for widget option labels.
func RenderFragment(n *ast.Node) string {
	var b strings.Builder
	renderNode(&b, n)
	return b.String()
}

func renderNode(b *strings.Builder, n *ast.Node) {
	if n == nil {
		return
	}
	switch n.Kind {
	case ast.KindSelect:
		renderSelect(b, n)
	case ast.KindProject:
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			renderNode(b, c)
		}
	case ast.KindFrom:
		b.WriteString("FROM ")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			renderNode(b, c)
		}
	case ast.KindJoin:
		if n.Value == "left" {
			b.WriteString("LEFT JOIN ")
		} else {
			b.WriteString("INNER JOIN ")
		}
		renderChild(b, n, 0)
		b.WriteByte(' ')
		renderChild(b, n, 1)
	case ast.KindOn:
		b.WriteString("ON ")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(" AND ")
			}
			renderNode(b, c)
		}
	case ast.KindUnion:
		sep := " UNION "
		if n.Value == "all" {
			sep = " UNION ALL "
		}
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			renderNode(b, c)
		}
	case ast.KindSubquery:
		if n.Value == "exists" {
			b.WriteString("EXISTS ")
		}
		b.WriteByte('(')
		renderChild(b, n, 0)
		b.WriteByte(')')
	case ast.KindWhere:
		b.WriteString("WHERE ")
		for _, c := range n.Children {
			renderNode(b, c)
		}
	case ast.KindGroupBy:
		b.WriteString("GROUP BY ")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			renderNode(b, c)
		}
	case ast.KindOrderBy:
		b.WriteString("ORDER BY ")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			renderNode(b, c)
		}
	case ast.KindSortKey:
		renderChild(b, n, 0)
		if n.Value == "desc" {
			b.WriteString(" DESC")
		}
	case ast.KindTop:
		b.WriteString("TOP ")
		b.WriteString(n.Value)
	case ast.KindLimit:
		b.WriteString("LIMIT ")
		b.WriteString(n.Value)
	case ast.KindDistinct:
		b.WriteString("DISTINCT")
	case ast.KindTable:
		b.WriteString(n.Value)
	case ast.KindColExpr:
		b.WriteString(n.Value)
		if a := n.ChildOfKind(ast.KindAlias); a != nil {
			b.WriteString(" AS ")
			b.WriteString(a.Value)
		}
	case ast.KindStrExpr:
		if needsQuotes(n.Value) {
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(n.Value, "'", "''"))
			b.WriteByte('\'')
		} else {
			b.WriteString(n.Value)
		}
	case ast.KindNumExpr:
		b.WriteString(n.Value)
	case ast.KindStar:
		b.WriteByte('*')
	case ast.KindFuncExpr:
		b.WriteString(n.Value)
		b.WriteByte('(')
		for i, c := range n.Children {
			if c.Kind == ast.KindAlias {
				continue
			}
			if i > 0 {
				b.WriteString(", ")
			}
			renderNode(b, c)
		}
		b.WriteByte(')')
		if a := n.ChildOfKind(ast.KindAlias); a != nil {
			b.WriteString(" AS ")
			b.WriteString(a.Value)
		}
	case ast.KindBiExpr:
		// Transformation rules can synthesize grammar-arity-violating
		// subtrees (the paper's "combinations of widget choices may not
		// make semantic sense"); render defensively with ? placeholders.
		renderChild(b, n, 0)
		b.WriteByte(' ')
		b.WriteString(n.Value)
		b.WriteByte(' ')
		renderChild(b, n, 1)
	case ast.KindBetween:
		renderChild(b, n, 0)
		b.WriteString(" BETWEEN ")
		renderChild(b, n, 1)
		b.WriteString(" AND ")
		renderChild(b, n, 2)
	case ast.KindIn:
		renderChild(b, n, 0)
		// A subquery RHS supplies its own parentheses.
		if len(n.Children) == 2 && n.Children[1].Kind == ast.KindSubquery {
			b.WriteString(" IN ")
			renderNode(b, n.Children[1])
			return
		}
		b.WriteString(" IN (")
		if len(n.Children) > 1 {
			for i, c := range n.Children[1:] {
				if i > 0 {
					b.WriteString(", ")
				}
				renderNode(b, c)
			}
		}
		b.WriteByte(')')
	case ast.KindLike:
		renderChild(b, n, 0)
		b.WriteString(" LIKE ")
		renderChild(b, n, 1)
	case ast.KindNot:
		b.WriteString("NOT ")
		if len(n.Children) > 0 {
			renderPred(b, n.Children[0])
		} else {
			b.WriteByte('?')
		}
	case ast.KindAnd:
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(" AND ")
			}
			renderPred(b, c)
		}
	case ast.KindOr:
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(" OR ")
			}
			renderPred(b, c)
		}
	case ast.KindAlias:
		b.WriteString(n.Value)
	case ast.KindEmpty:
		// empty sequence: nothing
	case ast.KindSeq:
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			renderNode(b, c)
		}
	default:
		b.WriteString(n.String())
	}
}

// renderChild renders the i-th child or a ? placeholder when the child is
// missing (malformed subtrees synthesized by transformation rules).
func renderChild(b *strings.Builder, n *ast.Node, i int) {
	if i < len(n.Children) {
		renderNode(b, n.Children[i])
		return
	}
	b.WriteByte('?')
}

// renderPred parenthesizes nested boolean connectives so that precedence
// survives the round trip (AND binds tighter than OR).
func renderPred(b *strings.Builder, n *ast.Node) {
	if n.Kind == ast.KindOr || n.Kind == ast.KindAnd {
		b.WriteByte('(')
		renderNode(b, n)
		b.WriteByte(')')
		return
	}
	renderNode(b, n)
}

func renderSelect(b *strings.Builder, n *ast.Node) {
	b.WriteString("SELECT ")
	if n.ChildOfKind(ast.KindDistinct) != nil {
		b.WriteString("DISTINCT ")
	}
	if t := n.ChildOfKind(ast.KindTop); t != nil {
		b.WriteString("TOP ")
		b.WriteString(t.Value)
		b.WriteByte(' ')
	}
	// Clause order in text: projection, FROM, WHERE, GROUP BY, ORDER BY, LIMIT.
	order := []ast.Kind{ast.KindProject, ast.KindFrom, ast.KindWhere, ast.KindGroupBy, ast.KindOrderBy, ast.KindLimit}
	first := true
	for _, k := range order {
		c := n.ChildOfKind(k)
		if c == nil {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		renderNode(b, c)
		first = false
	}
}

// needsQuotes reports whether a string literal must be quoted to re-lex as a
// single string token (bare identifiers like USA round-trip unquoted).
func needsQuotes(s string) bool {
	if s == "" {
		return true
	}
	if keywords[strings.ToLower(s)] {
		return true
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return true
		}
		if !isIdentPart(r) {
			return true
		}
	}
	return false
}
