package baseline

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
	"repro/internal/workload"
)

func TestBuildFigure1(t *testing.T) {
	log := workload.PaperFigure1Log()
	model := cost.Default(layout.Wide)
	iface, err := Build(log, model)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.Cost.Valid {
		t.Fatalf("baseline invalid: %s", iface.Cost.Reason)
	}
	if !difftree.ExpressibleAll(iface.DiffTree, log) {
		t.Fatal("baseline lost queries")
	}
	// Figure 1 queries diverge in ColExpr (Sales/Costs) and the WHERE clause
	// (USA / EUR / absent): at least 2 widgets.
	if iface.UI.CountWidgets() < 2 {
		t.Errorf("widgets:\n%s", layout.RenderASCII(iface.UI))
	}
}

func TestBuildSDSS(t *testing.T) {
	log := workload.SDSSLog()
	model := cost.Default(layout.Wide)
	iface, err := Build(log, model)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.Cost.Valid {
		t.Fatalf("invalid: %s", iface.Cost.Reason)
	}
	if !difftree.ExpressibleAll(iface.DiffTree, log) {
		t.Fatal("lost queries")
	}
	// Divergences: projection (2 slots), table (3), 8 literal bounds, TOP:
	// a flat list of many widgets.
	n := iface.UI.CountWidgets()
	if n < 8 {
		t.Errorf("expected many flat widgets, got %d:\n%s", n, layout.RenderASCII(iface.UI))
	}
	// Flat layout: the root is a single VBox of leaf widgets.
	if iface.UI.Type != widgets.VBox {
		t.Fatalf("root = %s, want vbox", iface.UI.Type)
	}
	for _, c := range iface.UI.Children {
		if len(c.Children) != 0 {
			t.Error("baseline layout must be flat")
		}
	}
}

func TestMergeSharesStructure(t *testing.T) {
	log := workload.PaperFigure1Log()
	d := merge(log)
	// Shared FROM stays choice-free. The projection diverges at the ColExpr
	// level; the WHERE clause diverges as whole subtrees (q3 lacks it, so
	// the divergence sits at the Where slot with an ∅ alternative).
	var fromChoiceFree, sawColChoice, sawWhereChoiceWithEmpty bool
	difftree.WalkPath(d, func(n *difftree.Node, p difftree.Path) bool {
		if n.Kind == difftree.All && n.Label == ast.KindFrom {
			fromChoiceFree = !n.HasChoice()
		}
		if n.Kind == difftree.Any {
			hasEmpty, hasWhere := false, false
			for _, c := range n.Children {
				if c.Kind == difftree.All && c.Label == ast.KindColExpr {
					sawColChoice = true
				}
				if c.IsEmpty() {
					hasEmpty = true
				}
				if c.Kind == difftree.All && c.Label == ast.KindWhere {
					hasWhere = true
				}
			}
			if hasEmpty && hasWhere {
				sawWhereChoiceWithEmpty = true
			}
		}
		return true
	})
	if !fromChoiceFree {
		t.Error("shared FROM must not gain choices")
	}
	if !sawColChoice {
		t.Errorf("projection divergence missing: %s", d)
	}
	if !sawWhereChoiceWithEmpty {
		t.Errorf("optional WHERE divergence missing: %s", d)
	}
}

func TestMergeIdenticalQueries(t *testing.T) {
	q := workload.SDSSSubset(1, 1)
	iface, err := Build([]*ast.Node{q[0], q[0].Clone()}, cost.Default(layout.Wide))
	if err != nil {
		t.Fatal(err)
	}
	if iface.UI != nil {
		t.Error("identical queries need no widgets")
	}
	if iface.DiffTree.HasChoice() {
		t.Error("identical queries: choice-free tree")
	}
}

func TestBuildEmptyLog(t *testing.T) {
	if _, err := Build(nil, cost.Default(layout.Wide)); err == nil {
		t.Error("empty log must error")
	}
}

func TestBaselineIgnoresSequence(t *testing.T) {
	// The baseline output is identical regardless of log order (it ignores
	// the sequence); only its U score changes.
	log := workload.PaperFigure1Log()
	rev := []*ast.Node{log[2], log[1], log[0]}
	model := cost.Default(layout.Wide)
	a, err := Build(log, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(rev, model)
	if err != nil {
		t.Fatal(err)
	}
	if !difftree.Equal(a.DiffTree, b.DiffTree) {
		t.Error("baseline structure must not depend on order")
	}
}

func TestBestByM(t *testing.T) {
	dom := widgets.Domain{Kind: widgets.ChoiceDomain, Options: []string{"a", "b"}, Scalar: true}
	if got := bestByM(dom); got != widgets.Radio && got != widgets.Buttons {
		t.Errorf("small scalar domain best = %s", got)
	}
	if got := bestByM(widgets.Domain{Kind: widgets.ChoiceDomain, Options: []string{"only"}}); got != widgets.Invalid {
		t.Errorf("singleton domain should have no widget, got %s", got)
	}
}
