// Package baseline reimplements the prior work the paper compares against:
// the bottom-up syntactic approach of Zhang, Sellam & Wu, "Mining Precision
// Interfaces from Query Logs" (SIGMOD 2017), as characterized by this
// paper's introduction. It aligns the query ASTs structurally, maps each
// divergence point (subtree differences at the same AST path) to the widget
// with the best appropriateness cost M(·) in isolation, and stacks all
// widgets in a flat vertical list — no layout reasoning, no account of the
// query sequence, exactly the limitations the MCTS approach addresses.
package baseline

import (
	"errors"
	"sort"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/cost"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// Interface is the baseline's output.
type Interface struct {
	DiffTree *difftree.Node
	UI       *layout.Node
	Cost     cost.Breakdown
}

// Build mines a precision interface from the log and scores it with the
// same cost model as the MCTS system (for a fair comparison).
func Build(log []*ast.Node, model cost.Model) (*Interface, error) {
	if len(log) == 0 {
		return nil, errors.New("baseline: empty query log")
	}
	distinct := ast.Dedup(log)
	nodes := make([]*ast.Node, len(distinct))
	copy(nodes, distinct)

	d := merge(nodes)
	if err := difftree.Validate(d); err != nil {
		return nil, err
	}
	if !difftree.ExpressibleAll(d, log) {
		return nil, errors.New("baseline: merged tree lost queries")
	}

	ui := flatUI(d)
	bd := model.NewEvaluator(d, log).Evaluate(ui)
	return &Interface{DiffTree: d, UI: ui, Cost: bd}, nil
}

// merge aligns the ASTs top-down: nodes agreeing on (kind, value) recurse
// into their children aligned by (kind, ordinal); any divergence becomes an
// ANY over the distinct subtrees (with ∅ for queries lacking the clause).
// This is the full bottom-up factoring with no intermediate states — the
// one interface shape the 2017 approach would produce.
func merge(nodes []*ast.Node) *difftree.Node {
	present := nodes[:0:0]
	absent := false
	for _, n := range nodes {
		if n == nil {
			absent = true
		} else {
			present = append(present, n)
		}
	}
	if len(present) == 0 {
		return difftree.Emptyn()
	}

	agree := !absent
	first := present[0]
	for _, n := range present[1:] {
		if n.Kind != first.Kind || n.Value != first.Value {
			agree = false
			break
		}
	}

	if !agree {
		variants := dedupASTs(present)
		// Canonical order (by structural hash) so the mined interface is
		// independent of the log order — the 2017 approach treats the log
		// as a set.
		sort.Slice(variants, func(i, j int) bool { return ast.Hash(variants[i]) < ast.Hash(variants[j]) })
		kids := make([]*difftree.Node, 0, len(variants)+1)
		if absent {
			kids = append(kids, difftree.Emptyn())
		}
		for _, v := range variants {
			kids = append(kids, difftree.FromAST(v))
		}
		if len(kids) == 1 {
			return kids[0]
		}
		return difftree.NewAny(kids...)
	}

	// Aligned: merge children by (kind, ordinal).
	type slotKey struct {
		kind ast.Kind
		ord  int
	}
	var order []slotKey
	seen := map[slotKey]bool{}
	perNode := make([]map[slotKey]*ast.Node, len(present))
	for i, n := range present {
		counts := map[ast.Kind]int{}
		perNode[i] = map[slotKey]*ast.Node{}
		for _, c := range n.Children {
			k := slotKey{c.Kind, counts[c.Kind]}
			counts[c.Kind]++
			perNode[i][k] = c
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
	}
	out := difftree.NewAll(first.Kind, first.Value)
	for _, k := range order {
		aligned := make([]*ast.Node, len(present))
		for i := range present {
			aligned[i] = perNode[i][k] // nil when absent
		}
		out.Children = append(out.Children, merge(aligned))
	}
	return out
}

func dedupASTs(ns []*ast.Node) []*ast.Node {
	seen := make(map[uint64][]*ast.Node)
	var out []*ast.Node
	for _, n := range ns {
		h := ast.Hash(n)
		dup := false
		for _, p := range seen[h] {
			if ast.Equal(p, n) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], n)
			out = append(out, n)
		}
	}
	return out
}

// flatUI stacks one widget per choice node in a single vertical list, each
// widget chosen purely by appropriateness (the 2017 paper "only considered
// appropriateness when selecting widgets").
func flatUI(d *difftree.Node) *layout.Node {
	var ws []*layout.Node
	var walk func(n, parent *difftree.Node)
	walk = func(n, parent *difftree.Node) {
		if n.Kind.IsChoice() {
			dom := assign.DomainOf(n, parent)
			t := bestByM(dom)
			if t != widgets.Invalid {
				ws = append(ws, layout.NewWidget(t, dom, n))
			}
		}
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	walk(d, nil)
	switch len(ws) {
	case 0:
		return nil
	case 1:
		return ws[0]
	default:
		return layout.NewBox(widgets.VBox, ws...)
	}
}

func bestByM(dom widgets.Domain) widgets.Type {
	best := widgets.Invalid
	bestC := widgets.Inf
	for _, t := range widgets.Candidates(dom) {
		if c := widgets.Appropriateness(t, dom); c < bestC {
			best, bestC = t, c
		}
	}
	return best
}
