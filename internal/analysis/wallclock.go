// The wallclock analyzer: the pure search/eval packages read no wall clock
// and draw no randomness from the process-global RNG.
//
// Evaluation is a pure function of (config, state): reward RNG is seeded
// from the state hash (internal/eval), search RNG from explicit seeds. A
// time.Now() or global math/rand call in these packages is state the
// equivalence tests cannot see — results would differ across runs, replicas,
// and snapshot restores. The daemon and harness layers (server, load, cmd)
// read clocks legitimately and are out of scope.
//
// The anytime contract is the sanctioned exception: TimeBudget deadlines and
// elapsed-time observability genuinely need the wall clock, and those few
// call sites carry //mctsvet:allow wallclock directives explaining why the
// read cannot leak into a result.

package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockPackages is the pure core: every package whose outputs the
// cached/uncached/parallel/restored equivalence tests pin bit-for-bit.
var wallclockPackages = []string{
	"repro/internal/mcts",
	"repro/internal/eval",
	"repro/internal/cost",
	"repro/internal/difftree",
	"repro/internal/rules",
	"repro/internal/search",
	"repro/internal/core",
}

// wallclockBanned maps package path -> banned package-level functions.
// Methods (e.g. (*rand.Rand).Intn on an explicitly seeded generator) are
// never flagged; rand.New/NewSource/NewZipf construct from explicit seeds
// and are the sanctioned way to get randomness here.
var wallclockBanned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"math/rand":    nil, // nil: every package-level func except the constructors
	"math/rand/v2": nil,
}

var wallclockRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // rand/v2 seeded constructors
}

// Wallclock flags wall-clock reads and process-global RNG use in the pure
// search/eval packages.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "flag time.Now/Since/Until and package-level math/rand calls in the " +
		"pure search/eval packages, where reward RNG must derive from state " +
		"hashes and explicit seeds",
	Packages: wallclockPackages,
	Run:      runWallclock,
}

func runWallclock(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods are fine: the receiver carries the seed
			}
			path := fn.Pkg().Path()
			banned, watched := wallclockBanned[path]
			if !watched {
				return true
			}
			if banned != nil {
				if kind, bad := banned[fn.Name()]; bad {
					p.Reportf(call.Pos(), "%s %s.%s in a pure search/eval package: results must be a function of (config, state); derive from the state hash or an explicit seed (or annotate: //mctsvet:allow wallclock -- <why>)", kind, path, fn.Name())
				}
				return true
			}
			if !wallclockRandConstructors[fn.Name()] {
				p.Reportf(call.Pos(), "process-global RNG %s.%s in a pure search/eval package: draws depend on whole-process history; use rand.New(rand.NewSource(seed)) derived from the state hash or config seed", path, fn.Name())
			}
			return true
		})
	}
	return nil
}
