// Package analysis is the machinery behind cmd/mctsvet: a small,
// self-contained reimplementation of the core of golang.org/x/tools'
// go/analysis framework (Analyzer, Pass, diagnostics, an analysistest-style
// harness under analysistest/) plus the project-specific analyzers that
// machine-check this repository's determinism and concurrency contracts.
//
// The system's headline guarantee — byte-identical results across cached,
// uncached, parallel, and snapshot-restored runs — has been re-broken and
// hand-re-fixed three times: PR 2 (changed-set accumulated in map-iteration
// order), PR 4 (in-place ms[:0] reuse of a slice a memoizing layer retained),
// and PR 8 (cache setters clobbering entries a live search had populated).
// Each fix added a regression test; none prevented the next instance. The
// analyzers here turn those one-off fixes into standing invariants:
//
//   - detmap: no order-dependent effect may be driven by map-iteration order
//     in determinism-critical packages (sort the keys first).
//   - wallclock: the pure search/eval packages read no wall clock and use no
//     process-global RNG; randomness derives from explicit seeds.
//   - slicealias: a function must not reslice a parameter to length zero and
//     refill it in place — the caller (or a memoizing layer) still aliases
//     the backing array.
//   - cachewrite: cache entry fields are written only under a first-write-wins
//     guard, so snapshot imports can never clobber live entries.
//   - directive: every //mctsvet:allow suppression is well-formed, names a
//     known analyzer, and carries a justification.
//
// Deliberate violations are annotated in place:
//
//	//mctsvet:allow <analyzer>[,<analyzer>...] -- <reason>
//
// on the offending line or the line directly above it. The directive
// analyzer rejects malformed or unknown suppressions, and the driver reports
// allowances that no longer suppress anything, so annotations cannot rot.
//
// The framework is stdlib-only by necessity: this module has no external
// dependencies and the build environment is offline, so golang.org/x/tools
// cannot be imported. Import resolution during loading uses the compiler
// export data that `go list -export` materializes in the local build cache
// (see load.go), which keeps the whole checker hermetic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mctsvet:allow directives.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Packages restricts the analyzer to these import paths when the driver
	// runs in scoped mode (cmd/mctsvet). Empty means every package. The
	// analysistest harness ignores the restriction so testdata packages can
	// exercise any analyzer.
	Packages []string

	// Run reports violations on one typechecked package.
	Run func(*Pass) error
}

// appliesTo reports whether the analyzer is in scope for a package path.
func (a *Analyzer) appliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// All returns every analyzer in the mctsvet suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detmap, Wallclock, Slicealias, Cachewrite, Directive}
}

// A Package is one loaded, parsed, and typechecked package — the unit the
// driver hands to analyzers. Loading happens in load.go (cmd/mctsvet) or in
// the analysistest harness (testdata packages).
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks diagnostics matched by a valid //mctsvet:allow
	// directive. The driver keeps them (they mark the allowance as used) but
	// does not print them.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow *allowSet
	diags []Diagnostic
}

// Reportf records a violation at pos. If a valid allow directive covers the
// position, the diagnostic is kept but marked Suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if p.allow != nil && p.allow.match(p.Analyzer.Name, position) {
		d.Suppressed = true
	}
	p.diags = append(p.diags, d)
}

// RunOptions configures one RunPackage call.
type RunOptions struct {
	// Scoped honors each analyzer's Packages restriction (the cmd/mctsvet
	// mode). The analysistest harness runs unscoped.
	Scoped bool
	// ReportUnused emits a "directive" diagnostic for every allowance that
	// suppressed nothing, so stale annotations surface instead of rotting.
	// Only meaningful when the full suite runs (a lone analyzer would see
	// every other analyzer's allowances as unused).
	ReportUnused bool
}

// RunPackage runs the analyzers over one package and returns all
// diagnostics (including suppressed ones) in source order.
func RunPackage(pkg *Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	allow := scanAllowances(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		if opts.Scoped && !a.appliesTo(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			allow:    allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.ImportPath, a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	if opts.ReportUnused {
		diags = append(diags, allow.unused()...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders diagnostics by (file, line, column, analyzer) so
// output is stable regardless of analyzer execution order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inspectStack walks root like ast.Inspect but hands fn the stack of
// enclosing nodes (outermost first, not including n itself). Returning false
// prunes n's subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// ast.Inspect skips both the children and the closing nil
			// callback for a pruned node, so nothing is pushed here.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
