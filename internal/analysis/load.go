// Package loading for cmd/mctsvet: parse and typecheck the module's
// packages using only the standard library and the go tool.
//
// golang.org/x/tools/go/packages is not importable here (the module is
// dependency-free and builds offline), so loading works the way that
// library does under the hood: one `go list -export -deps -json` invocation
// materializes compiler export data for every dependency in the local build
// cache, the target packages' sources are parsed with go/parser, and
// go/types resolves imports through a gc importer whose lookup function
// serves those export files. No network, no GOPATH assumptions, no
// re-typechecking of dependencies from source.

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns in the module rooted at dir, then parses and
// typechecks every matched package plus its in-module dependency closure
// (an analyzer finding in a dependency is just as real as one in the named
// package). Returned packages are in dependency order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && lp.Module != nil {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheckListed(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the JSON stream.
// -export compiles (or reuses from the build cache) export data for every
// package, giving the typechecker its import source; -deps pulls in the
// full closure so in-module dependencies of the named patterns are analyzed
// too.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typecheckListed parses one listed package's sources and typechecks them
// against export data.
func typecheckListed(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info populated with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
