// Package slicealias reproduces the PR 4 aliasing bug for the slicealias
// analyzer: search.Space.moves compacted the enumerated move list in place
// with `out := ms[:0]`, corrupting the copy the transposition cache had
// retained — a cache hit then replayed a half-overwritten move list.
package slicealias

type move struct{ path []int }

type node struct{ size int }

func applyMove(d *node, m move) (*node, bool) { return d, len(m.path) >= 0 }

// filterMovesBuggy is the PR 4 bug, verbatim modulo the stubbed types: ms
// belongs to the enumerator that produced it, and the in-place compaction
// silently clobbers any copy a memoizing layer retains.
func filterMovesBuggy(d *node, ms []move, sizeCap int) []move {
	if sizeCap <= 0 {
		return ms
	}
	out := ms[:0] // want `in-place reuse of parameter slice ms`
	for _, m := range ms {
		if next, ok := applyMove(d, m); ok && next.size <= sizeCap {
			out = append(out, m)
		}
	}
	return out
}

// filterMovesFixed is the PR 4 fix: filter into a fresh slice. Not flagged.
func filterMovesFixed(d *node, ms []move, sizeCap int) []move {
	if sizeCap <= 0 {
		return ms
	}
	out := make([]move, 0, len(ms))
	for _, m := range ms {
		if next, ok := applyMove(d, m); ok && next.size <= sizeCap {
			out = append(out, m)
		}
	}
	return out
}

// fullSliceReset caps capacity at zero, so append must reallocate and the
// caller's array is never written. Not flagged.
func fullSliceReset(ms []move) []move {
	out := ms[:0:0]
	for _, m := range ms {
		if len(m.path) > 0 {
			out = append(out, m)
		}
	}
	return out
}

// localReuse resets a locally owned buffer between iterations — the normal
// buffer-reuse idiom. Not flagged.
func localReuse(batches [][]move) int {
	n := 0
	var buf []move
	for _, b := range batches {
		buf = buf[:0]
		buf = append(buf, b...)
		n += len(buf)
	}
	return n
}

type matcher struct{ trail []move }

// fieldReuse resets a field on an owned receiver (the pooled-matcher
// pattern): the struct owns its scratch space. Not flagged.
func (m *matcher) fieldReuse() {
	m.trail = m.trail[:0]
}

// closureParam reuses a parameter of an enclosing function from inside a
// closure: the capture aliases the caller's array just the same.
func closureParam(ms []move) func() []move {
	return func() []move {
		out := ms[:0] // want `in-place reuse of parameter slice ms`
		return out
	}
}

// appendAPI is a strconv.AppendInt-style API where writing into the
// caller's buffer is the documented contract; the directive records that.
func appendAPI(dst []move, extra move) []move {
	//mctsvet:allow slicealias -- testdata: Append-style API, caller passes dst to be filled
	out := append(dst[:0], extra)
	return out
}

// explicitZeroLow matches the s[0:0] spelling too.
func explicitZeroLow(ms []move) []move {
	out := ms[0:0] // want `in-place reuse of parameter slice ms`
	return append(out, move{})
}
