// Package detmap reproduces the PR 2 determinism bug for the detmap
// analyzer: difftree.Assignment.Changed accumulated the changed choice-node
// set in map-iteration order, so the transition cost term — and therefore
// every search trajectory — differed across processes until the caller
// learned to sort by pre-order position.
package detmap

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

type node struct{ pos int }

// assignment mirrors difftree.Assignment: choice node -> chosen value.
type assignment map[*node]string

// changed is the PR 2 bug, verbatim modulo the package-local node type: the
// changed set is appended in map-iteration order and never sorted, so two
// runs of the same comparison return differently ordered — i.e. different —
// results.
func (a assignment) changed(b assignment) []*node {
	var out []*node
	for n, v := range a { // want `map iteration order drives an append to an outer slice`
		if bv, ok := b[n]; !ok || bv != v {
			out = append(out, n)
		}
	}
	for n := range b { // want `map iteration order drives an append to an outer slice`
		if _, ok := a[n]; !ok {
			out = append(out, n)
		}
	}
	return out
}

// changedSorted is the sanctioned shape: collect, then sort before the
// order can leak. The collect-then-sort idiom must not be flagged.
func (a assignment) changedSorted(b assignment) []*node {
	var out []*node
	for n, v := range a {
		if bv, ok := b[n]; !ok || bv != v {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// countChanged only counts: integer accumulation commutes, so iteration
// order cannot show. Not flagged.
func (a assignment) countChanged(b assignment) int {
	n := 0
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			n++
		}
	}
	return n
}

// invert writes into another map: per-key inserts commute. Not flagged.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// hashValues feeds a hasher in map order: the digest differs per run.
func hashValues(m map[string]uint64) uint64 {
	h := fnv.New64a()
	for k := range m { // want `map iteration order drives a Write to an outer stream or hasher`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

// render builds a string in map order.
func render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want `map iteration order drives a WriteString to an outer stream or hasher`
		b.WriteString(k)
		fmt.Fprintf(&b, "=%d;", v)
	}
	return b.String()
}

// concat accumulates a string with += in map order.
func concat(m map[string]bool) string {
	s := ""
	for k := range m { // want `map iteration order drives string concatenation onto an outer variable`
		s += k
	}
	return s
}

// total sums floats in map order: float addition is not associative, so
// the sum is order-dependent at the last bit — exactly the kind of drift
// the byte-identity contract forbids.
func total(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m { // want `map iteration order drives floating-point accumulation`
		t += v
	}
	return t
}

// fingerprints is the repository's own Fingerprints shape: keys collected
// into a slice that is sorted before returning. Not flagged.
func fingerprints(fps map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(fps))
	for fp := range fps {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allowed demonstrates a justified suppression: the directive covers the
// loop on the next line, so no diagnostic is reported.
func allowed(m map[string]int) []string {
	var out []string
	//mctsvet:allow detmap -- testdata: unordered result, caller sorts
	for k := range m {
		out = append(out, k)
	}
	return out
}
