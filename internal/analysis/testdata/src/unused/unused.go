// Package unused exercises the driver's stale-suppression check: the
// detmap half of the directive below suppresses a real finding, while the
// wallclock half suppresses nothing — in ReportUnused mode (cmd/mctsvet)
// that stale half must be reported so annotations cannot rot.
package unused

func keys(m map[string]int) []string {
	var out []string
	//mctsvet:allow detmap,wallclock -- testdata: unordered result, caller sorts
	for k := range m {
		out = append(out, k)
	}
	return out
}
