// Package wallclock exercises the wallclock analyzer: the pure search/eval
// packages must derive every random draw from explicit seeds and never read
// the wall clock into a result. The bad cases mirror the shapes the
// analyzer exists to keep out of internal/{mcts,search,eval,...}.
package wallclock

import (
	"math/rand"
	"time"
)

// rewardSeed is the sanctioned pattern (internal/eval): RNG constructed
// from a seed derived from the state hash. Constructors and methods on an
// explicitly seeded generator are never flagged.
func rewardSeed(stateHash uint64, k int) float64 {
	rng := rand.New(rand.NewSource(int64(stateHash)))
	t := 0.0
	for i := 0; i < k; i++ {
		t += rng.Float64()
	}
	return t
}

// globalDraw uses the process-global RNG: draws depend on everything else
// the process has sampled, so equal states stop scoring equally.
func globalDraw(n int) int {
	return rand.Intn(n) // want `process-global RNG math/rand.Intn`
}

// seedFromClock smuggles the wall clock in through the seed.
func seedFromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock read time.Now`
}

// deadlineCheck is the shape internal/mcts uses for TimeBudget: a real
// wall-clock dependency that is part of the anytime contract. In the real
// tree it carries an allow directive; here it pins the diagnostic.
func deadlineCheck(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline) // want `wall-clock read time.Now`
}

// elapsed reports time.Since, the observability read.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since`
}

// allowedDeadline demonstrates the justified suppression for the anytime
// contract: budget enforcement may read the clock because the deadline only
// stops iteration, it never feeds a result.
func allowedDeadline(deadline time.Time) bool {
	//mctsvet:allow wallclock -- testdata: anytime budget check, result-invariant
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

// parseDuration uses time for non-clock purposes: constructing durations
// and comparing times someone else stamped is fine.
func parseDuration(ms int) time.Duration {
	return time.Duration(ms) * time.Millisecond
}
