// Package cachewrite reproduces the PR 8 clobbering bug for the cachewrite
// analyzer: the transposition cache's setters assigned entry fields
// unconditionally, so a snapshot import racing a live search could
// overwrite an entry the search had already populated and handed out. The
// fix — and the contract this analyzer enforces — is that every entry-field
// write is guarded by the aspect's presence flag: first write wins.
package cachewrite

import "sync"

// entry mirrors internal/eval's cache entry: per-aspect values with
// presence flags, guarded by the owning shard's mutex.
type entry struct {
	cost     float64
	hasCost  bool
	legal    uint8 // 0 unknown, 1 legal, 2 illegal
	moves    []int
	hasMoves bool
}

type shard struct {
	mu sync.Mutex
	m  map[uint64]*entry
}

type cache struct{ s shard }

func (c *cache) lockFor(key uint64) (*shard, *entry) {
	c.s.mu.Lock()
	e := c.s.m[key]
	if e == nil {
		e = new(entry)
		c.s.m[key] = e
	}
	return &c.s, e
}

// setCostBuggy is the pre-PR 8 setter, verbatim modulo naming: the
// unconditional write lets a second writer (snapshot import) clobber a
// live entry.
func (c *cache) setCostBuggy(key uint64, v float64) {
	s, e := c.lockFor(key)
	e.cost, e.hasCost = v, true // want `write to cache entry field "cost"` `write to cache entry field "hasCost"`
	s.mu.Unlock()
}

// setLegalBuggy is the pre-PR 8 legality setter: branching on the value
// is not a first-write guard.
func (c *cache) setLegalBuggy(key uint64, legal bool) {
	s, e := c.lockFor(key)
	if legal {
		e.legal = 1 // want `write to cache entry field "legal"`
	} else {
		e.legal = 2 // want `write to cache entry field "legal"`
	}
	s.mu.Unlock()
}

// setCostFixed is the PR 8 fix: first write wins. Not flagged.
func (c *cache) setCostFixed(key uint64, v float64) {
	s, e := c.lockFor(key)
	if !e.hasCost {
		e.cost, e.hasCost = v, true
	}
	s.mu.Unlock()
}

// setLegalFixed guards on the zero (unknown) encoding. Not flagged.
func (c *cache) setLegalFixed(key uint64, legal bool) {
	s, e := c.lockFor(key)
	if e.legal == 0 {
		if legal {
			e.legal = 1
		} else {
			e.legal = 2
		}
	}
	s.mu.Unlock()
}

// importEntry merges aspects first-write-wins per aspect, the snapshot
// import shape. Not flagged.
func (c *cache) importEntry(key uint64, cost float64, hasCost bool, legal uint8) {
	s, e := c.lockFor(key)
	if hasCost && !e.hasCost {
		e.cost, e.hasCost = cost, true
	}
	if legal != 0 && e.legal == 0 {
		e.legal = legal
	}
	s.mu.Unlock()
}

// clobberWhole replaces every aspect at once: no guard can make that
// import-safe.
func (c *cache) clobberWhole(key uint64) {
	s, e := c.lockFor(key)
	*e = entry{} // want `whole cache entry overwrite`
	s.mu.Unlock()
}

// setMovesGuarded writes the owned-slice aspect under its flag. Not flagged.
func (c *cache) setMovesGuarded(key uint64, ms []int) {
	s, e := c.lockFor(key)
	if !e.hasMoves {
		e.moves, e.hasMoves = ms, true
	}
	s.mu.Unlock()
}

// resetAllowed shows the sanctioned escape hatch for a deliberate
// lifecycle operation (e.g. a cache Reset) with its justification.
func (c *cache) resetAllowed(key uint64) {
	s, e := c.lockFor(key)
	//mctsvet:allow cachewrite -- testdata: wholesale reset is a lifecycle op, not a racing writer
	*e = entry{}
	s.mu.Unlock()
}
