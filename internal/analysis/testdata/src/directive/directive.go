// Package directive exercises the directive analyzer: every mctsvet:
// comment must be a well-formed allow with known analyzer names and a
// justification, because a malformed suppression suppresses nothing — it
// must fail the build, not silently re-open an invariant.
//
// Line comments cannot carry a trailing `// want` comment (one line holds
// one comment), so the expected findings live in the driving unit test
// (TestDirectiveAnalyzer) keyed by the constants below. Keep the malformed
// block intact: the test pins its exact lines and messages.
package directive

import "sort"

// wellFormed carries a valid suppression: known analyzer, reason present.
// Nothing to report.
func wellFormed(m map[string]int) []string {
	var out []string
	//mctsvet:allow detmap -- testdata: unordered result, caller sorts
	for k := range m {
		out = append(out, k)
	}
	return out
}

// multiName allows two analyzers at once; sorting keeps detmap quiet so the
// wallclock half of the allowance is the only unused one.
func multiName(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// The malformed block — one directive per failure mode:

//mctsvet:suppress detmap -- wrong verb

//mctsvet:allow detmap

//mctsvet:allow mapdet -- transposed analyzer name

//mctsvet:allow detmap,,wallclock -- stray comma in the list

//mctsvet:allow -- no analyzer names at all
