// The //mctsvet:allow directive: syntax, scanning, suppression matching, and
// the analyzer that keeps directives honest.
//
// A directive has the form
//
//	//mctsvet:allow detmap -- caller sorts the result by pre-order position
//	//mctsvet:allow wallclock,detmap -- reason covering both analyzers
//
// and suppresses the named analyzers' findings on the directive's own line
// (trailing-comment style) or on the line directly below it (comment-above
// style). The reason after " -- " is mandatory: a suppression is a reviewed
// exception to a correctness contract, and the justification belongs next to
// the code, not in a PR description that history forgets.

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const directivePrefix = "//mctsvet:"

// An allowance is one parsed analyzer suppression: directives naming several
// analyzers expand to one allowance each.
type allowance struct {
	analyzer string
	pos      token.Position // directive position
	uses     int
}

// allowSet indexes valid allowances by file and line for suppression checks.
type allowSet struct {
	byLine map[string]map[int][]*allowance // filename -> directive line -> allowances
	all    []*allowance
}

// scanAllowances collects the valid allow directives in the files. Malformed
// directives are ignored here — the Directive analyzer reports them — so a
// broken suppression never silently suppresses.
func scanAllowances(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{byLine: make(map[string]map[int][]*allowance)}
	forEachDirective(fset, files, func(pos token.Position, names []string, reason string, parseErr string) {
		if parseErr != "" || reason == "" {
			return
		}
		for _, name := range names {
			if !knownAnalyzer(name) {
				continue
			}
			a := &allowance{analyzer: name, pos: pos}
			byLine := s.byLine[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]*allowance)
				s.byLine[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], a)
			s.all = append(s.all, a)
		}
	})
	return s
}

// match reports whether an allowance for the analyzer covers a diagnostic at
// pos: a directive suppresses its own line and the line directly below it.
func (s *allowSet) match(analyzer string, pos token.Position) bool {
	byLine := s.byLine[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, a := range byLine[line] {
			if a.analyzer == analyzer {
				a.uses++
				return true
			}
		}
	}
	return false
}

// unused returns a diagnostic for every allowance that suppressed nothing —
// the analyzer no longer fires there, so the annotation is stale and must be
// deleted (or the regression it guarded has returned in a changed form).
func (s *allowSet) unused() []Diagnostic {
	var ds []Diagnostic
	for _, a := range s.all {
		if a.uses == 0 {
			ds = append(ds, Diagnostic{
				Pos:      a.pos,
				Analyzer: Directive.Name,
				Message:  "unused suppression: no " + a.analyzer + " finding on this or the next line; delete the directive",
			})
		}
	}
	return ds
}

// forEachDirective invokes fn for every comment carrying the mctsvet: prefix.
// parseErr is non-empty for malformed directives (fn decides whether to
// report or skip them).
func forEachDirective(fset *token.FileSet, files []*ast.File, fn func(pos token.Position, names []string, reason string, parseErr string)) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				if verb != "allow" {
					fn(pos, nil, "", "unknown mctsvet directive "+verb+"; only mctsvet:allow exists")
					continue
				}
				namesPart, reason, hasReason := strings.Cut(args, " -- ")
				reason = strings.TrimSpace(reason)
				if !hasReason || reason == "" {
					fn(pos, nil, "", "missing justification: write //mctsvet:allow <analyzer> -- <reason>")
					continue
				}
				var names []string
				bad := ""
				for _, name := range strings.Split(strings.TrimSpace(namesPart), ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						bad = "empty analyzer name in allow list"
						break
					}
					if !knownAnalyzer(name) {
						bad = "unknown analyzer " + name + " (have " + strings.Join(analyzerNames(), ", ") + ")"
						break
					}
					names = append(names, name)
				}
				if bad != "" {
					fn(pos, nil, "", bad)
					continue
				}
				fn(pos, names, reason, "")
			}
		}
	}
}

// analyzerNameList mirrors All()'s names as plain strings: the directive
// validator needs them while the Analyzer vars are still initializing, so
// reading All() here would be an initialization cycle. TestAnalyzerNameList
// pins the two in sync.
var analyzerNameList = []string{"detmap", "wallclock", "slicealias", "cachewrite", "directive"}

func analyzerNames() []string { return analyzerNameList }

// AnalyzerNames returns the suite's analyzer names; exported for the test
// pinning the list to All().
func AnalyzerNames() []string { return analyzerNameList }

func knownAnalyzer(name string) bool {
	for _, n := range analyzerNameList {
		if n == name {
			return true
		}
	}
	return false
}

// Directive validates every mctsvet: comment: only the allow verb exists,
// analyzer names must be known, and the " -- reason" justification is
// mandatory. Invalid directives suppress nothing (scanAllowances drops
// them), so this analyzer is what turns a typo'd suppression into a build
// failure instead of a silently re-opened invariant.
var Directive = &Analyzer{
	Name: "directive",
	Doc: "report malformed //mctsvet:allow directives: unknown verbs, " +
		"unknown analyzer names, or suppressions missing the mandatory " +
		"' -- <reason>' justification",
	Run: runDirective,
}

func runDirective(p *Pass) error {
	forEachDirective(p.Fset, p.Files, func(pos token.Position, names []string, reason string, parseErr string) {
		if parseErr != "" {
			// Reportf resolves pos from a token.Pos; we already have the
			// Position, so append directly to keep the exact location.
			p.diags = append(p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: parseErr})
		}
	})
	return nil
}
