// The slicealias analyzer: never reslice a function parameter to length
// zero and refill it in place.
//
// This is the PR 4 bug class. search.Space.moves filtered the move list
// with `out := ms[:0]` — compacting into the caller's backing array. The
// moment a memoizing layer (the transposition cache) retained the slice the
// enumerator returned, the in-place filter silently corrupted the cached
// copy: a later cache hit replayed a half-overwritten move list, and move
// enumeration — the thing every search trajectory hangs off — stopped being
// a pure function of the state.
//
// The rule: a `p[:0]` (or `p[0:0]`) reslice whose base is a parameter of
// the enclosing function (or of any enclosing closure) is flagged, because
// appends through it write into memory the caller still aliases. The
// full-slice form `p[:0:0]` caps capacity at zero, forcing append to
// allocate fresh memory, and passes. Reusing a *local* buffer, or a field
// on an owned receiver (pooled matchers, scratch arenas), is the normal
// buffer-reuse idiom and is not flagged. Deliberate strconv.AppendInt-style
// APIs — where writing into the caller's buffer is the documented contract —
// carry a //mctsvet:allow slicealias -- <why> directive.

package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Slicealias flags in-place zero-reslices of function parameters.
var Slicealias = &Analyzer{
	Name: "slicealias",
	Doc: "flag s[:0] reuse of a parameter slice: appends through it clobber " +
		"the caller's (or a memoizing layer's) retained copy; filter into a " +
		"fresh slice or use the capacity-zero full-slice form s[:0:0]",
	Run: runSlicealias,
}

func runSlicealias(p *Pass) error {
	for _, f := range p.Files {
		// params accumulates the slice-typed parameter objects of every
		// enclosing function, outermost first; closures inherit their
		// parents' parameters (a captured parameter aliases just the same).
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			se, ok := n.(*ast.SliceExpr)
			if !ok {
				return true
			}
			if !isZeroReslice(p, se) {
				return true
			}
			id, ok := se.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || !isParamOfEnclosing(p, obj, stack) {
				return true
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
				return true
			}
			p.Reportf(se.Pos(), "in-place reuse of parameter slice %s: %s[:0] aliases the caller's backing array, so appends clobber any retained copy; build a fresh slice, or %s[:0:0] to force reallocation (or annotate: //mctsvet:allow slicealias -- <why>)", id.Name, id.Name, id.Name)
			return true
		})
	}
	return nil
}

// isZeroReslice matches s[:0] and s[0:0] but not the capacity-capped
// s[:0:0], whose appends cannot touch the shared array.
func isZeroReslice(p *Pass, se *ast.SliceExpr) bool {
	if se.High == nil || !isConstZero(p, se.High) {
		return false
	}
	if se.Low != nil && !isConstZero(p, se.Low) {
		return false
	}
	if se.Slice3 && se.Max != nil && isConstZero(p, se.Max) {
		return false // s[:0:0]: capacity 0, append reallocates
	}
	return true
}

func isConstZero(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

// isParamOfEnclosing reports whether obj is declared in the parameter list
// (not the body) of any function enclosing the expression.
func isParamOfEnclosing(p *Pass, obj types.Object, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if p.Info.ObjectOf(name) == obj {
					return true
				}
			}
		}
	}
	return false
}
