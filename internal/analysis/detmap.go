// The detmap analyzer: no order-dependent effect may be driven by Go's
// randomized map-iteration order in determinism-critical packages.
//
// This is the PR 2 bug class. difftree.Assignment.Changed accumulated the
// changed choice-node set with `for n := range assignment { out = append... }`,
// so the transition-cost term summed Steiner-tree edges in a different order
// per process — and equal states scored differently across runs, breaking the
// cached == uncached == parallel equivalence the whole system is built on.
//
// Flagged effects inside a `for ... range m` body (m a map):
//
//   - appending to a slice declared outside the loop (the changed-set bug),
//     unless every such slice is passed to a sort.*/slices.Sort* call later
//     in the same function — the collect-keys-then-sort idiom is the
//     sanctioned fix and must not itself be flagged;
//   - writing to an outer hash/strings.Builder/bytes.Buffer/io.Writer via
//     Write*/Fprint* (bytes fed to a hasher or stream in map order);
//   - string concatenation onto an outer variable (order shows in the value);
//   - floating-point accumulation onto an outer variable (addition of floats
//     is not associative, so the sum depends on iteration order);
//   - sending on a channel (observable ordering).
//
// Pure counting (ints), per-key writes into other maps, and reads are
// order-independent and pass. Deliberate unordered accumulation — e.g. a
// function documented to return an unordered set whose only caller sorts —
// carries a //mctsvet:allow detmap -- <why> directive.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detmapPackages is the determinism-critical set: every package on the path
// from a query log to a served, exported, or persisted byte. The pure search
// core (the seven packages the equivalence tests pin) plus the root package
// and the serialization/serving surfaces whose outputs are compared
// byte-for-byte in CI (golden fixtures, export/import round trips, the
// eviction soak).
var detmapPackages = []string{
	"repro",
	"repro/internal/mcts",
	"repro/internal/eval",
	"repro/internal/cost",
	"repro/internal/difftree",
	"repro/internal/rules",
	"repro/internal/search",
	"repro/internal/core",
	"repro/internal/ast",
	"repro/internal/sqlparser",
	"repro/internal/codec",
	"repro/internal/server",
	"repro/internal/api",
	"repro/internal/api/client",
	"repro/internal/router",
	"repro/internal/engine",
	"repro/internal/layout",
	"repro/internal/htmlpage",
	"repro/internal/widgets",
	"repro/internal/assign",
	"repro/internal/workload",
}

// Detmap flags order-dependent effects driven by map iteration order.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc: "flag `for range` over a map whose body has order-dependent effects " +
		"(append to an outer slice, stream/hash writes, string or float " +
		"accumulation) in determinism-critical packages; sort the keys first",
	Packages: detmapPackages,
	Run:      runDetmap,
}

func runDetmap(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			detmapFunc(p, fd.Body)
			return false
		})
	}
	return nil
}

// detmapFunc checks every range-over-map inside one function body. The body
// is also the search scope for the collect-then-sort exemption: a sort call
// in a different function can't be seen, and such cases take a directive.
func detmapFunc(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		effects := p.mapLoopEffects(rs)
		if len(effects) == 0 {
			return true
		}
		// Collect-then-sort exemption: every effect is an append whose
		// destination is sorted after the loop in this same function.
		exempt := true
		for _, e := range effects {
			if e.appendDest == nil || !sortedAfter(p, body, rs, e.appendDest) {
				exempt = false
				break
			}
		}
		if exempt {
			return true
		}
		first := effects[0]
		for _, e := range effects {
			if e.appendDest == nil || !sortedAfter(p, body, rs, e.appendDest) {
				first = e
				break
			}
		}
		p.Reportf(rs.For, "map iteration order drives %s; iterate sorted keys instead (or annotate: //mctsvet:allow detmap -- <why>)", first.what)
		return true
	})
}

// mapEffect is one order-dependent effect found in a range-over-map body.
type mapEffect struct {
	what string
	// appendDest is the outer slice variable appended to, when the effect is
	// an append to an identifier (the collect-then-sort candidate).
	appendDest types.Object
}

// mapLoopEffects collects the order-dependent effects in the loop body.
func (p *Pass) mapLoopEffects(rs *ast.RangeStmt) []mapEffect {
	var effects []mapEffect
	outer := func(e ast.Expr) bool { return p.declaredOutside(e, rs.Body) }
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			effects = append(effects, p.assignEffects(st, outer)...)
		case *ast.SendStmt:
			if outer(st.Chan) {
				effects = append(effects, mapEffect{what: "a channel send"})
			}
		case *ast.ExprStmt:
			if eff, ok := p.callEffect(st.X, outer); ok {
				effects = append(effects, eff)
			}
		}
		return true
	})
	return effects
}

// assignEffects classifies one assignment inside the loop body.
func (p *Pass) assignEffects(st *ast.AssignStmt, outer func(ast.Expr) bool) []mapEffect {
	var effects []mapEffect
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		if !outer(lhs) {
			return nil
		}
		switch {
		case st.Tok == token.ADD_ASSIGN && p.isString(lhs):
			effects = append(effects, mapEffect{what: "string concatenation onto an outer variable"})
		case p.isFloat(lhs):
			effects = append(effects, mapEffect{what: "floating-point accumulation onto an outer variable (float addition is not associative)"})
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) {
				break
			}
			lhs := st.Lhs[i]
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) && outer(lhs) {
				eff := mapEffect{what: "an append to an outer slice"}
				if id, ok := lhs.(*ast.Ident); ok {
					eff.appendDest = p.Info.ObjectOf(id)
				}
				effects = append(effects, eff)
				continue
			}
			// s = s + x string concatenation.
			if bin, ok := rhs.(*ast.BinaryExpr); ok && bin.Op == token.ADD && outer(lhs) && p.isString(lhs) && sameExpr(lhs, bin.X) {
				effects = append(effects, mapEffect{what: "string concatenation onto an outer variable"})
			}
		}
	}
	return effects
}

// callEffect reports stream/hash writes: method calls like Write/WriteString
// on an outer receiver, and fmt.Fprint* with an outer writer argument.
func (p *Pass) callEffect(x ast.Expr, outer func(ast.Expr) bool) (mapEffect, bool) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return mapEffect{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mapEffect{}, false
	}
	name := sel.Sel.Name
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 && outer(call.Args[0]) {
			return mapEffect{what: "a fmt." + name + " to an outer writer"}, true
		}
		return mapEffect{}, false
	}
	if strings.HasPrefix(name, "Write") && outer(sel.X) {
		return mapEffect{what: "a " + name + " to an outer stream or hasher"}, true
	}
	return mapEffect{}, false
}

// declaredOutside reports whether the assignable expression refers to state
// living beyond one loop iteration: selectors and indexed locations always
// do; identifiers do when their declaration is outside the body.
func (p *Pass) declaredOutside(e ast.Expr, body *ast.BlockStmt) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	case *ast.SelectorExpr:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.declaredOutside(e.X, body)
		}
	case *ast.ParenExpr:
		return p.declaredOutside(e.X, body)
	}
	return false
}

func (p *Pass) isString(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// sameExpr reports whether two expressions are the same identifier or the
// same one-level selector (good enough for the s = s + x pattern).
func sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		return ok && a.Name == bid.Name
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameExpr(a.X, bs.X)
	}
	return false
}

// sortedAfter reports whether dest is passed to a sort.* or slices.Sort*
// call located after the range statement in the same function body.
func sortedAfter(p *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, dest types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		isSort := pkgPath == "sort" || (pkgPath == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if exprUses(p, arg, dest) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprUses reports whether the expression references the object.
func exprUses(p *Pass, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}
