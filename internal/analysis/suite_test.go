package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// The four historical-bug analyzers, each against testdata reproducing the
// original bug verbatim (modulo package-local stub types): PR 2's
// map-ordered changed set, PR 4's in-place ms[:0] compaction, PR 8's
// clobbering cache setters, and the wall-clock/global-RNG shapes wallclock
// exists to keep out of the pure packages. If one of these tests fails, the
// suite would no longer have caught the bug that motivated it.

func TestDetmapHistoricalBug(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detmap, "detmap")
}

func TestWallclockAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock")
}

func TestSlicealiasHistoricalBug(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Slicealias, "slicealias")
}

func TestCachewriteHistoricalBug(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Cachewrite, "cachewrite")
}

// TestDirectiveAnalyzer pins the directive validator's findings on the
// malformed block in testdata/src/directive. Line comments cannot carry a
// trailing `// want` comment, so expectations are asserted directly.
func TestDirectiveAnalyzer(t *testing.T) {
	pkg, err := analysistest.LoadPackage(filepath.Join("testdata", "src", "directive"), "directive")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{analysis.Directive}, analysis.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"unknown mctsvet directive suppress",
		"missing justification",
		"unknown analyzer mapdet",
		"empty analyzer name",
		"missing justification",
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d directive diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, diags[i].Message, w)
		}
		if diags[i].Analyzer != "directive" {
			t.Errorf("diagnostic %d attributed to %q, want directive", i, diags[i].Analyzer)
		}
	}
}

// TestUnusedDirective: an allowance that suppresses nothing must be
// reported when the driver runs with ReportUnused (the cmd/mctsvet mode),
// so stale annotations cannot rot in the tree. The testdata carries one
// detmap,wallclock directive over a map loop: the detmap half suppresses a
// real finding, the wallclock half suppresses nothing and must surface.
func TestUnusedDirective(t *testing.T) {
	pkg, err := analysistest.LoadPackage(filepath.Join("testdata", "src", "unused"), "unused")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPackage(pkg, analysis.All(), analysis.RunOptions{ReportUnused: true})
	if err != nil {
		t.Fatal(err)
	}
	var unused, suppressed int
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			continue
		}
		if d.Analyzer != "directive" || !strings.Contains(d.Message, "unused suppression") {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !strings.Contains(d.Message, "wallclock") {
			t.Errorf("unused suppression should name wallclock: %s", d)
		}
		unused++
	}
	if unused != 1 {
		t.Errorf("got %d unused-suppression findings, want 1", unused)
	}
	if suppressed != 1 {
		t.Errorf("got %d suppressed findings, want 1 (the used detmap allowance)", suppressed)
	}
}

// TestAnalyzerNameList pins the directive validator's name list to All():
// the literal list exists only to break an initialization cycle, and a new
// analyzer missing from it could never be allowed nor validated.
func TestAnalyzerNameList(t *testing.T) {
	all := analysis.All()
	names := analysis.AnalyzerNames()
	if len(all) != len(names) {
		t.Fatalf("All() has %d analyzers, name list has %d", len(all), len(names))
	}
	for i, a := range all {
		if a.Name != names[i] {
			t.Errorf("All()[%d].Name = %q, name list has %q", i, a.Name, names[i])
		}
	}
}

// TestScopedRun: in scoped mode (cmd/mctsvet), an analyzer restricted to
// other packages must not fire. The detmap testdata package is full of
// violations, but its import path is not in Detmap.Packages.
func TestScopedRun(t *testing.T) {
	pkg, err := analysistest.LoadPackage(filepath.Join("testdata", "src", "detmap"), "example.com/not/critical")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{analysis.Detmap}, analysis.RunOptions{Scoped: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("scoped run on an out-of-scope package produced %d diagnostics, want 0; first: %s", len(diags), diags[0])
	}
	unscoped, err := analysis.RunPackage(pkg, []*analysis.Analyzer{analysis.Detmap}, analysis.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unscoped) == 0 {
		t.Error("unscoped run on the same package found nothing: scoping test is vacuous")
	}
}
