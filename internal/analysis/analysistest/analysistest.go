// Package analysistest runs one analyzer over a testdata package and checks
// its diagnostics against `// want` expectations — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the standard
// library because this module builds offline with no dependencies.
//
// Testdata layout mirrors the x/tools convention:
//
//	internal/analysis/testdata/src/<pkg>/*.go
//
// Each file line that should produce a diagnostic carries a trailing
// comment of the form
//
//	// want `regexp`
//	// want `regexp1` `regexp2`        (two diagnostics on the same line)
//
// Matching is exact per line: every want must be matched by a distinct
// reported diagnostic on that line, and every reported diagnostic must
// match a want. Diagnostics suppressed by a valid //mctsvet:allow directive
// are treated as not reported, so testdata can also pin the suppression
// behavior itself.
//
// Testdata packages import only the standard library; imports resolve
// through the source importer (GOROOT source, no compiled artifacts
// needed), keeping the harness hermetic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// srcImporter is shared across Run calls: typechecking the stdlib from
// source is the slow part, and the importer memoizes per package.
var srcImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)

// Run loads testdata/src/<pkg>, runs the analyzer (ignoring its package
// scoping), and reports every mismatch between diagnostics and `// want`
// expectations as a test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	loaded, err := LoadPackage(dir, pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(loaded, []*analysis.Analyzer{a}, analysis.RunOptions{})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}

	wants, err := collectWants(loaded.Fset, loaded.Files)
	if err != nil {
		t.Fatal(err)
	}

	// Match diagnostics to wants per (file, line).
	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		k := key{w.file, w.line}
		unmatched[k] = append(unmatched[k], w)
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ws := unmatched[k]
		matched := false
		for i, w := range ws {
			if w.re.MatchString(d.Message) {
				unmatched[k] = append(ws[:i:i], ws[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	var leftover []string
	for _, ws := range unmatched {
		for _, w := range ws {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re))
		}
	}
	sort.Strings(leftover)
	for _, msg := range leftover {
		t.Errorf("%s", msg)
	}
}

// LoadPackage parses and typechecks every .go file in dir as one package
// whose imports are resolved from GOROOT source. Exported so tests that
// need raw diagnostics (e.g. the unused-directive check, which only fires
// when the whole suite runs) can load testdata without the want-matching.
func LoadPackage(dir, pkgPath string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: srcImporter}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking: %w", err)
	}
	return &analysis.Package{
		ImportPath: pkgPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// want is one expectation: a diagnostic on (file, line) matching re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE extracts the backquoted patterns of one `// want` comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// collectWants scans the files' comments for `// want` expectations.
func collectWants(fset *token.FileSet, files []*ast.File) ([]want, error) {
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				pats := wantRE.FindAllStringSubmatch(text[len("want "):], -1)
				if len(pats) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q: patterns must be backquoted", pos, text)
				}
				for _, m := range pats {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
