// The cachewrite analyzer: transposition-cache entry fields are written only
// under a first-write-wins guard.
//
// This is the PR 8 bug class. The cache setters used to assign entry fields
// unconditionally (`e.cost, e.hasCost = v, true`), which was harmless while
// every writer recomputed the same pure value — until snapshot import became
// a second writer. An import racing a live search could clobber an entry the
// search had already populated and handed out, and "import is idempotent,
// never overwrites live state" silently stopped being true. The fix made
// every setter guard on the aspect's presence flag; this analyzer makes that
// shape mandatory.
//
// Concretely, in internal/eval every assignment to a field of the cache
// `entry` struct must be dominated by an if-condition proving the aspect is
// still unset: `!e.hasCost` (or `e.hasCost == false`) for the cost pair,
// `e.legal == 0` for the legality byte, `!e.hasMoves` / `!e.hasPools` for
// the owned-slice aspects. Whole-entry overwrites (`*e = ...`) are flagged
// unconditionally — there is no guard that makes replacing a live entry's
// every aspect first-write-safe.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cacheEntryType is the struct whose fields the contract protects, and
// cacheWriteGuards maps each protected field to the presence field an
// enclosing if-condition must test.
const cacheEntryType = "entry"

var cacheWriteGuards = map[string]string{
	"cost":     "hasCost",
	"hasCost":  "hasCost",
	"legal":    "legal",
	"moves":    "hasMoves",
	"hasMoves": "hasMoves",
	"pools":    "hasPools",
	"hasPools": "hasPools",
}

// Cachewrite flags cache entry writes outside first-write-wins guards.
var Cachewrite = &Analyzer{
	Name: "cachewrite",
	Doc: "flag writes to transposition-cache entry fields that are not " +
		"guarded by the aspect's presence flag: first write wins, so a " +
		"snapshot import can never clobber an entry a live search populated",
	Packages: []string{"repro/internal/eval"},
	Run:      runCachewrite,
}

func runCachewrite(p *Pass) error {
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				switch lhs := lhs.(type) {
				case *ast.SelectorExpr:
					if !p.isCacheEntry(lhs.X) {
						continue
					}
					field := lhs.Sel.Name
					guard, protected := cacheWriteGuards[field]
					if !protected {
						continue
					}
					if !guardedBy(p, stack, guard) {
						p.Reportf(lhs.Pos(), "write to cache entry field %q outside a first-write-wins guard: wrap in `if !e.%s` (or `e.legal == 0`) so a snapshot import can never clobber a live entry", field, guard)
					}
				case *ast.StarExpr:
					if p.isCacheEntry(lhs.X) {
						p.Reportf(lhs.Pos(), "whole cache entry overwrite: replaces every aspect at once, which no first-write-wins guard can make import-safe; write the fields individually under their guards")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isCacheEntry reports whether the expression has type entry or *entry,
// where entry is this package's cache entry struct.
func (p *Pass) isCacheEntry(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != cacheEntryType || obj.Pkg() != p.Pkg {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// guardedBy reports whether any enclosing if-statement's condition tests
// that the guard field is still unset (`!x.hasCost`, `x.hasCost == false`,
// or `x.legal == 0` on a cache entry).
func guardedBy(p *Pass, stack []ast.Node, guard string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condTestsUnset(p, ifst.Cond, guard) {
			return true
		}
	}
	return false
}

// condTestsUnset walks a condition for a subexpression proving guard is
// unset on a cache entry.
func condTestsUnset(p *Pass, cond ast.Expr, guard string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr: // !e.hasCost
			if e.Op == token.NOT {
				if sel, ok := e.X.(*ast.SelectorExpr); ok && sel.Sel.Name == guard && p.isCacheEntry(sel.X) {
					found = true
				}
			}
		case *ast.BinaryExpr: // e.legal == 0, e.hasCost == false
			if e.Op != token.EQL {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
				sel, ok := pair[0].(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != guard || !p.isCacheEntry(sel.X) {
					continue
				}
				if isConstZero(p, pair[1]) || isFalseLit(pair[1]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isFalseLit(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "false"
}
