package cost

import (
	"math"
	"testing"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/sqlparser"
	"repro/internal/widgets"
)

func paperLog(t testing.TB) []*ast.Node {
	t.Helper()
	srcs := []string{
		"SELECT Sales FROM sales WHERE cty = USA",
		"SELECT Costs FROM sales WHERE cty = EUR",
		"SELECT Costs FROM sales",
	}
	qs := make([]*ast.Node, len(srcs))
	for i, s := range srcs {
		qs[i] = sqlparser.MustParse(s)
	}
	return qs
}

func figure4Tree() *difftree.Node {
	project := difftree.NewAll(ast.KindProject, "",
		difftree.NewAny(
			difftree.NewAll(ast.KindColExpr, "Sales"),
			difftree.NewAll(ast.KindColExpr, "Costs"),
		))
	from := difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "sales"))
	where := difftree.NewOpt(difftree.NewAll(ast.KindWhere, "",
		difftree.NewAll(ast.KindBiExpr, "=",
			difftree.NewAll(ast.KindColExpr, "cty"),
			difftree.NewAny(
				difftree.NewAll(ast.KindStrExpr, "USA"),
				difftree.NewAll(ast.KindStrExpr, "EUR"),
			))))
	return difftree.NewAll(ast.KindSelect, "", project, from, where)
}

func TestEvaluateFigure4(t *testing.T) {
	d := figure4Tree()
	log := paperLog(t)
	p, err := assign.BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	ui := p.First()
	m := Default(layout.Wide)
	b := m.Evaluate(d, ui, log)
	if !b.Valid {
		t.Fatalf("valid interface marked invalid: %s", b.Reason)
	}
	if b.Widgets != 3 {
		t.Errorf("widgets = %d", b.Widgets)
	}
	if b.M <= 0 || b.U <= 0 {
		t.Errorf("M=%f U=%f should both be positive", b.M, b.U)
	}
	if math.IsInf(b.Total(), 1) {
		t.Error("valid interface must have finite cost")
	}
	if b.Total() != b.M+b.U {
		t.Error("Total = M + U")
	}
}

func TestInvalidWhenOversized(t *testing.T) {
	d := figure4Tree()
	log := paperLog(t)
	p, _ := assign.BuildPlan(d)
	ui := p.First()
	tiny := Model{NavUnit: 0.3, Screen: layout.Screen{W: 10, H: 10}}
	b := tiny.Evaluate(d, ui, log)
	if b.Valid {
		t.Fatal("oversized interface must be invalid")
	}
	if !math.IsInf(b.Total(), 1) {
		t.Error("invalid cost must be +Inf")
	}
	if b.Reason == "" {
		t.Error("reason missing")
	}
}

func TestInvalidWhenQueryInexpressible(t *testing.T) {
	d := figure4Tree()
	p, _ := assign.BuildPlan(d)
	ui := p.First()
	badLog := []*ast.Node{sqlparser.MustParse("SELECT Profit FROM sales")}
	b := Default(layout.Wide).Evaluate(d, ui, badLog)
	if b.Valid {
		t.Fatal("inexpressible query must invalidate")
	}
}

func TestNilUIChoiceFree(t *testing.T) {
	q := sqlparser.MustParse("SELECT a FROM t")
	d := difftree.FromAST(q)
	b := Default(layout.Wide).Evaluate(d, nil, []*ast.Node{q})
	if !b.Valid || b.Total() != 0 {
		t.Errorf("static interface should be free: %+v", b)
	}
	// But a nil UI for a choice-bearing tree is invalid.
	d2 := figure4Tree()
	b2 := Default(layout.Wide).Evaluate(d2, nil, paperLog(t))
	if b2.Valid {
		t.Error("nil UI with choices must be invalid")
	}
}

// TestUOrderSensitivity checks that U honors the paper's sequential
// definition: a log alternating between two distant queries costs more than
// the same multiset of queries grouped together.
func TestUOrderSensitivity(t *testing.T) {
	d := figure4Tree()
	p, _ := assign.BuildPlan(d)
	ui := p.First()
	m := Default(layout.Wide)

	q1 := sqlparser.MustParse("SELECT Sales FROM sales WHERE cty = USA")
	q2 := sqlparser.MustParse("SELECT Costs FROM sales")

	alternating := []*ast.Node{q1, q2, q1, q2}
	grouped := []*ast.Node{q1, q1, q2, q2}

	ba := m.Evaluate(d, ui, alternating)
	bg := m.Evaluate(d, ui, grouped)
	if !ba.Valid || !bg.Valid {
		t.Fatal("both logs must be valid")
	}
	if ba.U <= bg.U {
		t.Errorf("alternating log must cost more: alt=%f grouped=%f", ba.U, bg.U)
	}
	// M is independent of the log.
	if ba.M != bg.M {
		t.Error("M must not depend on the log")
	}
}

func TestIdenticalConsecutiveQueriesFree(t *testing.T) {
	d := figure4Tree()
	p, _ := assign.BuildPlan(d)
	ui := p.First()
	q := sqlparser.MustParse("SELECT Sales FROM sales WHERE cty = USA")
	b := Default(layout.Wide).Evaluate(d, ui, []*ast.Node{q, q, q})
	if !b.Valid {
		t.Fatal(b.Reason)
	}
	if b.U != 0 {
		t.Errorf("repeating the same query must cost U=0, got %f", b.U)
	}
}

func TestSingleQueryLogHasNoU(t *testing.T) {
	d := figure4Tree()
	p, _ := assign.BuildPlan(d)
	ui := p.First()
	q := sqlparser.MustParse("SELECT Sales FROM sales WHERE cty = USA")
	b := Default(layout.Wide).Evaluate(d, ui, []*ast.Node{q})
	if b.U != 0 {
		t.Errorf("single query: U=%f", b.U)
	}
	if b.M <= 0 {
		t.Error("M still counts")
	}
}

func TestSteinerEdges(t *testing.T) {
	// vbox(a, hbox(b, c))
	a := layout.NewWidget(widgets.Toggle, widgets.Domain{Kind: widgets.ToggleDomain}, nil)
	b := layout.NewWidget(widgets.Toggle, widgets.Domain{Kind: widgets.ToggleDomain}, nil)
	c := layout.NewWidget(widgets.Toggle, widgets.Domain{Kind: widgets.ToggleDomain}, nil)
	h := layout.NewBox(widgets.HBox, b, c)
	root := layout.NewBox(widgets.VBox, a, h)

	if got := steinerEdges(root, []*layout.Node{a}); got != 0 {
		t.Errorf("single mark: %d edges", got)
	}
	if got := steinerEdges(root, []*layout.Node{b, c}); got != 2 {
		t.Errorf("siblings under hbox: %d edges, want 2", got)
	}
	if got := steinerEdges(root, []*layout.Node{a, b}); got != 3 {
		t.Errorf("across the tree: %d edges, want 3", got)
	}
	if got := steinerEdges(root, []*layout.Node{a, b, c}); got != 4 {
		t.Errorf("all three: %d edges, want 4", got)
	}
	if got := steinerEdges(root, nil); got != 0 {
		t.Errorf("no marks: %d", got)
	}
}

// TestCloserWidgetsCheaper checks the layout-sensitivity of U: the same two
// changing widgets cost less when adjacent than when separated in the
// hierarchy.
func TestCloserWidgetsCheaper(t *testing.T) {
	ch1 := difftree.NewAny(difftree.Emptyn(), difftree.Emptyn())
	ch2 := difftree.NewAny(difftree.Emptyn(), difftree.Emptyn())
	dom := widgets.Domain{Kind: widgets.ChoiceDomain, Options: []string{"x", "y"}, Scalar: true}
	w1 := layout.NewWidget(widgets.Radio, dom, ch1)
	w2 := layout.NewWidget(widgets.Radio, dom, ch2)
	filler := layout.NewWidget(widgets.Toggle, widgets.Domain{Kind: widgets.ToggleDomain}, nil)

	adjacent := layout.NewBox(widgets.VBox, layout.NewBox(widgets.HBox, w1.Clone(), w2.Clone()), filler.Clone())
	// Rebind clones to the same choice nodes for marking.
	adjMarks := []*layout.Node{adjacent.Children[0].Children[0], adjacent.Children[0].Children[1]}
	separated := layout.NewBox(widgets.VBox,
		layout.NewBox(widgets.VBox, w1.Clone()),
		filler.Clone(),
		layout.NewBox(widgets.VBox, w2.Clone()))
	sepMarks := []*layout.Node{separated.Children[0].Children[0], separated.Children[2].Children[0]}

	if ae, se := steinerEdges(adjacent, adjMarks), steinerEdges(separated, sepMarks); ae >= se {
		t.Errorf("adjacent widgets should need fewer steiner edges: %d vs %d", ae, se)
	}
}

func TestDefaultModel(t *testing.T) {
	m := Default(layout.Narrow)
	if m.NavUnit <= 0 {
		t.Error("NavUnit must be positive")
	}
	if m.Screen != layout.Narrow {
		t.Error("screen not stored")
	}
}
