package cost

import (
	"math"
	"testing"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/sqlparser"
)

// joinPairTree builds the factored difftree of two queries that differ only
// in the join partner: Select[Project, From[Table, Join[ANY[Table Table],
// On]], Where?] — the join-partner picker the multi-table extension exists
// for.
func joinPairTree() (*difftree.Node, []*ast.Node) {
	log := []*ast.Node{
		sqlparser.MustParse("select objid from stars inner join photoz on objid = objid"),
		sqlparser.MustParse("select objid from stars inner join specobj on objid = objid"),
	}
	project := difftree.NewAll(ast.KindProject, "", difftree.NewAll(ast.KindColExpr, "objid"))
	on := difftree.NewAll(ast.KindOn, "",
		difftree.NewAll(ast.KindBiExpr, "=",
			difftree.NewAll(ast.KindColExpr, "objid"),
			difftree.NewAll(ast.KindColExpr, "objid")))
	join := difftree.NewAll(ast.KindJoin, "inner",
		difftree.NewAny(
			difftree.NewAll(ast.KindTable, "photoz"),
			difftree.NewAll(ast.KindTable, "specobj"),
		), on)
	from := difftree.NewAll(ast.KindFrom, "", difftree.NewAll(ast.KindTable, "stars"), join)
	return difftree.NewAll(ast.KindSelect, "", project, from), log
}

// singlePairTree is the structurally identical single-table control: the
// same two-option table picker, but sitting directly under From.
func singlePairTree() (*difftree.Node, []*ast.Node) {
	log := []*ast.Node{
		sqlparser.MustParse("select objid from photoz"),
		sqlparser.MustParse("select objid from specobj"),
	}
	project := difftree.NewAll(ast.KindProject, "", difftree.NewAll(ast.KindColExpr, "objid"))
	from := difftree.NewAll(ast.KindFrom, "",
		difftree.NewAny(
			difftree.NewAll(ast.KindTable, "photoz"),
			difftree.NewAll(ast.KindTable, "specobj"),
		))
	return difftree.NewAll(ast.KindSelect, "", project, from), log
}

func evalFirst(t *testing.T, d *difftree.Node, log []*ast.Node) Breakdown {
	t.Helper()
	p, err := assign.BuildPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	m := Default(layout.Screen{W: 1200, H: 800})
	b := m.Evaluate(d, p.First(), log)
	if !b.Valid {
		t.Fatalf("invalid: %s", b.Reason)
	}
	return b
}

// TestStructuralSurcharge: the join-partner picker (a choice directly inside
// a Join node) pays the full structural M and U surcharges relative to the
// identical picker under a plain single-table From.
func TestStructuralSurcharge(t *testing.T) {
	jd, jlog := joinPairTree()
	sd, slog := singlePairTree()
	jb := evalFirst(t, jd, jlog)
	sb := evalFirst(t, sd, slog)
	if jb.Widgets != 1 || sb.Widgets != 1 {
		t.Fatalf("want exactly the table picker widget, got %d / %d", jb.Widgets, sb.Widgets)
	}
	if got := jb.M - sb.M; math.Abs(got-StructuralM) > 1e-9 {
		t.Errorf("M surcharge = %v, want %v", got, StructuralM)
	}
	// One transition (photoz -> specobj) flips the single widget: U differs
	// by exactly one structural interaction surcharge.
	if got := jb.U - sb.U; math.Abs(got-StructuralU) > 1e-9 {
		t.Errorf("U surcharge = %v, want %v", got, StructuralU)
	}
}

// TestStructuralShareFraction: an OPT over a whole Join subtree is
// structural by content (its alternative contains a Join node), and a
// mixed ANY pays a fractional surcharge.
func TestStructuralShareFraction(t *testing.T) {
	e := &Evaluator{parent: map[*difftree.Node]*difftree.Node{}}
	join := difftree.NewAll(ast.KindJoin, "inner",
		difftree.NewAll(ast.KindTable, "specobj"),
		difftree.NewAll(ast.KindOn, "",
			difftree.NewAll(ast.KindBiExpr, "=",
				difftree.NewAll(ast.KindColExpr, "objid"),
				difftree.NewAll(ast.KindColExpr, "objid"))))
	opt := difftree.NewOpt(join)
	if got := e.structuralShare(opt); got != 1 {
		t.Errorf("Opt[Join] share = %v, want 1", got)
	}
	mixed := difftree.NewAny(join.Clone(), difftree.NewAll(ast.KindTable, "stars"))
	if got := e.structuralShare(mixed); got != 0.5 {
		t.Errorf("mixed share = %v, want 0.5", got)
	}
	plain := difftree.NewAny(
		difftree.NewAll(ast.KindTable, "stars"),
		difftree.NewAll(ast.KindTable, "galaxies"))
	if got := e.structuralShare(plain); got != 0 {
		t.Errorf("plain share = %v, want 0", got)
	}
}
