package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/assign"
	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// TestQuickCostProperties checks, over random logs and random widget
// assignments:
//
//   - cost terms are non-negative for valid interfaces,
//   - M does not depend on the log order (U may),
//   - enlarging the screen never invalidates an interface that fit.
func TestQuickCostProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := workload.RandomLog(rng, 2+rng.Intn(3))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		plan, err := assign.BuildPlan(d)
		if err != nil {
			return true // no applicable widget: nothing to check
		}
		ui := plan.Random(rng)
		small := Model{NavUnit: 0.3, Screen: layout.Narrow}
		big := Model{NavUnit: 0.3, Screen: layout.Screen{W: 10000, H: 10000}}

		bdSmall := small.Evaluate(d, ui, log)
		bdBig := big.Evaluate(d, ui, log)

		if bdSmall.Valid && !bdBig.Valid {
			t.Logf("seed %d: bigger screen invalidated the interface", seed)
			return false
		}
		if !bdBig.Valid {
			return true
		}
		if bdBig.M < 0 || bdBig.U < 0 {
			t.Logf("seed %d: negative cost terms", seed)
			return false
		}
		shuffled := permute(log, rng.Perm(len(log)))
		bdShuffled := big.Evaluate(d, ui, shuffled)
		if bdShuffled.Valid && bdShuffled.M != bdBig.M {
			t.Logf("seed %d: M depends on log order", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(114, 40)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRepeatedQueryFreeU: inserting a consecutive duplicate query never
// increases U (the duplicate transition is free).
func TestQuickRepeatedQueryFreeU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log := workload.RandomLog(rng, 2+rng.Intn(3))
		d, err := difftree.Initial(log)
		if err != nil {
			return false
		}
		plan, err := assign.BuildPlan(d)
		if err != nil {
			return true
		}
		ui := plan.Random(rng)
		model := Model{NavUnit: 0.3, Screen: layout.Screen{W: 10000, H: 10000}}
		base := model.Evaluate(d, ui, log)
		if !base.Valid {
			return true
		}
		// Duplicate a random query in place.
		i := rng.Intn(len(log))
		dup := make([]*ast.Node, 0, len(log)+1)
		dup = append(dup, log[:i+1]...)
		dup = append(dup, log[i])
		dup = append(dup, log[i+1:]...)
		withDup := model.Evaluate(d, ui, dup)
		if !withDup.Valid {
			t.Logf("seed %d: duplicate made interface invalid", seed)
			return false
		}
		if withDup.U != base.U {
			t.Logf("seed %d: duplicate transition not free (%f vs %f)", seed, withDup.U, base.U)
			return false
		}
		return true
	}
	if err := quick.Check(f, testutil.QuickConfig(115, 40)); err != nil {
		t.Fatal(err)
	}
}

func permute[T any](xs []T, perm []int) []T {
	out := make([]T, len(xs))
	for i, p := range perm {
		out[i] = xs[p]
	}
	return out
}
