// Package cost implements the paper's interface cost function
//
//	C(W, Q) = Σ_{q_i ∈ Q} U(q_i, q_{i+1}, W) + Σ_{w ∈ W} M(w)
//
// where M(w) scores how appropriate each widget is for the subtrees it
// expresses (borrowed from Zhang, Sellam & Wu 2017) and U models the effort
// to express consecutive log queries: the size of the minimum spanning
// (Steiner) subtree of the widget tree connecting the widgets that must
// change, plus each changed widget's interaction cost. A widget tree that
// exceeds the screen is invalid and has infinite cost.
package cost

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// Model fixes the cost parameters.
type Model struct {
	// NavUnit is the navigation cost per Steiner-tree edge between changed
	// widgets (moving attention/pointer across the layout hierarchy).
	NavUnit float64
	// Screen is the output constraint; oversized interfaces are invalid.
	Screen layout.Screen
}

// Default returns the model used throughout the evaluation.
func Default(screen layout.Screen) Model {
	return Model{NavUnit: 0.3, Screen: screen}
}

// Breakdown reports the cost terms of one interface.
type Breakdown struct {
	M       float64 // Σ appropriateness
	U       float64 // Σ transition effort over consecutive log queries
	Widgets int     // number of interaction widgets
	Bounds  widgets.Size
	Valid   bool   // fits the screen and expresses every log query
	Reason  string // why invalid, when Valid == false
}

// Total is the paper's C(W,Q); +Inf when invalid.
func (b Breakdown) Total() float64 {
	if !b.Valid {
		return math.Inf(1)
	}
	return b.M + b.U
}

// Evaluate scores a widget tree for a difftree against the (ordered) query
// log. The widget tree must have been built from exactly this difftree
// instance (choice-node pointers are shared). When scoring many widget trees
// for the same difftree, build an Evaluator once instead.
func (m Model) Evaluate(root *difftree.Node, ui *layout.Node, log []*ast.Node) Breakdown {
	return m.NewEvaluator(root, log).Evaluate(ui)
}

// Evaluator scores widget trees for one fixed (difftree, log) pair. The
// per-query choice assignments — the expensive part — are computed once and
// shared across every candidate widget tree, which is exactly the access
// pattern of the search's best-of-k reward and the final enumeration.
//
// Beyond the shared assignments, the evaluator memoizes the per-widget cost
// terms across candidate widget trees: widget appropriateness M(w) and
// interaction cost are keyed by (choice node, widget type) — for a fixed
// difftree, that pair determines the widget's domain — and consecutive log
// queries whose transitions touch the same changed choice-node set collapse
// into one transition class whose U term is computed once per widget tree
// and multiplied by its multiplicity. On logs with recurring deltas (e.g.
// SDSS, where most steps flip the same TOP/table widgets) this rescores only
// the distinct changed paths instead of the whole log.
type Evaluator struct {
	model     Model
	root      *difftree.Node
	log       []*ast.Node
	asg       []difftree.Assignment
	classes   []transClass // deduplicated consecutive-pair changed sets
	expressOK bool
	parent    map[*difftree.Node]*difftree.Node

	mMemo map[widgetKey]float64 // Appropriateness per (choice node, widget type)
	uMemo map[widgetKey]float64 // InteractionCost per (choice node, widget type)
}

// widgetKey identifies a widget template placement: for one difftree, the
// (choice node, widget type) pair determines the widget domain and hence
// both its appropriateness and its interaction cost.
type widgetKey struct {
	node *difftree.Node
	t    widgets.Type
}

// transClass is one equivalence class of consecutive-query transitions: all
// pairs whose changed choice-node sets are identical. count is the class
// multiplicity in the log.
type transClass struct {
	changed []*difftree.Node // sorted by pre-order position in the difftree
	count   int
}

// NewEvaluator expresses every log query against the difftree up front.
func (m Model) NewEvaluator(root *difftree.Node, log []*ast.Node) *Evaluator {
	e := &Evaluator{
		model: m, root: root, log: log, expressOK: true,
		mMemo: make(map[widgetKey]float64),
		uMemo: make(map[widgetKey]float64),
	}
	e.asg = make([]difftree.Assignment, len(log))
	for i, q := range log {
		a, ok := difftree.Express(root, q)
		if !ok {
			e.expressOK = false
			return e
		}
		e.asg[i] = a
	}

	// Canonical pre-order positions give changed sets a deterministic order
	// (Assignment is a map; its iteration order must not leak into float
	// summation order) and a stable class key. The same walk records parents
	// for the structural-surcharge lookup.
	pos := make(map[*difftree.Node]int)
	e.parent = make(map[*difftree.Node]*difftree.Node)
	difftree.WalkPath(root, func(n *difftree.Node, _ difftree.Path) bool {
		pos[n] = len(pos)
		for _, c := range n.Children {
			e.parent[c] = n
		}
		return true
	})

	classIdx := make(map[string]int)
	var keyBuf []byte
	for i := 0; i+1 < len(log); i++ {
		changed := e.asg[i].Changed(e.asg[i+1])
		if len(changed) == 0 {
			continue
		}
		sort.Slice(changed, func(a, b int) bool { return pos[changed[a]] < pos[changed[b]] })
		keyBuf = keyBuf[:0]
		for _, cn := range changed {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(pos[cn]))
		}
		key := string(keyBuf)
		if j, ok := classIdx[key]; ok {
			e.classes[j].count++
		} else {
			classIdx[key] = len(e.classes)
			e.classes = append(e.classes, transClass{changed: changed, count: 1})
		}
	}
	return e
}

// Structural surcharges for the multi-table grammar: a widget whose options
// denote join steps, union branches, or subqueries changes the *shape* of
// the query (which tables participate), not just a literal. Explaining such
// an option takes more caption/labelling space and vetting it takes more
// user attention, so structural choices pay a flat appropriateness surcharge
// (M) and a per-use effort surcharge (U), both scaled by the share of
// alternatives that carry multi-table structure.
const (
	StructuralM = 0.4
	StructuralU = 0.2
)

// structuralKinds are the grammar rules introduced by the multi-table
// extension; a choice node is structural when its alternatives contain them.
var structuralKinds = map[ast.Kind]bool{
	ast.KindJoin:     true,
	ast.KindOn:       true,
	ast.KindUnion:    true,
	ast.KindSubquery: true,
}

// structuralShare returns how structural a choice node is: 1 when the choice
// sits directly inside a Join/On/Union/Subquery node (e.g. the join-partner
// table picker, whose alternatives are plain Table leaves), otherwise the
// fraction of its alternatives whose subtrees contain multi-table structure.
// It is 0 for every single-table choice, so the pre-extension cost surface
// is unchanged.
func (e *Evaluator) structuralShare(d *difftree.Node) float64 {
	if d == nil || len(d.Children) == 0 {
		return 0
	}
	for p := e.parent[d]; p != nil; p = e.parent[p] {
		if p.Kind == difftree.All {
			if structuralKinds[p.Label] {
				return 1
			}
			break // nearest enclosing grammar rule decides
		}
		// Skip intervening choice wrappers (OPT/ANY/MULTI chains).
	}
	n := 0
	for _, c := range d.Children {
		if containsStructural(c) {
			n++
		}
	}
	return float64(n) / float64(len(d.Children))
}

func containsStructural(d *difftree.Node) bool {
	if d == nil {
		return false
	}
	if d.Kind == difftree.All && structuralKinds[d.Label] {
		return true
	}
	for _, c := range d.Children {
		if containsStructural(c) {
			return true
		}
	}
	return false
}

// appropriateness memoizes widgets.Appropriateness plus the structural M
// surcharge per placement.
func (e *Evaluator) appropriateness(w *layout.Node) float64 {
	k := widgetKey{node: w.Choice, t: w.Type}
	if c, ok := e.mMemo[k]; ok {
		return c
	}
	c := widgets.Appropriateness(w.Type, w.Domain)
	if !widgets.IsInf(c) {
		c += StructuralM * e.structuralShare(w.Choice)
	}
	e.mMemo[k] = c
	return c
}

// interaction memoizes widgets.InteractionCost plus the structural U
// surcharge per placement.
func (e *Evaluator) interaction(w *layout.Node) float64 {
	k := widgetKey{node: w.Choice, t: w.Type}
	if c, ok := e.uMemo[k]; ok {
		return c
	}
	c := widgets.InteractionCost(w.Type, w.Domain) + StructuralU*e.structuralShare(w.Choice)
	e.uMemo[k] = c
	return c
}

// Evaluate scores one widget tree.
func (e *Evaluator) Evaluate(ui *layout.Node) Breakdown {
	b := Breakdown{Valid: true}
	if ui == nil {
		// A choice-free difftree (single static query) renders no widgets;
		// it is trivially valid with zero cost.
		if e.root.HasChoice() {
			return Breakdown{Valid: false, Reason: "no widget tree for choice-bearing difftree"}
		}
		return b
	}
	if !e.expressOK {
		return Breakdown{Valid: false, Reason: "query not expressible"}
	}

	b.Bounds = ui.Bounds()
	if b.Bounds.W > e.model.Screen.W || b.Bounds.H > e.model.Screen.H {
		return Breakdown{Bounds: b.Bounds, Valid: false, Reason: "exceeds screen " + e.model.Screen.String()}
	}

	byChoice := ui.ByChoice()
	ws := ui.Widgets()
	b.Widgets = len(ws)
	for _, w := range ws {
		c := e.appropriateness(w)
		if widgets.IsInf(c) {
			return Breakdown{Bounds: b.Bounds, Valid: false, Reason: "inapplicable widget " + w.Type.String()}
		}
		b.M += c
	}

	mark := make([]*layout.Node, 0, 8)
	for _, cl := range e.classes {
		mark = mark[:0]
		u := 0.0
		for _, cn := range cl.changed {
			w, ok := byChoice[cn]
			if !ok {
				return Breakdown{Bounds: b.Bounds, Valid: false, Reason: "changed choice without widget"}
			}
			mark = append(mark, w)
			u += e.interaction(w)
		}
		u += float64(steinerEdges(ui, mark)) * e.model.NavUnit
		b.U += u * float64(cl.count)
	}
	return b
}

// steinerEdges counts the edges of the minimal subtree of the widget tree
// that connects all marked nodes: an edge (child, parent) belongs to the
// Steiner tree iff the child's subtree contains some but not all marked
// nodes.
func steinerEdges(root *layout.Node, marked []*layout.Node) int {
	if len(marked) <= 1 {
		return 0
	}
	isMarked := make(map[*layout.Node]bool, len(marked))
	for _, n := range marked {
		isMarked[n] = true
	}
	total := len(isMarked)

	inSubtree := make(map[*layout.Node]int)
	var count func(n *layout.Node) int
	count = func(n *layout.Node) int {
		c := 0
		if isMarked[n] {
			c = 1
		}
		for _, ch := range n.Children {
			c += count(ch)
		}
		inSubtree[n] = c
		return c
	}
	count(root)

	edges := 0
	for n, cnt := range inSubtree {
		if n == root {
			continue
		}
		if cnt > 0 && cnt < total {
			edges++
		}
	}
	return edges
}
