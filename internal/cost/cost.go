// Package cost implements the paper's interface cost function
//
//	C(W, Q) = Σ_{q_i ∈ Q} U(q_i, q_{i+1}, W) + Σ_{w ∈ W} M(w)
//
// where M(w) scores how appropriate each widget is for the subtrees it
// expresses (borrowed from Zhang, Sellam & Wu 2017) and U models the effort
// to express consecutive log queries: the size of the minimum spanning
// (Steiner) subtree of the widget tree connecting the widgets that must
// change, plus each changed widget's interaction cost. A widget tree that
// exceeds the screen is invalid and has infinite cost.
package cost

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/difftree"
	"repro/internal/layout"
	"repro/internal/widgets"
)

// Model fixes the cost parameters.
type Model struct {
	// NavUnit is the navigation cost per Steiner-tree edge between changed
	// widgets (moving attention/pointer across the layout hierarchy).
	NavUnit float64
	// Screen is the output constraint; oversized interfaces are invalid.
	Screen layout.Screen
}

// Default returns the model used throughout the evaluation.
func Default(screen layout.Screen) Model {
	return Model{NavUnit: 0.3, Screen: screen}
}

// Breakdown reports the cost terms of one interface.
type Breakdown struct {
	M       float64 // Σ appropriateness
	U       float64 // Σ transition effort over consecutive log queries
	Widgets int     // number of interaction widgets
	Bounds  widgets.Size
	Valid   bool   // fits the screen and expresses every log query
	Reason  string // why invalid, when Valid == false
}

// Total is the paper's C(W,Q); +Inf when invalid.
func (b Breakdown) Total() float64 {
	if !b.Valid {
		return math.Inf(1)
	}
	return b.M + b.U
}

// Evaluate scores a widget tree for a difftree against the (ordered) query
// log. The widget tree must have been built from exactly this difftree
// instance (choice-node pointers are shared). When scoring many widget trees
// for the same difftree, build an Evaluator once instead.
func (m Model) Evaluate(root *difftree.Node, ui *layout.Node, log []*ast.Node) Breakdown {
	return m.NewEvaluator(root, log).Evaluate(ui)
}

// Evaluator scores widget trees for one fixed (difftree, log) pair. The
// per-query choice assignments — the expensive part — are computed once and
// shared across every candidate widget tree, which is exactly the access
// pattern of the search's best-of-k reward and the final enumeration.
//
// Beyond the shared assignments, the evaluator memoizes the per-widget cost
// terms across candidate widget trees: widget appropriateness M(w) and
// interaction cost are keyed by (choice node, widget type) — for a fixed
// difftree, that pair determines the widget's domain — and consecutive log
// queries whose transitions touch the same changed choice-node set collapse
// into one transition class whose U term is computed once per widget tree
// and multiplied by its multiplicity. On logs with recurring deltas (e.g.
// SDSS, where most steps flip the same TOP/table widgets) this rescores only
// the distinct changed paths instead of the whole log.
type Evaluator struct {
	model     Model
	root      *difftree.Node
	log       []*ast.Node
	asg       []difftree.Assignment
	classes   []transClass // deduplicated consecutive-pair changed sets
	expressOK bool
	parent    map[*difftree.Node]*difftree.Node

	mMemo map[widgetKey]float64 // Appropriateness per (choice node, widget type)
	uMemo map[widgetKey]float64 // InteractionCost per (choice node, widget type)

	// shared, when non-nil, is the cross-state delta-evaluation memo: terms
	// for placements whose (node, context) pair was already scored in any
	// previous state are reused instead of recomputed. See TermMemo.
	shared *TermMemo
}

// widgetKey identifies a widget template placement: for one difftree, the
// (choice node, widget type) pair determines the widget domain and hence
// both its appropriateness and its interaction cost.
type widgetKey struct {
	node *difftree.Node
	t    widgets.Type
}

// termKey identifies a widget placement *across* search states. Copy-on-write
// move application shares every untouched subtree between neighboring states,
// so the same choice-node pointer recurs in thousands of states — but its
// cost terms also depend on context the pointer does not pin down: the widget
// domain reads the immediate parent's kind and label (assign.DomainOf special-
// cases Between bounds, join partners, and union branches), and the
// structural surcharge reads whether the nearest enclosing All ancestor is a
// multi-table rule. Those four fields plus the node pointer and widget type
// determine M(w) and the interaction cost exactly, which is what makes a
// cross-state memo hit bit-identical to a recompute.
type termKey struct {
	node          *difftree.Node
	t             widgets.Type
	parentKind    difftree.Kind
	parentLabel   ast.Kind
	hasParent     bool
	ancStructural bool
}

type termVal struct {
	m, u       float64
	hasM, hasU bool
}

// termMemoCap bounds the shared memo; node-pointer keys retain difftree
// nodes, so an unbounded memo would pin every state the search ever visited.
// At the cap the map is dropped wholesale — the memo is pure acceleration, so
// a flush only costs recomputes.
const termMemoCap = 1 << 16

// TermMemo caches per-placement widget cost terms across search states: the
// delta-evaluation backing store. One TermMemo serves every Evaluator built
// through NewEvaluatorShared for the same (model, log) configuration; after a
// rule application only the placements on the rewritten spine (fresh node
// pointers, or old pointers under a changed context) miss, so the per-widget
// term work per state is O(change) instead of O(tree). Concurrency-safe.
type TermMemo struct {
	mu sync.RWMutex
	m  map[termKey]termVal
}

// NewTermMemo returns an empty shared term memo.
func NewTermMemo() *TermMemo { return &TermMemo{m: make(map[termKey]termVal)} }

func (tm *TermMemo) get(k termKey) (termVal, bool) {
	tm.mu.RLock()
	v, ok := tm.m[k]
	tm.mu.RUnlock()
	return v, ok
}

func (tm *TermMemo) putM(k termKey, m float64) {
	tm.mu.Lock()
	if len(tm.m) >= termMemoCap {
		tm.m = make(map[termKey]termVal)
	}
	v := tm.m[k]
	v.m, v.hasM = m, true
	tm.m[k] = v
	tm.mu.Unlock()
}

func (tm *TermMemo) putU(k termKey, u float64) {
	tm.mu.Lock()
	if len(tm.m) >= termMemoCap {
		tm.m = make(map[termKey]termVal)
	}
	v := tm.m[k]
	v.u, v.hasU = u, true
	tm.m[k] = v
	tm.mu.Unlock()
}

// Len reports the resident term count (for tests and stats).
func (tm *TermMemo) Len() int {
	tm.mu.RLock()
	defer tm.mu.RUnlock()
	return len(tm.m)
}

// transClass is one equivalence class of consecutive-query transitions: all
// pairs whose changed choice-node sets are identical. count is the class
// multiplicity in the log.
type transClass struct {
	changed []*difftree.Node // sorted by pre-order position in the difftree
	count   int
}

// NewEvaluatorShared is NewEvaluator with a cross-state term memo attached:
// per-widget M and interaction terms hit memo entries recorded by evaluators
// of *other* states whenever the placement's node pointer and context are
// unchanged (the copy-on-write common case), making the per-widget term work
// O(change) per state. Results are bit-identical to NewEvaluator — the memo
// key pins every input of both terms. The per-query assignments and the
// transition classes are still computed per state.
func (m Model) NewEvaluatorShared(root *difftree.Node, log []*ast.Node, memo *TermMemo) *Evaluator {
	e := m.NewEvaluator(root, log)
	e.shared = memo
	return e
}

// NewEvaluator expresses every log query against the difftree up front.
func (m Model) NewEvaluator(root *difftree.Node, log []*ast.Node) *Evaluator {
	e := &Evaluator{
		model: m, root: root, log: log, expressOK: true,
		mMemo: make(map[widgetKey]float64),
		uMemo: make(map[widgetKey]float64),
	}
	e.asg = make([]difftree.Assignment, len(log))
	for i, q := range log {
		a, ok := difftree.Express(root, q)
		if !ok {
			e.expressOK = false
			return e
		}
		e.asg[i] = a
	}

	// Canonical pre-order positions give changed sets a deterministic order
	// (Assignment is a map; its iteration order must not leak into float
	// summation order) and a stable class key. The same walk records parents
	// for the structural-surcharge lookup.
	pos := make(map[*difftree.Node]int)
	e.parent = make(map[*difftree.Node]*difftree.Node)
	difftree.WalkPath(root, func(n *difftree.Node, _ difftree.Path) bool {
		pos[n] = len(pos)
		for _, c := range n.Children {
			e.parent[c] = n
		}
		return true
	})

	classIdx := make(map[string]int)
	var keyBuf []byte
	for i := 0; i+1 < len(log); i++ {
		changed := e.asg[i].Changed(e.asg[i+1])
		if len(changed) == 0 {
			continue
		}
		sort.Slice(changed, func(a, b int) bool { return pos[changed[a]] < pos[changed[b]] })
		keyBuf = keyBuf[:0]
		for _, cn := range changed {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(pos[cn]))
		}
		key := string(keyBuf)
		if j, ok := classIdx[key]; ok {
			e.classes[j].count++
		} else {
			classIdx[key] = len(e.classes)
			e.classes = append(e.classes, transClass{changed: changed, count: 1})
		}
	}
	return e
}

// Structural surcharges for the multi-table grammar: a widget whose options
// denote join steps, union branches, or subqueries changes the *shape* of
// the query (which tables participate), not just a literal. Explaining such
// an option takes more caption/labelling space and vetting it takes more
// user attention, so structural choices pay a flat appropriateness surcharge
// (M) and a per-use effort surcharge (U), both scaled by the share of
// alternatives that carry multi-table structure.
const (
	StructuralM = 0.4
	StructuralU = 0.2
)

// structuralKinds are the grammar rules introduced by the multi-table
// extension; a choice node is structural when its alternatives contain them.
var structuralKinds = map[ast.Kind]bool{
	ast.KindJoin:     true,
	ast.KindOn:       true,
	ast.KindUnion:    true,
	ast.KindSubquery: true,
}

// structuralShare returns how structural a choice node is: 1 when the choice
// sits directly inside a Join/On/Union/Subquery node (e.g. the join-partner
// table picker, whose alternatives are plain Table leaves), otherwise the
// fraction of its alternatives whose subtrees contain multi-table structure.
// It is 0 for every single-table choice, so the pre-extension cost surface
// is unchanged.
func (e *Evaluator) structuralShare(d *difftree.Node) float64 {
	if d == nil || len(d.Children) == 0 {
		return 0
	}
	for p := e.parent[d]; p != nil; p = e.parent[p] {
		if p.Kind == difftree.All {
			if structuralKinds[p.Label] {
				return 1
			}
			break // nearest enclosing grammar rule decides
		}
		// Skip intervening choice wrappers (OPT/ANY/MULTI chains).
	}
	n := 0
	for _, c := range d.Children {
		if containsStructural(c) {
			n++
		}
	}
	return float64(n) / float64(len(d.Children))
}

func containsStructural(d *difftree.Node) bool {
	if d == nil {
		return false
	}
	if d.Kind == difftree.All && structuralKinds[d.Label] {
		return true
	}
	for _, c := range d.Children {
		if containsStructural(c) {
			return true
		}
	}
	return false
}

// termKey builds the cross-state memo key for a placement: node pointer and
// widget type plus the context fields (immediate parent kind/label, nearest
// All-ancestor structural bit) that the domain and the structural surcharge
// read — everything the two cost terms depend on.
func (e *Evaluator) termKey(w *layout.Node) termKey {
	d := w.Choice
	k := termKey{node: d, t: w.Type}
	if p := e.parent[d]; p != nil {
		k.hasParent = true
		k.parentKind = p.Kind
		k.parentLabel = p.Label
	}
	for p := e.parent[d]; p != nil; p = e.parent[p] {
		if p.Kind == difftree.All {
			k.ancStructural = structuralKinds[p.Label]
			break
		}
	}
	return k
}

// appropriateness memoizes widgets.Appropriateness plus the structural M
// surcharge per placement — within this evaluator and, when a shared memo is
// attached, across every state that ever scored the same placement.
func (e *Evaluator) appropriateness(w *layout.Node) float64 {
	k := widgetKey{node: w.Choice, t: w.Type}
	if c, ok := e.mMemo[k]; ok {
		return c
	}
	var sk termKey
	if e.shared != nil {
		sk = e.termKey(w)
		if v, ok := e.shared.get(sk); ok && v.hasM {
			e.mMemo[k] = v.m
			return v.m
		}
	}
	c := widgets.Appropriateness(w.Type, w.Domain)
	if !widgets.IsInf(c) {
		c += StructuralM * e.structuralShare(w.Choice)
	}
	e.mMemo[k] = c
	if e.shared != nil {
		e.shared.putM(sk, c)
	}
	return c
}

// interaction memoizes widgets.InteractionCost plus the structural U
// surcharge per placement, with the same sharing as appropriateness.
func (e *Evaluator) interaction(w *layout.Node) float64 {
	k := widgetKey{node: w.Choice, t: w.Type}
	if c, ok := e.uMemo[k]; ok {
		return c
	}
	var sk termKey
	if e.shared != nil {
		sk = e.termKey(w)
		if v, ok := e.shared.get(sk); ok && v.hasU {
			e.uMemo[k] = v.u
			return v.u
		}
	}
	c := widgets.InteractionCost(w.Type, w.Domain) + StructuralU*e.structuralShare(w.Choice)
	e.uMemo[k] = c
	if e.shared != nil {
		e.shared.putU(sk, c)
	}
	return c
}

// Evaluate scores one widget tree.
func (e *Evaluator) Evaluate(ui *layout.Node) Breakdown {
	b := Breakdown{Valid: true}
	if ui == nil {
		// A choice-free difftree (single static query) renders no widgets;
		// it is trivially valid with zero cost.
		if e.root.HasChoice() {
			return Breakdown{Valid: false, Reason: "no widget tree for choice-bearing difftree"}
		}
		return b
	}
	if !e.expressOK {
		return Breakdown{Valid: false, Reason: "query not expressible"}
	}

	b.Bounds = ui.Bounds()
	if b.Bounds.W > e.model.Screen.W || b.Bounds.H > e.model.Screen.H {
		return Breakdown{Bounds: b.Bounds, Valid: false, Reason: "exceeds screen " + e.model.Screen.String()}
	}

	byChoice := ui.ByChoice()
	ws := ui.Widgets()
	b.Widgets = len(ws)
	for _, w := range ws {
		c := e.appropriateness(w)
		if widgets.IsInf(c) {
			return Breakdown{Bounds: b.Bounds, Valid: false, Reason: "inapplicable widget " + w.Type.String()}
		}
		b.M += c
	}

	mark := make([]*layout.Node, 0, 8)
	for _, cl := range e.classes {
		mark = mark[:0]
		u := 0.0
		for _, cn := range cl.changed {
			w, ok := byChoice[cn]
			if !ok {
				return Breakdown{Bounds: b.Bounds, Valid: false, Reason: "changed choice without widget"}
			}
			mark = append(mark, w)
			u += e.interaction(w)
		}
		u += float64(steinerEdges(ui, mark)) * e.model.NavUnit
		b.U += u * float64(cl.count)
	}
	return b
}

// steinerEdges counts the edges of the minimal subtree of the widget tree
// that connects all marked nodes: an edge (child, parent) belongs to the
// Steiner tree iff the child's subtree contains some but not all marked
// nodes.
func steinerEdges(root *layout.Node, marked []*layout.Node) int {
	if len(marked) <= 1 {
		return 0
	}
	isMarked := make(map[*layout.Node]bool, len(marked))
	for _, n := range marked {
		isMarked[n] = true
	}
	total := len(isMarked)

	inSubtree := make(map[*layout.Node]int)
	var count func(n *layout.Node) int
	count = func(n *layout.Node) int {
		c := 0
		if isMarked[n] {
			c = 1
		}
		for _, ch := range n.Children {
			c += count(ch)
		}
		inSubtree[n] = c
		return c
	}
	count(root)

	edges := 0
	for n, cnt := range inSubtree {
		if n == root {
			continue
		}
		if cnt > 0 && cnt < total {
			edges++
		}
	}
	return edges
}
