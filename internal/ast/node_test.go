package ast

import "testing"

func sampleTree() *Node {
	return New(KindSelect, "",
		New(KindProject, "", Leaf(KindColExpr, "objid")),
		New(KindFrom, "", Leaf(KindTable, "stars")),
		New(KindWhere, "",
			New(KindBetween, "",
				Leaf(KindColExpr, "u"),
				Leaf(KindNumExpr, "0"),
				Leaf(KindNumExpr, "30"))),
	)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindSelect:  "Select",
		KindProject: "Project",
		KindBetween: "Between",
		KindEmpty:   "Empty",
		KindSeq:     "Seq",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestKindValid(t *testing.T) {
	if KindInvalid.Valid() {
		t.Error("KindInvalid should not be valid")
	}
	if !KindSelect.Valid() || !KindSeq.Valid() {
		t.Error("defined kinds should be valid")
	}
	if Kind(250).Valid() {
		t.Error("out-of-range kind should not be valid")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := sampleTree()
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatal("clone not equal to original")
	}
	cp.Children[0].Children[0].Value = "changed"
	if Equal(orig, cp) {
		t.Fatal("mutating clone affected original (shallow copy)")
	}
	if orig.Children[0].Children[0].Value != "objid" {
		t.Fatal("original mutated")
	}
}

func TestCloneNil(t *testing.T) {
	var n *Node
	if n.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestSizeDepth(t *testing.T) {
	n := sampleTree()
	if got := n.Size(); got != 10 {
		t.Errorf("Size = %d, want 10", got)
	}
	if got := n.Depth(); got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 {
		t.Error("nil node should have size/depth 0")
	}
}

func TestEqual(t *testing.T) {
	a, b := sampleTree(), sampleTree()
	if !Equal(a, b) {
		t.Fatal("identical trees not Equal")
	}
	b.Children[2].Children[0].Children[1].Value = "1"
	if Equal(a, b) {
		t.Fatal("trees differing in a literal reported Equal")
	}
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("tree vs nil should be unequal")
	}
	c := sampleTree()
	c.Children = c.Children[:2]
	if Equal(a, c) {
		t.Error("different child counts reported Equal")
	}
}

func TestNumeric(t *testing.T) {
	n := Leaf(KindNumExpr, "12.5")
	if !n.IsNumericValue() {
		t.Error("12.5 should be numeric")
	}
	v, ok := n.Numeric()
	if !ok || v != 12.5 {
		t.Errorf("Numeric = %v,%v", v, ok)
	}
	s := Leaf(KindStrExpr, "USA")
	if s.IsNumericValue() {
		t.Error("USA should not be numeric")
	}
	var nilNode *Node
	if nilNode.IsNumericValue() {
		t.Error("nil not numeric")
	}
	if Leaf(KindStrExpr, "").IsNumericValue() {
		t.Error("empty value not numeric")
	}
}

func TestStringSexp(t *testing.T) {
	n := New(KindBiExpr, "=", Leaf(KindColExpr, "cty"), Leaf(KindStrExpr, "USA"))
	want := "(BiExpr:= (ColExpr:cty) (StrExpr:USA))"
	if got := n.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHashEqualTrees(t *testing.T) {
	if Hash(sampleTree()) != Hash(sampleTree()) {
		t.Error("equal trees must hash equally")
	}
	a := sampleTree()
	b := sampleTree()
	b.Children[0].Children[0].Value = "count"
	if Hash(a) == Hash(b) {
		t.Error("different trees should (almost surely) hash differently")
	}
}

func TestHashChildBoundary(t *testing.T) {
	// (A (B) (C)) must not collide with (A (B (C))).
	flat := New(KindAnd, "", Leaf(KindColExpr, "b"), Leaf(KindColExpr, "c"))
	nested := New(KindAnd, "", New(KindColExpr, "b", Leaf(KindColExpr, "c")))
	if Hash(flat) == Hash(nested) {
		t.Error("hash must distinguish tree shapes")
	}
}

func TestShapeHashIgnoresLeafValues(t *testing.T) {
	a := New(KindBiExpr, "=", Leaf(KindColExpr, "cty"), Leaf(KindStrExpr, "USA"))
	b := New(KindBiExpr, "=", Leaf(KindColExpr, "region"), Leaf(KindStrExpr, "EUR"))
	if ShapeHash(a) != ShapeHash(b) {
		t.Error("shape hash should ignore leaf values")
	}
	c := New(KindBiExpr, "<", Leaf(KindColExpr, "cty"), Leaf(KindStrExpr, "USA"))
	if ShapeHash(a) == ShapeHash(c) {
		t.Error("shape hash must keep interior values (operators)")
	}
}

func TestDedup(t *testing.T) {
	a, b := sampleTree(), sampleTree()
	c := sampleTree()
	c.Children[0].Children[0].Value = "count"
	got := Dedup([]*Node{a, b, c, a.Clone()})
	if len(got) != 2 {
		t.Fatalf("Dedup returned %d trees, want 2", len(got))
	}
	if !Equal(got[0], a) || !Equal(got[1], c) {
		t.Error("Dedup should preserve first-occurrence order")
	}
}
