package ast

import "hash/fnv"

// Hash returns a structural 64-bit hash of the subtree. Equal trees hash
// equally; unequal trees collide with FNV-1a's usual probability.
func Hash(n *Node) uint64 {
	h := fnv.New64a()
	writeHash(n, h)
	return h.Sum64()
}

type byteWriter interface{ Write([]byte) (int, error) }

func writeHash(n *Node, h byteWriter) {
	if n == nil {
		h.Write([]byte{0xff})
		return
	}
	h.Write([]byte{byte(n.Kind)})
	h.Write([]byte(n.Value))
	h.Write([]byte{0x1f})
	for _, c := range n.Children {
		writeHash(c, h)
	}
	h.Write([]byte{0x1e})
}

// ShapeHash hashes the subtree ignoring leaf values: two queries that differ
// only in literals (the common case in a query log) share a shape hash. Node
// kinds, child counts, and non-leaf values (operators, function names) are
// still included so that e.g. `a = 1` and `a < 1` differ.
func ShapeHash(n *Node) uint64 {
	h := fnv.New64a()
	writeShapeHash(n, h)
	return h.Sum64()
}

func writeShapeHash(n *Node, h byteWriter) {
	if n == nil {
		h.Write([]byte{0xff})
		return
	}
	h.Write([]byte{byte(n.Kind)})
	if len(n.Children) > 0 {
		// Interior values (operators, function names) are structural.
		h.Write([]byte(n.Value))
	}
	h.Write([]byte{0x1f})
	for _, c := range n.Children {
		writeShapeHash(c, h)
	}
	h.Write([]byte{0x1e})
}

// Dedup returns the input trees with structural duplicates removed,
// preserving first-occurrence order.
func Dedup(ns []*Node) []*Node {
	seen := make(map[uint64][]*Node, len(ns))
	out := ns[:0:0]
	for _, n := range ns {
		h := Hash(n)
		dup := false
		for _, prev := range seen[h] {
			if Equal(prev, n) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], n)
			out = append(out, n)
		}
	}
	return out
}
