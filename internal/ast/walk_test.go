package ast

import (
	"reflect"
	"testing"
)

func TestWalkPreorder(t *testing.T) {
	n := sampleTree()
	var kinds []Kind
	Walk(n, func(x *Node) bool {
		kinds = append(kinds, x.Kind)
		return true
	})
	want := []Kind{KindSelect, KindProject, KindColExpr, KindFrom, KindTable,
		KindWhere, KindBetween, KindColExpr, KindNumExpr, KindNumExpr}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("Walk order = %v, want %v", kinds, want)
	}
}

func TestWalkPrune(t *testing.T) {
	n := sampleTree()
	count := 0
	Walk(n, func(x *Node) bool {
		count++
		return x.Kind != KindWhere // do not descend into WHERE
	})
	if count != 6 {
		t.Errorf("pruned walk visited %d nodes, want 6", count)
	}
}

func TestAtAndWalkPath(t *testing.T) {
	n := sampleTree()
	got := At(n, Path{2, 0, 1})
	if got == nil || got.Kind != KindNumExpr || got.Value != "0" {
		t.Fatalf("At(2,0,1) = %v", got)
	}
	if At(n, Path{9}) != nil {
		t.Error("out-of-range path should return nil")
	}
	if At(n, nil) != n {
		t.Error("empty path should return root")
	}

	paths := map[string]Kind{}
	WalkPath(n, func(x *Node, p Path) bool {
		key := ""
		for _, i := range p {
			key += string(rune('0' + i))
		}
		paths[key] = x.Kind
		return true
	})
	if paths["20"] != KindBetween {
		t.Errorf("path 2/0 wrong: %v", paths["20"])
	}
	if paths[""] != KindSelect {
		t.Error("root path wrong")
	}
}

func TestFind(t *testing.T) {
	n := sampleTree()
	p, ok := Find(n, func(x *Node) bool { return x.Kind == KindTable })
	if !ok || !reflect.DeepEqual(p, Path{1, 0}) {
		t.Errorf("Find(Table) = %v,%v", p, ok)
	}
	_, ok = Find(n, func(x *Node) bool { return x.Kind == KindOrderBy })
	if ok {
		t.Error("Find should miss absent kinds")
	}
}

func TestReplaceAt(t *testing.T) {
	n := sampleTree()
	repl := Leaf(KindTable, "galaxies")
	out := ReplaceAt(n, Path{1, 0}, repl)
	if out == nil {
		t.Fatal("ReplaceAt returned nil")
	}
	if At(out, Path{1, 0}).Value != "galaxies" {
		t.Error("replacement not applied")
	}
	if At(n, Path{1, 0}).Value != "stars" {
		t.Error("ReplaceAt mutated the original")
	}
	// Shared untouched subtrees are fine, but the spine must be fresh.
	if out == n || out.Children[1] == n.Children[1] {
		t.Error("spine must be copied")
	}
	if ReplaceAt(n, Path{7, 7}, repl) != nil {
		t.Error("invalid path should return nil")
	}
	if ReplaceAt(n, nil, repl) != repl {
		t.Error("empty path replaces the root")
	}
}

func TestChildOfKind(t *testing.T) {
	n := sampleTree()
	if n.ChildOfKind(KindFrom) == nil {
		t.Error("From child missing")
	}
	if n.ChildOfKind(KindOrderBy) != nil {
		t.Error("unexpected OrderBy child")
	}
}

func TestLeaves(t *testing.T) {
	n := sampleTree()
	ls := Leaves(n, nil)
	if len(ls) != 5 {
		t.Fatalf("Leaves = %d nodes, want 5", len(ls))
	}
	for _, l := range ls {
		if len(l.Children) != 0 {
			t.Error("non-leaf returned by Leaves")
		}
	}
	if Leaves(nil, nil) != nil {
		t.Error("nil tree should produce no leaves")
	}
}

func TestPathClone(t *testing.T) {
	p := Path{1, 2, 3}
	c := p.Clone()
	c[0] = 9
	if p[0] != 1 {
		t.Error("Clone must not alias")
	}
}
