// Package ast defines the generic grammar abstract syntax tree shared by the
// SQL parser, the difftree, and the query engine.
//
// Each Node corresponds to one rule in the query grammar (paper Figure 1):
// Select, Project, From, Where, Table, ColExpr, StrExpr, NumExpr, BiExpr, and
// so on. A node carries an optional Value (a column name, a literal, an
// operator) and an ordered list of children.
package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the grammar rule a node corresponds to.
type Kind uint8

// Grammar rule kinds. The set covers the SQL subset used by the paper's
// evaluation (SDSS-style analytic queries) plus the synthetic markers used
// internally by the difftree (Empty, Seq).
const (
	KindInvalid  Kind = iota
	KindSelect        // root of a query; children: Project, From, [Where], [GroupBy], [OrderBy], [Top|Limit]
	KindProject       // children: ColExpr | FuncExpr | Star, in select-list order
	KindFrom          // children: Table, then zero or more Join steps
	KindWhere         // children: one predicate expression
	KindGroupBy       // children: ColExpr...
	KindOrderBy       // children: SortKey...
	KindTop           // Value: row count
	KindLimit         // Value: row count
	KindDistinct      // marker child of Select
	KindTable         // Value: table name
	KindColExpr       // Value: column name; optional child Alias
	KindStrExpr       // Value: string literal
	KindNumExpr       // Value: numeric literal
	KindStar          // "*"
	KindFuncExpr      // Value: function name; children: argument expressions
	KindBiExpr        // Value: operator (=, <, >, <=, >=, !=); children: lhs, rhs
	KindBetween       // children: ColExpr, NumExpr lo, NumExpr hi
	KindIn            // children: ColExpr, literals... — or ColExpr, Subquery
	KindLike          // children: ColExpr, StrExpr
	KindNot           // children: predicate
	KindAnd           // children: predicates (n-ary, flattened)
	KindOr            // children: predicates (n-ary, flattened)
	KindSortKey       // Value: "asc" or "desc"; children: ColExpr
	KindAlias         // Value: alias name

	// KindEmpty generates the empty sequence; it is the ∅ marker in the
	// paper's Figure 5 and only appears inside difftrees.
	KindEmpty
	// KindSeq splices its children into its parent's child sequence; it is
	// produced by the Lift transformation rule and only appears inside
	// difftrees.
	KindSeq

	// Multi-table extension. These are appended after the difftree markers so
	// the numeric values of the original kinds stay stable (structural hashes
	// and any persisted artifacts keyed on them do not shift).

	// KindJoin is one join step in a FROM chain. Value: "inner" or "left";
	// children: Table (the join partner), On.
	KindJoin
	// KindOn is a join condition: children are equi-predicates (BiExpr "="
	// over two ColExprs), n-ary, AND-joined.
	KindOn
	// KindUnion combines whole SELECT queries. Value: "" (UNION, dedup) or
	// "all" (UNION ALL); children: Select nodes, n-ary, flattened. The
	// supported fragment keeps one connective per chain (no mixing).
	KindUnion
	// KindSubquery wraps a nested Select. Value "": relation form, the RHS of
	// IN (children of In: ColExpr, Subquery); Value "exists": predicate form,
	// usable wherever a predicate is. One nesting level is supported.
	KindSubquery

	kindMax
)

var kindNames = [...]string{
	KindInvalid:  "Invalid",
	KindSelect:   "Select",
	KindProject:  "Project",
	KindFrom:     "From",
	KindWhere:    "Where",
	KindGroupBy:  "GroupBy",
	KindOrderBy:  "OrderBy",
	KindTop:      "Top",
	KindLimit:    "Limit",
	KindDistinct: "Distinct",
	KindTable:    "Table",
	KindColExpr:  "ColExpr",
	KindStrExpr:  "StrExpr",
	KindNumExpr:  "NumExpr",
	KindStar:     "Star",
	KindFuncExpr: "FuncExpr",
	KindBiExpr:   "BiExpr",
	KindBetween:  "Between",
	KindIn:       "In",
	KindLike:     "Like",
	KindNot:      "Not",
	KindAnd:      "And",
	KindOr:       "Or",
	KindSortKey:  "SortKey",
	KindAlias:    "Alias",
	KindEmpty:    "Empty",
	KindSeq:      "Seq",
	KindJoin:     "Join",
	KindOn:       "On",
	KindUnion:    "Union",
	KindSubquery: "Subquery",
}

// KindNames returns the name of every defined kind indexed by its numeric
// value (index 0 is "Invalid"). It is the grammar's numbering table: persisted
// artifacts keyed on structural hashes (cache snapshots in particular) embed
// it so a consumer can verify that each kind it was built against still maps
// to the same number — appending new kinds keeps old artifacts valid, while
// renumbering or renaming invalidates them loudly instead of silently.
func KindNames() []string {
	names := make([]string, int(kindMax))
	for i := range names {
		names[i] = Kind(i).String()
	}
	return names
}

// String returns the grammar rule name for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined grammar kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// Node is a single grammar AST node.
type Node struct {
	Kind     Kind
	Value    string
	Children []*Node
}

// New constructs a node.
func New(kind Kind, value string, children ...*Node) *Node {
	return &Node{Kind: kind, Value: value, Children: children}
}

// Leaf constructs a node without children.
func Leaf(kind Kind, value string) *Node { return &Node{Kind: kind, Value: value} }

// Clone deep-copies the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Value: n.Value}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Equal reports whether the two subtrees are structurally identical
// (same kinds, values, and child order).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Value != b.Value || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// IsNumericValue reports whether the node's value parses as a number.
func (n *Node) IsNumericValue() bool {
	if n == nil || n.Value == "" {
		return false
	}
	_, err := strconv.ParseFloat(n.Value, 64)
	return err == nil
}

// Numeric returns the node value parsed as float64, and whether it parsed.
func (n *Node) Numeric() (float64, bool) {
	v, err := strconv.ParseFloat(n.Value, 64)
	return v, err == nil
}

// String renders the subtree as a compact S-expression; useful in tests and
// error messages, not for SQL output (see sqlparser.Render for that).
func (n *Node) String() string {
	var b strings.Builder
	n.writeSexp(&b)
	return b.String()
}

func (n *Node) writeSexp(b *strings.Builder) {
	if n == nil {
		b.WriteString("()")
		return
	}
	b.WriteByte('(')
	b.WriteString(n.Kind.String())
	if n.Value != "" {
		b.WriteByte(':')
		b.WriteString(n.Value)
	}
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.writeSexp(b)
	}
	b.WriteByte(')')
}
