package ast

// Walk visits every node in the subtree rooted at n in pre-order. If fn
// returns false the children of the current node are not visited.
func Walk(n *Node, fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// Path is a sequence of child indexes from a root to a descendant.
type Path []int

// Clone copies the path.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// At returns the node reached by following p from root, or nil if the path
// leaves the tree.
func At(root *Node, p Path) *Node {
	n := root
	for _, i := range p {
		if n == nil || i < 0 || i >= len(n.Children) {
			return nil
		}
		n = n.Children[i]
	}
	return n
}

// WalkPath visits every node with its path from the root in pre-order.
func WalkPath(root *Node, fn func(*Node, Path) bool) {
	var rec func(n *Node, p Path) bool
	rec = func(n *Node, p Path) bool {
		if n == nil {
			return true
		}
		if !fn(n, p) {
			return false
		}
		for i, c := range n.Children {
			if !rec(c, append(p, i)) {
				return false
			}
		}
		return true
	}
	rec(root, nil)
}

// Find returns the path of the first node (pre-order) for which pred holds,
// or nil, false when none matches.
func Find(root *Node, pred func(*Node) bool) (Path, bool) {
	var found Path
	ok := false
	WalkPath(root, func(n *Node, p Path) bool {
		if ok {
			return false
		}
		if pred(n) {
			found = p.Clone()
			ok = true
			return false
		}
		return true
	})
	return found, ok
}

// ReplaceAt returns a copy of root with the subtree at path p replaced by
// repl (repl is used as-is, not cloned). It returns nil if p is invalid.
func ReplaceAt(root *Node, p Path, repl *Node) *Node {
	if len(p) == 0 {
		return repl
	}
	if root == nil || p[0] < 0 || p[0] >= len(root.Children) {
		return nil
	}
	out := &Node{Kind: root.Kind, Value: root.Value, Children: make([]*Node, len(root.Children))}
	copy(out.Children, root.Children)
	sub := ReplaceAt(root.Children[p[0]], p[1:], repl)
	if sub == nil {
		return nil
	}
	out.Children[p[0]] = sub
	return out
}

// ChildOfKind returns the first direct child of n with the given kind.
func (n *Node) ChildOfKind(k Kind) *Node {
	for _, c := range n.Children {
		if c.Kind == k {
			return c
		}
	}
	return nil
}

// Leaves appends all leaf nodes of the subtree to dst and returns it.
func Leaves(n *Node, dst []*Node) []*Node {
	if n == nil {
		return dst
	}
	if len(n.Children) == 0 {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = Leaves(c, dst)
	}
	return dst
}
