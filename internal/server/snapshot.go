package server

import (
	"errors"
	"fmt"
	"net/http"

	mctsui "repro"
	"repro/internal/api"
)

// Cache snapshot transfer endpoints: the serving surface of the cache's
// portability (see mctsui.Cache.WriteTo/ReadFrom). Export ships the
// daemon's warm cost/legality entries to an operator or a fresh replica;
// import warms a cold daemon from such a snapshot. Both are admission-aware
// without consuming search slots — transfers serialize on their own
// one-deep semaphore so a slow snapshot stream can neither starve searches
// nor pile up.
//
// Drain semantics are asymmetric by design: export stays available while
// draining — capturing the warm set on the way down is the whole point of a
// graceful handoff — while import is refused with 503, since a daemon that
// is shutting down has no use for new warmth.

// acquireSnapshot claims the one-at-a-time snapshot transfer slot; false
// means the response (409) has been written.
func (s *Server) acquireSnapshot(w http.ResponseWriter) bool {
	select {
	case s.snapSem <- struct{}{}:
		return true
	default:
		s.fail(w, http.StatusConflict, errors.New("another cache snapshot transfer is in progress"))
		return false
	}
}

func (s *Server) releaseSnapshot() { <-s.snapSem }

func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	if !s.acquireSnapshot(w) {
		return
	}
	defer s.releaseSnapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="cache.snap"`)
	// The snapshot streams straight to the client; the cache stays live (per
	// shard locking), so exports don't pause searches. A mid-stream write
	// error just means the client went away — nothing to clean up.
	_, _ = s.cache.WriteTo(w)
}

func (s *Server) handleCacheImport(w http.ResponseWriter, r *http.Request) {
	// admitMu interlock mirrors admit(): once Drain returns, no import can
	// slip in late and mutate the cache mid-handoff.
	s.admitMu.RLock()
	draining := s.draining.Load()
	s.admitMu.RUnlock()
	if draining {
		s.fail(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	if !s.acquireSnapshot(w) {
		return
	}
	defer s.releaseSnapshot()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes)
	n, err := s.cache.ReadFrom(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("snapshot exceeds %d bytes", s.cfg.MaxSnapshotBytes))
		case errors.Is(err, mctsui.ErrSnapshotFormat), errors.Is(err, mctsui.ErrSnapshotSchema):
			// The cache is untouched: snapshots are fully verified before the
			// first entry is merged.
			s.fail(w, http.StatusUnprocessableEntity, err)
		default:
			s.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, api.CacheImportResponse{Entries: n})
}
