package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	mctsui "repro"
	"repro/internal/api"
)

// session is one user's evolving workload: the accumulated query log, the
// interface generated over it, and the live widget state driving it. The
// per-session mutex serializes appends/interactions; lastUsed (guarded by
// the server mutex) drives LRU eviction of idle sessions.
type session struct {
	// lockc is a channel-based mutex (capacity 1) serializing requests on
	// one session. Unlike a sync.Mutex, waiters are bounded: lock() gives
	// up after a deadline and when the client disconnects, so a pile of
	// requests against one busy session id degrades into 409s instead of
	// unbounded parked goroutines that bypass admission control.
	lockc   chan struct{}
	id      string
	queries []string
	// sess carries the widget state; the generated interface it drives is
	// reachable as sess.Interface(). nil until the first successful
	// generation or import. Guarded by lockc.
	sess *mctsui.Session
	// tree is the MCTS search tree persisted by the session's latest
	// generation, re-rooted into the next append's search (nil for
	// tree-parallel or non-MCTS searches, and for imported interfaces).
	// Only the latest tree is kept. Guarded by lockc.
	tree *mctsui.SearchTree
	// lastUsed, refs, and populated are guarded by the *server* mutex:
	// refs counts requests between lookup and done — eviction skips
	// refs > 0, so a session handed to a handler can never be discarded
	// mid-request — and populated records that an interface was ever
	// stored (see Server.done).
	lastUsed  time.Time
	refs      int
	populated bool
}

// lookup returns the session pinned (refs incremented — callers must
// release with done), optionally creating it. Creation never evicts:
// eviction is deferred to markPopulated, so a create that subsequently
// fails validation or generation cannot cost an innocent resident session
// its state. The map therefore overshoots MaxSessions only transiently, by
// at most the number of concurrent requests.
func (s *Server) lookup(id string, create bool) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		sess.lastUsed = time.Now()
		sess.refs++
		return sess, true
	}
	if !create {
		return nil, false
	}
	sess := &session{lockc: make(chan struct{}, 1), id: id, lastUsed: time.Now(), refs: 1}
	s.sessions[id] = sess
	return sess, true
}

// errSessionBusy reports that another request held the session for the
// whole bounded wait.
var errSessionBusy = errors.New("session busy with another request")

// lock serializes requests on the session, waiting at most wait and
// honoring client disconnect; unlock releases it.
func (sess *session) lock(ctx context.Context, wait time.Duration) error {
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case sess.lockc <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return errSessionBusy
	}
}

func (sess *session) unlock() { <-sess.lockc }

// lockStatus maps a session lock failure to its HTTP status.
func lockStatus(err error) int {
	if errors.Is(err, errSessionBusy) {
		return http.StatusConflict
	}
	return http.StatusServiceUnavailable
}

// markPopulated records (under the server mutex) that the session now
// holds an interface; called by the handlers that store one. This is also
// the LRU eviction point: once the newcomer has earned its slot, the
// least-recently-used populated session beyond MaxSessions is discarded —
// never one pinned by an in-flight request.
func (s *Server) markPopulated(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess.populated = true
	for len(s.sessions) > s.cfg.MaxSessions {
		var lruID string
		var lruAt time.Time
		for id, cand := range s.sessions {
			if cand == sess || cand.refs > 0 || !cand.populated {
				continue // the newcomer, mid-request, or cleaned up by done()
			}
			if lruID == "" || cand.lastUsed.Before(lruAt) {
				lruID, lruAt = id, cand.lastUsed
			}
		}
		if lruID == "" {
			return // everything else is pinned; done() will converge later
		}
		delete(s.sessions, lruID)
	}
}

// done unpins a looked-up session and re-stamps its recency, so time spent
// searching does not age the session toward LRU eviction. A session that
// never acquired an interface is unregistered once its last holder leaves
// — the cleanup path for requests that created one and then failed
// validation or generation, so failed creates leave no resident state.
// Callers may hold sess.mu; lock order stays acyclic because nothing
// acquires sess.mu under s.mu.
func (s *Server) done(sess *session) {
	s.mu.Lock()
	sess.refs--
	sess.lastUsed = time.Now()
	if !sess.populated && sess.refs == 0 {
		if cur, ok := s.sessions[sess.id]; ok && cur == sess {
			delete(s.sessions, sess.id)
		}
	}
	s.mu.Unlock()
}

func sessionID(r *http.Request) (string, error) {
	id := r.PathValue("id")
	if id == "" {
		return "", errors.New("empty session id")
	}
	if len(id) > 128 {
		return "", errors.New("session id exceeds 128 bytes")
	}
	return id, nil
}

func (s *Server) handleSessionQueries(w http.ResponseWriter, r *http.Request) {
	id, err := sessionID(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var req api.SessionQueriesRequest
	if !s.decode(w, r, &req) {
		return
	}
	stream := req.Stream || acceptsSSE(r)
	// The per-session lock is taken *before* a search slot: concurrent
	// appends to one session serialize here, holding no slot while they
	// wait, so a single busy session cannot pin the daemon's whole search
	// capacity. done() discards the session again if this request created
	// it and then fails the lock, admission, validation, or generation.
	sess, _ := s.lookup(id, true)
	defer s.done(sess)
	if err := sess.lock(r.Context(), s.cfg.QueueWait); err != nil {
		s.fail(w, lockStatus(err), err)
		return
	}
	defer sess.unlock()
	// created reports (in the response) that this request found no stored
	// interface — the client's signal that it is not extending previous
	// state, e.g. after its session idled out of the LRU.
	created := sess.sess == nil
	// Validate everything cheap — params and the extended log's size —
	// before any SSE headers are committed, so these fail as plain 400s in
	// streaming mode too.
	queries := make([]string, 0, len(sess.queries)+len(req.Queries))
	queries = append(queries, sess.queries...)
	queries = append(queries, req.Queries...)
	if len(queries) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty query log"))
		return
	}
	if len(queries) > s.cfg.MaxQueries {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("session log exceeds %d entries", s.cfg.MaxQueries))
		return
	}
	baseOpts, err := s.options(req.SearchParams)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.runSearch(w, r, stream, func(ctx context.Context, progress func(mctsui.Progress)) (*api.GenerateResponse, int, error) {
		var warm *mctsui.Interface
		if sess.sess != nil {
			warm = sess.sess.Interface()
		}
		iface, err := mctsui.New(searchOpts(baseOpts, warm, sess.tree, progress)...).Generate(ctx, queries)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		// A disconnected client never sees this response, so its append is
		// not committed — otherwise its timeout-and-retry would double the
		// appended queries in the stored log. (A daemon drain is different:
		// the client is still connected and receives the best-so-far
		// result, so the commit below matches what it saw.)
		if err := r.Context().Err(); err != nil {
			return nil, http.StatusRequestTimeout, fmt.Errorf("client disconnected during search: %w", err)
		}
		// Carry the interactive state across the regeneration: re-apply the
		// previous current query when the new interface still expresses it
		// (generated interfaces usually generalize, so it usually does).
		var prevSQL string
		if sess.sess != nil {
			prevSQL, _ = sess.sess.SQL()
		}
		ui := iface.NewSession()
		if prevSQL != "" {
			_ = ui.LoadQuery(prevSQL)
		}
		sess.queries, sess.sess, sess.tree = queries, ui, iface.SearchTree()
		s.markPopulated(sess)
		resp, err := s.response(iface, id, len(queries))
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.Created = created
		return resp, 0, nil
	})
}

func (s *Server) handleInteract(w http.ResponseWriter, r *http.Request) {
	id, err := sessionID(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var req api.InteractRequest
	if !s.decode(w, r, &req) {
		return
	}
	sess, ok := s.lookup(id, false)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	defer s.done(sess)
	if err := sess.lock(r.Context(), s.cfg.QueueWait); err != nil {
		s.fail(w, lockStatus(err), err)
		return
	}
	defer sess.unlock()
	if sess.sess == nil {
		s.fail(w, http.StatusConflict, fmt.Errorf("session %q has no interface yet", id))
		return
	}
	switch req.Op {
	case api.OpSet:
		err = sess.sess.Set(req.Widget, req.Value)
	case api.OpSetInstance:
		err = sess.sess.SetInstance(req.Widget, req.Value, req.Instance...)
	case api.OpLoadQuery:
		err = sess.sess.LoadQuery(req.Query)
	case api.OpGet, "":
		// Read-only snapshot.
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown op %q (want set, set_instance, load_query, or get)", req.Op))
		return
	}
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	sql, err := sess.sess.SQL()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("widget values generate no query: %w", err))
		return
	}
	infos := sess.sess.Widgets()
	widgets := make([]api.WidgetState, len(infos))
	for i, wi := range infos {
		widgets[i] = api.WidgetState{
			Index: wi.Index, Type: wi.Type, Title: wi.Title,
			Options: wi.Options, Value: wi.Value,
		}
	}
	s.writeJSON(w, http.StatusOK, api.InteractResponse{Session: id, SQL: sql, Widgets: widgets})
}

// handleImport loads a persisted interface (codec JSON, the export format)
// as a session — the daemon's attacker-controlled deserialization surface,
// fuzz-walled in internal/codec: malformed bytes must error, never panic.
// Decoding re-parses up to MaxQueries statements and re-evaluates the cost
// model, so the endpoint passes through the same admission gate as the
// search endpoints. Cost is derived data re-scored against the target
// screen: pass the generating screen as ?w=&h= (wide default otherwise) so
// an imported interface round-trips its cost and validity.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	id, err := sessionID(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	screen := mctsui.Screen{}
	if q := r.URL.Query(); q.Get("w") != "" || q.Get("h") != "" {
		sw, err1 := strconv.Atoi(q.Get("w"))
		sh, err2 := strconv.Atoi(q.Get("h"))
		if err1 != nil || err2 != nil || sw <= 0 || sh <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("screen parameters w and h must both be positive integers"))
			return
		}
		screen = mctsui.Screen{W: sw, H: sh}
	}
	// The body is read from the network before any slot is held (a
	// trickling client must not pin search capacity), the CPU-bound decode
	// runs under a search slot, and the slot is released before the session
	// lock is taken — waiting on a busy session must not pin capacity
	// either.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	iface, status, err := func() (*mctsui.Interface, int, error) {
		if err := s.acquire(r.Context()); err != nil {
			return nil, admissionStatus(err), err
		}
		defer s.release()
		iface, err := mctsui.LoadInterface(data, screen)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, err
		}
		return iface, 0, nil
	}()
	if err != nil {
		s.fail(w, status, err)
		return
	}
	queries := iface.QueryLog()
	if len(queries) > s.cfg.MaxQueries {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("imported log exceeds %d entries", s.cfg.MaxQueries))
		return
	}
	sess, _ := s.lookup(id, true)
	defer s.done(sess)
	if err := sess.lock(r.Context(), s.cfg.QueueWait); err != nil {
		s.fail(w, lockStatus(err), err)
		return
	}
	created := sess.sess == nil
	// An import replaces the session's state wholesale; any search tree from
	// a previous generation described the replaced interface, so drop it.
	sess.queries, sess.sess, sess.tree = queries, iface.NewSession(), nil
	sess.unlock()
	s.markPopulated(sess)
	resp, err := s.response(iface, id, len(queries))
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	resp.Created = created
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id, err := sessionID(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.lookup(id, false)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	defer s.done(sess)
	// The lock is held only long enough to read the interface pointer
	// (interfaces are immutable once generated); marshaling and the body
	// write happen unlocked, so a slow-reading client cannot block other
	// requests to the session for the duration of the transfer.
	if err := sess.lock(r.Context(), s.cfg.QueueWait); err != nil {
		s.fail(w, lockStatus(err), err)
		return
	}
	var iface *mctsui.Interface
	if sess.sess != nil {
		iface = sess.sess.Interface()
	}
	sess.unlock()
	if iface == nil {
		s.fail(w, http.StatusConflict, fmt.Errorf("session %q has no interface yet", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		data, err := iface.MarshalJSON()
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case "html":
		page, err := iface.Page("Session " + id)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, page)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or html)", format))
	}
}
